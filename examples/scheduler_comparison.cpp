// Scheduler comparison on a custom cluster: shows how to plug the QSSF
// service into the simulator next to the oracles, and how the prediction
// quality translates into scheduling quality. Mirrors §4.2.3 on a
// user-defined cluster shape instead of the Helios presets.
//
// Usage: ./build/examples/example_scheduler_comparison [nodes] [vcs] [scale]
#include <cstdio>
#include <cstdlib>

#include "core/qssf_service.h"
#include "sim/simulator.h"
#include "stats/correlation.h"
#include "trace/synthetic.h"

int main(int argc, char** argv) {
  using namespace helios;
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 48;
  const int vcs = argc > 2 ? std::atoi(argv[2]) : 8;

  // Build a custom cluster spec: equal-size VCs over `nodes` 8-GPU nodes.
  trace::ClusterSpec spec;
  spec.name = "Custom";
  spec.gpus_per_node = 8;
  spec.cpus_per_node = 48;
  spec.reference_jobs = nodes * 2'000;  // ~2k jobs per node per 6 months
  for (int v = 0; v < vcs; ++v) {
    spec.vcs.push_back({"vc" + std::to_string(v), nodes / vcs, 8});
  }
  spec.nodes = (nodes / vcs) * vcs;

  trace::GeneratorConfig cfg;
  cfg.cluster = spec;
  cfg.knobs = trace::helios_knobs("Saturn");  // busy-cluster workload profile
  cfg.window_begin = trace::helios_trace_begin();
  cfg.begin = cfg.window_begin - 35 * kSecondsPerDay;
  cfg.end = trace::helios_trace_end();
  cfg.seed = 7;
  trace::Trace t = trace::SyntheticTraceGenerator(cfg).generate();

  const auto train = t.between(0, from_civil(2020, 9, 1));
  const auto eval = t.between(from_civil(2020, 9, 1), trace::helios_trace_end());

  core::QssfService qssf;
  qssf.fit(train);
  core::OnlinePriorityEvaluator evaluator(qssf, eval);
  const double rho = stats::spearman(evaluator.predicted_gpu_time(),
                                     evaluator.actual_gpu_time());

  std::printf("=== %d nodes / %d VCs, %zu September GPU-trace jobs ===\n",
              spec.nodes, vcs, eval.size());
  std::printf("QSSF GPU-time prediction: Spearman rho = %.3f\n\n", rho);
  std::printf("%-6s %14s %18s %14s\n", "policy", "avg JCT (s)", "avg queuing (s)",
              "queued jobs");

  for (auto policy : {sim::SchedulerPolicy::kFifo, sim::SchedulerPolicy::kSjf,
                      sim::SchedulerPolicy::kSrtf, sim::SchedulerPolicy::kQssf}) {
    sim::SimConfig sc;
    sc.policy = policy;
    if (policy == sim::SchedulerPolicy::kQssf) {
      sc.priority_fn = evaluator.as_priority_fn();
    }
    const auto r = sim::ClusterSimulator(eval.cluster(), sc).run(eval);
    std::printf("%-6s %14.0f %18.0f %14lld\n",
                std::string(sim::to_string(policy)).c_str(), r.avg_jct,
                r.avg_queue_delay, static_cast<long long>(r.queued_jobs));
  }
  return 0;
}
