// Model store: snapshot a trained QSSF service to disk and warm-restart it
// without replaying multi-month histories — the fit -> save -> load ->
// predict loop a long-lived prediction service runs across restarts
// (docs/FORMATS.md describes the on-disk frame).
//
// Build & run:   ./build/example_model_store <command> [args]
//
//   fit <model.bin> [scale]      generate a synthetic Venus trace, fit the
//                                QSSF service on April-August, save it
//   predict <model.bin> [scale]  load the snapshot (no refit!) and price the
//                                September jobs of the same trace
//   info <model.bin>             load a snapshot and describe it
//   roundtrip [scale]            fit, save, load, and verify bit-identical
//                                predictions end to end
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/qssf_service.h"
#include "serialize/binary.h"
#include "trace/synthetic.h"

namespace {

using namespace helios;

/// The deterministic workload every subcommand shares: seed 42 Venus at the
/// given scale, split April-August (train) / September (eval).
struct Workload {
  trace::Trace train;
  trace::Trace eval;

  explicit Workload(double scale) {
    auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"),
                                              /*seed=*/42, scale);
    const trace::Trace t = trace::SyntheticTraceGenerator(cfg).generate();
    train = t.between(trace::helios_trace_begin(), from_civil(2020, 9, 1));
    eval = t.between(from_civil(2020, 9, 1), trace::helios_trace_end());
  }
};

void save_service(const core::QssfService& service, const std::string& path) {
  serialize::save_file(path, service);
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(path, ec);
  std::printf("saved %s (%llu bytes framed)\n", path.c_str(),
              static_cast<unsigned long long>(ec ? 0 : bytes));
}

core::QssfService load_service(const std::string& path) {
  return serialize::load_file<core::QssfService>(path);
}

int cmd_fit(const std::string& path, double scale) {
  Workload wl(scale);
  std::printf("fitting on %zu training jobs...\n", wl.train.size());
  core::QssfService service;
  service.fit(wl.train);
  std::printf("trained: %zu trees, %lld jobs in the rolling window\n",
              service.model().tree_count(),
              static_cast<long long>(service.rolling().observed_jobs()));
  save_service(service, path);
  return 0;
}

int cmd_predict(const std::string& path, double scale) {
  core::QssfService service = load_service(path);
  std::printf("warm-restarted from %s: %zu trees, %lld observed jobs, "
              "no refit\n",
              path.c_str(), service.model().tree_count(),
              static_cast<long long>(service.rolling().observed_jobs()));

  Workload wl(scale);
  core::OnlinePriorityEvaluator evaluator(service, wl.eval);
  const auto& predicted = evaluator.predicted_gpu_time();
  const auto& actual = evaluator.actual_gpu_time();
  double smape = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double denom = std::fabs(predicted[i]) + std::fabs(actual[i]);
    if (denom > 0) smape += 2.0 * std::fabs(predicted[i] - actual[i]) / denom;
  }
  if (!predicted.empty()) smape /= static_cast<double>(predicted.size());
  std::printf("priced %zu September GPU jobs; GPU-time SMAPE %.1f%%\n",
              predicted.size(), 100.0 * smape);
  return 0;
}

int cmd_info(const std::string& path) {
  const core::QssfService service = load_service(path);
  const auto& cfg = service.config();
  std::printf("%s:\n", path.c_str());
  std::printf("  lambda=%.2f use_names=%d rolling_decay=%.2f\n", cfg.lambda,
              cfg.use_names ? 1 : 0, cfg.rolling_decay);
  std::printf("  gbdt: %zu trees (cfg %d), depth<=%d, lr=%.3f, bins<=%d\n",
              service.model().tree_count(), cfg.gbdt.n_trees,
              cfg.gbdt.max_depth, cfg.gbdt.learning_rate, cfg.gbdt.max_bins);
  std::printf("  rolling: %lld observed jobs\n",
              static_cast<long long>(service.rolling().observed_jobs()));
  return 0;
}

int cmd_roundtrip(double scale) {
  Workload wl(scale);
  core::QssfService service;
  service.fit(wl.train);

  serialize::Writer w;
  service.save(w);
  const auto file = serialize::frame(w);
  const auto body = serialize::unframe(file);
  serialize::Reader r(body);
  core::QssfService loaded;
  loaded.load(r);

  std::size_t jobs = 0;
  for (const auto& job : wl.eval.jobs()) {
    if (!job.is_gpu_job()) continue;
    ++jobs;
    if (service.priority(wl.eval, job) != loaded.priority(wl.eval, job)) {
      std::fprintf(stderr, "FAIL: job %llu priority diverged after load\n",
                   static_cast<unsigned long long>(job.job_id));
      return 1;
    }
  }
  std::printf("OK: %zu-byte snapshot, %zu September priorities bit-identical "
              "after load\n",
              file.size(), jobs);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: example_model_store fit <model.bin> [scale]\n"
               "       example_model_store predict <model.bin> [scale]\n"
               "       example_model_store info <model.bin>\n"
               "       example_model_store roundtrip [scale]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "fit" && argc >= 3) {
      return cmd_fit(argv[2], argc > 3 ? std::atof(argv[3]) : 0.05);
    }
    if (cmd == "predict" && argc >= 3) {
      return cmd_predict(argv[2], argc > 3 ? std::atof(argv[3]) : 0.05);
    }
    if (cmd == "info" && argc >= 3) return cmd_info(argv[2]);
    if (cmd == "roundtrip") {
      return cmd_roundtrip(argc > 2 ? std::atof(argv[2]) : 0.05);
    }
  } catch (const helios::serialize::Error& e) {
    std::fprintf(stderr, "model store error: %s\n", e.what());
    return 1;
  }
  return usage();
}
