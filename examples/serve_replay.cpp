// Serve-while-learning replay: the acceptance driver for the resident
// svc::PredictionServer.
//
// Replays a multi-month synthetic Venus trace in accelerated wall-time: a
// feeder thread appends the September job stream to a CSV file in small
// timed batches; the server tails the file (svc::CsvTailer), folds every
// event into the online QSSF state, checkpoints on a cadence, and publishes
// RCU-style snapshots that concurrent query threads price jobs against while
// ingest is running. The run gates on
//   (a) the server's full priority log being bit-identical to the batch
//       OnlinePriorityEvaluator over the same jobs,
//   (b) every checkpoint file restoring to a bit-identical prefix of that
//       log (checkpoint-boundary parity),
//   (c) an optional mid-replay kill: the server object is destroyed, a
//       fresh one restores from the latest checkpoint, the tailer resumes
//       from the checkpoint's byte offset, and the final log must still be
//       bit-identical,
// and reports p50/p99 snapshot-query latency plus ingest throughput —
// written as JSON to HELIOS_SERVE_OUT when set (ci.sh bench points it at
// build/BENCH_svc.json). Exit status is non-zero on any parity mismatch.
//
// Knobs: HELIOS_SERVE_SCALE (default 0.05), HELIOS_SERVE_QUERY_THREADS (2),
// HELIOS_SERVE_KILL (1 = kill/restore mid-replay), HELIOS_SERVE_OUT
// (JSON path, "" = stdout summary only).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/env.h"
#include "core/qssf_service.h"
#include "serialize/binary.h"
#include "svc/csv_tailer.h"
#include "svc/prediction_server.h"
#include "trace/synthetic.h"

using namespace helios;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct LatencyStats {
  std::size_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

LatencyStats percentiles(std::vector<double> samples_us) {
  LatencyStats s;
  s.count = samples_us.size();
  if (samples_us.empty()) return s;
  std::sort(samples_us.begin(), samples_us.end());
  s.p50_us = samples_us[samples_us.size() / 2];
  s.p99_us = samples_us[samples_us.size() * 99 / 100];
  return s;
}

int fail(const char* what) {
  std::fprintf(stderr, "SERVE FAIL: %s\n", what);
  return 1;
}

}  // namespace

int main() {
  const double scale = env_double("HELIOS_SERVE_SCALE", 0.05);
  const int query_threads =
      static_cast<int>(env_int("HELIOS_SERVE_QUERY_THREADS", 2));
  const bool kill_restore = env_int("HELIOS_SERVE_KILL", 1) != 0;
  const char* out_env = std::getenv("HELIOS_SERVE_OUT");
  const std::string out_path = out_env != nullptr ? out_env : "";

  const auto dir = std::filesystem::temp_directory_path() /
                   ("helios_serve_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string stream_path = (dir / "stream.csv").string();
  const std::string model_path = (dir / "model.bin").string();

  // -- workload: seed-42 Venus, April-August train / September stream -------
  auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"),
                                            /*seed=*/42, scale);
  const trace::Trace full = trace::SyntheticTraceGenerator(gen).generate();
  const trace::Trace train =
      full.between(trace::helios_trace_begin(), from_civil(2020, 9, 1));
  const trace::Trace eval =
      full.between(from_civil(2020, 9, 1), trace::helios_trace_end());
  std::size_t total_gpu_jobs = 0;
  for (const auto& j : eval.jobs()) total_gpu_jobs += j.is_gpu_job() ? 1 : 0;
  std::printf("scale %.3f: %zu train jobs, %zu streamed rows (%zu GPU)\n",
              scale, train.size(), eval.size(), total_gpu_jobs);

  // Fit once, then run everything from a disk round trip — the warm-restart
  // path a deployment uses.
  {
    core::QssfService fitted;
    fitted.fit(train);
    serialize::save_file(model_path, fitted);
  }
  const auto model = serialize::load_file<core::QssfService>(model_path);

  // -- batch reference: the pipeline the server must reproduce bitwise ------
  std::vector<svc::PricedJob> reference;
  {
    core::QssfService svc = model;
    core::EvalOptions opts;
    opts.execution = common::ExecMode::kSerial;
    core::OnlinePriorityEvaluator evaluator(svc, eval, opts);
    reference.reserve(total_gpu_jobs);
    for (const auto& j : eval.jobs()) {
      if (j.is_gpu_job()) reference.push_back({j.job_id, evaluator.priority_of(j)});
    }
  }

  // -- feeder: append the September rows to the stream file in timed batches
  std::ostringstream rows_buf;
  eval.save_csv_rows(rows_buf, 0, eval.size());
  const std::string rows_csv = std::move(rows_buf).str();
  std::thread feeder([&rows_csv, &stream_path] {
    std::ofstream out(stream_path, std::ios::binary);
    out << "job_id,submit_time,start_time,duration,num_gpus,num_cpus,user,vc,"
           "name,state\n";
    out.flush();
    std::size_t lo = 0;
    std::size_t lines = 0;
    while (lo < rows_csv.size()) {
      const auto nl = rows_csv.find('\n', lo);
      const auto hi = nl == std::string::npos ? rows_csv.size() : nl + 1;
      out.write(rows_csv.data() + lo, static_cast<std::streamsize>(hi - lo));
      lo = hi;
      if (++lines % 200 == 0) {  // a month streams in a few hundred batches
        out.flush();
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    }
    out.flush();
  });

  // -- server + query threads ----------------------------------------------
  svc::ServerConfig cfg;
  cfg.checkpoint_every = std::max<std::size_t>(1, total_gpu_jobs / 5);
  cfg.checkpoint_prefix = (dir / "ck").string();
  cfg.publish_every = 256;
  std::optional<svc::PredictionServer> server;
  server.emplace(model, train, cfg);

  // Query threads read this atomic, never the server object itself, so the
  // mid-replay kill (which destroys the server) cannot race them: published
  // snapshots are immutable and outlive their server.
  std::atomic<std::shared_ptr<const svc::Snapshot>> snap{server->snapshot()};
  std::atomic<bool> stop{false};

  // Query mix: real September job shapes, priced over and over.
  std::vector<svc::QueryRequest> requests;
  for (const auto& j : eval.jobs()) {
    if (!j.is_gpu_job()) continue;
    svc::QueryRequest req;
    req.user = eval.user_name(j);
    req.vc = eval.vc_name(j);
    req.job_name = eval.job_name(j);
    req.num_gpus = j.num_gpus;
    req.num_cpus = j.num_cpus;
    req.submit_time = j.submit_time;
    requests.push_back(std::move(req));
    if (requests.size() >= 512) break;
  }

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(query_threads));
  std::vector<std::thread> readers;
  for (int r = 0; r < query_threads; ++r) {
    readers.emplace_back([&, r] {
      auto& lat = latencies[static_cast<std::size_t>(r)];
      lat.reserve(1 << 18);
      std::size_t i = static_cast<std::size_t>(r);
      double sink = 0.0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& req = requests[i++ % requests.size()];
        const auto t0 = Clock::now();
        const auto s = snap.load(std::memory_order_acquire);
        sink += s->query(req).priority;
        lat.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count());
      }
      if (sink < 0) std::printf("unreachable %f\n", sink);  // keep sink live
    });
  }

  // -- ingest loop: tail, feed, kill/restore once mid-replay ----------------
  svc::CsvTailer tailer(stream_path);
  const auto t_ingest = Clock::now();
  bool killed = false;
  while (server->gpu_jobs_ingested() < total_gpu_jobs) {
    const std::string block = tailer.poll();
    if (block.empty()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    // Feed the block in bounded line-aligned slices (a fast feeder can hand
    // the tailer most of the month in one poll) so the simulated crash lands
    // mid-stream, not after everything is already in.
    std::size_t lo = 0;
    while (lo < block.size()) {
      std::size_t hi = lo;
      for (int lines = 0; lines < 100 && hi < block.size(); ++lines) {
        const auto nl = block.find('\n', hi);
        hi = nl == std::string::npos ? block.size() : nl + 1;
      }
      server->ingest_csv(std::string_view(block).substr(lo, hi - lo));
      lo = hi;
      snap.store(server->snapshot(), std::memory_order_release);
      if (kill_restore && !killed && server->checkpoints_written() >= 1 &&
          server->gpu_jobs_ingested() < total_gpu_jobs) {
        // Simulated crash: drop the server mid-replay, restore the latest
        // checkpoint into a fresh one, rewind the tailer to its byte offset.
        // The rest of this block is discarded — the rewound tailer will
        // re-serve it.
        const std::string latest =
            cfg.checkpoint_prefix + "." +
            std::to_string(server->checkpoints_written() - 1);
        const auto before = server->gpu_jobs_ingested();
        server.emplace(core::QssfService{}, train, cfg);
        serialize::load_file(latest, *server);
        tailer.resume_at_data_bytes(server->bytes_ingested());
        snap.store(server->snapshot(), std::memory_order_release);
        killed = true;
        std::printf(
            "killed at %llu GPU jobs, restored %s (back to %llu)\n",
            static_cast<unsigned long long>(before), latest.c_str(),
            static_cast<unsigned long long>(server->gpu_jobs_ingested()));
        break;
      }
    }
    if (seconds_since(t_ingest) > 300.0) {
      stop.store(true);
      for (auto& t : readers) t.join();
      feeder.join();
      return fail("replay did not complete within 300s");
    }
  }
  const double ingest_s = seconds_since(t_ingest);
  stop.store(true);
  for (auto& t : readers) t.join();
  feeder.join();

  // -- gate (a): full-stream bit parity with the batch pipeline -------------
  const auto& log = server->priority_log();
  if (log.size() != reference.size()) return fail("priority log length");
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (!(log[i] == reference[i])) return fail("priority log diverged");
  }
  std::printf("parity OK: %zu streamed priorities bit-identical to batch%s\n",
              log.size(), killed ? " (across kill/restore)" : "");

  // -- gate (b): every checkpoint restores to a bit-identical prefix --------
  const std::uint64_t n_checkpoints = server->checkpoints_written();
  for (std::uint64_t c = 0; c < n_checkpoints; ++c) {
    const std::string path = cfg.checkpoint_prefix + "." + std::to_string(c);
    svc::PredictionServer restored(core::QssfService{}, train, cfg);
    serialize::load_file(path, restored);
    const auto& prefix = restored.priority_log();
    if (prefix.size() > reference.size()) return fail("checkpoint log length");
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      if (!(prefix[i] == reference[i])) return fail("checkpoint boundary parity");
    }
  }
  std::printf("checkpoint parity OK: %llu checkpoints are exact prefixes\n",
              static_cast<unsigned long long>(n_checkpoints));

  // -- latency / throughput report ------------------------------------------
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  const LatencyStats lat = percentiles(std::move(all));
  const double jobs_per_s =
      ingest_s > 0 ? static_cast<double>(total_gpu_jobs) / ingest_s : 0.0;
  std::printf(
      "%zu queries over %d threads: p50 %.1f us, p99 %.1f us; "
      "ingest %.0f GPU jobs/s (%.2fs wall)\n",
      lat.count, query_threads, lat.p50_us, lat.p99_us, jobs_per_s, ingest_s);

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << "{\n"
        << "  \"bench\": \"svc_serve_replay\",\n"
        << "  \"scale\": " << scale << ",\n"
        << "  \"rows_streamed\": " << eval.size() << ",\n"
        << "  \"gpu_jobs\": " << total_gpu_jobs << ",\n"
        << "  \"checkpoints\": " << n_checkpoints << ",\n"
        << "  \"kill_restore\": " << (killed ? "true" : "false") << ",\n"
        << "  \"parity\": \"bit-identical\",\n"
        << "  \"checkpoint_parity\": \"bit-identical\",\n"
        << "  \"query_threads\": " << query_threads << ",\n"
        << "  \"queries\": " << lat.count << ",\n"
        << "  \"query_p50_us\": " << lat.p50_us << ",\n"
        << "  \"query_p99_us\": " << lat.p99_us << ",\n"
        << "  \"ingest_gpu_jobs_per_s\": " << jobs_per_s << ",\n"
        << "  \"ingest_wall_s\": " << ingest_s << "\n"
        << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
