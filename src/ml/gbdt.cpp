#include "ml/gbdt.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "ml/gbdt_kernels.h"
#include "serialize/binary.h"

namespace helios::ml {

// ---------------------------------------------------------------------------
// QuantizedGradients
// ---------------------------------------------------------------------------

void QuantizedGradients::assign(std::span<const double> gradients) {
  double max_abs = 0.0;
  for (const double g : gradients) max_abs = std::max(max_abs, std::fabs(g));
  assign(gradients, max_abs);
}

void QuantizedGradients::assign(std::span<const double> gradients,
                                double max_abs) {
  q.resize(gradients.size());

  // Pick scale = 2^k such that |sum of all n quantized gradients| < 2^38 and
  // every |q| < 2^30: int64-exact sums under any accumulation order and
  // subtraction, headroom for the histogram engine to pack a 24-bit row
  // count into the low bits of the same int64, and int32 storage per row.
  // Powers of two keep q * inv_scale an exact rescaling (only the int ->
  // double conversion rounds, identically everywhere). The quantum,
  // ~max_abs * n / 2^38, is ~1e-6 relative — far below the residual noise
  // the trees are fitting.
  double scale = 1.0;
  if (max_abs > 0.0 && std::isfinite(max_abs)) {
    int exp = 0;
    std::frexp(max_abs, &exp);  // max_abs < 2^exp
    const int n_bits = static_cast<int>(std::bit_width(gradients.size() + 1));
    // Cap at 1023 so ldexp stays finite when the residuals are themselves
    // denormal-tiny (exp << 0); the quantization just bottoms out there.
    const int k = std::min({38 - exp - n_bits, 29 - exp, 1023});
    scale = std::ldexp(1.0, k);
  }
  inv_scale = 1.0 / scale;
  parallel_for_chunks(
      0, gradients.size(),
      [this, gradients, scale](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          // Round half away from zero — llround semantics without the call;
          // copysign keeps the loop branch-free (vectorizable).
          const double x = gradients[r] * scale;
          q[r] = static_cast<std::int32_t>(x + std::copysign(0.5, x));
        }
      },
      /*grain=*/16384);
}

// ---------------------------------------------------------------------------
// Tree builders
// ---------------------------------------------------------------------------

namespace {

/// The histogram engine packs each bucket into one int64:
/// (gradient_sum << 24) + row_count. Counts stay below 2^24 (nodes with more
/// rows shard into sub-limit packed accumulations merged into a wide
/// histogram, see NodeHist) and |gradient_sum| below 2^38 (enforced by the
/// QuantizedGradients scale), so the fields cannot bleed into each other and
/// a single integer add updates both at once.
constexpr int kCountBits = 24;
/// Row-chunk grain of the parallel histogram accumulation; build_hist's
/// buffer-recycling test must match it.
constexpr std::size_t kHistGrain = 16384;
constexpr std::size_t kPackedRowLimit = std::size_t{1} << kCountBits;

/// Runtime-injectable packed limit (gbdt_set_packed_row_limit): tests drive
/// the wide/sharded path at small n instead of needing a 16.7M-row fixture.
std::atomic<std::size_t> g_packed_row_limit{kPackedRowLimit};
std::atomic<std::uint64_t> g_wide_builds{0};

constexpr std::int64_t packed_sum(std::int64_t pack) noexcept {
  return pack >> kCountBits;  // arithmetic shift = floor division: exact
}
constexpr std::int64_t packed_count(std::int64_t pack) noexcept {
  return pack & ((std::int64_t{1} << kCountBits) - 1);
}

/// One node's histogram in either representation. Packed (the common case):
/// `buf` holds total_bins single-int64 buckets. Wide (row count at or above
/// the packed limit): `buf` holds 2 * total_bins entries — unpacked gradient
/// sums in [0, total_bins), row counts in [total_bins, 2 * total_bins) — so
/// counts are full int64 and the 24-bit cap disappears. Both are exact
/// integers, so subtraction and shard merges stay bit-exact, and
/// best_split_scan sees identical (sum, count) streams either way.
struct NodeHist {
  std::vector<std::int64_t> buf;
  bool wide = false;
  [[nodiscard]] bool empty() const noexcept { return buf.empty(); }
};

struct SplitDecision {
  double gain = 0.0;
  std::int32_t feature = -1;
  int bin = -1;  // go left iff bin(value) <= bin
  std::int64_t left_q = 0;
  std::int64_t left_cnt = 0;
};

/// Shrunk mean residual; the single definition both engines share, so leaf
/// values are bitwise identical.
double leaf_value(std::int64_t total_q, std::int64_t total_cnt, double inv_scale,
                  const GBDTConfig& cfg) {
  return (static_cast<double>(total_q) * inv_scale) /
         (static_cast<double>(total_cnt) + cfg.lambda);
}

/// Best split for one feature from its gradient histogram, generic over the
/// bucket representation: `bucket(b)` returns the exact (sum_q, count) of
/// bin b. One implementation serves both engines, so identical (exact)
/// histograms give identical decisions by construction.
template <typename BucketFn>
SplitDecision best_split_scan(BucketFn&& bucket, int n_bins,
                              std::int64_t total_q, std::int64_t total_cnt,
                              double inv_scale, std::int32_t feature,
                              const GBDTConfig& cfg) {
  SplitDecision best;
  const double total_sum = static_cast<double>(total_q) * inv_scale;
  const double parent_score =
      total_sum * total_sum / (static_cast<double>(total_cnt) + cfg.lambda);
  std::int64_t left_q = 0;
  std::int64_t left_cnt = 0;
  for (int b = 0; b + 1 < n_bins; ++b) {
    const auto [sum_q, count] = bucket(b);
    left_q += sum_q;
    left_cnt += count;
    const std::int64_t right_cnt = total_cnt - left_cnt;
    if (left_cnt < cfg.min_samples_leaf) continue;
    if (right_cnt < cfg.min_samples_leaf) break;
    const double left_sum = static_cast<double>(left_q) * inv_scale;
    const double right_sum = static_cast<double>(total_q - left_q) * inv_scale;
    const double score =
        left_sum * left_sum / (static_cast<double>(left_cnt) + cfg.lambda) +
        right_sum * right_sum / (static_cast<double>(right_cnt) + cfg.lambda);
    const double gain = score - parent_score;
    if (gain > best.gain) {
      best.gain = gain;
      best.feature = feature;
      best.bin = b;
      best.left_q = left_q;
      best.left_cnt = left_cnt;
    }
  }
  return best;
}

/// Reference-engine view: separate sum/count arrays.
SplitDecision best_split_for_feature(const std::int64_t* hist_sum,
                                     const std::int64_t* hist_cnt, int n_bins,
                                     std::int64_t total_q, std::int64_t total_cnt,
                                     double inv_scale, std::int32_t feature,
                                     const GBDTConfig& cfg) {
  return best_split_scan(
      [&](int b) { return std::pair(hist_sum[b], hist_cnt[b]); }, n_bins,
      total_q, total_cnt, inv_scale, feature, cfg);
}

/// Histogram-engine view: packed single-int64 buckets.
SplitDecision best_split_packed(const std::int64_t* hist, int n_bins,
                                std::int64_t total_q, std::int64_t total_cnt,
                                double inv_scale, std::int32_t feature,
                                const GBDTConfig& cfg) {
  return best_split_scan(
      [&](int b) { return std::pair(packed_sum(hist[b]), packed_count(hist[b])); },
      n_bins, total_q, total_cnt, inv_scale, feature, cfg);
}

/// Retained reference trainer: per-node histograms rebuilt from scratch over
/// the node's rows, feature-outer over a column-major matrix, serial — the
/// pre-histogram-engine algorithm, kept as the parity and benchmark baseline.
struct ReferenceBuilder {
  const BinnedMatrix& x;
  const FeatureBinner& binner;
  std::span<const std::int32_t> grad;
  double inv_scale;
  const GBDTConfig& cfg;
  std::vector<RegressionTree::Node>& nodes;
  std::span<std::int32_t> leaf_of;
  std::vector<std::int64_t> hist_sum;  // reused across features/nodes
  std::vector<std::int64_t> hist_cnt;

  std::int32_t build(std::span<std::uint32_t> rows, int depth) {
    const auto node_id = static_cast<std::int32_t>(nodes.size());
    nodes.emplace_back();

    std::int64_t total_q = 0;
    for (const std::uint32_t r : rows) total_q += grad[r];
    const auto total_cnt = static_cast<std::int64_t>(rows.size());

    auto make_leaf = [&] {
      nodes[static_cast<std::size_t>(node_id)].value =
          leaf_value(total_q, total_cnt, inv_scale, cfg);
      for (const std::uint32_t r : rows) leaf_of[r] = node_id;
      return node_id;
    };

    if (depth >= cfg.max_depth ||
        total_cnt < 2 * static_cast<std::int64_t>(cfg.min_samples_leaf)) {
      return make_leaf();
    }

    SplitDecision best;
    for (std::size_t f = 0; f < x.features; ++f) {
      const int n_bins = binner.bins(f);
      hist_sum.assign(static_cast<std::size_t>(n_bins), 0);
      hist_cnt.assign(static_cast<std::size_t>(n_bins), 0);
      const std::uint8_t* col = x.col(f);
      for (const std::uint32_t r : rows) {
        hist_sum[col[r]] += grad[r];
        ++hist_cnt[col[r]];
      }
      const SplitDecision d = best_split_for_feature(
          hist_sum.data(), hist_cnt.data(), n_bins, total_q, total_cnt,
          inv_scale, static_cast<std::int32_t>(f), cfg);
      if (d.gain > best.gain) best = d;
    }
    if (best.feature < 0 || best.gain <= 1e-12) return make_leaf();

    const std::uint8_t* col = x.col(static_cast<std::size_t>(best.feature));
    const auto mid = std::partition(rows.begin(), rows.end(), [&](std::uint32_t r) {
      return col[r] <= best.bin;
    });
    const auto n_left = static_cast<std::size_t>(mid - rows.begin());
    const auto left_rows = rows.subspan(0, n_left);
    const auto right_rows = rows.subspan(n_left);
    if (left_rows.empty() || right_rows.empty()) return make_leaf();

    {
      auto& node = nodes[static_cast<std::size_t>(node_id)];
      node.feature = best.feature;
      node.split_bin = best.bin;
      node.threshold = binner.edge(static_cast<std::size_t>(best.feature), best.bin);
      node.gain = best.gain;
    }
    const std::int32_t left = build(left_rows, depth + 1);
    const std::int32_t right = build(right_rows, depth + 1);
    auto& node = nodes[static_cast<std::size_t>(node_id)];
    node.left = left;
    node.right = right;
    return node_id;
  }
};

/// Histogram engine: persistent row sets partitioned in place over a
/// row-major binned matrix (a row's features are adjacent bytes, so each row
/// costs 1-2 cache lines), packed single-int64 buckets, row-parallel
/// accumulation into per-chunk buffers merged in chunk order on the shared
/// pool, and the sibling-subtraction trick — only the smaller child scans
/// its rows; the larger child's histogram is parent minus sibling, exact in
/// int64.
struct HistogramBuilder {
  const BinnedMatrix& x;
  const FeatureBinner& binner;
  std::span<const std::int32_t> grad;
  double inv_scale;
  const GBDTConfig& cfg;
  std::vector<RegressionTree::Node>& nodes;
  std::span<std::int32_t> leaf_of;

  std::size_t p = 0;
  int total_bins = 0;
  std::vector<int> offset;             // per-feature slice into a histogram
  std::size_t packed_limit = kPackedRowLimit;  // node rows >= this go wide
  bool use_simd = false;               // resolved once per tree fit
  // Freed node histograms for reuse (allocating + zeroing ~9KB per node adds
  // up over thousands of nodes per fit).
  std::vector<std::vector<std::int64_t>> hist_pool;

  void init() {
    p = x.features;
    offset.resize(p);
    total_bins = 0;
    for (std::size_t f = 0; f < p; ++f) {
      offset[f] = total_bins;
      total_bins += binner.bins(f);
    }
    packed_limit = std::max<std::size_t>(
        2, g_packed_row_limit.load(std::memory_order_relaxed));
    use_simd = common::simd_enabled();
  }

  [[nodiscard]] std::vector<std::int64_t> take_buffer(std::size_t size) {
    if (hist_pool.empty()) return std::vector<std::int64_t>(size, 0);
    std::vector<std::int64_t> h = std::move(hist_pool.back());
    hist_pool.pop_back();
    h.assign(size, 0);
    return h;
  }
  void recycle(std::vector<std::int64_t>&& h) {
    if (!h.empty()) hist_pool.push_back(std::move(h));
  }

  /// Node histogram in whichever representation the row count dictates.
  [[nodiscard]] NodeHist build_hist(std::span<const std::uint32_t> rows) {
    if (rows.size() < packed_limit) return {build_hist_packed(rows), false};
    return build_hist_wide(rows);
  }

  /// Wide path: shard the rows into sub-limit runs, accumulate each through
  /// the (parallel, SIMD-dispatched) packed kernel, and merge the unpacked
  /// (sum, count) fields into the two-field wide buffer. Every step is exact
  /// int64 arithmetic, so the result equals what an unbounded packed
  /// accumulation would hold — sharding cannot change a split decision.
  [[nodiscard]] NodeHist build_hist_wide(std::span<const std::uint32_t> rows) {
    const auto nb = static_cast<std::size_t>(total_bins);
    NodeHist out{take_buffer(2 * nb), /*wide=*/true};
    const std::size_t shard = packed_limit - 1;  // counts stay below the cap
    for (std::size_t s = 0; s < rows.size(); s += shard) {
      const std::size_t len = std::min(shard, rows.size() - s);
      std::vector<std::int64_t> part = build_hist_packed(rows.subspan(s, len));
      for (std::size_t b = 0; b < nb; ++b) {
        out.buf[b] += packed_sum(part[b]);
        out.buf[nb + b] += packed_count(part[b]);
      }
      recycle(std::move(part));
    }
    g_wide_builds.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  [[nodiscard]] std::vector<std::int64_t> build_hist_packed(
      std::span<const std::uint32_t> rows) {
    // Buffer recycling is only safe when accumulate runs on this thread: a
    // 1-thread pool, or a node small enough that parallel_map_reduce stays
    // single-chunk (rows <= grain) and therefore inline. Multi-threaded
    // chunks allocate their own.
    const bool pooled =
        global_pool().thread_count() <= 1 || rows.size() <= kHistGrain;
    const auto accumulate = [&](std::size_t lo, std::size_t hi) {
      // Two arenas, alternating rows: consecutive rows that hit the same
      // bucket would otherwise serialize on the store-to-load forward of one
      // int64 — skewed (categorical-like) features do this constantly. The
      // arenas merge exactly (integer adds), so parity is unaffected. The
      // uint16 global plane folds the per-feature histogram offset into the
      // matrix itself: one indexed add per cell.
      const auto nb = static_cast<std::size_t>(total_bins);
      std::vector<std::int64_t> h = pooled
                                        ? take_buffer(2 * nb)
                                        : std::vector<std::int64_t>(2 * nb, 0);
      std::int64_t* h0 = h.data();
      std::int64_t* h1 = h.data() + nb;
      if (x.global.empty()) {
        // Generic fallback (> 64k total bins): uint8 bins + explicit offsets.
        const int* off = offset.data();
        for (std::size_t k = lo; k < hi; ++k) {
          const std::uint8_t* rb = x.bins.data() + rows[k] * p;
          const std::int64_t gp =
            (static_cast<std::int64_t>(grad[rows[k]]) << kCountBits) | 1;
          for (std::size_t f = 0; f < p; ++f) {
            h0[static_cast<std::size_t>(off[f]) + rb[f]] += gp;
          }
        }
        h.resize(nb);
        return h;
      }
      // The accumulation loop lives in ml/gbdt_kernels.h: the scalar form is
      // the exact two-arena loop this function always ran; the AVX2 form is
      // bit-identical (integer adds reassociate exactly) and chosen once per
      // fit by the runtime dispatch.
      if (use_simd) {
        kernels::hist_accumulate_avx2(x.global.data(), p, rows.data(), lo, hi,
                                      grad.data(), h0, h1);
      } else {
        kernels::hist_accumulate_scalar(x.global.data(), p, rows.data(), lo,
                                        hi, grad.data(), h0, h1);
      }
      for (std::size_t b = 0; b < nb; ++b) h0[b] += h1[b];
      h.resize(nb);
      return h;
    };
    // int64 buckets merge exactly in any order, so per-chunk buffers built
    // concurrently and folded in chunk order equal the serial accumulation.
    return parallel_map_reduce<std::vector<std::int64_t>>(
        0, rows.size(), kHistGrain, accumulate,
        [](std::vector<std::int64_t>& acc, std::vector<std::int64_t>&& part) {
          for (std::size_t b = 0; b < acc.size(); ++b) acc[b] += part[b];
        });
  }

  /// Best split for feature f, reading whichever bucket view `hist` holds.
  [[nodiscard]] SplitDecision split_feature(const NodeHist& hist, std::size_t f,
                                            std::int64_t total_q,
                                            std::int64_t total_cnt) const {
    if (hist.wide) {
      const auto nb = static_cast<std::size_t>(total_bins);
      return best_split_for_feature(
          hist.buf.data() + offset[f], hist.buf.data() + nb + offset[f],
          binner.bins(f), total_q, total_cnt, inv_scale,
          static_cast<std::int32_t>(f), cfg);
    }
    return best_split_packed(hist.buf.data() + offset[f], binner.bins(f),
                             total_q, total_cnt, inv_scale,
                             static_cast<std::int32_t>(f), cfg);
  }

  std::int32_t build(std::span<std::uint32_t> rows, NodeHist hist,
                     std::int64_t total_q, int depth) {
    const auto node_id = static_cast<std::int32_t>(nodes.size());
    nodes.emplace_back();
    const auto total_cnt = static_cast<std::int64_t>(rows.size());

    auto make_leaf = [&] {
      nodes[static_cast<std::size_t>(node_id)].value =
          leaf_value(total_q, total_cnt, inv_scale, cfg);
      for (const std::uint32_t r : rows) leaf_of[r] = node_id;
      return node_id;
    };

    if (depth >= cfg.max_depth ||
        total_cnt < 2 * static_cast<std::int64_t>(cfg.min_samples_leaf)) {
      recycle(std::move(hist.buf));
      return make_leaf();
    }

    SplitDecision best;
    for (std::size_t f = 0; f < p; ++f) {
      const SplitDecision d = split_feature(hist, f, total_q, total_cnt);
      if (d.gain > best.gain) best = d;
    }
    if (best.feature < 0 || best.gain <= 1e-12) {
      recycle(std::move(hist.buf));
      return make_leaf();
    }

    // The histogram counts are exact row counts, so the split sizes are
    // known before touching a row. (A zero-sized side — possible only with
    // min_samples_leaf == 0 — leafs out exactly like the reference's
    // post-partition guard.)
    const std::size_t n_left = static_cast<std::size_t>(best.left_cnt);
    if (n_left == 0 || n_left == rows.size()) {
      recycle(std::move(hist.buf));
      return make_leaf();
    }

    // Stable branchless split: one store per row at an arithmetically
    // selected cursor instead of std::partition's 50/50-mispredicted branch
    // and swaps (a ternary select here compiles to exactly that branch).
    // Stability keeps every node's row list sorted ascending, which keeps
    // the child histogram gathers prefetch-friendly. Row order never affects
    // results (int64 histograms are order-exact), only speed.
    const std::size_t split_col = static_cast<std::size_t>(best.feature);
    {
      thread_local std::vector<std::uint32_t> split_tmp;
      split_tmp.resize(rows.size());
      const std::uint8_t* bins = x.bins.data();
      std::size_t li = 0;
      std::size_t ri = n_left;
      for (const std::uint32_t r : rows) {
        const auto go_right = static_cast<std::size_t>(
            bins[static_cast<std::size_t>(r) * p + split_col] > best.bin);
        split_tmp[li + go_right * (ri - li)] = r;
        ri += go_right;
        li += 1 - go_right;
      }
      std::copy(split_tmp.begin(), split_tmp.end(), rows.begin());
    }
    const auto left_rows = rows.subspan(0, n_left);
    const auto right_rows = rows.subspan(n_left);

    {
      auto& node = nodes[static_cast<std::size_t>(node_id)];
      node.feature = best.feature;
      node.split_bin = best.bin;
      node.threshold = binner.edge(split_col, best.bin);
      node.gain = best.gain;
    }

    const std::int64_t right_q = total_q - best.left_q;
    // A child only needs a histogram if it will attempt a split itself (the
    // entry checks of the recursive call). Skipping the build for leaf-only
    // children drops the entire last tree level's histogram work.
    const auto will_split = [&](std::size_t n_rows) {
      return depth + 1 < cfg.max_depth &&
             static_cast<std::int64_t>(n_rows) >=
                 2 * static_cast<std::int64_t>(cfg.min_samples_leaf);
    };
    NodeHist left_hist;
    NodeHist right_hist;
    if (will_split(left_rows.size()) || will_split(right_rows.size())) {
      // Build the smaller child's histogram; the larger child's is the
      // parent's minus the sibling's, exact in int64. (A wide parent keeps
      // its derived child wide even if that child's count re-fits the packed
      // cap — the representations subtract exactly either way.)
      if (left_rows.size() <= right_rows.size()) {
        left_hist = build_hist(left_rows);
        right_hist = std::move(hist);
        subtract(right_hist, left_hist);
      } else {
        right_hist = build_hist(right_rows);
        left_hist = std::move(hist);
        subtract(left_hist, right_hist);
      }
    } else {
      recycle(std::move(hist.buf));
    }
    const std::int32_t left =
        build(left_rows, std::move(left_hist), best.left_q, depth + 1);
    const std::int32_t right =
        build(right_rows, std::move(right_hist), right_q, depth + 1);
    auto& node = nodes[static_cast<std::size_t>(node_id)];
    node.left = left;
    node.right = right;
    return node_id;
  }

  void subtract(NodeHist& parent, const NodeHist& child) const {
    if (parent.wide == child.wide) {
      // Same representation: elementwise over the whole buffer (for wide,
      // that subtracts the sum and count halves in one sweep).
      for (std::size_t b = 0; b < parent.buf.size(); ++b) {
        parent.buf[b] -= child.buf[b];
      }
      return;
    }
    // Wide parent, packed child: unpack the child's fields into the two
    // halves. (A packed parent cannot have a wide child — the child's rows
    // are a subset of the parent's.)
    assert(parent.wide && !child.wide);
    const auto nb = static_cast<std::size_t>(total_bins);
    for (std::size_t b = 0; b < nb; ++b) {
      parent.buf[b] -= packed_sum(child.buf[b]);
      parent.buf[nb + b] -= packed_count(child.buf[b]);
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// RegressionTree
// ---------------------------------------------------------------------------

void RegressionTree::fit(const BinnedMatrix& x, const FeatureBinner& binner,
                         const QuantizedGradients& grad,
                         std::span<std::uint32_t> rows,
                         std::span<std::int32_t> leaf_of, const GBDTConfig& cfg) {
  nodes_.clear();
  if (rows.empty()) return;
  // Each engine consumes its own layout (see BinLayout).
  assert(x.layout == (cfg.engine == GBDTEngine::kReference
                          ? BinLayout::kColumnMajor
                          : BinLayout::kRowMajor));
  if (cfg.engine == GBDTEngine::kReference) {
    ReferenceBuilder builder{x,  binner,  grad.q, grad.inv_scale,
                             cfg, nodes_, leaf_of, {},
                             {}};
    builder.build(rows, 0);
    return;
  }
  HistogramBuilder builder{x,  binner,  grad.q, grad.inv_scale,
                           cfg, nodes_, leaf_of};
  builder.init();
  const bool root_splits =
      cfg.max_depth > 0 &&
      rows.size() >= static_cast<std::size_t>(2 * cfg.min_samples_leaf);
  NodeHist root_hist;
  if (root_splits) root_hist = builder.build_hist(rows);
  std::int64_t total_q = 0;
  if (!root_hist.empty() && builder.p > 0) {
    // Feature 0's slice counts every row exactly once: its bucket sums add
    // up to the root gradient total, saving the row scan. (Wide buffers
    // store sums unpacked in the first half.)
    for (int b = 0; b < binner.bins(0); ++b) {
      const std::int64_t bucket = root_hist.buf[static_cast<std::size_t>(b)];
      total_q += root_hist.wide ? bucket : packed_sum(bucket);
    }
  } else {
    for (const std::uint32_t r : rows) total_q += grad.q[r];
  }
  builder.build(rows, std::move(root_hist), total_q, 0);
}

double RegressionTree::predict(std::span<const double> features) const noexcept {
  if (nodes_.empty()) return 0.0;
  std::int32_t i = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    if (n.feature < 0) return n.value;
    i = features[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                     : n.right;
  }
}

std::int32_t RegressionTree::leaf_for_binned(const BinnedMatrix& x,
                                             std::size_t row) const noexcept {
  assert(x.layout == BinLayout::kRowMajor);
  const std::uint8_t* rb = x.bins.data() + row * x.features;
  std::int32_t i = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    if (n.feature < 0) return i;
    i = rb[static_cast<std::size_t>(n.feature)] <= n.split_bin ? n.left : n.right;
  }
}

// ---------------------------------------------------------------------------
// GBDTRegressor
// ---------------------------------------------------------------------------

void GBDTRegressor::fit(const Dataset& full_data) {
  trees_.clear();
  forest_ = PackedForest();
  train_rmse_.clear();
  n_features_ = full_data.features();
  base_prediction_ = 0.0;
  binner_ = FeatureBinner();
  if (full_data.empty()) return;

  Rng rng(config_.seed);

  // Optional row cap: train on a uniform subsample of the data.
  const Dataset* data = &full_data;
  Dataset capped(full_data.features());
  if (config_.max_training_rows > 0 &&
      full_data.rows() > config_.max_training_rows) {
    capped.reserve(config_.max_training_rows);
    const double keep = static_cast<double>(config_.max_training_rows) /
                        static_cast<double>(full_data.rows());
    for (std::size_t r = 0; r < full_data.rows(); ++r) {
      if (rng.bernoulli(keep)) capped.add_row(full_data.row(r), full_data.target(r));
    }
    data = &capped;
  }
  const std::size_t n = data->rows();
  // The Bernoulli cap can reject every row of a tiny input; without this
  // guard the mean below would be 0/0 and every prediction NaN.
  if (n == 0) return;

  // No engine fallback on size: nodes whose row count reaches the packed
  // 24-bit limit build wide sharded histograms instead (NodeHist), so the
  // histogram engine handles cluster-lifetime training sets directly.
  const GBDTConfig& cfg = config_;

  double mean = 0.0;
  for (std::size_t r = 0; r < n; ++r) mean += data->target(r);
  base_prediction_ = mean / static_cast<double>(n);

  binner_.fit(*data, cfg.max_bins, rng);
  const BinnedMatrix binned =
      bin_dataset(*data, binner_,
                  cfg.engine == GBDTEngine::kReference ? BinLayout::kColumnMajor
                                                       : BinLayout::kRowMajor);

  std::vector<double> prediction(n, base_prediction_);
  std::vector<double> residuals(n, 0.0);
  std::vector<std::int32_t> leaf_of(n, -1);
  // Per-tree scratch reused across iterations (fresh vectors would fault in
  // hundreds of pages per tree).
  std::vector<std::uint32_t> rows(n);
  QuantizedGradients grad;

  trees_.reserve(static_cast<std::size_t>(cfg.n_trees));
  // Histogram engine: the previous tree's prediction update is fused into
  // this iteration's residual pass (one sweep instead of two; the final
  // tree's update feeds nothing and is skipped). The per-element arithmetic
  // and order are unchanged, so residuals and RMSE are bitwise identical to
  // the separate passes. With a multi-thread pool the update runs as its own
  // row-parallel pass instead (same elementwise ops, same results) so it can
  // use the pool; the RMSE reduction stays serial either way to keep its
  // summation order fixed.
  const RegressionTree* fused_update = nullptr;
  const bool fuse_update = cfg.engine == GBDTEngine::kHistogram &&
                           global_pool().thread_count() <= 1;
  for (int t = 0; t < cfg.n_trees; ++t) {
    double sq = 0.0;
    double max_abs = 0.0;
    // Histogram engine: the row subsample rides in the same sweep (the
    // Bernoulli draws happen once per row in ascending order either way, so
    // the RNG stream and the chosen rows are identical to a separate pass).
    const bool fuse_sample =
        cfg.engine == GBDTEngine::kHistogram && cfg.subsample < 1.0;
    std::size_t taken = 0;
    if (fuse_sample) rows.resize(n);
    if (fused_update != nullptr) {
      const auto& prev_nodes = fused_update->nodes();
      for (std::size_t r = 0; r < n; ++r) {
        std::int32_t leaf = leaf_of[r];
        if (leaf < 0) leaf = fused_update->leaf_for_binned(binned, r);
        prediction[r] +=
            cfg.learning_rate * prev_nodes[static_cast<std::size_t>(leaf)].value;
        residuals[r] = data->target(r) - prediction[r];
        sq += residuals[r] * residuals[r];
        max_abs = std::max(max_abs, std::fabs(residuals[r]));
        if (fuse_sample) {
          rows[taken] = static_cast<std::uint32_t>(r);
          taken += rng.bernoulli(cfg.subsample) ? 1 : 0;
        }
      }
      fused_update = nullptr;
    } else {
      for (std::size_t r = 0; r < n; ++r) {
        residuals[r] = data->target(r) - prediction[r];
        sq += residuals[r] * residuals[r];
        max_abs = std::max(max_abs, std::fabs(residuals[r]));
        if (fuse_sample) {
          rows[taken] = static_cast<std::uint32_t>(r);
          taken += rng.bernoulli(cfg.subsample) ? 1 : 0;
        }
      }
    }
    train_rmse_.push_back(std::sqrt(sq / static_cast<double>(n)));

    if (fuse_sample) {
      rows.resize(taken);
    } else if (cfg.subsample >= 1.0) {
      taken = n;
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), 0);
    } else {
      // Reference engine: retained separate subsampling pass. Branchless
      // take — same Bernoulli stream and row set as the naive push_back
      // loop, without its mispredicted branch.
      rows.resize(n);
      taken = 0;
      for (std::size_t r = 0; r < n; ++r) {
        rows[taken] = static_cast<std::uint32_t>(r);
        taken += rng.bernoulli(cfg.subsample) ? 1 : 0;
      }
      rows.resize(taken);
    }
    if (taken < static_cast<std::size_t>(2 * cfg.min_samples_leaf)) break;

    grad.assign(residuals, max_abs);
    std::fill(leaf_of.begin(), leaf_of.end(), -1);
    RegressionTree tree;
    tree.fit(binned, binner_, grad, rows, leaf_of, cfg);
    if (tree.empty()) break;

    const auto& nodes = tree.nodes();
    if (cfg.engine == GBDTEngine::kReference) {
      // Retained pre-histogram-engine update: re-traverse raw features per
      // row. Lands in the same leaf as the binned walk (bin <= split_bin iff
      // value <= threshold), so both engines update predictions bitwise
      // identically.
      for (std::size_t r = 0; r < n; ++r) {
        std::int32_t i = 0;
        while (nodes[static_cast<std::size_t>(i)].feature >= 0) {
          const auto& node = nodes[static_cast<std::size_t>(i)];
          const double v = data->at(r, static_cast<std::size_t>(node.feature));
          i = v <= node.threshold ? node.left : node.right;
        }
        prediction[r] +=
            cfg.learning_rate * nodes[static_cast<std::size_t>(i)].value;
      }
    } else if (fuse_update) {
      // Applied lazily at the top of the next iteration (fused with the
      // residual pass); leaf_of stays valid until then.
      trees_.push_back(std::move(tree));
      fused_update = &trees_.back();
      continue;
    } else {
      // Sampled rows had their leaf recorded during construction; only
      // out-of-sample rows walk the tree, and they walk the binned matrix.
      parallel_for_chunks(
          0, n,
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t r = lo; r < hi; ++r) {
              std::int32_t leaf = leaf_of[r];
              if (leaf < 0) leaf = tree.leaf_for_binned(binned, r);
              prediction[r] += cfg.learning_rate *
                               nodes[static_cast<std::size_t>(leaf)].value;
            }
          },
          /*grain=*/8192);
    }
    trees_.push_back(std::move(tree));
  }
  forest_.build(trees_);
}

double GBDTRegressor::predict(std::span<const double> features) const noexcept {
  double out = base_prediction_;
  for (const auto& tree : trees_) {
    out += config_.learning_rate * tree.predict(features);
  }
  return out;
}

std::vector<double> GBDTRegressor::predict_many(const Dataset& data) const {
  std::vector<double> out(data.rows(), base_prediction_);
  if (data.empty() || trees_.empty()) return out;
  const BinnedMatrix binned = bin_dataset(data, binner_, BinLayout::kRowMajor);
  // SIMD walk: blocked rows over the SoA forest. Bit-identical to the scalar
  // path below (same mul/add per row in the same tree order), so dispatch is
  // free to differ across machines. The int32 guard covers the kernel's
  // 32-bit gather offsets (~238M rows at 9 features before it trips).
  if (common::simd_enabled() && !forest_.empty() && binned.features > 0 &&
      data.rows() * binned.features + binned.features <=
          static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    parallel_for_chunks(
        0, data.rows(),
        [&](std::size_t lo, std::size_t hi) {
          kernels::predict_forest_avx2(forest_, binned.bins.data(),
                                       binned.features, lo, hi,
                                       config_.learning_rate, out.data());
        },
        /*grain=*/4096);
    return out;
  }
  parallel_for_chunks(
      0, data.rows(),
      [&](std::size_t lo, std::size_t hi) {
        // Tree-at-a-time within the chunk keeps each tree's nodes hot; the
        // per-row accumulation order over trees matches predict(), so the
        // results are bitwise identical to the per-row path.
        for (const auto& tree : trees_) {
          const auto& nodes = tree.nodes();
          for (std::size_t r = lo; r < hi; ++r) {
            const auto leaf =
                static_cast<std::size_t>(tree.leaf_for_binned(binned, r));
            out[r] += config_.learning_rate * nodes[leaf].value;
          }
        }
      },
      /*grain=*/4096);
  return out;
}

// ---------------------------------------------------------------------------
// Persistence (docs/FORMATS.md)
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kTreeTag = serialize::fourcc("TREE");
constexpr std::uint32_t kTreeVersion = 1;
constexpr std::uint32_t kGbdtTag = serialize::fourcc("GBDT");
constexpr std::uint32_t kGbdtVersion = 1;

[[noreturn]] void corrupt(const std::string& what) {
  throw serialize::Error(serialize::ErrorCode::kCorrupt, what);
}

}  // namespace

void RegressionTree::save(serialize::Writer& w) const {
  w.begin_section(kTreeTag);
  w.u32(kTreeVersion);
  w.u64(nodes_.size());
  for (const Node& n : nodes_) {
    w.i32(n.feature);
    w.i32(n.split_bin);
    w.f64(n.threshold);
    w.i32(n.left);
    w.i32(n.right);
    w.f64(n.value);
    w.f64(n.gain);
  }
  w.end_section();
}

void RegressionTree::load(serialize::Reader& r, std::size_t n_features) {
  serialize::Reader s = r.section(kTreeTag);
  const std::uint32_t version = s.u32();
  if (version != kTreeVersion) {
    throw serialize::Error(serialize::ErrorCode::kUnsupportedVersion,
                           "tree section version " + std::to_string(version));
  }
  const std::size_t count = s.length(36);  // bytes per serialized node
  // fit() never emits an empty tree (the regressor drops them before
  // saving), and leaf_for_binned reads nodes_[0] unconditionally — so a
  // zero-node tree can only be corruption.
  if (count == 0) corrupt("tree with zero nodes");
  std::vector<Node> nodes(count);
  for (std::size_t i = 0; i < count; ++i) {
    Node& n = nodes[i];
    n.feature = s.i32();
    n.split_bin = s.i32();
    n.threshold = s.f64();
    n.left = s.i32();
    n.right = s.i32();
    n.value = s.f64();
    n.gain = s.f64();
    if (n.feature < 0) continue;  // leaf: child links are ignored
    // Interior node. Trees are built preorder (children are appended after
    // their parent), so requiring child > own index both matches every
    // writer and makes cycles — hence unbounded predict() loops —
    // unrepresentable.
    if (static_cast<std::size_t>(n.feature) >= n_features) {
      corrupt("tree node " + std::to_string(i) + " splits on feature " +
              std::to_string(n.feature) + " of " + std::to_string(n_features));
    }
    const auto in_range = [&](std::int32_t child) {
      return child > static_cast<std::int32_t>(i) &&
             static_cast<std::size_t>(child) < count;
    };
    if (!in_range(n.left) || !in_range(n.right)) {
      corrupt("tree node " + std::to_string(i) + " has out-of-order children");
    }
  }
  s.close("tree");
  nodes_ = std::move(nodes);
}

void GBDTRegressor::save(serialize::Writer& w) const {
  w.begin_section(kGbdtTag);
  w.u32(kGbdtVersion);
  w.i32(config_.n_trees);
  w.i32(config_.max_depth);
  w.f64(config_.learning_rate);
  w.i32(config_.min_samples_leaf);
  w.f64(config_.subsample);
  w.i32(config_.max_bins);
  w.f64(config_.lambda);
  w.u64(config_.seed);
  w.u64(config_.max_training_rows);
  w.u8(static_cast<std::uint8_t>(config_.engine));
  w.f64(base_prediction_);
  w.u64(n_features_);
  w.vec_f64(train_rmse_);
  binner_.save(w);
  w.u64(trees_.size());
  for (const RegressionTree& t : trees_) t.save(w);
  w.end_section();
}

void GBDTRegressor::load(serialize::Reader& r) {
  serialize::Reader s = r.section(kGbdtTag);
  const std::uint32_t version = s.u32();
  if (version != kGbdtVersion) {
    throw serialize::Error(serialize::ErrorCode::kUnsupportedVersion,
                           "gbdt section version " + std::to_string(version));
  }
  GBDTConfig cfg;
  cfg.n_trees = s.i32();
  cfg.max_depth = s.i32();
  cfg.learning_rate = s.f64();
  cfg.min_samples_leaf = s.i32();
  cfg.subsample = s.f64();
  cfg.max_bins = s.i32();
  cfg.lambda = s.f64();
  cfg.seed = s.u64();
  cfg.max_training_rows = s.u64();
  const std::uint8_t engine = s.u8();
  if (engine > static_cast<std::uint8_t>(GBDTEngine::kReference)) {
    corrupt("unknown engine id " + std::to_string(engine));
  }
  cfg.engine = static_cast<GBDTEngine>(engine);
  const double base = s.f64();
  const std::uint64_t n_features = s.u64();
  std::vector<double> rmse = s.vec_f64();
  FeatureBinner binner;
  binner.load(s);
  // A trained model's binner covers exactly its features; an untrained one
  // has neither. Anything else cannot have come from save().
  if (binner.features() != 0 && binner.features() != n_features) {
    corrupt("binner covers " + std::to_string(binner.features()) +
            " features, model has " + std::to_string(n_features));
  }
  const std::size_t n_trees = s.length(12);  // section tag + length minimum
  std::vector<RegressionTree> trees(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    trees[t].load(s, static_cast<std::size_t>(n_features));
  }
  s.close("gbdt");
  // predict_many bins every feature through the binner; trees without a
  // matching binner would index an empty BinnedMatrix.
  if (!trees.empty() && binner.features() != n_features) {
    corrupt("model has " + std::to_string(n_trees) + " trees but the binner"
            " covers " + std::to_string(binner.features()) + " of " +
            std::to_string(n_features) + " features");
  }

  config_ = cfg;
  base_prediction_ = base;
  n_features_ = static_cast<std::size_t>(n_features);
  train_rmse_ = std::move(rmse);
  binner_ = std::move(binner);
  trees_ = std::move(trees);
  forest_.build(trees_);
}

std::size_t gbdt_set_packed_row_limit(std::size_t limit) noexcept {
  return g_packed_row_limit.exchange(limit == 0 ? kPackedRowLimit : limit,
                                     std::memory_order_relaxed);
}

std::uint64_t gbdt_wide_histogram_builds() noexcept {
  return g_wide_builds.load(std::memory_order_relaxed);
}

void PackedForest::build(std::span<const RegressionTree> trees) {
  n_trees = 0;
  levels = 0;
  split.clear();
  value.clear();
  if (trees.empty()) return;
  // Forest-wide depth: the deepest leaf of any tree. Node depths fall out of
  // one forward pass per tree: nodes are stored preorder, so every child
  // index is visited after its parent.
  std::int32_t max_depth = 0;
  for (const RegressionTree& tree : trees) {
    const auto& nodes = tree.nodes();
    std::vector<std::int32_t> d(nodes.size(), 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& n = nodes[i];
      if (n.feature >= 0) {
        d[static_cast<std::size_t>(n.left)] = d[i] + 1;
        d[static_cast<std::size_t>(n.right)] = d[i] + 1;
      }
      max_depth = std::max(max_depth, d[i]);
    }
  }
  if (max_depth > kMaxLevels) return;  // stays empty; callers fall back
  const std::size_t slots = (std::size_t{1} << max_depth) - 1;  // interior
  const std::size_t leaves = slots + 1;                         // 2^levels
  // The SIMD walk computes leaf-value addresses in int32 lanes.
  if (trees.size() * leaves >
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    return;
  }
  // Phantom slots (below a shallow leaf) keep the dummy split 0xff:
  // feature 0, bin 255 — in-bounds to read and never compares "right",
  // though both phantom subtrees replicate the same leaf so the direction
  // is irrelevant.
  split.assign(trees.size() * slots, 0xff);
  value.assign(trees.size() * leaves, 0.0);
  for (std::size_t t = 0; t < trees.size(); ++t) {
    const auto& nodes = trees[t].nodes();
    std::int32_t* sp = split.data() + t * slots;
    double* lv = value.data() + t * leaves;
    // Pad the tree to a perfect tree of depth `max_depth`: descend with
    // (node, heap slot, depth); a leaf met early is carried down both
    // phantom children until the deepest level, where its value lands.
    const auto fill = [&](auto&& self, std::int32_t ni, std::size_t slot,
                          std::int32_t d) -> void {
      const auto& n = nodes[static_cast<std::size_t>(ni)];
      if (d == max_depth) {
        lv[slot - slots] = n.value;
        return;
      }
      if (n.feature >= 0) {
        sp[slot] = (n.feature << 8) | n.split_bin;
        self(self, n.left, 2 * slot + 1, d + 1);
        self(self, n.right, 2 * slot + 2, d + 1);
      } else {
        self(self, ni, 2 * slot + 1, d + 1);
        self(self, ni, 2 * slot + 2, d + 1);
      }
    };
    fill(fill, 0, 0, 0);
  }
  n_trees = static_cast<std::int32_t>(trees.size());
  levels = max_depth;
}

std::vector<double> GBDTRegressor::feature_importance() const {
  std::vector<double> importance(n_features_, 0.0);
  for (const auto& tree : trees_) {
    for (const auto& node : tree.nodes()) {
      if (node.feature >= 0) {
        importance[static_cast<std::size_t>(node.feature)] += node.gain;
      }
    }
  }
  return importance;
}

}  // namespace helios::ml
