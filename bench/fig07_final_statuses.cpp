// Figure 7: (a) final statuses of CPU vs GPU jobs; (b) final statuses by GPU
// demand (pooled across the four Helios clusters).
#include <cstdio>
#include <map>

#include "analysis/job_stats.h"
#include "bench_common.h"
#include "common/text_table.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace analysis = helios::analysis;
  using helios::trace::JobState;

  bench::print_header("Figure 7", "Distribution of jobs by final status");

  // (a) pooled CPU vs GPU status fractions.
  std::array<double, 3> gpu{};
  std::array<double, 3> cpu{};
  double gpu_n = 0.0;
  double cpu_n = 0.0;
  for (const auto& tp : bench::operated_helios_traces()) {
    const helios::trace::Trace& t = *tp;
    for (const auto& j : t.jobs()) {
      auto& a = j.is_gpu_job() ? gpu : cpu;
      auto& n = j.is_gpu_job() ? gpu_n : cpu_n;
      ++a[static_cast<std::size_t>(j.state)];
      ++n;
    }
  }
  for (auto& v : gpu) v /= gpu_n;
  for (auto& v : cpu) v /= cpu_n;

  TextTable ta({"Job type", "Completed", "Canceled", "Failed"});
  ta.add_row({"GPU (measured)", TextTable::cell_pct(gpu[0]),
              TextTable::cell_pct(gpu[1]), TextTable::cell_pct(gpu[2])});
  ta.add_row({"GPU (paper)", "62.4%", "22.1%", "15.5%"});
  ta.add_row({"CPU (measured)", TextTable::cell_pct(cpu[0]),
              TextTable::cell_pct(cpu[1]), TextTable::cell_pct(cpu[2])});
  ta.add_row({"CPU (paper)", "90.9%", "3.0%", "6.1%"});
  std::printf("(a) CPU vs GPU final statuses\n%s\n", ta.str().c_str());

  // (b) pooled status by GPU demand.
  std::map<int, std::array<double, 4>> by_size;  // gpus -> c/x/f/n
  for (const auto& tp : bench::operated_helios_traces()) {
    const helios::trace::Trace& t = *tp;
    for (const auto& s : analysis::status_by_gpu_count(t)) {
      auto& a = by_size[s.gpus];
      a[0] += s.completed * static_cast<double>(s.jobs);
      a[1] += s.canceled * static_cast<double>(s.jobs);
      a[2] += s.failed * static_cast<double>(s.jobs);
      a[3] += static_cast<double>(s.jobs);
    }
  }
  TextTable tb({"GPUs", "Completed", "Canceled", "Failed", "jobs"});
  for (const auto& [gpus, a] : by_size) {
    if (a[3] < 20) continue;  // skip statistically empty buckets
    tb.add_row({TextTable::cell(static_cast<std::int64_t>(gpus)),
                TextTable::cell_pct(a[0] / a[3]), TextTable::cell_pct(a[1] / a[3]),
                TextTable::cell_pct(a[2] / a[3]),
                TextTable::cell(static_cast<std::int64_t>(a[3]))});
  }
  std::printf("(b) final status by GPU demand\n%s\n", tb.str().c_str());

  bench::print_expectation("completion falls with size, 2-GPU bump",
                           "monotone decrease, >=64 GPUs <25% complete",
                           "see (b)");
  bench::print_expectation("large jobs mostly canceled", "~70% at >=64 GPUs",
                           "see (b) canceled column");
  return 0;
}
