#include "sim/vc_simulator.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>
#include <set>

namespace helios::sim {

using trace::JobRecord;
using trace::Trace;

namespace {

/// Policy-queue ordering: priority, then submit time, then shard-local id as
/// the final deterministic tie-break. Local ids are assigned in trace order,
/// so the local-id tie-break is exactly the trace-index tie-break the
/// cluster-wide loop used.
struct QueueKey {
  double priority = 0.0;
  UnixTime submit = 0;
  std::size_t local = 0;  ///< position in this shard's arrivals

  bool operator<(const QueueKey& o) const noexcept {
    if (priority != o.priority) return priority < o.priority;
    if (submit != o.submit) return submit < o.submit;
    return local < o.local;
  }
};

/// Dense shard-local copy of the per-job fields the event loop touches, so
/// the hot path never chases outcomes[arrivals[lj]] through two indirections
/// into the (globally interleaved) outcomes array.
struct LocalJob {
  UnixTime submit = 0;
  std::int64_t remaining = 0;  ///< seconds left to run (updates on preempt)
  std::int64_t total = 0;      ///< full duration (FaultRestart::kRestart)
  std::size_t trace_index = 0;
  std::int32_t gpus = 0;
  double priority = 0.0;
  double watts = 0.0;  ///< total draw while running: gpus × per-GPU watts
};

struct RunningJob {
  std::size_t local = 0;  ///< arrivals position of the job
  Allocation alloc;
  std::int64_t run_start = 0;
  std::int64_t remaining = 0;  ///< at run_start
  double watts = 0.0;  ///< draw added at start; subtracted verbatim on stop
  std::uint64_t generation = 0;
  bool active = false;
};

struct FinishEvent {
  std::int64_t time = 0;
  std::size_t slot = 0;
  std::uint64_t generation = 0;

  bool operator>(const FinishEvent& o) const noexcept { return time > o.time; }
};

/// Two-level bitmap over a fixed total order: bit p set <=> the job at
/// sorted position p is queued. set/clear are O(1); first() and in-order
/// iteration use count-trailing-zeros over at most n/4096 summary words.
class OrderedBitmap {
 public:
  void reserve(std::size_t n) {
    const std::size_t words = (n + 63) / 64;
    bits_.assign(words, 0);
    summary_.assign((words + 63) / 64, 0);
  }

  void set(std::size_t p) {
    bits_[p >> 6] |= std::uint64_t{1} << (p & 63);
    summary_[p >> 12] |= std::uint64_t{1} << ((p >> 6) & 63);
  }

  void clear(std::size_t p) {
    const std::size_t w = p >> 6;
    bits_[w] &= ~(std::uint64_t{1} << (p & 63));
    if (bits_[w] == 0) summary_[w >> 6] &= ~(std::uint64_t{1} << (w & 63));
  }

  /// Lowest set position; call only when at least one bit is set.
  [[nodiscard]] std::size_t first() const noexcept {
    std::size_t sw = 0;
    while (summary_[sw] == 0) ++sw;
    const std::size_t w =
        (sw << 6) + static_cast<std::size_t>(std::countr_zero(summary_[sw]));
    return (w << 6) + static_cast<std::size_t>(std::countr_zero(bits_[w]));
  }

  /// Lowest set position strictly greater than `p`, or SIZE_MAX.
  [[nodiscard]] std::size_t next_after(std::size_t p) const noexcept {
    std::size_t w = p >> 6;
    const std::uint64_t rest = bits_[w] >> (p & 63) >> 1;
    if (rest != 0) {
      return p + 1 + static_cast<std::size_t>(std::countr_zero(rest));
    }
    for (std::size_t sw = w >> 6; sw < summary_.size(); ++sw) {
      std::uint64_t s = summary_[sw];
      if (sw == (w >> 6)) {
        // Only summary bits for words strictly greater than w.
        const std::size_t k = w & 63;
        s = k == 63 ? 0 : s & (~std::uint64_t{0} << (k + 1));
      }
      if (s == 0) continue;
      const std::size_t nw =
          (sw << 6) + static_cast<std::size_t>(std::countr_zero(s));
      return (nw << 6) + static_cast<std::size_t>(std::countr_zero(bits_[nw]));
    }
    return SIZE_MAX;
  }

 private:
  std::vector<std::uint64_t> bits_;
  std::vector<std::uint64_t> summary_;
};

/// Head-of-line queue over shard-local job ids, with a backend chosen by
/// what the policy actually needs:
///  * kBitmap — FIFO never reorders (arrival order IS priority order), so
///    the live queue is an OrderedBitmap over local ids: O(1) push/remove,
///    O(1)-ish head, in-order scans for backfill. A job requeued after a
///    node-failure kill re-sets its bit, i.e. it rejoins at its submit-order
///    position — FIFO's priority order, like every other backend.
///    (Presorting the other policies' static priorities to reuse the bitmap
///    measured slower than a heap — the per-run O(n log n) sort costs more
///    than the heap ops it replaces.)
///  * kHeap — the ordered policies without backfill only ever pop the head
///    or re-push with a new priority (SRTF preemption), so a binary heap
///    with versioned lazy deletion beats a red-black tree.
///  * kSet — backfill under an ordered policy needs ordered traversal
///    behind the head, which only the set supports.
class PolicyQueue {
 public:
  PolicyQueue(SchedulerPolicy policy, bool backfill)
      : backend_(policy == SchedulerPolicy::kFifo ||
                         policy == SchedulerPolicy::kPowerCap
                     ? Backend::kBitmap
                     : (backfill ? Backend::kSet : Backend::kHeap)) {}

  void init(std::size_t n) {
    queued_.assign(n, false);
    switch (backend_) {
      case Backend::kBitmap:
        bitmap_.reserve(n);
        break;
      case Backend::kHeap:
        version_.assign(n, 0);
        keys_.resize(n);
        break;
      case Backend::kSet:
        keys_.resize(n);
        break;
    }
  }

  void push(const QueueKey& key) {
    queued_[key.local] = true;
    ++live_;
    switch (backend_) {
      case Backend::kBitmap:
        bitmap_.set(key.local);
        break;
      case Backend::kHeap: {
        keys_[key.local] = key;
        HeapEntry e;
        e.key = key;
        e.version = version_[key.local];
        heap_.push_back(e);
        std::push_heap(heap_.begin(), heap_.end(), HeapGreater{});
        break;
      }
      case Backend::kSet:
        keys_[key.local] = key;
        set_.insert(key);
        break;
    }
  }

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Local id of the highest-priority queued job; call only when !empty().
  [[nodiscard]] std::size_t head() {
    switch (backend_) {
      case Backend::kBitmap:
        return bitmap_.first();
      case Backend::kHeap:
        while (!queued_[heap_.front().key.local] ||
               heap_.front().version != version_[heap_.front().key.local]) {
          std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
          heap_.pop_back();
        }
        return heap_.front().key.local;
      case Backend::kSet:
        return set_.begin()->local;
    }
    return 0;  // unreachable
  }

  /// Does queued job `a` outrank queued job `b`?
  [[nodiscard]] bool before(std::size_t a, std::size_t b) const noexcept {
    if (backend_ == Backend::kBitmap) {
      return a < b;  // FIFO: local id order is arrival order
    }
    return keys_[a] < keys_[b];
  }

  void remove(std::size_t local) {
    queued_[local] = false;
    --live_;
    switch (backend_) {
      case Backend::kBitmap:
        bitmap_.clear(local);
        break;
      case Backend::kHeap:
        ++version_[local];  // lazy: head() drops stale entries
        break;
      case Backend::kSet:
        set_.erase(keys_[local]);
        break;
    }
  }

  /// Visits queued jobs after the head in priority order until `fn` returns
  /// false. `fn` may remove() the visited entry (and only that entry). Only
  /// the backfill pass scans, so the heap backend never reaches this.
  template <typename Fn>
  void scan_behind_head(Fn&& fn) {
    if (backend_ == Backend::kBitmap) {
      for (std::size_t p = bitmap_.next_after(bitmap_.first());
           p != SIZE_MAX; p = bitmap_.next_after(p)) {
        if (!fn(p)) return;
      }
    } else {
      for (auto it = std::next(set_.begin()); it != set_.end();) {
        const std::size_t lj = it->local;
        ++it;  // advance first: fn may erase the visited entry
        if (!fn(lj)) return;
      }
    }
  }

 private:
  enum class Backend { kBitmap, kHeap, kSet };

  struct HeapEntry {
    QueueKey key;
    std::uint32_t version = 0;
  };
  struct HeapGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      return b.key < a.key;  // min-heap on the full (unique) key
    }
  };

  Backend backend_;
  std::size_t live_ = 0;
  std::vector<char> queued_;
  OrderedBitmap bitmap_;
  std::vector<HeapEntry> heap_;
  std::vector<std::uint32_t> version_;  ///< bumped per remove (kHeap)
  std::set<QueueKey> set_;
  std::vector<QueueKey> keys_;  ///< last pushed key per local id (kSet/kHeap)
};

/// Multiset of queued GPU demands on a counting array: O(1) insert, O(1)
/// amortized erase with a lazily advanced minimum. Demands above the VC
/// capacity share the top bucket (they reject at the head anyway and must
/// never look smaller than a real demand).
class DemandTracker {
 public:
  void init(int capacity) {
    counts_.assign(static_cast<std::size_t>(capacity) + 2, 0);
    min_ = static_cast<int>(counts_.size()) - 1;
    size_ = 0;
  }

  void insert(int g) {
    g = clamp(g);
    ++counts_[static_cast<std::size_t>(g)];
    ++size_;
    min_ = std::min(min_, g);
  }

  void erase(int g) {
    g = clamp(g);
    --counts_[static_cast<std::size_t>(g)];
    --size_;
    if (size_ == 0) {
      min_ = static_cast<int>(counts_.size()) - 1;
      return;
    }
    while (counts_[static_cast<std::size_t>(min_)] == 0) ++min_;
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Smallest queued demand; call only when !empty().
  [[nodiscard]] int min() const noexcept { return min_; }

 private:
  [[nodiscard]] int clamp(int g) const noexcept {
    return std::min(g, static_cast<int>(counts_.size()) - 1);
  }

  std::vector<std::int32_t> counts_;
  int min_ = 0;
  std::size_t size_ = 0;
};

trace::ClusterSpec single_vc_spec(const trace::ClusterSpec& spec, int vc) {
  const auto& vcspec = spec.vcs[static_cast<std::size_t>(vc)];
  trace::ClusterSpec sub;
  sub.name = spec.name;
  sub.nodes = vcspec.nodes;
  sub.gpus_per_node = vcspec.gpus_per_node;
  sub.cpus_per_node = spec.cpus_per_node;
  sub.vcs = {vcspec};
  return sub;
}

}  // namespace

VcSimulator::VcSimulator(const trace::ClusterSpec& spec, int vc,
                         const SimConfig& config, UnixTime window_begin)
    : config_(&config),
      window_begin_(window_begin),
      state_(single_vc_spec(spec, vc)) {
  if (config.power_cap_watts > 0.0) {
    // Budget-constrained admission: VCs never talk to each other, so the
    // cluster cap splits into capacity-proportional per-VC shares. The
    // shares sum to the cap, so per-VC enforcement implies the cluster-wide
    // bound.
    std::int64_t total_gpus = 0;
    for (const auto& v : spec.vcs) {
      total_gpus += static_cast<std::int64_t>(v.nodes) * v.gpus_per_node;
    }
    const auto& vcspec = spec.vcs[static_cast<std::size_t>(vc)];
    const auto vc_gpus =
        static_cast<std::int64_t>(vcspec.nodes) * vcspec.gpus_per_node;
    if (total_gpus > 0) {
      cap_share_ = config.power_cap_watts * static_cast<double>(vc_gpus) /
                   static_cast<double>(total_gpus);
    }
  }
  if (config.fault_plan == nullptr) return;
  const auto events = config.fault_plan->vc_events(vc);
  if (events.empty()) return;
  const int n_nodes = spec.vcs[static_cast<std::size_t>(vc)].nodes;
  // internal_of[p]: shard node id of physical node p. Nodes within a VC are
  // homogeneous, so SimConfig::node_order only re-labels ids — rank k maps
  // to internal id k, which the consolidating allocator fills first. Fault
  // events name physical nodes and are translated here once.
  std::vector<std::int32_t> internal_of;
  if (static_cast<std::size_t>(vc) < config.node_order.size()) {
    const auto& order = config.node_order[static_cast<std::size_t>(vc)];
    if (static_cast<int>(order.size()) == n_nodes) {
      internal_of.assign(static_cast<std::size_t>(n_nodes), -1);
      for (int k = 0; k < n_nodes; ++k) {
        const std::int32_t p = order[static_cast<std::size_t>(k)];
        if (p < 0 || p >= n_nodes || internal_of[static_cast<std::size_t>(p)] >= 0) {
          internal_of.clear();  // not a permutation: fall back to id order
          break;
        }
        internal_of[static_cast<std::size_t>(p)] = k;
      }
    }
  }
  faults_.reserve(events.size());
  for (const NodeFaultEvent& e : events) {
    if (e.node < 0 || e.node >= n_nodes) continue;
    NodeFaultEvent local = e;
    if (!internal_of.empty()) {
      local.node = internal_of[static_cast<std::size_t>(e.node)];
    }
    faults_.push_back(local);
  }
}

VcSimulator::Counters VcSimulator::run(const Trace& t,
                                       const std::vector<std::size_t>& arrivals,
                                       std::vector<JobOutcome>& outcomes) {
  Counters counters;
  const bool srtf = config_->policy == SchedulerPolicy::kSrtf;
  // FIFO-order policies: arrivals behind a blocked head can never outrank it.
  const bool fifo = config_->policy == SchedulerPolicy::kFifo ||
                    config_->policy == SchedulerPolicy::kPowerCap;
  const std::size_t n = arrivals.size();

  // `per_gpu_watts` is the job's running draw per GPU; `base_priority` folds
  // it into kEnergyQssf's predicted-energy ordering (predicted GPU time ×
  // per-GPU watts = predicted joules).
  auto per_gpu_watts = [&](const JobRecord& j) -> double {
    return config_->gpu_watts_fn ? config_->gpu_watts_fn(j)
                                 : config_->power_profile.gpu_watts;
  };
  auto base_priority = [&](const JobRecord& j, double gpu_watts) -> double {
    switch (config_->policy) {
      case SchedulerPolicy::kFifo:
      case SchedulerPolicy::kPowerCap:
        return 0.0;  // submit-time tie-break gives FIFO order
      case SchedulerPolicy::kSjf:
      case SchedulerPolicy::kSrtf:
        return static_cast<double>(j.duration);
      case SchedulerPolicy::kQssf:
        return config_->priority_fn ? config_->priority_fn(j)
                                    : static_cast<double>(j.duration) * j.num_gpus;
      case SchedulerPolicy::kEnergyQssf:
        return (config_->priority_fn
                    ? config_->priority_fn(j)
                    : static_cast<double>(j.duration) * j.num_gpus) *
               gpu_watts;
    }
    return 0.0;
  };

  // Dense local copies of the fields the loop touches per event.
  std::vector<LocalJob> jobs(n);
  for (std::size_t lj = 0; lj < n; ++lj) {
    const JobOutcome& o = outcomes[arrivals[lj]];
    const JobRecord& j = t.jobs()[o.trace_index];
    LocalJob& job = jobs[lj];
    job.submit = o.submit;
    job.total = std::max<std::int32_t>(1, j.duration);
    job.remaining = job.total;
    job.trace_index = o.trace_index;
    job.gpus = o.gpus;
    const double gw = per_gpu_watts(j);
    job.watts = gw * j.num_gpus;
    job.priority = base_priority(j, gw);
  }
  std::vector<std::size_t> run_slot(n, SIZE_MAX);

  PolicyQueue queue(config_->policy, config_->backfill);
  queue.init(n);
  // GPU demands of every queued job; min() lets a backfill pass bail out
  // O(1) when nothing queued can possibly fit.
  DemandTracker queued_gpus;
  queued_gpus.init(state_.capacity_gpus(0));
  std::vector<RunningJob> runs;
  runs.reserve(n);  // at most one slot per job; growth would copy Allocations
  std::priority_queue<FinishEvent, std::vector<FinishEvent>, std::greater<>>
      finishes(std::greater<>{}, [n] {
        std::vector<FinishEvent> v;
        v.reserve(n + 1);
        return v;
      }());
  // Active-run list (swap-remove): SRTF preemption scans only live runs, not
  // every slot ever created.
  std::vector<std::size_t> active_slots;
  std::vector<std::size_t> active_pos;  // per-slot position, SIZE_MAX if idle
  active_pos.reserve(n);

  // Busy/power accounting: coalesce events that leave the busy counters and
  // the VC draw unchanged into one segment; flushed whenever either moves.
  // Power includes the idle node baseline, so unlike the pre-energy
  // accounting the idle stretches produce segments too (the busy
  // integrators ignore their zero counts).
  run_watts_ = 0.0;
  segments_.reserve(2 * n + 2);
  std::int64_t seg_start = window_begin_;
  std::int32_t seg_nodes = 0;
  std::int32_t seg_gpus = 0;
  double seg_watts = state_.baseline_watts(config_->power_profile);
  auto flush_segment = [&](std::int64_t now) {
    const auto bn = static_cast<std::int32_t>(state_.busy_nodes());
    const auto bg = static_cast<std::int32_t>(state_.busy_gpus());
    const double bw =
        state_.baseline_watts(config_->power_profile) + run_watts_;
    if (bn == seg_nodes && bg == seg_gpus && bw == seg_watts) return;
    if (now > seg_start &&
        (seg_nodes != 0 || seg_gpus != 0 || seg_watts != 0.0)) {
      segments_.push_back({seg_start, now, seg_nodes, seg_gpus, seg_watts});
    }
    seg_start = now;
    seg_nodes = bn;
    seg_gpus = bg;
    seg_watts = bw;
  };

  // Budget-constrained admission: may the projected VC draw grow by
  // `extra_watts` without crossing this VC's share of the cluster cap?
  // Power changes only on starts, completions, kills, and node power-state
  // transitions — the exact events that already invalidate the blocked-head
  // memo, so the memo argument is unchanged by this gate.
  auto power_allows = [&](double extra_watts) -> bool {
    if (cap_share_ <= 0.0) return true;
    return state_.baseline_watts(config_->power_profile) + run_watts_ +
               extra_watts <=
           cap_share_;
  };

  auto deactivate = [&](std::size_t slot) {
    const std::size_t pos = active_pos[slot];
    const std::size_t back = active_slots.back();
    active_slots[pos] = back;
    active_pos[back] = pos;
    active_slots.pop_back();
    active_pos[slot] = SIZE_MAX;
  };

  auto enqueue = [&](std::size_t lj) {
    const LocalJob& job = jobs[lj];
    queue.push({job.priority, job.submit, lj});
    queued_gpus.insert(job.gpus);
  };
  auto dequeue = [&](std::size_t lj) {
    queue.remove(lj);
    queued_gpus.erase(jobs[lj].gpus);
  };

  auto start_job = [&](std::size_t lj, Allocation alloc, std::int64_t now) {
    JobOutcome& o = outcomes[arrivals[lj]];
    if (o.start == trace::kNeverStarted) o.start = now;
    RunningJob r;
    r.local = lj;
    r.alloc = std::move(alloc);
    r.run_start = now;
    r.remaining = jobs[lj].remaining;
    r.watts = jobs[lj].watts;
    run_watts_ += r.watts;
    r.active = true;
    std::size_t slot;
    if (run_slot[lj] != SIZE_MAX && !runs[run_slot[lj]].active) {
      slot = run_slot[lj];
      r.generation = runs[slot].generation + 1;
      runs[slot] = std::move(r);
    } else {
      slot = runs.size();
      runs.push_back(std::move(r));
      active_pos.push_back(SIZE_MAX);
    }
    run_slot[lj] = slot;
    active_pos[slot] = active_slots.size();
    active_slots.push_back(slot);
    finishes.push({now + runs[slot].remaining, slot, runs[slot].generation});
  };

  // Kill every active run holding GPUs on a failing node: the whole gang
  // releases (all-or-nothing placement dies with any of its nodes) and the
  // job requeues under the configured restart semantics. Victims are killed
  // in ascending slot order — a fixed order, so sharded and serial replays
  // enqueue requeued jobs identically.
  auto kill_runs_on_node = [&](int node, std::int64_t now) {
    std::vector<std::size_t> victims;
    for (std::size_t s : active_slots) {
      for (auto [ni, g] : runs[s].alloc.node_gpus) {
        if (ni == node) {
          victims.push_back(s);
          break;
        }
      }
    }
    std::sort(victims.begin(), victims.end());
    for (std::size_t s : victims) {
      RunningJob& r = runs[s];
      r.active = false;
      ++r.generation;  // invalidates the pending finish event
      deactivate(s);
      state_.release(r.alloc);
      run_watts_ -= r.watts;
      const std::size_t plj = r.local;
      jobs[plj].remaining =
          config_->restart == FaultRestart::kResume
              ? std::max<std::int64_t>(1, r.remaining - (now - r.run_start))
              : jobs[plj].total;
      if (srtf) jobs[plj].priority = static_cast<double>(jobs[plj].remaining);
      enqueue(plj);
      ++counters.kills;
      ++outcomes[arrivals[plj]].kills;
    }
  };

  // Blocked-head memo: after a scheduling pass ends with an unplaceable
  // head, re-running it is provably a no-op until either the state changes
  // (a completion, preemption, or start frees/claims GPUs) or a new job
  // outranks the blocked head. Arrivals that merely grow the queue behind a
  // blocked head skip the pass entirely — under FIFO that is every arrival
  // while the head waits. (For SRTF, note remaining times of running jobs
  // only shrink as time advances, so the preemptable set never grows while
  // the state is untouched; a retry cannot succeed where the original
  // attempt failed.)
  bool head_blocked = false;
  std::size_t blocked_local = 0;

  // Schedules the VC at time `now`: strict head-of-line by priority
  // (Algorithm 1: stop at the first job that does not fit; no backfill).
  auto schedule = [&](std::int64_t now) {
    head_blocked = false;
    while (!queue.empty()) {
      const std::size_t lj = queue.head();
      const LocalJob& job = jobs[lj];
      if (!state_.can_ever_fit(0, job.gpus)) {
        JobOutcome& o = outcomes[arrivals[lj]];
        o.rejected = true;
        o.start = o.submit;
        o.end = o.submit;
        ++counters.rejected;
        dequeue(lj);
        continue;
      }
      // Budget-constrained admission: a head over the power budget waits
      // exactly like a head that does not fit — it neither places nor hunts
      // for SRTF preemption victims (preempting to make power headroom would
      // trade running work for queued work under the same cap; the gate is
      // checked up front so a power-blocked head leaves the run set alone).
      const bool power_ok = power_allows(job.watts);
      auto alloc =
          power_ok ? state_.try_allocate(0, job.gpus) : std::optional<Allocation>{};
      if (!alloc && srtf && power_ok) {
        // Preempt running jobs with strictly larger remaining time, largest
        // first, until the head fits; roll back if it never does.
        const std::int64_t head_rem = job.remaining;
        std::vector<std::size_t> candidates;
        for (std::size_t s : active_slots) {
          const std::int64_t rem =
              runs[s].remaining - (now - runs[s].run_start);
          if (rem > head_rem) candidates.push_back(s);
        }
        std::sort(candidates.begin(), candidates.end(),
                  [&](std::size_t a, std::size_t b) {
                    const std::int64_t ra = runs[a].remaining - (now - runs[a].run_start);
                    const std::int64_t rb = runs[b].remaining - (now - runs[b].run_start);
                    if (ra != rb) return ra > rb;
                    return a < b;  // deterministic tie-break
                  });
        std::vector<std::size_t> freed;
        for (std::size_t s : candidates) {
          state_.release(runs[s].alloc);
          freed.push_back(s);
          alloc = state_.try_allocate(0, job.gpus);
          if (alloc) break;
        }
        if (alloc) {
          for (std::size_t s : freed) {
            RunningJob& r = runs[s];
            r.active = false;
            ++r.generation;  // invalidates the pending finish event
            deactivate(s);
            run_watts_ -= r.watts;
            const std::size_t plj = r.local;
            jobs[plj].remaining =
                std::max<std::int64_t>(1, r.remaining - (now - r.run_start));
            jobs[plj].priority = static_cast<double>(jobs[plj].remaining);
            enqueue(plj);
            ++counters.preemptions;
          }
        } else {
          for (auto it = freed.rbegin(); it != freed.rend(); ++it) {
            state_.reclaim(runs[*it].alloc);
          }
        }
      }
      if (!alloc) {
        if (config_->backfill && !queued_gpus.empty() &&
            queued_gpus.min() <= state_.free_gpus(0)) {
          // Greedy backfill: start any later queued job that fits right now.
          int scanned = 0;
          queue.scan_behind_head([&](std::size_t blj) {
            if (scanned >= config_->backfill_depth) return false;
            ++scanned;
            // Power-proportional backfill: candidates start only while the
            // projected draw stays under the cap; over-budget candidates are
            // skipped, not blocking the ones behind them.
            if (!power_allows(jobs[blj].watts)) return true;
            auto balloc = state_.try_allocate(0, jobs[blj].gpus);
            if (balloc) {
              start_job(blj, std::move(*balloc), now);
              dequeue(blj);
              // Placements shrink the free pool; bail once nothing left fits.
              if (queued_gpus.empty() ||
                  queued_gpus.min() > state_.free_gpus(0)) {
                return false;
              }
            }
            return true;
          });
        }
        head_blocked = true;
        blocked_local = lj;
        break;
      }
      dequeue(lj);
      start_job(lj, std::move(*alloc), now);
    }
  };

  std::size_t next_arrival = 0;
  std::size_t next_fault = 0;
  const std::size_t n_faults = faults_.size();
  // Fault events keep the loop alive only while jobs are queued: a recovery
  // may be the event that unblocks them. With nothing queued and nothing
  // running, remaining fault events cannot affect any outcome or busy count,
  // so they are skipped (deterministically) and the queued jobs that never
  // ran surface as SimResult::unfinished_jobs.
  while (next_arrival < n || !finishes.empty() ||
         (next_fault < n_faults && !queue.empty())) {
    // Next event time: finishes first at equal times (free before place).
    const std::int64_t arrival_time =
        next_arrival < n ? jobs[next_arrival].submit
                         : std::numeric_limits<std::int64_t>::max();
    // Drain stale finish events.
    while (!finishes.empty()) {
      const FinishEvent& f = finishes.top();
      if (runs[f.slot].active && runs[f.slot].generation == f.generation) break;
      finishes.pop();
    }
    const std::int64_t finish_time =
        finishes.empty() ? std::numeric_limits<std::int64_t>::max()
                         : finishes.top().time;
    const std::int64_t fault_time =
        next_fault < n_faults ? faults_[next_fault].time
                              : std::numeric_limits<std::int64_t>::max();
    const std::int64_t now =
        std::min(std::min(arrival_time, finish_time), fault_time);
    if (now == std::numeric_limits<std::int64_t>::max()) break;

    bool need_schedule = false;
    // 1) completions at `now`.
    while (!finishes.empty() && finishes.top().time <= now) {
      const FinishEvent f = finishes.top();
      finishes.pop();
      RunningJob& r = runs[f.slot];
      if (!r.active || r.generation != f.generation) continue;
      r.active = false;
      ++r.generation;
      deactivate(f.slot);
      state_.release(r.alloc);
      run_watts_ -= r.watts;
      outcomes[arrivals[r.local]].end = now;
      need_schedule = true;  // freed GPUs invalidate the blocked-head memo
    }
    // 1b) node failures / recoveries at `now`. Recoveries sort before
    // failures at equal times (fault_plan.cpp), so a node that flaps in the
    // same second ends the second down. Killed jobs requeue before the
    // scheduling pass and compete under the policy's normal order.
    while (next_fault < n_faults && faults_[next_fault].time <= now) {
      const NodeFaultEvent ev = faults_[next_fault];
      ++next_fault;
      if (ev.recovery) {
        state_.recover_node(ev.node);
      } else {
        kill_runs_on_node(ev.node, now);
        state_.fail_node(ev.node);
        ++counters.failures;
      }
      need_schedule = true;
    }
    // 2) arrivals at `now`.
    while (next_arrival < n && jobs[next_arrival].submit <= now) {
      const std::size_t lj = next_arrival;
      ++next_arrival;
      enqueue(lj);
      if (!need_schedule && head_blocked) {
        // Queue growth behind a blocked head: schedule only if this job
        // outranks the head (FIFO arrivals never do) or backfill could
        // place it on the leftover GPUs.
        const bool outranks = !fifo && queue.before(lj, blocked_local);
        const bool backfillable =
            config_->backfill && jobs[lj].gpus <= state_.free_gpus(0);
        if (outranks || backfillable) need_schedule = true;
      } else {
        need_schedule = true;
      }
    }
    // 3) scheduling pass, then extend or flush the busy segment.
    if (need_schedule) schedule(now);
    flush_segment(now);
  }
  // Close the trailing segment. Busy counts are zero once every started job
  // has finished, but the idle baseline keeps drawing, so the tail almost
  // always carries watts: it runs to the sentinel and the orchestrator's
  // integrator clamps it to the series window.
  if (seg_nodes != 0 || seg_gpus != 0 || seg_watts != 0.0) {
    segments_.push_back(
        {seg_start, std::numeric_limits<std::int64_t>::max(), seg_nodes,
         seg_gpus, seg_watts});
  }
  return counters;
}

}  // namespace helios::sim
