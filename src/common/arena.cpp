#include "common/arena.h"

#include <cstdint>
#include <memory>

namespace helios::common {

void* MonotonicArena::do_allocate(std::size_t bytes, std::size_t alignment) {
  // Align the cursor up; alignment is a power of two per the memory_resource
  // contract, and chunk starts are new[]-aligned (max_align_t), so any
  // fundamental alignment is reachable by bumping.
  const auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
  const std::size_t pad = (alignment - addr % alignment) % alignment;
  if (pad + bytes > remaining_) {
    // Oversized requests get a right-sized chunk (bytes + worst-case pad —
    // a chunk start is only new[]-aligned, so stricter alignments may still
    // need a bump) so a single large allocation cannot strand a near-empty
    // doubling chunk. The slack guarantees the recursive call succeeds.
    const std::size_t needed = bytes + alignment - 1;
    const std::size_t size = needed > next_chunk_ ? needed : next_chunk_;
    chunks_.push_back(std::make_unique<std::byte[]>(size));
    cursor_ = chunks_.back().get();
    remaining_ = size;
    reserved_ += size;
    if (size == next_chunk_ && next_chunk_ < kMaxChunk) next_chunk_ *= 2;
    return do_allocate(bytes, alignment);  // recurses exactly once
  }
  cursor_ += pad;
  void* out = cursor_;
  cursor_ += bytes;
  remaining_ -= pad + bytes;
  used_ += bytes;
  return out;
}

}  // namespace helios::common
