// google-benchmark microbenchmarks for the ML kernels on the QSSF hot paths:
// GBDT training/inference, the online priority evaluator, Levenshtein
// matching, name bucketization.
//
// The BM_GbdtFit / BM_GbdtPredictMany / BM_OnlineEvaluator benches run the
// histogram engine (GBDTEngine::kHistogram) and the chunked evaluator
// (common::ExecMode::kParallel); the *Reference / *Serial variants run the
// retained baselines for comparison. main() first asserts bit-for-bit
// parity — histogram-vs-reference models (same trees, same training RMSE)
// and chunked-vs-serial evaluator priorities — so a perf run against a
// broken trainer fails loudly instead of reporting a meaningless speedup.
// See BENCH_ml.json for recorded before/after numbers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>

#include "common/rng.h"
#include "common/simd.h"
#include "core/qssf_service.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "ml/gbdt_kernels.h"
#include "ml/levenshtein.h"
#include "serialize/binary.h"
#include "trace/synthetic.h"

namespace {

using namespace helios;

ml::Dataset make_dataset(std::size_t rows, std::size_t features, Rng& rng) {
  ml::Dataset d(features);
  std::vector<double> row(features);
  for (std::size_t r = 0; r < rows; ++r) {
    double y = 0.0;
    for (std::size_t f = 0; f < features; ++f) {
      // Mix continuous and small-integer (categorical-like) features, the
      // shape of the QSSF encoding.
      row[f] = (f % 2 == 0) ? rng.uniform(-1.0, 1.0)
                            : static_cast<double>(rng.uniform_int(0, 12));
      y += (f % 3 == 0 ? 2.0 : -0.5) * row[f];
    }
    d.add_row(row, y + rng.normal(0.0, 0.1));
  }
  return d;
}

/// Philly-scale training set: ~100k jobs (Table 1), 9 features like the
/// QSSF encoding.
const ml::Dataset& philly_dataset() {
  static const ml::Dataset d = [] {
    Rng rng(42);
    return make_dataset(100'000, 9, rng);
  }();
  return d;
}

ml::GBDTConfig philly_cfg(ml::GBDTEngine engine) {
  ml::GBDTConfig cfg;
  cfg.n_trees = 20;
  cfg.max_depth = 6;
  cfg.learning_rate = 0.12;
  cfg.min_samples_leaf = 30;
  cfg.subsample = 0.7;
  cfg.max_bins = 64;
  cfg.engine = engine;
  return cfg;
}

/// Forces the SIMD dispatch for one benchmark; restores the prior state on
/// destruction. -1 = leave the ambient dispatch alone.
class ScopedSimd {
 public:
  explicit ScopedSimd(int force) : prev_(helios::common::simd_enabled()) {
    if (force >= 0) helios::common::set_simd_enabled(force != 0);
  }
  ~ScopedSimd() { helios::common::set_simd_enabled(prev_); }
  ScopedSimd(const ScopedSimd&) = delete;
  ScopedSimd& operator=(const ScopedSimd&) = delete;

 private:
  bool prev_;
};

void run_fit(benchmark::State& state, ml::GBDTEngine engine, int simd = -1) {
  ScopedSimd dispatch(simd);
  const auto& data = philly_dataset();
  const auto cfg = philly_cfg(engine);
  for (auto _ : state) {
    ml::GBDTRegressor model(cfg);
    model.fit(data);
    benchmark::DoNotOptimize(model.trained());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.rows()));
}

void BM_GbdtFit(benchmark::State& state) {
  run_fit(state, ml::GBDTEngine::kHistogram);
}
/// The same histogram engine with the SIMD dispatch forced off — the
/// BM_GbdtFit/BM_GbdtFitScalar gap is the AVX2 histogram-kernel speedup.
void BM_GbdtFitScalar(benchmark::State& state) {
  run_fit(state, ml::GBDTEngine::kHistogram, /*simd=*/0);
}
void BM_GbdtFitReference(benchmark::State& state) {
  run_fit(state, ml::GBDTEngine::kReference);
}
BENCHMARK(BM_GbdtFit)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GbdtFitScalar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GbdtFitReference)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Raw histogram kernel (the training hot loop, no tree machinery around it)
// ---------------------------------------------------------------------------

void run_hist_kernel(benchmark::State& state, bool simd) {
  if (simd && !helios::common::simd_supported()) {
    state.SkipWithError("AVX2 unavailable on this build/CPU");
    return;
  }
  const auto& data = philly_dataset();
  ml::FeatureBinner binner;
  Rng rng(3);
  binner.fit(data, 64, rng);
  const ml::BinnedMatrix x =
      ml::bin_dataset(data, binner, ml::BinLayout::kRowMajor);
  const auto total_bins = static_cast<std::size_t>(x.feature_offset.back());
  std::vector<std::uint32_t> rows(x.rows);
  std::iota(rows.begin(), rows.end(), 0u);
  std::vector<std::int32_t> grad(x.rows);
  Rng grng(11);
  for (auto& g : grad) {
    g = static_cast<std::int32_t>(grng.uniform_int(0, 2'000'000)) - 1'000'000;
  }
  std::vector<std::int64_t> h0(total_bins);
  std::vector<std::int64_t> h1(total_bins);
  for (auto _ : state) {
    std::fill(h0.begin(), h0.end(), 0);
    std::fill(h1.begin(), h1.end(), 0);
    if (simd) {
      ml::kernels::hist_accumulate_avx2(x.global.data(), x.features,
                                        rows.data(), 0, x.rows, grad.data(),
                                        h0.data(), h1.data());
    } else {
      ml::kernels::hist_accumulate_scalar(x.global.data(), x.features,
                                          rows.data(), 0, x.rows, grad.data(),
                                          h0.data(), h1.data());
    }
    benchmark::DoNotOptimize(h0.data());
    benchmark::DoNotOptimize(h1.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(x.rows * x.features));
}

void BM_HistogramKernel(benchmark::State& state) {
  run_hist_kernel(state, /*simd=*/true);
}
void BM_HistogramKernelScalar(benchmark::State& state) {
  run_hist_kernel(state, /*simd=*/false);
}
BENCHMARK(BM_HistogramKernel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HistogramKernelScalar)->Unit(benchmark::kMillisecond);

const ml::GBDTRegressor& philly_model() {
  static const ml::GBDTRegressor model = [] {
    auto cfg = philly_cfg(ml::GBDTEngine::kHistogram);
    cfg.n_trees = 60;
    ml::GBDTRegressor m(cfg);
    m.fit(philly_dataset());
    return m;
  }();
  return model;
}

void run_predict_many(benchmark::State& state, int simd = -1) {
  ScopedSimd dispatch(simd);
  const auto& data = philly_dataset();
  const auto& model = philly_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_many(data).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.rows()));
}

void BM_GbdtPredictMany(benchmark::State& state) { run_predict_many(state); }
/// Batched inference with the SIMD dispatch forced off — the
/// BM_GbdtPredictMany/BM_GbdtPredictManyScalar gap is the AVX2 forest-walk
/// speedup (same binning, same tree-at-a-time scalar route PR 3 shipped).
void BM_GbdtPredictManyScalar(benchmark::State& state) {
  run_predict_many(state, /*simd=*/0);
}
/// The pre-batching inference path: one raw-feature tree walk per row.
void BM_GbdtPredictPerRow(benchmark::State& state) {
  const auto& data = philly_dataset();
  const auto& model = philly_model();
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
      sum += model.predict(data.row(r));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.rows()));
}
BENCHMARK(BM_GbdtPredictMany)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GbdtPredictManyScalar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GbdtPredictPerRow)->Unit(benchmark::kMillisecond);

void BM_GbdtPredict(benchmark::State& state) {
  const auto& model = philly_model();
  const std::vector<double> probe = {0.1, 3.0, 0.3, 4.0, -0.5, 6.0, 0.0, 2.0, -0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(probe));
  }
}
BENCHMARK(BM_GbdtPredict);

// ---------------------------------------------------------------------------
// OnlinePriorityEvaluator (QSSF rolling-origin evaluation)
// ---------------------------------------------------------------------------

struct EvalFixture {
  trace::Trace eval;
  core::QssfService service;

  EvalFixture() : eval(trace::helios_cluster("Venus")) {
    auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"),
                                              42, 0.2);
    const trace::Trace t = trace::SyntheticTraceGenerator(cfg).generate();
    const auto train =
        t.between(trace::helios_trace_begin(), from_civil(2020, 9, 1));
    eval = t.between(from_civil(2020, 9, 1), trace::helios_trace_end());
    service.fit(train);
  }

  static const EvalFixture& instance() {
    static const EvalFixture fx;
    return fx;
  }
};

void run_evaluator(benchmark::State& state, helios::common::ExecMode execution) {
  const auto& fx = EvalFixture::instance();
  core::EvalOptions opts;
  opts.execution = execution;
  std::size_t jobs = 0;
  for (auto _ : state) {
    core::QssfService svc = fx.service;  // evaluator folds jobs into the service
    core::OnlinePriorityEvaluator evaluator(svc, fx.eval, opts);
    jobs = evaluator.predicted_gpu_time().size();
    benchmark::DoNotOptimize(jobs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}

void BM_OnlineEvaluator(benchmark::State& state) {
  run_evaluator(state, helios::common::ExecMode::kParallel);
}
void BM_OnlineEvaluatorSerial(benchmark::State& state) {
  run_evaluator(state, helios::common::ExecMode::kSerial);
}
BENCHMARK(BM_OnlineEvaluator)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnlineEvaluatorSerial)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Model persistence (serialize:: frame round trip, docs/FORMATS.md)
// ---------------------------------------------------------------------------

void BM_GbdtSave(benchmark::State& state) {
  const auto& model = philly_model();
  std::size_t bytes = 0;
  for (auto _ : state) {
    serialize::Writer w;
    model.save(w);
    const auto file = serialize::frame(w);
    bytes = file.size();
    benchmark::DoNotOptimize(file.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

void BM_GbdtLoad(benchmark::State& state) {
  const auto& model = philly_model();
  serialize::Writer w;
  model.save(w);
  const auto file = serialize::frame(w);
  for (auto _ : state) {
    const auto body = serialize::unframe(file);  // CRC + header validation
    serialize::Reader r(body);
    ml::GBDTRegressor loaded;
    loaded.load(r);
    benchmark::DoNotOptimize(loaded.tree_count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(file.size()));
}
BENCHMARK(BM_GbdtSave)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GbdtLoad)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Levenshtein / name bucketization
// ---------------------------------------------------------------------------

void BM_Levenshtein(benchmark::State& state) {
  const std::string a = "u0042_train_resnet50_v1";
  const std::string b = "u0042_train_resnet101_v2";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::levenshtein(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_WithinDistanceBanded(benchmark::State& state) {
  const std::string a = "u0042_train_resnet50_v1";
  const std::string b = "u0913_preprocess_pointnet";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::within_distance(a, b, 4));
  }
}
BENCHMARK(BM_WithinDistanceBanded);

void BM_NameBucketizer(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::string> names;
  for (int u = 0; u < 100; ++u) {
    for (int t = 0; t < 10; ++t) {
      names.push_back("u" + std::to_string(1000 + u) + "_train_model" +
                      std::to_string(t) + "_v" + std::to_string(t % 4));
    }
  }
  for (auto _ : state) {
    ml::NameBucketizer buckets(0.2, /*prefix_len=*/6);
    for (const auto& n : names) benchmark::DoNotOptimize(buckets.bucket(n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(names.size()));
}
BENCHMARK(BM_NameBucketizer)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Parity gates
// ---------------------------------------------------------------------------

bool models_equal(const ml::GBDTRegressor& a, const ml::GBDTRegressor& b) {
  if (a.tree_count() != b.tree_count()) return false;
  if (a.training_rmse() != b.training_rmse()) return false;
  for (std::size_t t = 0; t < a.tree_count(); ++t) {
    const auto& na = a.trees()[t].nodes();
    const auto& nb = b.trees()[t].nodes();
    if (na.size() != nb.size()) return false;
    for (std::size_t i = 0; i < na.size(); ++i) {
      if (na[i].feature != nb[i].feature || na[i].split_bin != nb[i].split_bin ||
          na[i].threshold != nb[i].threshold || na[i].left != nb[i].left ||
          na[i].right != nb[i].right || na[i].value != nb[i].value ||
          na[i].gain != nb[i].gain) {
        return false;
      }
    }
  }
  return true;
}

/// Hard gate: the histogram engine must reproduce the reference trainer
/// bit-for-bit, and the chunked evaluator the serial one, on the benchmark
/// workloads, before any timing runs.
void verify_parity() {
  Rng rng(7);
  const ml::Dataset data = make_dataset(20'000, 9, rng);
  auto cfg = philly_cfg(ml::GBDTEngine::kHistogram);
  cfg.n_trees = 10;
  auto ref_cfg = cfg;
  ref_cfg.engine = ml::GBDTEngine::kReference;
  ml::GBDTRegressor hist_model(cfg);
  ml::GBDTRegressor ref_model(ref_cfg);
  hist_model.fit(data);
  ref_model.fit(data);
  if (!models_equal(hist_model, ref_model)) {
    std::fprintf(stderr,
                 "FATAL: histogram GBDT engine diverges from the reference "
                 "trainer\n");
    std::exit(1);
  }
  const auto batched = hist_model.predict_many(data);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    if (batched[r] != hist_model.predict(data.row(r))) {
      std::fprintf(stderr,
                   "FATAL: predict_many diverges from per-row predict\n");
      std::exit(1);
    }
  }

  // SIMD-vs-scalar gates: when the AVX2 dispatch can be forced on, a fit and
  // a batched predict on each side of it must agree bit-for-bit — otherwise
  // the BM_*Scalar comparisons time two different computations.
  {
    const bool ambient = helios::common::simd_enabled();
    if (helios::common::set_simd_enabled(true)) {
      ml::GBDTRegressor simd_model(cfg);
      simd_model.fit(data);
      const auto simd_batched = simd_model.predict_many(data);
      helios::common::set_simd_enabled(false);
      ml::GBDTRegressor scalar_model(cfg);
      scalar_model.fit(data);
      if (!models_equal(simd_model, scalar_model)) {
        std::fprintf(stderr,
                     "FATAL: AVX2 histogram kernel diverges from the scalar "
                     "form\n");
        std::exit(1);
      }
      if (scalar_model.predict_many(data) != simd_batched) {
        std::fprintf(stderr,
                     "FATAL: AVX2 forest walk diverges from the scalar "
                     "predict path\n");
        std::exit(1);
      }
    }
    helios::common::set_simd_enabled(ambient);
  }

  auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 13,
                                            0.03);
  const trace::Trace t = trace::SyntheticTraceGenerator(gen).generate();
  const auto train = t.between(trace::helios_trace_begin(), from_civil(2020, 9, 1));
  const auto eval = t.between(from_civil(2020, 9, 1), trace::helios_trace_end());
  core::QssfConfig qcfg;
  qcfg.gbdt.n_trees = 20;
  core::QssfService serial_svc(qcfg);
  core::QssfService chunked_svc(qcfg);
  serial_svc.fit(train);
  chunked_svc.fit(train);
  core::EvalOptions serial_opts;
  serial_opts.execution = helios::common::ExecMode::kSerial;
  core::EvalOptions chunked_opts;
  chunked_opts.min_window = 1;
  chunked_opts.max_windows = 7;  // force the window machinery on any machine
  core::OnlinePriorityEvaluator serial_eval(serial_svc, eval, serial_opts);
  core::OnlinePriorityEvaluator chunked_eval(chunked_svc, eval, chunked_opts);
  bool ok = serial_eval.predicted_gpu_time() == chunked_eval.predicted_gpu_time() &&
            serial_eval.actual_gpu_time() == chunked_eval.actual_gpu_time();
  for (const auto& j : eval.jobs()) {
    if (!ok) break;
    if (!j.is_gpu_job()) continue;
    ok = serial_eval.priority_of(j) == chunked_eval.priority_of(j) &&
         serial_svc.rolling_estimate(eval, j) ==
             chunked_svc.rolling_estimate(eval, j);
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: chunked OnlinePriorityEvaluator diverges from the "
                 "serial reference\n");
    std::exit(1);
  }

  // Persistence gate: a model restored from its own snapshot must predict
  // bit-identically (the BM_GbdtSave/BM_GbdtLoad timings are meaningless if
  // the round trip is lossy).
  serialize::Writer w;
  hist_model.save(w);
  const auto body = serialize::unframe(serialize::frame(w));
  serialize::Reader reader(body);
  ml::GBDTRegressor loaded;
  loaded.load(reader);
  if (!models_equal(hist_model, loaded) ||
      loaded.predict_many(data) != batched) {
    std::fprintf(stderr,
                 "FATAL: GBDT save/load round trip is not bit-identical\n");
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  verify_parity();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Record which dispatch the un-suffixed benches ran under ("avx2" or
  // "scalar") in the console header and the JSON context block.
  benchmark::AddCustomContext("simd",
                              std::string(helios::common::simd_mode()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
