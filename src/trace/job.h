// Job records: the schema shared by the whole library.
//
// Mirrors the fields the paper collects via `sacct` (§2.3): submission time,
// resources, user, VC, job name, final status, and the timing information
// either recorded by Slurm or (here) assigned by operating the trace under a
// scheduler. Strings are interned at the Trace level so a record stays small
// enough for multi-million-job traces.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/civil_time.h"

namespace helios::trace {

/// Final status of a job (§2.3.1). The paper folds the rare `timeout` and
/// `node fail` statuses into `failed`; we do the same.
enum class JobState : std::uint8_t {
  kCompleted = 0,
  kCanceled = 1,
  kFailed = 2,
};

[[nodiscard]] std::string_view to_string(JobState s) noexcept;
/// Parses "completed"/"canceled"/"failed" (case-sensitive); anything else is
/// treated as failed, matching the paper's folding rule.
[[nodiscard]] JobState job_state_from_string(std::string_view s) noexcept;

inline constexpr std::int64_t kNeverStarted = -1;

/// One job. `user`, `vc` and `name` are ids into the owning Trace's interners.
struct JobRecord {
  std::uint64_t job_id = 0;
  UnixTime submit_time = 0;
  /// Time the scheduler launched the job, or kNeverStarted. Synthetic traces
  /// default it to submit_time; operating the trace under src/sim overwrites
  /// it with the simulated schedule.
  std::int64_t start_time = kNeverStarted;
  /// Actual execution seconds (excludes queuing). Zero-duration jobs are
  /// legal (instantly failing submissions).
  std::int32_t duration = 0;
  std::int32_t num_gpus = 0;
  std::int32_t num_cpus = 0;
  std::uint32_t user = 0;
  std::uint32_t vc = 0;
  std::uint32_t name = 0;
  JobState state = JobState::kCompleted;

  [[nodiscard]] bool is_gpu_job() const noexcept { return num_gpus > 0; }
  [[nodiscard]] bool is_cpu_job() const noexcept { return num_gpus == 0; }
  [[nodiscard]] bool started() const noexcept { return start_time != kNeverStarted; }

  /// GPU time (§2.3.1): execution time x number of GPUs.
  [[nodiscard]] double gpu_time() const noexcept {
    return static_cast<double>(duration) * num_gpus;
  }
  /// CPU time: execution time x number of CPUs.
  [[nodiscard]] double cpu_time() const noexcept {
    return static_cast<double>(duration) * num_cpus;
  }
  [[nodiscard]] std::int64_t end_time() const noexcept {
    return started() ? start_time + duration : kNeverStarted;
  }
  /// Queuing delay under the recorded schedule; 0 when never started.
  [[nodiscard]] std::int64_t queue_delay() const noexcept {
    return started() ? start_time - submit_time : 0;
  }
  /// Job completion time = queuing + execution.
  [[nodiscard]] std::int64_t jct() const noexcept {
    return started() ? end_time() - submit_time : 0;
  }

  [[nodiscard]] friend bool operator==(const JobRecord&,
                                       const JobRecord&) = default;
};

}  // namespace helios::trace
