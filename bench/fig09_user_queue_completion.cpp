// Figure 9: (a) CDFs of users by share of total GPU-job queuing delay;
// (b) distribution of per-user GPU job completion rates.
#include <cstdio>

#include "analysis/user_stats.h"
#include "bench_common.h"
#include "common/text_table.h"
#include "stats/histogram.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace analysis = helios::analysis;

  bench::print_header("Figure 9",
                      "User queuing-delay concentration and completion rates",
                      "queuing delays from the FIFO-operated schedule");

  const auto& traces = bench::operated_helios_traces();

  TextTable ta({"Cluster", "top 1% users' queuing", "top 5% users' queuing",
                "top 25% users' queuing"});
  for (const auto& tp : traces) {
    const helios::trace::Trace& t = *tp;
    const auto users = analysis::user_aggregates(t);
    std::vector<double> delay;
    for (const auto& u : users) delay.push_back(u.queue_delay);
    ta.add_row({t.cluster().name,
                TextTable::cell_pct(analysis::top_share(delay, 0.01)),
                TextTable::cell_pct(analysis::top_share(delay, 0.05)),
                TextTable::cell_pct(analysis::top_share(delay, 0.25))});
  }
  std::printf("(a) queuing-delay concentration across users\n%s\n",
              ta.str().c_str());
  bench::print_expectation("marquee users bear most queuing",
                           "top 1% bear up to 70%+ (Uranus)", "column 2");

  // (b) completion-rate histogram pooled across clusters.
  helios::stats::Histogram hist(0.0, 1.0000001, 10);
  for (const auto& tp : traces) {
    const helios::trace::Trace& t = *tp;
    for (const auto& u : analysis::user_aggregates(t)) {
      if (u.gpu_jobs >= 5) hist.add(u.completion_rate());
    }
  }
  TextTable tb({"completion rate", "users", "fraction"});
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    char label[32];
    std::snprintf(label, sizeof label, "%.0f%%-%.0f%%", hist.bin_lo(b) * 100,
                  hist.bin_hi(b) * 100);
    tb.add_row({label, TextTable::cell(static_cast<std::int64_t>(hist.count(b))),
                TextTable::cell_pct(hist.fraction(b))});
  }
  std::printf("(b) per-user GPU job completion rates (users with >=5 jobs)\n%s\n",
              tb.str().c_str());
  bench::print_expectation("completion rates are generally low",
                           "mass well below 100%", "see histogram");
  return 0;
}
