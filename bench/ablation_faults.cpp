// Scheduling under node churn: the four policies replayed against a
// fault-injecting simulation (flaky-node FaultPlan), plus FIFO with
// failure-aware placement — a GBDT failure predictor trained on the fault
// history before the evaluation window ranks nodes by risk, and the
// allocator fills predicted-healthy nodes first. The paper's §4.2.3
// comparison assumes a healthy cluster; the §3.3 final-status breakdown
// (large failed/killed fractions) motivates checking how the ranking holds
// up — and what prediction buys — when nodes actually die.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "common/text_table.h"
#include "core/failure_predictor.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace core = helios::core;
  namespace sim = helios::sim;
  namespace trace = helios::trace;

  bench::print_header("Ablation: scheduling under node churn",
                      "policies + failure-aware placement vs. flaky nodes",
                      "FaultPlan: flaky-node Poisson failures; GBDT risk "
                      "ranking trained on the pre-window fault history");

  // Venus at bench scale; churn-level failure rates with a flaky cohort
  // (the skew the predictor exploits). The utilization target is lowered from
  // Venus's published ~0.85 to 0.55: a cluster run with failure headroom, the
  // regime where placement has slack to steer within — on a saturated
  // cluster every node is busy and no ranking can dodge a failure. (Thinning
  // job counts would not create that slack: the generator stretches durations
  // until total GPU time hits target_utilization * capacity regardless.)
  auto gen_cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"),
                                                bench::seed(), bench::scale());
  gen_cfg.knobs.target_utilization = 0.55;
  const trace::Trace t = trace::SyntheticTraceGenerator(gen_cfg).generate();
  const trace::ClusterSpec& cluster = t.cluster();
  const auto& jobs = t.jobs();
  const helios::UnixTime begin = jobs.front().submit_time;
  const helios::UnixTime end = jobs.back().submit_time + 14 * 86400;

  sim::FaultPlanConfig fp;
  fp.mtbf_days = 25.0;
  fp.flaky_fraction = 0.15;
  fp.flaky_multiplier = 12.0;
  fp.mean_downtime = 8 * 3600;
  fp.seed = bench::seed() + 1;
  // The plan starts 90 days before the trace: that prefix is the observed
  // failure history the predictor trains on, the rest is what the runs see.
  const sim::FaultPlan full_plan =
      sim::FaultPlan::generate(cluster, fp, begin - 90 * 86400, end);
  const sim::FaultPlan history = full_plan.clipped(begin - 90 * 86400, begin);
  const sim::FaultPlan eval_plan = full_plan.clipped(begin, end);

  core::FailurePredictor predictor;
  predictor.fit(cluster, history);
  const auto node_order = predictor.rank_nodes(cluster, history, begin);

  auto run = [&](sim::SchedulerPolicy policy, bool failure_aware) {
    sim::SimConfig cfg;
    cfg.policy = policy;
    cfg.fault_plan = &eval_plan;
    cfg.restart = sim::FaultRestart::kRestart;
    // Operate like the production Slurm (backfill on): without it, FIFO
    // head-of-line blocking on multi-node gangs dominates every JCT and
    // drowns the failure effects this ablation is about.
    cfg.backfill = true;
    if (policy == sim::SchedulerPolicy::kQssf) {
      cfg.priority_fn = [](const trace::JobRecord& j) {
        return static_cast<double>(j.duration) * j.num_gpus;
      };
    }
    if (failure_aware) cfg.node_order = node_order;
    return sim::ClusterSimulator(cluster, cfg).run(t);
  };

  struct Row {
    std::string name;
    sim::SimResult r;
  };
  std::vector<Row> rows;
  rows.push_back({"FIFO", run(sim::SchedulerPolicy::kFifo, false)});
  rows.push_back({"SJF", run(sim::SchedulerPolicy::kSjf, false)});
  rows.push_back({"SRTF", run(sim::SchedulerPolicy::kSrtf, false)});
  rows.push_back({"QSSF", run(sim::SchedulerPolicy::kQssf, false)});
  rows.push_back({"FIFO+risk-aware", run(sim::SchedulerPolicy::kFifo, true)});
  rows.push_back({"QSSF+risk-aware", run(sim::SchedulerPolicy::kQssf, true)});

  TextTable table({"policy", "avg JCT (h)", "avg queue delay (h)", "job kills",
                   "unfinished", "node failures"});
  for (const auto& row : rows) {
    table.add_row({row.name, TextTable::cell(row.r.avg_jct / 3600.0, 2),
                   TextTable::cell(row.r.avg_queue_delay / 3600.0, 2),
                   std::to_string(row.r.job_kills),
                   std::to_string(row.r.unfinished_jobs),
                   std::to_string(row.r.node_failures)});
  }
  std::printf("%s\n", table.str().c_str());

  const sim::SimResult& fifo = rows[0].r;
  const sim::SimResult& aware = rows[4].r;
  bench::print_expectation(
      "churn actually bites", "kills > 0 under plain FIFO",
      std::to_string(fifo.job_kills) + " kills / " +
          std::to_string(fifo.node_failures) + " failures");
  bench::print_expectation(
      "risk-aware placement helps FIFO", "fewer kills, lower avg JCT",
      std::to_string(aware.job_kills) + " kills, " +
          TextTable::cell(aware.avg_jct / 3600.0, 2) + "h vs " +
          TextTable::cell(fifo.avg_jct / 3600.0, 2) + "h");

  // Gate (ISSUE 6 acceptance): under non-zero failure rates the predictive
  // placement must strictly beat plain FIFO on average JCT.
  if (!(fifo.job_kills > 0)) {
    std::fprintf(stderr, "FAIL: fault plan produced no job kills\n");
    return EXIT_FAILURE;
  }
  if (!(aware.avg_jct < fifo.avg_jct)) {
    std::fprintf(stderr,
                 "FAIL: failure-aware FIFO avg JCT %.2f h not below plain "
                 "FIFO %.2f h\n",
                 aware.avg_jct / 3600.0, fifo.avg_jct / 3600.0);
    return EXIT_FAILURE;
  }
  return 0;
}
