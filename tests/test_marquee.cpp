// Marquee-user fairness service (Implication #7).
#include <gtest/gtest.h>

#include "core/marquee_service.h"
#include "core/qssf_service.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace helios::core {
namespace {

using trace::JobState;
using trace::Trace;

trace::ClusterSpec spec() {
  trace::ClusterSpec s;
  s.name = "s";
  s.vcs = {{"vc0", 2, 8}};
  s.nodes = 2;
  return s;
}

Trace operated_history() {
  // carol: tiny GPU time but huge queuing (the marquee profile).
  // dave: heavy consumer with heavy queuing (expected, not marquee).
  // erin: no queuing at all.
  Trace t(spec());
  for (int i = 0; i < 10; ++i) {
    auto& c = t.add(100 * i, 60, 1, 6, "carol", "vc0", "debug",
                    JobState::kCompleted);
    c.start_time = c.submit_time + 50'000;  // blocked forever
    auto& d = t.add(100 * i + 1, 80'000, 16, 96, "dave", "vc0", "train",
                    JobState::kCompleted);
    d.start_time = d.submit_time + 60'000;
    auto& e = t.add(100 * i + 2, 120, 1, 6, "erin", "vc0", "eval",
                    JobState::kCompleted);
    e.start_time = e.submit_time;
  }
  return t;
}

TEST(MarqueeService, DetectsMarqueeUsers) {
  MarqueeService svc;
  const Trace h = operated_history();
  svc.update(h);
  EXPECT_TRUE(svc.is_marquee("carol"));   // big delay share, tiny GPU share
  EXPECT_FALSE(svc.is_marquee("dave"));   // big delay but dominant consumer
  EXPECT_FALSE(svc.is_marquee("erin"));   // no queuing
  EXPECT_EQ(svc.marquee_count(), 1u);
}

TEST(MarqueeService, MultiplierBoostsOnlyMarqueeJobs) {
  MarqueeService svc;
  const Trace h = operated_history();
  svc.update(h);
  Trace probe(spec());
  const auto jc = probe.add(0, 10, 1, 6, "carol", "vc0", "x", JobState::kCompleted);
  const auto jd = probe.add(0, 10, 1, 6, "dave", "vc0", "x", JobState::kCompleted);
  EXPECT_DOUBLE_EQ(svc.multiplier(probe, jc), 0.5);
  EXPECT_DOUBLE_EQ(svc.multiplier(probe, jd), 1.0);
}

TEST(MarqueeService, AdjustWrapsBasePriority) {
  MarqueeService svc;
  const Trace h = operated_history();
  svc.update(h);
  Trace probe(spec());
  const auto jc = probe.add(0, 10, 1, 6, "carol", "vc0", "x", JobState::kCompleted);
  const auto fn = svc.adjust(
      [](const trace::JobRecord& j) { return static_cast<double>(j.duration); },
      probe);
  EXPECT_DOUBLE_EQ(fn(jc), 5.0);  // 10 * 0.5
}

TEST(MarqueeService, EmptyHistoryIsSafe) {
  MarqueeService svc;
  svc.update(Trace(spec()));
  EXPECT_EQ(svc.marquee_count(), 0u);
  EXPECT_FALSE(svc.is_marquee("anyone"));
}

TEST(MarqueeService, ReducesMarqueeQueuingEndToEnd) {
  // Train QSSF + marquee detection on the operated Apr-Aug trace; in
  // September, boosted marquee users should queue less than under plain
  // QSSF without wrecking the overall average.
  auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 61,
                                            0.05);
  Trace t = trace::SyntheticTraceGenerator(cfg).generate();
  sim::operate_fifo(t);
  const auto train = t.between(0, from_civil(2020, 9, 1));
  const auto eval = t.between(from_civil(2020, 9, 1), trace::helios_trace_end());

  QssfConfig qcfg;
  qcfg.gbdt.n_trees = 20;
  QssfService qssf(qcfg);
  qssf.fit(train);
  OnlinePriorityEvaluator evaluator(qssf, eval);

  MarqueeConfig mcfg;
  mcfg.queue_share_threshold = 0.03;
  MarqueeService marquee(mcfg);
  marquee.update(train);

  auto run = [&](sim::PriorityFn fn) {
    sim::SimConfig sc;
    sc.policy = sim::SchedulerPolicy::kQssf;
    sc.priority_fn = std::move(fn);
    return sim::ClusterSimulator(eval.cluster(), sc).run(eval);
  };
  const auto plain = run(evaluator.as_priority_fn());
  const auto boosted = run(marquee.adjust(evaluator.as_priority_fn(), eval));

  if (marquee.marquee_count() == 0) GTEST_SKIP() << "no marquee users drawn";

  auto marquee_delay = [&](const sim::SimResult& r) {
    double sum = 0.0;
    std::int64_t n = 0;
    for (const auto& o : r.outcomes) {
      if (o.rejected) continue;
      if (marquee.is_marquee(eval.user_name(eval.jobs()[o.trace_index]))) {
        sum += static_cast<double>(o.queue_delay());
        ++n;
      }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  };
  EXPECT_LE(marquee_delay(boosted), marquee_delay(plain) * 1.02);
  EXPECT_LT(boosted.avg_jct, plain.avg_jct * 1.25);  // no global collapse
}

}  // namespace
}  // namespace helios::core
