// Parameterized property sweeps across clusters, seeds and scales: the
// cheap-and-wide invariants that must hold for any configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/job_stats.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace helios {
namespace {

using trace::GeneratorConfig;
using trace::SyntheticTraceGenerator;
using trace::Trace;

// ---------------------------------------------------------------------------
// Generator invariants per (cluster, seed)
// ---------------------------------------------------------------------------

class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(GeneratorSweep, StructuralInvariants) {
  const auto [cluster, seed] = GetParam();
  auto cfg = GeneratorConfig::helios(trace::helios_cluster(cluster), seed, 0.02);
  const Trace t = SyntheticTraceGenerator(cfg).generate();
  ASSERT_GT(t.size(), 100u);

  std::int64_t gpu_jobs = 0;
  for (const auto& j : t.jobs()) {
    ASSERT_GE(j.submit_time, cfg.begin);
    ASSERT_LT(j.submit_time, cfg.end + kSecondsPerDay);
    ASSERT_GE(j.duration, 1);
    ASSERT_LE(j.duration, 50 * 24 * 3600);
    ASSERT_GE(j.num_gpus, 0);
    ASSERT_GE(j.num_cpus, j.num_gpus > 0 ? 1 : 1);
    ASSERT_LT(j.user, t.users().size());
    ASSERT_LT(j.vc, t.vcs().size());
    if (j.is_gpu_job()) {
      ++gpu_jobs;
      ASSERT_EQ(j.num_gpus & (j.num_gpus - 1), 0) << "power-of-two GPUs";
    }
  }
  // GPU-job share near the cluster knob.
  const double frac = static_cast<double>(gpu_jobs) / static_cast<double>(t.size());
  EXPECT_NEAR(frac, trace::helios_knobs(cluster).gpu_job_fraction, 0.06);
}

TEST_P(GeneratorSweep, JobSizesFitTheirVc) {
  const auto [cluster, seed] = GetParam();
  auto cfg = GeneratorConfig::helios(trace::helios_cluster(cluster), seed, 0.02);
  const Trace t = SyntheticTraceGenerator(cfg).generate();
  for (const auto& j : t.jobs()) {
    if (!j.is_gpu_job()) continue;
    const int vi = t.cluster().find_vc(t.vc_name(j));
    ASSERT_GE(vi, 0);
    ASSERT_LE(j.num_gpus,
              t.cluster().vcs[static_cast<std::size_t>(vi)].total_gpus());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClusters, GeneratorSweep,
    ::testing::Combine(::testing::Values("Venus", "Earth", "Saturn", "Uranus"),
                       ::testing::Values(1ULL, 99ULL)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Simulator invariants per (policy, backfill, seed)
// ---------------------------------------------------------------------------

class SimulatorSweep
    : public ::testing::TestWithParam<
          std::tuple<sim::SchedulerPolicy, bool, std::uint64_t>> {};

TEST_P(SimulatorSweep, NeverOversubscribesAndConserves) {
  const auto [policy, backfill, seed] = GetParam();
  auto cfg = GeneratorConfig::helios(trace::helios_cluster("Earth"), seed, 0.02);
  const Trace t = SyntheticTraceGenerator(cfg).generate();

  sim::SimConfig sc;
  sc.policy = policy;
  sc.backfill = backfill;
  if (policy == sim::SchedulerPolicy::kQssf) {
    sc.priority_fn = [](const trace::JobRecord& j) {
      return static_cast<double>(j.duration) * std::max(1, j.num_gpus);
    };
  }
  const auto r = sim::ClusterSimulator(t.cluster(), sc).run(t);

  const double capacity = t.cluster().total_gpus();
  for (double g : r.busy_gpus.values) {
    ASSERT_LE(g, capacity + 1e-6);
    ASSERT_GE(g, -1e-9);
  }
  for (double n : r.busy_nodes.values) {
    ASSERT_LE(n, t.cluster().nodes + 1e-6);
  }
  std::size_t done = 0;
  for (const auto& o : r.outcomes) {
    if (o.rejected) continue;
    ASSERT_NE(o.start, trace::kNeverStarted);
    ASSERT_GE(o.start, o.submit);
    ++done;
  }
  EXPECT_EQ(done + static_cast<std::size_t>(r.rejected_jobs), r.outcomes.size());
  // Total executed GPU time is policy-invariant (work conservation).
  double executed = 0.0;
  for (const auto& o : r.outcomes) {
    if (!o.rejected) executed += t.jobs()[o.trace_index].gpu_time();
  }
  EXPECT_GT(executed, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyGrid, SimulatorSweep,
    ::testing::Combine(::testing::Values(sim::SchedulerPolicy::kFifo,
                                         sim::SchedulerPolicy::kSjf,
                                         sim::SchedulerPolicy::kSrtf,
                                         sim::SchedulerPolicy::kQssf),
                       ::testing::Values(false, true),
                       ::testing::Values(5ULL)),
    [](const auto& info) {
      return std::string(sim::to_string(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_backfill" : "_strict") + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Work conservation across policies: same trace, same total executed time
// ---------------------------------------------------------------------------

TEST(PolicyEquivalence, SameWorkDifferentOrder) {
  auto cfg = GeneratorConfig::helios(trace::helios_cluster("Venus"), 31, 0.02);
  const Trace t = SyntheticTraceGenerator(cfg).generate();
  double executed_fifo = -1.0;
  for (auto policy : {sim::SchedulerPolicy::kFifo, sim::SchedulerPolicy::kSjf}) {
    sim::SimConfig sc;
    sc.policy = policy;
    const auto r = sim::ClusterSimulator(t.cluster(), sc).run(t);
    double executed = 0.0;
    std::int64_t rejected = 0;
    for (const auto& o : r.outcomes) {
      if (o.rejected) {
        ++rejected;
      } else {
        executed += t.jobs()[o.trace_index].gpu_time();
      }
    }
    if (executed_fifo < 0.0) {
      executed_fifo = executed;
    } else {
      EXPECT_NEAR(executed, executed_fifo, 1.0);
    }
    EXPECT_EQ(rejected, r.rejected_jobs);
  }
}

}  // namespace
}  // namespace helios
