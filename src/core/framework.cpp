#include "core/framework.h"

namespace helios::core {

Service& PredictionFramework::register_service(std::unique_ptr<Service> service) {
  services_.push_back(std::move(service));
  return *services_.back();
}

Service* PredictionFramework::find(const std::string& name) noexcept {
  for (auto& s : services_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

void PredictionFramework::update_all(const trace::Trace& new_data) {
  for (auto& s : services_) s->update(new_data);
}

}  // namespace helios::core
