// Hand-rolled histogram gradient-boosted decision trees (regression,
// squared loss) — the library's stand-in for LightGBM, which the paper uses
// for both the QSSF duration model and the CES node forecaster.
//
// Training follows the standard histogram algorithm: features are quantile-
// binned once (<= max_bins buckets); each tree level builds per-feature
// gradient histograms over the node's rows and picks the split with the best
// variance gain; leaves output the shrunk mean residual. Row subsampling per
// tree gives stochastic boosting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace helios::ml {

/// Per-feature quantile binning. Bin ids are 0..bins-1; values above the
/// last edge fall in the last bin.
class FeatureBinner {
 public:
  FeatureBinner() = default;

  /// Compute at most `max_bins` bins per feature from (a sample of) `data`.
  void fit(const Dataset& data, int max_bins, Rng& rng);

  [[nodiscard]] std::uint8_t bin(std::size_t feature, double value) const noexcept;
  [[nodiscard]] int bins(std::size_t feature) const noexcept {
    return static_cast<int>(edges_[feature].size()) + 1;
  }
  [[nodiscard]] std::size_t features() const noexcept { return edges_.size(); }
  /// Upper edge of `bin` (the split threshold "value <= edge"); bin must be
  /// < bins(feature) - 1.
  [[nodiscard]] double edge(std::size_t feature, int bin) const noexcept {
    return edges_[feature][static_cast<std::size_t>(bin)];
  }

 private:
  std::vector<std::vector<double>> edges_;  // sorted strict upper edges
};

struct GBDTConfig {
  int n_trees = 80;
  int max_depth = 6;
  double learning_rate = 0.10;
  int min_samples_leaf = 20;
  double subsample = 0.8;   ///< row fraction per tree
  int max_bins = 64;
  double lambda = 1.0;      ///< L2 regularisation on leaf values
  std::uint64_t seed = 42;
  /// Cap on training rows (uniform subsample above it); 0 = no cap.
  std::size_t max_training_rows = 0;
};

/// One regression tree over binned features (used internally by the GBDT and
/// exposed for unit testing).
class RegressionTree {
 public:
  struct Node {
    // Leaf iff feature < 0.
    std::int32_t feature = -1;
    double threshold = 0.0;  ///< go left iff value <= threshold (raw units)
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;  ///< leaf output
    double gain = 0.0;   ///< split gain (for feature importance)
  };

  /// Fit to residuals[rows] using pre-binned columns (column-major bins,
  /// bins[f * n_rows + r]).
  void fit(std::span<const std::uint8_t> bins, std::size_t n_rows,
           const FeatureBinner& binner, std::span<const double> residuals,
           std::vector<std::uint32_t> rows, const GBDTConfig& cfg);

  [[nodiscard]] double predict(std::span<const double> features) const noexcept;
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

 private:
  std::int32_t build(std::span<const std::uint8_t> bins, std::size_t n_rows,
                     const FeatureBinner& binner, std::span<const double> residuals,
                     std::span<std::uint32_t> rows, int depth,
                     const GBDTConfig& cfg);

  std::vector<Node> nodes_;
};

class GBDTRegressor {
 public:
  explicit GBDTRegressor(GBDTConfig config = {}) : config_(config) {}

  /// Train on the dataset; replaces any previous model.
  void fit(const Dataset& data);

  [[nodiscard]] double predict(std::span<const double> features) const noexcept;
  [[nodiscard]] std::vector<double> predict_many(const Dataset& data) const;

  /// Total split gain accumulated per feature.
  [[nodiscard]] std::vector<double> feature_importance() const;

  /// Training RMSE after each boosting iteration (for convergence tests).
  [[nodiscard]] const std::vector<double>& training_rmse() const noexcept {
    return train_rmse_;
  }
  [[nodiscard]] const GBDTConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool trained() const noexcept { return !trees_.empty(); }
  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }

 private:
  GBDTConfig config_;
  double base_prediction_ = 0.0;
  std::size_t n_features_ = 0;
  std::vector<RegressionTree> trees_;
  std::vector<double> train_rmse_;
};

}  // namespace helios::ml
