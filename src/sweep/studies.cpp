#include "sweep/studies.h"

#include <utility>

#include "core/qssf_service.h"
#include "forecast/models.h"
#include "sweep/scenario_engine.h"

namespace helios::sweep {

SchedulerStudy run_scheduler_study(const trace::Trace& full, UnixTime train_end,
                                   UnixTime eval_end) {
  SchedulerStudy study;
  const trace::Trace train = full.between(0, train_end);
  study.eval = full.between(train_end, eval_end);

  core::QssfService service;
  service.fit(train);
  core::OnlinePriorityEvaluator evaluator(service, study.eval);
  study.qssf_predicted_gpu_time = evaluator.predicted_gpu_time();
  study.qssf_actual_gpu_time = evaluator.actual_gpu_time();

  // Four cells over one shared evaluation slice: the study is a sweep with a
  // single custom workload and the policy axis.
  TraceStore store;
  TraceKey key;
  key.family = TraceFamily::kCustom;
  key.name = full.cluster().name + ".eval";
  store.put(key, study.eval);

  EngineConfig cfg;
  cfg.priority_provider = [&evaluator](const ScenarioSpec&,
                                       const trace::Trace&) {
    return evaluator.as_priority_fn();
  };
  const ScenarioEngine engine(store, std::move(cfg));

  std::vector<ScenarioSpec> cells(4);
  const sim::SchedulerPolicy policies[] = {
      sim::SchedulerPolicy::kFifo, sim::SchedulerPolicy::kSjf,
      sim::SchedulerPolicy::kSrtf, sim::SchedulerPolicy::kQssf};
  for (std::size_t i = 0; i < 4; ++i) {
    cells[i].workload = {full.cluster().name, key};
    cells[i].policy = policies[i];
  }
  SweepResult sweep = engine.run(cells);
  study.fifo = std::move(sweep.cells[0].result);
  study.sjf = std::move(sweep.cells[1].result);
  study.srtf = std::move(sweep.cells[2].result);
  study.qssf = std::move(sweep.cells[3].result);
  return study;
}

CesStudy run_ces_study(const trace::Trace& operated, UnixTime eval_begin,
                       UnixTime eval_end, bool include_vanilla) {
  // Running-nodes history from the FIFO-operated schedule.
  sim::SimConfig cfg;
  sim::ClusterSimulator sim(operated.cluster(), cfg);
  const auto whole = sim.run(operated);
  const auto history = whole.busy_nodes.between(whole.busy_nodes.begin, eval_begin);

  CesStudy study;
  core::CesConfig base_cfg;
  // The sigma buffer is an absolute node count in the paper (~4 on 143-269
  // node clusters); keep it proportional under scaled-down clusters.
  base_cfg.sigma = std::max(1, operated.cluster().nodes / 30);
  {
    core::CesService svc(base_cfg,
                         std::make_unique<forecast::GBDTForecaster>());
    svc.fit(history);
    study.ces = svc.replay(operated, history, eval_begin, eval_end);
  }
  if (include_vanilla) {
    core::CesConfig vcfg = base_cfg;
    vcfg.vanilla_drs = true;
    core::CesService svc(vcfg,
                         std::make_unique<forecast::SeasonalNaiveForecaster>(144));
    svc.fit(history);
    study.vanilla = svc.replay(operated, history, eval_begin, eval_end);
  }
  return study;
}

std::vector<double> jct_values(const sim::SimResult& r) {
  std::vector<double> out;
  out.reserve(r.outcomes.size());
  for (const auto& o : r.outcomes) {
    if (!o.rejected && o.start != trace::kNeverStarted) {
      out.push_back(static_cast<double>(o.jct()));
    }
  }
  return out;
}

std::vector<double> queue_delay_values(const sim::SimResult& r) {
  std::vector<double> out;
  out.reserve(r.outcomes.size());
  for (const auto& o : r.outcomes) {
    if (!o.rejected && o.start != trace::kNeverStarted) {
      out.push_back(static_cast<double>(o.queue_delay()));
    }
  }
  return out;
}

}  // namespace helios::sweep
