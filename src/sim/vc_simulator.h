// Single-VC discrete-event scheduling loop, extracted from ClusterSimulator.
//
// VCs are dedicated, non-shared node partitions (§2.1): a VC's queue,
// placement, and completion events never interact with another VC's. That
// makes the cluster-wide event loop embarrassingly parallel across VCs —
// ClusterSimulator builds one VcSimulator per VC, runs them concurrently on
// the shared thread pool, and merges per-VC outcomes, counters, and busy
// series deterministically (in VC order; the series terms are exact integer
// products, so the merged series is bit-identical to a serial accumulation).
//
// Each shard owns a single-VC ClusterState over the VC's nodes, the policy
// queue, and run slots:
//  * a per-VC active-run list lets SRTF preemption scan only the jobs
//    currently running instead of every run slot ever created;
//  * FIFO never reorders, so its queue is a deque with tombstones instead of
//    an ordered set;
//  * backfill passes keep the minimum queued GPU demand in a multiset and
//    skip the scan entirely when even the smallest queued job exceeds the
//    VC's free GPUs;
//  * busy-node/GPU accounting coalesces runs of events that leave the busy
//    counters unchanged into one BusySegment, so the series costs O(busy
//    changes), not O(events x buckets).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cluster_state.h"
#include "sim/simulator.h"

namespace helios::sim {

/// A maximal interval over which a VC's busy-node/GPU counts and power draw
/// are constant. Shards log these; the orchestrator integrates them into the
/// cluster-wide series after the parallel phase (intervals may overhang the
/// bucket window; the integrator clamps). Unlike the busy counts, `watts`
/// includes the idle baseline, so segments cover idle stretches too.
struct BusySegment {
  std::int64_t t0 = 0;
  std::int64_t t1 = 0;
  std::int32_t nodes = 0;
  std::int32_t gpus = 0;
  double watts = 0.0;  ///< VC draw: node baseline + per-GPU draw of its runs
};

class VcSimulator {
 public:
  /// Aggregates merged into SimResult by the orchestrator.
  struct Counters {
    std::int64_t preemptions = 0;
    std::int64_t rejected = 0;
    std::int64_t kills = 0;     ///< job runs killed by node failures
    std::int64_t failures = 0;  ///< node-failure events applied
  };

  /// `vc` is the cluster-spec VC index; the shard models only that VC's
  /// nodes. `window_begin` is where busy accounting starts (the cluster-wide
  /// series origin); `config` must be shared across shards. The shard copies
  /// its VC's FaultPlan events up front, remapped through
  /// SimConfig::node_order so the allocator's id-order preference follows
  /// the configured placement ranking.
  VcSimulator(const trace::ClusterSpec& spec, int vc, const SimConfig& config,
              UnixTime window_begin);

  /// Simulate this VC's jobs. `arrivals` holds indices into `outcomes` (==
  /// positions in the trace's GPU-job order) in submit order; entries are
  /// pre-filled with submit/gpus/vc/trace_index and run() writes start, end,
  /// and rejected for its own entries only, so shards may run concurrently
  /// over one shared outcomes vector.
  Counters run(const trace::Trace& t, const std::vector<std::size_t>& arrivals,
               std::vector<JobOutcome>& outcomes);

  /// Busy-count segments recorded by run(), in time order.
  [[nodiscard]] const std::vector<BusySegment>& segments() const noexcept {
    return segments_;
  }

 private:
  const SimConfig* config_;
  UnixTime window_begin_;
  ClusterState state_;
  /// This VC's capacity-proportional share of SimConfig::power_cap_watts;
  /// <= 0 when admission is uncapped.
  double cap_share_ = 0.0;
  /// Sum of the per-GPU draws of the currently active runs.
  double run_watts_ = 0.0;
  std::vector<BusySegment> segments_;
  /// This VC's fault events, time-sorted, with `node` already translated to
  /// the shard's internal node ids (the node_order permutation).
  std::vector<NodeFaultEvent> faults_;
};

}  // namespace helios::sim
