// Cluster and virtual-cluster specifications (paper Table 1).
//
// Helios: four clusters (Venus, Earth, Saturn, Uranus), 802 nodes / 6416
// GPUs total, each statically partitioned into VCs (every node belongs to
// exactly one VC, 8 GPUs per node). Philly: the Microsoft comparison cluster.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/civil_time.h"

namespace helios::trace {

/// A virtual cluster: a dedicated, non-shared slice of whole nodes (§2.1).
struct VCSpec {
  std::string name;
  int nodes = 0;
  int gpus_per_node = 8;

  [[nodiscard]] int total_gpus() const noexcept { return nodes * gpus_per_node; }
};

/// A physical cluster.
struct ClusterSpec {
  std::string name;
  int nodes = 0;
  int gpus_per_node = 8;
  int cpus_per_node = 48;
  /// Expected jobs over the 6-month trace window at scale 1.0 (Table 1).
  std::int64_t reference_jobs = 0;
  std::vector<VCSpec> vcs;

  [[nodiscard]] int total_gpus() const noexcept { return nodes * gpus_per_node; }
  [[nodiscard]] int vc_count() const noexcept { return static_cast<int>(vcs.size()); }
  /// Index of the VC with the given name, or -1.
  [[nodiscard]] int find_vc(const std::string& name) const noexcept;
};

/// Helios trace window: April 1 - September 27, 2020 (§2.3, footnote 1).
[[nodiscard]] UnixTime helios_trace_begin() noexcept;
[[nodiscard]] UnixTime helios_trace_end() noexcept;

/// Philly evaluation window used by the paper: October 1 - November 30, 2017.
[[nodiscard]] UnixTime philly_trace_begin() noexcept;
[[nodiscard]] UnixTime philly_trace_end() noexcept;

/// The four Helios clusters with Table 1 shapes. VC node counts are not
/// published; they are derived deterministically to match the published VC
/// counts, total node counts, and the Figure 4 observation that VC sizes are
/// skewed (one ~26-node VC in Earth, most VCs 4-12 nodes).
[[nodiscard]] std::vector<ClusterSpec> helios_clusters();

/// A single Helios cluster by name ("Venus", "Earth", "Saturn", "Uranus").
[[nodiscard]] ClusterSpec helios_cluster(const std::string& name);

/// The Philly comparison cluster: 552 nodes is the published machine count;
/// the trace activity concentrates on ~358 GPU nodes across 14 VCs.
[[nodiscard]] ClusterSpec philly_cluster();

/// The Alibaba-PAI comparison cluster (Wang et al., arXiv:1910.05930):
/// 2-GPU, CPU-rich nodes hosting the short-recurring-job workload family of
/// trace::pai_knobs(). Not a Helios cluster — it exists so the scenario
/// sweeps can face the schedulers with a genuinely different job mix.
[[nodiscard]] ClusterSpec pai_cluster();

/// Scale a cluster down (or up) for cheap experimentation: VC node counts are
/// multiplied by `factor` (rounded), VCs that round to zero nodes are
/// dropped, and the total is adjusted to round(nodes * factor). Workload
/// generators scale job counts with the same factor, so offered load per GPU
/// — and therefore utilization, queuing and scheduler behaviour — is
/// preserved. reference_jobs is left unscaled (the generator applies scale).
[[nodiscard]] ClusterSpec scale_cluster(const ClusterSpec& spec, double factor);

}  // namespace helios::trace
