#include "serialize/binary.h"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>

namespace helios::serialize {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kIo: return "io";
    case ErrorCode::kBadMagic: return "bad-magic";
    case ErrorCode::kUnsupportedVersion: return "unsupported-version";
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kBadSection: return "bad-section";
    case ErrorCode::kCrcMismatch: return "crc-mismatch";
    case ErrorCode::kCorrupt: return "corrupt";
  }
  return "unknown";
}

Error::Error(ErrorCode code, const std::string& message)
    : std::runtime_error("serialize [" + std::string(to_string(code)) + "]: " +
                         message),
      code_(code) {}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 reflected polynomial, the zlib/PNG convention)
// ---------------------------------------------------------------------------

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t c = 0xffffffffu;
  for (const std::uint8_t b : data) {
    c = kCrcTable[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::bytes(std::span<const std::uint8_t> v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::str(std::string_view s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::vec_f64(std::span<const double> v) {
  u64(v.size());
  for (const double x : v) f64(x);
}

void Writer::vec_i32(std::span<const std::int32_t> v) {
  u64(v.size());
  for (const std::int32_t x : v) i32(x);
}

void Writer::vec_u64(std::span<const std::uint64_t> v) {
  u64(v.size());
  for (const std::uint64_t x : v) u64(x);
}

void Writer::begin_section(std::uint32_t tag) {
  u32(tag);
  open_.push_back(buf_.size());
  u64(0);  // length placeholder
}

void Writer::end_section() {
  const std::size_t at = open_.back();
  open_.pop_back();
  const std::uint64_t len = buf_.size() - (at + 8);
  for (int i = 0; i < 8; ++i) {
    buf_[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
  }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

void Reader::need(std::size_t n) const {
  if (remaining() < n) {
    throw Error(ErrorCode::kTruncated,
                "need " + std::to_string(n) + " bytes, have " +
                    std::to_string(remaining()));
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return *p_++;
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(v | static_cast<std::uint16_t>(p_[i]) << (8 * i));
  }
  p_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p_[i]) << (8 * i);
  p_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
  p_ += 8;
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::size_t Reader::length(std::size_t min_elem_size) {
  const std::uint64_t n = u64();
  const std::size_t cap =
      remaining() / (min_elem_size == 0 ? std::size_t{1} : min_elem_size);
  if (n > cap) {
    throw Error(ErrorCode::kTruncated,
                "declared count " + std::to_string(n) +
                    " exceeds remaining payload");
  }
  return static_cast<std::size_t>(n);
}

std::string Reader::str() {
  const std::size_t n = length(1);
  std::string s(reinterpret_cast<const char*>(p_), n);
  p_ += n;
  return s;
}

std::vector<double> Reader::vec_f64() {
  const std::size_t n = length(8);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = f64();
  return v;
}

std::vector<std::int32_t> Reader::vec_i32() {
  const std::size_t n = length(4);
  std::vector<std::int32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i32();
  return v;
}

std::vector<std::uint64_t> Reader::vec_u64() {
  const std::size_t n = length(8);
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = u64();
  return v;
}

Reader Reader::section(std::uint32_t expected_tag) {
  const std::uint32_t tag = u32();
  if (tag != expected_tag) {
    throw Error(ErrorCode::kBadSection,
                "expected section tag " + std::to_string(expected_tag) +
                    ", found " + std::to_string(tag));
  }
  const std::uint64_t len = u64();
  need(static_cast<std::size_t>(len));
  Reader sub(std::span<const std::uint8_t>(p_, static_cast<std::size_t>(len)));
  p_ += len;
  return sub;
}

void Reader::close(std::string_view what) const {
  if (remaining() != 0) {
    throw Error(ErrorCode::kCorrupt,
                std::string(what) + ": " + std::to_string(remaining()) +
                    " trailing bytes");
  }
}

// ---------------------------------------------------------------------------
// Frame
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kHeaderSize = 8 + 4 + 4;  // magic + version + flags
constexpr std::size_t kTrailerSize = 4;         // crc32
}  // namespace

std::vector<std::uint8_t> frame(const Writer& body) {
  Writer out;
  out.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), sizeof(kMagic)));
  out.u32(kFormatVersion);
  out.u32(0);  // flags
  out.bytes(body.buffer());
  const std::uint32_t crc = crc32(out.buffer());
  Writer full = std::move(out);
  full.u32(crc);
  return full.buffer();
}

std::vector<std::uint8_t> unframe(std::span<const std::uint8_t> file) {
  if (file.size() < kHeaderSize + kTrailerSize) {
    throw Error(ErrorCode::kTruncated,
                "frame of " + std::to_string(file.size()) +
                    " bytes is smaller than header + trailer");
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    throw Error(ErrorCode::kBadMagic, "not a helios model file");
  }
  // CRC before version: a corrupted version field should be reported as
  // corruption, not as a file from the future.
  const std::size_t body_end = file.size() - kTrailerSize;
  Reader trailer(file.subspan(body_end));
  const std::uint32_t stored = trailer.u32();
  const std::uint32_t actual = crc32(file.first(body_end));
  if (stored != actual) {
    throw Error(ErrorCode::kCrcMismatch,
                "stored crc " + std::to_string(stored) + " != computed " +
                    std::to_string(actual));
  }
  Reader header(file.subspan(sizeof(kMagic), 8));
  const std::uint32_t version = header.u32();
  if (version > kFormatVersion) {
    throw Error(ErrorCode::kUnsupportedVersion,
                "file format version " + std::to_string(version) +
                    " is newer than supported " +
                    std::to_string(kFormatVersion));
  }
  const auto body = file.subspan(kHeaderSize, body_end - kHeaderSize);
  return {body.begin(), body.end()};
}

void write_file(const std::string& path, const Writer& body) {
  const std::vector<std::uint8_t> out = frame(body);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw Error(ErrorCode::kIo, "cannot open " + path + " for writing");
  }
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const int rc = std::fclose(f);
  if (written != out.size() || rc != 0) {
    throw Error(ErrorCode::kIo, "short write to " + path);
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw Error(ErrorCode::kIo, "cannot open " + path + " for reading");
  }
  std::vector<std::uint8_t> data;
  std::uint8_t buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw Error(ErrorCode::kIo, "read error on " + path);
  return unframe(data);
}

}  // namespace helios::serialize
