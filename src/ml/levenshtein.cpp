#include "ml/levenshtein.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "serialize/binary.h"

namespace helios::ml {

std::size_t levenshtein(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter string
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  if (m == 0) return n;
  std::vector<std::size_t> row(m + 1);
  for (std::size_t i = 0; i <= m; ++i) row[i] = i;
  for (std::size_t j = 1; j <= n; ++j) {
    std::size_t prev_diag = row[0];
    row[0] = j;
    for (std::size_t i = 1; i <= m; ++i) {
      const std::size_t cur = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1,
                         prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      prev_diag = cur;
    }
  }
  return row[m];
}

double normalized_levenshtein(std::string_view a, std::string_view b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(levenshtein(a, b)) / static_cast<double>(longest);
}

bool within_distance(std::string_view a, std::string_view b, std::size_t limit) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t diff = m > n ? m - n : n - m;
  if (diff > limit) return false;
  if (limit == 0) return a == b;
  if (m > n) std::swap(a, b);
  // Banded DP: only cells within `limit` of the diagonal can stay <= limit.
  const std::size_t sm = a.size();
  const std::size_t sn = b.size();
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max() / 2;
  std::vector<std::size_t> row(sm + 1, kInf);
  for (std::size_t i = 0; i <= std::min(sm, limit); ++i) row[i] = i;
  for (std::size_t j = 1; j <= sn; ++j) {
    const std::size_t lo = j > limit ? j - limit : 0;
    const std::size_t hi = std::min(sm, j + limit);
    std::size_t prev_diag = row[lo > 0 ? lo - 1 : 0];
    std::size_t new_low = kInf;
    if (lo == 0) {
      prev_diag = row[0];
      row[0] = j;
      new_low = row[0];
    } else {
      row[lo - 1] = kInf;
    }
    bool any_le = lo == 0 && row[0] <= limit;
    for (std::size_t i = std::max<std::size_t>(lo, 1); i <= hi; ++i) {
      const std::size_t cur = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1,
                         prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      prev_diag = cur;
      any_le |= row[i] <= limit;
    }
    (void)new_low;
    if (!any_le) return false;  // whole band exceeded the limit
  }
  return row[sm] <= limit;
}

std::uint32_t NameBucketizer::find_nearest(std::string_view name) const {
  std::uint32_t best = kNoBucket;
  double best_dist = threshold_;
  auto consider = [&](std::uint32_t i) {
    const std::string& rep = representatives_[i];
    const auto limit = static_cast<std::size_t>(
        std::floor(threshold_ * static_cast<double>(std::max(rep.size(), name.size()))));
    if (!within_distance(rep, name, limit)) return;
    const double d = normalized_levenshtein(rep, name);
    if (d <= best_dist) {
      best_dist = d;
      best = i;
    }
  };
  if (prefix_len_ > 0) {
    const auto it = by_prefix_.find(prefix_key(name));
    if (it != by_prefix_.end()) {
      for (std::uint32_t i : it->second) consider(i);
    }
  } else {
    for (std::uint32_t i = 0; i < representatives_.size(); ++i) consider(i);
  }
  return best;
}

std::uint32_t NameBucketizer::bucket(std::string_view name) {
  const auto it = exact_.find(std::string(name));
  if (it != exact_.end()) return it->second;
  std::uint32_t id = find_nearest(name);
  if (id == kNoBucket) {
    id = static_cast<std::uint32_t>(representatives_.size());
    representatives_.emplace_back(name);
    if (prefix_len_ > 0) by_prefix_[prefix_key(name)].push_back(id);
  }
  exact_.emplace(name, id);
  return id;
}

std::uint32_t NameBucketizer::lookup(std::string_view name) const {
  const auto it = exact_.find(std::string(name));
  if (it != exact_.end()) return it->second;
  return find_nearest(name);
}

namespace {
constexpr std::uint32_t kBucketizerTag = serialize::fourcc("NBKT");
constexpr std::uint32_t kBucketizerVersion = 1;
}  // namespace

void NameBucketizer::save(serialize::Writer& w) const {
  w.begin_section(kBucketizerTag);
  w.u32(kBucketizerVersion);
  w.f64(threshold_);
  w.u64(prefix_len_);
  w.u64(representatives_.size());
  for (const std::string& rep : representatives_) w.str(rep);
  // Memoized assignments in sorted order: the bytes are canonical however
  // the unordered map happens to hash.
  std::vector<std::pair<std::string_view, std::uint32_t>> memo(exact_.begin(),
                                                               exact_.end());
  std::sort(memo.begin(), memo.end());
  w.u64(memo.size());
  for (const auto& [name, id] : memo) {
    w.str(name);
    w.u32(id);
  }
  w.end_section();
}

void NameBucketizer::load(serialize::Reader& r) {
  serialize::Reader s = r.section(kBucketizerTag);
  const std::uint32_t version = s.u32();
  if (version != kBucketizerVersion) {
    throw serialize::Error(
        serialize::ErrorCode::kUnsupportedVersion,
        "bucketizer section version " + std::to_string(version));
  }
  const double threshold = s.f64();
  const std::size_t prefix_len = static_cast<std::size_t>(s.u64());
  const std::size_t n_reps = s.length(8);
  std::vector<std::string> reps(n_reps);
  for (std::size_t i = 0; i < n_reps; ++i) reps[i] = s.str();
  const std::size_t n_memo = s.length(12);  // str length + u32 id
  std::unordered_map<std::string, std::uint32_t> memo;
  memo.reserve(n_memo);
  for (std::size_t i = 0; i < n_memo; ++i) {
    std::string name = s.str();
    const std::uint32_t id = s.u32();
    if (id >= n_reps) {
      throw serialize::Error(serialize::ErrorCode::kCorrupt,
                             "bucket id " + std::to_string(id) + " of " +
                                 std::to_string(n_reps));
    }
    memo.emplace(std::move(name), id);
  }
  s.close("bucketizer");

  threshold_ = threshold;
  prefix_len_ = prefix_len;
  representatives_ = std::move(reps);
  exact_ = std::move(memo);
  // The prefix index is derived state: rebuild it exactly as bucket() grew
  // it — bucket ids appended in founding order.
  by_prefix_.clear();
  if (prefix_len_ > 0) {
    for (std::uint32_t i = 0; i < representatives_.size(); ++i) {
      by_prefix_[prefix_key(representatives_[i])].push_back(i);
    }
  }
}

}  // namespace helios::ml
