// AVX2 forms of the GBDT hot kernels — the only translation unit compiled
// with -mavx2 (CMake sets the flag per-file when the compiler supports it;
// HELIOS_HAVE_AVX2 tells common::simd_compiled() the real bodies are here).
// Everything else in the library stays baseline-ISA, and these entry points
// are reached only behind common::simd_enabled(), so the binary runs on
// CPUs without AVX2.
//
// Intentionally compiled WITHOUT -mfma: predict_forest_avx2 must perform the
// same separate multiply-then-add the scalar walk does; a fused contraction
// would round once instead of twice and break bit-parity.
#include "ml/gbdt_kernels.h"

#include <cstdlib>

#include "ml/gbdt.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace helios::ml::kernels {

#if defined(__AVX2__)

void hist_accumulate_avx2(const std::uint16_t* gbins, std::size_t p,
                          const std::uint32_t* rows, std::size_t lo,
                          std::size_t hi, const std::int32_t* grad,
                          std::int64_t* h0, std::int64_t* h1) noexcept {
  constexpr int kCountBits = 24;
  const auto* b0 = reinterpret_cast<const long long*>(h0);
  const auto* b1 = reinterpret_cast<const long long*>(h1);
  std::size_t k = lo;
  // Two rows in flight (one per arena) so the two gathers' latencies
  // overlap; within a row the four gathered buckets are distinct (per-feature
  // histogram slices), so gather -> add -> 4 stores is a legal RMW.
  for (; k + 1 < hi; k += 2) {
    const std::size_t r0 = rows[k];
    const std::size_t r1 = rows[k + 1];
    const std::uint16_t* rb0 = gbins + r0 * p;
    const std::uint16_t* rb1 = gbins + r1 * p;
    const std::int64_t g0 =
        (static_cast<std::int64_t>(grad[r0]) << kCountBits) | 1;
    const std::int64_t g1 =
        (static_cast<std::int64_t>(grad[r1]) << kCountBits) | 1;
    const __m256i gv0 = _mm256_set1_epi64x(g0);
    const __m256i gv1 = _mm256_set1_epi64x(g1);
    std::size_t f = 0;
    for (; f + 4 <= p; f += 4) {
      // 4 uint16 global bin ids -> 4 int32 gather indices per row.
      const __m128i i0 = _mm_cvtepu16_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rb0 + f)));
      const __m128i i1 = _mm_cvtepu16_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rb1 + f)));
      const __m256i v0 =
          _mm256_add_epi64(_mm256_i32gather_epi64(b0, i0, 8), gv0);
      const __m256i v1 =
          _mm256_add_epi64(_mm256_i32gather_epi64(b1, i1, 8), gv1);
      // AVX2 has no scatter; the write-back is four 64-bit stores per arena
      // at the scalar-reloaded indices. movq/movhps forms keep each store a
      // single store-port uop instead of an ALU extract + store pair.
      const __m128i v0lo = _mm256_castsi256_si128(v0);
      const __m128i v0hi = _mm256_extracti128_si256(v0, 1);
      const __m128i v1lo = _mm256_castsi256_si128(v1);
      const __m128i v1hi = _mm256_extracti128_si256(v1, 1);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(h0 + rb0[f + 0]), v0lo);
      _mm_storeh_pd(reinterpret_cast<double*>(h0 + rb0[f + 1]),
                    _mm_castsi128_pd(v0lo));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(h0 + rb0[f + 2]), v0hi);
      _mm_storeh_pd(reinterpret_cast<double*>(h0 + rb0[f + 3]),
                    _mm_castsi128_pd(v0hi));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(h1 + rb1[f + 0]), v1lo);
      _mm_storeh_pd(reinterpret_cast<double*>(h1 + rb1[f + 1]),
                    _mm_castsi128_pd(v1lo));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(h1 + rb1[f + 2]), v1hi);
      _mm_storeh_pd(reinterpret_cast<double*>(h1 + rb1[f + 3]),
                    _mm_castsi128_pd(v1hi));
    }
    for (; f < p; ++f) {
      h0[rb0[f]] += g0;
      h1[rb1[f]] += g1;
    }
  }
  for (; k < hi; ++k) {
    const std::uint16_t* rb = gbins + rows[k] * p;
    const std::int64_t gp =
        (static_cast<std::int64_t>(grad[rows[k]]) << kCountBits) | 1;
    for (std::size_t f = 0; f < p; ++f) h0[rb[f]] += gp;
  }
}

namespace {

/// One heap-walk step for an 8-row lane group: gather the packed splits at
/// `idx` (relative to `sp`), gather the 8 rows' bins for the split features,
/// and advance idx = 2*idx + 1 + go_right. go_right lanes compare to -1, so
/// the advance is 2*idx + 1 - mask.
inline __m256i walk_step(const int* sp, const std::uint8_t* bins,
                         __m256i rowbase, __m256i idx, __m256i xff,
                         __m256i one) noexcept {
  const __m256i pk = _mm256_i32gather_epi32(sp, idx, 4);
  const __m256i addr = _mm256_add_epi32(rowbase, _mm256_srli_epi32(pk, 8));
  // uint8 load via 4-byte gather + mask; the plane is padded by
  // kBinGatherPad so the overread past the last cell stays in bounds.
  const __m256i bv = _mm256_and_si256(
      _mm256_i32gather_epi32(reinterpret_cast<const int*>(bins), addr, 1),
      xff);
  const __m256i right = _mm256_cmpgt_epi32(bv, _mm256_and_si256(pk, xff));
  return _mm256_sub_epi32(
      _mm256_add_epi32(_mm256_slli_epi32(idx, 1), one), right);
}

/// lr * value[vidx lane] accumulated into (acc_lo, acc_hi) — separate mul
/// then add (no FMA): the same two roundings as the scalar out[r] += lr *
/// value accumulation.
inline void accumulate_leaves(const double* value, __m256i vidx, __m256d lr,
                              __m256d& acc_lo, __m256d& acc_hi) noexcept {
  acc_lo = _mm256_add_pd(
      acc_lo, _mm256_mul_pd(lr, _mm256_i32gather_pd(
                                    value, _mm256_castsi256_si128(vidx), 8)));
  acc_hi = _mm256_add_pd(
      acc_hi, _mm256_mul_pd(lr, _mm256_i32gather_pd(
                                    value, _mm256_extracti128_si256(vidx, 1),
                                    8)));
}

}  // namespace

void predict_forest_avx2(const PackedForest& forest, const std::uint8_t* bins,
                         std::size_t p, std::size_t lo, std::size_t hi,
                         double learning_rate, double* out) noexcept {
  const int* split = forest.split.data();
  const double* value = forest.value.data();
  const std::int32_t D = forest.levels;
  const std::int32_t slots = (1 << D) - 1;   // interior heap slots per tree
  const std::int32_t leaves = slots + 1;     // 2^D leaf values per tree
  const auto n_trees = static_cast<std::size_t>(forest.n_trees);
  const __m256d lr = _mm256_set1_pd(learning_rate);
  const __m256i xff = _mm256_set1_epi32(0xff);
  const __m256i one = _mm256_set1_epi32(1);
  const auto ip = static_cast<int>(p);
  const __m256i lane_off =
      _mm256_mullo_epi32(_mm256_set_epi32(7, 6, 5, 4, 3, 2, 1, 0),
                         _mm256_set1_epi32(ip));
  std::size_t r = lo;
  // Two 8-row groups x two trees in flight: the heap walk is a chain of
  // dependent gathers (split -> bins -> next idx), so a single group would
  // be latency-bound; four independent chains keep the gather ports busy.
  for (; r + 16 <= hi; r += 16) {
    const __m256i rbA = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(r) * ip), lane_off);
    const __m256i rbB = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(r + 8) * ip), lane_off);
    __m256d accA_lo = _mm256_loadu_pd(out + r);
    __m256d accA_hi = _mm256_loadu_pd(out + r + 4);
    __m256d accB_lo = _mm256_loadu_pd(out + r + 8);
    __m256d accB_hi = _mm256_loadu_pd(out + r + 12);
    std::size_t t = 0;
    for (; t + 2 <= n_trees; t += 2) {
      const int* sp0 = split + t * static_cast<std::size_t>(slots);
      const int* sp1 = sp0 + slots;
      __m256i iA0 = _mm256_setzero_si256();
      __m256i iB0 = _mm256_setzero_si256();
      __m256i iA1 = _mm256_setzero_si256();
      __m256i iB1 = _mm256_setzero_si256();
      for (std::int32_t d = D; d > 0; --d) {
        iA0 = walk_step(sp0, bins, rbA, iA0, xff, one);
        iB0 = walk_step(sp0, bins, rbB, iB0, xff, one);
        iA1 = walk_step(sp1, bins, rbA, iA1, xff, one);
        iB1 = walk_step(sp1, bins, rbB, iB1, xff, one);
      }
      // After D steps idx is in [slots, 2*slots]; leaf value index is
      // t*leaves + idx - slots.
      const __m256i v0 = _mm256_set1_epi32(
          static_cast<int>(t) * leaves - slots);
      const __m256i v1 = _mm256_add_epi32(v0, _mm256_set1_epi32(leaves));
      // Tree t strictly before tree t+1 per accumulator — the identical
      // double-precision add order as the scalar walk.
      accumulate_leaves(value, _mm256_add_epi32(iA0, v0), lr, accA_lo, accA_hi);
      accumulate_leaves(value, _mm256_add_epi32(iB0, v0), lr, accB_lo, accB_hi);
      accumulate_leaves(value, _mm256_add_epi32(iA1, v1), lr, accA_lo, accA_hi);
      accumulate_leaves(value, _mm256_add_epi32(iB1, v1), lr, accB_lo, accB_hi);
    }
    for (; t < n_trees; ++t) {  // odd forest size: last tree, two chains
      const int* sp = split + t * static_cast<std::size_t>(slots);
      __m256i iA = _mm256_setzero_si256();
      __m256i iB = _mm256_setzero_si256();
      for (std::int32_t d = D; d > 0; --d) {
        iA = walk_step(sp, bins, rbA, iA, xff, one);
        iB = walk_step(sp, bins, rbB, iB, xff, one);
      }
      const __m256i v0 = _mm256_set1_epi32(
          static_cast<int>(t) * leaves - slots);
      accumulate_leaves(value, _mm256_add_epi32(iA, v0), lr, accA_lo, accA_hi);
      accumulate_leaves(value, _mm256_add_epi32(iB, v0), lr, accB_lo, accB_hi);
    }
    _mm256_storeu_pd(out + r, accA_lo);
    _mm256_storeu_pd(out + r + 4, accA_hi);
    _mm256_storeu_pd(out + r + 8, accB_lo);
    _mm256_storeu_pd(out + r + 12, accB_hi);
  }
  for (; r < hi; ++r) {
    out[r] = predict_forest_row_scalar(forest, bins, p, r, learning_rate,
                                       out[r]);
  }
}

#else  // !defined(__AVX2__)

// The compiler cannot target AVX2: simd_compiled() is false, so these are
// unreachable. Aborting (rather than silently falling back) turns a broken
// dispatch gate into a loud failure.
void hist_accumulate_avx2(const std::uint16_t*, std::size_t,
                          const std::uint32_t*, std::size_t, std::size_t,
                          const std::int32_t*, std::int64_t*,
                          std::int64_t*) noexcept {
  std::abort();
}

void predict_forest_avx2(const PackedForest&, const std::uint8_t*, std::size_t,
                         std::size_t, std::size_t, double, double*) noexcept {
  std::abort();
}

#endif  // defined(__AVX2__)

}  // namespace helios::ml::kernels
