// The one execution-mode switch of the library.
//
// Three layers grew near-duplicate two-value enums for "run this on the
// shared pool vs. serially on the calling thread": sim::SimExecution
// (kSharded/kSerial), core::EvalExecution (kChunked/kSerial), and
// forecast::BacktestExecution (kParallel/kSerial). Every pair obeys the same
// contract — both modes are bit-identical, kSerial is the parity reference —
// so they are now one enum that composed callers (svc::PredictionServer is
// the first) can thread through every layer with a single spelling.
//
// Compatibility: the per-layer names live on for one release as type aliases
// at their old locations, and the old enumerator spellings (kSharded,
// kChunked) as enumerator aliases of kParallel below. New code uses
// common::ExecMode::{kParallel, kSerial}.
#pragma once

#include <string_view>

namespace helios::common {

/// How a driver executes its independent work units. Both modes must produce
/// bit-identical results (the determinism/parity suites pin this per layer);
/// kSerial is the reference and keeps the shared pool free.
enum class ExecMode {
  kParallel,  ///< work units run concurrently on the shared thread pool
  kSerial,    ///< work units run in order on the calling thread

  // Deprecated enumerator aliases (source compat for the retired
  // SimExecution::kSharded / EvalExecution::kChunked spellings; to be
  // removed next release).
  kSharded = kParallel,
  kChunked = kParallel,
};

[[nodiscard]] constexpr std::string_view to_string(ExecMode m) noexcept {
  return m == ExecMode::kSerial ? "serial" : "parallel";
}

}  // namespace helios::common
