// Table 5: CES performance per cluster — average DRS (sleeping) nodes, daily
// wake-up events, nodes woken per event, node utilization before/after — plus
// the §4.3.3 headline numbers: affected jobs, vanilla-DRS comparison, and the
// annualized energy saving.
#include <cstdio>

#include "bench_common.h"
#include "common/text_table.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;

  bench::print_header("Table 5",
                      "CES performance on each Helios cluster and Philly",
                      "Helios eval: Sep 1-21; Philly eval: Dec 1-14");

  struct Entry {
    std::string name;
    bench::CesStudy study;
  };
  std::vector<Entry> entries;
  for (const auto& tp : bench::operated_helios_traces()) {
    const helios::trace::Trace& t = *tp;
    entries.push_back({t.cluster().name,
                       bench::run_ces_study(t, helios::from_civil(2020, 9, 1),
                                            helios::from_civil(2020, 9, 22))});
  }
  entries.push_back({"Philly",
                     bench::run_ces_study(bench::operated_philly_trace(),
                                          helios::from_civil(2017, 12, 1),
                                          helios::from_civil(2017, 12, 15))});

  TextTable table({"", "Venus", "Earth", "Saturn", "Uranus", "Philly"});
  auto row = [&](const char* label,
                 const std::function<std::string(const helios::core::CesResult&)>& f) {
    std::vector<std::string> cells = {label};
    for (const auto& e : entries) cells.push_back(f(e.study.ces));
    table.add_row(std::move(cells));
  };
  row("Average # of DRS nodes", [](const auto& r) {
    return TextTable::cell(r.avg_drs_nodes, 1);
  });
  row("Average daily wake-ups", [](const auto& r) {
    return TextTable::cell(r.daily_wakeups, 1);
  });
  row("Average woken nodes per wake-up", [](const auto& r) {
    return TextTable::cell(r.avg_woken_per_wakeup, 1);
  });
  row("Node utilization (Original)", [](const auto& r) {
    return TextTable::cell_pct(r.node_util_original);
  });
  row("Node utilization (CES)", [](const auto& r) {
    return TextTable::cell_pct(r.node_util_ces);
  });
  row("Affected jobs / total", [](const auto& r) {
    return TextTable::cell(r.affected_jobs) + "/" + TextTable::cell(r.total_jobs);
  });
  row("Forecast SMAPE", [](const auto& r) {
    return TextTable::cell(r.forecast_smape, 1) + "%";
  });
  row("Saved energy (window, kWh)", [](const auto& r) {
    return TextTable::cell(r.saved_kwh, 0);
  });
  std::printf("%s\n", table.str().c_str());

  // Vanilla DRS comparison (the §4.3.3 ablation).
  TextTable vt({"", "Venus", "Earth", "Saturn", "Uranus", "Philly"});
  std::vector<std::string> smart = {"CES wake-ups/day"};
  std::vector<std::string> vanilla = {"vanilla DRS wake-ups/day"};
  std::vector<std::string> affected = {"vanilla DRS affected jobs"};
  for (const auto& e : entries) {
    smart.push_back(TextTable::cell(e.study.ces.daily_wakeups, 1));
    vanilla.push_back(TextTable::cell(e.study.vanilla.daily_wakeups, 1));
    affected.push_back(TextTable::cell(e.study.vanilla.affected_jobs));
  }
  vt.add_row(std::move(smart));
  vt.add_row(std::move(vanilla));
  vt.add_row(std::move(affected));
  std::printf("%s\n", vt.str().c_str());

  double annual = 0.0;
  for (std::size_t i = 0; i < 4; ++i) annual += entries[i].study.ces.annualized_kwh;
  bench::print_expectation("annualized Helios saving (4 clusters)",
                           ">1.65M kWh at scale 1.0",
                           TextTable::cell(annual, 0) + " kWh (scaled cluster)");
  bench::print_expectation("daily wake-ups (Helios)", "1.1~2.6 (CES) vs ~34 (vanilla)",
                           "see comparison rows");
  bench::print_expectation("node utilization gains", "e.g. Earth 82.1%->95.1%",
                           "see utilization rows");
  return 0;
}
