// Figure 8: CDFs of per-user (a) GPU time and (b) CPU time consumption.
#include <cstdio>

#include "analysis/user_stats.h"
#include "bench_common.h"
#include "common/text_table.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace analysis = helios::analysis;

  bench::print_header("Figure 8", "User-level resource concentration");

  const auto& traces = bench::operated_helios_traces();
  TextTable table({"Cluster", "users", "top 5% GPU time", "top 10% GPU time",
                   "top 5% CPU time", "CPU users"});
  for (const auto& tp : traces) {
    const helios::trace::Trace& t = *tp;
    const auto users = analysis::user_aggregates(t);
    std::vector<double> gpu_time;
    std::vector<double> cpu_time;
    std::int64_t cpu_users = 0;
    for (const auto& u : users) {
      gpu_time.push_back(u.gpu_time);
      cpu_time.push_back(u.cpu_time);
      cpu_users += u.cpu_jobs > 0;
    }
    table.add_row({t.cluster().name,
                   TextTable::cell(static_cast<std::int64_t>(users.size())),
                   TextTable::cell_pct(analysis::top_share(gpu_time, 0.05)),
                   TextTable::cell_pct(analysis::top_share(gpu_time, 0.10)),
                   TextTable::cell_pct(analysis::top_share(cpu_time, 0.05)),
                   TextTable::cell(cpu_users)});
  }
  std::printf("%s\n", table.str().c_str());

  bench::print_expectation("top 5% users' GPU time", "45~60%", "column 3");
  bench::print_expectation("top 5% users' CPU time", ">90%", "column 5");
  bench::print_expectation("users running CPU jobs", "~25% of users",
                           "column 6 vs column 2");
  return 0;
}
