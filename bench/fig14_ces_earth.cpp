// Figure 14: node states in Earth, September 1-21 — total nodes, running
// (busy) nodes, the forecaster's prediction, and the active (powered) nodes
// kept by the CES service.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/text_table.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;

  bench::print_header("Figure 14",
                      "Earth node states under CES, Sep 1-21",
                      "GBDT node forecaster trained on the Apr-Aug series");

  const auto& traces = bench::operated_helios_traces();
  const auto it = std::find_if(traces.begin(), traces.end(), [](const auto& t) {
    return t->cluster().name == "Earth";
  });
  const auto begin = helios::from_civil(2020, 9, 1);
  const auto end = helios::from_civil(2020, 9, 22);
  const auto study = bench::run_ces_study(**it, begin, end,
                                          /*include_vanilla=*/false);
  const auto& r = study.ces;

  // Print a 6-hour-resolution view of the four curves.
  TextTable table({"time", "total", "running", "predicted", "active (CES)"});
  const std::size_t stride =
      std::max<std::size_t>(1, static_cast<std::size_t>(6 * 3600 / r.running_nodes.step));
  for (std::size_t i = 0; i < r.running_nodes.size(); i += stride) {
    const std::size_t pi = i < r.predicted_nodes.size() ? i : r.predicted_nodes.size();
    table.add_row(
        {helios::format_time(r.running_nodes.time_at(i)),
         TextTable::cell(static_cast<std::int64_t>(r.total_nodes)),
         TextTable::cell(r.running_nodes.values[i], 1),
         pi < r.predicted_nodes.size()
             ? TextTable::cell(r.predicted_nodes.values[pi], 1)
             : "-",
         TextTable::cell(r.active_nodes.values[i], 1)});
  }
  std::printf("%s\n", table.str().c_str());

  bench::print_expectation("prediction tracks actual trend", "small error",
                           "SMAPE " + TextTable::cell(r.forecast_smape, 1) + "%");
  bench::print_expectation("active stays just above running",
                           "gap ~= sigma buffer", "compare last two columns");
  bench::print_expectation(
      "idle gap total-vs-running is reclaimed", "many nodes powered off",
      "avg DRS nodes " + TextTable::cell(r.avg_drs_nodes, 1));
  return 0;
}
