#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace helios {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  auto& pool = global_pool();
  const std::size_t max_chunks = pool.thread_count() * 4;
  const std::size_t chunk =
      std::max(grain, (n + max_chunks - 1) / std::max<std::size_t>(1, max_chunks));
  if (n <= chunk) {
    fn(begin, end);
    return;
  }
  std::vector<std::future<void>> futures;
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([lo, hi, &fn] { fn(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

}  // namespace helios
