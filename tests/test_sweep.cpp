// Scenario sweep engine (src/sweep/): determinism and sharing contracts.
//
//   * cell ≡ standalone — every cell's SimResult is bit-identical to a
//     standalone ClusterSimulator::run with the same spec/config/trace
//     (reconstructed through cell_config + make_fault_plan);
//   * engine parallel ≡ serial across a grid that exercises all policies,
//     backfill, and fault injection;
//   * repeat-run stability — rerunning a grid on the same store reproduces
//     every cell without regenerating any trace;
//   * TraceStore generates each distinct key exactly once and shares the
//     materialized trace by pointer;
//   * the Alibaba-PAI workload family hits its calibration marginals (short
//     recurring jobs, small GPU sizes, heavy CPU component) and is
//     seed-deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "stats/summary.h"
#include "sweep/scenario_engine.h"
#include "trace/synthetic.h"

namespace helios::sweep {
namespace {

constexpr double kScale = 0.02;

SweepGrid small_grid() {
  SweepGrid grid;
  grid.clusters = {"Venus", "PAI"};
  grid.policies = {sim::SchedulerPolicy::kFifo, sim::SchedulerPolicy::kSjf,
                   sim::SchedulerPolicy::kQssf};
  grid.backfills = {false, true};
  grid.scales = {kScale};
  grid.seeds = {42, 43};
  FaultSpec faults;
  faults.name = "mtbf30";
  faults.mtbf_days = 30.0;
  faults.flaky_fraction = 0.05;
  grid.faults = {FaultSpec{}, faults};
  return grid;
}

EngineConfig engine_config(common::ExecMode mode) {
  EngineConfig cfg;
  cfg.execution = mode;
  cfg.priority_provider = oracle_gpu_time_provider();
  return cfg;
}

void expect_cells_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_TRUE(results_identical(a.cells[i].result, b.cells[i].result))
        << "cell " << i << ": " << a.cells[i].spec.label();
  }
}

TEST(ScenarioEngine, GridExpansionIsDeterministic) {
  const SweepGrid grid = small_grid();
  const auto cells = grid.expand();
  EXPECT_EQ(cells.size(), grid.cell_count());
  // clusters×seeds×pol×bf×fault (×1 default power)
  EXPECT_EQ(cells.size(), 2u * 2u * 3u * 2u * 2u);
  const auto again = grid.expand();
  ASSERT_EQ(cells.size(), again.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].label(), again[i].label()) << i;
  }
  // Workload axis is outermost: the first block shares one trace key.
  const std::size_t per_workload = 3u * 2u * 2u;
  for (std::size_t i = 1; i < per_workload; ++i) {
    EXPECT_EQ(cells[i].workload.key, cells[0].workload.key);
  }
  EXPECT_NE(cells[per_workload].workload.key, cells[0].workload.key);
}

TEST(ScenarioEngine, CellsMatchStandaloneRuns) {
  const SweepGrid grid = small_grid();
  TraceStore store;
  const ScenarioEngine engine(store, engine_config(common::ExecMode::kParallel));
  const SweepResult sweep = engine.run(grid);
  ASSERT_EQ(sweep.cells.size(), grid.cell_count());

  for (const CellResult& cell : sweep.cells) {
    const auto t = store.get(cell.spec.workload.key);
    sim::SimConfig cfg = engine.cell_config(cell.spec, *t);
    sim::FaultPlan plan;
    if (cell.spec.fault.enabled()) {
      plan = ScenarioEngine::make_fault_plan(cell.spec.fault, *t);
      cfg.fault_plan = &plan;
    }
    const sim::SimResult standalone =
        sim::ClusterSimulator(t->cluster(), cfg).run(*t);
    EXPECT_TRUE(results_identical(cell.result, standalone))
        << cell.spec.label();
  }
}

TEST(ScenarioEngine, ParallelMatchesSerialAcrossGrid) {
  const SweepGrid grid = small_grid();
  TraceStore par_store;
  TraceStore ser_store;
  const SweepResult par =
      ScenarioEngine(par_store, engine_config(common::ExecMode::kParallel))
          .run(grid);
  const SweepResult ser =
      ScenarioEngine(ser_store, engine_config(common::ExecMode::kSerial))
          .run(grid);
  expect_cells_identical(par, ser);
}

TEST(ScenarioEngine, RepeatRunIsStableAndRegeneratesNothing) {
  const SweepGrid grid = small_grid();
  TraceStore store;
  const ScenarioEngine engine(store, engine_config(common::ExecMode::kParallel));
  const SweepResult first = engine.run(grid);
  const auto generations_after_first = store.generations();
  const SweepResult second = engine.run(grid);
  expect_cells_identical(first, second);
  EXPECT_EQ(store.generations(), generations_after_first);
  EXPECT_GT(store.hits(), 0u);
}

// ---- PowerSpec axis --------------------------------------------------------

SweepGrid power_grid() {
  SweepGrid grid;
  grid.clusters = {"Venus"};
  grid.policies = {sim::SchedulerPolicy::kFifo, sim::SchedulerPolicy::kPowerCap,
                   sim::SchedulerPolicy::kEnergyQssf};
  grid.backfills = {false, true};
  grid.scales = {kScale};
  grid.seeds = {42};
  PowerSpec capped;
  capped.name = "cap30";
  // Idle baseline of every Venus node plus ~30% of the GPUs at full draw.
  const auto spec = trace::helios_cluster("Venus");
  std::int64_t nodes = 0;
  std::int64_t gpus = 0;
  for (const auto& vc : spec.vcs) {
    nodes += vc.nodes;
    gpus += static_cast<std::int64_t>(vc.nodes) * vc.gpus_per_node;
  }
  capped.cap_watts = capped.profile.idle_node_watts * static_cast<double>(nodes) +
                     capped.profile.gpu_watts * static_cast<double>(gpus) * 0.3;
  grid.powers = {PowerSpec{}, capped};
  return grid;
}

TEST(ScenarioEngine, PowerAxisExpandsInnermostAndLabels) {
  const SweepGrid grid = power_grid();
  const auto cells = grid.expand();
  EXPECT_EQ(cells.size(), grid.cell_count());
  EXPECT_EQ(cells.size(), 1u * 1u * 3u * 2u * 1u * 2u);  // ...×fault×power
  // Power is the innermost axis: adjacent cells differ only in power.
  EXPECT_EQ(cells[0].power.name, "uncapped");
  EXPECT_EQ(cells[1].power.name, "cap30");
  EXPECT_EQ(cells[0].policy, cells[1].policy);
  EXPECT_EQ(cells[0].backfill, cells[1].backfill);
  // Labels carry the power name only when it departs from the default.
  EXPECT_EQ(cells[0].label().find("power="), std::string::npos);
  EXPECT_NE(cells[1].label().find("power=cap30"), std::string::npos);
}

TEST(ScenarioEngine, PowerGridCellsMatchStandaloneAndStayStable) {
  const SweepGrid grid = power_grid();
  TraceStore store;
  const ScenarioEngine engine(store, engine_config(common::ExecMode::kParallel));
  const SweepResult sweep = engine.run(grid);
  ASSERT_EQ(sweep.cells.size(), grid.cell_count());

  // Cell ≡ standalone, including the energy outputs (results_identical
  // compares energy_joules, max_power_watts, and both power series).
  for (const CellResult& cell : sweep.cells) {
    const auto t = store.get(cell.spec.workload.key);
    const sim::SimConfig cfg = engine.cell_config(cell.spec, *t);
    EXPECT_EQ(cfg.power_cap_watts, cell.spec.power.cap_watts);
    const sim::SimResult standalone =
        sim::ClusterSimulator(t->cluster(), cfg).run(*t);
    EXPECT_TRUE(results_identical(cell.result, standalone))
        << cell.spec.label();
    EXPECT_GT(cell.result.energy_joules, 0.0) << cell.spec.label();
  }

  // Parallel ≡ serial and repeat-run stability over the power grid.
  TraceStore ser_store;
  const SweepResult ser =
      ScenarioEngine(ser_store, engine_config(common::ExecMode::kSerial))
          .run(grid);
  expect_cells_identical(sweep, ser);
  const SweepResult again = engine.run(grid);
  expect_cells_identical(sweep, again);
}

TEST(ScenarioEngine, ComparisonReportSlicesPowerAndReportsEnergy) {
  const SweepGrid grid = power_grid();
  TraceStore store;
  const SweepResult sweep =
      ScenarioEngine(store, engine_config(common::ExecMode::kParallel))
          .run(grid);
  const std::string report = comparison_report(sweep);
  EXPECT_NE(report.find("Energy (kWh)"), std::string::npos);
  EXPECT_NE(report.find("power=cap30"), std::string::npos);
  EXPECT_NE(report.find("POWERCAP"), std::string::npos);
  EXPECT_NE(report.find("EQSSF"), std::string::npos);
}

TEST(ScenarioEngine, QssfWithoutProviderThrows) {
  SweepGrid grid;
  grid.clusters = {"Venus"};
  grid.policies = {sim::SchedulerPolicy::kQssf};
  grid.scales = {kScale};
  TraceStore store;
  const ScenarioEngine engine(store);  // no priority_provider
  EXPECT_THROW((void)engine.run(grid), std::invalid_argument);
}

TEST(TraceStore, GeneratesEachKeyExactlyOnce) {
  const SweepGrid grid = small_grid();
  const auto cells = grid.expand();
  std::set<TraceKey> unique;
  for (const auto& c : cells) unique.insert(c.workload.key);

  TraceStore store;
  const ScenarioEngine engine(store, engine_config(common::ExecMode::kParallel));
  (void)engine.run(cells);
  EXPECT_EQ(store.generations(), unique.size());
  EXPECT_EQ(store.size(), unique.size());

  // Shared by pointer: two gets hand out the same immutable trace.
  const auto a = store.get(cells[0].workload.key);
  const auto b = store.get(cells[0].workload.key);
  EXPECT_EQ(a.get(), b.get());
}

TEST(TraceStore, OperatedKeyDerivesFromSharedRaw) {
  TraceStore store;
  const TraceKey raw = TraceKey::workload("Venus", 42, kScale);
  const TraceKey operated =
      TraceKey::workload("Venus", 42, kScale, /*operated=*/true);
  const auto op = store.get(operated);
  // Deriving the operated trace materialized the raw one too — two
  // generations, both now cached.
  EXPECT_EQ(store.generations(), 2u);
  const auto r = store.get(raw);
  EXPECT_EQ(store.generations(), 2u);
  EXPECT_EQ(op->size(), r->size());
  // FIFO operation rewrites start times; submit order is untouched.
  EXPECT_FALSE(op->contents_equal(*r));
}

TEST(TraceStore, PutRegistersCustomTraces) {
  TraceStore store;
  TraceKey key;
  key.family = TraceFamily::kCustom;
  key.name = "mini";
  EXPECT_THROW((void)store.get(key), std::invalid_argument);

  trace::Trace mini(trace::helios_cluster("Venus"));
  const auto put = store.put(key, std::move(mini));
  EXPECT_EQ(store.get(key).get(), put.get());
  // First registration wins; a second put returns the existing trace.
  trace::Trace other(trace::helios_cluster("Earth"));
  EXPECT_EQ(store.put(key, std::move(other)).get(), put.get());
}

// ---- Alibaba-PAI workload family -------------------------------------------

struct Marginals {
  double gpu_job_fraction = 0.0;
  double single_gpu_share = 0.0;  ///< among GPU jobs
  double median_gpu_duration = 0.0;
  std::size_t jobs = 0;
};

Marginals marginals(const trace::Trace& t) {
  Marginals m;
  m.jobs = t.size();
  std::size_t gpu = 0;
  std::size_t single = 0;
  std::vector<double> durations;
  for (const auto& j : t.jobs()) {
    if (!j.is_gpu_job()) continue;
    ++gpu;
    if (j.num_gpus == 1) ++single;
    durations.push_back(static_cast<double>(j.duration));
  }
  m.gpu_job_fraction =
      m.jobs > 0 ? static_cast<double>(gpu) / static_cast<double>(m.jobs) : 0.0;
  m.single_gpu_share =
      gpu > 0 ? static_cast<double>(single) / static_cast<double>(gpu) : 0.0;
  m.median_gpu_duration = stats::median(durations);
  return m;
}

TEST(PaiWorkload, CalibrationMarginals) {
  const trace::Trace pai = trace::generate_pai(42, kScale);
  const trace::Trace venus = trace::SyntheticTraceGenerator(
                                 trace::GeneratorConfig::helios(
                                     trace::helios_cluster("Venus"), 42, kScale))
                                 .generate();
  ASSERT_GT(pai.size(), 1000u);

  const Marginals p = marginals(pai);
  const Marginals v = marginals(venus);

  // Heavier CPU component than Helios: a minority of PAI jobs use GPUs.
  EXPECT_LT(p.gpu_job_fraction, 0.55);
  EXPECT_GT(p.gpu_job_fraction, 0.25);
  EXPECT_LT(p.gpu_job_fraction, v.gpu_job_fraction);

  // Small request sizes: mostly 1-GPU jobs.
  EXPECT_GT(p.single_gpu_share, 0.55);

  // Short recurring jobs: median GPU-job duration well below Helios.
  EXPECT_LT(p.median_gpu_duration, v.median_gpu_duration);
}

TEST(PaiWorkload, SeedDeterminismAndSensitivity) {
  const trace::Trace a = trace::generate_pai(42, kScale);
  const trace::Trace b = trace::generate_pai(42, kScale);
  EXPECT_TRUE(a.contents_equal(b));
  const trace::Trace c = trace::generate_pai(43, kScale);
  EXPECT_FALSE(a.contents_equal(c));
}

TEST(PaiWorkload, ReachableThroughTraceKey) {
  TraceStore store;
  const auto via_store = store.get(TraceKey::workload("PAI", 42, kScale));
  const trace::Trace direct = trace::generate_pai(42, kScale);
  EXPECT_TRUE(via_store->contents_equal(direct));
}

}  // namespace
}  // namespace helios::sweep
