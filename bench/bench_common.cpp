#include "bench_common.h"

#include <cstdio>

#include "common/env.h"

namespace helios::bench {

double scale() {
  static const double s = env_double("HELIOS_SCALE", 0.25);
  return s;
}

std::uint64_t seed() {
  static const auto s = static_cast<std::uint64_t>(env_int("HELIOS_SEED", 42));
  return s;
}

sweep::TraceStore& trace_store() {
  static sweep::TraceStore store;
  return store;
}

namespace {

const char* const kHeliosNames[] = {"Venus", "Earth", "Saturn", "Uranus"};

std::vector<TracePtr> fetch_helios(bool operated) {
  std::vector<TracePtr> traces;
  traces.reserve(std::size(kHeliosNames));
  for (const char* name : kHeliosNames) {
    traces.push_back(trace_store().get(
        sweep::TraceKey::workload(name, seed(), scale(), operated)));
  }
  return traces;
}

}  // namespace

const std::vector<TracePtr>& helios_traces() {
  static const std::vector<TracePtr> traces = fetch_helios(/*operated=*/false);
  return traces;
}

const trace::Trace& philly_trace() {
  static const TracePtr t = trace_store().get(
      sweep::TraceKey::workload("Philly", seed(), scale()));
  return *t;
}

const std::vector<TracePtr>& operated_helios_traces() {
  static const std::vector<TracePtr> traces = fetch_helios(/*operated=*/true);
  return traces;
}

const trace::Trace& operated_philly_trace() {
  static const TracePtr t = trace_store().get(sweep::TraceKey::workload(
      "Philly", seed(), scale(), /*operated=*/true));
  return *t;
}

void print_header(const std::string& experiment, const std::string& title,
                  const std::string& notes) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), title.c_str());
  std::printf("synthetic Helios workload, scale=%.3g seed=%llu\n", scale(),
              static_cast<unsigned long long>(seed()));
  if (!notes.empty()) std::printf("%s\n", notes.c_str());
  std::printf("================================================================\n");
}

void print_expectation(const std::string& what, const std::string& paper,
                       const std::string& measured) {
  std::printf("  %-44s paper: %-18s measured: %s\n", what.c_str(), paper.c_str(),
              measured.c_str());
}

}  // namespace helios::bench
