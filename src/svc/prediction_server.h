// Resident streaming prediction service (the deployed shape of paper §4.2).
//
// The batch pipeline prices a finished trace after the fact; this subsystem
// is the same predictor run as a long-lived server. One ingest thread tails
// a growing trace CSV (svc::CsvTailer), folds each event into the online
// QSSF state exactly as core::OnlinePriorityEvaluator's serial loop would —
// drain the pending-finish core::ReplayQueue, price, log, queue the job's
// own finish — and on a cadence (a) checkpoints the whole server through
// serialize::save_file and (b) publishes an immutable Snapshot. Any number
// of query threads read the current snapshot through one atomic
// shared_ptr load — RCU-style, no lock, no wait against the ingest side.
//
// Determinism contract (gated by tests/test_svc_server.cpp and the
// examples/serve_replay driver): fed the same rows in the same order —
// regardless of how they are batched into polls — the server's priority log
// is bit-identical to the batch evaluator run over those rows, provided the
// server was seeded with the trace context the batch path evaluates against
// (Trace::between/filter copy interner tables wholesale, so appended rows
// intern to the same feature ids the batch eval trace carries). A server
// restored from a checkpoint resumes bit-identically: state, priority log,
// pending queue, and streamed rows all round-trip ("SVCK" frame,
// docs/FORMATS.md).
//
// Thread-safety: ingest_csv/checkpoint/publish/save/load are the ingest
// side — single-threaded, externally synchronized. snapshot() and
// Snapshot::query() are the query side — safe from any number of threads
// concurrently with ingest (snapshots are immutable; queries go through
// QssfService's frozen, never-mutating accessors).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "core/qssf_service.h"
#include "trace/trace.h"

namespace helios::svc {

struct ServerConfig {
  /// Checkpoint (and publish) once at least N GPU jobs have been ingested
  /// since the last checkpoint. Evaluated at ingest-batch ends, so a
  /// checkpoint is always consistent with bytes_ingested() — which advances
  /// a whole batch at a time — and a restore resumes exactly at a batch
  /// boundary. 0 disables automatic checkpoints (explicit checkpoint()
  /// still works).
  std::size_t checkpoint_every = 0;
  /// Checkpoint file prefix; file N is written as "<prefix>.<N>".
  std::string checkpoint_prefix = "svc_checkpoint";
  /// Additionally publish a fresh snapshot every N ingested GPU jobs.
  /// 0 = publish only at batch ends and checkpoints.
  std::size_t publish_every = 0;
  /// Ingest batches at least this large parse sharded on the global pool
  /// (trace::ParallelLoader's line-aligned chunking); smaller ones parse
  /// inline. Parsing is id-identical either way.
  std::size_t parallel_parse_bytes = 1 << 20;
};

/// One priced job, in ingest order — the server-side mirror of the batch
/// evaluator's predicted_gpu_time() sequence (same order, same values).
struct PricedJob {
  std::uint64_t job_id = 0;
  double priority = 0.0;

  [[nodiscard]] friend bool operator==(const PricedJob&,
                                       const PricedJob&) = default;
};

/// A query for a job that has no trace row yet, in raw strings.
struct QueryRequest {
  std::string user;
  std::string vc;
  std::string job_name;
  std::int32_t num_gpus = 1;
  std::int32_t num_cpus = 0;
  UnixTime submit_time = 0;
};

struct QueryResult {
  double priority = 0.0;           ///< QSSF rank: expected GPU time
  double expected_duration = 0.0;  ///< seconds
};

/// Immutable point-in-time view served to query threads: a copy of the
/// QssfService plus the interner tables needed to resolve request strings
/// to the feature ids the GBDT was trained on. All members are const after
/// construction; query() never mutates (frozen name bucketing), so one
/// Snapshot may serve any number of threads.
class Snapshot {
 public:
  Snapshot(const core::QssfService& service, const trace::Trace& stream,
           std::uint64_t rows_ingested, std::uint64_t gpu_jobs_ingested);

  /// Resolve request strings against the snapshot's interners (an unseen
  /// user/VC maps to interner size — the id a fresh intern would get).
  [[nodiscard]] core::JobQuery resolve(const QueryRequest& request) const;

  /// Price a prospective job. For a job whose attributes the service has
  /// seen, the priority is bit-identical to the ingest-path value.
  [[nodiscard]] QueryResult query(const QueryRequest& request) const;

  [[nodiscard]] const core::QssfService& service() const noexcept {
    return service_;
  }
  [[nodiscard]] std::uint64_t rows_ingested() const noexcept { return rows_; }
  [[nodiscard]] std::uint64_t gpu_jobs_ingested() const noexcept {
    return gpu_jobs_;
  }

 private:
  core::QssfService service_;
  StringInterner users_;
  StringInterner vcs_;
  std::uint64_t rows_ = 0;
  std::uint64_t gpu_jobs_ = 0;
};

class PredictionServer {
 public:
  /// A server over `service` (typically fit on history) seeded with the
  /// trace `context` the incoming stream continues. The context supplies
  /// the interner state — for bit-parity with a batch evaluation its tables
  /// must contain the ids the batch eval trace would use (any
  /// Trace::between/filter cut of the same parent qualifies, as those copy
  /// interners wholesale). Publishes an initial snapshot, so queries are
  /// valid before the first ingest.
  PredictionServer(core::QssfService service, trace::Trace context,
                   ServerConfig config = {});

  /// -- ingest side (single-threaded) ---------------------------------------
  /// Parse a block of complete CSV data rows (CsvTailer::poll output; no
  /// header) and apply each job in order: drain due finish events into the
  /// rolling estimator, price, log, queue. Returns the number of rows
  /// ingested. Publishes at the end of every non-empty batch; checkpoints /
  /// publishes mid-batch on the configured cadences.
  std::size_t ingest_csv(std::string_view csv_rows);

  /// Write checkpoint file "<prefix>.<seq>" (serialize::save_file) and
  /// publish. Returns the path written.
  std::string checkpoint();

  /// Publish the current state as a fresh immutable Snapshot.
  void publish();

  /// Persist / restore the full server ("SVCK" frame, docs/FORMATS.md):
  /// QssfService, streamed rows (as CSV, lossless), pending-finish queue,
  /// priority log, and counters. load() requires a freshly constructed
  /// server whose context matches the saved one (row count and interner
  /// sizes are validated; anything else throws serialize::Error kCorrupt)
  /// and leaves it bit-identical to the saved instance, snapshot included.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

  /// -- query side (any thread) ---------------------------------------------
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const {
    return snapshot_->load(std::memory_order_acquire);
  }

  /// -- introspection (ingest side) -----------------------------------------
  /// Rows / GPU jobs ingested since construction (context excluded).
  [[nodiscard]] std::uint64_t rows_ingested() const noexcept {
    return rows_ingested_;
  }
  [[nodiscard]] std::uint64_t gpu_jobs_ingested() const noexcept {
    return gpu_jobs_ingested_;
  }
  /// Cumulative bytes of ingested row data — feed to
  /// CsvTailer::resume_at_data_bytes after a restore.
  [[nodiscard]] std::uint64_t bytes_ingested() const noexcept {
    return bytes_ingested_;
  }
  [[nodiscard]] std::uint64_t checkpoints_written() const noexcept {
    return checkpoint_seq_;
  }
  /// Every priced GPU job in ingest order — the parity artifact the replay
  /// driver compares against the batch evaluator.
  [[nodiscard]] const std::vector<PricedJob>& priority_log() const noexcept {
    return log_;
  }
  [[nodiscard]] const trace::Trace& stream() const noexcept { return stream_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

 private:
  void append_rows(std::string_view csv_rows);

  ServerConfig config_;
  core::QssfService service_;
  trace::Trace stream_;  // context + every ingested row
  core::ReplayQueue queue_;
  std::vector<PricedJob> log_;
  // Context fingerprint captured at construction; a checkpoint stores it and
  // load() refuses a server whose context does not match.
  std::uint64_t context_rows_ = 0;
  std::uint64_t context_users_ = 0;
  std::uint64_t context_vcs_ = 0;
  std::uint64_t context_names_ = 0;
  std::uint64_t jobs_at_last_checkpoint_ = 0;
  std::uint64_t rows_ingested_ = 0;
  std::uint64_t gpu_jobs_ingested_ = 0;
  std::uint64_t bytes_ingested_ = 0;
  std::uint64_t checkpoint_seq_ = 0;
  // unique_ptr: std::atomic is neither movable nor copyable, and the server
  // itself should stay movable.
  std::unique_ptr<std::atomic<std::shared_ptr<const Snapshot>>> snapshot_;
};

}  // namespace helios::svc
