// Backfill-specific simulator behaviour (the knob that distinguishes
// "operating a trace like production Slurm" from the paper's backfill-free
// scheduler evaluation).
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace helios::sim {
namespace {

using trace::JobState;
using trace::Trace;

trace::ClusterSpec one_node() {
  trace::ClusterSpec s;
  s.name = "one";
  s.gpus_per_node = 8;
  s.vcs = {{"vc0", 1, 8}};
  s.nodes = 1;
  return s;
}

Trace blocked_head_trace() {
  // 4 GPUs busy until t=100; an 8-GPU head blocks; a 2-GPU job behind it.
  Trace t(one_node());
  t.add(0, 100, 4, 4, "u", "vc0", "running", JobState::kCompleted);
  t.add(1, 50, 8, 8, "u", "vc0", "head", JobState::kCompleted);
  t.add(2, 5, 2, 2, "u", "vc0", "small", JobState::kCompleted);
  t.sort_by_submit_time();
  return t;
}

SimResult run(const Trace& t, bool backfill) {
  SimConfig cfg;
  cfg.backfill = backfill;
  return ClusterSimulator(t.cluster(), cfg).run(t);
}

TEST(Backfill, FillsAroundBlockedHead) {
  const auto r = run(blocked_head_trace(), true);
  EXPECT_EQ(r.outcomes[2].start, 2);    // small job backfilled immediately
  EXPECT_EQ(r.outcomes[1].start, 100);  // head waits for the whole node
}

TEST(Backfill, OffPreservesStrictHeadOfLine) {
  const auto r = run(blocked_head_trace(), false);
  EXPECT_EQ(r.outcomes[2].start, 150);  // behind the head, like Algorithm 1
}

TEST(Backfill, DoesNotStarveHeadForever) {
  // Stream of small jobs keeps arriving; the 8-GPU head must still start
  // once the initial occupant finishes (greedy backfill only uses leftover
  // GPUs the head cannot use, but can extend the head's wait if a backfilled
  // job outlives the blocker — here they don't).
  Trace t(one_node());
  t.add(0, 100, 4, 4, "u", "vc0", "running", JobState::kCompleted);
  t.add(1, 1000, 8, 8, "u", "vc0", "head", JobState::kCompleted);
  for (int i = 0; i < 20; ++i) {
    t.add(2 + i, 20, 2, 2, "u", "vc0", "tiny", JobState::kCompleted);
  }
  t.sort_by_submit_time();
  const auto r = run(t, true);
  EXPECT_NE(r.outcomes[1].start, trace::kNeverStarted);
  EXPECT_GE(r.outcomes[1].start, 100);
}

TEST(Backfill, ImprovesUtilizationOnRealisticWorkload) {
  auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 23,
                                            0.05);
  const Trace t = trace::SyntheticTraceGenerator(cfg).generate();
  const auto with = run(t, true);
  const auto without = run(t, false);
  double busy_with = 0.0;
  double busy_without = 0.0;
  for (double v : with.busy_gpus.values) busy_with += v;
  for (double v : without.busy_gpus.values) busy_without += v;
  EXPECT_GT(busy_with, busy_without * 0.99);  // never worse
  EXPECT_LT(with.avg_queue_delay, without.avg_queue_delay);
}

TEST(Backfill, ConservationOfJobs) {
  auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 29,
                                            0.02);
  const Trace t = trace::SyntheticTraceGenerator(cfg).generate();
  const auto r = run(t, true);
  for (const auto& o : r.outcomes) {
    if (o.rejected) continue;
    EXPECT_NE(o.start, trace::kNeverStarted);
    EXPECT_GE(o.start, o.submit);
    EXPECT_EQ(o.end, o.start + t.jobs()[o.trace_index].duration);
  }
}

TEST(Backfill, RespectsGangSemantics) {
  // A backfilled job must still be gang-placed: 16 GPUs cannot run on a
  // 1-node VC even when idle.
  Trace t(one_node());
  t.add(0, 100, 4, 4, "u", "vc0", "a", JobState::kCompleted);
  t.add(1, 10, 16, 16, "u", "vc0", "too_big", JobState::kCompleted);
  t.sort_by_submit_time();
  const auto r = run(t, true);
  EXPECT_TRUE(r.outcomes[1].rejected);
}

}  // namespace
}  // namespace helios::sim
