#include "svc/prediction_server.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"
#include "serialize/binary.h"
#include "trace/parallel_loader.h"

namespace helios::svc {

namespace {

constexpr std::uint32_t kSvcTag = serialize::fourcc("SVCK");
constexpr std::uint32_t kSvcVersion = 1;

/// Calls fn(line) for every line of `data`, excluding the '\n' terminator
/// (a final line without one is still delivered).
template <typename Fn>
void for_each_line(std::string_view data, Fn&& fn) {
  std::size_t lo = 0;
  while (lo < data.size()) {
    const auto nl = data.find('\n', lo);
    const auto hi = nl == std::string_view::npos ? data.size() : nl;
    fn(data.substr(lo, hi - lo));
    lo = nl == std::string_view::npos ? data.size() : nl + 1;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

Snapshot::Snapshot(const core::QssfService& service, const trace::Trace& stream,
                   std::uint64_t rows_ingested, std::uint64_t gpu_jobs_ingested)
    : service_(service),
      users_(stream.users()),
      vcs_(stream.vcs()),
      rows_(rows_ingested),
      gpu_jobs_(gpu_jobs_ingested) {}

core::JobQuery Snapshot::resolve(const QueryRequest& request) const {
  core::JobQuery q;
  q.user = request.user;
  q.job_name = request.job_name;
  const std::uint32_t user_id = users_.find(request.user);
  q.user_id = user_id == StringInterner::kNotFound
                  ? static_cast<std::uint32_t>(users_.size())
                  : user_id;
  const std::uint32_t vc_id = vcs_.find(request.vc);
  q.vc_id = vc_id == StringInterner::kNotFound
                ? static_cast<std::uint32_t>(vcs_.size())
                : vc_id;
  q.num_gpus = request.num_gpus;
  q.num_cpus = request.num_cpus;
  q.submit_time = request.submit_time;
  return q;
}

QueryResult Snapshot::query(const QueryRequest& request) const {
  const core::JobQuery q = resolve(request);
  const double duration = service_.predict_duration(q);
  // Same expression shape as QssfService::priority(JobQuery) — bit-identical
  // to calling it, without pricing the duration twice.
  return {static_cast<double>(std::max(1, static_cast<int>(q.num_gpus))) *
              duration,
          duration};
}

// ---------------------------------------------------------------------------
// PredictionServer
// ---------------------------------------------------------------------------

PredictionServer::PredictionServer(core::QssfService service,
                                   trace::Trace context, ServerConfig config)
    : config_(std::move(config)),
      service_(std::move(service)),
      stream_(std::move(context)),
      context_rows_(stream_.size()),
      context_users_(stream_.users().size()),
      context_vcs_(stream_.vcs().size()),
      context_names_(stream_.names().size()),
      snapshot_(
          std::make_unique<std::atomic<std::shared_ptr<const Snapshot>>>()) {
  publish();
}

void PredictionServer::publish() {
  snapshot_->store(std::make_shared<const Snapshot>(
                       service_, stream_, rows_ingested_, gpu_jobs_ingested_),
                   std::memory_order_release);
}

void PredictionServer::append_rows(std::string_view csv_rows) {
  const std::size_t threads = global_pool().thread_count();
  const auto chunks =
      csv_rows.size() >= config_.parallel_parse_bytes && threads > 1
          ? trace::ParallelLoader::split_chunks(csv_rows, threads,
                                                config_.parallel_parse_bytes)
          : std::vector<std::pair<std::size_t, std::size_t>>{};
  if (chunks.size() <= 1) {
    for_each_line(csv_rows, [this](std::string_view line) {
      stream_.append_csv_row(line);
    });
    return;
  }
  // Shard-parse on the pool, merge in input order — id assignment identical
  // to the serial loop above (trace::ParallelLoader's invariant).
  std::vector<trace::Trace> shards(chunks.size());
  parallel_run_chunks(chunks, [&shards, csv_rows](std::size_t c, std::size_t lo,
                                                  std::size_t hi) {
    trace::Trace& shard = shards[c];
    for_each_line(csv_rows.substr(lo, hi - lo), [&shard](std::string_view line) {
      shard.append_csv_row(line);
    });
  });
  for (const auto& shard : shards) stream_.append(shard);
}

std::size_t PredictionServer::ingest_csv(std::string_view csv_rows) {
  if (csv_rows.empty()) return 0;
  const std::size_t first = stream_.size();
  append_rows(csv_rows);
  bytes_ingested_ += csv_rows.size();
  const std::size_t appended = stream_.size() - first;
  rows_ingested_ += appended;
  if (appended == 0) return 0;

  for (std::size_t i = first; i < stream_.size(); ++i) {
    const trace::JobRecord& job = stream_.jobs()[i];
    if (!job.is_gpu_job()) continue;
    // The exact serial-evaluator sequence: fold in every job that has
    // (approximately) finished by now, price, remember, queue our own
    // finish. Absolute stream indices shift the evaluator's eval-local ones
    // uniformly, so the queue's (finish, index) pop order is preserved.
    queue_.drain(job.submit_time, [this](std::uint32_t idx) {
      service_.observe(stream_, stream_.jobs()[idx]);
    });
    const double p = service_.priority(stream_, job);
    log_.push_back({job.job_id, p});
    queue_.push(job, static_cast<std::uint32_t>(i));
    ++gpu_jobs_ingested_;
    if (config_.publish_every != 0 &&
        gpu_jobs_ingested_ % config_.publish_every == 0) {
      publish();
    }
  }

  if (config_.checkpoint_every != 0 &&
      gpu_jobs_ingested_ - jobs_at_last_checkpoint_ >= config_.checkpoint_every) {
    checkpoint();
  } else {
    publish();
  }
  return appended;
}

std::string PredictionServer::checkpoint() {
  const std::string path =
      config_.checkpoint_prefix + "." + std::to_string(checkpoint_seq_);
  ++checkpoint_seq_;  // the file records the incremented value, so a restored
                      // server continues the sequence without overwriting
  jobs_at_last_checkpoint_ = gpu_jobs_ingested_;
  serialize::save_file(path, *this);
  publish();
  return path;
}

void PredictionServer::save(serialize::Writer& w) const {
  w.begin_section(kSvcTag);
  w.u32(kSvcVersion);
  w.u64(context_rows_);
  w.u64(context_users_);
  w.u64(context_vcs_);
  w.u64(context_names_);
  w.u64(rows_ingested_);
  w.u64(gpu_jobs_ingested_);
  w.u64(bytes_ingested_);
  w.u64(checkpoint_seq_);
  service_.save(w);
  // Streamed rows travel as CSV — every field is an integer or a verbatim
  // interned string, and re-appending them in order onto the (validated)
  // context reproduces bit-identical records and interner ids.
  std::ostringstream rows;
  stream_.save_csv_rows(rows, context_rows_,
                        static_cast<std::size_t>(rows_ingested_));
  w.str(std::move(rows).str());
  w.u64(queue_.entries().size());
  for (const core::ReplayQueue::Entry& e : queue_.entries()) {
    w.i64(e.finish);
    w.u32(e.index);
  }
  w.u64(log_.size());
  for (const PricedJob& p : log_) {
    w.u64(p.job_id);
    w.f64(p.priority);
  }
  w.end_section();
}

void PredictionServer::load(serialize::Reader& r) {
  serialize::Reader s = r.section(kSvcTag);
  const std::uint32_t version = s.u32();
  if (version != kSvcVersion) {
    throw serialize::Error(serialize::ErrorCode::kUnsupportedVersion,
                           "svc section version " + std::to_string(version));
  }
  if (rows_ingested_ != 0) {
    throw serialize::Error(serialize::ErrorCode::kCorrupt,
                           "svc load requires a freshly constructed server");
  }
  const std::uint64_t ctx_rows = s.u64();
  const std::uint64_t ctx_users = s.u64();
  const std::uint64_t ctx_vcs = s.u64();
  const std::uint64_t ctx_names = s.u64();
  if (ctx_rows != context_rows_ || ctx_users != context_users_ ||
      ctx_vcs != context_vcs_ || ctx_names != context_names_) {
    throw serialize::Error(
        serialize::ErrorCode::kCorrupt,
        "svc checkpoint was taken against a different trace context");
  }
  const std::uint64_t rows_ingested = s.u64();
  const std::uint64_t gpu_jobs = s.u64();
  const std::uint64_t bytes = s.u64();
  const std::uint64_t seq = s.u64();

  core::QssfService service;
  service.load(s);

  const std::string rows_csv = s.str();
  trace::Trace stream = stream_;  // context copy; mutate only on full success
  try {
    for_each_line(rows_csv, [&stream](std::string_view line) {
      stream.append_csv_row(line);
    });
  } catch (const std::runtime_error& e) {
    throw serialize::Error(serialize::ErrorCode::kCorrupt,
                           std::string("svc streamed rows: ") + e.what());
  }
  if (stream.size() - context_rows_ != rows_ingested) {
    throw serialize::Error(serialize::ErrorCode::kCorrupt,
                           "svc streamed row count mismatch");
  }

  const std::size_t n_queue = s.length(12);  // i64 + u32 per entry
  std::vector<core::ReplayQueue::Entry> entries(n_queue);
  for (core::ReplayQueue::Entry& e : entries) {
    e.finish = s.i64();
    e.index = s.u32();
    if (e.index < context_rows_ || e.index >= stream.size()) {
      throw serialize::Error(serialize::ErrorCode::kCorrupt,
                             "svc queue entry outside the streamed rows");
    }
  }

  const std::size_t n_log = s.length(16);  // u64 + f64 per entry
  if (n_log != gpu_jobs) {
    throw serialize::Error(serialize::ErrorCode::kCorrupt,
                           "svc priority log length mismatch");
  }
  std::vector<PricedJob> log(n_log);
  for (PricedJob& p : log) {
    p.job_id = s.u64();
    p.priority = s.f64();
  }
  s.close("svc");

  service_ = std::move(service);
  stream_ = std::move(stream);
  queue_.restore(std::move(entries));
  log_ = std::move(log);
  rows_ingested_ = rows_ingested;
  gpu_jobs_ingested_ = gpu_jobs;
  bytes_ingested_ = bytes;
  checkpoint_seq_ = seq;
  jobs_at_last_checkpoint_ = gpu_jobs;
  publish();
}

}  // namespace helios::svc
