#include "forecast/models.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/thread_pool.h"

#include "serialize/binary.h"

namespace helios::forecast {

// ---------------------------------------------------------------------------
// SeasonalNaive
// ---------------------------------------------------------------------------

void SeasonalNaiveForecaster::fit(const TimeSeries&) {}

std::vector<double> SeasonalNaiveForecaster::forecast(const TimeSeries& prefix,
                                                      int horizon) const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(std::max(0, horizon)));
  const auto& v = prefix.values;
  const auto n = static_cast<std::int64_t>(v.size());
  for (int h = 1; h <= horizon; ++h) {
    if (n == 0) {
      out.push_back(0.0);
      continue;
    }
    std::int64_t idx = n + h - 1;
    if (period_ > 0) {
      while (idx >= n) idx -= period_;
    }
    idx = std::clamp<std::int64_t>(idx, 0, n - 1);
    out.push_back(v[static_cast<std::size_t>(idx)]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Holt-Winters
// ---------------------------------------------------------------------------

HoltWintersForecaster::State HoltWintersForecaster::run(
    std::span<const double> v) const {
  State s;
  const auto m = static_cast<std::size_t>(std::max(1, period_));
  if (v.size() < 2 * m) {
    // Too short for seasonal initialisation: flat level model.
    double mean = 0.0;
    for (double x : v) mean += x;
    s.level = v.empty() ? 0.0 : mean / static_cast<double>(v.size());
    s.trend = 0.0;
    s.season.assign(m, 0.0);
    return s;
  }
  // Classical initialisation from the first two seasons.
  double mean1 = 0.0;
  double mean2 = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    mean1 += v[i];
    mean2 += v[m + i];
  }
  mean1 /= static_cast<double>(m);
  mean2 /= static_cast<double>(m);
  s.level = mean1;
  s.trend = (mean2 - mean1) / static_cast<double>(m);
  s.season.resize(m);
  for (std::size_t i = 0; i < m; ++i) s.season[i] = v[i] - mean1;

  for (std::size_t t = 0; t < v.size(); ++t) {
    const std::size_t si = t % m;
    const double prev_level = s.level;
    s.level = alpha_ * (v[t] - s.season[si]) + (1.0 - alpha_) * (s.level + s.trend);
    s.trend = beta_ * (s.level - prev_level) + (1.0 - beta_) * s.trend;
    s.season[si] = gamma_ * (v[t] - s.level) + (1.0 - gamma_) * s.season[si];
  }
  return s;
}

void HoltWintersForecaster::fit(const TimeSeries&) {
  // Smoothing constants are fixed; all state is rebuilt per forecast so the
  // model can be applied to any prefix.
}

std::vector<double> HoltWintersForecaster::forecast(const TimeSeries& prefix,
                                                    int horizon) const {
  const State s = run(prefix.values);
  const auto m = static_cast<std::size_t>(std::max(1, period_));
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(std::max(0, horizon)));
  const std::size_t n = prefix.values.size();
  for (int h = 1; h <= horizon; ++h) {
    const std::size_t si = (n + static_cast<std::size_t>(h) - 1) % m;
    out.push_back(s.level + static_cast<double>(h) * s.trend + s.season[si]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// AR(p)
// ---------------------------------------------------------------------------

void ARForecaster::fit(const TimeSeries& history) {
  std::vector<double> v = history.values;
  for (int k = 0; k < d_; ++k) v = diff(v);
  const auto p = static_cast<std::size_t>(std::max(1, p_));
  model_ = ml::RidgeRegression(lambda_);
  if (v.size() <= p) return;
  ml::Dataset data(p);
  data.reserve(v.size() - p);
  std::vector<double> row(p);
  for (std::size_t t = p; t < v.size(); ++t) {
    for (std::size_t j = 0; j < p; ++j) row[j] = v[t - 1 - j];
    data.add_row(row, v[t]);
  }
  model_.fit(data);
}

std::vector<double> ARForecaster::forecast(const TimeSeries& prefix,
                                           int horizon) const {
  const auto p = static_cast<std::size_t>(std::max(1, p_));
  std::vector<double> v = prefix.values;
  // Keep the last values needed to difference and recurse.
  std::vector<double> levels(v.end() - std::min<std::ptrdiff_t>(
                                           static_cast<std::ptrdiff_t>(v.size()),
                                           static_cast<std::ptrdiff_t>(p + 4)),
                             v.end());
  std::vector<double> work = v;
  for (int k = 0; k < d_; ++k) work = diff(work);

  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(std::max(0, horizon)));
  double last_level = v.empty() ? 0.0 : v.back();
  std::vector<double> row(p);
  for (int h = 0; h < horizon; ++h) {
    double next_diff = 0.0;
    if (model_.trained() && work.size() >= p) {
      for (std::size_t j = 0; j < p; ++j) row[j] = work[work.size() - 1 - j];
      next_diff = model_.predict(row);
    } else if (!work.empty()) {
      next_diff = work.back();
    }
    work.push_back(next_diff);
    const double next_level = d_ > 0 ? last_level + next_diff : next_diff;
    out.push_back(next_level);
    last_level = next_level;
  }
  (void)levels;
  return out;
}

// ---------------------------------------------------------------------------
// GBDT forecaster
// ---------------------------------------------------------------------------

int LagFeatureConfig::max_lag() const {
  int mx = 1;
  for (int l : lags) mx = std::max(mx, l);
  for (int w : rolling_windows) mx = std::max(mx, w);
  return mx;
}

std::size_t LagFeatureConfig::feature_count() const {
  return lags.size() + 2 * rolling_windows.size() + (calendar ? 4 : 0);
}

ml::GBDTConfig GBDTForecaster::default_gbdt_config() {
  ml::GBDTConfig cfg;
  cfg.n_trees = 120;
  cfg.max_depth = 5;
  cfg.learning_rate = 0.08;
  cfg.min_samples_leaf = 24;
  cfg.subsample = 0.8;
  cfg.max_bins = 64;
  return cfg;
}

void GBDTForecaster::build_features(std::span<const double> v, std::size_t idx,
                                    UnixTime t_pred,
                                    std::vector<double>& out) const {
  out.clear();
  // idx is the index the prediction is for; lags are relative to idx.
  for (int l : features_.lags) {
    const auto lag = static_cast<std::size_t>(l);
    out.push_back(lag <= idx && idx - lag < v.size() ? v[idx - lag] : v.empty() ? 0.0 : v[0]);
  }
  for (int w : features_.rolling_windows) {
    const auto win = static_cast<std::size_t>(w);
    const std::size_t hi = std::min(idx, v.size());  // values before idx
    const std::size_t lo = hi > win ? hi - win : 0;
    double sum = 0.0;
    double sum2 = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      sum += v[i];
      sum2 += v[i] * v[i];
    }
    const double n = hi > lo ? static_cast<double>(hi - lo) : 1.0;
    const double mean = sum / n;
    out.push_back(mean);
    out.push_back(std::sqrt(std::max(0.0, sum2 / n - mean * mean)));
  }
  if (features_.calendar) {
    const CivilTime c = to_civil(t_pred);
    out.push_back(static_cast<double>(c.hour));
    out.push_back(static_cast<double>(minute_of_day(t_pred) / 10));
    out.push_back(static_cast<double>(c.weekday));
    out.push_back(is_holiday(t_pred) ? 1.0 : 0.0);
  }
}

void GBDTForecaster::fit(const TimeSeries& history) {
  const auto start = static_cast<std::size_t>(features_.max_lag());
  ml::Dataset data(features_.feature_count());
  if (history.size() > start) data.reserve(history.size() - start);
  std::vector<double> row;
  for (std::size_t t = start; t < history.size(); ++t) {
    build_features(history.values, t, history.time_at(t), row);
    data.add_row(row, history.values[t]);
  }
  model_.fit(data);
}

std::vector<double> GBDTForecaster::forecast(const TimeSeries& prefix,
                                             int horizon) const {
  std::vector<double> v = prefix.values;
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(std::max(0, horizon)));
  std::vector<double> row;
  for (int h = 0; h < horizon; ++h) {
    const std::size_t idx = v.size();
    const UnixTime t_pred = prefix.begin + static_cast<UnixTime>(idx) * prefix.step;
    build_features(v, idx, t_pred, row);
    const double pred = model_.trained() ? model_.predict(row)
                        : v.empty()      ? 0.0
                                         : v.back();
    out.push_back(pred);
    v.push_back(pred);  // recursive: prediction feeds the next step's lags
  }
  return out;
}

// ---------------------------------------------------------------------------
// Persistence (docs/FORMATS.md)
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kForecasterTag = serialize::fourcc("FCST");
constexpr std::uint32_t kForecasterVersion = 1;
constexpr std::uint32_t kSeasonalNaiveTag = serialize::fourcc("SNAV");
constexpr std::uint32_t kHoltWintersTag = serialize::fourcc("HOLT");
constexpr std::uint32_t kArTag = serialize::fourcc("ARPD");
constexpr std::uint32_t kGbdtForecasterTag = serialize::fourcc("GBFC");

}  // namespace

std::uint32_t SeasonalNaiveForecaster::type_tag() const noexcept {
  return kSeasonalNaiveTag;
}

void SeasonalNaiveForecaster::save_state(serialize::Writer& w) const {
  w.i32(period_);
}

void SeasonalNaiveForecaster::load_state(serialize::Reader& r) {
  period_ = r.i32();
}

std::uint32_t HoltWintersForecaster::type_tag() const noexcept {
  return kHoltWintersTag;
}

void HoltWintersForecaster::save_state(serialize::Writer& w) const {
  w.i32(period_);
  w.f64(alpha_);
  w.f64(beta_);
  w.f64(gamma_);
}

void HoltWintersForecaster::load_state(serialize::Reader& r) {
  // Stage then commit, so a throw mid-read cannot leave a half-updated model.
  const int period = r.i32();
  const double alpha = r.f64();
  const double beta = r.f64();
  const double gamma = r.f64();
  period_ = period;
  alpha_ = alpha;
  beta_ = beta;
  gamma_ = gamma;
}

std::uint32_t ARForecaster::type_tag() const noexcept { return kArTag; }

void ARForecaster::save_state(serialize::Writer& w) const {
  w.i32(p_);
  w.i32(d_);
  w.f64(lambda_);
  model_.save(w);
}

void ARForecaster::load_state(serialize::Reader& r) {
  // Stage then commit, so a throw (e.g. a corrupt embedded RIDG section)
  // cannot leave new p/d/lambda paired with the old ridge weights.
  const int p = r.i32();
  const int d = r.i32();
  const double lambda = r.f64();
  ml::RidgeRegression model;
  model.load(r);
  p_ = p;
  d_ = d;
  lambda_ = lambda;
  model_ = std::move(model);
}

std::uint32_t GBDTForecaster::type_tag() const noexcept {
  return kGbdtForecasterTag;
}

void GBDTForecaster::save_state(serialize::Writer& w) const {
  w.vec_i32(features_.lags);
  w.vec_i32(features_.rolling_windows);
  w.u8(features_.calendar ? 1 : 0);
  model_.save(w);
}

void GBDTForecaster::load_state(serialize::Reader& r) {
  LagFeatureConfig features;
  features.lags = r.vec_i32();
  features.rolling_windows = r.vec_i32();
  features.calendar = r.u8() != 0;
  // build_features indexes lags/windows relative to the current position;
  // non-positive values would walk before the series.
  for (const int l : features.lags) {
    if (l <= 0) {
      throw serialize::Error(serialize::ErrorCode::kCorrupt,
                             "non-positive lag " + std::to_string(l));
    }
  }
  for (const int win : features.rolling_windows) {
    if (win <= 0) {
      throw serialize::Error(serialize::ErrorCode::kCorrupt,
                             "non-positive rolling window " +
                                 std::to_string(win));
    }
  }
  ml::GBDTRegressor model;
  model.load(r);
  // build_features emits feature_count() values per row; a trained model
  // expecting a different width would index past the row. (GBDT load
  // guarantees binner width == the model's feature count when trained.)
  if (model.trained() &&
      model.binner().features() != features.feature_count()) {
    throw serialize::Error(
        serialize::ErrorCode::kCorrupt,
        "forecaster model expects " +
            std::to_string(model.binner().features()) +
            " features, lag config builds " +
            std::to_string(features.feature_count()));
  }
  features_ = std::move(features);
  model_ = std::move(model);
}

void save_forecaster(serialize::Writer& w, const Forecaster& model) {
  w.begin_section(kForecasterTag);
  w.u32(kForecasterVersion);
  w.u32(model.type_tag());
  model.save_state(w);
  w.end_section();
}

std::unique_ptr<Forecaster> load_forecaster(serialize::Reader& r) {
  serialize::Reader s = r.section(kForecasterTag);
  const std::uint32_t version = s.u32();
  if (version != kForecasterVersion) {
    throw serialize::Error(
        serialize::ErrorCode::kUnsupportedVersion,
        "forecaster section version " + std::to_string(version));
  }
  const std::uint32_t tag = s.u32();
  std::unique_ptr<Forecaster> model;
  // Placeholder constructor arguments; load_state() restores the real ones.
  if (tag == kSeasonalNaiveTag) {
    model = std::make_unique<SeasonalNaiveForecaster>(1);
  } else if (tag == kHoltWintersTag) {
    model = std::make_unique<HoltWintersForecaster>(1);
  } else if (tag == kArTag) {
    model = std::make_unique<ARForecaster>(1);
  } else if (tag == kGbdtForecasterTag) {
    model = std::make_unique<GBDTForecaster>();
  } else {
    throw serialize::Error(serialize::ErrorCode::kCorrupt,
                           "unknown forecaster type tag " +
                               std::to_string(tag));
  }
  model->load_state(s);
  s.close("forecaster");
  return model;
}

// ---------------------------------------------------------------------------
// Backtest
// ---------------------------------------------------------------------------

BacktestResult backtest(const Forecaster& model, const TimeSeries& series,
                        std::size_t min_train, int horizon, std::size_t stride,
                        common::ExecMode execution) {
  BacktestResult r;
  if (horizon <= 0 || stride == 0) return r;
  const auto h = static_cast<std::size_t>(horizon);
  if (min_train + h > series.size()) return r;
  // Preassign one slot per origin: each evaluation writes disjoint indices,
  // so the parallel pass is bit-identical to the serial loop regardless of
  // scheduling order.
  const std::size_t n = (series.size() - h - min_train) / stride + 1;
  r.actual.resize(n);
  r.predicted.resize(n);
  auto eval = [&](std::size_t i) {
    const std::size_t origin = min_train + i * stride;
    const TimeSeries prefix = series.slice(0, origin);
    const auto pred = model.forecast(prefix, horizon);
    r.actual[i] = series.values[origin + h - 1];
    r.predicted[i] = pred.back();
  };
  if (execution == common::ExecMode::kSerial) {
    for (std::size_t i = 0; i < n; ++i) eval(i);
  } else {
    parallel_for(0, n, eval);
  }
  return r;
}

void fit_forecasters(std::span<Forecaster* const> models,
                     const TimeSeries& history) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(models.size());
  for (Forecaster* m : models) {
    if (m != nullptr) tasks.push_back([m, &history] { m->fit(history); });
  }
  parallel_run_tasks(std::move(tasks));
}

}  // namespace helios::forecast
