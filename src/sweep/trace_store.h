// Keyed, generate-once cache of immutable traces.
//
// Every scenario-sweep cell that replays the same workload shares one
// materialized trace: the store maps a declarative TraceKey (workload family,
// cluster name, seed, scale, operated-or-raw) to a shared_ptr<const Trace>,
// generating the trace on first request and handing the same immutable object
// to every later one. "Operated" keys derive from their raw sibling — the raw
// trace is fetched (materializing it if needed), copied once, and run through
// sim::operate_fifo so the copy carries the FIFO start times a production
// Slurm would have assigned.
//
// Thread-safety: get()/put() may be called concurrently from pool workers
// (the scenario engine materializes unique keys as level-0 tasks of its task
// graph). The builder of a key publishes under a mutex; concurrent requests
// for a key under construction wait on a shared future, so each key is
// materialized exactly once per process no matter how many cells need it —
// generations() counts materializations and is the hook sweep tests use to
// assert the generate-once contract.
#pragma once

#include <compare>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "trace/trace.h"

namespace helios::sweep {

/// Workload families the store can generate on demand. kCustom keys cannot be
/// generated — they must be preloaded with put() (e.g. an evaluation slice of
/// a larger trace).
enum class TraceFamily { kHelios, kPhilly, kPai, kCustom };

[[nodiscard]] std::string_view to_string(TraceFamily f) noexcept;

struct TraceKey {
  TraceFamily family = TraceFamily::kCustom;
  /// Helios cluster name ("Venus", ...) or a caller-chosen label for kCustom;
  /// ignored for kPhilly/kPai (kept for display).
  std::string name;
  std::uint64_t seed = 42;
  double scale = 1.0;
  /// FIFO-operated variant (start times written back by the simulator).
  bool operated = false;

  [[nodiscard]] friend auto operator<=>(const TraceKey&, const TraceKey&) = default;

  /// Stable display form, e.g. "helios:Venus seed=42 scale=0.05 operated".
  [[nodiscard]] std::string str() const;

  /// Key for a generatable workload by display name: the four Helios cluster
  /// names, "Philly", or "PAI". Throws std::invalid_argument otherwise.
  [[nodiscard]] static TraceKey workload(const std::string& cluster_name,
                                         std::uint64_t seed, double scale,
                                         bool operated = false);
};

class TraceStore {
 public:
  using TracePtr = std::shared_ptr<const trace::Trace>;

  TraceStore() = default;
  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  /// The trace for `key`, materializing it on first request. Blocks while
  /// another thread builds the same key. Throws std::invalid_argument for a
  /// kCustom key that was never put().
  [[nodiscard]] TracePtr get(const TraceKey& key);

  /// Preload a trace under `key` (typically TraceFamily::kCustom). If the key
  /// is already present the existing trace wins and is returned — the store
  /// never replaces a published trace.
  TracePtr put(const TraceKey& key, trace::Trace t);

  /// Number of traces materialized by this store (generated, derived, or
  /// preloaded). Each key counts once, ever: a grid of N cells over K unique
  /// workloads advances this by exactly K.
  [[nodiscard]] std::int64_t generations() const;

  /// Number of get() calls answered from an already-published entry.
  [[nodiscard]] std::int64_t hits() const;

  /// Distinct keys currently held.
  [[nodiscard]] std::size_t size() const;

 private:
  TracePtr materialize(const TraceKey& key);

  mutable std::mutex mutex_;
  std::map<TraceKey, std::shared_future<TracePtr>> entries_;
  std::int64_t generations_ = 0;
  std::int64_t hits_ = 0;
};

}  // namespace helios::sweep
