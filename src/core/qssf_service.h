// Quasi-Shortest-Service-First scheduling service (paper §4.2, Algorithm 1).
//
// Assigns every incoming job a priority P = N * (λ * P_R + (1-λ) * P_M):
//   * P_R — rolling estimate from the user's history:
//       - unknown user           -> mean duration of all jobs with the same
//                                   GPU demand,
//       - user known, new name   -> mean duration of this user's jobs with
//                                   the same GPU demand,
//       - similar name found     -> exponentially-weighted mean of the
//                                   durations of name-matched jobs
//                                   (Levenshtein similarity),
//   * P_M — GBDT estimate from encoded job attributes (user, VC, bucketized
//     name, GPU/CPU demand, submission-time calendar features),
//   * N   — requested GPU count, turning the duration estimate into expected
//     GPU time (the paper ranks by GPU time, not duration, so that large
//     short jobs don't starve behind small ones).
// The scheduler then runs jobs in ascending priority (sim::SchedulerPolicy::
// kQssf). Lower P = expected-shorter service = runs first.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/framework.h"
#include "ml/gbdt.h"
#include "ml/levenshtein.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace helios::core {

struct QssfConfig {
  /// Merge coefficient λ between the rolling and the GBDT estimate.
  double lambda = 0.45;
  /// Normalised Levenshtein distance below which two job names "match".
  /// 0.20 keeps "_v2"-style variants together while separating different
  /// templates of the same user ("train_bert" vs "eval_bert").
  double name_match_threshold = 0.20;
  /// Exponential decay applied to older name-matched durations.
  double rolling_decay = 0.75;
  /// Per-user cap on remembered name entries (oldest evicted).
  std::size_t max_names_per_user = 64;
  /// GBDT hyper-parameters; max_training_rows caps fit cost on huge traces.
  ml::GBDTConfig gbdt = default_gbdt_config();
  /// Limited-information mode (paper §6.2 future work: "some attributes in
  /// our services may not be available in other clusters"): when false, job
  /// names are ignored — the rolling estimator skips name matching and the
  /// GBDT drops the name-bucket feature.
  bool use_names = true;

  [[nodiscard]] static ml::GBDTConfig default_gbdt_config();
};

class QssfService final : public Service {
 public:
  explicit QssfService(QssfConfig config = {});

  [[nodiscard]] std::string name() const override { return "qssf"; }

  /// Train the GBDT and seed the rolling estimator from a historical trace
  /// (the paper trains on April-August and evaluates on September).
  void fit(const trace::Trace& history);

  /// Model Update Engine hook: absorb finished jobs into the rolling
  /// estimator and refresh the GBDT.
  void update(const trace::Trace& new_data) override;

  /// Absorb a single finished job into the rolling estimator (no GBDT refit).
  void observe(const trace::Trace& t, const trace::JobRecord& job);

  /// Expected duration (seconds) of an incoming job.
  [[nodiscard]] double predict_duration(const trace::Trace& t,
                                        const trace::JobRecord& job) const;

  /// Algorithm 1's Priority(): expected GPU time, lower first.
  [[nodiscard]] double priority(const trace::Trace& t,
                                const trace::JobRecord& job) const;

  /// Rolling estimate alone / GBDT estimate alone (for the λ ablation).
  [[nodiscard]] double rolling_estimate(const trace::Trace& t,
                                        const trace::JobRecord& job) const;
  [[nodiscard]] double ml_estimate(const trace::Trace& t,
                                   const trace::JobRecord& job) const;

  [[nodiscard]] const QssfConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool trained() const noexcept { return model_.trained(); }

 private:
  struct NameEntry {
    std::string name;
    double ewma_duration = 0.0;
    double weight = 0.0;
    std::uint64_t last_seen = 0;  // insertion counter, for eviction
  };
  struct UserHistory {
    std::unordered_map<int, std::pair<double, std::int64_t>> by_gpus;  // sum, n
    double duration_sum = 0.0;
    std::int64_t jobs = 0;
    std::vector<NameEntry> names;
  };

  static constexpr std::size_t kFeatureCount = 9;
  void encode(const trace::Trace& t, const trace::JobRecord& job,
              std::vector<double>& out) const;
  [[nodiscard]] const NameEntry* find_name(const UserHistory& u,
                                           const std::string& name) const;
  NameEntry* find_name_mutable(UserHistory& u, const std::string& name);

  QssfConfig config_;
  ml::GBDTRegressor model_;
  mutable ml::NameBucketizer name_buckets_;  // grows lazily at predict time
  std::unordered_map<std::string, UserHistory> users_;
  std::unordered_map<int, std::pair<double, std::int64_t>> global_by_gpus_;
  double global_duration_sum_ = 0.0;
  std::int64_t global_jobs_ = 0;
  std::uint64_t observe_counter_ = 0;
};

/// Evaluates QSSF priorities for a stream of jobs in submission order while
/// honouring causality: a job is folded into the rolling estimator only once
/// its (approximate) finish time submit+duration has passed. This mirrors
/// the deployed Model Update Engine, which fine-tunes from jobs as they
/// terminate. Returns a PriorityFn suitable for sim::SimConfig after
/// precomputing priorities for every GPU job of `eval`.
class OnlinePriorityEvaluator {
 public:
  OnlinePriorityEvaluator(QssfService& service, const trace::Trace& eval);

  /// Priority for a trace job (precomputed; keyed by job_id).
  [[nodiscard]] double priority_of(const trace::JobRecord& job) const;

  /// Adapter for the simulator.
  [[nodiscard]] sim::PriorityFn as_priority_fn() const;

  /// Prediction quality over the evaluated jobs: predicted vs actual GPU time.
  [[nodiscard]] const std::vector<double>& predicted_gpu_time() const noexcept {
    return predicted_;
  }
  [[nodiscard]] const std::vector<double>& actual_gpu_time() const noexcept {
    return actual_;
  }

 private:
  std::unordered_map<std::uint64_t, double> priorities_;
  std::vector<double> predicted_;
  std::vector<double> actual_;
};

}  // namespace helios::core
