#include "analysis/job_stats.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "stats/summary.h"

namespace helios::analysis {

using trace::JobRecord;
using trace::JobState;
using trace::Trace;

TraceSummary summarize(const Trace& t) {
  TraceSummary s;
  s.total_jobs = static_cast<std::int64_t>(t.size());
  s.users = static_cast<std::int64_t>(t.users().size());
  s.vcs = static_cast<std::int64_t>(t.vcs().size());
  stats::RunningStats gpu_dur;
  stats::RunningStats cpu_dur;
  stats::RunningStats gpus;
  std::vector<double> gpu_durs;
  UnixTime lo = 0;
  UnixTime hi = 0;
  bool first = true;
  for (const auto& j : t.jobs()) {
    if (first) {
      lo = hi = j.submit_time;
      first = false;
    } else {
      lo = std::min(lo, j.submit_time);
      hi = std::max(hi, j.submit_time);
    }
    s.max_duration = std::max(s.max_duration, j.duration);
    if (j.is_gpu_job()) {
      ++s.gpu_jobs;
      gpu_dur.add(j.duration);
      gpu_durs.push_back(j.duration);
      gpus.add(j.num_gpus);
      s.max_gpus = std::max(s.max_gpus, j.num_gpus);
    } else {
      ++s.cpu_jobs;
      cpu_dur.add(j.duration);
    }
  }
  s.avg_gpus_per_gpu_job = gpus.mean();
  s.avg_gpu_job_duration = gpu_dur.mean();
  s.median_gpu_job_duration = stats::median(gpu_durs);
  s.avg_cpu_job_duration = cpu_dur.mean();
  s.duration_days =
      first ? 0.0 : static_cast<double>(hi - lo) / static_cast<double>(kSecondsPerDay);
  return s;
}

stats::Ecdf duration_cdf(const Trace& t, bool gpu_jobs) {
  std::vector<double> durations;
  for (const auto& j : t.jobs()) {
    if (j.is_gpu_job() == gpu_jobs) {
      durations.push_back(static_cast<double>(j.duration));
    }
  }
  return stats::Ecdf(std::move(durations));
}

std::array<double, 3> gpu_time_by_state(const Trace& t) {
  std::array<double, 3> time{};
  for (const auto& j : t.jobs()) {
    if (j.is_gpu_job()) time[static_cast<std::size_t>(j.state)] += j.gpu_time();
  }
  const double total = time[0] + time[1] + time[2];
  if (total > 0.0) {
    for (auto& v : time) v /= total;
  }
  return time;
}

std::array<double, 3> job_fraction_by_state(const Trace& t, bool gpu_jobs) {
  std::array<double, 3> counts{};
  for (const auto& j : t.jobs()) {
    if (j.is_gpu_job() == gpu_jobs) ++counts[static_cast<std::size_t>(j.state)];
  }
  const double total = counts[0] + counts[1] + counts[2];
  if (total > 0.0) {
    for (auto& v : counts) v /= total;
  }
  return counts;
}

std::vector<SizeBucket> job_size_distribution(const Trace& t) {
  std::map<std::int32_t, std::pair<double, double>> buckets;  // gpus -> jobs, time
  double total_jobs = 0.0;
  double total_time = 0.0;
  for (const auto& j : t.jobs()) {
    if (!j.is_gpu_job()) continue;
    auto& [count, time] = buckets[j.num_gpus];
    count += 1.0;
    time += j.gpu_time();
    total_jobs += 1.0;
    total_time += j.gpu_time();
  }
  std::vector<SizeBucket> out;
  double job_cdf = 0.0;
  double time_cdf = 0.0;
  for (const auto& [gpus, ct] : buckets) {
    SizeBucket b;
    b.gpus = gpus;
    b.job_fraction = total_jobs > 0.0 ? ct.first / total_jobs : 0.0;
    b.gpu_time_fraction = total_time > 0.0 ? ct.second / total_time : 0.0;
    job_cdf += b.job_fraction;
    time_cdf += b.gpu_time_fraction;
    b.job_cdf = job_cdf;
    b.gpu_time_cdf = time_cdf;
    out.push_back(b);
  }
  return out;
}

std::vector<StatusBySize> status_by_gpu_count(const Trace& t) {
  std::map<std::int32_t, std::array<std::int64_t, 3>> buckets;
  for (const auto& j : t.jobs()) {
    if (!j.is_gpu_job()) continue;
    // Only power-of-two demands, as in Figure 7b.
    if ((j.num_gpus & (j.num_gpus - 1)) != 0) continue;
    ++buckets[j.num_gpus][static_cast<std::size_t>(j.state)];
  }
  std::vector<StatusBySize> out;
  for (const auto& [gpus, counts] : buckets) {
    StatusBySize s;
    s.gpus = gpus;
    s.jobs = counts[0] + counts[1] + counts[2];
    if (s.jobs > 0) {
      s.completed = static_cast<double>(counts[0]) / static_cast<double>(s.jobs);
      s.canceled = static_cast<double>(counts[1]) / static_cast<double>(s.jobs);
      s.failed = static_cast<double>(counts[2]) / static_cast<double>(s.jobs);
    }
    out.push_back(s);
  }
  return out;
}

}  // namespace helios::analysis
