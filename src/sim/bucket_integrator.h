// Bucketed time integral of a piecewise-constant function.
//
// Used for the simulator's busy-nodes / busy-GPUs output series and the CES
// service's running/active-nodes series: callers report intervals of constant
// value via add(), and mean_series() reads the result back as per-bucket
// means.
//
// add() is O(1) regardless of interval length: each interval contributes a
// +value/-value pair to a difference array (slope_, covering whole buckets)
// plus partial-bucket corrections at the two endpoints (offset_); one
// prefix-sum pass in mean_series() reconstructs every bucket integral. The
// previous implementation walked every covered bucket, which cost
// O(duration/step) per call — thousands of iterations for a week-long
// interval at the default 600 s step.
//
// Exactness: when the reported values are integers (node and GPU counts are)
// every term is an integer-valued product of a count and a duration, so sums
// are exact in double as long as bucket integrals stay below 2^53 — and
// therefore independent of add() order. That is what lets the sharded
// simulator replay per-VC BusySegment logs into one shared integrator (in
// any order) and still reproduce a serial accumulation bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "forecast/series.h"

namespace helios::sim {

class BucketIntegrator {
 public:
  /// Buckets of `step` seconds covering [begin, end); at least one bucket.
  BucketIntegrator(UnixTime begin, UnixTime end, std::int64_t step);

  /// Accumulate `value` over [t0, t1) (clamped to the bucket window).
  /// Inline: the simulator's segment-merge loop issues paired calls with
  /// identical intervals, and inlining lets the clamp arithmetic be shared.
  void add(UnixTime t0, UnixTime t1, double value) {
    if (value == 0.0 || t1 <= t0) return;
    const UnixTime window_end =
        begin_ + static_cast<UnixTime>(offset_.size()) * step_;
    t0 = t0 < begin_ ? begin_ : t0;
    t1 = t1 > window_end ? window_end : t1;
    if (t1 <= t0) return;
    const auto b0 = static_cast<std::size_t>((t0 - begin_) / step_);
    const auto b1 = static_cast<std::size_t>((t1 - 1 - begin_) / step_);
    const UnixTime hi0 = begin_ + static_cast<UnixTime>(b0 + 1) * step_;
    const UnixTime hi1 = begin_ + static_cast<UnixTime>(b1 + 1) * step_;
    // Open the interval: bucket b0 gets the partial tail [t0, hi0); every
    // bucket after b0 gets value*step via the slope prefix. Close it: bucket
    // b1 gives back the unused tail [t1, hi1); buckets after b1 cancel.
    offset_[b0] += value * static_cast<double>(hi0 - t0);
    slope_[b0 + 1] += value;
    offset_[b1] -= value * static_cast<double>(hi1 - t1);
    slope_[b1 + 1] -= value;
  }

  /// Per-bucket mean values.
  [[nodiscard]] forecast::TimeSeries mean_series() const;

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return offset_.size();
  }
  [[nodiscard]] UnixTime begin() const noexcept { return begin_; }
  [[nodiscard]] std::int64_t step() const noexcept { return step_; }

 private:
  UnixTime begin_;
  std::int64_t step_;
  /// slope_[b] holds the net value entering at bucket b; the running prefix
  /// sum times step is the whole-bucket contribution. Size bucket_count()+1
  /// so interval ends landing in the last bucket have somewhere to subtract.
  std::vector<double> slope_;
  /// Partial-bucket corrections for interval endpoints. Size bucket_count().
  std::vector<double> offset_;
};

}  // namespace helios::sim
