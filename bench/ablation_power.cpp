// Energy-aware scheduling: the energy-vs-JCT tradeoff under cluster power
// caps. A power grid (policy x cap level) runs Venus through the scenario
// engine twice (parallel vs serial — the parity gate now covers the energy
// counters and power series), then reports modeled energy, peak power, and
// JCT side by side. The paper characterizes Helios workloads without an
// energy model; this ablation quantifies what budget-constrained admission
// (POWERCAP) and energy-weighted QSSF (EQSSF) trade away in JCT for the
// in-window joules they save.
//
// Gates (ISSUE 10 acceptance): capped POWERCAP admission must strictly
// reduce modeled energy vs uncapped FIFO, and the parallel power-grid sweep
// must be bit-identical to the serial loop. When HELIOS_POWER_OUT is set the
// tradeoff table is written there as JSON (ci.sh bench points it at
// build/BENCH_power.json).
//
// Knobs: HELIOS_POWER_SCALE (default HELIOS_SCALE, default 0.25),
// HELIOS_POWER_OUT (JSON path).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/env.h"
#include "common/text_table.h"
#include "sweep/scenario_engine.h"
#include "trace/synthetic.h"

using namespace helios;

namespace {

int fail(const char* what) {
  std::fprintf(stderr, "POWER FAIL: %s\n", what);
  return EXIT_FAILURE;
}

}  // namespace

int main() {
  const double scale = env_double("HELIOS_POWER_SCALE", bench::scale());
  const std::string out_path = env_string("HELIOS_POWER_OUT", "");

  // Cap levels are anchored to the hardware, not to a measured run: the
  // cluster's idle baseline plus a fraction of every GPU at full draw. 30%
  // bites hard at Venus utilization, 60% is a mild trim. The trace is
  // materialized up front because the cells replay the *scaled* cluster —
  // caps derived from the full-size spec would never bind at bench scale.
  sweep::TraceStore store;
  const auto venus_trace =
      store.get(sweep::TraceKey::workload("Venus", bench::seed(), scale));
  const trace::ClusterSpec& cluster = venus_trace->cluster();
  std::int64_t nodes = 0;
  std::int64_t gpus = 0;
  for (const auto& vc : cluster.vcs) {
    nodes += vc.nodes;
    gpus += static_cast<std::int64_t>(vc.nodes) * vc.gpus_per_node;
  }
  const core::PowerProfile profile;
  const double idle_w = profile.idle_node_watts * static_cast<double>(nodes);
  const double full_gpu_w = profile.gpu_watts * static_cast<double>(gpus);
  auto cap_spec = [&](const std::string& name, double frac) {
    sweep::PowerSpec p;
    p.name = name;
    p.cap_watts = idle_w + full_gpu_w * frac;
    return p;
  };

  sweep::SweepGrid grid;
  grid.clusters = {"Venus"};
  grid.policies = {sim::SchedulerPolicy::kFifo, sim::SchedulerPolicy::kPowerCap,
                   sim::SchedulerPolicy::kEnergyQssf};
  grid.backfills = {true};
  grid.scales = {scale};
  grid.seeds = {bench::seed()};
  grid.powers = {sweep::PowerSpec{}, cap_spec("cap60", 0.6),
                 cap_spec("cap30", 0.3)};
  const auto cells = grid.expand();

  bench::print_header(
      "Ablation: energy-aware scheduling", "energy vs JCT under power caps",
      std::to_string(grid.policies.size()) + " policies x " +
          std::to_string(grid.powers.size()) + " cap levels = " +
          std::to_string(cells.size()) + " cells, Venus, scale=" +
          std::to_string(scale));

  sweep::EngineConfig cfg;
  cfg.priority_provider = sweep::oracle_gpu_time_provider();

  cfg.execution = common::ExecMode::kParallel;
  const sweep::SweepResult par = sweep::ScenarioEngine(store, cfg).run(cells);

  sweep::TraceStore ser_store;
  cfg.execution = common::ExecMode::kSerial;
  const sweep::SweepResult ser =
      sweep::ScenarioEngine(ser_store, cfg).run(cells);

  // Gate: the parity contract holds over the power grid — results_identical
  // compares the energy counters and both power series bit-for-bit.
  if (par.cells.size() != cells.size() || ser.cells.size() != cells.size())
    return fail("cell count mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!sweep::results_identical(par.cells[i].result, ser.cells[i].result)) {
      std::fprintf(stderr, "  cell %zu: %s\n", i,
                   par.cells[i].spec.label().c_str());
      return fail("parallel != serial for a power-grid cell");
    }
  }
  std::printf("parity OK: %zu power cells bit-identical parallel vs serial\n\n",
              cells.size());

  // Tradeoff table, one row per (policy, cap) cell.
  TextTable table({"policy", "cap", "cap (kW)", "energy (kWh)", "peak (kW)",
                   "avg JCT (h)", "avg queue delay (h)", "unfinished"});
  for (const auto& cell : par.cells) {
    const sim::SimResult& r = cell.result;
    const sweep::PowerSpec& p = cell.spec.power;
    table.add_row(
        {std::string(sim::to_string(cell.spec.policy)), p.name,
         p.capped() ? TextTable::cell(p.cap_watts / 1000.0, 0) : "-",
         TextTable::cell(r.energy_joules / 3.6e6, 1),
         TextTable::cell(r.max_power_watts / 1000.0, 0),
         TextTable::cell(r.avg_jct / 3600.0, 2),
         TextTable::cell(r.avg_queue_delay / 3600.0, 2),
         std::to_string(r.unfinished_jobs)});
  }
  std::printf("%s\n", table.str().c_str());

  auto find = [&](sim::SchedulerPolicy policy,
                  const std::string& power) -> const sim::SimResult& {
    for (const auto& cell : par.cells)
      if (cell.spec.policy == policy && cell.spec.power.name == power)
        return cell.result;
    std::fprintf(stderr, "POWER FAIL: missing cell %s/%s\n",
                 std::string(sim::to_string(policy)).c_str(), power.c_str());
    std::exit(EXIT_FAILURE);
  };
  const sim::SimResult& fifo = find(sim::SchedulerPolicy::kFifo, "uncapped");
  const sim::SimResult& capped =
      find(sim::SchedulerPolicy::kPowerCap, "cap30");

  bench::print_expectation(
      "capped admission saves in-window energy",
      "POWERCAP@cap30 energy < uncapped FIFO",
      TextTable::cell(capped.energy_joules / 3.6e6, 1) + " kWh vs " +
          TextTable::cell(fifo.energy_joules / 3.6e6, 1) + " kWh");
  bench::print_expectation(
      "the saving is paid in JCT", "POWERCAP@cap30 avg JCT > uncapped FIFO",
      TextTable::cell(capped.avg_jct / 3600.0, 2) + "h vs " +
          TextTable::cell(fifo.avg_jct / 3600.0, 2) + "h");

  // Gate: a binding cap must strictly reduce modeled in-window energy
  // relative to uncapped FIFO (deferred work falls past the window edge).
  if (!(capped.energy_joules < fifo.energy_joules))
    return fail("POWERCAP@cap30 energy not below uncapped FIFO");
  // And the cap must actually clamp the observed peak. The enforceable
  // cluster bound is the sum of per-VC max(idle baseline, cap share): a VC
  // whose baseline already exceeds its capacity-proportional share can never
  // place work but still draws its baseline.
  const double cap30 = cap_spec("cap30", 0.3).cap_watts;
  double bound = 0.0;
  for (const auto& vc : cluster.vcs) {
    const double vc_gpus =
        static_cast<double>(vc.nodes) * static_cast<double>(vc.gpus_per_node);
    const double share = cap30 * vc_gpus / static_cast<double>(gpus);
    const double baseline = profile.idle_node_watts * vc.nodes;
    bound += std::max(share, baseline);
  }
  if (!(capped.max_power_watts <= bound + 1e-6)) {
    std::fprintf(stderr, "  peak %.0f W over enforceable bound %.0f W\n",
                 capped.max_power_watts, bound);
    return fail("POWERCAP@cap30 peak power exceeds the cap bound");
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << "{\n"
        << "  \"bench\": \"ablation_power\",\n"
        << "  \"workload\": \"Venus\",\n"
        << "  \"scale\": " << scale << ",\n"
        << "  \"cells\": " << cells.size() << ",\n"
        << "  \"parity\": \"bit-identical\",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < par.cells.size(); ++i) {
      const auto& cell = par.cells[i];
      const sim::SimResult& r = cell.result;
      out << "    {\"policy\": \"" << sim::to_string(cell.spec.policy)
          << "\", \"power\": \"" << cell.spec.power.name
          << "\", \"cap_watts\": " << cell.spec.power.cap_watts
          << ", \"energy_kwh\": " << r.energy_joules / 3.6e6
          << ", \"max_power_kw\": " << r.max_power_watts / 1000.0
          << ", \"avg_jct_h\": " << r.avg_jct / 3600.0
          << ", \"avg_queue_delay_h\": " << r.avg_queue_delay / 3600.0
          << ", \"unfinished\": " << r.unfinished_jobs << "}"
          << (i + 1 < par.cells.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
