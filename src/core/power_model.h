// Datacenter power/energy accounting (paper §4.3.3 and beyond).
//
// Two layers:
//  * PowerModel — the paper's node-count bookkeeping: an idle DGX-1 class
//    server draws ~800 W (read from the BMC PSU inputs), and datacenter
//    cooling consumes about twice the server energy, so every server-watt
//    saved is worth ~3 facility-watts. The CES service reports savings
//    through this.
//  * PowerProfile — per-node/per-job draw for the simulator's energy
//    accounting (sim/simulator.h): a node's baseline draw is a function of
//    its power state (idle/boot/sleep/failed watts) and every allocated GPU
//    adds a per-GPU draw on top, so cluster power is a piecewise-constant
//    function of the schedule. Per-job draws (jobs whose kernels pull more
//    or less than the default) come from sim::SimConfig::gpu_watts_fn.
//
// Keep profile watts integer-valued where bit-exact accounting matters: the
// simulator's energy sums and power series are then exact integer-valued
// products (see sim/bucket_integrator.h), independent of accumulation order.
#pragma once

namespace helios::core {

struct PowerModel {
  double idle_node_watts = 800.0;
  /// Facility multiplier: server + 2x cooling.
  double facility_factor = 3.0;

  /// Energy saved by keeping nodes asleep for the given node-seconds,
  /// in kWh (includes the cooling share).
  [[nodiscard]] double saved_kwh(double sleeping_node_seconds) const noexcept {
    return sleeping_node_seconds / 3600.0 * (idle_node_watts / 1000.0) *
           facility_factor;
  }

  /// Extrapolate a measured saving over `measured_days` to a full year.
  [[nodiscard]] double annualized_kwh(double kwh, double measured_days) const noexcept {
    return measured_days > 0.0 ? kwh * 365.0 / measured_days : 0.0;
  }
};

/// Per-node and per-GPU draw used by the simulator's energy accounting.
/// Homogeneous across nodes (the clusters' VCs are hardware-uniform);
/// per-job variation rides on top via sim::SimConfig::gpu_watts_fn.
struct PowerProfile {
  /// Baseline draw of a powered, schedulable node (fans, CPUs, idle GPUs).
  double idle_node_watts = 800.0;
  /// Draw while booting out of deep sleep (conservatively full baseline).
  double boot_node_watts = 800.0;
  /// Deep-sleep draw (DRS sleep is ~0 W in the paper's measurement).
  double sleep_node_watts = 0.0;
  /// Draw of a node that is down for repair.
  double failed_node_watts = 0.0;
  /// Additional draw per allocated GPU under load.
  double gpu_watts = 300.0;

  /// Baseline draw of a set of nodes by power state, excluding job draw.
  [[nodiscard]] double baseline_watts(int active, int booting, int sleeping,
                                      int failed) const noexcept {
    return idle_node_watts * active + boot_node_watts * booting +
           sleep_node_watts * sleeping + failed_node_watts * failed;
  }

  [[nodiscard]] friend bool operator==(const PowerProfile&,
                                       const PowerProfile&) = default;
};

}  // namespace helios::core
