#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace helios::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  assert(bins > 0 && hi > lo);
}

std::size_t Histogram::bin_index(double x) const noexcept {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  return std::min(static_cast<std::size_t>((x - lo_) / width_),
                  counts_.size() - 1);
}

void Histogram::add(double x, double weight) noexcept {
  counts_[bin_index(x)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::bin_center(std::size_t bin) const noexcept {
  return lo_ + width_ * (static_cast<double>(bin) + 0.5);
}

double Histogram::fraction(std::size_t bin) const noexcept {
  return total_ > 0.0 ? counts_[bin] / total_ : 0.0;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins)
    : log_lo_(std::log(lo)), log_hi_(std::log(hi)),
      log_width_((std::log(hi) - std::log(lo)) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  assert(bins > 0 && lo > 0.0 && hi > lo);
}

std::size_t LogHistogram::bin_index(double x) const noexcept {
  if (x <= 0.0) return 0;
  const double lx = std::log(x);
  if (lx <= log_lo_) return 0;
  if (lx >= log_hi_) return counts_.size() - 1;
  return std::min(static_cast<std::size_t>((lx - log_lo_) / log_width_),
                  counts_.size() - 1);
}

void LogHistogram::add(double x, double weight) noexcept {
  counts_[bin_index(x)] += weight;
  total_ += weight;
}

double LogHistogram::bin_lo(std::size_t bin) const noexcept {
  return std::exp(log_lo_ + log_width_ * static_cast<double>(bin));
}

double LogHistogram::bin_hi(std::size_t bin) const noexcept {
  return std::exp(log_lo_ + log_width_ * static_cast<double>(bin + 1));
}

double LogHistogram::bin_center(std::size_t bin) const noexcept {
  return std::exp(log_lo_ + log_width_ * (static_cast<double>(bin) + 0.5));
}

double LogHistogram::fraction(std::size_t bin) const noexcept {
  return total_ > 0.0 ? counts_[bin] / total_ : 0.0;
}

}  // namespace helios::stats
