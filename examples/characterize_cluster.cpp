// Full §3-style characterization of one cluster: the analyses behind
// Figures 2 and 5-9, as a library-consumer walkthrough.
//
// Usage: ./build/examples/example_characterize_cluster [cluster] [scale]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/cluster_stats.h"
#include "analysis/job_stats.h"
#include "analysis/user_stats.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

int main(int argc, char** argv) {
  using namespace helios;
  const std::string cluster = argc > 1 ? argv[1] : "Saturn";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster(cluster), 42,
                                            scale);
  trace::Trace t = trace::SyntheticTraceGenerator(cfg).generate();
  sim::operate_fifo(t);  // assign start times the way Slurm did

  const auto begin = trace::helios_trace_begin();
  const auto end = trace::helios_trace_end();

  std::printf("=== %s (scale %.2f): %zu jobs ===\n\n", cluster.c_str(), scale,
              t.size());

  // Cluster level: utilization profile (Figure 2a).
  const auto util = analysis::utilization_series(t, begin, end, 3600);
  const auto hourly = analysis::hourly_profile(util);
  std::printf("hourly utilization profile:\n  ");
  for (int h = 0; h < 24; ++h) std::printf("%02d:%4.0f%% ", h, 100 * hourly[static_cast<std::size_t>(h)]);
  std::printf("\n\n");

  // Job level: durations and sizes (Figures 5-6).
  const auto gpu_cdf = analysis::duration_cdf(t, true);
  std::printf("GPU job durations: p25 %.0fs  median %.0fs  p75 %.0fs  p99 %.0fs\n",
              gpu_cdf.inverse(0.25), gpu_cdf.inverse(0.5), gpu_cdf.inverse(0.75),
              gpu_cdf.inverse(0.99));
  std::printf("job-size mix (share of jobs / share of GPU time):\n");
  for (const auto& b : analysis::job_size_distribution(t)) {
    if (b.job_fraction < 0.002) continue;
    std::printf("  %4d GPUs: %5.1f%% / %5.1f%%\n", b.gpus, 100 * b.job_fraction,
                100 * b.gpu_time_fraction);
  }

  // Status level (Figure 7).
  const auto by_state = analysis::gpu_time_by_state(t);
  std::printf("GPU time by status: %.1f%% completed / %.1f%% canceled / %.1f%% failed\n\n",
              100 * by_state[0], 100 * by_state[1], 100 * by_state[2]);

  // User level (Figures 8-9).
  const auto users = analysis::user_aggregates(t);
  std::vector<double> gpu_time;
  std::vector<double> delays;
  for (const auto& u : users) {
    gpu_time.push_back(u.gpu_time);
    delays.push_back(u.queue_delay);
  }
  std::printf("users: %zu; top 5%% hold %.1f%% of GPU time and %.1f%% of queuing\n",
              users.size(), 100 * analysis::top_share(gpu_time, 0.05),
              100 * analysis::top_share(delays, 0.05));

  // VC level (Figure 4).
  std::printf("\nlargest VCs (May):\n");
  const auto vcs = analysis::vc_behaviors(t, from_civil(2020, 5, 1),
                                          from_civil(2020, 6, 1));
  for (std::size_t i = 0; i < std::min<std::size_t>(5, vcs.size()); ++i) {
    std::printf("  %-6s %4d GPUs  median util %5.1f%%  avg req %.1f GPUs  "
                "avg delay %.0fs\n",
                vcs[i].name.c_str(), vcs[i].gpus, 100 * vcs[i].utilization.median,
                vcs[i].avg_gpu_request, vcs[i].avg_queue_delay);
  }
  return 0;
}
