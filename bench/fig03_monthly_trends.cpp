// Figure 3: monthly trends — submitted single-/multi-GPU jobs, average
// utilization, and utilization split by single- vs multi-GPU jobs.
#include <cstdio>

#include "analysis/cluster_stats.h"
#include "bench_common.h"
#include "common/text_table.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace analysis = helios::analysis;

  bench::print_header("Figure 3", "Monthly trends of cluster activities");

  const auto begin = helios::trace::helios_trace_begin();
  const auto end = helios::trace::helios_trace_end();
  static const char* kMonths[] = {"",    "Jan", "Feb", "Mar", "Apr", "May",
                                  "Jun", "Jul", "Aug", "Sep", "Oct", "Nov",
                                  "Dec"};

  for (const auto& tp : bench::operated_helios_traces()) {
    const helios::trace::Trace& t = *tp;
    const auto months = analysis::monthly_trends(t, begin, end);
    TextTable table({"month", "single-GPU jobs", "multi-GPU jobs", "avg util",
                     "util from single", "util from multi"});
    double single_min = 1e18;
    double single_max = 0.0;
    double multi_min = 1e18;
    double multi_max = 0.0;
    for (const auto& m : months) {
      table.add_row({kMonths[m.month],
                     TextTable::cell_grouped(m.single_gpu_jobs),
                     TextTable::cell_grouped(m.multi_gpu_jobs),
                     TextTable::cell_pct(m.avg_utilization),
                     TextTable::cell_pct(m.util_from_single),
                     TextTable::cell_pct(m.util_from_multi)});
      single_min = std::min(single_min, static_cast<double>(m.single_gpu_jobs));
      single_max = std::max(single_max, static_cast<double>(m.single_gpu_jobs));
      multi_min = std::min(multi_min, static_cast<double>(m.multi_gpu_jobs));
      multi_max = std::max(multi_max, static_cast<double>(m.multi_gpu_jobs));
    }
    std::printf("%s\n%s\n", t.cluster().name.c_str(), table.str().c_str());
    bench::print_expectation(
        "single-GPU volume swing (max/min)", "fluctuates dramatically",
        TextTable::cell(single_min > 0 ? single_max / single_min : 0.0, 2) + "x");
    bench::print_expectation(
        "multi-GPU volume swing (max/min)", "stable",
        TextTable::cell(multi_min > 0 ? multi_max / multi_min : 0.0, 2) + "x");
    std::printf("\n");
  }
  bench::print_expectation("multi-GPU jobs dominate utilization",
                           "single-GPU <6% of util (except Earth)",
                           "see 'util from single' columns");
  return 0;
}
