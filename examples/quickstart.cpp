// Quickstart: generate a synthetic Helios-style trace, characterize it, and
// compare the QSSF scheduler against FIFO — the library's three main layers
// (trace substrate, analysis, prediction framework) in ~80 lines.
//
// Build & run:   ./build/examples/example_quickstart [scale]
#include <cstdio>
#include <cstdlib>

#include "analysis/job_stats.h"
#include "core/qssf_service.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

int main(int argc, char** argv) {
  using namespace helios;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;

  // 1) Generate a scaled-down Venus trace (Table 1 shape, §3 statistics).
  auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"),
                                            /*seed=*/42, scale);
  trace::Trace t = trace::SyntheticTraceGenerator(cfg).generate();
  std::printf("generated %zu jobs on %d nodes / %d GPUs (%d VCs)\n", t.size(),
              t.cluster().nodes, t.cluster().total_gpus(),
              t.cluster().vc_count());

  // 2) Characterize it.
  const auto s = analysis::summarize(t);
  std::printf("GPU jobs: %lld (median %.0f s, mean %.0f s, avg %.2f GPUs)\n",
              static_cast<long long>(s.gpu_jobs), s.median_gpu_job_duration,
              s.avg_gpu_job_duration, s.avg_gpus_per_gpu_job);
  const auto status = analysis::job_fraction_by_state(t, /*gpu_jobs=*/true);
  std::printf("final statuses: %.1f%% completed, %.1f%% canceled, %.1f%% failed\n",
              100 * status[0], 100 * status[1], 100 * status[2]);

  // 3) Train the QSSF service on April-August and schedule September.
  const auto train = t.between(trace::helios_trace_begin(), from_civil(2020, 9, 1));
  const auto eval = t.between(from_civil(2020, 9, 1), trace::helios_trace_end());
  core::QssfService qssf;
  qssf.fit(train);
  core::OnlinePriorityEvaluator evaluator(qssf, eval);

  sim::SimConfig fifo_cfg;  // the cluster's production policy
  const auto fifo = sim::ClusterSimulator(eval.cluster(), fifo_cfg).run(eval);

  sim::SimConfig qssf_cfg;
  qssf_cfg.policy = sim::SchedulerPolicy::kQssf;
  qssf_cfg.priority_fn = evaluator.as_priority_fn();
  const auto smart = sim::ClusterSimulator(eval.cluster(), qssf_cfg).run(eval);

  std::printf("\nSeptember scheduling (%zu GPU jobs):\n", fifo.outcomes.size());
  std::printf("  FIFO: avg JCT %8.0f s   avg queuing %8.0f s\n", fifo.avg_jct,
              fifo.avg_queue_delay);
  std::printf("  QSSF: avg JCT %8.0f s   avg queuing %8.0f s\n", smart.avg_jct,
              smart.avg_queue_delay);
  std::printf("  improvement: %.1fx JCT, %.1fx queuing\n",
              fifo.avg_jct / smart.avg_jct,
              fifo.avg_queue_delay / std::max(1.0, smart.avg_queue_delay));
  return 0;
}
