// Scenario-sweep matrix: the acceptance driver for sweep::ScenarioEngine.
//
// Expands a multi-cluster grid (clusters × 4 policies × seeds), runs it twice:
//   1. parallel engine (two-level cell × VC sharding) on a fresh TraceStore,
//   2. serial engine — the literal one-cell-at-a-time reference loop — on its
//      own fresh store (so trace generation is timed in both legs; the
//      speedup compares whole pipelines, not just the simulate phase),
// and gates on
//   (a) every parallel cell being bit-identical to its serial counterpart
//       (sweep::results_identical — outcomes, counters, busy series),
//   (b) each store having materialized every distinct trace key exactly once
//       (TraceStore::generations() == unique key count).
// Exit status is non-zero on any violation. The speedup itself is reported,
// not gated (single-core CI must pass).
//
// Prints the consolidated comparison report and, when HELIOS_SWEEP_OUT is
// set, writes grid/wall-clock/speedup JSON there (ci.sh bench points it at
// build/BENCH_sweep.json).
//
// Knobs: HELIOS_SWEEP_SCALE (default HELIOS_SCALE, default 0.25),
// HELIOS_SWEEP_CLUSTERS (csv, default all six workloads),
// HELIOS_SWEEP_SEEDS (count, default 2), HELIOS_SWEEP_OUT (JSON path).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/env.h"
#include "stats/summary.h"
#include "sweep/scenario_engine.h"

using namespace helios;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int fail(const char* what) {
  std::fprintf(stderr, "SWEEP FAIL: %s\n", what);
  return 1;
}

}  // namespace

int main() {
  const double scale = env_double("HELIOS_SWEEP_SCALE", bench::scale());
  const auto n_seeds = env_int("HELIOS_SWEEP_SEEDS", 2);
  const std::string clusters_csv = env_string(
      "HELIOS_SWEEP_CLUSTERS", "Venus,Earth,Saturn,Uranus,Philly,PAI");
  const std::string out_path = env_string("HELIOS_SWEEP_OUT", "");

  sweep::SweepGrid grid;
  grid.clusters = split_csv(clusters_csv);
  grid.policies.assign(sim::all_policies().begin(), sim::all_policies().end());
  grid.scales = {scale};
  grid.seeds.clear();
  for (std::int64_t s = 0; s < n_seeds; ++s)
    grid.seeds.push_back(bench::seed() + static_cast<std::uint64_t>(s));

  const auto cells = grid.expand();
  std::set<sweep::TraceKey> unique_keys;
  for (const auto& c : cells) unique_keys.insert(c.workload.key);

  bench::print_header(
      "Sweep matrix", "multi-cluster scenario grid",
      std::to_string(grid.clusters.size()) + " workloads x " +
          std::to_string(grid.policies.size()) + " policies x " +
          std::to_string(grid.seeds.size()) + " seeds = " +
          std::to_string(cells.size()) + " cells (" +
          std::to_string(unique_keys.size()) + " distinct traces), scale=" +
          std::to_string(scale));

  // QSSF cells use the oracle provider: deterministic, model-free, and the
  // same priority in both legs, so parity covers the priority path too.
  sweep::EngineConfig cfg;
  cfg.priority_provider = sweep::oracle_gpu_time_provider();

  // -- leg 1: parallel engine ----------------------------------------------
  sweep::TraceStore par_store;
  cfg.execution = common::ExecMode::kParallel;
  const auto t_par = Clock::now();
  const sweep::SweepResult par =
      sweep::ScenarioEngine(par_store, cfg).run(cells);
  const double par_s = seconds_since(t_par);

  // -- leg 2: serial reference loop ----------------------------------------
  sweep::TraceStore ser_store;
  cfg.execution = common::ExecMode::kSerial;
  const auto t_ser = Clock::now();
  const sweep::SweepResult ser =
      sweep::ScenarioEngine(ser_store, cfg).run(cells);
  const double ser_s = seconds_since(t_ser);

  // -- gates ----------------------------------------------------------------
  if (par.cells.size() != cells.size() || ser.cells.size() != cells.size())
    return fail("cell count mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!sweep::results_identical(par.cells[i].result, ser.cells[i].result)) {
      std::fprintf(stderr, "  cell %zu: %s\n", i,
                   par.cells[i].spec.label().c_str());
      return fail("parallel != serial for a grid cell");
    }
  }
  std::printf("parity OK: %zu cells bit-identical parallel vs serial\n",
              cells.size());

  for (const sweep::TraceStore* store : {&par_store, &ser_store}) {
    if (store->generations() != unique_keys.size()) {
      std::fprintf(stderr, "  generations=%llu, distinct keys=%zu\n",
                   static_cast<unsigned long long>(store->generations()),
                   unique_keys.size());
      return fail("a trace was materialized more (or less) than once");
    }
  }
  std::printf("trace sharing OK: %zu distinct traces, each generated once "
              "(%llu cache hits)\n",
              unique_keys.size(),
              static_cast<unsigned long long>(par_store.hits()));

  // -- report ---------------------------------------------------------------
  std::vector<double> cell_ms;
  cell_ms.reserve(par.cells.size());
  for (const auto& c : par.cells) cell_ms.push_back(c.wall_ms);
  const double med_cell_ms = stats::median(cell_ms);
  const double speedup = par_s > 0 ? ser_s / par_s : 0.0;
  const unsigned threads = std::thread::hardware_concurrency();
  std::printf(
      "grid wall: parallel %.2fs, serial loop %.2fs -> speedup %.2fx "
      "(%u hw threads); median cell %.1f ms\n",
      par_s, ser_s, speedup, threads, med_cell_ms);

  std::printf("%s", sweep::comparison_report(par).c_str());

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << "{\n"
        << "  \"bench\": \"scenario_sweep_matrix\",\n"
        << "  \"scale\": " << scale << ",\n"
        << "  \"workloads\": " << grid.clusters.size() << ",\n"
        << "  \"policies\": " << grid.policies.size() << ",\n"
        << "  \"seeds\": " << grid.seeds.size() << ",\n"
        << "  \"cells\": " << cells.size() << ",\n"
        << "  \"distinct_traces\": " << unique_keys.size() << ",\n"
        << "  \"trace_generations\": " << par_store.generations() << ",\n"
        << "  \"trace_cache_hits\": " << par_store.hits() << ",\n"
        << "  \"parity\": \"bit-identical\",\n"
        << "  \"parallel_wall_s\": " << par_s << ",\n"
        << "  \"serial_wall_s\": " << ser_s << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"median_cell_ms\": " << med_cell_ms << ",\n"
        << "  \"hw_threads\": " << threads << "\n"
        << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
