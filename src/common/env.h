// Environment-variable knobs shared by benches/examples (e.g. HELIOS_SCALE).
#pragma once

#include <cstdint>
#include <string>

namespace helios {

/// Value of an environment variable parsed as double, or `fallback` when the
/// variable is unset or unparsable.
[[nodiscard]] double env_double(const char* name, double fallback) noexcept;

/// Same for integers.
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback) noexcept;

/// Same for strings.
[[nodiscard]] std::string env_string(const char* name, const std::string& fallback);

}  // namespace helios
