// Property tests: the synthetic generator reproduces the paper's published
// marginals (DESIGN.md §4) within tolerances.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/job_stats.h"
#include "analysis/user_stats.h"
#include "trace/synthetic.h"

namespace helios {
namespace {

using analysis::summarize;
using trace::GeneratorConfig;
using trace::SyntheticTraceGenerator;
using trace::Trace;

Trace make_trace(const std::string& cluster, double scale = 0.02,
                 std::uint64_t seed = 42) {
  auto cfg = GeneratorConfig::helios(trace::helios_cluster(cluster), seed, scale);
  return SyntheticTraceGenerator(cfg).generate();
}

TEST(Synthetic, JobCountMatchesScale) {
  // reference_jobs covers the published window (the generator additionally
  // emits a warm-up prefix so the cluster starts in steady state).
  const Trace t = make_trace("Saturn", 0.02);
  const auto window =
      t.between(trace::helios_trace_begin(), trace::helios_trace_end());
  const auto s = summarize(window);
  // Monthly volume volatility (Figure 3) makes the in-window share of the
  // extended generation window fluctuate by up to ~10%.
  EXPECT_NEAR(static_cast<double>(s.total_jobs), 1'753'000 * 0.02,
              1'753'000 * 0.02 * 0.12);
}

TEST(Synthetic, Deterministic) {
  const Trace a = make_trace("Venus", 0.01, 7);
  const Trace b = make_trace("Venus", 0.01, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a.jobs()[i].submit_time, b.jobs()[i].submit_time);
    EXPECT_EQ(a.jobs()[i].duration, b.jobs()[i].duration);
    EXPECT_EQ(a.jobs()[i].num_gpus, b.jobs()[i].num_gpus);
    EXPECT_EQ(a.jobs()[i].user, b.jobs()[i].user);
  }
}

TEST(Synthetic, SeedChangesTrace) {
  const Trace a = make_trace("Venus", 0.01, 7);
  const Trace b = make_trace("Venus", 0.01, 8);
  ASSERT_GT(a.size(), 0u);
  std::size_t diff = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; i += 11) {
    diff += a.jobs()[i].submit_time != b.jobs()[i].submit_time;
  }
  EXPECT_GT(diff, 0u);
}

TEST(Synthetic, GpuJobFractionPerCluster) {
  EXPECT_NEAR(
      static_cast<double>(summarize(make_trace("Saturn")).gpu_jobs) /
          static_cast<double>(summarize(make_trace("Saturn")).total_jobs),
      0.52, 0.04);
  const auto earth = summarize(make_trace("Earth"));
  EXPECT_NEAR(static_cast<double>(earth.gpu_jobs) /
                  static_cast<double>(earth.total_jobs),
              0.35, 0.04);
}

TEST(Synthetic, GpuDurationShape) {
  const Trace t = make_trace("Saturn");
  const auto s = summarize(t);
  // Paper: median 206 s, ~75% under 1000 s, mean ~6652 s, heavy tail.
  EXPECT_GT(s.median_gpu_job_duration, 50.0);
  EXPECT_LT(s.median_gpu_job_duration, 800.0);
  EXPECT_GT(s.avg_gpu_job_duration, 10.0 * s.median_gpu_job_duration);
  const auto cdf = analysis::duration_cdf(t, /*gpu_jobs=*/true);
  EXPECT_GT(cdf(1000.0), 0.55);
  EXPECT_LT(cdf(1000.0), 0.92);
}

TEST(Synthetic, CpuJobsShortOnAverage) {
  const Trace t = make_trace("Earth");
  const auto cdf = analysis::duration_cdf(t, /*gpu_jobs=*/false);
  // Earth: ~90% of CPU jobs run ~1 second (state queries).
  EXPECT_GT(cdf(3.0), 0.80);
}

TEST(Synthetic, SingleGpuMajorityButMinorityOfGpuTime) {
  // Job-size shape requires enough capacity for large jobs -> scale 0.2.
  const Trace t = make_trace("Saturn", 0.2);
  const auto dist = analysis::job_size_distribution(t);
  double single_jobs = 0.0;
  double single_time = 0.0;
  double big_jobs = 0.0;
  double big_time = 0.0;
  for (const auto& b : dist) {
    if (b.gpus == 1) {
      single_jobs = b.job_fraction;
      single_time = b.gpu_time_fraction;
    }
    if (b.gpus >= 8) {
      big_jobs += b.job_fraction;
      big_time += b.gpu_time_fraction;
    }
  }
  EXPECT_GT(single_jobs, 0.50);       // >50% single-GPU jobs
  EXPECT_LT(single_time, 0.50);       // minority of GPU time (paper: 3-12%;
                                      // scaled VCs cap big jobs, so looser)
  EXPECT_LT(big_jobs, 0.20);          // >=8-GPU jobs are rare...
  EXPECT_GT(big_time, 0.30);          // ...but carry an outsized time share
  EXPECT_GT(1.0 - single_time, single_time);  // multi-GPU time dominates
}

TEST(Synthetic, EarthIsSingleGpuHeavy) {
  const Trace t = make_trace("Earth");
  const auto dist = analysis::job_size_distribution(t);
  double single_jobs = 0.0;
  for (const auto& b : dist) {
    if (b.gpus == 1) single_jobs = b.job_fraction;
  }
  EXPECT_GT(single_jobs, 0.80);
}

TEST(Synthetic, StatusMixMatchesPaper) {
  const Trace t = make_trace("Saturn");
  const auto gpu = analysis::job_fraction_by_state(t, /*gpu_jobs=*/true);
  // Paper Figure 7a: completed 62.4%, unsuccessful 37.6% for GPU jobs.
  EXPECT_NEAR(gpu[0], 0.624, 0.08);
  const auto cpu = analysis::job_fraction_by_state(t, /*gpu_jobs=*/false);
  EXPECT_NEAR(cpu[0], 0.909, 0.03);
}

TEST(Synthetic, CompletionRateDecreasesWithJobSize) {
  const Trace t = make_trace("Saturn", 0.2);
  const auto by_size = analysis::status_by_gpu_count(t);
  double p1 = 0.0;
  double p_big = 1.0;
  std::int32_t biggest = 0;
  for (const auto& s : by_size) {
    if (s.gpus == 1) p1 = s.completed;
    if (s.jobs >= 50 && s.gpus > biggest) {
      biggest = s.gpus;
      p_big = s.completed;
    }
  }
  EXPECT_GT(p1, 0.55);
  ASSERT_GE(biggest, 16);          // the scaled cluster still hosts big jobs
  EXPECT_LT(p_big, p1 - 0.10);     // completion degrades with size (Fig 7b)
}

TEST(Synthetic, GpuTimeByStateShares) {
  const Trace t = make_trace("Saturn", 0.2);
  const auto shares = analysis::gpu_time_by_state(t);
  // Paper Figure 1b (Helios): completed 51.3%, canceled 39.4%, failed 9.3%.
  EXPECT_NEAR(shares[0], 0.513, 0.16);
  EXPECT_NEAR(shares[1], 0.394, 0.16);
  EXPECT_LT(shares[2], 0.25);
}

TEST(Synthetic, UserConcentration) {
  const Trace t = make_trace("Saturn", 0.05);
  const auto users = analysis::user_aggregates(t);
  std::vector<double> gpu_time;
  std::vector<double> cpu_time;
  for (const auto& u : users) {
    gpu_time.push_back(u.gpu_time);
    cpu_time.push_back(u.cpu_time);
  }
  // Paper Figure 8: top 5% of users take 45-60% of GPU time but >90% of CPU
  // time (CPU work is far more concentrated).
  const double gpu_top5 = analysis::top_share(gpu_time, 0.05);
  const double cpu_top5 = analysis::top_share(cpu_time, 0.05);
  EXPECT_GT(gpu_top5, 0.30);
  EXPECT_LT(gpu_top5, 0.80);
  EXPECT_GT(cpu_top5, gpu_top5);
}

TEST(Synthetic, SubmissionsFollowDiurnalPattern) {
  const Trace t = make_trace("Saturn", 0.05);
  std::array<double, 24> counts{};
  for (const auto& j : t.jobs()) {
    if (j.is_gpu_job()) ++counts[static_cast<std::size_t>(hour_of(j.submit_time))];
  }
  const double night = counts[3] + counts[4] + counts[5];
  const double afternoon = counts[14] + counts[15] + counts[16];
  EXPECT_LT(night, 0.55 * afternoon);
}

TEST(Synthetic, PhillyProfile) {
  const Trace t = trace::generate_philly(42, 0.2);
  const auto s = summarize(t);
  EXPECT_EQ(s.cpu_jobs, 0);  // Philly trace has GPU jobs only
  EXPECT_NEAR(s.avg_gpus_per_gpu_job, 1.75, 0.5);
  EXPECT_LE(s.max_gpus, 128);
  // Philly jobs are much longer on average than Helios jobs.
  EXPECT_GT(s.avg_gpu_job_duration, 10'000.0);
  // Failed jobs keep their full runtime (YARN retries) -> failed GPU-time
  // share is large (paper: 36.1%).
  const auto shares = analysis::gpu_time_by_state(t);
  EXPECT_GT(shares[2], 0.15);
}

TEST(Synthetic, OfferedLoadMatchesUtilizationTarget) {
  // Window-clipped offered GPU time must land near target_utilization *
  // capacity: this is what makes the FIFO-operated trace reproduce the
  // paper's 65-90% cluster utilization (Figure 2a).
  for (const char* name : {"Saturn", "Uranus"}) {
    auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster(name), 42, 0.1);
    const Trace t = SyntheticTraceGenerator(cfg).generate();
    double gpu_seconds = 0.0;
    for (const auto& j : t.jobs()) {
      const double horizon =
          std::max<double>(1.0, static_cast<double>(cfg.end - j.submit_time));
      gpu_seconds +=
          std::min<double>(j.duration, horizon) * j.num_gpus;
    }
    const double capacity = static_cast<double>(t.cluster().total_gpus()) *
                            static_cast<double>(cfg.end - cfg.begin);
    const double offered = gpu_seconds / capacity;
    const double target = trace::helios_knobs(name).target_utilization;
    EXPECT_NEAR(offered, target, 0.12) << name;
  }
}

TEST(Synthetic, JobsSortedAndIdsDense) {
  const Trace t = make_trace("Venus", 0.01);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t.jobs()[i - 1].submit_time, t.jobs()[i].submit_time);
    EXPECT_EQ(t.jobs()[i].job_id, i);
  }
}

TEST(Synthetic, AllJobsWithinWindowAndValid) {
  const Trace t = make_trace("Uranus", 0.01);
  // The generation window includes a 35-day steady-state warm-up prefix.
  const auto begin = trace::helios_trace_begin() - 35 * kSecondsPerDay;
  const auto end = trace::helios_trace_end();
  for (const auto& j : t.jobs()) {
    EXPECT_GE(j.submit_time, begin);
    EXPECT_LT(j.submit_time, end + kSecondsPerDay);  // bursts may spill slightly
    EXPECT_GE(j.duration, 1);
    EXPECT_LE(j.duration, 50 * 24 * 3600);
    EXPECT_GE(j.num_gpus, 0);
    EXPECT_LT(j.user, t.users().size());
    EXPECT_LT(j.vc, t.vcs().size());
    EXPECT_LT(j.name, t.names().size());
    if (j.is_gpu_job()) {
      // Power-of-two GPU demands, within the VC's capacity.
      EXPECT_EQ(j.num_gpus & (j.num_gpus - 1), 0);
    }
  }
}

}  // namespace
}  // namespace helios
