// String interning: maps strings <-> dense integer ids.
//
// Job records store user / VC / job-name fields as 32-bit ids into a
// per-trace interner, keeping records POD-sized so multi-million-job traces
// fit comfortably in memory.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace helios {

class StringInterner {
 public:
  /// Id of `s`, inserting it if new. Ids are dense, starting at 0.
  std::uint32_t intern(std::string_view s);

  /// Id of `s` or `kNotFound` if absent.
  [[nodiscard]] std::uint32_t find(std::string_view s) const noexcept;

  /// The string for an id; `id` must be < size().
  [[nodiscard]] const std::string& str(std::uint32_t id) const noexcept {
    return strings_[id];
  }

  [[nodiscard]] std::size_t size() const noexcept { return strings_.size(); }
  [[nodiscard]] bool empty() const noexcept { return strings_.empty(); }

  /// All interned strings in id order.
  [[nodiscard]] const std::vector<std::string>& strings() const noexcept {
    return strings_;
  }

  /// Interns every string of `other` (in `other`'s id order) and returns the
  /// remap table: `remap[other_id] == this->intern(other.str(other_id))`.
  /// Merging shard interners in shard order reproduces the id assignment a
  /// single interner would have made over the concatenated input, which is
  /// what keeps parallel trace ingestion byte-identical to a serial load.
  std::vector<std::uint32_t> merge_from(const StringInterner& other);

  [[nodiscard]] bool operator==(const StringInterner& other) const noexcept {
    return strings_ == other.strings_;
  }

  static constexpr std::uint32_t kNotFound = 0xffffffffu;

 private:
  // Heterogeneous lookup so intern()/find() on a string_view does not
  // allocate a temporary std::string — this is the ingestion hot path.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, std::uint32_t, Hash, std::equal_to<>> index_;
  std::vector<std::string> strings_;
};

}  // namespace helios
