// Property sweep for the indexed ClusterState.
//
// The allocator keeps per-VC free-count buckets, sleeping/booting sets, and
// GPU counters so its hot paths are O(gpus_per_node) / O(1). This suite
// replays randomized allocate/release/reclaim/sleep/wake/boot sequences
// against ReferenceState — a deliberately brute-force model implementing the
// original linear-scan semantics — and asserts every returned allocation
// (exact node ids and GPU splits) and every counter stays identical,
// including multi-node gangs, remainders, and sleeping/booting nodes.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "sim/cluster_state.h"

namespace helios::sim {
namespace {

/// Brute-force reference: the pre-index ClusterState algorithms, verbatim
/// linear scans over a flat node array.
class ReferenceState {
 public:
  struct RefNode {
    int vc = -1;
    int total = 0;
    int free = 0;
    PowerState power = PowerState::kActive;
    std::int64_t boot_ready = 0;
    [[nodiscard]] bool busy() const noexcept { return free < total; }
    [[nodiscard]] bool schedulable() const noexcept {
      return power == PowerState::kActive;
    }
  };

  explicit ReferenceState(const trace::ClusterSpec& spec) {
    vc_nodes_.resize(spec.vcs.size());
    for (std::size_t vi = 0; vi < spec.vcs.size(); ++vi) {
      for (int n = 0; n < spec.vcs[vi].nodes; ++n) {
        RefNode node;
        node.vc = static_cast<int>(vi);
        node.total = spec.vcs[vi].gpus_per_node;
        node.free = node.total;
        vc_nodes_[vi].push_back(static_cast<int>(nodes_.size()));
        nodes_.push_back(node);
      }
    }
  }

  std::optional<std::vector<std::pair<int, int>>> try_allocate(int vc, int gpus) {
    if (vc < 0 || vc >= static_cast<int>(vc_nodes_.size()) || gpus <= 0) {
      return std::nullopt;
    }
    const auto& indices = vc_nodes_[static_cast<std::size_t>(vc)];
    std::vector<std::pair<int, int>> alloc;
    auto best_fit = [&](int want) {
      int best = -1;
      int best_free = std::numeric_limits<int>::max();
      for (int ni : indices) {
        const RefNode& n = nodes_[static_cast<std::size_t>(ni)];
        if (!n.schedulable() || n.free < want) continue;
        if (n.free < best_free) {
          best_free = n.free;
          best = ni;
        }
      }
      return best;
    };
    const int gpn =
        indices.empty() ? 0 : nodes_[static_cast<std::size_t>(indices[0])].total;
    if (gpn == 0) return std::nullopt;
    if (gpus <= gpn) {
      const int ni = best_fit(gpus);
      if (ni < 0) return std::nullopt;
      alloc.emplace_back(ni, gpus);
    } else {
      const int full_nodes = gpus / gpn;
      const int rem = gpus % gpn;
      std::vector<int> picked;
      for (int ni : indices) {
        if (static_cast<int>(picked.size()) == full_nodes) break;
        const RefNode& n = nodes_[static_cast<std::size_t>(ni)];
        if (n.schedulable() && n.free == n.total) picked.push_back(ni);
      }
      if (static_cast<int>(picked.size()) < full_nodes) return std::nullopt;
      for (int ni : picked) alloc.emplace_back(ni, gpn);
      if (rem > 0) {
        int best = -1;
        int best_free = std::numeric_limits<int>::max();
        for (int ni : indices) {
          if (std::find(picked.begin(), picked.end(), ni) != picked.end()) {
            continue;
          }
          const RefNode& n = nodes_[static_cast<std::size_t>(ni)];
          if (!n.schedulable() || n.free < rem) continue;
          if (n.free < best_free) {
            best_free = n.free;
            best = ni;
          }
        }
        if (best < 0) return std::nullopt;
        alloc.emplace_back(best, rem);
      }
    }
    apply(alloc, -1);
    return alloc;
  }

  void apply(const std::vector<std::pair<int, int>>& alloc, int sign) {
    for (auto [ni, g] : alloc) {
      nodes_[static_cast<std::size_t>(ni)].free += sign * g;
    }
  }

  [[nodiscard]] int free_gpus(int vc) const {
    int total = 0;
    for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
      const RefNode& n = nodes_[static_cast<std::size_t>(ni)];
      if (n.schedulable()) total += n.free;
    }
    return total;
  }
  [[nodiscard]] int schedulable_gpus(int vc) const {
    int total = 0;
    for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
      const RefNode& n = nodes_[static_cast<std::size_t>(ni)];
      if (n.schedulable()) total += n.total;
    }
    return total;
  }
  [[nodiscard]] int capacity_gpus(int vc) const {
    int total = 0;
    for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
      total += nodes_[static_cast<std::size_t>(ni)].total;
    }
    return total;
  }
  [[nodiscard]] int busy_nodes() const {
    int c = 0;
    for (const auto& n : nodes_) c += n.busy();
    return c;
  }
  [[nodiscard]] int busy_gpus() const {
    int c = 0;
    for (const auto& n : nodes_) c += n.total - n.free;
    return c;
  }
  [[nodiscard]] int active_nodes() const {
    int c = 0;
    for (const auto& n : nodes_) c += n.power != PowerState::kSleeping;
    return c;
  }
  [[nodiscard]] int idle_active_in_vc(int vc) const {
    int c = 0;
    for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
      const RefNode& n = nodes_[static_cast<std::size_t>(ni)];
      c += n.power == PowerState::kActive && !n.busy();
    }
    return c;
  }
  [[nodiscard]] int booting_in_vc(int vc) const {
    int c = 0;
    for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
      c += nodes_[static_cast<std::size_t>(ni)].power == PowerState::kBooting;
    }
    return c;
  }
  [[nodiscard]] int sleeping_in_vc(int vc) const {
    int c = 0;
    for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
      c += nodes_[static_cast<std::size_t>(ni)].power == PowerState::kSleeping;
    }
    return c;
  }

  int sleep_idle_nodes(int count) {
    int slept = 0;
    for (auto& n : nodes_) {
      if (slept == count) break;
      if (n.power == PowerState::kActive && !n.busy()) {
        n.power = PowerState::kSleeping;
        ++slept;
      }
    }
    return slept;
  }
  int sleep_idle_nodes_in_vc(int vc, int count) {
    int slept = 0;
    for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
      if (slept == count) break;
      RefNode& n = nodes_[static_cast<std::size_t>(ni)];
      if (n.power == PowerState::kActive && !n.busy()) {
        n.power = PowerState::kSleeping;
        ++slept;
      }
    }
    return slept;
  }
  int wake_nodes(int count, std::int64_t now, std::int64_t delay) {
    int woken = 0;
    for (auto& n : nodes_) {
      if (woken == count) break;
      if (n.power == PowerState::kSleeping) {
        n.power = PowerState::kBooting;
        n.boot_ready = now + delay;
        ++woken;
      }
    }
    return woken;
  }
  int wake_nodes_in_vc(int vc, int count, std::int64_t now, std::int64_t delay) {
    int woken = 0;
    for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
      if (woken == count) break;
      RefNode& n = nodes_[static_cast<std::size_t>(ni)];
      if (n.power == PowerState::kSleeping) {
        n.power = PowerState::kBooting;
        n.boot_ready = now + delay;
        ++woken;
      }
    }
    return woken;
  }
  void finish_boots(std::int64_t now) {
    for (auto& n : nodes_) {
      if (n.power == PowerState::kBooting && n.boot_ready <= now) {
        n.power = PowerState::kActive;
      }
    }
  }
  [[nodiscard]] std::optional<std::int64_t> next_boot_ready() const {
    std::optional<std::int64_t> next;
    for (const auto& n : nodes_) {
      if (n.power == PowerState::kBooting) {
        next = next ? std::min(*next, n.boot_ready) : n.boot_ready;
      }
    }
    return next;
  }

 private:
  std::vector<RefNode> nodes_;
  std::vector<std::vector<int>> vc_nodes_;
};

std::vector<std::pair<int, int>> to_pairs(const Allocation& a) {
  return {a.node_gpus.begin(), a.node_gpus.end()};
}

void expect_counters_equal(const ClusterState& s, const ReferenceState& r,
                           int vcs, std::size_t step) {
  ASSERT_EQ(s.busy_nodes(), r.busy_nodes()) << "step " << step;
  ASSERT_EQ(s.busy_gpus(), r.busy_gpus()) << "step " << step;
  ASSERT_EQ(s.active_nodes(), r.active_nodes()) << "step " << step;
  ASSERT_EQ(s.next_boot_ready().has_value(), r.next_boot_ready().has_value())
      << "step " << step;
  if (s.next_boot_ready()) {
    ASSERT_EQ(*s.next_boot_ready(), *r.next_boot_ready()) << "step " << step;
  }
  for (int vc = 0; vc < vcs; ++vc) {
    ASSERT_EQ(s.free_gpus(vc), r.free_gpus(vc)) << "vc " << vc << " step " << step;
    ASSERT_EQ(s.schedulable_gpus(vc), r.schedulable_gpus(vc))
        << "vc " << vc << " step " << step;
    ASSERT_EQ(s.capacity_gpus(vc), r.capacity_gpus(vc))
        << "vc " << vc << " step " << step;
    ASSERT_EQ(s.idle_active_nodes_in_vc(vc), r.idle_active_in_vc(vc))
        << "vc " << vc << " step " << step;
    ASSERT_EQ(s.booting_nodes_in_vc(vc), r.booting_in_vc(vc))
        << "vc " << vc << " step " << step;
    ASSERT_EQ(s.sleeping_nodes_in_vc(vc), r.sleeping_in_vc(vc))
        << "vc " << vc << " step " << step;
  }
}

void run_sweep(const trace::ClusterSpec& spec, std::uint64_t seed,
               std::size_t steps) {
  ClusterState state(spec);
  ReferenceState ref(spec);
  Rng rng(seed);
  const int vcs = state.vc_count();
  std::int64_t now = 0;

  struct Live {
    int vc;
    Allocation alloc;
  };
  std::vector<Live> live;

  for (std::size_t step = 0; step < steps; ++step) {
    const auto op = rng.uniform_index(10);
    const int vc = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(vcs)));
    now += static_cast<std::int64_t>(rng.uniform_index(200));
    switch (op) {
      case 0:
      case 1:
      case 2:
      case 3: {  // allocate: sizes biased to small, up to capacity + slack
        const int cap = state.capacity_gpus(vc);
        const int gpus = rng.uniform() < 0.7
                             ? 1 + static_cast<int>(rng.uniform_index(8))
                             : 1 + static_cast<int>(rng.uniform_index(
                                       static_cast<std::uint64_t>(cap + 4)));
        auto got = state.try_allocate(vc, gpus);
        auto want = ref.try_allocate(vc, gpus);
        ASSERT_EQ(got.has_value(), want.has_value())
            << "step " << step << " vc " << vc << " gpus " << gpus;
        if (got) {
          ASSERT_EQ(to_pairs(*got), *want)
              << "step " << step << " vc " << vc << " gpus " << gpus;
          live.push_back({vc, std::move(*got)});
        }
        break;
      }
      case 4:
      case 5: {  // release a random live allocation
        if (live.empty()) break;
        const std::size_t i = rng.uniform_index(live.size());
        state.release(live[i].alloc);
        ref.apply(to_pairs(live[i].alloc), +1);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 6: {  // SRTF-style rollback: release then reclaim
        if (live.empty()) break;
        const std::size_t i = rng.uniform_index(live.size());
        state.release(live[i].alloc);
        ref.apply(to_pairs(live[i].alloc), +1);
        expect_counters_equal(state, ref, vcs, step);
        state.reclaim(live[i].alloc);
        ref.apply(to_pairs(live[i].alloc), -1);
        break;
      }
      case 7: {  // sleep idle nodes (cluster-wide or per VC)
        const int count = static_cast<int>(rng.uniform_index(4));
        if (rng.uniform() < 0.5) {
          ASSERT_EQ(state.sleep_idle_nodes(count), ref.sleep_idle_nodes(count))
              << "step " << step;
        } else {
          ASSERT_EQ(state.sleep_idle_nodes_in_vc(vc, count),
                    ref.sleep_idle_nodes_in_vc(vc, count))
              << "step " << step;
        }
        break;
      }
      case 8: {  // wake nodes
        const int count = static_cast<int>(rng.uniform_index(4));
        const std::int64_t delay = 100 + static_cast<std::int64_t>(rng.uniform_index(300));
        if (rng.uniform() < 0.5) {
          ASSERT_EQ(state.wake_nodes(count, now, delay),
                    ref.wake_nodes(count, now, delay))
              << "step " << step;
        } else {
          ASSERT_EQ(state.wake_nodes_in_vc(vc, count, now, delay),
                    ref.wake_nodes_in_vc(vc, count, now, delay))
              << "step " << step;
        }
        break;
      }
      case 9: {  // boot completion
        state.finish_boots(now);
        ref.finish_boots(now);
        break;
      }
    }
    expect_counters_equal(state, ref, vcs, step);
  }
}

trace::ClusterSpec small_spec() {
  trace::ClusterSpec s;
  s.name = "small";
  s.gpus_per_node = 8;
  s.vcs = {{"vcA", 2, 8}, {"vcB", 5, 8}, {"vcC", 1, 8}};
  s.nodes = 8;
  return s;
}

trace::ClusterSpec heterogeneous_spec() {
  trace::ClusterSpec s;
  s.name = "hetero";
  s.gpus_per_node = 8;
  // Mixed GPU-per-node shapes, a 1-node VC, and a larger VC to force
  // multi-node gangs with remainders across bucket sizes.
  s.vcs = {{"v0", 4, 4}, {"v1", 12, 8}, {"v2", 1, 8}, {"v3", 7, 4}};
  s.nodes = 24;
  return s;
}

TEST(ClusterStateIndexed, SweepSmallSpec) {
  run_sweep(small_spec(), /*seed=*/0xC0FFEE, /*steps=*/2500);
}

TEST(ClusterStateIndexed, SweepHeterogeneousSpec) {
  run_sweep(heterogeneous_spec(), /*seed=*/0xBEEF, /*steps=*/2500);
}

TEST(ClusterStateIndexed, SweepManySeeds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    run_sweep(small_spec(), seed, 800);
    run_sweep(heterogeneous_spec(), seed ^ 0x5A5A, 800);
  }
}

TEST(ClusterStateIndexed, GangRemainderPrefersPartialNode) {
  // 20 GPUs on 8-GPU nodes: two full nodes + 4-GPU remainder. With a
  // 4-GPU-free partial node available, the remainder must land there (best
  // fit), not on a third fully-free node.
  trace::ClusterSpec s;
  s.name = "gang";
  s.gpus_per_node = 8;
  s.vcs = {{"v", 4, 8}};
  s.nodes = 4;
  ClusterState cs(s);
  auto half = cs.try_allocate(0, 4);  // node 0 now has 4 free
  ASSERT_TRUE(half.has_value());
  auto gang = cs.try_allocate(0, 20);
  ASSERT_TRUE(gang.has_value());
  ASSERT_EQ(gang->node_gpus.size(), 3u);
  EXPECT_EQ(gang->node_gpus[0].first, 1);
  EXPECT_EQ(gang->node_gpus[1].first, 2);
  EXPECT_EQ(gang->node_gpus[2].first, 0);  // remainder on the partial node
  EXPECT_EQ(gang->node_gpus[2].second, 4);
}

TEST(ClusterStateIndexed, GangRemainderFallsBackToFullyFreeNode) {
  trace::ClusterSpec s;
  s.name = "gang2";
  s.gpus_per_node = 8;
  s.vcs = {{"v", 3, 8}};
  s.nodes = 3;
  ClusterState cs(s);
  // No partial nodes: 20 GPUs = nodes 0,1 full + remainder on node 2.
  auto gang = cs.try_allocate(0, 20);
  ASSERT_TRUE(gang.has_value());
  ASSERT_EQ(gang->node_gpus.size(), 3u);
  EXPECT_EQ(gang->node_gpus[2].first, 2);
  EXPECT_EQ(gang->node_gpus[2].second, 4);
  EXPECT_EQ(cs.free_gpus(0), 4);
}

}  // namespace
}  // namespace helios::sim
