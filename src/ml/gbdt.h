// Hand-rolled histogram gradient-boosted decision trees (regression,
// squared loss) — the library's stand-in for LightGBM, which the paper uses
// for both the QSSF duration model and the CES node forecaster.
//
// Training follows the histogram algorithm: features are quantile-binned once
// (<= max_bins buckets); each tree picks splits from per-feature gradient
// histograms by best variance gain; leaves output the shrunk mean residual.
// Row subsampling per tree gives stochastic boosting.
//
// Two engines share the scaffolding (binning, row caps, subsampling,
// residuals — identical RNG streams) and must produce bit-identical models:
//
//  * GBDTEngine::kHistogram (default) keeps persistent per-node row sets,
//    builds only the smaller child's histograms and derives the sibling by
//    subtracting from the parent, accumulates histograms row-parallel into
//    per-chunk buffers merged on the shared ThreadPool, and tracks each
//    sampled row's leaf during construction so the per-tree prediction
//    update is an O(1) lookup per row over the binned matrix.
//  * GBDTEngine::kReference retains the straightforward pre-histogram-engine
//    trainer: every node rebuilds its histograms from scratch and the
//    prediction update re-traverses raw features row by row. It exists as
//    the parity baseline (mirroring common::ExecMode::kSerial).
//
// Bit-for-bit parity across engines and thread counts is possible because
// per-tree gradients are quantized to int64 (QuantizedGradients): integer
// histogram sums are exact under any accumulation order and under sibling
// subtraction, so split decisions and leaf values cannot drift.
//
// The histogram engine's two hottest loops — histogram accumulation and the
// batched predict_many walk — additionally have AVX2 forms (ml/gbdt_kernels.h)
// selected at runtime via common::simd_enabled(); both are bit-identical to
// their scalar twins (integer adds reassociate exactly; the forest walk
// performs the same mul/add per row), so dispatch changes speed only.
// Training-set size is unbounded: nodes whose row count reaches the packed
// 24-bit limit accumulate shard-by-shard into a wide two-field histogram
// merged exactly in int64 (gbdt_set_packed_row_limit lets tests drive the
// shard path at small n).
//
// Determinism: fit() is a pure function of (dataset, config) — the same
// inputs produce the same trees bit-for-bit on any thread count and either
// engine (test_prediction_parity pins this). predict()/predict_many() are
// pure functions of the fitted model, and a model restored via load() (see
// docs/FORMATS.md, "GBDT" section) predicts bit-identically to the original
// (test_serialize pins this).
//
// Thread-safety: fit() and load() mutate the model and must not race with
// anything; the const members (predict, predict_many, accessors) are safe to
// call concurrently from any number of threads once training/loading has
// completed. fit() and predict_many() internally parallelize on the shared
// global_pool(), so they must not be called from inside a pool task that
// blocks on them (use parallel_run_tasks for such nesting).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace helios::serialize {
class Reader;
class Writer;
}  // namespace helios::serialize

namespace helios::ml {

enum class GBDTEngine {
  kHistogram,  ///< sibling-subtraction histogram engine (default)
  kReference,  ///< retained from-scratch trainer (parity/benchmark baseline)
};

struct GBDTConfig {
  int n_trees = 80;
  int max_depth = 6;
  double learning_rate = 0.10;
  int min_samples_leaf = 20;
  double subsample = 0.8;   ///< row fraction per tree
  int max_bins = 64;        ///< clamped to 256 (bin ids travel as uint8)
  double lambda = 1.0;      ///< L2 regularisation on leaf values
  std::uint64_t seed = 42;
  /// Cap on training rows (uniform subsample above it); 0 = no cap.
  std::size_t max_training_rows = 0;
  GBDTEngine engine = GBDTEngine::kHistogram;
};

/// Per-tree gradients quantized to a fixed-point int64 grid. The scale is a
/// power of two chosen so the sum over every training row cannot overflow;
/// int64 histogram sums are then exact and order-independent, which is what
/// makes engine/thread-count parity bit-for-bit instead of approximate.
struct QuantizedGradients {
  /// Per-row quantized gradient; fits int32 by construction (the scale caps
  /// |q| below 2^30), halving the memory traffic of every histogram pass.
  std::vector<std::int32_t> q;
  double inv_scale = 1.0;  ///< exact power of two; value = q * inv_scale

  /// Requantize in place (reuses the q buffer across boosting iterations).
  void assign(std::span<const double> gradients);
  /// Same, with max|gradient| already known (callers fuse the scan into the
  /// residual pass).
  void assign(std::span<const double> gradients, double max_abs);

  [[nodiscard]] static QuantizedGradients from(std::span<const double> gradients) {
    QuantizedGradients out;
    out.assign(gradients);
    return out;
  }
};

/// One regression tree over binned features (used internally by the GBDT and
/// exposed for unit testing).
class RegressionTree {
 public:
  struct Node {
    // Leaf iff feature < 0.
    std::int32_t feature = -1;
    std::int32_t split_bin = -1;  ///< go left iff bin(value) <= split_bin
    double threshold = 0.0;  ///< raw-unit equivalent: go left iff value <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;  ///< leaf output
    double gain = 0.0;   ///< split gain (for feature importance)
  };

  /// Fit to the quantized gradients of `rows` over the binned matrix
  /// (row-major for kHistogram, column-major for kReference). `rows` is the
  /// persistent row set, partitioned in place per node. `leaf_of` must have
  /// X.rows entries; the leaf node id of every row in `rows` is recorded
  /// there (other entries are left untouched).
  void fit(const BinnedMatrix& x, const FeatureBinner& binner,
           const QuantizedGradients& grad, std::span<std::uint32_t> rows,
           std::span<std::int32_t> leaf_of, const GBDTConfig& cfg);

  [[nodiscard]] double predict(std::span<const double> features) const noexcept;
  /// Leaf node id reached by binned traversal of `row` (exactly the leaf
  /// predict() reaches on the raw values, since bin <= split_bin iff
  /// value <= threshold).
  [[nodiscard]] std::int32_t leaf_for_binned(const BinnedMatrix& x,
                                             std::size_t row) const noexcept;
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

  /// Persist / restore the node array ("TREE" section, docs/FORMATS.md).
  /// load() validates the tree shape (preorder child links, in-range feature
  /// ids against `n_features`) so a corrupt file cannot make predict() read
  /// out of bounds or loop forever; it throws serialize::Error instead.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r, std::size_t n_features);

 private:
  std::vector<Node> nodes_;
};

/// Test/bench hooks for the histogram sharding machinery. Node histograms
/// with at least `limit` rows switch from packed single-int64 buckets to the
/// wide (separate sum/count) representation built shard-by-shard; the default
/// (and the cap restored by passing 0) is 2^24, the packed count width.
/// Returns the previous limit. Not for concurrent use with a running fit().
std::size_t gbdt_set_packed_row_limit(std::size_t limit) noexcept;
/// Number of wide (sharded) histogram builds since process start — lets the
/// shard-path tests prove the wide representation actually ran.
[[nodiscard]] std::uint64_t gbdt_wide_histogram_builds() noexcept;

/// Contiguous SoA flattening of a fitted forest for batched inference: all
/// trees' nodes live in four parallel arrays indexed by a global node id, so
/// the SIMD walk gathers split/child/value with single indexed loads instead
/// of chasing 36-byte Node structs.
///
/// Encoding: split[i] = (feature << 8) | split_bin for interior nodes; a
/// leaf stores split_bin = 255 with feature 0 and children pointing at
/// itself — since bin ids are uint8, every row compares <= 255 and
/// self-loops, which makes a fixed-depth walk branchless (depth[t] is the
/// tree's maximum leaf depth; walking exactly that many steps parks every
/// row in its leaf).
/// Implicit-heap SoA layout of a fitted forest for the SIMD predict walk.
///
/// Every tree is padded to the forest-wide depth `levels` (leaves shallower
/// than that are replicated into both phantom children all the way down), so
/// a walk needs no child pointers at all: from heap slot i the next slot is
/// 2*i + 1 + go_right, and after `levels` steps the slot index maps straight
/// into the per-tree leaf-value row. That turns the inner predict step from
/// three dependent gathers (split, bins, child) into two (split, bins) plus
/// pure arithmetic — the child array of the previous layout is gone.
///
/// Memory is n_trees * (2^levels - 1) int32 splits + n_trees * 2^levels
/// double leaves; build() refuses forests deeper than kMaxLevels (leaving
/// the forest empty, which routes predict_many to the scalar tree-at-a-time
/// path instead).
struct PackedForest {
  std::int32_t n_trees = 0;
  std::int32_t levels = 0;          ///< uniform padded depth of every tree
  std::vector<std::int32_t> split;  ///< n_trees x (2^levels - 1), heap order;
                                    ///< (feature << 8) | split_bin, phantom
                                    ///< slots hold 0xff (feature 0, bin 255)
  std::vector<double> value;        ///< n_trees x 2^levels deepest-level leaves

  static constexpr std::int32_t kMaxLevels = 12;

  /// Rebuild from fitted trees (replaces any previous layout).
  void build(std::span<const RegressionTree> trees);
  [[nodiscard]] bool empty() const noexcept { return n_trees == 0; }
};

class GBDTRegressor {
 public:
  explicit GBDTRegressor(GBDTConfig config = {}) : config_(config) {}

  /// Train on the dataset; replaces any previous model.
  void fit(const Dataset& data);

  [[nodiscard]] double predict(std::span<const double> features) const noexcept;
  /// Batched inference: bins `data` once and walks it tree-at-a-time,
  /// row-parallel. Bitwise-identical to calling predict() per row.
  [[nodiscard]] std::vector<double> predict_many(const Dataset& data) const;

  /// Total split gain accumulated per feature.
  [[nodiscard]] std::vector<double> feature_importance() const;

  /// Training RMSE after each boosting iteration (for convergence tests).
  [[nodiscard]] const std::vector<double>& training_rmse() const noexcept {
    return train_rmse_;
  }
  [[nodiscard]] const GBDTConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool trained() const noexcept { return !trees_.empty(); }
  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }
  [[nodiscard]] const std::vector<RegressionTree>& trees() const noexcept {
    return trees_;
  }
  [[nodiscard]] const FeatureBinner& binner() const noexcept { return binner_; }
  /// SoA node layout the SIMD predict path walks (rebuilt by fit()/load()).
  [[nodiscard]] const PackedForest& forest() const noexcept { return forest_; }

  /// Persist the fitted model ("GBDT" section, docs/FORMATS.md): config,
  /// base prediction, binner edges, every tree, and the training-RMSE
  /// curve. Wrap with serialize::save_file for the on-disk frame.
  void save(serialize::Writer& w) const;
  /// Replace this model with the persisted one. The loaded model predicts
  /// bit-identically to the saved one (predict and predict_many). Throws
  /// serialize::Error on malformed input, leaving no partially-adopted
  /// state behind.
  void load(serialize::Reader& r);

 private:
  GBDTConfig config_;
  double base_prediction_ = 0.0;
  std::size_t n_features_ = 0;
  FeatureBinner binner_;
  std::vector<RegressionTree> trees_;
  std::vector<double> train_rmse_;
  PackedForest forest_;  // derived from trees_; rebuilt by fit()/load()
};

}  // namespace helios::ml
