#include "sweep/trace_store.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace helios::sweep {

std::string_view to_string(TraceFamily f) noexcept {
  switch (f) {
    case TraceFamily::kHelios:
      return "helios";
    case TraceFamily::kPhilly:
      return "philly";
    case TraceFamily::kPai:
      return "pai";
    case TraceFamily::kCustom:
      return "custom";
  }
  return "?";
}

std::string TraceKey::str() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, " seed=%llu scale=%g",
                static_cast<unsigned long long>(seed), scale);
  std::string s{to_string(family)};
  if (!name.empty()) s += ":" + name;
  s += buf;
  if (operated) s += " operated";
  return s;
}

TraceKey TraceKey::workload(const std::string& cluster_name, std::uint64_t seed,
                            double scale, bool operated) {
  TraceKey k;
  k.name = cluster_name;
  k.seed = seed;
  k.scale = scale;
  k.operated = operated;
  if (cluster_name == "Philly") {
    k.family = TraceFamily::kPhilly;
  } else if (cluster_name == "PAI") {
    k.family = TraceFamily::kPai;
  } else {
    k.family = TraceFamily::kHelios;
    // Validates the name (throws std::invalid_argument on an unknown one).
    (void)trace::helios_cluster(cluster_name);
  }
  return k;
}

TraceStore::TracePtr TraceStore::get(const TraceKey& key) {
  std::promise<TracePtr> promise;
  std::shared_future<TracePtr> fut;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      fut = promise.get_future().share();
      entries_.emplace(key, fut);
      builder = true;
    } else {
      fut = it->second;
    }
  }
  if (!builder) {
    TracePtr t = fut.get();  // rethrows the builder's exception, if any
    std::lock_guard<std::mutex> lock(mutex_);
    ++hits_;
    return t;
  }
  // Builder path: materialize without holding the lock so independent keys
  // build concurrently and operated keys can fetch their raw sibling.
  try {
    TracePtr t = materialize(key);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++generations_;
    }
    promise.set_value(t);
    return t;
  } catch (...) {
    // Un-publish the failed key so a later request can retry (or fail with
    // its own error), then propagate.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      entries_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

TraceStore::TracePtr TraceStore::put(const TraceKey& key, trace::Trace t) {
  std::shared_future<TracePtr> existing;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      std::promise<TracePtr> promise;
      auto ptr = std::make_shared<const trace::Trace>(std::move(t));
      promise.set_value(ptr);
      entries_.emplace(key, promise.get_future().share());
      ++generations_;
      return ptr;
    }
    existing = it->second;
  }
  return existing.get();
}

TraceStore::TracePtr TraceStore::materialize(const TraceKey& key) {
  if (key.operated) {
    TraceKey raw = key;
    raw.operated = false;
    TracePtr base = get(raw);
    trace::Trace copy = *base;
    sim::operate_fifo(copy);
    return std::make_shared<const trace::Trace>(std::move(copy));
  }
  switch (key.family) {
    case TraceFamily::kHelios:
      return std::make_shared<const trace::Trace>(
          trace::SyntheticTraceGenerator(
              trace::GeneratorConfig::helios(trace::helios_cluster(key.name),
                                             key.seed, key.scale))
              .generate());
    case TraceFamily::kPhilly:
      return std::make_shared<const trace::Trace>(
          trace::generate_philly(key.seed, key.scale));
    case TraceFamily::kPai:
      return std::make_shared<const trace::Trace>(
          trace::generate_pai(key.seed, key.scale));
    case TraceFamily::kCustom:
      break;
  }
  throw std::invalid_argument("TraceStore: custom trace never put(): " +
                              key.str());
}

std::int64_t TraceStore::generations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generations_;
}

std::int64_t TraceStore::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace helios::sweep
