#include "core/qssf_service.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "common/civil_time.h"
#include "common/thread_pool.h"
#include "serialize/binary.h"

namespace helios::core {

using trace::JobRecord;
using trace::Trace;

ml::GBDTConfig QssfConfig::default_gbdt_config() {
  ml::GBDTConfig cfg;
  cfg.n_trees = 60;
  cfg.max_depth = 6;
  cfg.learning_rate = 0.12;
  cfg.min_samples_leaf = 30;
  cfg.subsample = 0.7;
  cfg.max_bins = 64;
  cfg.max_training_rows = 200'000;  // keeps multi-month fits to seconds
  return cfg;
}

// ---------------------------------------------------------------------------
// RollingEstimator
// ---------------------------------------------------------------------------

const RollingEstimator::NameEntry* RollingEstimator::find_name(
    const UserHistory& u, const std::string& name) const {
  const NameEntry* best = nullptr;
  double best_dist = name_match_threshold_;
  for (const auto& e : u.names) {
    if (e.name == name) return &e;  // exact hit wins immediately
    const auto limit = static_cast<std::size_t>(std::floor(
        name_match_threshold_ *
        static_cast<double>(std::max(e.name.size(), name.size()))));
    if (!ml::within_distance(e.name, name, limit)) continue;
    const double d = ml::normalized_levenshtein(e.name, name);
    if (d <= best_dist) {
      best_dist = d;
      best = &e;
    }
  }
  return best;
}

std::uint64_t RollingEstimator::dedupe_key(const JobRecord& job) noexcept {
  // Keyed on job identity *content* (id + submit + duration + demand +
  // user), not the id alone — independently built traces restart ids at 0,
  // and an id collision across lineages must not silently drop a genuinely
  // new observation.
  std::uint64_t key = job.job_id;
  key = (key ^ static_cast<std::uint64_t>(job.submit_time)) * 0x9e3779b97f4a7c15ULL;
  key = (key ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(job.duration))
                 << 32) |
                ((static_cast<std::uint64_t>(job.user) << 8) ^
                 static_cast<std::uint32_t>(job.num_gpus)))) *
        0xbf58476d1ce4e5b9ULL;
  return key;
}

void RollingEstimator::observe(const Trace& t, const JobRecord& job) {
  if (!job.is_gpu_job()) return;
  // Dedupe: the Model Update Engine may be fed cumulative traces
  // (QssfService::update), and re-observing a job would double-count the
  // global/user sums and re-decay the name EWMAs.
  if (!observed_ids_.insert(dedupe_key(job)).second) return;
  const double dur = static_cast<double>(job.duration);
  ++observe_counter_;

  auto& g = global_by_gpus_[job.num_gpus];
  g.first += dur;
  ++g.second;
  global_duration_sum_ += dur;
  ++global_jobs_;

  UserHistory& u = users_[t.user_name(job)];
  auto& ug = u.by_gpus[job.num_gpus];
  ug.first += dur;
  ++ug.second;
  u.duration_sum += dur;
  ++u.jobs;

  if (!use_names_) return;  // limited-information mode
  const std::string& name = t.job_name(job);
  if (auto* e = const_cast<NameEntry*>(find_name(u, name))) {
    // Exponentially-weighted rolling duration (newest dominates).
    e->ewma_duration = rolling_decay_ * e->ewma_duration +
                       (1.0 - rolling_decay_) * dur;
    e->weight = rolling_decay_ * e->weight + (1.0 - rolling_decay_);
    e->last_seen = observe_counter_;
  } else {
    if (u.names.size() >= max_names_per_user_) {
      // Evict the least-recently-seen entry.
      auto oldest = std::min_element(u.names.begin(), u.names.end(),
                                     [](const NameEntry& a, const NameEntry& b) {
                                       return a.last_seen < b.last_seen;
                                     });
      u.names.erase(oldest);
    }
    NameEntry fresh;
    fresh.name = name;
    fresh.ewma_duration = (1.0 - rolling_decay_) * dur;
    fresh.weight = 1.0 - rolling_decay_;
    fresh.last_seen = observe_counter_;
    u.names.push_back(std::move(fresh));
  }
}

double RollingEstimator::estimate(const Trace& t, const JobRecord& job) const {
  return estimate(t.user_name(job), t.job_name(job), job.num_gpus);
}

double RollingEstimator::estimate(const std::string& user,
                                  const std::string& job_name,
                                  int num_gpus) const {
  const auto user_it = users_.find(user);
  if (user_it == users_.end()) {
    // New user: cluster-wide mean duration for this GPU demand (line 14).
    const auto it = global_by_gpus_.find(num_gpus);
    if (it != global_by_gpus_.end() && it->second.second > 0) {
      return it->second.first / static_cast<double>(it->second.second);
    }
    return global_jobs_ > 0 ? global_duration_sum_ / static_cast<double>(global_jobs_)
                            : 600.0;
  }
  const UserHistory& u = user_it->second;
  if (use_names_) {
    if (const NameEntry* e = find_name(u, job_name);
        e != nullptr && e->weight > 0.0) {
      // Similar name: exponentially-weighted decay of its durations (line 18).
      return e->ewma_duration / e->weight;
    }
  }
  // Known user, new job name: user's mean for this GPU demand (line 16).
  const auto it = u.by_gpus.find(num_gpus);
  if (it != u.by_gpus.end() && it->second.second > 0) {
    return it->second.first / static_cast<double>(it->second.second);
  }
  return u.jobs > 0 ? u.duration_sum / static_cast<double>(u.jobs) : 600.0;
}

// ---------------------------------------------------------------------------
// RollingOverlay
// ---------------------------------------------------------------------------

RollingOverlay::RollingOverlay()
    : arena_(std::make_unique<common::MonotonicArena>()),
      delta_(std::make_unique<RollingEstimator>(arena_.get())) {}

RollingOverlay::RollingOverlay(std::shared_ptr<const RollingEstimator> base)
    : base_(std::move(base)),
      arena_(std::make_unique<common::MonotonicArena>()),
      delta_(std::make_unique<RollingEstimator>(arena_.get())) {
  if (!base_) return;
  // The delta starts as the base minus its per-user map and dedupe set:
  // knobs and global fallbacks copy over (globals advance on every observe,
  // so they must live in the delta), user histories materialize lazily.
  delta_->use_names_ = base_->use_names_;
  delta_->name_match_threshold_ = base_->name_match_threshold_;
  delta_->rolling_decay_ = base_->rolling_decay_;
  delta_->max_names_per_user_ = base_->max_names_per_user_;
  delta_->global_by_gpus_ = base_->global_by_gpus_;
  delta_->global_duration_sum_ = base_->global_duration_sum_;
  delta_->global_jobs_ = base_->global_jobs_;
  delta_->observe_counter_ = base_->observe_counter_;
}

RollingOverlay::RollingOverlay(const RollingOverlay& other)
    : base_(other.base_),
      arena_(std::make_unique<common::MonotonicArena>()),
      delta_(std::make_unique<RollingEstimator>(*other.delta_, arena_.get())) {}

RollingOverlay& RollingOverlay::operator=(const RollingOverlay& other) {
  if (this != &other) *this = RollingOverlay(other);
  return *this;
}

RollingOverlay& RollingOverlay::operator=(RollingOverlay&& other) noexcept {
  if (this != &other) {
    // Order matters: retire the old delta while the old arena is still
    // alive (its container destructors make virtual deallocate calls on
    // the resource), then the arena, then adopt the incoming pointers.
    delta_ = std::move(other.delta_);
    arena_ = std::move(other.arena_);
    base_ = std::move(other.base_);
  }
  return *this;
}

void RollingOverlay::observe(const Trace& t, const JobRecord& job) {
  if (!base_) {
    delta_->observe(t, job);
    return;
  }
  if (!job.is_gpu_job()) return;
  // The base's dedupe set is checked here (it never migrates into the
  // delta); a job the base already folded in must stay a no-op.
  if (base_->observed_ids_.contains(RollingEstimator::dedupe_key(job))) return;
  const std::string& user = t.user_name(job);
  if (!delta_->users_.contains(user)) {
    if (const auto it = base_->users_.find(user); it != base_->users_.end()) {
      delta_->users_.emplace(user, it->second);  // copy-on-first-touch
    }
  }
  delta_->observe(t, job);
}

double RollingOverlay::estimate(const Trace& t, const JobRecord& job) const {
  return estimate(t.user_name(job), t.job_name(job), job.num_gpus);
}

double RollingOverlay::estimate(const std::string& user,
                                const std::string& job_name,
                                int num_gpus) const {
  // Route by history ownership: a delta user has the evolved copy; a
  // base-only user's estimate never reads the global fallbacks (known users
  // have jobs >= 1), so the base answers bit-identically; an unknown user
  // needs the *live* globals, which the delta carries.
  if (base_ && !delta_->users_.contains(user) && base_->users_.contains(user)) {
    return base_->estimate(user, job_name, num_gpus);
  }
  return delta_->estimate(user, job_name, num_gpus);
}

RollingEstimator RollingOverlay::materialize() const {
  // Both returns produce a default-resource estimator (plain copies go
  // through select_on_container_copy_construction), so the result is free
  // to outlive this overlay's arena.
  if (!base_) return *delta_;
  RollingEstimator out = *base_;
  out.global_by_gpus_ = delta_->global_by_gpus_;
  out.global_duration_sum_ = delta_->global_duration_sum_;
  out.global_jobs_ = delta_->global_jobs_;
  out.observe_counter_ = delta_->observe_counter_;
  for (const auto& [user, hist] : delta_->users_) out.users_[user] = hist;
  out.observed_ids_.insert(delta_->observed_ids_.begin(),
                           delta_->observed_ids_.end());
  return out;
}

// ---------------------------------------------------------------------------
// Persistence (docs/FORMATS.md)
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kRollingTag = serialize::fourcc("ROLL");
constexpr std::uint32_t kRollingVersion = 1;
constexpr std::uint32_t kQssfTag = serialize::fourcc("QSSF");
constexpr std::uint32_t kQssfVersion = 1;

/// (sum, count) pairs of an unordered map, keys sorted — canonical bytes.
void save_by_gpus(
    serialize::Writer& w,
    const std::unordered_map<int, std::pair<double, std::int64_t>>& m) {
  std::vector<std::pair<int, std::pair<double, std::int64_t>>> sorted(
      m.begin(), m.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(sorted.size());
  for (const auto& [gpus, sum_n] : sorted) {
    w.i32(gpus);
    w.f64(sum_n.first);
    w.i64(sum_n.second);
  }
}

std::unordered_map<int, std::pair<double, std::int64_t>> load_by_gpus(
    serialize::Reader& r) {
  const std::size_t n = r.length(20);  // i32 + f64 + i64
  std::unordered_map<int, std::pair<double, std::int64_t>> m;
  m.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int gpus = r.i32();
    const double sum = r.f64();
    const std::int64_t count = r.i64();
    m[gpus] = {sum, count};
  }
  return m;
}

}  // namespace

void RollingEstimator::save(serialize::Writer& w) const {
  w.begin_section(kRollingTag);
  w.u32(kRollingVersion);
  w.u8(use_names_ ? 1 : 0);
  w.f64(name_match_threshold_);
  w.f64(rolling_decay_);
  w.u64(max_names_per_user_);
  w.f64(global_duration_sum_);
  w.i64(global_jobs_);
  w.u64(observe_counter_);
  save_by_gpus(w, global_by_gpus_);

  // Users sorted by name for canonical bytes; each user's name entries keep
  // their vector (insertion) order, which find_name's scan depends on.
  std::vector<const std::pair<const std::string, UserHistory>*> users;
  users.reserve(users_.size());
  for (const auto& kv : users_) users.push_back(&kv);
  std::sort(users.begin(), users.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  w.u64(users.size());
  for (const auto* kv : users) {
    w.str(kv->first);
    const UserHistory& u = kv->second;
    w.f64(u.duration_sum);
    w.i64(u.jobs);
    save_by_gpus(w, u.by_gpus);
    w.u64(u.names.size());
    for (const NameEntry& e : u.names) {
      w.str(e.name);
      w.f64(e.ewma_duration);
      w.f64(e.weight);
      w.u64(e.last_seen);
    }
  }

  std::vector<std::uint64_t> ids(observed_ids_.begin(), observed_ids_.end());
  std::sort(ids.begin(), ids.end());
  w.vec_u64(ids);
  w.end_section();
}

void RollingEstimator::load(serialize::Reader& r) {
  serialize::Reader s = r.section(kRollingTag);
  const std::uint32_t version = s.u32();
  if (version != kRollingVersion) {
    throw serialize::Error(serialize::ErrorCode::kUnsupportedVersion,
                           "rolling section version " + std::to_string(version));
  }
  RollingEstimator out;
  out.use_names_ = s.u8() != 0;
  out.name_match_threshold_ = s.f64();
  out.rolling_decay_ = s.f64();
  out.max_names_per_user_ = static_cast<std::size_t>(s.u64());
  out.global_duration_sum_ = s.f64();
  out.global_jobs_ = s.i64();
  out.observe_counter_ = s.u64();
  out.global_by_gpus_ = load_by_gpus(s);

  const std::size_t n_users = s.length(8);
  out.users_.reserve(n_users);
  for (std::size_t i = 0; i < n_users; ++i) {
    std::string user = s.str();
    UserHistory u;
    u.duration_sum = s.f64();
    u.jobs = s.i64();
    u.by_gpus = load_by_gpus(s);
    const std::size_t n_names = s.length(8);
    u.names.resize(n_names);
    for (NameEntry& e : u.names) {
      e.name = s.str();
      e.ewma_duration = s.f64();
      e.weight = s.f64();
      e.last_seen = s.u64();
    }
    out.users_.emplace(std::move(user), std::move(u));
  }

  const std::vector<std::uint64_t> ids = s.vec_u64();
  out.observed_ids_.reserve(ids.size());
  out.observed_ids_.insert(ids.begin(), ids.end());
  s.close("rolling");
  *this = std::move(out);
}

// ---------------------------------------------------------------------------
// QssfService
// ---------------------------------------------------------------------------

QssfService::QssfService(QssfConfig config)
    : config_(config),
      model_(config.gbdt),
      name_buckets_(config.name_match_threshold, /*prefix_len=*/6),
      rolling_(config) {}

void QssfService::encode(const Trace& t, const JobRecord& job,
                         std::vector<double>& out) const {
  out.clear();
  out.reserve(kFeatureCount);
  const CivilTime c = to_civil(job.submit_time);
  out.push_back(static_cast<double>(job.num_gpus));
  out.push_back(static_cast<double>(job.num_cpus));
  out.push_back(static_cast<double>(job.vc));
  out.push_back(static_cast<double>(job.user));
  out.push_back(config_.use_names
                    ? static_cast<double>(name_buckets_.bucket(t.job_name(job)))
                    : 0.0);
  out.push_back(static_cast<double>(c.month));
  out.push_back(static_cast<double>(c.weekday));
  out.push_back(static_cast<double>(c.hour));
  out.push_back(static_cast<double>(c.minute));
}

ml::Dataset QssfService::encode_jobs(
    const Trace& t, std::span<const std::uint32_t> job_indices) const {
  ml::Dataset data(kFeatureCount);
  data.reserve(job_indices.size());
  std::vector<double> row;
  for (const std::uint32_t i : job_indices) {
    encode(t, t.jobs()[i], row);
    data.add_row(row, 0.0);
  }
  return data;
}

void QssfService::observe(const Trace& t, const JobRecord& job) {
  rolling_.observe(t, job);
}

void QssfService::fit(const Trace& history) {
  // Rolling structures (job ids already folded in are skipped).
  for (const auto& job : history.jobs()) rolling_.observe(history, job);

  // GBDT on log-duration.
  ml::Dataset data(kFeatureCount);
  std::vector<double> row;
  for (const auto& job : history.jobs()) {
    if (!job.is_gpu_job()) continue;
    encode(history, job, row);
    data.add_row(row, std::log1p(static_cast<double>(job.duration)));
  }
  model_.fit(data);
}

void QssfService::update(const Trace& new_data) { fit(new_data); }

void QssfService::save(serialize::Writer& w) const {
  w.begin_section(kQssfTag);
  w.u32(kQssfVersion);
  w.f64(config_.lambda);
  w.f64(config_.name_match_threshold);
  w.f64(config_.rolling_decay);
  w.u64(config_.max_names_per_user);
  w.u8(config_.use_names ? 1 : 0);
  model_.save(w);  // carries config_.gbdt inside the GBDT section
  name_buckets_.save(w);
  rolling_.save(w);
  w.end_section();
}

void QssfService::load(serialize::Reader& r) {
  serialize::Reader s = r.section(kQssfTag);
  const std::uint32_t version = s.u32();
  if (version != kQssfVersion) {
    throw serialize::Error(serialize::ErrorCode::kUnsupportedVersion,
                           "qssf section version " + std::to_string(version));
  }
  QssfConfig cfg;
  cfg.lambda = s.f64();
  cfg.name_match_threshold = s.f64();
  cfg.rolling_decay = s.f64();
  cfg.max_names_per_user = static_cast<std::size_t>(s.u64());
  cfg.use_names = s.u8() != 0;
  ml::GBDTRegressor model;
  model.load(s);
  // encode() always hands predict() a kFeatureCount-element row; a trained
  // model expecting any other width would index past it. (GBDT load already
  // guarantees binner width == the model's feature count when trained.)
  if (model.trained() && model.binner().features() != kFeatureCount) {
    throw serialize::Error(
        serialize::ErrorCode::kCorrupt,
        "qssf model expects " + std::to_string(model.binner().features()) +
            " features, service encodes " + std::to_string(kFeatureCount));
  }
  cfg.gbdt = model.config();
  ml::NameBucketizer buckets;
  buckets.load(s);
  RollingEstimator rolling;
  rolling.load(s);
  s.close("qssf");

  config_ = cfg;
  model_ = std::move(model);
  name_buckets_ = std::move(buckets);
  rolling_ = std::move(rolling);
}

double QssfService::rolling_estimate(const Trace& t, const JobRecord& job) const {
  return rolling_.estimate(t, job);
}

double QssfService::ml_estimate(const Trace& t, const JobRecord& job) const {
  if (!model_.trained()) return rolling_.estimate(t, job);
  std::vector<double> row;
  encode(t, job, row);
  return std::max(1.0, std::expm1(model_.predict(row)));
}

double QssfService::predict_duration(const Trace& t, const JobRecord& job) const {
  const double pr = rolling_estimate(t, job);
  const double pm = ml_estimate(t, job);
  return config_.lambda * pr + (1.0 - config_.lambda) * pm;
}

double QssfService::priority(const Trace& t, const JobRecord& job) const {
  return combine(config_, rolling_estimate(t, job), ml_estimate(t, job), job);
}

void QssfService::encode_frozen(const JobQuery& query,
                                std::vector<double>& out) const {
  // Column-for-column the layout of encode(); the name bucket comes from the
  // const lookup, with an unseen name mapped to bucket_count() — the id
  // bucket() would mint for it, so freezing never changes a feature value.
  out.clear();
  out.reserve(kFeatureCount);
  const CivilTime c = to_civil(query.submit_time);
  out.push_back(static_cast<double>(query.num_gpus));
  out.push_back(static_cast<double>(query.num_cpus));
  out.push_back(static_cast<double>(query.vc_id));
  out.push_back(static_cast<double>(query.user_id));
  double bucket = 0.0;
  if (config_.use_names) {
    const std::uint32_t b = name_buckets_.lookup(query.job_name);
    bucket = static_cast<double>(
        b == ml::NameBucketizer::kNoBucket ? name_buckets_.bucket_count() : b);
  }
  out.push_back(bucket);
  out.push_back(static_cast<double>(c.month));
  out.push_back(static_cast<double>(c.weekday));
  out.push_back(static_cast<double>(c.hour));
  out.push_back(static_cast<double>(c.minute));
}

double QssfService::predict_duration(const JobQuery& query) const {
  const double pr = rolling_.estimate(query.user, query.job_name, query.num_gpus);
  double pm = pr;
  if (model_.trained()) {
    std::vector<double> row;
    encode_frozen(query, row);
    pm = std::max(1.0, std::expm1(model_.predict(row)));
  }
  return config_.lambda * pr + (1.0 - config_.lambda) * pm;
}

double QssfService::priority(const JobQuery& query) const {
  return static_cast<double>(std::max(1, static_cast<int>(query.num_gpus))) *
         predict_duration(query);
}

// ---------------------------------------------------------------------------
// OnlinePriorityEvaluator
// ---------------------------------------------------------------------------

OnlinePriorityEvaluator::OnlinePriorityEvaluator(QssfService& service,
                                                 const Trace& eval,
                                                 EvalOptions options) {
  if (options.execution == common::ExecMode::kSerial) {
    run_serial(service, eval);
  } else {
    run_chunked(service, eval, options);
  }
}

void OnlinePriorityEvaluator::run_serial(QssfService& service,
                                         const Trace& eval) {
  ReplayQueue pending;
  priorities_.reserve(eval.size());
  for (std::size_t i = 0; i < eval.size(); ++i) {
    const JobRecord& job = eval.jobs()[i];
    if (!job.is_gpu_job()) continue;
    // Fold in every job that has (approximately) finished by now; queuing
    // delay is unknown at this point, so submit+duration approximates the
    // termination feed of the Model Update Engine.
    pending.drain(job.submit_time, [&](std::uint32_t idx) {
      service.rolling_.observe(eval, eval.jobs()[idx]);
    });
    const double p = service.priority(eval, job);
    priorities_.emplace(job.job_id, p);
    predicted_.push_back(p);
    actual_.push_back(job.gpu_time());
    pending.push(job, static_cast<std::uint32_t>(i));
  }
}

void OnlinePriorityEvaluator::run_chunked(QssfService& service,
                                          const Trace& eval,
                                          const EvalOptions& options) {
  const auto& jobs = eval.jobs();
  std::vector<std::uint32_t> gpu;
  gpu.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].is_gpu_job()) gpu.push_back(static_cast<std::uint32_t>(i));
  }
  if (gpu.empty()) return;

  // The GBDT half of every priority depends only on the (fixed) model, so it
  // batches into one binned predict_many pass. Encoding runs in stream order,
  // which warms the name buckets exactly as the serial path would.
  const bool trained = service.trained();
  std::vector<double> ml_est;
  if (trained) {
    const ml::Dataset encoded = service.encode_jobs(eval, gpu);
    ml_est = service.model().predict_many(encoded);
    for (double& v : ml_est) v = std::max(1.0, std::expm1(v));
  }

  // Window count: an explicit max_windows forces the replay machinery (for
  // tests / benchmarks); otherwise size to the pool, never below min_window
  // jobs per window.
  std::size_t n_windows;
  if (options.max_windows > 0) {
    n_windows = std::min(options.max_windows, gpu.size());
  } else {
    const std::size_t threads =
        std::max<std::size_t>(1, global_pool().thread_count());
    n_windows = std::clamp<std::size_t>(
        gpu.size() / std::max<std::size_t>(1, options.min_window), 1, threads);
  }
  std::vector<std::size_t> start(n_windows + 1);
  for (std::size_t w = 0; w <= n_windows; ++w) {
    start[w] = gpu.size() * w / n_windows;
  }

  // Serial pre-pass: replay only the observe stream through all but the last
  // window, snapshotting (rolling overlay, pending heap) at each boundary.
  // The service's pre-eval rolling state moves behind one immutable shared
  // base — copied zero times here — and each boundary snapshot is a
  // copy-on-write overlay carrying only the user histories the observe
  // stream has touched so far, not the full multi-month user map. The heap
  // executes the same push/pop sequence the serial path would, so the
  // snapshot layouts — and therefore pop order — are identical.
  const auto base =
      std::make_shared<const RollingEstimator>(std::move(service.rolling_));
  struct Snapshot {
    RollingOverlay rolling;
    ReplayQueue heap;
  };
  std::vector<Snapshot> snaps(n_windows);
  {
    RollingOverlay live{base};
    ReplayQueue pending;
    snaps[0] = {live, pending};
    for (std::size_t w = 0; w + 1 < n_windows; ++w) {
      for (std::size_t pos = start[w]; pos < start[w + 1]; ++pos) {
        const JobRecord& job = jobs[gpu[pos]];
        pending.drain(job.submit_time, [&](std::uint32_t idx) {
          live.observe(eval, jobs[idx]);
        });
        pending.push(job, gpu[pos]);
      }
      snaps[w + 1] = {live, pending};
    }
  }

  // Replay windows concurrently. Window w's snapshot already contains every
  // observe due before its first job, so replaying its own stream yields
  // exactly the serial rolling state at each of its jobs.
  struct WindowResult {
    std::vector<std::pair<std::uint64_t, double>> priorities;
    std::vector<double> predicted;
    std::vector<double> actual;
  };
  std::vector<WindowResult> results(n_windows);
  RollingEstimator final_rolling;
  const QssfConfig& cfg = service.config();
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w) {
    tasks.push_back([&, w] {
      RollingOverlay local = std::move(snaps[w].rolling);
      ReplayQueue pending = std::move(snaps[w].heap);
      WindowResult& out = results[w];
      const std::size_t count = start[w + 1] - start[w];
      out.priorities.reserve(count);
      out.predicted.reserve(count);
      out.actual.reserve(count);
      for (std::size_t pos = start[w]; pos < start[w + 1]; ++pos) {
        const JobRecord& job = jobs[gpu[pos]];
        pending.drain(job.submit_time, [&](std::uint32_t idx) {
          local.observe(eval, jobs[idx]);
        });
        const double pr = local.estimate(eval, job);
        // Untrained model: ml_estimate falls back to the rolling estimate,
        // bitwise pr (it is a pure function of the same state).
        const double pm = trained ? ml_est[pos] : pr;
        const double p = QssfService::combine(cfg, pr, pm, job);
        out.priorities.emplace_back(job.job_id, p);
        out.predicted.push_back(p);
        out.actual.push_back(job.gpu_time());
        pending.push(job, gpu[pos]);
      }
      // The last window saw every observe the serial path applies;
      // flattening its overlay (the one full base copy of the whole chunked
      // pass) reproduces exactly the state kSerial would leave behind.
      if (w + 1 == n_windows) final_rolling = local.materialize();
    });
  }
  parallel_run_tasks(std::move(tasks));

  service.rolling_ = std::move(final_rolling);

  priorities_.reserve(gpu.size());
  predicted_.reserve(gpu.size());
  actual_.reserve(gpu.size());
  for (auto& r : results) {
    for (const auto& [id, p] : r.priorities) priorities_.emplace(id, p);
    predicted_.insert(predicted_.end(), r.predicted.begin(), r.predicted.end());
    actual_.insert(actual_.end(), r.actual.begin(), r.actual.end());
  }
}

double OnlinePriorityEvaluator::priority_of(const JobRecord& job) const {
  const auto it = priorities_.find(job.job_id);
  return it != priorities_.end()
             ? it->second
             : static_cast<double>(job.num_gpus) * 600.0;
}

sim::PriorityFn OnlinePriorityEvaluator::as_priority_fn() const {
  return [this](const JobRecord& job) { return priority_of(job); };
}

}  // namespace helios::core
