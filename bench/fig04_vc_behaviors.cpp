// Figure 4: VC behaviours in Earth during May — utilization box stats of the
// top-10 largest VCs, average requested GPUs, and min-max-normalised average
// job duration / queuing delay per VC.
#include <algorithm>
#include <cstdio>

#include "analysis/cluster_stats.h"
#include "bench_common.h"
#include "common/text_table.h"
#include "stats/correlation.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace analysis = helios::analysis;

  bench::print_header("Figure 4",
                      "Top-10 VC utilization boxplots and per-VC queuing vs "
                      "duration (Earth, May)");

  const auto& traces = bench::operated_helios_traces();
  const auto it = std::find_if(traces.begin(), traces.end(), [](const auto& t) {
    return t->cluster().name == "Earth";
  });
  const helios::trace::Trace& earth = **it;
  const auto begin = helios::from_civil(2020, 5, 1);
  const auto end = helios::from_civil(2020, 6, 1);
  auto behaviors = analysis::vc_behaviors(earth, begin, end);
  const std::size_t top = std::min<std::size_t>(10, behaviors.size());

  double dur_max = 0.0;
  double delay_max = 0.0;
  for (std::size_t i = 0; i < top; ++i) {
    dur_max = std::max(dur_max, behaviors[i].avg_duration);
    delay_max = std::max(delay_max, behaviors[i].avg_queue_delay);
  }

  TextTable table({"VC", "GPUs", "util Q1", "median", "Q3", "avg GPUs/job",
                   "norm duration", "norm queuing", "jobs"});
  std::vector<double> med_util;
  std::vector<double> avg_req;
  std::vector<double> durs;
  std::vector<double> delays;
  for (std::size_t i = 0; i < top; ++i) {
    const auto& b = behaviors[i];
    table.add_row(
        {b.name, TextTable::cell(static_cast<std::int64_t>(b.gpus)),
         TextTable::cell_pct(b.utilization.q1),
         TextTable::cell_pct(b.utilization.median),
         TextTable::cell_pct(b.utilization.q3),
         TextTable::cell(b.avg_gpu_request, 1),
         TextTable::cell(dur_max > 0 ? b.avg_duration / dur_max : 0.0, 2),
         TextTable::cell(delay_max > 0 ? b.avg_queue_delay / delay_max : 0.0, 2),
         TextTable::cell(b.jobs)});
    med_util.push_back(b.utilization.median);
    avg_req.push_back(b.avg_gpu_request);
    durs.push_back(b.avg_duration);
    delays.push_back(b.avg_queue_delay);
  }
  std::printf("%s\n", table.str().c_str());

  bench::print_expectation(
      "VC utilization ~ avg GPU demand (Spearman)", "positive correlation",
      TextTable::cell(helios::stats::spearman(med_util, avg_req), 2));
  bench::print_expectation(
      "queuing delay ~ job duration (Spearman)", "roughly proportional",
      TextTable::cell(helios::stats::spearman(durs, delays), 2));
  return 0;
}
