#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace helios::stats {

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> fractional_ranks(std::span<const double> v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  const auto rx = fractional_ranks(x.subspan(0, n));
  const auto ry = fractional_ranks(y.subspan(0, n));
  return pearson(rx, ry);
}

}  // namespace helios::stats
