#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory_resource>
#include <sstream>
#include <unordered_map>

#include "common/arena.h"
#include "common/csv.h"
#include "common/env.h"
#include "common/interner.h"
#include "common/simd.h"
#include "common/text_table.h"
#include "common/thread_pool.h"

namespace helios {
namespace {

TEST(Interner, DenseIdsAndRoundTrip) {
  StringInterner in;
  EXPECT_EQ(in.intern("alpha"), 0u);
  EXPECT_EQ(in.intern("beta"), 1u);
  EXPECT_EQ(in.intern("alpha"), 0u);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.str(0), "alpha");
  EXPECT_EQ(in.find("beta"), 1u);
  EXPECT_EQ(in.find("gamma"), StringInterner::kNotFound);
}

TEST(Csv, QuotedRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  const std::string line = os.str();
  // Parse the single physical line produced for the first three fields.
  const auto fields =
      CsvReader::parse_line("plain,\"with,comma\",\"with\"\"quote\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "plain");
  EXPECT_EQ(fields[1], "with,comma");
  EXPECT_EQ(fields[2], "with\"quote");
}

TEST(Csv, NumericFieldsRoundTrip) {
  EXPECT_EQ(CsvWriter::field(static_cast<std::int64_t>(-42)), "-42");
  const std::string d = CsvWriter::field(3.25);
  EXPECT_EQ(std::stod(d), 3.25);
}

TEST(Csv, ReadAllSkipsEmptyLines) {
  std::istringstream in("a,b\n\nc,d\n");
  const auto rows = CsvReader::read_all(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, NumericCells) {
  EXPECT_EQ(TextTable::cell(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::cell(static_cast<std::int64_t>(42)), "42");
  EXPECT_EQ(TextTable::cell_grouped(1753000), "1,753,000");
  EXPECT_EQ(TextTable::cell_grouped(-1234), "-1,234");
  EXPECT_EQ(TextTable::cell_pct(0.821), "82.1%");
}

TEST(ThreadPool, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; }, 10);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksPartition) {
  std::atomic<std::size_t> total{0};
  parallel_for_chunks(
      5, 1005,
      [&](std::size_t lo, std::size_t hi) { total += hi - lo; }, 8);
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPool, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 100, [](std::size_t i) {
        if (i == 57) throw std::runtime_error("boom");
      }, 1),
      std::runtime_error);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  parallel_for(10, 10, [](std::size_t) { FAIL(); });
}

TEST(MonotonicArena, BumpAllocatesAndAligns) {
  common::MonotonicArena arena;
  EXPECT_EQ(arena.bytes_reserved(), 0u);  // construction allocates nothing
  EXPECT_EQ(arena.chunk_count(), 0u);
  void* a = arena.allocate(10, 1);
  void* b = arena.allocate(16, 16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 16, 0u);
  EXPECT_NE(a, b);
  EXPECT_GE(arena.bytes_used(), 26u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
  // deallocate is a no-op: the memory stays valid until the arena dies.
  arena.deallocate(a, 10, 1);
  std::memset(a, 0xab, 10);
}

TEST(MonotonicArena, ChunksGrowAndOversizedAllocationsWork) {
  common::MonotonicArena arena(256);
  for (int i = 0; i < 64; ++i) {
    void* p = arena.allocate(64, 8);
    std::memset(p, i, 64);  // every pointer must be distinct, writable memory
  }
  EXPECT_GT(arena.chunk_count(), 1u);  // 4 KiB of 64B blocks outgrew 256B
  // An allocation far beyond the doubling schedule gets its own chunk.
  void* big = arena.allocate(std::size_t{3} << 20, 64);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xcd, std::size_t{3} << 20);
  EXPECT_GE(arena.bytes_reserved(), std::size_t{3} << 20);
}

TEST(MonotonicArena, BacksPmrContainers) {
  common::MonotonicArena arena;
  {
    std::pmr::unordered_map<int, int> m(&arena);
    for (int i = 0; i < 1000; ++i) m[i] = i * 3;
    EXPECT_EQ(m.at(999), 2997);
    EXPECT_GT(arena.bytes_used(), 1000u * sizeof(int) * 2);
  }
  // The map's destructor "freed" into the arena (a no-op); only the arena's
  // destruction releases the chunks.
  EXPECT_GT(arena.bytes_reserved(), 0u);
}

TEST(Simd, DispatchGatesAreConsistent) {
  // compiled ⊇ supported-and-usable: simd_enabled() may never report true
  // unless the kernels were compiled and the CPU can run them.
  if (common::simd_enabled()) {
    EXPECT_TRUE(common::simd_compiled());
    EXPECT_TRUE(common::simd_supported());
  }
  const bool prev = common::simd_enabled();
  // Forcing off always works; forcing on succeeds iff compiled && supported.
  EXPECT_FALSE(common::set_simd_enabled(false));
  EXPECT_EQ(common::set_simd_enabled(true),
            common::simd_compiled() && common::simd_supported());
  common::set_simd_enabled(prev);
  EXPECT_EQ(common::simd_enabled(), prev);
  // simd_mode() names the active configuration for bench/CI logs.
  EXPECT_FALSE(common::simd_mode().empty());
}

TEST(Env, FallbacksAndParsing) {
  EXPECT_DOUBLE_EQ(env_double("HELIOS_TEST_UNSET_VAR", 1.5), 1.5);
  EXPECT_EQ(env_int("HELIOS_TEST_UNSET_VAR", 7), 7);
  ::setenv("HELIOS_TEST_SET_VAR", "2.25", 1);
  EXPECT_DOUBLE_EQ(env_double("HELIOS_TEST_SET_VAR", 0.0), 2.25);
  ::setenv("HELIOS_TEST_SET_VAR", "19", 1);
  EXPECT_EQ(env_int("HELIOS_TEST_SET_VAR", 0), 19);
  EXPECT_EQ(env_string("HELIOS_TEST_SET_VAR", ""), "19");
  ::unsetenv("HELIOS_TEST_SET_VAR");
}

}  // namespace
}  // namespace helios
