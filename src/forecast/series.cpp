#include "forecast/series.h"

#include <algorithm>
#include <cmath>

namespace helios::forecast {

TimeSeries TimeSeries::slice(std::size_t from, std::size_t to) const {
  TimeSeries out;
  from = std::min(from, values.size());
  to = std::clamp(to, from, values.size());
  out.begin = time_at(from);
  out.step = step;
  out.values.assign(values.begin() + static_cast<std::ptrdiff_t>(from),
                    values.begin() + static_cast<std::ptrdiff_t>(to));
  return out;
}

TimeSeries TimeSeries::between(UnixTime t0, UnixTime t1) const {
  const std::size_t from = index_of(t0);
  std::size_t to = index_of(t1);
  if (t1 > time_at(to)) ++to;
  return slice(from, std::min(to, values.size()));
}

std::size_t TimeSeries::index_of(UnixTime t) const noexcept {
  if (step <= 0 || values.empty() || t <= begin) return 0;
  const auto idx = static_cast<std::size_t>((t - begin) / step);
  return std::min(idx, values.size());
}

std::vector<double> rolling_mean(std::span<const double> v, std::size_t w) {
  std::vector<double> out(v.size(), 0.0);
  if (w == 0) return out;
  double sum = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    sum += v[i];
    if (i >= w) sum -= v[i - w];
    const std::size_t n = std::min(i + 1, w);
    out[i] = sum / static_cast<double>(n);
  }
  return out;
}

std::vector<double> rolling_std(std::span<const double> v, std::size_t w) {
  std::vector<double> out(v.size(), 0.0);
  if (w == 0) return out;
  double sum = 0.0;
  double sum2 = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    sum += v[i];
    sum2 += v[i] * v[i];
    if (i >= w) {
      sum -= v[i - w];
      sum2 -= v[i - w] * v[i - w];
    }
    const auto n = static_cast<double>(std::min(i + 1, w));
    const double mean = sum / n;
    out[i] = std::sqrt(std::max(0.0, sum2 / n - mean * mean));
  }
  return out;
}

std::vector<double> diff(std::span<const double> v) {
  std::vector<double> out;
  if (v.size() < 2) return out;
  out.reserve(v.size() - 1);
  for (std::size_t i = 1; i < v.size(); ++i) out.push_back(v[i] - v[i - 1]);
  return out;
}

}  // namespace helios::forecast
