// Monotonic bump-pointer arena exposed as a std::pmr::memory_resource.
//
// Built for the windowed evaluator's per-window snapshot state
// (core::RollingOverlay): each overlay delta performs thousands of small
// node-at-a-time allocations (hash-map nodes, dedupe-set nodes, bucket
// arrays) that all die together when the window is dropped. A monotonic
// arena turns each of those mallocs into a pointer bump and the teardown
// into a handful of chunk frees, and keeps a window's nodes contiguous in
// memory instead of scattered across the heap.
//
// Semantics: allocations never free individually (do_deallocate is a no-op);
// everything is released at once when the arena is destroyed. Chunks double
// geometrically from `initial_chunk` up to kMaxChunk; an allocation larger
// than a chunk gets its own exact-size chunk. Construction allocates
// nothing, so default-constructing arena-holding values (e.g. a vector of
// window snapshots) stays cheap.
//
// Thread-safety: NOT thread-safe — each arena is meant to be owned by one
// window/overlay and used from one thread at a time, exactly like the
// containers it backs. Distinct arenas are fully independent.
#pragma once

#include <cstddef>
#include <memory>
#include <memory_resource>
#include <vector>

namespace helios::common {

class MonotonicArena final : public std::pmr::memory_resource {
 public:
  explicit MonotonicArena(std::size_t initial_chunk = 1024) noexcept
      : next_chunk_(initial_chunk < kMinChunk ? kMinChunk : initial_chunk) {}
  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;
  ~MonotonicArena() override = default;  // unique_ptr chunks free themselves

  /// Bytes handed out to callers (excludes per-chunk slack).
  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }
  /// Bytes reserved from the upstream heap across all chunks.
  [[nodiscard]] std::size_t bytes_reserved() const noexcept { return reserved_; }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }

 private:
  static constexpr std::size_t kMinChunk = 256;
  static constexpr std::size_t kMaxChunk = std::size_t{1} << 20;  // 1 MiB

  void* do_allocate(std::size_t bytes, std::size_t alignment) override;
  void do_deallocate(void*, std::size_t, std::size_t) override {}
  [[nodiscard]] bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    // Monotonic arenas are never interchangeable: only the arena itself can
    // (not) free its allocations.
    return this == &other;
  }

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* cursor_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t next_chunk_;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace helios::common
