#include "common/simd.h"

#include <atomic>

#include "common/env.h"

namespace helios::common {

namespace {

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// -1 = uninitialized; 0/1 = resolved request (env or set_simd_enabled).
std::atomic<int> g_requested{-1};

bool requested() noexcept {
  int r = g_requested.load(std::memory_order_relaxed);
  if (r >= 0) return r != 0;
  // First use: HELIOS_SIMD decides; unset means auto-on. Two initializers
  // racing read the same environment, so the resolved value is identical.
  const std::string v = env_string("HELIOS_SIMD", "");
  const bool on = !(v == "0" || v == "off" || v == "scalar" || v == "false");
  g_requested.store(on ? 1 : 0, std::memory_order_relaxed);
  return on;
}

}  // namespace

bool simd_compiled() noexcept {
#ifdef HELIOS_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

bool simd_supported() noexcept {
  // cpuid is cheap and the compiler hoists the constant half; no caching.
  return simd_compiled() && cpu_has_avx2();
}

bool simd_enabled() noexcept { return simd_supported() && requested(); }

bool set_simd_enabled(bool on) noexcept {
  g_requested.store(on ? 1 : 0, std::memory_order_relaxed);
  return simd_enabled();
}

std::string_view simd_mode() noexcept {
  return simd_enabled() ? "avx2" : "scalar";
}

}  // namespace helios::common
