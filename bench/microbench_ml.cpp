// google-benchmark microbenchmarks for the ML kernels on the QSSF hot paths:
// GBDT training/inference, Levenshtein matching, name bucketization.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "ml/levenshtein.h"

namespace {

using namespace helios;

ml::Dataset make_dataset(std::size_t rows, std::size_t features, Rng& rng) {
  ml::Dataset d(features);
  std::vector<double> row(features);
  for (std::size_t r = 0; r < rows; ++r) {
    double y = 0.0;
    for (std::size_t f = 0; f < features; ++f) {
      row[f] = rng.uniform(-1.0, 1.0);
      y += (f % 3 == 0 ? 2.0 : -0.5) * row[f];
    }
    d.add_row(row, y + rng.normal(0.0, 0.1));
  }
  return d;
}

void BM_GbdtFit(benchmark::State& state) {
  Rng rng(42);
  const auto rows = static_cast<std::size_t>(state.range(0));
  const ml::Dataset data = make_dataset(rows, 9, rng);
  ml::GBDTConfig cfg;
  cfg.n_trees = 20;
  for (auto _ : state) {
    ml::GBDTRegressor model(cfg);
    model.fit(data);
    benchmark::DoNotOptimize(model.trained());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_GbdtFit)->Arg(2000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_GbdtPredict(benchmark::State& state) {
  Rng rng(42);
  const ml::Dataset data = make_dataset(20000, 9, rng);
  ml::GBDTConfig cfg;
  cfg.n_trees = 60;
  ml::GBDTRegressor model(cfg);
  model.fit(data);
  const std::vector<double> probe = {0.1, -0.2, 0.3, 0.4, -0.5, 0.6, 0.0, 0.2, -0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(probe));
  }
}
BENCHMARK(BM_GbdtPredict);

void BM_Levenshtein(benchmark::State& state) {
  const std::string a = "u0042_train_resnet50_v1";
  const std::string b = "u0042_train_resnet101_v2";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::levenshtein(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_WithinDistanceBanded(benchmark::State& state) {
  const std::string a = "u0042_train_resnet50_v1";
  const std::string b = "u0913_preprocess_pointnet";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::within_distance(a, b, 4));
  }
}
BENCHMARK(BM_WithinDistanceBanded);

void BM_NameBucketizer(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::string> names;
  for (int u = 0; u < 100; ++u) {
    for (int t = 0; t < 10; ++t) {
      names.push_back("u" + std::to_string(1000 + u) + "_train_model" +
                      std::to_string(t) + "_v" + std::to_string(t % 4));
    }
  }
  for (auto _ : state) {
    ml::NameBucketizer buckets(0.2, /*prefix_len=*/6);
    for (const auto& n : names) benchmark::DoNotOptimize(buckets.bucket(n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(names.size()));
}
BENCHMARK(BM_NameBucketizer)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
