#include "sim/bucket_integrator.h"

#include <algorithm>

namespace helios::sim {

BucketIntegrator::BucketIntegrator(UnixTime begin, UnixTime end,
                                   std::int64_t step)
    : begin_(begin), step_(step) {
  const auto buckets = static_cast<std::size_t>(
      std::max<std::int64_t>(1, (end - begin + step - 1) / step));
  slope_.assign(buckets + 1, 0.0);
  offset_.assign(buckets, 0.0);
}

forecast::TimeSeries BucketIntegrator::mean_series() const {
  forecast::TimeSeries s;
  s.begin = begin_;
  s.step = step_;
  s.values.resize(offset_.size());
  const double step = static_cast<double>(step_);
  double running = 0.0;
  for (std::size_t b = 0; b < offset_.size(); ++b) {
    running += slope_[b];
    s.values[b] = (running * step + offset_[b]) / step;
  }
  return s;
}

}  // namespace helios::sim
