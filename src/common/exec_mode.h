// The one execution-mode switch of the library.
//
// Three layers once grew near-duplicate two-value enums for "run this on the
// shared pool vs. serially on the calling thread"; every pair obeys the same
// contract — both modes are bit-identical, kSerial is the parity reference —
// so they are one enum that composed callers (svc::PredictionServer is
// the first) thread through every layer with a single spelling:
// common::ExecMode::{kParallel, kSerial}.
#pragma once

#include <string_view>

namespace helios::common {

/// How a driver executes its independent work units. Both modes must produce
/// bit-identical results (the determinism/parity suites pin this per layer);
/// kSerial is the reference and keeps the shared pool free.
enum class ExecMode {
  kParallel,  ///< work units run concurrently on the shared thread pool
  kSerial,    ///< work units run in order on the calling thread
};

[[nodiscard]] constexpr std::string_view to_string(ExecMode m) noexcept {
  return m == ExecMode::kSerial ? "serial" : "parallel";
}

}  // namespace helios::common
