#include "core/failure_predictor.h"

#include <algorithm>
#include <utility>

#include "serialize/binary.h"

namespace helios::core {

namespace {

constexpr std::uint32_t kPredictorTag = serialize::fourcc("FPRD");
constexpr std::uint8_t kVersion = 1;

}  // namespace

void FailurePredictor::fit(const trace::ClusterSpec& spec,
                           const sim::FaultPlan& history) {
  const ml::Dataset data =
      ml::build_failure_dataset(spec, history, config_.dataset);
  ml::GBDTRegressor model(config_.gbdt);
  if (!data.empty()) model.fit(data);
  model_ = std::move(model);
}

double FailurePredictor::risk(const ml::NodeFailureHistory& history, int vc,
                              int node, std::int64_t at) const {
  const auto row = history.features(vc, node, at);
  return model_.predict(row);
}

std::vector<std::vector<std::int32_t>> FailurePredictor::rank_nodes(
    const trace::ClusterSpec& spec, const sim::FaultPlan& history,
    std::int64_t at) const {
  const ml::NodeFailureHistory index(spec, history);
  std::vector<std::vector<std::int32_t>> order(spec.vcs.size());
  for (std::size_t vi = 0; vi < spec.vcs.size(); ++vi) {
    const int n_nodes = spec.vcs[vi].nodes;
    std::vector<std::pair<double, std::int32_t>> scored;
    scored.reserve(static_cast<std::size_t>(n_nodes));
    for (int node = 0; node < n_nodes; ++node) {
      const double r = trained()
                           ? risk(index, static_cast<int>(vi), node, at)
                           : 0.0;
      scored.emplace_back(r, node);
    }
    // Ascending risk; node id breaks ties, so an uninformative model (or an
    // untrained predictor) degrades to the allocator's default id order.
    std::sort(scored.begin(), scored.end());
    auto& vc_order = order[vi];
    vc_order.reserve(scored.size());
    for (const auto& [r, node] : scored) vc_order.push_back(node);
  }
  return order;
}

void FailurePredictor::save(serialize::Writer& w) const {
  w.begin_section(kPredictorTag);
  w.u8(kVersion);
  w.i64(config_.dataset.sample_step);
  w.i64(config_.dataset.horizon);
  w.i64(config_.dataset.warmup);
  w.u8(trained() ? 1 : 0);
  if (trained()) model_.save(w);
  w.end_section();
}

void FailurePredictor::load(serialize::Reader& r) {
  serialize::Reader s = r.section(kPredictorTag);
  const std::uint8_t version = s.u8();
  if (version != kVersion) {
    throw serialize::Error(serialize::ErrorCode::kUnsupportedVersion,
                           "failure predictor: unsupported version");
  }
  // Stage, then commit: a throw below leaves *this untouched.
  FailurePredictorConfig cfg = config_;
  cfg.dataset.sample_step = s.i64();
  cfg.dataset.horizon = s.i64();
  cfg.dataset.warmup = s.i64();
  if (cfg.dataset.sample_step <= 0 || cfg.dataset.horizon <= 0 ||
      cfg.dataset.warmup < 0) {
    throw serialize::Error(serialize::ErrorCode::kCorrupt,
                           "failure predictor: invalid dataset config");
  }
  ml::GBDTRegressor model;
  if (s.u8() != 0) model.load(s);
  s.close("failure predictor");
  cfg.gbdt = model.config();
  config_ = std::move(cfg);
  model_ = std::move(model);
}

}  // namespace helios::core
