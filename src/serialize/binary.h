// Versioned, endian-stable binary persistence layer (see docs/FORMATS.md).
//
// Every model file is one frame:
//
//   magic "HELIOSMF" (8 bytes)
//   u32   format version (kFormatVersion; readers reject newer files)
//   u32   flags (reserved, 0)
//   ...   body: section-tagged chunks written by the model's save()
//   u32   CRC32 of every preceding byte
//
// All integers are little-endian regardless of host; doubles travel as the
// IEEE-754 bit pattern (std::bit_cast), so a loaded model predicts
// bit-identically to the saved one on any supported platform. Sections are
// (u32 fourcc tag, u64 payload length, payload) triples and may nest; a
// reader materializes a section as a bounds-limited sub-Reader, so a length
// that lies about its payload cannot walk past the buffer.
//
// Error handling contract: malformed input of any kind — short reads, wrong
// magic, future versions, tag mismatches, CRC failures, or values a model
// refuses to adopt — throws serialize::Error with a machine-checkable
// ErrorCode. No API here (or in any model's load()) exhibits UB on corrupt
// bytes; loads either succeed completely or throw without mutating partial
// state into a usable-looking model.
//
// Thread-safety: Writer and Reader are single-threaded values; distinct
// instances are independent. The free functions are reentrant.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace helios::serialize {

/// Current frame format version. Bump only for layout changes a version-1
/// reader cannot skip; add trailing section fields for compatible growth
/// (readers must ignore unread trailing bytes only via explicit opt-in —
/// the default Reader::close() rejects them, catching writer/reader drift).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Frame magic, first 8 bytes of every model file.
inline constexpr char kMagic[8] = {'H', 'E', 'L', 'I', 'O', 'S', 'M', 'F'};

enum class ErrorCode : std::uint8_t {
  kIo,                  ///< file open/read/write failed
  kBadMagic,            ///< frame does not start with kMagic
  kUnsupportedVersion,  ///< frame written by a newer format version
  kTruncated,           ///< a read ran past the end of the buffer
  kBadSection,          ///< section tag differs from the expected one
  kCrcMismatch,         ///< CRC32 trailer does not match the frame contents
  kCorrupt,             ///< bytes decode but violate a model invariant
};

[[nodiscard]] std::string_view to_string(ErrorCode code) noexcept;

/// The one exception type of the persistence layer.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message);
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Section tag from a 4-character literal, e.g. fourcc("GBDT").
constexpr std::uint32_t fourcc(const char (&s)[5]) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

/// Appends little-endian primitives and tagged sections to a growable buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void bytes(std::span<const std::uint8_t> v);
  /// u64 length + raw bytes.
  void str(std::string_view s);
  void vec_f64(std::span<const double> v);
  void vec_i32(std::span<const std::int32_t> v);
  void vec_u64(std::span<const std::uint64_t> v);

  /// Open a (nestable) section: tag + u64 length placeholder, patched by the
  /// matching end_section().
  void begin_section(std::uint32_t tag);
  void end_section();

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept {
    return buf_;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::vector<std::size_t> open_;  // offsets of unpatched length fields
};

/// Bounds-checked cursor over a byte span. Every read throws
/// Error(kTruncated) instead of walking out of range; section() returns a
/// sub-Reader limited to the section payload.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data)
      : p_(data.data()), end_(data.data() + data.size()) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<double> vec_f64();
  [[nodiscard]] std::vector<std::int32_t> vec_i32();
  [[nodiscard]] std::vector<std::uint64_t> vec_u64();

  /// Enter the next section; throws kBadSection when its tag is not
  /// `expected_tag`, kTruncated when its declared length overruns the buffer.
  [[nodiscard]] Reader section(std::uint32_t expected_tag);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }
  /// Assert the reader is exhausted; `what` names the section for the error
  /// message. Catches writer/reader layout drift (trailing unread bytes).
  void close(std::string_view what) const;

  /// u64 element count, validated against the remaining bytes assuming at
  /// least `min_elem_size` bytes per element — rejects absurd counts before
  /// any allocation.
  [[nodiscard]] std::size_t length(std::size_t min_elem_size);

 private:
  void need(std::size_t n) const;

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

/// Wrap a body in the magic/version/CRC frame.
[[nodiscard]] std::vector<std::uint8_t> frame(const Writer& body);

/// Validate a frame (magic, version, CRC) and return its body bytes.
[[nodiscard]] std::vector<std::uint8_t> unframe(
    std::span<const std::uint8_t> file);

/// frame() + write to `path`; throws Error(kIo) on filesystem failure.
void write_file(const std::string& path, const Writer& body);

/// Read `path` + unframe(); throws Error on any I/O or validation failure.
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

/// The one spelling for file-level model persistence: persist any model with
/// a `save(Writer&) const` member as a single-section frame at `path`.
/// Every serializable type in the library (ml::, core::, svc::) pairs with
/// load_file below; forecast::Forecaster, being polymorphic, keeps its
/// save_forecaster/load_forecaster free functions for the in-frame type tag
/// but a concrete forecaster's state still round-trips through here.
/// Throws Error(kIo) on filesystem failure.
template <class T>
void save_file(const std::string& path, const T& model) {
  Writer w;
  model.save(w);
  write_file(path, w);
}

/// Restore a model persisted by save_file into `out` (in-place overload for
/// types without a default constructor, e.g. a svc::PredictionServer that
/// needs its trace context first). Validates the frame, delegates to
/// `out.load(Reader&)`, and rejects trailing bytes after the model's
/// section. Throws Error on any I/O, validation, or decode failure; `out`
/// is unchanged when the model's load() honours its all-or-nothing contract.
template <class T>
void load_file(const std::string& path, T& out) {
  const std::vector<std::uint8_t> body = read_file(path);
  Reader r(body);
  out.load(r);
  r.close(path);
}

/// Value-returning variant for default-constructible model types:
/// `auto m = serialize::load_file<ml::GBDTRegressor>(path);`.
template <class T>
[[nodiscard]] T load_file(const std::string& path) {
  T out;
  load_file(path, out);
  return out;
}

}  // namespace helios::serialize
