#include <gtest/gtest.h>

#include <algorithm>

#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace helios::sim {
namespace {

using trace::JobState;
using trace::Trace;

trace::ClusterSpec one_node_spec() {
  trace::ClusterSpec s;
  s.name = "one";
  s.gpus_per_node = 8;
  s.vcs = {{"vc0", 1, 8}};
  s.nodes = 1;
  return s;
}

trace::ClusterSpec two_vc_spec() {
  trace::ClusterSpec s;
  s.name = "two";
  s.gpus_per_node = 8;
  s.vcs = {{"vc0", 2, 8}, {"vc1", 1, 8}};
  s.nodes = 3;
  return s;
}

Trace make_trace(const trace::ClusterSpec& spec,
                 const std::vector<std::tuple<UnixTime, int, int, const char*>>&
                     jobs /* submit, duration, gpus, vc */) {
  Trace t(spec);
  int i = 0;
  for (const auto& [submit, dur, gpus, vc] : jobs) {
    t.add(submit, dur, gpus, gpus, "user" + std::to_string(i % 3), vc,
          "job" + std::to_string(i), JobState::kCompleted);
    ++i;
  }
  t.sort_by_submit_time();
  return t;
}

SimResult run(const Trace& t, SchedulerPolicy policy,
              PriorityFn priority = nullptr) {
  SimConfig cfg;
  cfg.policy = policy;
  cfg.priority_fn = std::move(priority);
  ClusterSimulator sim(t.cluster(), cfg);
  return sim.run(t);
}

TEST(Simulator, FifoSerializesOnFullNode) {
  const auto t = make_trace(one_node_spec(), {{0, 100, 8, "vc0"},
                                              {1, 10, 8, "vc0"}});
  const auto r = run(t, SchedulerPolicy::kFifo);
  ASSERT_EQ(r.outcomes.size(), 2u);
  EXPECT_EQ(r.outcomes[0].start, 0);
  EXPECT_EQ(r.outcomes[0].end, 100);
  EXPECT_EQ(r.outcomes[1].start, 100);
  EXPECT_EQ(r.outcomes[1].end, 110);
  EXPECT_EQ(r.queued_jobs, 1);
}

TEST(Simulator, SjfReordersQueue) {
  // Long job occupies the node; two queued jobs: long (500s) then short (10s),
  // submitted in that order. SJF runs the short one first.
  const auto t = make_trace(one_node_spec(), {{0, 100, 8, "vc0"},
                                              {1, 500, 8, "vc0"},
                                              {2, 10, 8, "vc0"}});
  const auto fifo = run(t, SchedulerPolicy::kFifo);
  const auto sjf = run(t, SchedulerPolicy::kSjf);
  // FIFO: short job waits for the 500s job.
  EXPECT_EQ(fifo.outcomes[2].start, 600);
  // SJF: short job jumps ahead.
  EXPECT_EQ(sjf.outcomes[2].start, 100);
  EXPECT_EQ(sjf.outcomes[1].start, 110);
  EXPECT_LT(sjf.avg_jct, fifo.avg_jct);
}

TEST(Simulator, SrtfPreemptsLongJob) {
  const auto t = make_trace(one_node_spec(), {{0, 100, 8, "vc0"},
                                              {10, 10, 8, "vc0"}});
  const auto r = run(t, SchedulerPolicy::kSrtf);
  // Short job preempts at t=10 (remaining 10 < remaining 90), runs 10-20;
  // long job resumes and finishes at 20 + 90 = 110.
  EXPECT_EQ(r.outcomes[1].start, 10);
  EXPECT_EQ(r.outcomes[1].end, 20);
  EXPECT_EQ(r.outcomes[0].end, 110);
  EXPECT_EQ(r.preemptions, 1);
}

TEST(Simulator, SrtfDoesNotPreemptShorterRemaining) {
  const auto t = make_trace(one_node_spec(), {{0, 50, 8, "vc0"},
                                              {10, 45, 8, "vc0"}});
  const auto r = run(t, SchedulerPolicy::kSrtf);
  // At t=10 running job has 40 remaining < 45 -> no preemption.
  EXPECT_EQ(r.preemptions, 0);
  EXPECT_EQ(r.outcomes[1].start, 50);
}

TEST(Simulator, QssfUsesPriorityFunction) {
  // Priority = true GPU time makes QSSF behave like SJF here.
  const auto t = make_trace(one_node_spec(), {{0, 100, 8, "vc0"},
                                              {1, 500, 8, "vc0"},
                                              {2, 10, 8, "vc0"}});
  const auto qssf = run(t, SchedulerPolicy::kQssf, [](const trace::JobRecord& j) {
    return static_cast<double>(j.duration) * j.num_gpus;
  });
  EXPECT_EQ(qssf.outcomes[2].start, 100);
}

TEST(Simulator, HeadOfLineBlockingNoBackfill) {
  // 8-GPU head cannot fit (4 GPUs busy); a 2-GPU job behind it must NOT be
  // backfilled (Algorithm 1 stops at the first non-fitting job).
  const auto t = make_trace(one_node_spec(), {{0, 100, 4, "vc0"},
                                              {1, 50, 8, "vc0"},
                                              {2, 5, 2, "vc0"}});
  const auto r = run(t, SchedulerPolicy::kFifo);
  EXPECT_EQ(r.outcomes[1].start, 100);  // 8-GPU job waits for the node
  EXPECT_EQ(r.outcomes[2].start, 150);  // 2-GPU job blocked behind it
}

TEST(Simulator, SmallJobsShareNode) {
  const auto t = make_trace(one_node_spec(), {{0, 100, 4, "vc0"},
                                              {1, 100, 4, "vc0"}});
  const auto r = run(t, SchedulerPolicy::kFifo);
  EXPECT_EQ(r.outcomes[0].start, 0);
  EXPECT_EQ(r.outcomes[1].start, 1);  // both fit concurrently
}

TEST(Simulator, VcsAreIsolated) {
  // vc1's queue must not be affected by vc0 being saturated.
  const auto t = make_trace(two_vc_spec(), {{0, 1000, 16, "vc0"},
                                            {5, 10, 8, "vc1"}});
  const auto r = run(t, SchedulerPolicy::kFifo);
  EXPECT_EQ(r.outcomes[1].start, 5);
}

TEST(Simulator, RejectsJobsLargerThanVc) {
  const auto t = make_trace(two_vc_spec(), {{0, 10, 24, "vc1"}});  // vc1 has 8
  const auto r = run(t, SchedulerPolicy::kFifo);
  EXPECT_EQ(r.rejected_jobs, 1);
  EXPECT_TRUE(r.outcomes[0].rejected);
}

TEST(Simulator, BusySeriesMatchesSchedule) {
  SimConfig cfg;
  cfg.series_step = 10;
  const auto t = make_trace(one_node_spec(), {{0, 40, 8, "vc0"}});
  ClusterSimulator sim(t.cluster(), cfg);
  const auto r = sim.run(t);
  ASSERT_GE(r.busy_gpus.size(), 4u);
  EXPECT_NEAR(r.busy_gpus.values[0], 8.0, 1e-9);
  EXPECT_NEAR(r.busy_gpus.values[3], 8.0, 1e-9);
  EXPECT_NEAR(r.busy_nodes.values[0], 1.0, 1e-9);
  if (r.busy_gpus.size() > 4) EXPECT_NEAR(r.busy_gpus.values[4], 0.0, 1e-9);
}

TEST(Simulator, ApplyScheduleWritesStartTimes) {
  auto t = make_trace(one_node_spec(), {{0, 100, 8, "vc0"}, {1, 10, 8, "vc0"}});
  const auto r = run(t, SchedulerPolicy::kFifo);
  EXPECT_EQ(apply_schedule(t, r), 2u);
  EXPECT_EQ(t.jobs()[1].start_time, 100);
  EXPECT_EQ(t.jobs()[1].queue_delay(), 99);
}

// --- integration sweep: invariants on a realistic synthetic workload -------

class SimulatorPolicyTest : public ::testing::TestWithParam<SchedulerPolicy> {};

TEST_P(SimulatorPolicyTest, InvariantsOnSyntheticTrace) {
  auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 7,
                                            0.05);
  Trace t = trace::SyntheticTraceGenerator(cfg).generate();
  SimConfig sc;
  sc.policy = GetParam();
  if (sc.policy == SchedulerPolicy::kQssf) {
    sc.priority_fn = [](const trace::JobRecord& j) {
      return static_cast<double>(j.duration) * j.num_gpus;
    };
  }
  ClusterSimulator sim(t.cluster(), sc);
  const auto r = sim.run(t);

  const double capacity = t.cluster().total_gpus();
  std::size_t finished = 0;
  for (const auto& o : r.outcomes) {
    if (o.rejected) continue;
    ASSERT_NE(o.start, trace::kNeverStarted);
    EXPECT_GE(o.start, o.submit);
    EXPECT_GE(o.end, o.start + t.jobs()[o.trace_index].duration);
    ++finished;
  }
  EXPECT_GT(finished, 0u);
  EXPECT_EQ(finished + static_cast<std::size_t>(r.rejected_jobs),
            r.outcomes.size());
  for (double g : r.busy_gpus.values) {
    EXPECT_LE(g, capacity + 1e-6);
    EXPECT_GE(g, -1e-9);
  }
  if (sc.policy != SchedulerPolicy::kSrtf) EXPECT_EQ(r.preemptions, 0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SimulatorPolicyTest,
                         ::testing::Values(SchedulerPolicy::kFifo,
                                           SchedulerPolicy::kSjf,
                                           SchedulerPolicy::kSrtf,
                                           SchedulerPolicy::kQssf),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Simulator, OracleOrderingOnRealWorkload) {
  // On a contended synthetic month, SJF and SRTF (oracles) must beat FIFO on
  // average JCT; SRTF must beat or match SJF on queuing.
  auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 3,
                                            0.05);
  Trace t = trace::SyntheticTraceGenerator(cfg).generate();
  const auto sept = t.between(from_civil(2020, 9, 1), from_civil(2020, 9, 28));
  const auto fifo = run(sept, SchedulerPolicy::kFifo);
  const auto sjf = run(sept, SchedulerPolicy::kSjf);
  EXPECT_LT(sjf.avg_jct, fifo.avg_jct);
  EXPECT_LT(sjf.avg_queue_delay, fifo.avg_queue_delay);
}

}  // namespace
}  // namespace helios::sim
