// Dense row-major dataset used by the ML models.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace helios::ml {

class Dataset;

/// Result of a random train/test row split.
struct DatasetSplit;

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t n_features) : n_features_(n_features) {}

  /// Append one row; `features.size()` must equal n_features().
  void add_row(std::span<const double> features, double target);

  [[nodiscard]] std::size_t rows() const noexcept { return y_.size(); }
  [[nodiscard]] std::size_t features() const noexcept { return n_features_; }
  [[nodiscard]] bool empty() const noexcept { return y_.empty(); }

  [[nodiscard]] double at(std::size_t row, std::size_t col) const noexcept {
    return x_[row * n_features_ + col];
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {x_.data() + r * n_features_, n_features_};
  }
  [[nodiscard]] double target(std::size_t r) const noexcept { return y_[r]; }
  [[nodiscard]] std::span<const double> targets() const noexcept { return y_; }

  void reserve(std::size_t n) {
    x_.reserve(n * n_features_);
    y_.reserve(n);
  }

  /// Deterministic row-level split: each row goes to train with probability
  /// `train_fraction`.
  [[nodiscard]] DatasetSplit split(double train_fraction, Rng& rng) const;

 private:
  std::size_t n_features_ = 0;
  std::vector<double> x_;
  std::vector<double> y_;
};

struct DatasetSplit {
  Dataset train;
  Dataset test;
};

}  // namespace helios::ml
