// Golden parity suite for the prediction layer (smoke):
//
//  * GBDTEngine::kHistogram (sibling-subtraction, row-parallel, packed
//    buckets) must reproduce GBDTEngine::kReference bit-for-bit — same
//    trees (features, split bins, thresholds, leaf values, gains) and the
//    same per-iteration training RMSE — across seeds and configs on
//    trace::synthetic-derived data. Exactness is by construction (int64
//    quantized gradients), and this suite is the regression net for the
//    row-set / subtraction / leaf-tracking machinery on top.
//  * predict_many (batched, binned, tree-at-a-time) must equal predict()
//    per row, bitwise.
//  * OnlinePriorityEvaluator's chunked replay-window mode must reproduce
//    the serial reference — priorities, prediction-quality vectors, and the
//    service's final rolling state — for any window count.
//  * The AVX2 kernels (histogram accumulation, batched forest walk) must be
//    bit-identical to the scalar forms: fits, predict_many, and evaluator
//    output are compared with the dispatch forced on vs off. Skipped (not
//    silently passed) where the hardware or build lacks AVX2.
//  * Nodes at or above the packed 24-bit row cap shard into wide histograms
//    instead of falling back to GBDTEngine::kReference; an injected tiny cap
//    drives that path at test scale and must not change a single bit.
#include <gtest/gtest.h>

#include <cmath>

#include "common/simd.h"
#include "core/qssf_service.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "trace/synthetic.h"

namespace {

/// Forces the SIMD dispatch for one scope; restores the prior state on exit.
/// `active` reports whether the requested state actually took effect (asking
/// for SIMD on a scalar-only build/CPU yields false — callers GTEST_SKIP).
class ScopedSimd {
 public:
  explicit ScopedSimd(bool on)
      : prev_(helios::common::simd_enabled()),
        active_(helios::common::set_simd_enabled(on) == on) {}
  ~ScopedSimd() { helios::common::set_simd_enabled(prev_); }
  ScopedSimd(const ScopedSimd&) = delete;
  ScopedSimd& operator=(const ScopedSimd&) = delete;
  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  bool prev_;
  bool active_;
};

/// Restores the injectable packed-row cap on scope exit.
class ScopedPackedRowLimit {
 public:
  explicit ScopedPackedRowLimit(std::size_t limit) {
    helios::ml::gbdt_set_packed_row_limit(limit);
  }
  ~ScopedPackedRowLimit() { helios::ml::gbdt_set_packed_row_limit(0); }
  ScopedPackedRowLimit(const ScopedPackedRowLimit&) = delete;
  ScopedPackedRowLimit& operator=(const ScopedPackedRowLimit&) = delete;
};

}  // namespace

namespace helios::ml {
namespace {

/// QSSF-shaped feature encoding of a synthetic trace: demand, user/VC ids,
/// calendar fields; target = log1p(duration) — the shape the service trains
/// on, without depending on core/.
Dataset trace_dataset(const trace::Trace& t) {
  Dataset d(7);
  std::vector<double> row(7);
  for (const auto& j : t.jobs()) {
    if (!j.is_gpu_job()) continue;
    const CivilTime c = to_civil(j.submit_time);
    row[0] = static_cast<double>(j.num_gpus);
    row[1] = static_cast<double>(j.num_cpus);
    row[2] = static_cast<double>(j.vc);
    row[3] = static_cast<double>(j.user);
    row[4] = static_cast<double>(c.weekday);
    row[5] = static_cast<double>(c.hour);
    row[6] = static_cast<double>(c.minute);
    d.add_row(row, std::log1p(static_cast<double>(j.duration)));
  }
  return d;
}

void expect_models_identical(const GBDTRegressor& a, const GBDTRegressor& b) {
  ASSERT_EQ(a.tree_count(), b.tree_count());
  ASSERT_EQ(a.training_rmse().size(), b.training_rmse().size());
  for (std::size_t i = 0; i < a.training_rmse().size(); ++i) {
    ASSERT_EQ(a.training_rmse()[i], b.training_rmse()[i]) << "rmse @" << i;
  }
  for (std::size_t t = 0; t < a.tree_count(); ++t) {
    const auto& na = a.trees()[t].nodes();
    const auto& nb = b.trees()[t].nodes();
    ASSERT_EQ(na.size(), nb.size()) << "tree " << t;
    for (std::size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i].feature, nb[i].feature) << "tree " << t << " node " << i;
      ASSERT_EQ(na[i].split_bin, nb[i].split_bin) << "tree " << t << " node " << i;
      ASSERT_EQ(na[i].threshold, nb[i].threshold) << "tree " << t << " node " << i;
      ASSERT_EQ(na[i].left, nb[i].left) << "tree " << t << " node " << i;
      ASSERT_EQ(na[i].right, nb[i].right) << "tree " << t << " node " << i;
      ASSERT_EQ(na[i].value, nb[i].value) << "tree " << t << " node " << i;
      ASSERT_EQ(na[i].gain, nb[i].gain) << "tree " << t << " node " << i;
    }
  }
}

TEST(GbdtEngineParity, BitIdenticalAcrossSeedsAndConfigs) {
  for (const std::uint64_t seed : {11ull, 29ull}) {
    auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"),
                                              seed, 0.02);
    const Dataset data = trace_dataset(trace::SyntheticTraceGenerator(gen).generate());
    ASSERT_GT(data.rows(), 1000u);

    GBDTConfig configs[3];
    configs[0].n_trees = 10;
    configs[1].n_trees = 8;
    configs[1].max_depth = 4;
    configs[1].max_bins = 33;
    configs[1].subsample = 1.0;
    configs[2].n_trees = 8;
    configs[2].min_samples_leaf = 5;
    configs[2].max_training_rows = data.rows() / 2;
    for (GBDTConfig cfg : configs) {
      cfg.seed = seed;
      cfg.engine = GBDTEngine::kHistogram;
      GBDTConfig ref_cfg = cfg;
      ref_cfg.engine = GBDTEngine::kReference;
      GBDTRegressor hist_model(cfg);
      GBDTRegressor ref_model(ref_cfg);
      hist_model.fit(data);
      ref_model.fit(data);
      ASSERT_TRUE(hist_model.trained());
      expect_models_identical(hist_model, ref_model);
    }
  }
}

TEST(GbdtEngineParity, PredictManyMatchesPerRowBitwise) {
  auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 11,
                                            0.02);
  const Dataset data = trace_dataset(trace::SyntheticTraceGenerator(gen).generate());
  GBDTConfig cfg;
  cfg.n_trees = 10;
  GBDTRegressor model(cfg);
  model.fit(data);
  const auto batched = model.predict_many(data);
  ASSERT_EQ(batched.size(), data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    ASSERT_EQ(batched[r], model.predict(data.row(r))) << "row " << r;
  }
}

// The AVX2 histogram kernel reorders only integer adds, so a fit with the
// dispatch on must reproduce the scalar fit bit-for-bit — trees, thresholds,
// leaf values, gains, and per-iteration RMSE — across configs.
TEST(SimdParity, FitBitIdenticalToScalar) {
  {
    ScopedSimd probe(true);
    if (!probe.active()) GTEST_SKIP() << "AVX2 unavailable: " << common::simd_mode();
  }
  auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 23,
                                            0.02);
  const Dataset data = trace_dataset(trace::SyntheticTraceGenerator(gen).generate());
  GBDTConfig configs[2];
  configs[0].n_trees = 10;
  configs[1].n_trees = 8;
  configs[1].max_depth = 4;
  configs[1].max_bins = 33;
  configs[1].subsample = 1.0;
  for (const GBDTConfig& cfg : configs) {
    GBDTRegressor simd_model(cfg);
    GBDTRegressor scalar_model(cfg);
    {
      ScopedSimd simd(true);
      simd_model.fit(data);
    }
    {
      ScopedSimd scalar(false);
      scalar_model.fit(data);
    }
    ASSERT_TRUE(simd_model.trained());
    expect_models_identical(simd_model, scalar_model);
  }
}

// The AVX2 forest walk performs the same separate multiply-then-add per
// (row, tree) as the scalar loop, so batched predictions must match the
// scalar batch AND the per-row reference bitwise — including the tail rows
// the kernel hands back to the scalar walker.
TEST(SimdParity, PredictManyBitIdenticalToScalar) {
  {
    ScopedSimd probe(true);
    if (!probe.active()) GTEST_SKIP() << "AVX2 unavailable: " << common::simd_mode();
  }
  auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 31,
                                            0.02);
  const Dataset data = trace_dataset(trace::SyntheticTraceGenerator(gen).generate());
  GBDTConfig cfg;
  cfg.n_trees = 12;
  GBDTRegressor model(cfg);
  model.fit(data);
  std::vector<double> simd_out;
  std::vector<double> scalar_out;
  {
    ScopedSimd simd(true);
    simd_out = model.predict_many(data);
  }
  {
    ScopedSimd scalar(false);
    scalar_out = model.predict_many(data);
  }
  ASSERT_EQ(simd_out.size(), data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    ASSERT_EQ(simd_out[r], scalar_out[r]) << "row " << r;
    ASSERT_EQ(simd_out[r], model.predict(data.row(r))) << "row " << r;
  }
}

// Lifted row cap: with the packed 24-bit limit injected down to toy scale,
// nodes shard into wide histograms (observable via the build counter) and
// the fit stays bit-identical to both the default-cap fit and the
// from-scratch reference engine — no fallback, no drift. Runs on both sides
// of the SIMD dispatch.
TEST(SimdParity, WideShardedHistogramsMatchPackedAndReference) {
  auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 37,
                                            0.02);
  const Dataset data = trace_dataset(trace::SyntheticTraceGenerator(gen).generate());
  ASSERT_GT(data.rows(), 1024u);
  GBDTConfig cfg;
  cfg.n_trees = 8;
  GBDTConfig ref_cfg = cfg;
  ref_cfg.engine = GBDTEngine::kReference;

  GBDTRegressor default_cap_model(cfg);
  default_cap_model.fit(data);
  GBDTRegressor ref_model(ref_cfg);
  ref_model.fit(data);

  for (const bool simd_on : {true, false}) {
    ScopedSimd simd(simd_on);
    if (simd_on && !simd.active()) continue;  // covered by the scalar pass
    ScopedPackedRowLimit cap(512);
    const std::uint64_t wide_before = gbdt_wide_histogram_builds();
    GBDTRegressor sharded_model(cfg);
    sharded_model.fit(data);
    // The root (and every early node) exceeds the injected cap, so the wide
    // path must actually have run.
    EXPECT_GT(gbdt_wide_histogram_builds(), wide_before)
        << "simd=" << simd_on;
    expect_models_identical(sharded_model, default_cap_model);
    expect_models_identical(sharded_model, ref_model);
  }
}

}  // namespace
}  // namespace helios::ml

namespace helios::core {
namespace {

TEST(EvaluatorParity, ChunkedMatchesSerialBitwise) {
  auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 13,
                                            0.02);
  const trace::Trace t = trace::SyntheticTraceGenerator(gen).generate();
  const auto train =
      t.between(trace::helios_trace_begin(), from_civil(2020, 9, 1));
  const auto eval = t.between(from_civil(2020, 9, 1), trace::helios_trace_end());

  QssfConfig cfg;
  cfg.gbdt.n_trees = 15;
  for (const bool trained : {true, false}) {
    QssfService serial_svc(cfg);
    QssfService chunked_svc(cfg);
    if (trained) {
      serial_svc.fit(train);
      chunked_svc.fit(train);
    }
    EvalOptions serial_opts;
    serial_opts.execution = common::ExecMode::kSerial;
    OnlinePriorityEvaluator serial_eval(serial_svc, eval, serial_opts);

    // Any window count must reproduce the serial result exactly, including
    // windows far smaller than a thread would ever get.
    for (const std::size_t windows : {1u, 3u, 8u}) {
      QssfService svc(cfg);
      if (trained) svc.fit(train);
      EvalOptions opts;
      opts.execution = common::ExecMode::kParallel;
      opts.min_window = 1;
      opts.max_windows = windows;
      OnlinePriorityEvaluator chunked_eval(svc, eval, opts);
      ASSERT_EQ(serial_eval.predicted_gpu_time(),
                chunked_eval.predicted_gpu_time())
          << "windows=" << windows << " trained=" << trained;
      ASSERT_EQ(serial_eval.actual_gpu_time(), chunked_eval.actual_gpu_time());
      for (const auto& j : eval.jobs()) {
        if (!j.is_gpu_job()) continue;
        ASSERT_EQ(serial_eval.priority_of(j), chunked_eval.priority_of(j))
            << "job " << j.job_id << " windows=" << windows;
        // The service's final rolling state must match the serial feed too.
        ASSERT_EQ(serial_svc.rolling_estimate(eval, j),
                  svc.rolling_estimate(eval, j))
            << "job " << j.job_id << " windows=" << windows;
      }
    }
  }
}

// End-to-end dispatch sweep: the whole evaluator pipeline (GBDT fit +
// batched predict_many + windowed replay) must produce bit-identical
// priorities and quality vectors with SIMD forced on vs forced off.
TEST(EvaluatorParity, SimdDispatchBitIdentical) {
  {
    ScopedSimd probe(true);
    if (!probe.active()) {
      GTEST_SKIP() << "AVX2 unavailable: " << common::simd_mode();
    }
  }
  auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 41,
                                            0.02);
  const trace::Trace t = trace::SyntheticTraceGenerator(gen).generate();
  const auto train =
      t.between(trace::helios_trace_begin(), from_civil(2020, 9, 1));
  const auto eval = t.between(from_civil(2020, 9, 1), trace::helios_trace_end());

  QssfConfig cfg;
  cfg.gbdt.n_trees = 12;
  auto run = [&](bool simd_on) {
    ScopedSimd simd(simd_on);
    QssfService svc(cfg);
    svc.fit(train);
    OnlinePriorityEvaluator ev(svc, eval, {});
    return std::make_pair(ev.predicted_gpu_time(), ev.actual_gpu_time());
  };
  const auto simd_result = run(true);
  const auto scalar_result = run(false);
  ASSERT_EQ(simd_result.first, scalar_result.first);
  ASSERT_EQ(simd_result.second, scalar_result.second);
}

// A copy-on-write overlay must be observationally bit-identical to a plain
// estimator that started from a full copy of the base — estimates for known,
// touched, and unknown users alike — while materializing only the user
// histories its observe stream touched.
TEST(EvaluatorParity, RollingOverlayMatchesFullCopy) {
  auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 17,
                                            0.02);
  const trace::Trace t = trace::SyntheticTraceGenerator(gen).generate();
  const auto train =
      t.between(trace::helios_trace_begin(), from_civil(2020, 9, 1));
  const auto eval = t.between(from_civil(2020, 9, 1), trace::helios_trace_end());

  QssfConfig cfg;
  auto base = std::make_shared<const RollingEstimator>([&] {
    RollingEstimator r(cfg);
    for (const auto& j : train.jobs()) r.observe(train, j);
    return r;
  }());

  RollingEstimator full = *base;  // the reference: eager full copy
  RollingOverlay overlay(base);
  std::size_t fed = 0;
  const trace::JobRecord* first_gpu = nullptr;
  for (const auto& j : eval.jobs()) {
    if (!j.is_gpu_job()) continue;
    if (first_gpu == nullptr) first_gpu = &j;
    // Interleave estimate checks with observes so both mid-stream and final
    // states are compared.
    ASSERT_EQ(full.estimate(eval, j), overlay.estimate(eval, j))
        << "job " << j.job_id;
    full.observe(eval, j);
    overlay.observe(eval, j);
    if (++fed >= 2000) break;
  }
  // The delta holds only touched users — strictly fewer than a full copy
  // would carry (the September stream touches a subset of all-time users).
  EXPECT_GT(overlay.delta_users(), 0u);
  EXPECT_LT(overlay.delta_users(), t.users().size());
  // ...and its delta's node storage bump-allocates from the overlay's own
  // arena, not the global heap.
  EXPECT_GT(overlay.arena_bytes(), 0u);

  // Flattening reproduces the full-copy state exactly, double-feed dedupe
  // included.
  RollingEstimator flat = overlay.materialize();
  EXPECT_EQ(flat.observed_jobs(), full.observed_jobs());
  for (const auto& j : eval.jobs()) {
    if (!j.is_gpu_job()) continue;
    ASSERT_EQ(full.estimate(eval, j), flat.estimate(eval, j));
  }
  ASSERT_NE(first_gpu, nullptr);
  flat.observe(eval, *first_gpu);  // already folded in: no-op
  EXPECT_EQ(flat.observed_jobs(), full.observed_jobs());
}

TEST(EvaluatorParity, EmptyAndCpuOnlyTraces) {
  trace::ClusterSpec spec;
  spec.name = "s";
  spec.vcs = {{"vc0", 2, 8}};
  spec.nodes = 2;
  trace::Trace empty(spec);
  trace::Trace cpu_only(spec);
  cpu_only.add(0, 100, 0, 8, "u", "vc0", "prep", trace::JobState::kCompleted);

  for (const auto execution : {common::ExecMode::kParallel, common::ExecMode::kSerial}) {
    EvalOptions opts;
    opts.execution = execution;
    QssfService svc;
    OnlinePriorityEvaluator a(svc, empty, opts);
    EXPECT_TRUE(a.predicted_gpu_time().empty());
    OnlinePriorityEvaluator b(svc, cpu_only, opts);
    EXPECT_TRUE(b.predicted_gpu_time().empty());
  }
}

}  // namespace
}  // namespace helios::core
