#include "trace/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/thread_pool.h"

namespace helios::trace {

namespace {

constexpr std::int32_t kMaxDurationSeconds = 50 * 24 * 3600;  // 50 days (Table 2)

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// VC workload classes: bigger VCs host bigger jobs (Figure 4 correlation).
enum class VCClass { kSmall, kMixed, kLarge };

struct SizeMix {
  std::vector<double> weights;  // weight of 2^k GPUs at index k
};

SizeMix size_mix_for(VCClass c, double single_gpu_bias) {
  SizeMix m;
  switch (c) {
    case VCClass::kSmall:
      m.weights = {0.68, 0.17, 0.10, 0.04, 0.01};
      break;
    case VCClass::kMixed:
      m.weights = {0.55, 0.15, 0.15, 0.10, 0.03, 0.015, 0.005};
      break;
    case VCClass::kLarge:
      m.weights = {0.38, 0.12, 0.17, 0.18, 0.09, 0.04, 0.015, 0.004, 0.001};
      break;
  }
  if (single_gpu_bias > 0.0) {
    // Move mass onto single-GPU jobs (Earth: ~90% single overall).
    double total = std::accumulate(m.weights.begin(), m.weights.end(), 0.0);
    for (auto& w : m.weights) w *= (1.0 - single_gpu_bias);
    m.weights[0] += single_gpu_bias * total;
  }
  return m;
}

/// A recurring job archetype of one user (model training runs, eval loops,
/// preprocessing pipelines, ...). Instances share the name stem and draw
/// durations around the template median -> this is the predictability QSSF
/// exploits.
struct Template {
  std::uint32_t name_id = 0;                 // base name
  std::vector<std::uint32_t> variant_ids;    // name variants ("_v0".."_v3")
  double mu = 0.0;                           // log-median of duration
  double sigma = 0.5;                        // per-instance noise
  std::int32_t gpus = 1;
  double weight = 1.0;
  bool debug = false;
};

struct UserModel {
  std::uint32_t user_id = 0;  // interned id
  std::vector<Template> templates;
  CategoricalSampler template_sampler;
  double activity = 1.0;
};

struct VCPlan {
  int vc_index = 0;
  std::uint32_t vc_id = 0;
  double target_util = 0.8;
  VCClass cls = VCClass::kMixed;
  double job_share = 0.0;
  std::int64_t n_jobs = 0;
  std::vector<UserModel> users;
  CategoricalSampler user_sampler;
};

const char* const kKinds[] = {"train", "finetune", "eval",
                              "preprocess", "export", "search"};
const char* const kModels[] = {"resnet50", "bert", "gpt2", "mnasnet", "yolov3",
                               "pointnet", "deeplab", "lstm", "xlnet", "vgg16",
                               "mobilenet", "transformer"};
const char* const kDebugNames[] = {"debug", "test", "bash", "python",
                                   "jupyter", "interactive"};

/// Completion probability by GPU count (Figure 7b shape: decreasing with
/// size, small bump at 2 GPUs, <25% at >=64 GPUs).
double completion_prob(std::int32_t gpus, double base) {
  const double lg = std::log2(static_cast<double>(std::max(1, gpus)));
  double p = base * std::pow(0.83, lg);
  if (gpus == 2) p += 0.06;
  return std::clamp(p, 0.10, 0.95);
}

/// Among unsuccessful jobs, the canceled share grows with job size (big jobs
/// are early-stopped rather than crashing; Figure 7b: ~70% canceled at >=64).
double canceled_share(std::int32_t gpus) {
  const double lg = std::log2(static_cast<double>(std::max(1, gpus)));
  return std::clamp(0.60 + 0.06 * lg, 0.0, 0.93);
}

}  // namespace

DiurnalProfile DiurnalProfile::standard() noexcept {
  DiurnalProfile p;
  // Hand-shaped to Figure 2(b): overnight trough, ramp from 08h, dip at 12h
  // (lunch) and 18h (dinner), evening shoulder.
  constexpr double shape[24] = {
      0.55, 0.42, 0.34, 0.30, 0.28, 0.30,   // 00-05
      0.38, 0.52, 0.72, 0.95, 1.05, 1.10,   // 06-11
      0.88, 1.00, 1.10, 1.12, 1.10, 1.05,   // 12-17
      0.85, 0.98, 1.05, 1.00, 0.88, 0.70};  // 18-23
  std::copy(std::begin(shape), std::end(shape), p.hourly.begin());
  p.weekend_factor = 0.78;
  return p;
}

ClusterWorkloadKnobs helios_knobs(const std::string& cluster_name) {
  ClusterWorkloadKnobs k;
  if (cluster_name == "Venus") {
    k.gpu_job_fraction = 0.55;
    k.target_utilization = 0.80;
    k.n_users = 250;
    k.cpu_instant_fraction = 0.45;
  } else if (cluster_name == "Earth") {
    k.gpu_job_fraction = 0.35;
    // Offered-load target; realized utilization lands a few points lower
    // (gang packing + queue spill), near the paper's 73%.
    k.target_utilization = 0.80;
    k.n_users = 300;
    k.cpu_instant_fraction = 0.90;
    k.duration_median_scale = 0.55;  // Earth's GPU jobs are overall shorter
    // Mostly single-GPU short jobs, yet 73% utilization: the tail must be
    // extremely heavy (mean/median ~300x).
    k.duration_spread = 3.1;
    k.single_gpu_bias = 0.80;        // ~90% single-GPU jobs
  } else if (cluster_name == "Saturn") {
    k.gpu_job_fraction = 0.52;
    k.target_utilization = 0.85;  // highest utilization, smallest variance
    k.n_users = 400;
    k.cpu_instant_fraction = 0.45;
  } else if (cluster_name == "Uranus") {
    k.gpu_job_fraction = 0.50;
    k.target_utilization = 0.78;
    k.n_users = 250;
    k.cpu_instant_fraction = 0.45;
  }
  return k;
}

ClusterWorkloadKnobs philly_knobs() {
  ClusterWorkloadKnobs k;
  k.gpu_job_fraction = 1.0;  // the Philly trace contains only GPU jobs
  k.target_utilization = 0.58;
  k.n_users = 300;
  k.duration_median_scale = 6.0;  // Philly jobs run much longer (Table 2)
  k.single_gpu_bias = 0.60;       // Philly averages 1.75 GPUs per job
  k.month_volatility = 0.25;
  k.failed_fast = false;  // YARN retries: failures consume full duration
  k.base_completion = 0.60;
  return k;
}

ClusterWorkloadKnobs pai_knobs() {
  // Wang et al. (arXiv:1910.05930) characterize PAI as a stream of short,
  // frequently resubmitted training jobs with a dominant CPU component:
  // most tasks request no GPU at all, GPU requests concentrate on 1-2
  // cards, and job medians sit at minutes rather than hours.
  ClusterWorkloadKnobs k;
  k.gpu_job_fraction = 0.40;       // heavier CPU component than any Helios cluster
  k.target_utilization = 0.65;
  k.cpu_instant_fraction = 0.10;   // CPU jobs are real work, not state queries
  k.duration_median_scale = 0.20;  // minutes-scale medians
  k.duration_spread = 1.6;         // narrower tail than Helios
  k.single_gpu_bias = 0.70;        // GPU demand concentrates on 1-2 cards
  k.n_users = 350;
  k.month_volatility = 0.30;
  k.failed_fast = true;
  k.base_completion = 0.78;        // recurring production jobs mostly complete
  k.user_zipf_s = 1.20;
  k.burst_probability = 0.55;      // high resubmission rate of recurring jobs
  return k;
}

namespace {
constexpr std::int64_t kWarmupDays = 35;
}

GeneratorConfig GeneratorConfig::helios(const ClusterSpec& cluster,
                                        std::uint64_t seed, double scale) {
  GeneratorConfig c;
  // Scale nodes together with job counts so offered load per GPU — and with
  // it utilization, queuing, and scheduler behaviour — is scale-invariant.
  c.cluster = scale_cluster(cluster, scale);
  c.knobs = helios_knobs(cluster.name);
  c.window_begin = helios_trace_begin();
  c.begin = c.window_begin - kWarmupDays * kSecondsPerDay;
  c.end = helios_trace_end();
  c.scale = scale;
  c.seed = seed ^ fnv1a(cluster.name);
  return c;
}

GeneratorConfig GeneratorConfig::philly(std::uint64_t seed, double scale) {
  GeneratorConfig c;
  c.cluster = scale_cluster(philly_cluster(), scale);
  c.knobs = philly_knobs();
  c.window_begin = philly_trace_begin();
  c.begin = c.window_begin - kWarmupDays * kSecondsPerDay;
  c.end = philly_trace_end();
  c.scale = scale;
  c.seed = seed ^ fnv1a("Philly");
  return c;
}

GeneratorConfig GeneratorConfig::pai(std::uint64_t seed, double scale) {
  GeneratorConfig c;
  c.cluster = scale_cluster(pai_cluster(), scale);
  c.knobs = pai_knobs();
  // Helios window: PAI cells of a sweep line up in time with Helios cells.
  c.window_begin = helios_trace_begin();
  c.begin = c.window_begin - kWarmupDays * kSecondsPerDay;
  c.end = helios_trace_end();
  c.scale = scale;
  c.seed = seed ^ fnv1a("PAI");
  return c;
}

SyntheticTraceGenerator::SyntheticTraceGenerator(GeneratorConfig config)
    : config_(std::move(config)) {}

namespace {

/// Per-day submission weights for the generation window, split into the
/// volatile single-GPU stream and the stable multi-GPU stream (Figure 3).
struct DayWeights {
  UnixTime begin = 0;
  int n_days = 0;
  std::vector<double> single_gpu;
  std::vector<double> multi_gpu;
};

DayWeights build_day_weights(const GeneratorConfig& cfg, Rng& rng) {
  DayWeights w;
  w.begin = floor_day(cfg.begin);
  w.n_days = static_cast<int>((cfg.end - w.begin + kSecondsPerDay - 1) /
                              kSecondsPerDay);
  w.single_gpu.resize(static_cast<std::size_t>(w.n_days));
  w.multi_gpu.resize(static_cast<std::size_t>(w.n_days));

  // One volatility factor per calendar month for each stream.
  std::vector<double> single_month(16, 1.0);
  std::vector<double> multi_month(16, 1.0);
  for (auto& f : single_month) f = std::exp(rng.normal(0.0, cfg.knobs.month_volatility));
  for (auto& f : multi_month) f = std::exp(rng.normal(0.0, 0.08));

  for (int d = 0; d < w.n_days; ++d) {
    const UnixTime t = w.begin + static_cast<UnixTime>(d) * kSecondsPerDay;
    const CivilTime c = to_civil(t);
    const double weekend = is_holiday(t) ? cfg.diurnal.weekend_factor : 1.0;
    const auto m = static_cast<std::size_t>(c.month - 1);
    w.single_gpu[static_cast<std::size_t>(d)] = weekend * single_month[m];
    w.multi_gpu[static_cast<std::size_t>(d)] = weekend * multi_month[m];
  }
  return w;
}

/// Samples a submission timestamp: day by stream weight, hour by the diurnal
/// curve, second uniform within the hour.
UnixTime sample_submit(const DayWeights& days, const CategoricalSampler& day_single,
                       const CategoricalSampler& day_multi,
                       const CategoricalSampler& hour_sampler, bool single_gpu,
                       Rng& rng) {
  const std::size_t day =
      single_gpu ? day_single.sample(rng) : day_multi.sample(rng);
  const std::size_t hour = hour_sampler.sample(rng);
  const auto sec = static_cast<UnixTime>(rng.uniform_index(3600));
  return days.begin + static_cast<UnixTime>(day) * kSecondsPerDay +
         static_cast<UnixTime>(hour) * kSecondsPerHour + sec;
}

struct ClusterPlan {
  std::vector<VCPlan> vcs;
  std::vector<std::string> user_names;  // per cluster-local user index
};

/// Duration median grows sub-linearly with GPU demand: multi-GPU production
/// runs train longer than 1-GPU eval/debug jobs. Keeps the global median
/// near the paper's 206s while putting ~60% of GPU time in >=8-GPU jobs.
double base_median_seconds(std::int32_t gpus) {
  return 200.0 * std::pow(static_cast<double>(gpus), 0.45);
}

}  // namespace

Trace SyntheticTraceGenerator::generate() {
  const auto& cfg = config_;
  const auto& knobs = cfg.knobs;
  Trace trace(cfg.cluster);
  Rng master(cfg.seed);

  // ---- global tables -------------------------------------------------------
  const DayWeights days = build_day_weights(cfg, master);
  const CategoricalSampler day_single(days.single_gpu);
  const CategoricalSampler day_multi(days.multi_gpu);
  const CategoricalSampler hour_sampler(
      std::span<const double>(cfg.diurnal.hourly.data(), 24));

  // User names: a shared pool (users submitting to several clusters) plus a
  // cluster-exclusive range.
  const int n_users = std::max(4, knobs.n_users);
  const auto cluster_base =
      static_cast<int>(1000 + (fnv1a(cfg.cluster.name) % 97) * 83);
  std::vector<std::string> user_names;
  user_names.reserve(static_cast<std::size_t>(n_users));
  char buf[32];
  for (int i = 0; i < n_users; ++i) {
    const int global = i < 60 ? i : cluster_base + i;
    std::snprintf(buf, sizeof buf, "u%04d", global);
    user_names.emplace_back(buf);
  }

  // ---- VC plans ------------------------------------------------------------
  const auto& vcs = cfg.cluster.vcs;
  const std::size_t n_vcs = vcs.size();
  std::vector<std::size_t> by_size(n_vcs);
  std::iota(by_size.begin(), by_size.end(), 0);
  std::sort(by_size.begin(), by_size.end(), [&](std::size_t a, std::size_t b) {
    return vcs[a].nodes > vcs[b].nodes;
  });

  std::vector<VCPlan> plans(n_vcs);
  for (std::size_t rank = 0; rank < n_vcs; ++rank) {
    const std::size_t vi = by_size[rank];
    VCPlan& p = plans[vi];
    p.vc_index = static_cast<int>(vi);
    p.vc_id = trace.vcs().intern(vcs[vi].name);
    const double frac = n_vcs > 1
                            ? static_cast<double>(rank) / static_cast<double>(n_vcs - 1)
                            : 0.0;
    p.cls = frac < 0.2    ? VCClass::kLarge
            : frac < 0.62 ? VCClass::kMixed
                          : VCClass::kSmall;
    const double class_util = p.cls == VCClass::kLarge   ? 0.10
                              : p.cls == VCClass::kMixed ? 0.00
                                                         : -0.12;
    p.target_util = std::clamp(
        knobs.target_utilization + class_util + master.normal(0.0, 0.05), 0.45,
        0.97);
    const double count_factor = p.cls == VCClass::kLarge   ? 0.45
                                : p.cls == VCClass::kMixed ? 1.0
                                                           : 1.6;
    p.job_share = std::pow(static_cast<double>(vcs[vi].nodes), 0.7) * count_factor;
  }

  // Rescale per-VC utilization so the capacity-weighted mean hits the knob.
  {
    double cap_util = 0.0;
    double cap = 0.0;
    for (std::size_t vi = 0; vi < n_vcs; ++vi) {
      cap_util += plans[vi].target_util * vcs[vi].total_gpus();
      cap += vcs[vi].total_gpus();
    }
    const double adjust = knobs.target_utilization / std::max(1e-9, cap_util / cap);
    for (auto& p : plans) p.target_util = std::clamp(p.target_util * adjust, 0.40, 0.97);
    double share_sum = 0.0;
    for (const auto& p : plans) share_sum += p.job_share;
    for (auto& p : plans) p.job_share /= share_sum;
  }

  // ---- users & templates ---------------------------------------------------
  // Users are partitioned across VCs (each group has its own VC, §2.1),
  // proportionally to VC job share.
  std::vector<std::uint32_t> user_ids;
  user_ids.reserve(user_names.size());
  for (const auto& name : user_names) user_ids.push_back(trace.users().intern(name));

  std::vector<std::uint32_t> debug_name_ids;
  for (const char* n : kDebugNames) debug_name_ids.push_back(trace.names().intern(n));

  // reference_jobs covers the published window; extend the volume pro rata
  // over the warm-up prefix.
  const UnixTime window_begin =
      cfg.window_begin > 0 ? cfg.window_begin : cfg.begin;
  const double span_ratio =
      static_cast<double>(cfg.end - cfg.begin) /
      static_cast<double>(std::max<UnixTime>(1, cfg.end - window_begin));
  const std::int64_t total_jobs = std::llround(
      static_cast<double>(cfg.cluster.reference_jobs) * cfg.scale * span_ratio);
  const auto gpu_jobs_target =
      static_cast<std::int64_t>(total_jobs * knobs.gpu_job_fraction);

  int next_user = 0;
  for (std::size_t vi = 0; vi < n_vcs; ++vi) {
    VCPlan& p = plans[vi];
    p.n_jobs = std::llround(static_cast<double>(gpu_jobs_target) * p.job_share);
    int vc_users = std::max(
        1, static_cast<int>(std::lround(p.job_share * static_cast<double>(n_users))));
    if (vi + 1 == n_vcs) vc_users = std::max(1, n_users - next_user);
    const SizeMix mix = size_mix_for(p.cls, knobs.single_gpu_bias);
    const CategoricalSampler size_sampler(mix.weights);

    std::vector<double> activities;
    for (int u = 0; u < vc_users; ++u) {
      UserModel um;
      const int uidx = (next_user + u) % n_users;
      um.user_id = user_ids[static_cast<std::size_t>(uidx)];
      um.activity = master.pareto(1.0, knobs.user_zipf_s);
      const int n_templates = 2 + static_cast<int>(master.uniform_index(6));
      std::vector<double> tweights;
      for (int t = 0; t < n_templates; ++t) {
        Template tpl;
        const std::size_t k = size_sampler.sample(master);
        tpl.gpus = 1 << k;
        while (tpl.gpus > vcs[vi].total_gpus() && tpl.gpus > 1) tpl.gpus /= 2;
        double median =
            base_median_seconds(tpl.gpus) * knobs.duration_median_scale *
            std::exp(master.normal(0.0, knobs.duration_spread));
        if (t == 0) {
          // Every user keeps at least one production training template that
          // runs for hours: guarantees each VC a stretchable long-job tail
          // for the utilization calibration (a VC whose sampled templates
          // were all short could otherwise never reach its offered load).
          median = std::max(median, 3.0 * 3600.0 *
                                        std::exp(master.normal(0.0, 0.8)));
        }
        tpl.mu = std::log(std::max(2.0, median));
        tpl.sigma = master.uniform(0.30, 0.70);
        tpl.weight = master.pareto(1.0, 1.2);
        const char* kind = kKinds[master.uniform_index(std::size(kKinds))];
        const char* model = kModels[master.uniform_index(std::size(kModels))];
        std::string base = user_names[static_cast<std::size_t>(uidx)] + "_" +
                           kind + "_" + model;
        tpl.name_id = trace.names().intern(base);
        for (int v = 0; v < 4; ++v) {
          tpl.variant_ids.push_back(trace.names().intern(base + "_v" + std::to_string(v)));
        }
        tweights.push_back(tpl.weight);
        um.templates.push_back(std::move(tpl));
      }
      // One generic debug/eval template per user: short, failure-heavy,
      // small; the paper's Implication #6 workload.
      Template dbg;
      dbg.debug = true;
      dbg.gpus = master.bernoulli(0.7) ? 1 : 2;
      dbg.mu = std::log(50.0 * knobs.duration_median_scale + 2.0);
      dbg.sigma = 0.9;
      dbg.weight = 0.55 * static_cast<double>(n_templates);
      dbg.name_id = debug_name_ids[master.uniform_index(debug_name_ids.size())];
      dbg.variant_ids = debug_name_ids;
      tweights.push_back(dbg.weight);
      um.templates.push_back(std::move(dbg));

      um.template_sampler = CategoricalSampler(tweights);
      activities.push_back(um.activity);
      p.users.push_back(std::move(um));
    }
    next_user += vc_users;
    p.user_sampler = CategoricalSampler(activities);
  }

  // ---- GPU job emission (parallel across VCs, deterministic per-VC seeds) --
  const int cpus_per_gpu =
      std::max(1, cfg.cluster.cpus_per_node / cfg.cluster.gpus_per_node);
  std::vector<std::vector<JobRecord>> vc_jobs(n_vcs);
  const UnixTime span = cfg.end - cfg.begin;
  const std::uint64_t seed_base = cfg.seed;
  const ClusterWorkloadKnobs knobs_copy = knobs;

  parallel_for(
      0, n_vcs,
      [&](std::size_t vi) {
        const VCPlan& p = plans[vi];
        Rng rng(seed_base ^ (0x9e3779b97f4a7c15ULL * (vi + 1)));
        auto& out = vc_jobs[vi];
        out.reserve(static_cast<std::size_t>(p.n_jobs));
        while (static_cast<std::int64_t>(out.size()) < p.n_jobs) {
          const UserModel& um = p.users[p.user_sampler.sample(rng)];
          const Template& tpl = um.templates[um.template_sampler.sample(rng)];
          // Feedback-driven exploration: a submission event is a burst of
          // 1..5 near-simultaneous configurations of the same template.
          int burst = 1;
          if (!tpl.debug && rng.bernoulli(knobs_copy.burst_probability)) {
            burst = 2 + static_cast<int>(rng.uniform_index(4));
          }
          UnixTime submit = sample_submit(days, day_single, day_multi,
                                          hour_sampler, tpl.gpus == 1, rng);
          for (int b = 0; b < burst &&
                          static_cast<std::int64_t>(out.size()) < p.n_jobs;
               ++b) {
            JobRecord j;
            j.submit_time = submit;
            submit += 30 + static_cast<UnixTime>(rng.uniform_index(270));
            j.start_time = j.submit_time;
            j.num_gpus = tpl.gpus;
            j.num_cpus = tpl.gpus * cpus_per_gpu;
            j.user = um.user_id;
            j.vc = p.vc_id;
            j.name = rng.bernoulli(0.6)
                         ? tpl.name_id
                         : tpl.variant_ids[rng.uniform_index(tpl.variant_ids.size())];
            double dur = rng.lognormal(tpl.mu, tpl.sigma);

            // Final status (Figure 7 shapes).
            const double pc = tpl.debug
                                  ? 0.42
                                  : completion_prob(tpl.gpus, knobs_copy.base_completion);
            const double r = rng.uniform();
            if (r < pc) {
              j.state = JobState::kCompleted;
            } else {
              double cshare = tpl.debug ? 0.25 : canceled_share(tpl.gpus);
              // Retry semantics (Philly): more of the unsuccessful jobs end
              // as failures, and they burn their whole runtime (Figure 1b).
              if (!knobs_copy.failed_fast) cshare *= 0.70;
              if (rng.uniform() < cshare) {
                j.state = JobState::kCanceled;
                dur *= rng.uniform(0.50, 1.0);  // early-stopped
              } else {
                j.state = JobState::kFailed;
                if (knobs_copy.failed_fast && rng.bernoulli(0.65)) {
                  dur = std::min(dur, 1.0 + rng.lognormal(std::log(90.0), 1.2));
                }
              }
            }
            j.duration = static_cast<std::int32_t>(
                std::clamp(dur, 1.0, static_cast<double>(kMaxDurationSeconds)));
            out.push_back(j);
          }
        }

        // Per-VC offered-load calibration: stretch the long-job tail so that
        // total GPU time hits target_util * capacity * span. Stretch weight
        // ramps from 0 below 4 h to 1 above 12 h (log-graduated): the
        // duration median, the short-job CDF, *and* the 1-4 h daytime band
        // (whose same-day completions produce Figure 2's day/night
        // utilization swing) are untouched; only multi-half-day production
        // jobs absorb the calibration. The factor is solved by bisection on
        // the monotone offered-load function.
        const double capacity_time = static_cast<double>(vcs[vi].total_gpus()) *
                                     static_cast<double>(span);
        const double target_time = p.target_util * capacity_time;
        const double w_lo = std::log(1.0 * 3600.0);
        const double w_hi = std::log(6.0 * 3600.0);
        auto stretch_weight = [&](double dur) {
          if (dur <= 1.0 * 3600.0) return 0.0;
          if (dur >= 6.0 * 3600.0) return 1.0;
          return (std::log(dur) - w_lo) / (w_hi - w_lo);
        };
        // GPU time is accounted clipped to the generation window: a job
        // stretched past cfg.end only occupies the cluster until cfg.end, so
        // the unclipped tail would otherwise overshoot the target without
        // raising in-window utilization.
        double short_total = 0.0;
        struct TailJob {
          double duration;
          double gpus;
          double weight;
          double horizon;  ///< seconds from submit to cfg.end
        };
        std::vector<TailJob> tail;
        for (const auto& j : out) {
          const auto dur = static_cast<double>(j.duration);
          const double horizon =
              std::max(1.0, static_cast<double>(cfg.end - j.submit_time));
          const double w = stretch_weight(dur);
          if (w > 0.0) {
            tail.push_back({dur, static_cast<double>(j.num_gpus), w, horizon});
          } else {
            short_total += std::min(dur, horizon) * j.num_gpus;
          }
        }
        auto offered = [&](double f) {
          double total = short_total;
          const double lf = std::log(f);
          for (const auto& tj : tail) {
            total += std::min({tj.duration * std::exp(tj.weight * lf),
                               static_cast<double>(kMaxDurationSeconds),
                               tj.horizon}) *
                     tj.gpus;
          }
          return total;
        };
        double f_lo = 0.02;
        double f_hi = 150.0;
        if (offered(f_lo) < target_time && offered(f_hi) > target_time) {
          for (int iter = 0; iter < 40; ++iter) {
            const double mid = std::sqrt(f_lo * f_hi);  // bisect in log space
            (offered(mid) < target_time ? f_lo : f_hi) = mid;
          }
        } else {
          // Target unreachable within bounds: pin to the nearer bound.
          f_lo = f_hi = offered(f_hi) <= target_time ? f_hi : f_lo;
        }
        const double f = std::sqrt(f_lo * f_hi);
        for (auto& j : out) {
          const auto dur = static_cast<double>(j.duration);
          const double w = stretch_weight(dur);
          if (w > 0.0) {
            j.duration = static_cast<std::int32_t>(std::clamp(
                dur * std::pow(f, w), 1.0,
                static_cast<double>(kMaxDurationSeconds)));
          }
        }
      },
      /*grain=*/1);

  // ---- CPU jobs (cluster level) --------------------------------------------
  const std::int64_t cpu_jobs_target = total_jobs - gpu_jobs_target;
  std::vector<JobRecord> cpu_jobs;
  if (cpu_jobs_target > 0) {
    cpu_jobs.reserve(static_cast<std::size_t>(cpu_jobs_target));
    Rng rng(cfg.seed ^ 0xc0ffee123456789ULL);
    // Only ~25% of users run CPU jobs, with steep concentration (Figure 8b).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> cpu_users;  // user, vc
    std::vector<double> weights;
    for (const auto& p : plans) {
      for (const auto& um : p.users) {
        if (rng.bernoulli(0.25)) {
          cpu_users.emplace_back(um.user_id, p.vc_id);
          weights.push_back(rng.pareto(1.0, 0.75));
        }
      }
    }
    if (cpu_users.empty()) {
      cpu_users.emplace_back(user_ids[0], plans[0].vc_id);
      weights.push_back(1.0);
    }
    const CategoricalSampler cpu_user_sampler(weights);
    const std::uint32_t query_name = trace.names().intern("query_state");
    std::vector<std::uint32_t> prep_names;
    for (const char* m : {"extract_frames", "decompress", "rescale_images",
                          "pack_dataset", "quantize_model"}) {
      prep_names.push_back(trace.names().intern(m));
    }
    const std::vector<double> cpu_count_weights = {0.30, 0.25, 0.20, 0.15, 0.08, 0.02};
    const int cpu_counts[] = {1, 4, 8, 16, 32, cfg.cluster.cpus_per_node};
    const CategoricalSampler cpu_count_sampler(cpu_count_weights);

    for (std::int64_t i = 0; i < cpu_jobs_target; ++i) {
      const std::size_t ui = cpu_user_sampler.sample(rng);
      JobRecord j;
      j.submit_time = sample_submit(days, day_single, day_multi, hour_sampler,
                                    /*single_gpu=*/true, rng);
      j.start_time = j.submit_time;
      j.num_gpus = 0;
      j.user = cpu_users[ui].first;
      j.vc = cpu_users[ui].second;
      double dur;
      if (rng.bernoulli(knobs.cpu_instant_fraction)) {
        // Training-progress / node-state queries: ~1s, single core.
        dur = 1.0 + (rng.bernoulli(0.25) ? rng.uniform(0.0, 2.0) : 0.0);
        j.num_cpus = 1;
        j.name = query_name;
      } else {
        dur = rng.lognormal(std::log(100.0), 1.7);
        if (rng.bernoulli(0.03)) dur *= rng.uniform(20.0, 120.0);  // long pipelines
        j.num_cpus = cpu_counts[cpu_count_sampler.sample(rng)];
        j.name = prep_names[rng.uniform_index(prep_names.size())];
      }
      j.duration = static_cast<std::int32_t>(
          std::clamp(dur, 1.0, static_cast<double>(kMaxDurationSeconds)));
      const double r = rng.uniform();
      j.state = r < 0.91    ? JobState::kCompleted
                : r < 0.95  ? JobState::kCanceled
                            : JobState::kFailed;
      cpu_jobs.push_back(j);
    }
  }

  // ---- merge, order, number -------------------------------------------------
  std::size_t total = cpu_jobs.size();
  for (const auto& v : vc_jobs) total += v.size();
  auto& jobs = trace.jobs();
  jobs.reserve(total);
  for (const auto& v : vc_jobs) jobs.insert(jobs.end(), v.begin(), v.end());
  jobs.insert(jobs.end(), cpu_jobs.begin(), cpu_jobs.end());
  trace.sort_by_submit_time();
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].job_id = i;
  return trace;
}

std::vector<Trace> generate_helios(std::uint64_t seed, double scale) {
  const auto clusters = helios_clusters();
  std::vector<Trace> traces;
  traces.reserve(clusters.size());
  for (const auto& c : clusters) {
    traces.push_back(
        SyntheticTraceGenerator(GeneratorConfig::helios(c, seed, scale)).generate());
  }
  return traces;
}

Trace generate_philly(std::uint64_t seed, double scale) {
  return SyntheticTraceGenerator(GeneratorConfig::philly(seed, scale)).generate();
}

Trace generate_pai(std::uint64_t seed, double scale) {
  return SyntheticTraceGenerator(GeneratorConfig::pai(seed, scale)).generate();
}

}  // namespace helios::trace
