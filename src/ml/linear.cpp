#include "ml/linear.h"

#include <cmath>

#include "serialize/binary.h"

namespace helios::ml {

bool cholesky_solve(std::vector<double>& a, std::vector<double>& b, std::size_t n) {
  // Decompose A = L L^T in the lower triangle of `a`.
  for (std::size_t j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    if (d <= 0.0) return false;
    const double ljj = std::sqrt(d);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / ljj;
    }
  }
  // Forward substitution L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a[i * n + k] * b[k];
    b[i] = s / a[i * n + i];
  }
  // Back substitution L^T x = z.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a[k * n + ii] * b[k];
    b[ii] = s / a[ii * n + ii];
  }
  return true;
}

void RidgeRegression::fit(const Dataset& data) {
  const std::size_t p = data.features();
  const std::size_t n = data.rows();
  w_.assign(p, 0.0);
  b_ = 0.0;
  if (n == 0 || p == 0) return;

  // Center targets and features so the intercept absorbs the means and the
  // ridge penalty does not shrink it.
  std::vector<double> mean_x(p, 0.0);
  double mean_y = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = data.row(r);
    for (std::size_t j = 0; j < p; ++j) mean_x[j] += row[j];
    mean_y += data.target(r);
  }
  for (auto& m : mean_x) m /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);

  std::vector<double> xtx(p * p, 0.0);
  std::vector<double> xty(p, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = data.row(r);
    const double yc = data.target(r) - mean_y;
    for (std::size_t i = 0; i < p; ++i) {
      const double xi = row[i] - mean_x[i];
      xty[i] += xi * yc;
      for (std::size_t j = i; j < p; ++j) {
        xtx[i * p + j] += xi * (row[j] - mean_x[j]);
      }
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < i; ++j) xtx[i * p + j] = xtx[j * p + i];
    xtx[i * p + i] += lambda_;
  }
  if (!cholesky_solve(xtx, xty, p)) {
    // Degenerate system: fall back to predicting the mean.
    w_.assign(p, 0.0);
    b_ = mean_y;
    return;
  }
  w_ = xty;
  b_ = mean_y;
  for (std::size_t j = 0; j < p; ++j) b_ -= w_[j] * mean_x[j];
}

namespace {
constexpr std::uint32_t kRidgeTag = serialize::fourcc("RIDG");
constexpr std::uint32_t kRidgeVersion = 1;
}  // namespace

void RidgeRegression::save(serialize::Writer& w) const {
  w.begin_section(kRidgeTag);
  w.u32(kRidgeVersion);
  w.f64(lambda_);
  w.vec_f64(w_);
  w.f64(b_);
  w.end_section();
}

void RidgeRegression::load(serialize::Reader& r) {
  serialize::Reader s = r.section(kRidgeTag);
  const std::uint32_t version = s.u32();
  if (version != kRidgeVersion) {
    throw serialize::Error(serialize::ErrorCode::kUnsupportedVersion,
                           "ridge section version " + std::to_string(version));
  }
  const double lambda = s.f64();
  std::vector<double> weights = s.vec_f64();
  const double intercept = s.f64();
  s.close("ridge");
  lambda_ = lambda;
  w_ = std::move(weights);
  b_ = intercept;
}

double RidgeRegression::predict(std::span<const double> features) const noexcept {
  double out = b_;
  const std::size_t p = std::min(features.size(), w_.size());
  for (std::size_t j = 0; j < p; ++j) out += w_[j] * features[j];
  return out;
}

std::vector<double> RidgeRegression::predict_many(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) out.push_back(predict(data.row(r)));
  return out;
}

}  // namespace helios::ml
