#include "ml/dataset.h"

#include <cassert>

namespace helios::ml {

void Dataset::add_row(std::span<const double> features, double target) {
  assert(features.size() == n_features_);
  x_.insert(x_.end(), features.begin(), features.end());
  y_.push_back(target);
}

DatasetSplit Dataset::split(double train_fraction, Rng& rng) const {
  DatasetSplit s{Dataset(n_features_), Dataset(n_features_)};
  for (std::size_t r = 0; r < rows(); ++r) {
    (rng.bernoulli(train_fraction) ? s.train : s.test).add_row(row(r), y_[r]);
  }
  return s;
}

}  // namespace helios::ml
