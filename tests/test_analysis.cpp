#include <gtest/gtest.h>

#include "analysis/cluster_stats.h"
#include "analysis/job_stats.h"
#include "analysis/user_stats.h"

namespace helios::analysis {
namespace {

using trace::JobState;
using trace::Trace;

trace::ClusterSpec spec_2x8() {
  trace::ClusterSpec s;
  s.name = "A";
  s.vcs = {{"vcA", 1, 8}, {"vcB", 1, 8}};
  s.nodes = 2;
  return s;
}

TEST(BusyGpuSeconds, ExactIntervalAccounting) {
  Trace t(spec_2x8());
  // 4 GPUs from t=0 for 100s; 8 GPUs from t=50 for 100s.
  t.add(0, 100, 4, 4, "u", "vcA", "a", JobState::kCompleted);
  t.add(50, 100, 8, 8, "u", "vcB", "b", JobState::kCompleted);
  const auto busy = busy_gpu_seconds(t, 0, 200, 50);
  ASSERT_EQ(busy.size(), 4u);
  EXPECT_DOUBLE_EQ(busy[0], 4 * 50.0);            // [0,50): job a only
  EXPECT_DOUBLE_EQ(busy[1], 4 * 50.0 + 8 * 50.0); // [50,100): both
  EXPECT_DOUBLE_EQ(busy[2], 8 * 50.0);            // [100,150): job b only
  EXPECT_DOUBLE_EQ(busy[3], 0.0);
}

TEST(BusyGpuSeconds, ClipsToWindow) {
  Trace t(spec_2x8());
  t.add(-100, 300, 2, 2, "u", "vcA", "a", JobState::kCompleted);  // spans window
  const auto busy = busy_gpu_seconds(t, 0, 100, 100);
  ASSERT_EQ(busy.size(), 1u);
  EXPECT_DOUBLE_EQ(busy[0], 2 * 100.0);
}

TEST(BusyGpuSeconds, PredicateFilters) {
  Trace t(spec_2x8());
  t.add(0, 100, 4, 4, "u", "vcA", "a", JobState::kCompleted);
  t.add(0, 100, 2, 2, "u", "vcB", "b", JobState::kCompleted);
  const auto only_big = busy_gpu_seconds(
      t, 0, 100, 100, [](const trace::JobRecord& j) { return j.num_gpus >= 4; });
  EXPECT_DOUBLE_EQ(only_big[0], 400.0);
}

TEST(UtilizationSeries, NormalizedByCapacity) {
  Trace t(spec_2x8());
  t.add(0, 100, 8, 8, "u", "vcA", "a", JobState::kCompleted);  // half capacity
  const auto s = utilization_series(t, 0, 100, 100);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.values[0], 0.5);
}

TEST(VcUtilizationSeries, UsesVcCapacity) {
  Trace t(spec_2x8());
  t.add(0, 100, 8, 8, "u", "vcA", "a", JobState::kCompleted);
  const auto s = vc_utilization_series(t, 0, 0, 100, 100);
  EXPECT_DOUBLE_EQ(s.values[0], 1.0);  // vcA fully busy
  const auto s2 = vc_utilization_series(t, 1, 0, 100, 100);
  EXPECT_DOUBLE_EQ(s2.values[0], 0.0);
}

TEST(HourlyProfile, AveragesByHourOfDay) {
  UtilizationSeries s;
  s.begin = from_civil(2020, 6, 1);
  s.step = 3600;
  s.values.assign(48, 0.0);
  s.values[3] = 0.4;   // day 1, 03h
  s.values[27] = 0.8;  // day 2, 03h
  const auto prof = hourly_profile(s);
  EXPECT_NEAR(prof[3], 0.6, 1e-12);
  EXPECT_NEAR(prof[4], 0.0, 1e-12);
}

TEST(HourlySubmissionRate, PerDayAverage) {
  Trace t(spec_2x8());
  const auto base = from_civil(2020, 6, 1);
  // 4 GPU jobs at 09h over two days, 1 CPU job (excluded).
  t.add(base + 9 * 3600, 10, 1, 1, "u", "vcA", "a", JobState::kCompleted);
  t.add(base + 9 * 3600 + 60, 10, 1, 1, "u", "vcA", "a", JobState::kCompleted);
  t.add(base + kSecondsPerDay + 9 * 3600, 10, 1, 1, "u", "vcA", "a",
        JobState::kCompleted);
  t.add(base + 9 * 3600, 10, 0, 1, "u", "vcA", "cpu", JobState::kCompleted);
  const auto rate = hourly_submission_rate(t, base, base + 2 * kSecondsPerDay);
  EXPECT_NEAR(rate[9], 1.5, 1e-12);
  EXPECT_NEAR(rate[10], 0.0, 1e-12);
}

TEST(MonthlyTrends, SplitsSingleAndMulti) {
  Trace t(spec_2x8());
  t.add(from_civil(2020, 5, 10), 1000, 1, 1, "u", "vcA", "a", JobState::kCompleted);
  t.add(from_civil(2020, 5, 11), 1000, 8, 8, "u", "vcA", "a", JobState::kCompleted);
  t.add(from_civil(2020, 6, 2), 1000, 1, 1, "u", "vcA", "a", JobState::kCompleted);
  const auto months = monthly_trends(t, from_civil(2020, 5, 1), from_civil(2020, 7, 1));
  ASSERT_EQ(months.size(), 2u);
  EXPECT_EQ(months[0].month, 5);
  EXPECT_EQ(months[0].single_gpu_jobs, 1);
  EXPECT_EQ(months[0].multi_gpu_jobs, 1);
  EXPECT_EQ(months[1].single_gpu_jobs, 1);
  EXPECT_GT(months[0].avg_utilization, 0.0);
  EXPECT_NEAR(months[0].avg_utilization,
              months[0].util_from_single + months[0].util_from_multi, 1e-12);
}

TEST(JobSizeDistribution, FractionsAndCdf) {
  Trace t(spec_2x8());
  for (int i = 0; i < 3; ++i) {
    t.add(0, 100, 1, 1, "u", "vcA", "a", JobState::kCompleted);
  }
  t.add(0, 100, 8, 8, "u", "vcA", "a", JobState::kCompleted);
  const auto dist = job_size_distribution(t);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_EQ(dist[0].gpus, 1);
  EXPECT_DOUBLE_EQ(dist[0].job_fraction, 0.75);
  // GPU time: 3*100 vs 800.
  EXPECT_NEAR(dist[0].gpu_time_fraction, 300.0 / 1100.0, 1e-12);
  EXPECT_DOUBLE_EQ(dist[1].job_cdf, 1.0);
  EXPECT_DOUBLE_EQ(dist[1].gpu_time_cdf, 1.0);
}

TEST(StatusByGpuCount, SkipsNonPowerOfTwo) {
  Trace t(spec_2x8());
  t.add(0, 10, 3, 3, "u", "vcA", "a", JobState::kCompleted);  // non-pow2
  t.add(0, 10, 4, 4, "u", "vcA", "a", JobState::kCompleted);
  t.add(0, 10, 4, 4, "u", "vcA", "a", JobState::kFailed);
  const auto by = status_by_gpu_count(t);
  ASSERT_EQ(by.size(), 1u);
  EXPECT_EQ(by[0].gpus, 4);
  EXPECT_DOUBLE_EQ(by[0].completed, 0.5);
  EXPECT_DOUBLE_EQ(by[0].failed, 0.5);
}

TEST(GpuTimeByState, NormalizedShares) {
  Trace t(spec_2x8());
  t.add(0, 100, 1, 1, "u", "vcA", "a", JobState::kCompleted);
  t.add(0, 300, 1, 1, "u", "vcA", "a", JobState::kCanceled);
  const auto s = gpu_time_by_state(t);
  EXPECT_DOUBLE_EQ(s[0], 0.25);
  EXPECT_DOUBLE_EQ(s[1], 0.75);
  EXPECT_DOUBLE_EQ(s[2], 0.0);
}

TEST(Summarize, CountsAndAverages) {
  Trace t(spec_2x8());
  t.add(0, 100, 2, 2, "u1", "vcA", "a", JobState::kCompleted);
  t.add(10, 300, 4, 4, "u2", "vcA", "b", JobState::kCompleted);
  t.add(20, 7, 0, 2, "u1", "vcB", "c", JobState::kFailed);
  const auto s = summarize(t);
  EXPECT_EQ(s.total_jobs, 3);
  EXPECT_EQ(s.gpu_jobs, 2);
  EXPECT_EQ(s.cpu_jobs, 1);
  EXPECT_DOUBLE_EQ(s.avg_gpus_per_gpu_job, 3.0);
  EXPECT_DOUBLE_EQ(s.avg_gpu_job_duration, 200.0);
  EXPECT_DOUBLE_EQ(s.median_gpu_job_duration, 200.0);
  EXPECT_DOUBLE_EQ(s.avg_cpu_job_duration, 7.0);
  EXPECT_EQ(s.max_gpus, 4);
  EXPECT_EQ(s.users, 2);
}

// ---------------------------------------------------------------------------
// User stats
// ---------------------------------------------------------------------------

TEST(UserAggregates, PerUserTotals) {
  Trace t(spec_2x8());
  t.add(0, 100, 2, 2, "alice", "vcA", "a", JobState::kCompleted);
  t.add(0, 50, 1, 1, "alice", "vcA", "a", JobState::kFailed);
  t.add(0, 10, 0, 8, "bob", "vcB", "c", JobState::kCompleted);
  const auto users = user_aggregates(t);
  ASSERT_EQ(users.size(), 2u);
  const auto& alice = users[0].gpu_jobs == 2 ? users[0] : users[1];
  EXPECT_DOUBLE_EQ(alice.gpu_time, 250.0);
  EXPECT_EQ(alice.gpu_jobs_completed, 1);
  EXPECT_DOUBLE_EQ(alice.completion_rate(), 0.5);
  const auto& bob = users[0].gpu_jobs == 2 ? users[1] : users[0];
  EXPECT_DOUBLE_EQ(bob.cpu_time, 80.0);
  EXPECT_DOUBLE_EQ(bob.completion_rate(), 0.0);  // no GPU jobs
}

TEST(ShareCurve, LorenzShape) {
  const auto curve = share_curve({10.0, 30.0, 60.0});
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].value_fraction, 0.0);
  EXPECT_DOUBLE_EQ(curve[1].value_fraction, 0.6);   // top user
  EXPECT_DOUBLE_EQ(curve[2].value_fraction, 0.9);
  EXPECT_DOUBLE_EQ(curve[3].value_fraction, 1.0);
  EXPECT_NEAR(curve[1].user_fraction, 1.0 / 3.0, 1e-12);
}

TEST(TopShare, ExactAndEdgeCases) {
  const std::vector<double> v = {1.0, 1.0, 1.0, 97.0};
  EXPECT_DOUBLE_EQ(top_share(v, 0.25), 0.97);
  EXPECT_DOUBLE_EQ(top_share(v, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(top_share({}, 0.5), 0.0);
}

TEST(VcBehaviors, SortedBySizeWithStats) {
  Trace t(spec_2x8());
  t.add(from_civil(2020, 5, 2), 600, 8, 8, "u", "vcA", "a", JobState::kCompleted);
  const auto b = vc_behaviors(t, from_civil(2020, 5, 1), from_civil(2020, 5, 3),
                              3600);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0].gpus, b[1].gpus);  // equal-size VCs; both present
  const auto& with_job = b[0].jobs > 0 ? b[0] : b[1];
  EXPECT_EQ(with_job.jobs, 1);
  EXPECT_DOUBLE_EQ(with_job.avg_gpu_request, 8.0);
  EXPECT_DOUBLE_EQ(with_job.avg_duration, 600.0);
}

}  // namespace
}  // namespace helios::analysis
