// Failure-aware node ranking service: GBDT risk scores over per-node
// failure history, feeding the simulator's placement preference.
//
// Trains the histogram GBDT (ml/gbdt.h) on rows from
// ml::build_failure_dataset — per-node failure history at sampled times,
// labeled with "fails within the horizon" — then ranks every node of every
// VC by predicted risk. The ranking plugs straight into
// sim::SimConfig::node_order: VC nodes are homogeneous, so placing in
// risk-ascending order makes the consolidating allocator fill predicted-
// healthy nodes first and leave the predicted-flaky ones as the idle slack,
// which is exactly where a failure costs nothing.
//
// Determinism: fit(), risk(), and rank_nodes() are pure functions of their
// inputs and the fitted model (the GBDT itself is bit-identical across
// engines and thread counts); ranking ties break by node id. A predictor
// restored from save() ("FPRD" frame, docs/FORMATS.md) produces
// bit-identical risks and rankings (test_fault_injection pins this).
//
// Thread-safety: fit()/load() mutate and must be exclusive; the const
// members are safe to share once training completes. fit() parallelizes on
// the shared global_pool() via GBDTRegressor::fit.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/failure_dataset.h"
#include "ml/gbdt.h"
#include "sim/fault_plan.h"
#include "trace/cluster_config.h"

namespace helios::serialize {
class Reader;
class Writer;
}  // namespace helios::serialize

namespace helios::core {

struct FailurePredictorConfig {
  ml::FailureDatasetConfig dataset;
  ml::GBDTConfig gbdt = [] {
    ml::GBDTConfig g;
    g.n_trees = 60;
    g.max_depth = 4;
    g.min_samples_leaf = 10;
    return g;
  }();
};

class FailurePredictor {
 public:
  explicit FailurePredictor(FailurePredictorConfig config = {})
      : config_(std::move(config)) {}

  /// Train on an observed failure history (typically FaultPlan::clipped of
  /// the deployment window's past). Replaces any previous model.
  void fit(const trace::ClusterSpec& spec, const sim::FaultPlan& history);

  /// Predicted risk of (vc, node) failing within config.dataset.horizon of
  /// `at`, given the history. Raw GBDT regression output on 0/1 labels —
  /// comparable across nodes, not a calibrated probability.
  [[nodiscard]] double risk(const ml::NodeFailureHistory& history, int vc,
                            int node, std::int64_t at) const;

  /// Per-VC node ranking by ascending predicted risk at `at` (ties by node
  /// id, so a predictor with nothing to distinguish returns identity).
  /// Directly assignable to sim::SimConfig::node_order.
  [[nodiscard]] std::vector<std::vector<std::int32_t>> rank_nodes(
      const trace::ClusterSpec& spec, const sim::FaultPlan& history,
      std::int64_t at) const;

  [[nodiscard]] bool trained() const noexcept { return model_.trained(); }
  [[nodiscard]] const ml::GBDTRegressor& model() const noexcept {
    return model_;
  }
  [[nodiscard]] const FailurePredictorConfig& config() const noexcept {
    return config_;
  }

  /// Persist / restore ("FPRD" section, docs/FORMATS.md): dataset config +
  /// the fitted GBDT. load() throws serialize::Error on malformed input and
  /// leaves no partially-adopted state behind; a round-tripped predictor
  /// ranks and scores bit-identically.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

 private:
  FailurePredictorConfig config_;
  ml::GBDTRegressor model_;
};

}  // namespace helios::core
