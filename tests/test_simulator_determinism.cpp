// Sharded-vs-serial determinism of the VC-sharded simulator.
//
// ClusterSimulator runs one VcSimulator per VC, concurrently under
// common::ExecMode::kParallel. This suite asserts the parallel run's SimResult —
// outcomes, counters, per-VC stats, the busy-nodes/GPUs series, and the
// energy accounting (cumulative joules, per-VC energy, mean/peak power
// series) — is *identical* (exact doubles, not approximately equal) to the
// retained serial reference (common::ExecMode::kSerial) across all six
// policies, backfill on/off, power caps on/off, and several synthetic-trace
// seeds.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace helios::sim {
namespace {

using trace::Trace;

const Trace& venus_trace(std::uint64_t seed) {
  static std::map<std::uint64_t, Trace> cache;
  auto it = cache.find(seed);
  if (it == cache.end()) {
    auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"),
                                              seed, 0.02);
    it = cache.emplace(seed, trace::SyntheticTraceGenerator(cfg).generate())
             .first;
  }
  return it->second;
}

void expect_identical(const SimResult& serial, const SimResult& sharded) {
  ASSERT_EQ(serial.outcomes.size(), sharded.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    const JobOutcome& a = serial.outcomes[i];
    const JobOutcome& b = sharded.outcomes[i];
    ASSERT_EQ(a.trace_index, b.trace_index) << "outcome " << i;
    ASSERT_EQ(a.submit, b.submit) << "outcome " << i;
    ASSERT_EQ(a.start, b.start) << "outcome " << i;
    ASSERT_EQ(a.end, b.end) << "outcome " << i;
    ASSERT_EQ(a.gpus, b.gpus) << "outcome " << i;
    ASSERT_EQ(a.vc, b.vc) << "outcome " << i;
    ASSERT_EQ(a.kills, b.kills) << "outcome " << i;
    ASSERT_EQ(a.rejected, b.rejected) << "outcome " << i;
  }
  // Scalar metrics: exact equality — both paths fold the same integers in
  // the same order.
  EXPECT_EQ(serial.avg_jct, sharded.avg_jct);
  EXPECT_EQ(serial.avg_queue_delay, sharded.avg_queue_delay);
  EXPECT_EQ(serial.queued_jobs, sharded.queued_jobs);
  EXPECT_EQ(serial.preemptions, sharded.preemptions);
  EXPECT_EQ(serial.rejected_jobs, sharded.rejected_jobs);
  EXPECT_EQ(serial.unfinished_jobs, sharded.unfinished_jobs);
  EXPECT_EQ(serial.job_kills, sharded.job_kills);
  EXPECT_EQ(serial.node_failures, sharded.node_failures);
  ASSERT_EQ(serial.vc_stats.size(), sharded.vc_stats.size());
  for (std::size_t v = 0; v < serial.vc_stats.size(); ++v) {
    EXPECT_EQ(serial.vc_stats[v].name, sharded.vc_stats[v].name);
    EXPECT_EQ(serial.vc_stats[v].gpus, sharded.vc_stats[v].gpus);
    EXPECT_EQ(serial.vc_stats[v].jobs, sharded.vc_stats[v].jobs);
    EXPECT_EQ(serial.vc_stats[v].avg_queue_delay,
              sharded.vc_stats[v].avg_queue_delay);
    EXPECT_EQ(serial.vc_stats[v].avg_jct, sharded.vc_stats[v].avg_jct);
    EXPECT_EQ(serial.vc_stats[v].energy_joules,
              sharded.vc_stats[v].energy_joules)
        << "vc " << v;
  }
  // Energy accounting: the merge loop is serial in VC order under both exec
  // modes, so every energy/power double must match bitwise — no tolerance.
  EXPECT_EQ(serial.energy_joules, sharded.energy_joules);
  EXPECT_EQ(serial.max_power_watts, sharded.max_power_watts);
  ASSERT_EQ(serial.power_watts.values.size(), sharded.power_watts.values.size());
  for (std::size_t i = 0; i < serial.power_watts.values.size(); ++i) {
    ASSERT_EQ(serial.power_watts.values[i], sharded.power_watts.values[i])
        << "power_watts bucket " << i;
  }
  ASSERT_EQ(serial.peak_power_watts.values.size(),
            sharded.peak_power_watts.values.size());
  for (std::size_t i = 0; i < serial.peak_power_watts.values.size(); ++i) {
    ASSERT_EQ(serial.peak_power_watts.values[i],
              sharded.peak_power_watts.values[i])
        << "peak_power_watts bucket " << i;
  }
  // Busy series: bit-identical buckets (integer-exact integration).
  ASSERT_EQ(serial.busy_nodes.begin, sharded.busy_nodes.begin);
  ASSERT_EQ(serial.busy_nodes.step, sharded.busy_nodes.step);
  ASSERT_EQ(serial.busy_nodes.values.size(), sharded.busy_nodes.values.size());
  for (std::size_t i = 0; i < serial.busy_nodes.values.size(); ++i) {
    ASSERT_EQ(serial.busy_nodes.values[i], sharded.busy_nodes.values[i])
        << "busy_nodes bucket " << i;
  }
  ASSERT_EQ(serial.busy_gpus.values.size(), sharded.busy_gpus.values.size());
  for (std::size_t i = 0; i < serial.busy_gpus.values.size(); ++i) {
    ASSERT_EQ(serial.busy_gpus.values[i], sharded.busy_gpus.values[i])
        << "busy_gpus bucket " << i;
  }
}

// A binding-but-not-degenerate cap for `spec`: the all-active idle baseline
// plus enough headroom to run ~30% of the cluster's GPUs at the default
// per-GPU draw. Low enough to gate placements under load spikes, high enough
// that work still flows.
double binding_cap(const trace::ClusterSpec& spec) {
  std::int64_t nodes = 0;
  std::int64_t gpus = 0;
  for (const auto& vc : spec.vcs) {
    nodes += vc.nodes;
    gpus += static_cast<std::int64_t>(vc.nodes) * vc.gpus_per_node;
  }
  const core::PowerProfile profile;
  return profile.idle_node_watts * static_cast<double>(nodes) +
         profile.gpu_watts * static_cast<double>(gpus) * 0.3;
}

struct Case {
  SchedulerPolicy policy;
  bool backfill;
  bool capped;
  std::uint64_t seed;
};

class ShardedDeterminismTest : public ::testing::TestWithParam<Case> {};

TEST_P(ShardedDeterminismTest, ShardedMatchesSerialReference) {
  const Case c = GetParam();
  const Trace& t = venus_trace(c.seed);

  SimConfig cfg;
  cfg.policy = c.policy;
  cfg.backfill = c.backfill;
  if (c.capped) cfg.power_cap_watts = binding_cap(t.cluster());
  if (c.policy == SchedulerPolicy::kQssf ||
      c.policy == SchedulerPolicy::kEnergyQssf) {
    cfg.priority_fn = [](const trace::JobRecord& j) {
      return static_cast<double>(j.duration) * j.num_gpus;
    };
  }

  cfg.execution = common::ExecMode::kSerial;
  const SimResult serial = ClusterSimulator(t.cluster(), cfg).run(t);

  cfg.execution = common::ExecMode::kParallel;
  const SimResult sharded = ClusterSimulator(t.cluster(), cfg).run(t);
  expect_identical(serial, sharded);

  // Sharded runs must also be stable across repetitions (no dependence on
  // thread scheduling).
  const SimResult again = ClusterSimulator(t.cluster(), cfg).run(t);
  expect_identical(sharded, again);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto policy : all_policies()) {
    for (const bool backfill : {false, true}) {
      for (const bool capped : {false, true}) {
        for (const std::uint64_t seed : {7ull, 19ull}) {
          cases.push_back({policy, backfill, capped, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesBackfillCapsSeeds, ShardedDeterminismTest,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) {
                           return std::string(to_string(info.param.policy)) +
                                  (info.param.backfill ? "Backfill" : "") +
                                  (info.param.capped ? "Capped" : "") +
                                  "Seed" + std::to_string(info.param.seed);
                         });

// Fault-injected runs: same sharded-vs-serial bit-identity, now with node
// failures killing jobs, removing capacity, and requeueing work mid-run —
// across policies, backfill, failure rates, restart semantics, and seeds.
struct FaultCase {
  SchedulerPolicy policy;
  bool backfill;
  double mtbf_days;  ///< 0 = no fault plan attached
  FaultRestart restart;
  std::uint64_t seed;
};

class FaultShardedDeterminismTest
    : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultShardedDeterminismTest, ShardedMatchesSerialUnderFaults) {
  const FaultCase c = GetParam();
  const Trace& t = venus_trace(c.seed);

  FaultPlan plan;
  SimConfig cfg;
  cfg.policy = c.policy;
  cfg.backfill = c.backfill;
  cfg.restart = c.restart;
  if (c.policy == SchedulerPolicy::kQssf ||
      c.policy == SchedulerPolicy::kEnergyQssf) {
    cfg.priority_fn = [](const trace::JobRecord& j) {
      return static_cast<double>(j.duration) * j.num_gpus;
    };
  }
  // Power-gated admission through the fault path: kills and recoveries move
  // the baseline and the run draw, so the cap check must stay deterministic.
  if (c.policy == SchedulerPolicy::kPowerCap) {
    cfg.power_cap_watts = binding_cap(t.cluster());
  }
  if (c.mtbf_days > 0.0) {
    FaultPlanConfig fp;
    fp.mtbf_days = c.mtbf_days;
    fp.flaky_fraction = 0.25;
    fp.seed = c.seed;
    const auto& jobs = t.jobs();
    const UnixTime begin = jobs.front().submit_time;
    const UnixTime end = jobs.back().submit_time + 14 * 86400;
    plan = FaultPlan::generate(t.cluster(), fp, begin, end);
    cfg.fault_plan = &plan;
  }

  cfg.execution = common::ExecMode::kSerial;
  const SimResult serial = ClusterSimulator(t.cluster(), cfg).run(t);

  cfg.execution = common::ExecMode::kParallel;
  const SimResult sharded = ClusterSimulator(t.cluster(), cfg).run(t);
  expect_identical(serial, sharded);

  const SimResult again = ClusterSimulator(t.cluster(), cfg).run(t);
  expect_identical(sharded, again);

  if (c.mtbf_days > 0.0 && c.mtbf_days <= 30.0) {
    // A churn-level plan over a months-long window must actually exercise
    // the fault path, or this sweep tests nothing. Under the binding power
    // cap few enough jobs run that failures may only ever hit idle nodes, so
    // the kill expectation applies to the uncapped policies.
    EXPECT_GT(serial.node_failures, 0);
    if (c.policy != SchedulerPolicy::kPowerCap) {
      EXPECT_GT(serial.job_kills, 0);
    }
  }
}

std::vector<FaultCase> fault_cases() {
  std::vector<FaultCase> cases;
  for (const auto policy : all_policies()) {
    for (const bool backfill : {false, true}) {
      for (const double mtbf : {30.0, 7.0}) {
        for (const std::uint64_t seed : {7ull, 19ull}) {
          const auto restart = (seed % 2 == 1) == backfill
                                   ? FaultRestart::kResume
                                   : FaultRestart::kRestart;
          cases.push_back({policy, backfill, mtbf, restart, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesBackfillRatesSeeds, FaultShardedDeterminismTest,
    ::testing::ValuesIn(fault_cases()), [](const auto& info) {
      return std::string(to_string(info.param.policy)) +
             (info.param.backfill ? "Backfill" : "") + "Mtbf" +
             std::to_string(static_cast<int>(info.param.mtbf_days)) +
             (info.param.restart == FaultRestart::kResume ? "Resume"
                                                          : "Restart") +
             "Seed" + std::to_string(info.param.seed);
    });

// Failure-aware placement: a node_order permutation must preserve the
// sharded/serial bit-identity too (fault events are remapped per shard).
TEST(FaultShardedDeterminism, NodeOrderPermutationStaysDeterministic) {
  const Trace& t = venus_trace(7);
  FaultPlanConfig fp;
  fp.mtbf_days = 10.0;
  fp.flaky_fraction = 0.3;
  fp.seed = 99;
  const auto& jobs = t.jobs();
  const FaultPlan plan =
      FaultPlan::generate(t.cluster(), fp, jobs.front().submit_time,
                          jobs.back().submit_time + 14 * 86400);

  SimConfig cfg;
  cfg.policy = SchedulerPolicy::kFifo;
  cfg.backfill = true;
  cfg.fault_plan = &plan;
  // Reverse every VC's placement order — a maximal relabeling.
  for (const auto& vc : t.cluster().vcs) {
    std::vector<std::int32_t> order(static_cast<std::size_t>(vc.nodes));
    for (int i = 0; i < vc.nodes; ++i) {
      order[static_cast<std::size_t>(i)] = vc.nodes - 1 - i;
    }
    cfg.node_order.push_back(std::move(order));
  }

  cfg.execution = common::ExecMode::kSerial;
  const SimResult serial = ClusterSimulator(t.cluster(), cfg).run(t);
  cfg.execution = common::ExecMode::kParallel;
  const SimResult sharded = ClusterSimulator(t.cluster(), cfg).run(t);
  expect_identical(serial, sharded);
}

// With a homogeneous power profile and no faults, SimConfig::node_order only
// re-labels which physical node a gang lands on — the busy counts, and with
// them the draw, are label-invariant. The energy outputs must therefore be
// bit-identical between id-order and any permutation.
TEST(ShardedDeterminism, NodeOrderPermutationEnergyInvariant) {
  const Trace& t = venus_trace(7);

  SimConfig cfg;
  cfg.policy = SchedulerPolicy::kFifo;
  cfg.backfill = true;
  const SimResult id_order = ClusterSimulator(t.cluster(), cfg).run(t);

  for (const auto& vc : t.cluster().vcs) {
    std::vector<std::int32_t> order(static_cast<std::size_t>(vc.nodes));
    for (int i = 0; i < vc.nodes; ++i) {
      order[static_cast<std::size_t>(i)] = vc.nodes - 1 - i;
    }
    cfg.node_order.push_back(std::move(order));
  }
  const SimResult permuted = ClusterSimulator(t.cluster(), cfg).run(t);

  EXPECT_EQ(id_order.energy_joules, permuted.energy_joules);
  EXPECT_EQ(id_order.max_power_watts, permuted.max_power_watts);
  ASSERT_EQ(id_order.power_watts.values.size(),
            permuted.power_watts.values.size());
  for (std::size_t i = 0; i < id_order.power_watts.values.size(); ++i) {
    ASSERT_EQ(id_order.power_watts.values[i], permuted.power_watts.values[i])
        << "power_watts bucket " << i;
  }
  ASSERT_EQ(id_order.peak_power_watts.values.size(),
            permuted.peak_power_watts.values.size());
  for (std::size_t i = 0; i < id_order.peak_power_watts.values.size(); ++i) {
    ASSERT_EQ(id_order.peak_power_watts.values[i],
              permuted.peak_power_watts.values[i])
        << "peak_power_watts bucket " << i;
  }
  ASSERT_EQ(id_order.vc_stats.size(), permuted.vc_stats.size());
  for (std::size_t v = 0; v < id_order.vc_stats.size(); ++v) {
    EXPECT_EQ(id_order.vc_stats[v].energy_joules,
              permuted.vc_stats[v].energy_joules)
        << "vc " << v;
  }
}

// A hand-built multi-VC trace with same-timestamp arrivals and finishes in
// different VCs: the classic race surface for a sharded event loop.
TEST(ShardedDeterminism, TinyCrossVcTrace) {
  trace::ClusterSpec s;
  s.name = "two";
  s.gpus_per_node = 8;
  s.vcs = {{"vc0", 2, 8}, {"vc1", 1, 8}};
  s.nodes = 3;
  Trace t(s);
  t.add(0, 100, 8, 8, "u0", "vc0", "a", trace::JobState::kCompleted);
  t.add(0, 100, 8, 8, "u1", "vc1", "b", trace::JobState::kCompleted);
  t.add(100, 50, 16, 16, "u0", "vc0", "c", trace::JobState::kCompleted);
  t.add(100, 50, 8, 8, "u1", "vc1", "d", trace::JobState::kCompleted);
  t.add(100, 5, 2, 2, "u2", "vc0", "e", trace::JobState::kCompleted);
  t.sort_by_submit_time();

  for (const bool backfill : {false, true}) {
    SimConfig cfg;
    cfg.policy = SchedulerPolicy::kFifo;
    cfg.backfill = backfill;
    cfg.execution = common::ExecMode::kSerial;
    const SimResult serial = ClusterSimulator(s, cfg).run(t);
    cfg.execution = common::ExecMode::kParallel;
    const SimResult sharded = ClusterSimulator(s, cfg).run(t);
    expect_identical(serial, sharded);
  }
}

}  // namespace
}  // namespace helios::sim
