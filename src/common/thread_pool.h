// Minimal fixed-size thread pool with a blocking parallel_for.
//
// The heavy kernels (GBDT histogram builds, trace generation per cluster,
// backtests) are embarrassingly parallel over ranges; parallel_for splits
// [begin, end) into contiguous chunks and runs them on the pool. The pool is
// shared process-wide via global_pool() so nested code reuses threads instead
// of oversubscribing the (possibly small) machine.
//
// Thread-safety: every member and free function here is safe to call from
// any thread, including pool workers — submit() is internally locked, and
// the blocking drivers (parallel_for*, parallel_run_chunks,
// parallel_map_reduce) run chunks on the calling thread when the range is
// small, so they never deadlock on a saturated pool. parallel_run_tasks
// goes further: the caller drains the shared task list itself, making it
// safe even when every other worker is blocked (the VC-sharded simulator
// nests on it). The *callbacks* handed to these drivers run concurrently —
// they must synchronize any shared mutable state themselves.
//
// Determinism: the drivers fix only *which* chunks exist ([begin, end) split
// by grain/thread-count) and, for parallel_map_reduce, the left-to-right
// merge order — chunk *scheduling* is nondeterministic. Callers that need
// bit-identical results across thread counts therefore make each chunk's
// work order-independent (integer sums, disjoint writes); see ml/gbdt.h and
// sim/ for the contracts built on top.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace helios {

class ThreadPool {
 public:
  /// `threads == 0` uses hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool (lazily constructed, sized to hardware concurrency;
/// the HELIOS_THREADS environment variable overrides the width at first use).
ThreadPool& global_pool();

/// Runs fn(i) for i in [begin, end) across the global pool and blocks until
/// done. Chunks are contiguous; `grain` is the minimum chunk size. Exceptions
/// from fn propagate to the caller (first one wins).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1024);

/// Runs fn(chunk_begin, chunk_end) over contiguous chunks — useful when the
/// body wants to maintain per-chunk scratch state.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain = 1024);

/// Splits [begin, end) into at most `max_chunks` contiguous chunks of at
/// least `grain` each. Lets callers pre-size per-chunk scratch (partial
/// sums, shards) before fanning out with parallel_run_chunks.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> chunk_ranges(
    std::size_t begin, std::size_t end, std::size_t max_chunks,
    std::size_t grain = 1);

/// Runs fn(chunk_index, lo, hi) for each range on the global pool and blocks
/// until done. A single chunk runs inline. Exceptions from fn propagate to
/// the caller (first one wins).
void parallel_run_chunks(
    const std::vector<std::pair<std::size_t, std::size_t>>& chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Runs a set of heterogeneous tasks to completion, using pool workers *and*
/// the calling thread, then blocks until every task finished. Unlike waiting
/// on per-task futures, the caller drains the shared task list itself, so
/// this is safe to call from inside a pool worker even when every other
/// worker is blocked — the caller alone guarantees forward progress. Used by
/// the VC-sharded simulator, whose shards are uneven and may themselves run
/// under a parallel driver. The first exception propagates after all tasks
/// have finished.
void parallel_run_tasks(std::vector<std::function<void()>> tasks);

/// Chunked map-reduce over [begin, end): `make(lo, hi)` produces one partial
/// result per contiguous chunk on the pool; partials are then folded
/// left-to-right in chunk order via `merge(acc, partial)`. Because the merge
/// order is fixed, the reduction is deterministic for any thread count — and
/// when the partials combine exactly (integer sums, bitwise-stable state) the
/// result is identical to a serial left fold. Used by the GBDT histogram
/// engine to merge per-chunk gradient histograms.
template <typename T, typename MakeFn, typename MergeFn>
[[nodiscard]] T parallel_map_reduce(std::size_t begin, std::size_t end,
                                    std::size_t grain, MakeFn&& make,
                                    MergeFn&& merge) {
  const std::size_t threads = global_pool().thread_count();
  const auto chunks =
      chunk_ranges(begin, end, threads > 1 ? threads * 2 : 1, grain);
  if (chunks.size() <= 1) return make(begin, end);
  std::vector<std::optional<T>> partials(chunks.size());
  parallel_run_chunks(chunks,
                      [&](std::size_t i, std::size_t lo, std::size_t hi) {
                        partials[i].emplace(make(lo, hi));
                      });
  T acc = std::move(*partials.front());
  for (std::size_t i = 1; i < partials.size(); ++i) {
    merge(acc, std::move(*partials[i]));
  }
  return acc;
}

}  // namespace helios
