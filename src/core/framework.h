// The prediction-based cluster management framework (paper §4.1, Figure 10).
//
// A centralized manager atop each GPU cluster, holding plug-and-play
// services. Each service owns a machine-learning model trained on historical
// data; the Resource Orchestrator consults the service for decisions
// (job priorities, node power actions) and the Model Update Engine feeds
// run-time data back to keep models fresh.
//
// The two case-study services of the paper live in qssf_service.h (Quasi-
// Shortest-Service-First scheduling) and ces_service.h (Cluster Energy
// Saving); both implement the Service interface below so they can be managed
// uniformly, and further services can be plugged in the same way.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace helios::core {

/// A pluggable prediction-driven resource-management service.
class Service {
 public:
  virtual ~Service() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Model Update Engine hook: absorb newly finished jobs / fresh cluster
  /// state and refresh the underlying model.
  virtual void update(const trace::Trace& new_data) = 0;
};

class PredictionFramework {
 public:
  explicit PredictionFramework(std::string cluster_name)
      : cluster_name_(std::move(cluster_name)) {}

  /// Register a service; the framework takes ownership. Returns a reference
  /// for immediate configuration.
  Service& register_service(std::unique_ptr<Service> service);

  [[nodiscard]] Service* find(const std::string& name) noexcept;
  [[nodiscard]] std::size_t service_count() const noexcept {
    return services_.size();
  }
  [[nodiscard]] const std::string& cluster_name() const noexcept {
    return cluster_name_;
  }

  /// Model Update Engine: push fresh data to every registered service.
  void update_all(const trace::Trace& new_data);

 private:
  std::string cluster_name_;
  std::vector<std::unique_ptr<Service>> services_;
};

}  // namespace helios::core
