// Energy accounting and the energy-aware policy family, end to end: the
// PowerProfile arithmetic, hand-computed energy/power outputs of single runs,
// the energy-conservation property (per-VC energies sum exactly to the
// cluster energy; the bucket integrator is add-order independent), the
// cap-is-respected invariant across all policies × backfill × seeds, the
// budget-constrained admission / power-proportional backfill semantics on
// hand-built traces, predicted-energy ordering of kEnergyQssf, and
// serial-vs-sharded bit-parity of every new counter through
// sweep::results_identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "core/power_model.h"
#include "sim/bucket_integrator.h"
#include "sim/simulator.h"
#include "sweep/scenario.h"
#include "trace/synthetic.h"

namespace helios::sim {
namespace {

using trace::JobState;
using trace::Trace;

trace::ClusterSpec one_vc_spec(int nodes, int gpn = 8) {
  trace::ClusterSpec s;
  s.name = "one";
  s.gpus_per_node = gpn;
  s.vcs = {{"vc0", nodes, gpn}};
  s.nodes = nodes;
  return s;
}

Trace make_trace(const trace::ClusterSpec& spec,
                 const std::vector<std::tuple<UnixTime, int, int, const char*>>&
                     jobs /* submit, duration, gpus, vc */) {
  Trace t(spec);
  int i = 0;
  for (const auto& [submit, dur, gpus, vc] : jobs) {
    t.add(submit, dur, gpus, gpus, "user" + std::to_string(i % 3), vc,
          "job" + std::to_string(i), JobState::kCompleted);
    ++i;
  }
  t.sort_by_submit_time();
  return t;
}

// ---------------------------------------------------------------------------
// PowerProfile / policy registry
// ---------------------------------------------------------------------------

TEST(PowerProfile, BaselineWattsBillsEveryPowerState) {
  core::PowerProfile p;
  p.idle_node_watts = 800.0;
  p.boot_node_watts = 700.0;
  p.sleep_node_watts = 10.0;
  p.failed_node_watts = 5.0;
  EXPECT_EQ(p.baseline_watts(3, 2, 4, 1), 800.0 * 3 + 700.0 * 2 + 10.0 * 4 + 5.0);
  EXPECT_EQ(p.baseline_watts(0, 0, 0, 0), 0.0);
  EXPECT_EQ(core::PowerProfile{}, core::PowerProfile{});
}

TEST(PowerPolicies, RegistryRoundTripsTheEnergyFamily) {
  EXPECT_EQ(all_policies().size(), 6u);
  EXPECT_EQ(to_string(SchedulerPolicy::kPowerCap), "POWERCAP");
  EXPECT_EQ(to_string(SchedulerPolicy::kEnergyQssf), "EQSSF");
  EXPECT_EQ(policy_from_string("powercap"), SchedulerPolicy::kPowerCap);
  EXPECT_EQ(policy_from_string("EQSSF"), SchedulerPolicy::kEnergyQssf);
  for (SchedulerPolicy p : all_policies()) {
    EXPECT_EQ(policy_from_string(to_string(p)), p);
  }
}

// ---------------------------------------------------------------------------
// Hand-computed energy accounting
// ---------------------------------------------------------------------------

TEST(EnergyAccounting, SingleJobMatchesHandComputedIntegral) {
  // One 8-GPU node, one 1000 s job at t=0. Series window = [0, 1001):
  //   [0, 1000):  800 idle + 8 × 300 job = 3200 W
  //   [1000, 1001): idle baseline only   =  800 W
  const auto spec = one_vc_spec(1);
  const auto t = make_trace(spec, {{0, 1000, 8, "vc0"}});
  const SimResult r = ClusterSimulator(spec, SimConfig{}).run(t);

  EXPECT_EQ(r.energy_joules, 3200.0 * 1000 + 800.0);
  EXPECT_EQ(r.max_power_watts, 3200.0);
  ASSERT_EQ(r.vc_stats.size(), 1u);
  EXPECT_EQ(r.vc_stats[0].energy_joules, r.energy_joules);

  // Mean power: bucket 0 is fully busy; bucket 1 holds the 400 s busy tail
  // plus one second of idle, spread over the 600 s step.
  ASSERT_EQ(r.power_watts.values.size(), 2u);
  EXPECT_EQ(r.power_watts.values[0], 3200.0);
  EXPECT_EQ(r.power_watts.values[1], (3200.0 * 400 + 800.0) / 600.0);
  // Peak power: the 3200 W plateau spans both buckets.
  ASSERT_EQ(r.peak_power_watts.values.size(), 2u);
  EXPECT_EQ(r.peak_power_watts.values[0], 3200.0);
  EXPECT_EQ(r.peak_power_watts.values[1], 3200.0);
}

TEST(EnergyAccounting, GpuWattsFnOverridesTheProfileDraw) {
  const auto spec = one_vc_spec(1);
  const auto t = make_trace(spec, {{0, 1000, 8, "vc0"}});
  SimConfig cfg;
  cfg.gpu_watts_fn = [](const trace::JobRecord&) { return 150.0; };
  const SimResult r = ClusterSimulator(spec, cfg).run(t);
  EXPECT_EQ(r.energy_joules, (800.0 + 8 * 150.0) * 1000 + 800.0);
  EXPECT_EQ(r.max_power_watts, 2000.0);
}

TEST(EnergyAccounting, WorkloadFreeVcBillsItsIdleBaseline) {
  // vc1 never sees a job, so it spawns no shard — its idle draw must still
  // be billed analytically, and the per-VC energies must sum *exactly* to
  // the cluster energy.
  trace::ClusterSpec spec;
  spec.name = "two";
  spec.gpus_per_node = 8;
  spec.vcs = {{"vc0", 2, 8}, {"vc1", 3, 8}};
  spec.nodes = 5;
  const auto t = make_trace(spec, {{0, 100, 8, "vc0"}});  // window [0, 101)
  const SimResult r = ClusterSimulator(spec, SimConfig{}).run(t);

  ASSERT_EQ(r.vc_stats.size(), 2u);
  EXPECT_EQ(r.vc_stats[0].energy_joules, 800.0 * 2 * 101 + 2400.0 * 100);
  EXPECT_EQ(r.vc_stats[1].energy_joules, 800.0 * 3 * 101);
  EXPECT_EQ(r.energy_joules,
            r.vc_stats[0].energy_joules + r.vc_stats[1].energy_joules);
}

TEST(EnergyAccounting, PerVcEnergiesSumToClusterEnergyOnRealWorkloads) {
  const auto cfg_gen =
      trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 7, 0.02);
  const Trace t = trace::SyntheticTraceGenerator(cfg_gen).generate();
  for (SchedulerPolicy policy :
       {SchedulerPolicy::kFifo, SchedulerPolicy::kSrtf,
        SchedulerPolicy::kPowerCap}) {
    SimConfig cfg;
    cfg.policy = policy;
    cfg.backfill = true;
    const SimResult r = ClusterSimulator(t.cluster(), cfg).run(t);
    ASSERT_GT(r.energy_joules, 0.0);
    double sum = 0.0;
    for (const auto& vc : r.vc_stats) sum += vc.energy_joules;
    // Exact, not approximate: the merge sums the same terms in the same
    // order (and the default profile keeps every term integer-valued).
    EXPECT_EQ(sum, r.energy_joules) << to_string(policy);
  }
}

TEST(EnergyAccounting, BucketIntegratorIsAddOrderIndependent) {
  // Integer-valued watts × integer durations: permuting add() order must
  // reproduce the series bit-for-bit (the property the sharded merge leans
  // on).
  const std::vector<std::tuple<std::int64_t, std::int64_t, double>> segments =
      {{0, 950, 3200.0}, {120, 1800, 800.0},  {950, 1001, 800.0},
       {30, 30000, 1.0}, {600, 1200, 1600.0}, {0, 5, 7.0}};
  BucketIntegrator fwd(0, 2000, 600);
  for (const auto& [t0, t1, w] : segments) fwd.add(t0, t1, w);
  BucketIntegrator rev(0, 2000, 600);
  for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
    rev.add(std::get<0>(*it), std::get<1>(*it), std::get<2>(*it));
  }
  const auto a = fwd.mean_series();
  const auto b = rev.mean_series();
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i], b.values[i]) << "bucket " << i;
  }
}

// ---------------------------------------------------------------------------
// Budget-constrained admission
// ---------------------------------------------------------------------------

TEST(PowerCap, AdmissionDelaysWorkAndCutsInWindowEnergy) {
  // Two 8-GPU nodes (idle 1600 W), two full-node 100 s jobs at t=0. One
  // running job draws 1600 + 2400 = 4000 W; both together 6400 W. A 4500 W
  // cap therefore serializes them.
  const auto spec = one_vc_spec(2);
  const auto t = make_trace(spec, {{0, 100, 8, "vc0"}, {0, 100, 8, "vc0"}});

  SimConfig cfg;
  const SimResult uncapped = ClusterSimulator(spec, cfg).run(t);
  EXPECT_EQ(uncapped.outcomes[0].start, 0);
  EXPECT_EQ(uncapped.outcomes[1].start, 0);
  EXPECT_EQ(uncapped.max_power_watts, 6400.0);
  // Window [0, 101): baseline 1600 × 101 + two jobs × 2400 × 100.
  EXPECT_EQ(uncapped.energy_joules, 1600.0 * 101 + 2 * 2400.0 * 100);

  cfg.policy = SchedulerPolicy::kPowerCap;
  cfg.power_cap_watts = 4500.0;
  const SimResult capped = ClusterSimulator(spec, cfg).run(t);
  EXPECT_EQ(capped.outcomes[0].start, 0);
  EXPECT_EQ(capped.outcomes[1].start, 100);  // waited for power headroom
  EXPECT_EQ(capped.outcomes[1].end, 200);
  EXPECT_EQ(capped.max_power_watts, 4000.0);
  // Job 2 spills past the fixed window; only its first second is billed
  // in-window: the energy-vs-JCT tradeoff in miniature.
  EXPECT_EQ(capped.energy_joules, 1600.0 * 101 + 2400.0 * 100 + 2400.0);
  EXPECT_LT(capped.energy_joules, uncapped.energy_joules);
  EXPECT_GT(capped.avg_jct, uncapped.avg_jct);
}

TEST(PowerCap, GateAppliesToEveryPolicyNotJustPowerCap) {
  const auto spec = one_vc_spec(2);
  const auto t = make_trace(spec, {{0, 100, 8, "vc0"}, {0, 100, 8, "vc0"}});
  for (SchedulerPolicy policy : all_policies()) {
    SimConfig cfg;
    cfg.policy = policy;
    cfg.power_cap_watts = 4500.0;
    if (policy == SchedulerPolicy::kQssf ||
        policy == SchedulerPolicy::kEnergyQssf) {
      cfg.priority_fn = [](const trace::JobRecord& j) {
        return static_cast<double>(j.duration) * j.num_gpus;
      };
    }
    const SimResult r = ClusterSimulator(spec, cfg).run(t);
    EXPECT_EQ(r.max_power_watts, 4000.0) << to_string(policy);
  }
}

TEST(PowerCap, BackfillIsPowerProportional) {
  // Head job A (4000 W projected) runs; B (another full node, 6400 W) is
  // power-blocked; tiny C (1 GPU, +300 W -> 4300 W <= 4500 W) may start at
  // t=0 only via power-proportional backfill.
  const auto spec = one_vc_spec(2);
  const auto t = make_trace(
      spec, {{0, 100, 8, "vc0"}, {0, 100, 8, "vc0"}, {0, 50, 1, "vc0"}});

  SimConfig cfg;
  cfg.policy = SchedulerPolicy::kPowerCap;
  cfg.power_cap_watts = 4500.0;
  const SimResult head_of_line = ClusterSimulator(spec, cfg).run(t);
  EXPECT_EQ(head_of_line.outcomes[2].start, 100);  // stuck behind blocked B

  cfg.backfill = true;
  const SimResult backfilled = ClusterSimulator(spec, cfg).run(t);
  EXPECT_EQ(backfilled.outcomes[0].start, 0);
  EXPECT_EQ(backfilled.outcomes[1].start, 100);  // still over budget at t=0
  EXPECT_EQ(backfilled.outcomes[2].start, 0);    // fits GPUs *and* watts
  EXPECT_LE(backfilled.max_power_watts, 4500.0);
}

// The invariant sweep: across every policy × backfill × seed, the modeled
// draw never exceeds the enforceable bound — each VC stays at or under
// max(its idle baseline, its capacity-proportional cap share), so the
// cluster stays under the sum. With hardware-uniform VCs that sum is the cap
// itself. Also pins serial ≡ sharded bit-parity of all new counters.
TEST(PowerCap, CapIsRespectedAcrossPoliciesBackfillSeeds) {
  for (const std::uint64_t seed : {7ull, 19ull}) {
    const auto cfg_gen = trace::GeneratorConfig::helios(
        trace::helios_cluster("Venus"), seed, 0.02);
    const Trace t = trace::SyntheticTraceGenerator(cfg_gen).generate();
    const auto& spec = t.cluster();

    std::int64_t nodes = 0;
    std::int64_t gpus = 0;
    for (const auto& vc : spec.vcs) {
      nodes += vc.nodes;
      gpus += static_cast<std::int64_t>(vc.nodes) * vc.gpus_per_node;
    }
    const core::PowerProfile profile;
    const double cap = profile.idle_node_watts * static_cast<double>(nodes) +
                       profile.gpu_watts * static_cast<double>(gpus) * 0.3;
    double bound = 0.0;  // sum over VCs of max(baseline, cap share)
    for (const auto& vc : spec.vcs) {
      const double share =
          cap * (static_cast<double>(vc.nodes) * vc.gpus_per_node) /
          static_cast<double>(gpus);
      bound += std::max(share, profile.idle_node_watts * vc.nodes);
    }

    for (SchedulerPolicy policy : all_policies()) {
      for (const bool backfill : {false, true}) {
        SimConfig cfg;
        cfg.policy = policy;
        cfg.backfill = backfill;
        cfg.power_cap_watts = cap;
        if (policy == SchedulerPolicy::kQssf ||
            policy == SchedulerPolicy::kEnergyQssf) {
          cfg.priority_fn = [](const trace::JobRecord& j) {
            return static_cast<double>(j.duration) * j.num_gpus;
          };
        }
        cfg.execution = common::ExecMode::kSerial;
        const SimResult serial = ClusterSimulator(spec, cfg).run(t);
        cfg.execution = common::ExecMode::kParallel;
        const SimResult sharded = ClusterSimulator(spec, cfg).run(t);

        EXPECT_LE(serial.max_power_watts, bound + 1e-6)
            << to_string(policy) << " backfill=" << backfill
            << " seed=" << seed;
        EXPECT_GT(serial.energy_joules, 0.0);
        EXPECT_TRUE(sweep::results_identical(serial, sharded))
            << to_string(policy) << " backfill=" << backfill
            << " seed=" << seed;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// kEnergyQssf ordering
// ---------------------------------------------------------------------------

TEST(EnergyQssf, OrdersByPredictedEnergyNotGpuTime) {
  // One node. A runs first under both orderings. B is long but power-cheap
  // (predicted energy 1000 s × 8 GPUs × 100 W = 0.8 MJ); C is short but
  // power-hungry (200 × 8 × 600 = 0.96 MJ). QSSF (GPU time: 8000 vs 1600)
  // runs C before B; EQSSF flips that.
  const auto spec = one_vc_spec(1);
  const auto t = make_trace(
      spec, {{0, 100, 8, "vc0"}, {0, 1000, 8, "vc0"}, {0, 200, 8, "vc0"}});
  auto watts_by_duration = [](const trace::JobRecord& j) {
    if (j.duration == 1000) return 100.0;
    if (j.duration == 200) return 600.0;
    return 300.0;
  };
  auto oracle = [](const trace::JobRecord& j) {
    return static_cast<double>(j.duration) * j.num_gpus;
  };

  SimConfig cfg;
  cfg.policy = SchedulerPolicy::kQssf;
  cfg.priority_fn = oracle;
  cfg.gpu_watts_fn = watts_by_duration;
  const SimResult qssf = ClusterSimulator(spec, cfg).run(t);
  EXPECT_LT(qssf.outcomes[2].start, qssf.outcomes[1].start);

  cfg.policy = SchedulerPolicy::kEnergyQssf;
  const SimResult eqssf = ClusterSimulator(spec, cfg).run(t);
  EXPECT_LT(eqssf.outcomes[1].start, eqssf.outcomes[2].start);
  EXPECT_EQ(eqssf.outcomes[0].start, 0);  // cheapest predicted energy first
}

}  // namespace
}  // namespace helios::sim
