// Node-level cluster state with VC partitioning and consolidated placement.
//
// Models the allocation rules of §2.1/§4.2.2: every node belongs to exactly
// one VC; GPU jobs are gang-scheduled (all-or-nothing) and placed in the
// ConsolidateAllocate paradigm — as few nodes as possible, so a 16-GPU job
// on 8-GPU nodes needs two *completely free* nodes. Also tracks node power
// states for the Cluster Energy Saving service (sleeping nodes accept no
// work until woken; waking takes a boot delay).
//
// Hot paths are indexed instead of scanned: each VC keeps buckets of
// schedulable nodes keyed by free-GPU count (by_free), ordered sets of its
// sleeping/booting nodes, and running GPU counters, so
//  * try_allocate is O(gpus_per_node + nodes_in_gang) — best-fit picks the
//    lowest-id node from the first non-empty bucket, which reproduces the
//    previous linear scan's choice exactly;
//  * free_gpus / schedulable_gpus / capacity_gpus / can_ever_fit are O(1);
//  * infeasible requests (demand > free schedulable GPUs) are rejected O(1)
//    before any placement work;
//  * power transitions and boot bookkeeping touch only the affected sets.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/power_model.h"
#include "trace/cluster_config.h"

namespace helios::sim {

enum class PowerState : std::uint8_t {
  kActive = 0,    ///< powered on, schedulable
  kSleeping = 1,  ///< DRS deep sleep: not schedulable, ~0 W
  kBooting = 2,   ///< waking up: not schedulable until boot completes
  kFailed = 3,    ///< hardware fault: not schedulable until repaired
};

struct Node {
  int vc = -1;
  int total_gpus = 0;
  int free_gpus = 0;
  PowerState power = PowerState::kActive;
  /// When power == kBooting: the time the node becomes active.
  std::int64_t boot_ready = 0;

  [[nodiscard]] bool busy() const noexcept { return free_gpus < total_gpus; }
  [[nodiscard]] bool schedulable() const noexcept {
    return power == PowerState::kActive;
  }
};

/// (node index, gpus) pairs with inline storage: single-node placements (the
/// overwhelming majority of jobs) and two-part gangs never touch the heap;
/// larger gangs spill to a vector that then holds every entry.
class NodeGpuList {
 public:
  using value_type = std::pair<int, int>;

  void emplace_back(int node, int gpus) {
    if (size_ < kInline) {
      inline_[size_] = {node, gpus};
    } else {
      if (size_ == kInline) {
        spill_.assign(inline_.begin(), inline_.end());
      }
      spill_.emplace_back(node, gpus);
    }
    ++size_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const value_type* begin() const noexcept { return data(); }
  [[nodiscard]] const value_type* end() const noexcept {
    return data() + size_;
  }
  [[nodiscard]] const value_type& operator[](std::size_t i) const noexcept {
    return data()[i];
  }

 private:
  static constexpr std::size_t kInline = 2;

  [[nodiscard]] const value_type* data() const noexcept {
    return size_ <= kInline ? inline_.data() : spill_.data();
  }

  std::size_t size_ = 0;
  std::array<value_type, kInline> inline_{};
  std::vector<value_type> spill_;  ///< all entries once size_ > kInline
};

/// GPUs taken from specific nodes; returned by try_allocate and passed back
/// to release.
struct Allocation {
  NodeGpuList node_gpus;  ///< (node index, gpus)

  [[nodiscard]] int total() const noexcept {
    int t = 0;
    for (auto [n, g] : node_gpus) t += g;
    return t;
  }
};

class ClusterState {
 public:
  explicit ClusterState(const trace::ClusterSpec& spec);

  /// Consolidated gang allocation of `gpus` within VC `vc`:
  ///  * gpus <= gpus_per_node: best-fit single node (least free GPUs that
  ///    still fit), so small jobs fragment as few nodes as possible;
  ///  * gpus > gpus_per_node: floor(gpus/gpn) completely free nodes plus a
  ///    best-fit node for the remainder.
  /// Returns nullopt when the VC cannot host the job right now.
  [[nodiscard]] std::optional<Allocation> try_allocate(int vc, int gpus);

  void release(const Allocation& a);

  /// Re-apply an allocation previously released (SRTF preemption rollback).
  /// The caller guarantees the GPUs are still free.
  void reclaim(const Allocation& a);

  /// -- capacity queries (all O(1)) ---------------------------------------
  [[nodiscard]] int vc_count() const noexcept { return static_cast<int>(vc_nodes_.size()); }
  [[nodiscard]] int node_count() const noexcept { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const Node& node(int i) const noexcept {
    return nodes_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::vector<int>& vc_node_indices(int vc) const noexcept {
    return vc_nodes_[static_cast<std::size_t>(vc)];
  }
  /// Free GPUs on schedulable nodes of a VC.
  [[nodiscard]] int free_gpus(int vc) const noexcept {
    return index_[static_cast<std::size_t>(vc)].sched_free;
  }
  /// Total GPUs on schedulable nodes of a VC.
  [[nodiscard]] int schedulable_gpus(int vc) const noexcept {
    return index_[static_cast<std::size_t>(vc)].sched_total;
  }
  /// Total GPUs of the VC regardless of power state.
  [[nodiscard]] int capacity_gpus(int vc) const noexcept {
    return index_[static_cast<std::size_t>(vc)].capacity;
  }
  /// Largest job the VC could ever host when fully powered (capacity check).
  [[nodiscard]] bool can_ever_fit(int vc, int gpus) const noexcept {
    return vc >= 0 && vc < vc_count() && gpus > 0 && gpus <= capacity_gpus(vc);
  }

  /// Cluster-wide counters.
  [[nodiscard]] int busy_nodes() const noexcept { return busy_nodes_; }
  [[nodiscard]] int busy_gpus() const noexcept { return busy_gpus_; }
  [[nodiscard]] int active_nodes() const noexcept {  ///< powered (incl. booting)
    return node_count() - sleeping_count_ - failed_count_;
  }
  [[nodiscard]] int sleeping_nodes() const noexcept { return sleeping_count_; }
  [[nodiscard]] int booting_nodes() const noexcept {
    return static_cast<int>(boot_queue_.size());
  }

  /// Baseline draw of the whole state under `profile`: every node billed by
  /// its power state, excluding the per-GPU draw of running jobs (the
  /// simulator tracks that per run, since it varies per job). O(1) — derived
  /// from the maintained power-state counters.
  [[nodiscard]] double baseline_watts(
      const core::PowerProfile& profile) const noexcept {
    const int booting = booting_nodes();
    const int active =
        node_count() - sleeping_count_ - failed_count_ - booting;
    return profile.baseline_watts(active, booting, sleeping_count_,
                                  failed_count_);
  }

  /// -- power control (used by the CES service) ---------------------------
  /// Put up to `count` idle active nodes of the cluster to sleep, in node
  /// order. Returns how many slept.
  int sleep_idle_nodes(int count);
  /// Same, restricted to one VC.
  int sleep_idle_nodes_in_vc(int vc, int count);
  /// Active nodes of `vc` with no allocations (candidates for DRS).
  [[nodiscard]] int idle_active_nodes_in_vc(int vc) const noexcept;
  /// Begin waking up to `count` sleeping nodes (any VC); they become
  /// schedulable at now + boot_delay. Returns how many started booting.
  int wake_nodes(int count, std::int64_t now, std::int64_t boot_delay);
  /// Same, but restricted to one VC.
  int wake_nodes_in_vc(int vc, int count, std::int64_t now, std::int64_t boot_delay);
  /// Nodes of `vc` currently booting.
  [[nodiscard]] int booting_nodes_in_vc(int vc) const noexcept;
  /// Nodes of `vc` currently asleep.
  [[nodiscard]] int sleeping_nodes_in_vc(int vc) const noexcept;
  /// Promote nodes whose boot completed at or before `now` to active.
  void finish_boots(std::int64_t now);
  /// Earliest pending boot-ready time, or nullopt.
  [[nodiscard]] std::optional<std::int64_t> next_boot_ready() const noexcept;

  /// -- fault injection (used by the simulator's FaultPlan replay) --------
  /// Take a node out of service. The caller must have released every
  /// allocation on the node first (the simulator kills its jobs), so the
  /// node is fully free. Works from any power state (a sleeping or booting
  /// node can die too); no-op when already failed. The node keeps counting
  /// toward capacity_gpus (it will be repaired), so can_ever_fit — and with
  /// it the rejection semantics — is unaffected by transient failures.
  void fail_node(int ni);
  /// Return a repaired node to service, fully free and schedulable.
  /// No-op unless the node is currently failed.
  void recover_node(int ni);
  [[nodiscard]] int failed_nodes() const noexcept { return failed_count_; }
  [[nodiscard]] int failed_nodes_in_vc(int vc) const noexcept;

 private:
  /// Ascending set of node ids on a flat vector. VCs hold at most a few
  /// dozen nodes, where one contiguous array beats a red-black tree on every
  /// operation the allocator hot path performs.
  class NodeIdSet {
   public:
    void insert(int v) {
      ids_.insert(std::lower_bound(ids_.begin(), ids_.end(), v), v);
    }
    void erase(int v) {
      ids_.erase(std::lower_bound(ids_.begin(), ids_.end(), v));
    }
    [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
    [[nodiscard]] int front() const noexcept { return ids_.front(); }
    [[nodiscard]] int at(std::size_t i) const noexcept { return ids_[i]; }

   private:
    std::vector<int> ids_;
  };

  /// Per-VC index over the flat node array.
  struct VcIndex {
    int gpn = 0;        ///< GPUs per node in this VC (0 when the VC is empty)
    int capacity = 0;   ///< total GPUs, any power state
    int sched_total = 0;  ///< total GPUs on kActive nodes
    int sched_free = 0;   ///< free GPUs on kActive nodes
    /// by_free[f]: kActive nodes with exactly f free GPUs, ordered by node
    /// id (which is VC-local submission order, so "first in node order").
    std::vector<NodeIdSet> by_free;
    NodeIdSet sleeping;  ///< node ids in kSleeping, ordered
    NodeIdSet booting;   ///< node ids in kBooting, ordered
    NodeIdSet failed;    ///< node ids in kFailed, ordered
  };

  void apply(const Allocation& a, int sign);
  void bucket_erase(const Node& n, int ni);
  void bucket_insert(const Node& n, int ni);
  void sleep_node(int ni);
  void wake_node(int ni, std::int64_t now, std::int64_t boot_delay);

  std::vector<Node> nodes_;
  std::vector<std::vector<int>> vc_nodes_;
  std::vector<VcIndex> index_;
  /// Booting nodes ordered by (boot_ready, node id): O(log n) next_boot_ready
  /// and finish_boots touches only completed boots.
  std::set<std::pair<std::int64_t, int>> boot_queue_;
  int busy_nodes_ = 0;  // maintained incrementally: O(1) busy queries
  int busy_gpus_ = 0;
  int sleeping_count_ = 0;
  int failed_count_ = 0;
};

}  // namespace helios::sim
