#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/env.h"

namespace helios {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

ThreadPool& global_pool() {
  // HELIOS_THREADS overrides the pool width at first use (0 = hardware
  // concurrency) — the same knob the benches use, and the only way to
  // exercise the multi-worker paths on a single-core CI machine.
  static ThreadPool pool(static_cast<std::size_t>(
      std::max<std::int64_t>(0, env_int("HELIOS_THREADS", 0))));
  return pool;
}

std::vector<std::pair<std::size_t, std::size_t>> chunk_ranges(
    std::size_t begin, std::size_t end, std::size_t max_chunks,
    std::size_t grain) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  if (begin >= end) return chunks;
  const std::size_t n = end - begin;
  const std::size_t chunk = std::max(
      std::max<std::size_t>(grain, 1),
      (n + max_chunks - 1) / std::max<std::size_t>(1, max_chunks));
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    chunks.emplace_back(lo, std::min(end, lo + chunk));
  }
  return chunks;
}

void parallel_run_chunks(
    const std::vector<std::pair<std::size_t, std::size_t>>& chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (chunks.empty()) return;
  auto& pool = global_pool();
  // A single chunk, or a single-threaded pool, gains nothing from dispatch:
  // run inline on the caller (on a one-core machine the handoff to the lone
  // worker otherwise costs real wall time on every call).
  if (chunks.size() == 1 || pool.thread_count() <= 1) {
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      fn(i, chunks[i].first, chunks[i].second);
    }
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const auto [lo, hi] = chunks[i];
    futures.push_back(pool.submit([i, lo, hi, &fn] { fn(i, lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_run_tasks(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks[0]();
    return;
  }
  // Shared ownership so helper jobs that outlive the call (they may still be
  // spinning through the exhausted task list) never touch freed state.
  struct Shared {
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  shared->tasks = std::move(tasks);
  const std::size_t n = shared->tasks.size();
  auto drain = [shared, n] {
    for (;;) {
      const std::size_t i = shared->next.fetch_add(1);
      if (i >= n) return;
      try {
        shared->tasks[i]();
      } catch (...) {
        std::lock_guard lock(shared->mutex);
        if (!shared->error) shared->error = std::current_exception();
      }
      if (shared->done.fetch_add(1) + 1 == n) {
        std::lock_guard lock(shared->mutex);
        shared->cv.notify_all();
      }
    }
  };
  auto& pool = global_pool();
  // A single-threaded pool adds nothing over the caller draining alone, and
  // on a one-core machine the extra thread only causes context-switch
  // ping-pong with the caller.
  const std::size_t helpers =
      pool.thread_count() > 1 ? std::min(n - 1, pool.thread_count()) : 0;
  for (std::size_t h = 0; h < helpers; ++h) pool.submit(drain);
  drain();
  std::unique_lock lock(shared->mutex);
  shared->cv.wait(lock, [&] { return shared->done.load() == n; });
  if (shared->error) std::rethrow_exception(shared->error);
}

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain) {
  if (begin >= end) return;  // don't spin up the pool for nothing
  parallel_run_chunks(
      chunk_ranges(begin, end, global_pool().thread_count() * 4, grain),
      [&fn](std::size_t, std::size_t lo, std::size_t hi) { fn(lo, hi); });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

}  // namespace helios
