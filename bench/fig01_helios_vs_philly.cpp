// Figure 1: (a) CDFs of GPU job duration, Helios (all clusters pooled) vs
// Philly; (b) distribution of GPU time by final job status.
#include <cstdio>

#include "analysis/job_stats.h"
#include "bench_common.h"
#include "common/text_table.h"
#include "stats/ecdf.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace analysis = helios::analysis;
  namespace stats = helios::stats;

  bench::print_header("Figure 1",
                      "GPU job duration CDFs and GPU time by final status, "
                      "Helios vs Philly");

  // (a) pooled Helios duration sample vs Philly.
  std::vector<double> helios_durations;
  for (const auto& tp : bench::helios_traces()) {
    const helios::trace::Trace& t = *tp;
    for (const auto& j : t.jobs()) {
      if (j.is_gpu_job()) helios_durations.push_back(j.duration);
    }
  }
  const stats::Ecdf helios_cdf(std::move(helios_durations));
  const stats::Ecdf philly_cdf =
      analysis::duration_cdf(bench::philly_trace(), /*gpu_jobs=*/true);

  TextTable cdf({"duration (s)", "Helios CDF", "Philly CDF"});
  for (double x : stats::log_space_points(10.0, 1e7, 13)) {
    cdf.add_row({TextTable::cell(x, 0), TextTable::cell_pct(helios_cdf(x)),
                 TextTable::cell_pct(philly_cdf(x))});
  }
  std::printf("(a) duration CDFs\n%s\n", cdf.str().c_str());
  bench::print_expectation("Philly stochastically longer than Helios",
                           "Philly curve below Helios",
                           helios_cdf(1000.0) > philly_cdf(1000.0) ? "yes" : "NO");

  // (b) GPU time by final status.
  std::array<double, 3> helios_time{};
  double helios_total = 0.0;
  for (const auto& tp : bench::helios_traces()) {
    const helios::trace::Trace& t = *tp;
    for (const auto& j : t.jobs()) {
      if (!j.is_gpu_job()) continue;
      helios_time[static_cast<std::size_t>(j.state)] += j.gpu_time();
      helios_total += j.gpu_time();
    }
  }
  for (auto& v : helios_time) v /= helios_total;
  const auto philly_time = analysis::gpu_time_by_state(bench::philly_trace());

  TextTable status({"GPU time share", "Completed", "Canceled", "Failed"});
  status.add_row({"Helios (measured)", TextTable::cell_pct(helios_time[0]),
                  TextTable::cell_pct(helios_time[1]),
                  TextTable::cell_pct(helios_time[2])});
  status.add_row({"Helios (paper)", "51.3%", "39.4%", "9.3%"});
  status.add_row({"Philly (measured)", TextTable::cell_pct(philly_time[0]),
                  TextTable::cell_pct(philly_time[1]),
                  TextTable::cell_pct(philly_time[2])});
  status.add_row({"Philly (paper)", "31.3%", "32.6%", "36.1%"});
  std::printf("(b) GPU time by final status\n%s\n", status.str().c_str());
  return 0;
}
