// Cluster Energy Saving service (paper §4.3, Algorithm 2).
//
// Predicts the cluster's future node demand with a time-series model and
// uses Dynamic Resource Sleep (DRS) to power idle nodes off:
//  * JobArrivalCheck — on submission, if the requested resources exceed what
//    the powered nodes can offer, wake (R - CA + σ) nodes immediately (IPMI;
//    a woken node takes boot_delay to become schedulable, delaying jobs).
//  * PeriodicCheck — every check_interval, compute the recent reduction in
//    busy nodes (T_H, from observed history) and the predicted reduction
//    over the coming future_window (T_P, from the forecaster). When both
//    exceed their thresholds ξ_H/ξ_P, sleep idle nodes down to CR + σ.
// The "vanilla DRS" baseline skips both trend conditions and sleeps whenever
// idle nodes exist — the paper reports it wakes nodes ~34x/day vs 1.1-2.6x.
#pragma once

#include <memory>
#include <string>

#include "core/framework.h"
#include "core/power_model.h"
#include "forecast/models.h"
#include "sim/cluster_state.h"
#include "trace/trace.h"

namespace helios::core {

struct CesConfig {
  int sigma = 4;                          ///< buffer nodes kept powered
  double xi_h = 0.5;                      ///< recent-trend threshold (nodes)
  double xi_p = 0.5;                      ///< future-trend threshold (nodes)
  std::int64_t check_interval = 600;      ///< PeriodicCheck cadence (10 min)
  std::int64_t boot_delay = 300;          ///< node reboot time (5 min)
  std::int64_t recent_window = 3600;      ///< T_H lookback (1 h)
  std::int64_t future_window = 3 * 3600;  ///< T_P horizon (3 h)
  std::int64_t series_step = 600;         ///< node-series resolution
  bool vanilla_drs = false;               ///< baseline: no trend conditions
  PowerModel power;
};

/// Everything Figure 14/15 and Table 5 need.
struct CesResult {
  forecast::TimeSeries running_nodes;    ///< busy nodes under CES
  forecast::TimeSeries active_nodes;     ///< powered nodes under CES
  forecast::TimeSeries predicted_nodes;  ///< forecaster output per bucket
  int total_nodes = 0;

  double avg_drs_nodes = 0.0;       ///< time-average sleeping nodes
  double daily_wakeups = 0.0;       ///< NodesWakeUp events per day
  double avg_woken_per_wakeup = 0.0;
  std::int64_t wakeup_events = 0;
  std::int64_t woken_nodes = 0;
  double node_util_original = 0.0;  ///< busy/total, all nodes always powered
  double node_util_ces = 0.0;       ///< busy/active under CES
  /// Jobs that waited at the head of their VC queue while nodes were booting
  /// for them — the paper's "jobs affected by the 5-minute reboot".
  std::int64_t affected_jobs = 0;
  std::int64_t total_jobs = 0;
  double saved_kwh = 0.0;           ///< over the replay window, incl. cooling
  double annualized_kwh = 0.0;
  double forecast_smape = 0.0;      ///< predicted vs actual running nodes
};

class CesService final : public Service {
 public:
  /// The forecaster models the *running nodes* series; the paper's choice is
  /// a GBDT (forecast::GBDTForecaster), compared against ARIMA/Prophet-like
  /// baselines in ablation_forecast.
  CesService(CesConfig config, std::unique_ptr<forecast::Forecaster> model);

  [[nodiscard]] std::string name() const override { return "ces"; }

  /// Train the forecaster on the historical running-nodes series (e.g. the
  /// FIFO-operated April-August trace).
  void fit(const forecast::TimeSeries& running_nodes_history);

  /// Model Update Engine hook (re-fits from the operated trace's series).
  void update(const trace::Trace& new_data) override;

  /// Replay `eval` (GPU jobs inside [begin, end), FIFO order) under
  /// Algorithm 2. `history` is the observed running-nodes series preceding
  /// `begin`; it seeds the forecaster's lags and keeps extending as the
  /// replay observes new samples.
  [[nodiscard]] CesResult replay(const trace::Trace& eval,
                                 const forecast::TimeSeries& history,
                                 UnixTime begin, UnixTime end) const;

  [[nodiscard]] const CesConfig& config() const noexcept { return config_; }
  [[nodiscard]] const forecast::Forecaster& forecaster() const noexcept {
    return *model_;
  }

 private:
  CesConfig config_;
  std::unique_ptr<forecast::Forecaster> model_;
  forecast::TimeSeries fitted_history_;
};

}  // namespace helios::core
