#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace helios {

namespace {
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

Rng Rng::split() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling; bias is negligible for
  // the n used here but we keep the rejection loop for exactness.
  if (n == 0) return 0;
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  return lo + static_cast<std::int64_t>(
                  uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; exact enough for the
  // arrival-count use cases (mean counts per time bucket).
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0 || weights.empty()) return 0;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= std::max(0.0, weights[i]);
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

CategoricalSampler::CategoricalSampler(std::span<const double> weights) {
  cdf_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += std::max(0.0, w);
    cdf_.push_back(acc);
  }
}

std::size_t CategoricalSampler::sample(Rng& rng) const noexcept {
  if (cdf_.empty() || cdf_.back() <= 0.0) return 0;
  const double x = rng.uniform() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), x);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

double CategoricalSampler::probability(std::size_t i) const noexcept {
  if (i >= cdf_.size() || cdf_.back() <= 0.0) return 0.0;
  const double lo = i == 0 ? 0.0 : cdf_[i - 1];
  return (cdf_[i] - lo) / cdf_.back();
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.reserve(n);
  double acc = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    acc += 1.0 / std::pow(static_cast<double>(rank), s);
    cdf_.push_back(acc);
  }
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  if (cdf_.empty()) return 0;
  const double x = rng.uniform() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), x);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

}  // namespace helios
