// Fixed-width and logarithmic histograms.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace helios::stats {

/// Histogram over [lo, hi) with `bins` equal-width buckets; values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double count(std::size_t bin) const noexcept { return counts_[bin]; }
  [[nodiscard]] double total() const noexcept { return total_; }
  /// Center of bucket `bin`.
  [[nodiscard]] double bin_center(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;
  /// Fraction of total weight in bucket `bin` (0 when empty).
  [[nodiscard]] double fraction(std::size_t bin) const noexcept;

  [[nodiscard]] std::size_t bin_index(double x) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

/// Histogram with logarithmically spaced bucket edges over [lo, hi), lo > 0.
/// Natural for job durations spanning seconds to weeks.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double count(std::size_t bin) const noexcept { return counts_[bin]; }
  [[nodiscard]] double total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;
  /// Geometric center of bucket `bin`.
  [[nodiscard]] double bin_center(std::size_t bin) const noexcept;
  [[nodiscard]] double fraction(std::size_t bin) const noexcept;

  [[nodiscard]] std::size_t bin_index(double x) const noexcept;

 private:
  double log_lo_;
  double log_hi_;
  double log_width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

}  // namespace helios::stats
