// Runtime SIMD dispatch for the hand-vectorized kernels (ml/gbdt_kernels.h).
//
// The AVX2 kernels live in one translation unit compiled with -mavx2
// (CMake's per-file COMPILE_OPTIONS); the rest of the library is built for
// the baseline ISA, so the same binary runs on any x86-64 — the vector paths
// are entered only when simd_enabled() says the CPU actually has AVX2.
//
// Three gates stack, each able only to *narrow* the previous one:
//   1. simd_compiled()  — the AVX2 TU was built with real intrinsics
//                         (HELIOS_HAVE_AVX2, set by CMake when the compiler
//                         accepts -mavx2).
//   2. simd_supported() — compiled AND the running CPU reports AVX2.
//   3. simd_enabled()   — supported AND not switched off: the HELIOS_SIMD
//                         environment variable (0/off/scalar disables,
//                         1/on/avx2 or unset enables) read once at first
//                         use, overridable at runtime via set_simd_enabled()
//                         (the parity tests sweep both paths with it).
//
// Contract: every SIMD kernel is bit-identical to its scalar twin —
// histogram accumulation is integer adds (order-independent), the batched
// forest walk performs the same mul/add per row — so flipping the dispatch
// can never change results, only speed (test_prediction_parity and the
// microbench_ml startup gate pin this; ./ci.sh simd runs the suites both
// ways).
//
// Thread-safety: all functions are safe to call concurrently;
// set_simd_enabled() is a relaxed atomic store intended for test setup, not
// for toggling mid-fit.
#pragma once

#include <string_view>

namespace helios::common {

/// AVX2 kernels were compiled into this binary.
[[nodiscard]] bool simd_compiled() noexcept;

/// Compiled and the running CPU supports AVX2.
[[nodiscard]] bool simd_supported() noexcept;

/// Supported and not disabled (HELIOS_SIMD / set_simd_enabled).
[[nodiscard]] bool simd_enabled() noexcept;

/// Force the dispatch on or off; returns the *effective* state — requesting
/// `true` on hardware without AVX2 stays off, so tests can never steer the
/// library into illegal instructions.
bool set_simd_enabled(bool on) noexcept;

/// "avx2" or "scalar" — the dispatch state, for bench notes and logs.
[[nodiscard]] std::string_view simd_mode() noexcept;

}  // namespace helios::common
