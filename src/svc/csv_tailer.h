// Incremental reader of a growing trace CSV — "tail -f" for job streams.
//
// A producer (the cluster's accounting export, or examples/serve_replay's
// feeder thread) appends rows to a CSV file; CsvTailer::poll() hands back
// every complete line appended since the last poll, leaving a trailing
// partial line (no '\n' yet) unconsumed until its newline lands. The first
// poll also consumes the schema header row, so callers only ever see data
// rows — ready for trace::Trace::append_csv_row.
//
// The file is reopened on every poll rather than held open: the producer may
// rotate or recreate it between polls, and a resident server polls on a
// cadence that makes open() cost irrelevant.
#pragma once

#include <cstdint>
#include <string>

namespace helios::svc {

class CsvTailer {
 public:
  /// Tail `path`. With skip_header (the trace-CSV default), the first
  /// complete non-blank line is consumed silently as the schema row.
  explicit CsvTailer(std::string path, bool skip_header = true)
      : path_(std::move(path)), skip_header_(skip_header) {}

  /// Every complete line ('\n'-terminated; a blank-line-only tail counts)
  /// appended since the last poll, header excluded. Empty when nothing new
  /// is ready or the file does not exist yet. Never blocks beyond one read.
  [[nodiscard]] std::string poll();

  /// Absolute file offset of the first unconsumed byte.
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

  /// Bytes of data rows consumed so far (header excluded) — the quantity a
  /// checkpoint records (svc::PredictionServer::bytes_ingested).
  [[nodiscard]] std::uint64_t data_bytes() const noexcept {
    return data_bytes_;
  }

  /// Reposition as if `data_bytes` bytes of data rows had already been
  /// consumed — the checkpoint-restore path. Reads the file head to locate
  /// the end of the header; throws std::runtime_error when the file cannot
  /// be read or is shorter than the requested resume point.
  void resume_at_data_bytes(std::uint64_t data_bytes);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  bool skip_header_;
  bool header_consumed_ = false;
  std::uint64_t offset_ = 0;      // absolute; includes header bytes
  std::uint64_t data_bytes_ = 0;  // consumed minus header
};

}  // namespace helios::svc
