// Figure 13: average job queuing delay of the top-10 VCs in Philly
// (October + November) under the four schedulers.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "common/text_table.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;

  bench::print_header(
      "Figure 13",
      "Average queuing delay of the top-10 VCs in Philly (Oct-Nov)",
      "QSSF trained on the first Philly month, evaluated on Oct 15 - Nov 30");

  // The Philly trace starts Oct 1; use the first two weeks as QSSF history
  // (the paper instead assumed randomly perturbed priorities — our generator
  // provides job names, so the full pipeline applies).
  const auto& philly = bench::philly_trace();
  const auto study =
      bench::run_scheduler_study(philly, helios::from_civil(2017, 10, 15),
                                 helios::from_civil(2017, 12, 1));

  std::vector<std::size_t> order(study.fifo.vc_stats.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return study.fifo.vc_stats[a].avg_queue_delay >
           study.fifo.vc_stats[b].avg_queue_delay;
  });

  TextTable table({"VC", "GPUs", "jobs", "FIFO (s)", "QSSF (s)", "SJF (s)",
                   "SRTF (s)"});
  const std::size_t top = std::min<std::size_t>(10, order.size());
  for (std::size_t i = 0; i < top; ++i) {
    const std::size_t vi = order[i];
    const auto& f = study.fifo.vc_stats[vi];
    table.add_row({f.name, TextTable::cell(static_cast<std::int64_t>(f.gpus)),
                   TextTable::cell(f.jobs), TextTable::cell(f.avg_queue_delay, 0),
                   TextTable::cell(study.qssf.vc_stats[vi].avg_queue_delay, 0),
                   TextTable::cell(study.sjf.vc_stats[vi].avg_queue_delay, 0),
                   TextTable::cell(study.srtf.vc_stats[vi].avg_queue_delay, 0)});
  }
  table.add_row({"all", "-", "-", TextTable::cell(study.fifo.avg_queue_delay, 0),
                 TextTable::cell(study.qssf.avg_queue_delay, 0),
                 TextTable::cell(study.sjf.avg_queue_delay, 0),
                 TextTable::cell(study.srtf.avg_queue_delay, 0)});
  std::printf("%s\n", table.str().c_str());

  bench::print_expectation("QSSF brings large per-VC improvements on Philly",
                           "~7.3x queuing improvement overall",
                           TextTable::cell(study.fifo.avg_queue_delay /
                                               std::max(1.0, study.qssf.avg_queue_delay),
                                           1) + "x");
  return 0;
}
