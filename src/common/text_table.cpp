#include "common/text_table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace helios {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(std::max(row.size(), header_.size()));
  if (row.size() > header_.size()) header_.resize(row.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::cell(std::int64_t v) { return std::to_string(v); }

std::string TextTable::cell_grouped(std::int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return (v < 0 ? "-" : "") + out;
}

std::string TextTable::cell_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << (c == 0 ? "" : "  ");
      os << cell << std::string(widths[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace helios
