// Time-series forecasters for cluster load (paper §4.3.2).
//
// The paper evaluates GBDT against "classical or deep learning models, e.g.,
// ARIMA, Prophet, and LSTM" and picks GBDT (~3.6% SMAPE on Earth). This
// module provides:
//   * SeasonalNaiveForecaster  — repeat-last-season reference baseline
//   * HoltWintersForecaster    — additive trend+seasonality smoothing (the
//                                classical decomposition family Prophet
//                                belongs to)
//   * ARForecaster             — AR(p) with optional differencing, the
//                                non-seasonal core of ARIMA, fit by ridge LS
//   * GBDTForecaster           — one-step GBDT on lag/rolling/calendar
//                                features, recursive multi-step
// All models share the Forecaster interface: fit() learns parameters from a
// history; forecast() predicts the next `horizon` steps after an arbitrary
// prefix (which must end where predictions begin).
//
// Determinism: fit() is a pure function of (history, constructor
// parameters) and forecast() of (fitted state, prefix, horizon) — repeated
// calls with the same inputs return bit-identical values on any thread
// count, and a model restored via load_forecaster (docs/FORMATS.md, "FCST"
// frame) forecasts bit-identically to the saved one (test_serialize).
//
// Thread-safety: each forecaster is externally synchronized — fit() and
// load_state() mutate; const forecast() calls may then run concurrently
// from any number of threads. GBDTForecaster::fit() parallelizes
// internally on the shared global_pool() (see ml/gbdt.h for its nesting
// rule); the other models are single-threaded.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/exec_mode.h"
#include "forecast/series.h"
#include "ml/gbdt.h"
#include "ml/linear.h"

namespace helios::serialize {
class Reader;
class Writer;
}  // namespace helios::serialize

namespace helios::forecast {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Learn parameters from `history`.
  virtual void fit(const TimeSeries& history) = 0;

  /// Predict the `horizon` values following `prefix` (the prefix supplies
  /// the lags; it may extend beyond the fitted history).
  [[nodiscard]] virtual std::vector<double> forecast(const TimeSeries& prefix,
                                                     int horizon) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Stable fourcc identifying the concrete model inside a persisted "FCST"
  /// section (see docs/FORMATS.md).
  [[nodiscard]] virtual std::uint32_t type_tag() const noexcept = 0;
  /// Persist / restore the full fitted state (constructor parameters
  /// included); a restored model forecasts bit-identically. load_state()
  /// throws serialize::Error on malformed input. Prefer the free
  /// save_forecaster/load_forecaster pair, which adds the type tag.
  virtual void save_state(serialize::Writer& w) const = 0;
  virtual void load_state(serialize::Reader& r) = 0;
};

/// Persist `model` (type tag + state) into a "FCST" section.
void save_forecaster(serialize::Writer& w, const Forecaster& model);

/// Reconstruct whichever Forecaster the "FCST" section holds; throws
/// serialize::Error (kCorrupt) for an unknown type tag.
[[nodiscard]] std::unique_ptr<Forecaster> load_forecaster(serialize::Reader& r);

/// y[t+h] = y[t + h - k*period] for the smallest valid k.
class SeasonalNaiveForecaster final : public Forecaster {
 public:
  explicit SeasonalNaiveForecaster(int period) : period_(period) {}
  void fit(const TimeSeries& history) override;
  [[nodiscard]] std::vector<double> forecast(const TimeSeries& prefix,
                                             int horizon) const override;
  [[nodiscard]] std::string name() const override { return "seasonal-naive"; }
  [[nodiscard]] std::uint32_t type_tag() const noexcept override;
  void save_state(serialize::Writer& w) const override;
  void load_state(serialize::Reader& r) override;

 private:
  int period_;
};

/// Additive Holt-Winters triple exponential smoothing. Defaults are
/// conservative (gamma << alpha, tiny beta): long seasons (m ~ 144) couple
/// the level and seasonal states, and aggressive gamma makes the pair
/// oscillate on near-flat series.
class HoltWintersForecaster final : public Forecaster {
 public:
  HoltWintersForecaster(int period, double alpha = 0.20, double beta = 0.005,
                        double gamma = 0.04)
      : period_(period), alpha_(alpha), beta_(beta), gamma_(gamma) {}
  void fit(const TimeSeries& history) override;
  [[nodiscard]] std::vector<double> forecast(const TimeSeries& prefix,
                                             int horizon) const override;
  [[nodiscard]] std::string name() const override { return "holt-winters"; }
  [[nodiscard]] std::uint32_t type_tag() const noexcept override;
  void save_state(serialize::Writer& w) const override;
  void load_state(serialize::Reader& r) override;

 private:
  /// Run the smoothing recursion over `v`; returns final level/trend/season.
  struct State {
    double level = 0.0;
    double trend = 0.0;
    std::vector<double> season;
  };
  [[nodiscard]] State run(std::span<const double> v) const;

  int period_;
  double alpha_;
  double beta_;
  double gamma_;
};

/// AR(p) on the (optionally differenced) series, fit with ridge regression.
class ARForecaster final : public Forecaster {
 public:
  explicit ARForecaster(int p, int d = 0, double ridge_lambda = 1e-2)
      : p_(p), d_(d), lambda_(ridge_lambda) {}
  void fit(const TimeSeries& history) override;
  [[nodiscard]] std::vector<double> forecast(const TimeSeries& prefix,
                                             int horizon) const override;
  [[nodiscard]] std::string name() const override {
    return "ar(" + std::to_string(p_) + ",d=" + std::to_string(d_) + ")";
  }
  [[nodiscard]] std::uint32_t type_tag() const noexcept override;
  void save_state(serialize::Writer& w) const override;
  void load_state(serialize::Reader& r) override;

 private:
  int p_;
  int d_;
  double lambda_;
  ml::RidgeRegression model_;
};

/// Feature layout shared by GBDTForecaster training and inference.
struct LagFeatureConfig {
  std::vector<int> lags = {1, 2, 3, 6, 12, 24, 36, 72, 144, 1008};
  std::vector<int> rolling_windows = {6, 36, 144};
  bool calendar = true;  ///< hour, minute-of-day bucket, weekday, holiday

  [[nodiscard]] int max_lag() const;
  [[nodiscard]] std::size_t feature_count() const;
};

/// One-step-ahead GBDT on lag + rolling + calendar features; multi-step
/// forecasts are produced recursively (predictions feed back into lags).
class GBDTForecaster final : public Forecaster {
 public:
  explicit GBDTForecaster(LagFeatureConfig features = {},
                          ml::GBDTConfig gbdt = default_gbdt_config())
      : features_(std::move(features)), model_(gbdt) {}

  void fit(const TimeSeries& history) override;
  [[nodiscard]] std::vector<double> forecast(const TimeSeries& prefix,
                                             int horizon) const override;
  [[nodiscard]] std::string name() const override { return "gbdt"; }
  [[nodiscard]] std::uint32_t type_tag() const noexcept override;
  void save_state(serialize::Writer& w) const override;
  void load_state(serialize::Reader& r) override;

  [[nodiscard]] static ml::GBDTConfig default_gbdt_config();
  [[nodiscard]] const ml::GBDTRegressor& model() const noexcept { return model_; }

 private:
  /// Features for predicting the value at sample-time `t_pred`, given the
  /// (possibly partially predicted) value history `v` aligned to `series0`.
  void build_features(std::span<const double> v, std::size_t idx, UnixTime t_pred,
                      std::vector<double>& out) const;

  LagFeatureConfig features_;
  ml::GBDTRegressor model_;
};

/// Rolling-origin backtest: starting after `min_train` samples, every
/// `stride` samples forecast `horizon` steps ahead and record the terminal
/// prediction vs actual. Returns (actual, predicted) aligned vectors —
/// exactly what SMAPE comparison tables consume. The model must already be
/// fit; only const forecast() calls are issued, which the Forecaster
/// contract makes safe to run concurrently.
struct BacktestResult {
  std::vector<double> actual;
  std::vector<double> predicted;
};

[[nodiscard]] BacktestResult backtest(
    const Forecaster& model, const TimeSeries& series, std::size_t min_train,
    int horizon, std::size_t stride,
    common::ExecMode execution = common::ExecMode::kParallel);

/// Fit several forecasters to the same history concurrently on the shared
/// pool (deadlock-safe even though GBDTForecaster::fit itself parallelizes
/// — see common/thread_pool.h on parallel_run_tasks nesting). Each fit is
/// independent and a pure function of (model, history), so the result is
/// identical to fitting serially.
void fit_forecasters(std::span<Forecaster* const> models,
                     const TimeSeries& history);

}  // namespace helios::forecast
