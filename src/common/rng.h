// Deterministic pseudo-random number generation and samplers.
//
// All stochastic components of the library (trace synthesis, GBDT row
// subsampling, ...) draw from this engine so that every experiment is
// reproducible from a single seed across platforms. std::* distributions are
// implementation-defined, so the samplers here are hand-rolled.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace helios {

/// xoshiro256** by Blackman & Vigna, seeded via SplitMix64.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  /// Inline: next()/uniform()/bernoulli() are the per-row hot path of trace
  /// synthesis and GBDT subsampling — an out-of-line call per draw dominates
  /// the generator itself.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Derive an independent stream (for per-worker / per-cluster RNGs).
  [[nodiscard]] Rng split() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }
  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial.
  bool bernoulli(double p) noexcept { return uniform() < p; }
  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) noexcept;
  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;
  /// Exponential with given rate (mean = 1/rate).
  double exponential(double rate) noexcept;
  /// Poisson count with given mean (Knuth for small, normal approx for large).
  std::uint64_t poisson(double mean) noexcept;
  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept;

  /// Index sampled from unnormalised non-negative weights. Empty or all-zero
  /// weights return 0.
  std::size_t categorical(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Precomputed alias-free sampler for a fixed categorical distribution:
/// O(log n) per draw via a cumulative table. Suitable when the same
/// distribution is sampled millions of times (job-size mixes etc.).
class CategoricalSampler {
 public:
  CategoricalSampler() = default;
  explicit CategoricalSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cdf_.empty(); }
  /// Probability of category i (normalised).
  [[nodiscard]] double probability(std::size_t i) const noexcept;

 private:
  std::vector<double> cdf_;  // strictly increasing, back() == total weight
};

/// Zipf(s) distribution over ranks 1..n via precomputed CDF. Used for user
/// activity skew (a few users dominate submissions / resource usage).
class ZipfSampler {
 public:
  ZipfSampler() = default;
  ZipfSampler(std::size_t n, double s);

  /// Returns a 0-based rank in [0, n).
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace helios
