#include "common/interner.h"

namespace helios {

std::uint32_t StringInterner::intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

std::uint32_t StringInterner::find(std::string_view s) const noexcept {
  auto it = index_.find(s);
  return it == index_.end() ? kNotFound : it->second;
}

std::vector<std::uint32_t> StringInterner::merge_from(const StringInterner& other) {
  std::vector<std::uint32_t> remap;
  remap.reserve(other.size());
  for (const auto& s : other.strings()) remap.push_back(intern(s));
  return remap;
}

}  // namespace helios
