// Deterministic task-graph driver for multi-cluster scenario sweeps.
//
// ScenarioEngine::run expands a SweepGrid (or takes a prepared cell list) and
// executes it in two graph levels on the shared ThreadPool:
//
//   level 0 — trace materialization: the distinct TraceKeys behind the cells
//             become one task each; sweep::TraceStore guarantees every key is
//             generated exactly once and shared immutably (shared_ptr<const
//             Trace>) across all cells that replay it.
//   level 1 — cells: each cell runs ClusterSimulator::run over its shared
//             trace into a preassigned result slot. Cells fan out through
//             parallel_run_tasks and each cell's simulator shards per VC
//             through the same primitive, giving two-level (cell × VC)
//             sharding; parallel_run_tasks lets the caller drain the task
//             list itself, so the nesting cannot deadlock the pool.
//
// Determinism: common::ExecMode::kParallel and kSerial produce bit-identical
// SweepResults — cell slots are preassigned in expand() order, each cell's
// SimResult is independent of scheduling (the simulator's own parallel ≡
// serial contract), priority functions and fault plans are built serially in
// cell order before the fan-out. kSerial additionally threads kSerial into
// every cell's SimConfig, so a serial engine run is the literal
// one-cluster-at-a-time reference loop. tests/test_sweep.cpp pins cell ≡
// standalone-run bit-parity and engine parallel ≡ serial across the grid.
#pragma once

#include <functional>

#include "common/exec_mode.h"
#include "sweep/scenario.h"
#include "sweep/trace_store.h"

namespace helios::sweep {

/// Supplies the sim::PriorityFn for a kQssf or kEnergyQssf cell (e.g. a
/// trained
/// core::OnlinePriorityEvaluator's as_priority_fn()). Called serially in cell
/// order before the fan-out; the returned function is invoked concurrently
/// from VC shards and cells, so it must be thread-safe.
using PriorityProvider =
    std::function<sim::PriorityFn(const ScenarioSpec&, const trace::Trace&)>;

/// A deterministic stand-in predictor for grids that include kQssf without a
/// trained model: priority = duration × GPUs (the job's true GPU time, i.e.
/// a perfect oracle — useful as a QSSF upper bound and in parity tests).
[[nodiscard]] PriorityProvider oracle_gpu_time_provider();

struct EngineConfig {
  common::ExecMode execution = common::ExecMode::kParallel;
  /// Resolution of each cell's busy-nodes/GPUs series.
  std::int64_t series_step = 600;
  /// Required when the grid contains kQssf or kEnergyQssf cells (kEnergyQssf
  /// weights the provided GPU-time prediction by the job's per-GPU draw).
  PriorityProvider priority_provider;
};

class ScenarioEngine {
 public:
  explicit ScenarioEngine(TraceStore& store, EngineConfig config = {});

  [[nodiscard]] SweepResult run(const SweepGrid& grid) const;
  [[nodiscard]] SweepResult run(const std::vector<ScenarioSpec>& cells) const;

  /// The SimConfig a cell runs under, minus the fault-plan pointer (whose
  /// storage the engine owns during run()). Tests reproduce a cell standalone
  /// as ClusterSimulator(trace.cluster(), cell_config(...)).run(trace) with a
  /// make_fault_plan() plan attached when spec.fault.enabled().
  [[nodiscard]] sim::SimConfig cell_config(const ScenarioSpec& spec,
                                           const trace::Trace& t) const;

  /// The deterministic fault plan of a cell: FaultSpec knobs over the trace's
  /// simulation window (first GPU-job submit to last possible completion).
  /// Equal (spec, trace) pairs yield equal plans.
  [[nodiscard]] static sim::FaultPlan make_fault_plan(const FaultSpec& fault,
                                                      const trace::Trace& t);

  [[nodiscard]] TraceStore& store() const noexcept { return store_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

 private:
  TraceStore& store_;
  EngineConfig config_;
};

}  // namespace helios::sweep
