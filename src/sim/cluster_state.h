// Node-level cluster state with VC partitioning and consolidated placement.
//
// Models the allocation rules of §2.1/§4.2.2: every node belongs to exactly
// one VC; GPU jobs are gang-scheduled (all-or-nothing) and placed in the
// ConsolidateAllocate paradigm — as few nodes as possible, so a 16-GPU job
// on 8-GPU nodes needs two *completely free* nodes. Also tracks node power
// states for the Cluster Energy Saving service (sleeping nodes accept no
// work until woken; waking takes a boot delay).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/cluster_config.h"

namespace helios::sim {

enum class PowerState : std::uint8_t {
  kActive = 0,    ///< powered on, schedulable
  kSleeping = 1,  ///< DRS deep sleep: not schedulable, ~0 W
  kBooting = 2,   ///< waking up: not schedulable until boot completes
};

struct Node {
  int vc = -1;
  int total_gpus = 0;
  int free_gpus = 0;
  PowerState power = PowerState::kActive;
  /// When power == kBooting: the time the node becomes active.
  std::int64_t boot_ready = 0;

  [[nodiscard]] bool busy() const noexcept { return free_gpus < total_gpus; }
  [[nodiscard]] bool schedulable() const noexcept {
    return power == PowerState::kActive;
  }
};

/// GPUs taken from specific nodes; returned by try_allocate and passed back
/// to release.
struct Allocation {
  std::vector<std::pair<int, int>> node_gpus;  ///< (node index, gpus)

  [[nodiscard]] int total() const noexcept {
    int t = 0;
    for (auto [n, g] : node_gpus) t += g;
    return t;
  }
};

class ClusterState {
 public:
  explicit ClusterState(const trace::ClusterSpec& spec);

  /// Consolidated gang allocation of `gpus` within VC `vc`:
  ///  * gpus <= gpus_per_node: best-fit single node (least free GPUs that
  ///    still fit), so small jobs fragment as few nodes as possible;
  ///  * gpus > gpus_per_node: floor(gpus/gpn) completely free nodes plus a
  ///    best-fit node for the remainder.
  /// Returns nullopt when the VC cannot host the job right now.
  [[nodiscard]] std::optional<Allocation> try_allocate(int vc, int gpus);

  void release(const Allocation& a);

  /// Re-apply an allocation previously released (SRTF preemption rollback).
  /// The caller guarantees the GPUs are still free.
  void reclaim(const Allocation& a);

  /// -- capacity queries -------------------------------------------------
  [[nodiscard]] int vc_count() const noexcept { return static_cast<int>(vc_nodes_.size()); }
  [[nodiscard]] int node_count() const noexcept { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const Node& node(int i) const noexcept {
    return nodes_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::vector<int>& vc_node_indices(int vc) const noexcept {
    return vc_nodes_[static_cast<std::size_t>(vc)];
  }
  /// Free GPUs on schedulable nodes of a VC.
  [[nodiscard]] int free_gpus(int vc) const noexcept;
  /// Total GPUs on schedulable nodes of a VC.
  [[nodiscard]] int schedulable_gpus(int vc) const noexcept;
  /// Total GPUs of the VC regardless of power state.
  [[nodiscard]] int capacity_gpus(int vc) const noexcept;
  /// Largest job the VC could ever host when fully powered (capacity check).
  [[nodiscard]] bool can_ever_fit(int vc, int gpus) const noexcept;

  /// Cluster-wide counters.
  [[nodiscard]] int busy_nodes() const noexcept;
  [[nodiscard]] int busy_gpus() const noexcept;
  [[nodiscard]] int active_nodes() const noexcept;    ///< powered (incl. booting)
  [[nodiscard]] int sleeping_nodes() const noexcept;

  /// -- power control (used by the CES service) ---------------------------
  /// Put up to `count` idle active nodes of the cluster to sleep, in node
  /// order. Returns how many slept.
  int sleep_idle_nodes(int count);
  /// Same, restricted to one VC.
  int sleep_idle_nodes_in_vc(int vc, int count);
  /// Active nodes of `vc` with no allocations (candidates for DRS).
  [[nodiscard]] int idle_active_nodes_in_vc(int vc) const noexcept;
  /// Begin waking up to `count` sleeping nodes (any VC); they become
  /// schedulable at now + boot_delay. Returns how many started booting.
  int wake_nodes(int count, std::int64_t now, std::int64_t boot_delay);
  /// Same, but restricted to one VC.
  int wake_nodes_in_vc(int vc, int count, std::int64_t now, std::int64_t boot_delay);
  /// Nodes of `vc` currently booting.
  [[nodiscard]] int booting_nodes_in_vc(int vc) const noexcept;
  /// Nodes of `vc` currently asleep.
  [[nodiscard]] int sleeping_nodes_in_vc(int vc) const noexcept;
  /// Promote nodes whose boot completed at or before `now` to active.
  void finish_boots(std::int64_t now);
  /// Earliest pending boot-ready time, or nullopt.
  [[nodiscard]] std::optional<std::int64_t> next_boot_ready() const noexcept;

 private:
  void apply(const Allocation& a, int sign);

  std::vector<Node> nodes_;
  std::vector<std::vector<int>> vc_nodes_;
  int busy_nodes_ = 0;  // maintained incrementally: O(1) busy queries
  int busy_gpus_ = 0;
};

}  // namespace helios::sim
