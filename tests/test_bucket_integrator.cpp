// BucketIntegrator: the O(1) difference-array integrator must match a naive
// walk-every-bucket reference exactly, and accumulation of integer-valued
// inputs must be order-independent bit-for-bit (what the sharded simulator's
// per-VC segment replay relies on).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/bucket_integrator.h"

namespace helios::sim {
namespace {

struct Interval {
  UnixTime t0;
  UnixTime t1;
  double value;
};

/// Naive reference: walk every covered bucket (the pre-PR implementation).
std::vector<double> naive_means(UnixTime begin, UnixTime end, std::int64_t step,
                                const std::vector<Interval>& intervals) {
  std::vector<double> sums(static_cast<std::size_t>(
                               std::max<std::int64_t>(1, (end - begin + step - 1) / step)),
                           0.0);
  for (auto [t0, t1, value] : intervals) {
    if (value == 0.0 || t1 <= t0) continue;
    t0 = std::max(t0, begin);
    t1 = std::min<UnixTime>(t1, begin + static_cast<UnixTime>(sums.size()) * step);
    if (t1 <= t0) continue;
    auto b = static_cast<std::size_t>((t0 - begin) / step);
    const auto b_end = static_cast<std::size_t>((t1 - 1 - begin) / step);
    for (; b <= b_end && b < sums.size(); ++b) {
      const UnixTime lo = begin + static_cast<UnixTime>(b) * step;
      const UnixTime hi = lo + step;
      sums[b] += value * static_cast<double>(std::min(t1, hi) - std::max(t0, lo));
    }
  }
  for (double& v : sums) v /= static_cast<double>(step);
  return sums;
}

TEST(BucketIntegrator, MatchesNaiveReferenceExactly) {
  const UnixTime begin = 1000;
  const UnixTime end = 1000 + 600 * 50;
  const std::int64_t step = 600;
  Rng rng(42);
  std::vector<Interval> intervals;
  for (int i = 0; i < 500; ++i) {
    const auto t0 = static_cast<UnixTime>(
        900 + static_cast<std::int64_t>(rng.uniform_index(600 * 52)));
    const auto len = static_cast<std::int64_t>(rng.uniform_index(600 * 10));
    const auto value = static_cast<double>(rng.uniform_index(64));
    intervals.push_back({t0, t0 + len, value});
  }
  // Edge shapes: zero value, inverted, fully outside, bucket-aligned ends,
  // single-second, and window-spanning intervals.
  intervals.push_back({2000, 3000, 0.0});
  intervals.push_back({5000, 4000, 3.0});
  intervals.push_back({0, 999, 7.0});
  intervals.push_back({end, end + 5000, 7.0});
  intervals.push_back({1000, 1600, 2.0});
  intervals.push_back({1600, 2200, 2.0});
  intervals.push_back({1234, 1235, 5.0});
  intervals.push_back({0, end + 10000, 1.0});

  BucketIntegrator acc(begin, end, step);
  for (const auto& iv : intervals) acc.add(iv.t0, iv.t1, iv.value);
  const auto series = acc.mean_series();
  const auto expected = naive_means(begin, end, step, intervals);

  ASSERT_EQ(series.values.size(), expected.size());
  ASSERT_EQ(series.begin, begin);
  ASSERT_EQ(series.step, step);
  for (std::size_t b = 0; b < expected.size(); ++b) {
    // Integer-valued inputs: exact, not approximate.
    ASSERT_EQ(series.values[b], expected[b]) << "bucket " << b;
  }
}

TEST(BucketIntegrator, AddOrderDoesNotChangeASingleBit) {
  // The sharded simulator replays per-VC segment logs into one shared
  // integrator in VC order; serial mode replays the same segments in a
  // different interleaving. Integer-valued inputs make accumulation exactly
  // commutative, so both must agree bit-for-bit.
  const UnixTime begin = 0;
  const UnixTime end = 600 * 30;
  const std::int64_t step = 600;
  Rng rng(7);

  std::vector<Interval> intervals;
  for (int i = 0; i < 300; ++i) {
    const auto t0 = static_cast<UnixTime>(rng.uniform_index(600 * 30));
    const auto t1 = t0 + static_cast<std::int64_t>(rng.uniform_index(4000));
    const auto value = static_cast<double>(rng.uniform_index(100));
    intervals.push_back({t0, t1, value});
  }

  BucketIntegrator forward(begin, end, step);
  for (const auto& iv : intervals) forward.add(iv.t0, iv.t1, iv.value);
  BucketIntegrator backward(begin, end, step);
  for (auto it = intervals.rbegin(); it != intervals.rend(); ++it) {
    backward.add(it->t0, it->t1, it->value);
  }
  BucketIntegrator shuffled(begin, end, step);
  for (std::size_t i = 0; i < intervals.size(); i += 2) {
    shuffled.add(intervals[i].t0, intervals[i].t1, intervals[i].value);
  }
  for (std::size_t i = 1; i < intervals.size(); i += 2) {
    shuffled.add(intervals[i].t0, intervals[i].t1, intervals[i].value);
  }

  const auto want = forward.mean_series();
  const auto rev = backward.mean_series();
  const auto mix = shuffled.mean_series();
  ASSERT_EQ(rev.values.size(), want.values.size());
  ASSERT_EQ(mix.values.size(), want.values.size());
  for (std::size_t b = 0; b < want.values.size(); ++b) {
    ASSERT_EQ(rev.values[b], want.values[b]) << "bucket " << b;
    ASSERT_EQ(mix.values[b], want.values[b]) << "bucket " << b;
  }
}

TEST(BucketIntegrator, MinimumOneBucket) {
  BucketIntegrator acc(100, 100, 600);  // empty window still yields a bucket
  EXPECT_EQ(acc.bucket_count(), 1u);
  acc.add(100, 700, 4.0);
  EXPECT_EQ(acc.mean_series().values[0], 4.0);
}

}  // namespace
}  // namespace helios::sim
