// Trace-ingestion microbenchmark: serial Trace::load_csv vs the parallel
// loader on a synthetic multi-million-row trace CSV held in memory (so disk
// speed is out of the picture and only parse + intern + merge is measured).
//
// Knobs: HELIOS_INGEST_ROWS (default 1'000'000), HELIOS_INGEST_REPS
// (default 3; best-of is reported), HELIOS_THREADS (default: hardware).
//
// The acceptance bar for the pipeline is >= 2x parallel speedup on >= 4
// cores with serial and parallel loads producing identical Trace contents;
// the identity check runs unconditionally.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>

#include "common/env.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "trace/parallel_loader.h"
#include "trace/trace.h"

namespace {

using namespace helios;

trace::Trace make_synthetic(std::size_t rows, std::uint64_t seed) {
  // Field cardinalities loosely follow the Helios traces: hundreds of users,
  // tens of VCs, thousands of distinct job names.
  Rng rng(seed);
  trace::Trace t;
  std::string user, vc, name;
  for (std::size_t i = 0; i < rows; ++i) {
    user = "u" + std::to_string(rng.uniform_int(0, 999));
    vc = "vc" + std::to_string(rng.uniform_int(0, 29));
    name = "job_" + std::to_string(rng.uniform_int(0, 4999)) + "_v" +
           std::to_string(rng.uniform_int(0, 7));
    auto& j = t.add(static_cast<UnixTime>(1'585'699'200 + i / 2),
                    static_cast<std::int32_t>(rng.uniform_int(1, 86'400)),
                    static_cast<std::int32_t>(rng.uniform_int(0, 8)),
                    static_cast<std::int32_t>(rng.uniform_int(1, 48)), user, vc,
                    name, static_cast<trace::JobState>(rng.uniform_int(0, 2)));
    j.start_time = j.submit_time + rng.uniform_int(0, 3'600);
  }
  return t;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const auto rows =
      static_cast<std::size_t>(env_int("HELIOS_INGEST_ROWS", 1'000'000));
  const auto reps = static_cast<int>(env_int("HELIOS_INGEST_REPS", 3));
  const auto threads =
      static_cast<std::size_t>(env_int("HELIOS_THREADS", 0));

  std::printf("== microbench_ingest: %zu rows, best of %d reps ==\n", rows,
              reps);
  std::printf("hardware threads: %zu (pool: %zu)\n",
              static_cast<std::size_t>(std::thread::hardware_concurrency()),
              global_pool().thread_count());

  const trace::Trace original = make_synthetic(rows, 42);
  std::ostringstream os;
  original.save_csv(os);
  const std::string csv = std::move(os).str();
  std::printf("csv size: %.1f MB\n", static_cast<double>(csv.size()) / 1e6);

  trace::ClusterSpec spec;
  spec.name = "synthetic";

  double serial_best = 1e300;
  trace::Trace serial;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    std::istringstream is(csv);
    serial = trace::Trace::load_csv(is, spec);
    serial_best = std::min(serial_best, seconds_since(t0));
  }

  trace::LoadOptions opts;
  opts.threads = threads;
  double parallel_best = 1e300;
  trace::Trace parallel;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    parallel = trace::ParallelLoader(opts).load(csv, spec);
    parallel_best = std::min(parallel_best, seconds_since(t0));
  }

  const bool identical =
      serial.contents_equal(parallel) && serial.contents_equal(original);
  const double speedup = serial_best / parallel_best;
  const double rows_per_s = static_cast<double>(rows) / parallel_best;
  std::printf("serial   : %8.3f s  (%.2f M rows/s)\n", serial_best,
              static_cast<double>(rows) / serial_best / 1e6);
  std::printf("parallel : %8.3f s  (%.2f M rows/s)\n", parallel_best,
              rows_per_s / 1e6);
  std::printf("speedup  : %8.2fx\n", speedup);
  std::printf("identical contents: %s\n", identical ? "yes" : "NO (BUG)");
  if (!identical) return 1;
  return 0;
}
