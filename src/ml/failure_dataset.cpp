#include "ml/failure_dataset.h"

#include <algorithm>

namespace helios::ml {

namespace {

constexpr std::int64_t kDay = 24 * 3600;
constexpr std::int64_t kWeek = 7 * kDay;

/// Count of values in [t0, t1) within an ascending vector.
int count_in(const std::vector<std::int64_t>& v, std::int64_t t0,
             std::int64_t t1) {
  return static_cast<int>(std::lower_bound(v.begin(), v.end(), t1) -
                          std::lower_bound(v.begin(), v.end(), t0));
}

}  // namespace

NodeFailureHistory::NodeFailureHistory(const trace::ClusterSpec& spec,
                                       const sim::FaultPlan& plan)
    : begin_(plan.window_begin()), end_(plan.window_end()) {
  vc_base_.reserve(spec.vcs.size());
  int base = 0;
  for (const auto& vc : spec.vcs) {
    vc_base_.push_back(base);
    vc_gpn_.push_back(static_cast<double>(vc.gpus_per_node));
    vc_nodes_.push_back(static_cast<double>(vc.nodes));
    base += vc.nodes;
  }
  logs_.resize(static_cast<std::size_t>(base));

  for (std::size_t vi = 0; vi < spec.vcs.size(); ++vi) {
    const int n_nodes = spec.vcs[vi].nodes;
    // Per-node replay of the VC's merged stream. Events within one node are
    // time-ordered (the per-VC sort is stable w.r.t. each node's sequence),
    // and a node's stream strictly alternates failure/recovery.
    for (const sim::NodeFaultEvent& e :
         plan.vc_events(static_cast<int>(vi))) {
      if (e.node < 0 || e.node >= n_nodes) continue;
      NodeLog& log =
          logs_[static_cast<std::size_t>(vc_base_[vi] + e.node)];
      if (e.recovery) {
        if (!log.down.empty() && log.down.back().second == end_) {
          log.down.back().second = e.time;
        }
      } else {
        log.failures.push_back(e.time);
        // Recovery pending: clamp to the window end until (unless) it shows.
        log.down.emplace_back(e.time, end_);
      }
    }
  }
}

std::int64_t NodeFailureHistory::downtime_in(const NodeLog& log,
                                             std::int64_t t0, std::int64_t t1) {
  std::int64_t total = 0;
  // First interval that could overlap: the one before the first starting at
  // or after t0 may still extend into the query range.
  auto it = std::lower_bound(
      log.down.begin(), log.down.end(), t0,
      [](const auto& iv, std::int64_t t) { return iv.first < t; });
  if (it != log.down.begin()) --it;
  for (; it != log.down.end() && it->first < t1; ++it) {
    const std::int64_t lo = std::max(it->first, t0);
    const std::int64_t hi = std::min(it->second, t1);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

int NodeFailureHistory::failures_in(int vc, int node, std::int64_t t0,
                                    std::int64_t t1) const {
  return count_in(log_of(vc, node).failures, t0, t1);
}

std::array<double, kFailureFeatureCount> NodeFailureHistory::features(
    int vc, int node, std::int64_t t) const {
  const NodeLog& log = log_of(vc, node);
  const auto& f = log.failures;
  const std::size_t vcs = static_cast<std::size_t>(vc);

  const auto before =
      static_cast<std::size_t>(std::lower_bound(f.begin(), f.end(), t) -
                               f.begin());
  const std::int64_t span = std::max<std::int64_t>(1, t - begin_);
  const std::int64_t since_last =
      before > 0 ? t - f[before - 1] : span;

  std::array<double, kFailureFeatureCount> out{};
  out[0] = static_cast<double>(before);
  out[1] = static_cast<double>(count_in(f, t - kWeek, t));
  out[2] = static_cast<double>(count_in(f, t - kDay, t));
  out[3] = static_cast<double>(since_last);
  out[4] = static_cast<double>(downtime_in(log, begin_, t)) /
           static_cast<double>(span);
  out[5] = static_cast<double>(downtime_in(log, t - kWeek, t));
  out[6] = vc_gpn_[vcs];
  out[7] = vc_nodes_[vcs];
  out[8] = static_cast<double>((t / 3600) % 24);
  out[9] = static_cast<double>((t / kDay) % 7);
  return out;
}

Dataset build_failure_dataset(const trace::ClusterSpec& spec,
                              const sim::FaultPlan& plan,
                              const FailureDatasetConfig& config) {
  Dataset data(kFailureFeatureCount);
  const NodeFailureHistory history(spec, plan);
  const std::int64_t step = std::max<std::int64_t>(1, config.sample_step);
  const std::int64_t first = plan.window_begin() + config.warmup;
  const std::int64_t last = plan.window_end() - config.horizon;
  if (first > last) return data;

  // Rows per node: sample times where the full label window fits.
  const auto n_samples =
      static_cast<std::size_t>((last - first) / step) + 1;
  std::size_t n_nodes = 0;
  for (const auto& vc : spec.vcs) n_nodes += static_cast<std::size_t>(vc.nodes);
  data.reserve(n_samples * n_nodes);

  for (std::size_t vi = 0; vi < spec.vcs.size(); ++vi) {
    const int vc = static_cast<int>(vi);
    for (int node = 0; node < spec.vcs[vi].nodes; ++node) {
      for (std::int64_t t = first; t <= last; t += step) {
        const auto row = history.features(vc, node, t);
        const double label =
            history.failures_in(vc, node, t, t + config.horizon) > 0 ? 1.0
                                                                     : 0.0;
        data.add_row(row, label);
      }
    }
  }
  return data;
}

}  // namespace helios::ml
