// Synthetic workload generator: the stand-in for the (unreleasable-at-build-
// time) Helios and Philly traces.
//
// The generator produces a Trace whose marginals match the paper's published
// statistics (see DESIGN.md §4 for the calibration targets) *and* whose
// correlation structure carries the signal the paper's methods exploit:
//
//  * users submit recurring, named job templates whose durations are
//    lognormal around a per-template median -> job duration is predictable
//    from (user, job name, GPU demand), which QSSF's rolling + GBDT
//    estimators rely on;
//  * arrivals follow a diurnal curve with night/lunch/dinner dips, weekend
//    attenuation, and per-month volatility for single-GPU jobs -> cluster
//    load is predictable from calendar features, which CES relies on;
//  * per-VC job-size mixes and offered loads differ -> the imbalanced-VC
//    phenomena of Figure 4 (busy large-job VCs queue, small-job VCs idle).
//
// Determinism: everything derives from GeneratorConfig::seed; equal configs
// produce byte-identical traces.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trace/trace.h"

namespace helios::trace {

/// Hour-of-day submission weights plus weekend attenuation (Figure 2b shape).
struct DiurnalProfile {
  std::array<double, 24> hourly{};
  double weekend_factor = 0.8;

  /// The shape observed in the paper: minimum at 03-06h, dips at 12h and 18h,
  /// broad daytime plateau.
  static DiurnalProfile standard() noexcept;
};

/// Per-cluster workload knobs. `helios_knobs` / `philly_knobs` return the
/// calibrated values; tests and ablations may perturb them.
struct ClusterWorkloadKnobs {
  /// Fraction of jobs that request GPUs.
  double gpu_job_fraction = 0.5;
  /// Capacity-weighted mean of per-VC offered-load targets.
  double target_utilization = 0.8;
  /// Fraction of CPU jobs that are ~1s state queries (Earth: 0.9).
  double cpu_instant_fraction = 0.45;
  /// Scales all GPU-job duration medians (Earth runs shorter jobs).
  double duration_median_scale = 1.0;
  /// Log-std-dev of per-template duration medians. Controls how heavy the
  /// duration tail is; the paper's traces have mean/median ratios of 30-300x
  /// (short debug jobs dominate counts, multi-day jobs dominate GPU time).
  double duration_spread = 2.2;
  /// Extra probability mass moved onto 1-GPU jobs (Earth ~0.9 single).
  double single_gpu_bias = 0.0;
  /// Number of distinct users submitting to the cluster (paper: 200-400).
  int n_users = 300;
  /// Std-dev of the per-month lognormal swing applied to single-GPU job
  /// volume (multi-GPU volume stays stable; Figure 3).
  double month_volatility = 0.45;
  /// Whether failed jobs die quickly (user errors; Helios) or keep their
  /// full duration (retry-until-limit semantics; Philly).
  bool failed_fast = true;
  /// Base probability that a 1-GPU job completes (degrades with size).
  double base_completion = 0.68;
  /// Zipf exponent of user activity (GPU jobs).
  double user_zipf_s = 1.05;
  /// Probability that a non-debug submission is a burst of 2-5 near-
  /// simultaneous configurations of the same template (hyper-parameter
  /// exploration). PAI's recurring short jobs resubmit far more often.
  double burst_probability = 0.35;
};

[[nodiscard]] ClusterWorkloadKnobs helios_knobs(const std::string& cluster_name);
[[nodiscard]] ClusterWorkloadKnobs philly_knobs();

/// Workload family calibrated to the Alibaba-PAI characterization (Wang et
/// al., arXiv:1910.05930): short recurring jobs (minutes-scale medians, high
/// resubmission/burst rate), a much heavier CPU component (most jobs request
/// no GPU, and CPU jobs are real preprocessing/training work rather than
/// state queries), and a size mix concentrated on 1-2 GPUs.
[[nodiscard]] ClusterWorkloadKnobs pai_knobs();

struct GeneratorConfig {
  ClusterSpec cluster;
  ClusterWorkloadKnobs knobs;
  /// Generation window. `begin` precedes the published trace window by a
  /// warm-up period so the cluster is in steady state at `window_begin`
  /// (a real trace starts with long jobs already running; an empty cluster
  /// would otherwise show a multi-week utilization ramp).
  UnixTime begin = 0;
  UnixTime end = 0;
  /// Start of the published window; job counts are calibrated per day of
  /// [window_begin, end) and extended backwards over the warm-up.
  UnixTime window_begin = 0;
  /// Multiplies job counts (not duration/size distributions); benches use
  /// HELIOS_SCALE to trade fidelity of absolute counts for runtime.
  double scale = 1.0;
  std::uint64_t seed = 42;
  DiurnalProfile diurnal = DiurnalProfile::standard();

  /// Calibrated configs for the paper's five traces.
  static GeneratorConfig helios(const ClusterSpec& cluster, std::uint64_t seed,
                                double scale);
  static GeneratorConfig philly(std::uint64_t seed, double scale);
  /// The Alibaba-PAI workload family on trace::pai_cluster(), generated over
  /// the Helios window so PAI cells line up in time with Helios cells in a
  /// scenario sweep.
  static GeneratorConfig pai(std::uint64_t seed, double scale);
};

class SyntheticTraceGenerator {
 public:
  explicit SyntheticTraceGenerator(GeneratorConfig config);

  /// Generate the full trace (GPU + CPU jobs), sorted by submission time.
  /// start_time defaults to submit_time; operate the trace under src/sim to
  /// obtain a realistic schedule.
  [[nodiscard]] Trace generate();

  [[nodiscard]] const GeneratorConfig& config() const noexcept { return config_; }

 private:
  GeneratorConfig config_;
};

/// All four Helios cluster traces (seed derives per-cluster sub-seeds).
[[nodiscard]] std::vector<Trace> generate_helios(std::uint64_t seed, double scale);

/// The Philly comparison trace.
[[nodiscard]] Trace generate_philly(std::uint64_t seed, double scale);

/// The Alibaba-PAI comparison trace (pai_knobs on pai_cluster).
[[nodiscard]] Trace generate_pai(std::uint64_t seed, double scale);

}  // namespace helios::trace
