#include "trace/job.h"

namespace helios::trace {

std::string_view to_string(JobState s) noexcept {
  switch (s) {
    case JobState::kCompleted:
      return "completed";
    case JobState::kCanceled:
      return "canceled";
    case JobState::kFailed:
      return "failed";
  }
  return "failed";
}

JobState job_state_from_string(std::string_view s) noexcept {
  if (s == "completed") return JobState::kCompleted;
  if (s == "canceled") return JobState::kCanceled;
  return JobState::kFailed;
}

}  // namespace helios::trace
