#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>

#include "trace/parallel_loader.h"
#include "trace/trace.h"

namespace helios::trace {
namespace {

/// A trace whose string fields exercise the CSV quoting paths: embedded
/// commas, embedded quotes, and repeats that cross chunk boundaries.
Trace make_trace(std::size_t jobs) {
  ClusterSpec spec;
  spec.name = "T";
  spec.nodes = 4;
  Trace t(spec);
  const char* names[] = {"train_resnet", "tune,lr=0.1", "say\"what\"",
                         "extract", "plain"};
  const char* users[] = {"alice", "bob", "carol,jr", "dave"};
  const char* vcs[] = {"vcA", "vcB", "vcC"};
  for (std::size_t i = 0; i < jobs; ++i) {
    auto& j = t.add(static_cast<UnixTime>(1000 + (i * 37) % 5000),
                    static_cast<std::int32_t>(1 + i % 900),
                    static_cast<std::int32_t>(i % 9),
                    static_cast<std::int32_t>(1 + i % 48), users[i % 4],
                    vcs[i % 3], names[i % 5],
                    static_cast<JobState>(i % 3));
    j.start_time = j.submit_time + static_cast<std::int64_t>(i % 100);
  }
  return t;
}

std::string to_csv(const Trace& t) {
  std::ostringstream os;
  t.save_csv(os);
  return os.str();
}

std::string with_crlf(const std::string& lf) {
  std::string out;
  out.reserve(lf.size() + lf.size() / 16);
  for (char c : lf) {
    if (c == '\n') out += '\r';
    out += c;
  }
  return out;
}

void expect_identical(const Trace& a, const Trace& b) {
  EXPECT_TRUE(a.contents_equal(b));
  EXPECT_EQ(to_csv(a), to_csv(b));  // byte-identical round trip
}

// ---- chunk splitting -------------------------------------------------------

void check_chunks_cover_and_align(
    std::string_view data,
    const std::vector<std::pair<std::size_t, std::size_t>>& chunks) {
  std::size_t expected_lo = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expected_lo);  // contiguous, no gaps or overlap
    EXPECT_LT(lo, hi);
    // Every chunk ends just past a '\n' or at end of input.
    if (hi < data.size()) EXPECT_EQ(data[hi - 1], '\n');
    expected_lo = hi;
  }
  EXPECT_EQ(expected_lo, data.size());  // full coverage
}

TEST(SplitChunks, LineAlignedAndContiguous) {
  std::string data;
  for (int i = 0; i < 100; ++i) data += "field1,field2,field3\n";
  const auto chunks = ParallelLoader::split_chunks(data, 8, 1);
  EXPECT_GT(chunks.size(), 1u);
  EXPECT_LE(chunks.size(), 8u);
  check_chunks_cover_and_align(data, chunks);
}

TEST(SplitChunks, NoTrailingNewline) {
  std::string data;
  for (int i = 0; i < 50; ++i) data += "a,b\n";
  data += "last,line";  // final line unterminated
  const auto chunks = ParallelLoader::split_chunks(data, 4, 1);
  check_chunks_cover_and_align(data, chunks);
  EXPECT_EQ(chunks.back().second, data.size());
}

TEST(SplitChunks, CrlfLineEndings) {
  std::string data;
  for (int i = 0; i < 64; ++i) data += "x,y,z\r\n";
  const auto chunks = ParallelLoader::split_chunks(data, 8, 1);
  EXPECT_GT(chunks.size(), 1u);
  check_chunks_cover_and_align(data, chunks);
  // CRLF boundaries still split past the '\n', never between '\r' and '\n'.
  for (const auto& [lo, hi] : chunks) {
    if (hi < data.size()) EXPECT_EQ(data.substr(hi - 2, 2), "\r\n");
  }
}

TEST(SplitChunks, QuotedFieldsDoNotConfuseByteSplitting) {
  // Quoted commas/quotes are irrelevant to splitting (the format has no
  // embedded newlines), but boundaries must still land on line ends.
  std::string data;
  for (int i = 0; i < 40; ++i) data += "\"a,b\",\"c\"\"d\",plain\n";
  const auto chunks = ParallelLoader::split_chunks(data, 8, 1);
  check_chunks_cover_and_align(data, chunks);
}

TEST(SplitChunks, SingleLineYieldsOneChunk) {
  const std::string data = "one single line with no newline";
  const auto chunks = ParallelLoader::split_chunks(data, 8, 1);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, data.size()}));
}

TEST(SplitChunks, MinChunkBytesFloorsParallelism) {
  std::string data;
  for (int i = 0; i < 100; ++i) data += "a,b,c\n";
  const auto chunks =
      ParallelLoader::split_chunks(data, 8, /*min_chunk_bytes=*/1 << 20);
  EXPECT_EQ(chunks.size(), 1u);  // input far below the floor -> serial
}

TEST(SplitChunks, EmptyInput) {
  EXPECT_TRUE(ParallelLoader::split_chunks("", 8, 1).empty());
}

// ---- serial/parallel equivalence -------------------------------------------

Trace serial_load(const std::string& csv) {
  std::istringstream is(csv);
  return Trace::load_csv(is, ClusterSpec{});
}

Trace parallel_load(const std::string& csv, std::size_t threads) {
  LoadOptions opts;
  opts.threads = threads;
  opts.min_chunk_bytes = 1;  // force real chunking even on small inputs
  return ParallelLoader(opts).load(csv, ClusterSpec{});
}

TEST(ParallelLoader, MatchesSerialAcrossThreadCounts) {
  const std::string csv = to_csv(make_trace(1237));
  const Trace serial = serial_load(csv);
  ASSERT_EQ(serial.size(), 1237u);
  for (std::size_t threads : {1u, 2u, 8u}) {
    const Trace parallel = parallel_load(csv, threads);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelLoader, CrlfInputMatchesLfInput) {
  const std::string lf = to_csv(make_trace(301));
  const std::string crlf = with_crlf(lf);
  const Trace from_lf = serial_load(lf);
  for (std::size_t threads : {1u, 2u, 8u}) {
    expect_identical(from_lf, parallel_load(crlf, threads));
  }
}

TEST(ParallelLoader, NoTrailingNewline) {
  std::string csv = to_csv(make_trace(97));
  ASSERT_EQ(csv.back(), '\n');
  csv.pop_back();
  const Trace serial = serial_load(csv);
  ASSERT_EQ(serial.size(), 97u);  // last row survives without its newline
  for (std::size_t threads : {1u, 2u, 8u}) {
    expect_identical(serial, parallel_load(csv, threads));
  }
}

TEST(ParallelLoader, BlankLinesAreSkipped) {
  const Trace base = make_trace(41);
  const std::string csv = to_csv(base);
  // Intersperse LF and CRLF blank lines between rows.
  std::string noisy;
  std::size_t line = 0;
  for (char c : csv) {
    noisy += c;
    if (c == '\n') {
      if (line % 3 == 0) noisy += "\n";
      if (line % 5 == 0) noisy += "\r\n";
      ++line;
    }
  }
  for (std::size_t threads : {1u, 2u, 8u}) {
    const Trace parallel = parallel_load(noisy, threads);
    EXPECT_EQ(parallel.size(), base.size());
    expect_identical(serial_load(csv), parallel);
  }
}

TEST(ParallelLoader, QuotedFieldsSurviveChunking) {
  // Every row carries quoted commas and escaped quotes; with
  // min_chunk_bytes=1 and 8 threads, many rows sit at chunk boundaries.
  const std::string csv = to_csv(make_trace(500));
  const Trace serial = serial_load(csv);
  const Trace parallel = parallel_load(csv, 8);
  expect_identical(serial, parallel);
  // Spot-check a quoted name actually round-tripped.
  bool saw_comma_name = false;
  for (const auto& j : parallel.jobs()) {
    if (parallel.job_name(j) == "tune,lr=0.1") saw_comma_name = true;
  }
  EXPECT_TRUE(saw_comma_name);
}

TEST(ParallelLoader, SortOptionMatchesSerialSort) {
  const std::string csv = to_csv(make_trace(512));
  Trace serial = serial_load(csv);
  serial.sort_by_submit_time();
  LoadOptions opts;
  opts.threads = 8;
  opts.min_chunk_bytes = 1;
  opts.sort_by_submit_time = true;
  const Trace parallel = ParallelLoader(opts).load(csv, ClusterSpec{});
  expect_identical(serial, parallel);
}

TEST(ParallelLoader, StreamAndStringAgree) {
  const std::string csv = to_csv(make_trace(64));
  std::istringstream is(csv);
  LoadOptions opts;
  opts.threads = 2;
  opts.min_chunk_bytes = 1;
  const ParallelLoader loader(opts);
  expect_identical(loader.load(is, ClusterSpec{}),
                   loader.load(csv, ClusterSpec{}));
}

TEST(ParallelLoader, HeaderOnlyInputIsEmpty) {
  const std::string csv =
      "job_id,submit_time,start_time,duration,num_gpus,num_cpus,user,vc,name,state\n";
  EXPECT_TRUE(ParallelLoader().load(csv, ClusterSpec{}).empty());
  EXPECT_TRUE(ParallelLoader().load(std::string_view{}, ClusterSpec{}).empty());
}

TEST(ParallelLoader, MalformedRowThrowsFromWorkerThreads) {
  std::string csv = to_csv(make_trace(200));
  csv += "not,a,valid,row\n";
  LoadOptions opts;
  opts.threads = 8;
  opts.min_chunk_bytes = 1;
  EXPECT_THROW(ParallelLoader(opts).load(csv, ClusterSpec{}),
               std::runtime_error);
}

TEST(ParallelLoader, MissingFileThrows) {
  EXPECT_THROW(ParallelLoader().load_file("/nonexistent/trace.csv",
                                          ClusterSpec{}),
               std::runtime_error);
}

// ---- csv edge cases the loader leans on ------------------------------------

TEST(CsvEdgeCases, EmptyFinalFieldIsPreserved) {
  Trace t;
  t.add(100, 5, 1, 4, "alice", "vcA", /*name=*/"", JobState::kCompleted);
  const std::string csv = to_csv(t);
  for (std::size_t threads : {1u, 2u}) {
    const Trace back = parallel_load(csv, threads);
    ASSERT_EQ(back.size(), 1u);
    // `name` is the 9th of 10 fields; also check a truly-final empty field
    // via the serial reference.
    EXPECT_EQ(back.job_name(back.jobs()[0]), "");
    expect_identical(serial_load(csv), back);
  }
}

TEST(CsvEdgeCases, WriterEscapedQuotesRoundTrip) {
  Trace t;
  t.add(100, 5, 1, 4, "ali\"ce", "vcA", "nam\"e", JobState::kCompleted);
  const std::string csv = to_csv(t);
  const Trace serial = serial_load(csv);
  ASSERT_EQ(serial.size(), 1u);
  EXPECT_EQ(serial.user_name(serial.jobs()[0]), "ali\"ce");
  EXPECT_EQ(serial.job_name(serial.jobs()[0]), "nam\"e");
  expect_identical(serial, parallel_load(csv, 2));
}

TEST(CsvEdgeCases, StrayQuoteMidFieldDoesNotSwallowDelimiters) {
  // Hand-written CSV (no writer would produce this): an unescaped quote in
  // the middle of an unquoted field is literal text per RFC 4180 and must
  // not put the parser into quoted mode, which would eat the delimiters.
  const std::string csv =
      "job_id,submit_time,start_time,duration,num_gpus,num_cpus,user,vc,name,state\n"
      "0,100,100,5,1,4,ali\"ce,vcA,nam\"e,completed\n";
  const Trace serial = serial_load(csv);
  ASSERT_EQ(serial.size(), 1u);
  EXPECT_EQ(serial.user_name(serial.jobs()[0]), "ali\"ce");
  EXPECT_EQ(serial.job_name(serial.jobs()[0]), "nam\"e");
  expect_identical(serial, parallel_load(csv, 2));
}

}  // namespace
}  // namespace helios::trace
