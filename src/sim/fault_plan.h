// Deterministic node-failure/recovery schedules for the simulator.
//
// The paper's §3.3 final-status breakdown shows a large fraction of Helios
// GPU jobs end failed or killed, and "Prediction of GPU Failures Under Deep
// Learning Workloads" (Liu et al.) attributes much of that to unhealthy
// nodes failing repeatedly. A FaultPlan models that: per node, failures
// arrive as a Poisson process (exponential inter-arrival, per-node MTBF) and
// each failure takes the node down for an exponential repair time. A
// configurable fraction of nodes is "flaky" — their failure rate is
// multiplied — which concentrates failures on few nodes exactly as observed,
// and is the signal the failure predictor (core/failure_predictor.h) learns.
//
// Determinism: every node draws from its own RNG substream derived from
// (seed, vc, node), so the plan is a pure function of (spec, config, window)
// — independent of generation order, sharding, or thread count. Events are
// grouped per VC and time-sorted, matching the VC-sharded simulator: a shard
// consumes only its own VC's stream, so common::ExecMode::kParallel and kSerial
// replay identical event sequences.
//
// Failures whose repair would complete after the plan window never emit a
// recovery event: the node stays down past the horizon (dead hardware), the
// common source of jobs still queued when the simulation ends.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/cluster_config.h"

namespace helios::serialize {
class Reader;
class Writer;
}  // namespace helios::serialize

namespace helios::sim {

/// What happens to the work of a job killed by a node failure when the
/// simulator requeues it.
enum class FaultRestart {
  kRestart,  ///< lose all progress: the job runs its full duration again
  kResume,   ///< checkpoint semantics: only the remaining work is redone
};

struct FaultPlanConfig {
  /// Mean time between failures of a healthy node, in days.
  double mtbf_days = 60.0;
  /// Fraction of nodes whose failure rate is multiplied by flaky_multiplier.
  double flaky_fraction = 0.0;
  double flaky_multiplier = 8.0;
  /// Repair time: min_downtime + Exp(mean_downtime - min_downtime) seconds.
  std::int64_t mean_downtime = 4 * 3600;
  std::int64_t min_downtime = 300;
  std::uint64_t seed = 1;
};

/// One scheduled event. `node` is the VC-local node index (0-based position
/// within the VC), so a per-VC shard needs no global renumbering.
struct NodeFaultEvent {
  std::int64_t time = 0;
  std::int32_t node = 0;
  bool recovery = false;  ///< false = node fails, true = node returns

  [[nodiscard]] friend bool operator==(const NodeFaultEvent&,
                                       const NodeFaultEvent&) = default;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Generate the schedule for every node of `spec` over [begin, end).
  [[nodiscard]] static FaultPlan generate(const trace::ClusterSpec& spec,
                                          const FaultPlanConfig& config,
                                          UnixTime begin, UnixTime end);

  /// Build a plan from explicit per-VC event lists — replayed maintenance
  /// logs or hand-built scenarios. Events are sorted into canonical order
  /// (time, recoveries first, node); out-of-range VC lists are dropped and
  /// flaky flags default to false.
  [[nodiscard]] static FaultPlan from_events(
      const trace::ClusterSpec& spec, UnixTime begin, UnixTime end,
      std::vector<std::vector<NodeFaultEvent>> events);

  [[nodiscard]] bool empty() const noexcept {
    return failure_count_ == 0;
  }
  [[nodiscard]] int vc_count() const noexcept {
    return static_cast<int>(events_.size());
  }
  /// Time-sorted events of one VC (recoveries before failures at equal
  /// times; node index breaks remaining ties).
  [[nodiscard]] std::span<const NodeFaultEvent> vc_events(int vc) const noexcept {
    if (vc < 0 || vc >= vc_count()) return {};
    return events_[static_cast<std::size_t>(vc)];
  }
  [[nodiscard]] std::size_t failure_count() const noexcept {
    return failure_count_;
  }
  /// Whether (vc, node) drew the elevated failure rate.
  [[nodiscard]] bool is_flaky(int vc, int node) const noexcept;
  [[nodiscard]] const FaultPlanConfig& config() const noexcept { return config_; }
  [[nodiscard]] UnixTime window_begin() const noexcept { return begin_; }
  [[nodiscard]] UnixTime window_end() const noexcept { return end_; }

  /// Keep only events in [t0, t1) — e.g. the observed history a failure
  /// predictor may train on. Window narrows to the intersection.
  [[nodiscard]] FaultPlan clipped(UnixTime t0, UnixTime t1) const;

  /// Persist / restore ("FPLN" section, docs/FORMATS.md). load() validates
  /// per-VC time ordering and node ranges and throws serialize::Error on
  /// malformed input; a round-tripped plan compares equal.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

  [[nodiscard]] friend bool operator==(const FaultPlan& a, const FaultPlan& b) {
    return a.begin_ == b.begin_ && a.end_ == b.end_ &&
           a.events_ == b.events_ && a.flaky_ == b.flaky_;
  }

 private:
  FaultPlanConfig config_;
  UnixTime begin_ = 0;
  UnixTime end_ = 0;
  std::vector<std::vector<NodeFaultEvent>> events_;  ///< per VC, time-sorted
  std::vector<std::vector<char>> flaky_;             ///< per VC, per node
  std::size_t failure_count_ = 0;
};

}  // namespace helios::sim
