#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "forecast/models.h"
#include "forecast/series.h"
#include "stats/metrics.h"

namespace helios::forecast {
namespace {

TimeSeries sinusoid_series(std::size_t n, double noise, std::uint64_t seed,
                           int period = 144) {
  Rng rng(seed);
  TimeSeries s;
  s.begin = from_civil(2020, 4, 1);
  s.step = 600;
  s.values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase =
        2.0 * std::numbers::pi * static_cast<double>(i % period) / period;
    s.values.push_back(100.0 + 25.0 * std::sin(phase) + rng.normal(0.0, noise));
  }
  return s;
}

TEST(Series, SliceAndIndexing) {
  TimeSeries s;
  s.begin = 1000;
  s.step = 10;
  s.values = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(s.time_at(2), 1020);
  EXPECT_EQ(s.end(), 1050);
  EXPECT_EQ(s.index_of(1025), 2u);
  EXPECT_EQ(s.index_of(0), 0u);
  const auto sub = s.slice(1, 4);
  EXPECT_EQ(sub.begin, 1010);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.values[0], 2.0);
  const auto win = s.between(1015, 1035);
  EXPECT_EQ(win.size(), 3u);
}

TEST(Series, RollingMean) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto m = rolling_mean(v, 3);
  ASSERT_EQ(m.size(), 5u);
  EXPECT_DOUBLE_EQ(m[0], 1.0);
  EXPECT_DOUBLE_EQ(m[1], 1.5);
  EXPECT_DOUBLE_EQ(m[2], 2.0);
  EXPECT_DOUBLE_EQ(m[4], 4.0);
}

TEST(Series, RollingStd) {
  const std::vector<double> v = {5.0, 5.0, 5.0, 5.0};
  for (double s : rolling_std(v, 2)) EXPECT_NEAR(s, 0.0, 1e-12);
  const std::vector<double> w = {0.0, 10.0, 0.0, 10.0};
  const auto s = rolling_std(w, 2);
  EXPECT_NEAR(s[1], 5.0, 1e-12);
}

TEST(Series, Diff) {
  const std::vector<double> v = {1.0, 4.0, 9.0};
  const auto d = diff(v);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
  EXPECT_TRUE(diff(std::vector<double>{1.0}).empty());
}

TEST(SeasonalNaive, ExactOnPeriodicSeries) {
  TimeSeries s = sinusoid_series(720, 0.0, 1);
  SeasonalNaiveForecaster model(144);
  model.fit(s);
  const auto prefix = s.slice(0, 576);
  const auto pred = model.forecast(prefix, 144);
  ASSERT_EQ(pred.size(), 144u);
  for (std::size_t h = 0; h < pred.size(); ++h) {
    EXPECT_NEAR(pred[h], s.values[576 + h], 1e-9);
  }
}

TEST(HoltWinters, TracksTrendAndSeason) {
  // Linear trend + seasonality, no noise.
  TimeSeries s;
  s.begin = from_civil(2020, 4, 1);
  s.step = 600;
  const int period = 48;
  for (int i = 0; i < 960; ++i) {
    const double phase = 2.0 * std::numbers::pi * (i % period) / period;
    s.values.push_back(50.0 + 0.05 * i + 10.0 * std::sin(phase));
  }
  HoltWintersForecaster model(period);
  model.fit(s);
  const auto prefix = s.slice(0, 912);
  const auto pred = model.forecast(prefix, 48);
  std::vector<double> actual(s.values.begin() + 912, s.values.end());
  EXPECT_LT(stats::smape(actual, pred), 5.0);
}

TEST(ARForecaster, LearnsAR1) {
  // x[t] = 0.8 x[t-1] + e; the AR(3) fit should give a dominant first lag.
  Rng rng(5);
  TimeSeries s;
  s.begin = 0;
  s.step = 600;
  double x = 0.0;
  for (int i = 0; i < 5000; ++i) {
    x = 0.8 * x + rng.normal(0.0, 1.0);
    s.values.push_back(x);
  }
  ARForecaster model(3);
  model.fit(s);
  // One-step forecast from a known state should be close to 0.8 * last.
  TimeSeries prefix = s.slice(0, 4000);
  const auto pred = model.forecast(prefix, 1);
  EXPECT_NEAR(pred[0], 0.8 * prefix.values.back(), 1.2);
}

TEST(ARForecaster, DifferencingHandlesTrend) {
  TimeSeries s;
  s.begin = 0;
  s.step = 600;
  for (int i = 0; i < 500; ++i) s.values.push_back(10.0 + 2.0 * i);
  ARForecaster model(2, /*d=*/1);
  model.fit(s);
  const auto pred = model.forecast(s, 5);
  for (int h = 0; h < 5; ++h) {
    EXPECT_NEAR(pred[static_cast<std::size_t>(h)],
                10.0 + 2.0 * (500 + h), 5.0);
  }
}

TEST(GbdtForecaster, BeatsSeasonalNaiveOnNoisySeasonal) {
  TimeSeries s = sinusoid_series(3000, 4.0, 11);
  const std::size_t train_n = 2400;

  GBDTForecaster gbdt;
  gbdt.fit(s.slice(0, train_n));
  SeasonalNaiveForecaster naive(144);
  naive.fit(s.slice(0, train_n));

  const auto bt_gbdt = backtest(gbdt, s, train_n, /*horizon=*/6, /*stride=*/24);
  const auto bt_naive = backtest(naive, s, train_n, 6, 24);
  const double smape_gbdt = stats::smape(bt_gbdt.actual, bt_gbdt.predicted);
  const double smape_naive = stats::smape(bt_naive.actual, bt_naive.predicted);
  EXPECT_LT(smape_gbdt, smape_naive * 1.05);
  EXPECT_LT(smape_gbdt, 8.0);
}

TEST(GbdtForecaster, RecursiveForecastStaysBounded) {
  TimeSeries s = sinusoid_series(2000, 2.0, 13);
  GBDTForecaster model;
  model.fit(s);
  const auto pred = model.forecast(s, 288);  // 2 days ahead
  for (double p : pred) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 250.0);
  }
}

TEST(Backtest, AlignmentAndCount) {
  TimeSeries s = sinusoid_series(500, 0.0, 17);
  SeasonalNaiveForecaster model(144);
  const auto r = backtest(model, s, 300, 10, 50);
  // Origins: 300, 350, 400, 450 (each needs origin + 10 <= 500).
  EXPECT_EQ(r.actual.size(), 4u);
  EXPECT_EQ(r.actual.size(), r.predicted.size());
  EXPECT_DOUBLE_EQ(r.actual[0], s.values[309]);
}

TEST(Backtest, EmptyForDegenerateArgs) {
  TimeSeries s = sinusoid_series(100, 0.0, 19);
  SeasonalNaiveForecaster model(10);
  EXPECT_TRUE(backtest(model, s, 50, 0, 10).actual.empty());
  EXPECT_TRUE(backtest(model, s, 200, 5, 10).actual.empty());
}

TEST(Backtest, ParallelMatchesSerialBitIdentically) {
  TimeSeries s = sinusoid_series(2200, 3.0, 23);
  const std::size_t train_n = 1700;
  GBDTForecaster gbdt;
  gbdt.fit(s.slice(0, train_n));
  ARForecaster ar(36, 1);
  ar.fit(s.slice(0, train_n));
  for (const Forecaster* m : {static_cast<const Forecaster*>(&gbdt),
                              static_cast<const Forecaster*>(&ar)}) {
    const auto par =
        backtest(*m, s, train_n, 6, 12, common::ExecMode::kParallel);
    const auto ser =
        backtest(*m, s, train_n, 6, 12, common::ExecMode::kSerial);
    ASSERT_EQ(par.actual.size(), ser.actual.size());
    ASSERT_FALSE(par.actual.empty());
    for (std::size_t i = 0; i < par.actual.size(); ++i) {
      EXPECT_EQ(par.actual[i], ser.actual[i]);
      EXPECT_EQ(par.predicted[i], ser.predicted[i]);
    }
  }
}

TEST(FitForecasters, MatchesSerialFitsBitIdentically) {
  TimeSeries s = sinusoid_series(2200, 3.0, 29);
  const TimeSeries train = s.slice(0, 1700);

  GBDTForecaster gbdt_par;
  ARForecaster ar_par(36, 1);
  HoltWintersForecaster hw_par(144);
  std::vector<Forecaster*> models = {&gbdt_par, &ar_par, &hw_par};
  fit_forecasters(models, train);

  GBDTForecaster gbdt_ser;
  ARForecaster ar_ser(36, 1);
  HoltWintersForecaster hw_ser(144);
  gbdt_ser.fit(train);
  ar_ser.fit(train);
  hw_ser.fit(train);

  const std::vector<std::pair<Forecaster*, Forecaster*>> pairs = {
      {&gbdt_par, &gbdt_ser}, {&ar_par, &ar_ser}, {&hw_par, &hw_ser}};
  for (const auto& [par, ser] : pairs) {
    const auto p = par->forecast(s, 18);
    const auto q = ser->forecast(s, 18);
    ASSERT_EQ(p.size(), q.size());
    for (std::size_t i = 0; i < p.size(); ++i) EXPECT_EQ(p[i], q[i]);
  }
}

TEST(LagFeatureConfig, Counts) {
  LagFeatureConfig cfg;
  EXPECT_EQ(cfg.feature_count(), cfg.lags.size() + 2 * cfg.rolling_windows.size() + 4);
  EXPECT_EQ(cfg.max_lag(), 1008);
}

}  // namespace
}  // namespace helios::forecast
