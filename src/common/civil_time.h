// Civil (proleptic Gregorian) calendar arithmetic on Unix timestamps.
//
// The trace substrate timestamps jobs as seconds since the Unix epoch (UTC).
// The characterization and forecasting layers need calendar decomposition
// (month, day-of-week, hour, ...) and the reverse mapping. The conversions
// use Howard Hinnant's branchless civil-from-days / days-from-civil
// algorithms, valid over the full proleptic Gregorian calendar.
#pragma once

#include <cstdint>
#include <string>

namespace helios {

/// Seconds since the Unix epoch, UTC. Signed to allow pre-1970 math in tests.
using UnixTime = std::int64_t;

inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86400;
inline constexpr std::int64_t kSecondsPerWeek = 7 * kSecondsPerDay;

/// Calendar decomposition of a UnixTime in UTC.
struct CivilTime {
  int year = 1970;
  int month = 1;    ///< 1..12
  int day = 1;      ///< 1..31
  int hour = 0;     ///< 0..23
  int minute = 0;   ///< 0..59
  int second = 0;   ///< 0..59
  int weekday = 4;  ///< 0 = Monday .. 6 = Sunday (1970-01-01 was a Thursday)
  int yday = 0;     ///< 0-based day of year

  [[nodiscard]] bool is_weekend() const noexcept { return weekday >= 5; }
};

/// Days since 1970-01-01 for a civil date (Hinnant's days_from_civil).
[[nodiscard]] std::int64_t days_from_civil(int year, int month, int day) noexcept;

/// Civil date for a count of days since 1970-01-01 (Hinnant's civil_from_days).
void civil_from_days(std::int64_t days, int& year, int& month, int& day) noexcept;

/// Full decomposition of a timestamp.
[[nodiscard]] CivilTime to_civil(UnixTime t) noexcept;

/// Timestamp of a civil date-time (UTC).
[[nodiscard]] UnixTime from_civil(int year, int month, int day, int hour = 0,
                                  int minute = 0, int second = 0) noexcept;

/// 0 = Monday .. 6 = Sunday.
[[nodiscard]] int weekday_of(UnixTime t) noexcept;

/// Hour of day 0..23.
[[nodiscard]] int hour_of(UnixTime t) noexcept;

/// Minute within day, 0..1439.
[[nodiscard]] int minute_of_day(UnixTime t) noexcept;

/// Truncate a timestamp to the start of its UTC day.
[[nodiscard]] UnixTime floor_day(UnixTime t) noexcept;

/// Truncate a timestamp to the start of its UTC hour.
[[nodiscard]] UnixTime floor_hour(UnixTime t) noexcept;

/// True for Saturdays, Sundays, and the 2020 mainland-China public holidays
/// that fall inside the Helios trace window (Labour Day May 1-5, Dragon Boat
/// June 25-27, Mid-Autumn/National Day Oct 1-8). Used as a forecast feature,
/// mirroring the paper's "binary holiday indicators".
[[nodiscard]] bool is_holiday(UnixTime t) noexcept;

/// "YYYY-MM-DD HH:MM:SS" (UTC).
[[nodiscard]] std::string format_time(UnixTime t);

/// "YYYY-MM-DD".
[[nodiscard]] std::string format_date(UnixTime t);

}  // namespace helios
