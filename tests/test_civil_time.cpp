#include <gtest/gtest.h>

#include "common/civil_time.h"

namespace helios {
namespace {

TEST(CivilTime, EpochDecomposition) {
  const CivilTime c = to_civil(0);
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
  EXPECT_EQ(c.hour, 0);
  EXPECT_EQ(c.weekday, 3);  // Thursday, Monday-based
  EXPECT_EQ(c.yday, 0);
}

TEST(CivilTime, RoundTripKnownDates) {
  struct Case {
    int y, m, d, h, min, s;
  };
  const Case cases[] = {
      {2020, 4, 1, 0, 0, 0},   {2020, 9, 27, 23, 59, 59}, {2017, 10, 1, 12, 0, 0},
      {2000, 2, 29, 6, 30, 15}, {1999, 12, 31, 23, 59, 59}, {2038, 1, 19, 3, 14, 7},
  };
  for (const auto& c : cases) {
    const UnixTime t = from_civil(c.y, c.m, c.d, c.h, c.min, c.s);
    const CivilTime back = to_civil(t);
    EXPECT_EQ(back.year, c.y);
    EXPECT_EQ(back.month, c.m);
    EXPECT_EQ(back.day, c.d);
    EXPECT_EQ(back.hour, c.h);
    EXPECT_EQ(back.minute, c.min);
    EXPECT_EQ(back.second, c.s);
  }
}

TEST(CivilTime, RoundTripSweep) {
  // Every 7h13m over ~3 years crosses DST-irrelevant UTC boundaries,
  // month ends, and a leap day.
  for (UnixTime t = from_civil(2019, 12, 1); t < from_civil(2022, 3, 1);
       t += 7 * 3600 + 13 * 60) {
    const CivilTime c = to_civil(t);
    EXPECT_EQ(from_civil(c.year, c.month, c.day, c.hour, c.minute, c.second), t);
  }
}

TEST(CivilTime, WeekdayProgression) {
  // 2020-04-01 was a Wednesday (index 2).
  const UnixTime apr1 = from_civil(2020, 4, 1);
  EXPECT_EQ(weekday_of(apr1), 2);
  EXPECT_EQ(weekday_of(apr1 + 4 * kSecondsPerDay), 6);  // Sunday
  EXPECT_EQ(weekday_of(apr1 + 5 * kSecondsPerDay), 0);  // Monday
}

TEST(CivilTime, FloorDayAndHour) {
  const UnixTime t = from_civil(2020, 6, 15, 13, 45, 30);
  EXPECT_EQ(floor_day(t), from_civil(2020, 6, 15));
  EXPECT_EQ(floor_hour(t), from_civil(2020, 6, 15, 13));
  EXPECT_EQ(hour_of(t), 13);
  EXPECT_EQ(minute_of_day(t), 13 * 60 + 45);
}

TEST(CivilTime, NegativeTimesDecodeCorrectly) {
  const UnixTime t = from_civil(1969, 12, 31, 23, 0, 0);
  EXPECT_LT(t, 0);
  const CivilTime c = to_civil(t);
  EXPECT_EQ(c.year, 1969);
  EXPECT_EQ(c.month, 12);
  EXPECT_EQ(c.day, 31);
  EXPECT_EQ(c.hour, 23);
}

TEST(CivilTime, HolidaysIncludeWeekendsAndCnHolidays) {
  EXPECT_TRUE(is_holiday(from_civil(2020, 4, 4)));   // Saturday
  EXPECT_TRUE(is_holiday(from_civil(2020, 4, 5)));   // Sunday
  EXPECT_FALSE(is_holiday(from_civil(2020, 4, 6)));  // Monday
  EXPECT_TRUE(is_holiday(from_civil(2020, 5, 1)));   // Labour Day (Friday)
  EXPECT_TRUE(is_holiday(from_civil(2020, 5, 4)));   // Labour Day holiday Monday
  EXPECT_TRUE(is_holiday(from_civil(2020, 6, 25)));  // Dragon Boat (Thursday)
  EXPECT_FALSE(is_holiday(from_civil(2020, 6, 24)));
}

TEST(CivilTime, Format) {
  EXPECT_EQ(format_time(from_civil(2020, 4, 1, 9, 5, 3)), "2020-04-01 09:05:03");
  EXPECT_EQ(format_date(from_civil(2020, 4, 1, 9, 5, 3)), "2020-04-01");
}

TEST(CivilTime, LeapYearHandling) {
  EXPECT_EQ(days_from_civil(2020, 3, 1) - days_from_civil(2020, 2, 1), 29);
  EXPECT_EQ(days_from_civil(2021, 3, 1) - days_from_civil(2021, 2, 1), 28);
  EXPECT_EQ(days_from_civil(2000, 3, 1) - days_from_civil(2000, 2, 1), 29);
  EXPECT_EQ(days_from_civil(1900, 3, 1) - days_from_civil(1900, 2, 1), 28);
}

}  // namespace
}  // namespace helios
