// Limited-information QSSF mode (no job names) and rolling-estimator
// bookkeeping edge cases.
#include <gtest/gtest.h>

#include "core/qssf_service.h"
#include "stats/correlation.h"
#include "trace/synthetic.h"

namespace helios::core {
namespace {

using trace::JobState;
using trace::Trace;

trace::ClusterSpec spec() {
  trace::ClusterSpec s;
  s.name = "s";
  s.vcs = {{"vc0", 4, 8}};
  s.nodes = 4;
  return s;
}

TEST(QssfLimited, IgnoresNamesWhenDisabled) {
  QssfConfig cfg;
  cfg.use_names = false;
  cfg.gbdt.n_trees = 10;
  QssfService svc(cfg);
  Trace h(spec());
  for (int i = 0; i < 30; ++i) {
    h.add(1000 * i, 100, 1, 6, "alice", "vc0", "short_job", JobState::kCompleted);
    h.add(1000 * i + 1, 9000, 1, 6, "alice", "vc0", "long_job",
          JobState::kCompleted);
  }
  h.sort_by_submit_time();
  svc.fit(h);
  Trace probe(spec());
  const auto j = probe.add(100000, 0, 1, 6, "alice", "vc0", "short_job",
                           JobState::kCompleted);
  // Without names the rolling estimate is alice's 1-GPU mean (~4550), not
  // the template mean (~100).
  EXPECT_NEAR(svc.rolling_estimate(probe, j), 4550.0, 500.0);

  QssfConfig named = cfg;
  named.use_names = true;
  QssfService with_names(named);
  with_names.fit(h);
  EXPECT_NEAR(with_names.rolling_estimate(probe, j), 100.0, 30.0);
}

TEST(QssfLimited, StillPredictsUsefully) {
  auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 41,
                                            0.03);
  const Trace t = trace::SyntheticTraceGenerator(gen).generate();
  const auto train = t.between(0, from_civil(2020, 8, 1));
  const auto test = t.between(from_civil(2020, 8, 1), from_civil(2020, 9, 1));
  QssfConfig cfg;
  cfg.use_names = false;
  cfg.gbdt.n_trees = 20;
  QssfService svc(cfg);
  svc.fit(train);
  std::vector<double> pred;
  std::vector<double> actual;
  for (const auto& j : test.jobs()) {
    if (!j.is_gpu_job()) continue;
    pred.push_back(svc.priority(test, j));
    actual.push_back(j.gpu_time());
  }
  // User + demand + calendar alone must still rank jobs far better than
  // chance (the paper's robustness direction for name-less clusters).
  EXPECT_GT(stats::spearman(pred, actual), 0.35);
}

TEST(QssfRolling, NameEvictionKeepsRecentEntries) {
  QssfConfig cfg;
  cfg.max_names_per_user = 4;
  cfg.gbdt.n_trees = 2;
  QssfService svc(cfg);
  Trace h(spec());
  // 6 well-separated names; only the most recent 4 survive.
  const char* names[] = {"aaaa_alpha_00", "bbbb_beta_11", "cccc_gamma_22",
                         "dddd_delta_33", "eeee_epsln_44", "ffff_zeta_55"};
  UnixTime at = 0;
  int dur = 100;
  for (const char* n : names) {
    for (int k = 0; k < 3; ++k) {
      const auto j = h.add(at, dur, 1, 6, "u", "vc0", n, JobState::kCompleted);
      svc.observe(h, j);
      at += 10;
    }
    dur += 100;
  }
  Trace probe(spec());
  // Oldest name evicted -> falls back to the user's 1-GPU mean.
  const auto evicted =
      probe.add(at, 0, 1, 6, "u", "vc0", "aaaa_alpha_00", JobState::kCompleted);
  const double user_mean = svc.rolling_estimate(probe, evicted);
  EXPECT_GT(user_mean, 200.0);  // not the template's 100s
  // Newest name still tracked precisely.
  const auto fresh =
      probe.add(at, 0, 1, 6, "u", "vc0", "ffff_zeta_55", JobState::kCompleted);
  EXPECT_NEAR(svc.rolling_estimate(probe, fresh), 600.0, 60.0);
}

TEST(QssfRolling, CpuJobsAreIgnored) {
  QssfService svc;
  Trace h(spec());
  const auto cpu = h.add(0, 999, 0, 8, "u", "vc0", "cpu_prep", JobState::kCompleted);
  svc.observe(h, cpu);
  Trace probe(spec());
  const auto j = probe.add(10, 0, 1, 6, "u", "vc0", "anything",
                           JobState::kCompleted);
  // No GPU history at all -> the hard-coded prior, not 999.
  EXPECT_NEAR(svc.rolling_estimate(probe, j), 600.0, 1e-9);
}

TEST(QssfPriority, DeterministicAcrossInstances) {
  auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 43,
                                            0.02);
  const Trace t = trace::SyntheticTraceGenerator(gen).generate();
  const auto train = t.between(0, from_civil(2020, 7, 1));
  QssfService a;
  QssfService b;
  a.fit(train);
  b.fit(train);
  const auto test = t.between(from_civil(2020, 7, 1), from_civil(2020, 7, 2));
  for (const auto& j : test.jobs()) {
    if (!j.is_gpu_job()) continue;
    EXPECT_DOUBLE_EQ(a.priority(test, j), b.priority(test, j));
  }
}

}  // namespace
}  // namespace helios::core
