// Scalar forms of the GBDT hot kernels (see gbdt_kernels.h). These are the
// parity reference for the AVX2 TU and the only forms used when dispatch is
// off — they carry the exact loop shapes the histogram engine ran before the
// kernels were split out, so "scalar path no slower than before" holds by
// construction.
#include "ml/gbdt_kernels.h"

#include "ml/gbdt.h"

namespace helios::ml::kernels {

void hist_accumulate_scalar(const std::uint16_t* gbins, std::size_t p,
                            const std::uint32_t* rows, std::size_t lo,
                            std::size_t hi, const std::int32_t* grad,
                            std::int64_t* h0, std::int64_t* h1) noexcept {
  constexpr int kCountBits = 24;
  std::size_t k = lo;
  for (; k + 1 < hi; k += 2) {
    const std::size_t r0 = rows[k];
    const std::size_t r1 = rows[k + 1];
    const std::uint16_t* rb0 = gbins + r0 * p;
    const std::uint16_t* rb1 = gbins + r1 * p;
    const std::int64_t g0 =
        (static_cast<std::int64_t>(grad[r0]) << kCountBits) | 1;
    const std::int64_t g1 =
        (static_cast<std::int64_t>(grad[r1]) << kCountBits) | 1;
    std::size_t f = 0;
    for (; f + 2 <= p; f += 2) {
      h0[rb0[f]] += g0;
      h1[rb1[f]] += g1;
      h0[rb0[f + 1]] += g0;
      h1[rb1[f + 1]] += g1;
    }
    for (; f < p; ++f) {
      h0[rb0[f]] += g0;
      h1[rb1[f]] += g1;
    }
  }
  for (; k < hi; ++k) {
    const std::uint16_t* rb = gbins + rows[k] * p;
    const std::int64_t gp =
        (static_cast<std::int64_t>(grad[rows[k]]) << kCountBits) | 1;
    for (std::size_t f = 0; f < p; ++f) h0[rb[f]] += gp;
  }
}

double predict_forest_row_scalar(const PackedForest& forest,
                                 const std::uint8_t* bins, std::size_t p,
                                 std::size_t row, double learning_rate,
                                 double base) noexcept {
  const std::uint8_t* rb = bins + row * p;
  const std::int32_t D = forest.levels;
  const std::size_t slots = (std::size_t{1} << D) - 1;
  const std::size_t leaves = slots + 1;
  const double* value = forest.value.data();
  for (std::size_t t = 0; t < static_cast<std::size_t>(forest.n_trees); ++t) {
    const std::int32_t* sp = forest.split.data() + t * slots;
    // Implicit-heap walk: exactly D steps; phantom slots under shallow
    // leaves carry the dummy split 0xff, and both their subtrees replicate
    // the leaf, so the fixed-length descent lands on its value regardless.
    std::size_t i = 0;
    for (std::int32_t d = D; d > 0; --d) {
      const std::int32_t pk = sp[i];
      const std::size_t go_right =
          rb[static_cast<std::size_t>(pk >> 8)] > (pk & 0xff) ? 1u : 0u;
      i = 2 * i + 1 + go_right;
    }
    base += learning_rate * value[t * leaves + i - slots];
  }
  return base;
}

}  // namespace helios::ml::kernels
