#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "stats/summary.h"

namespace helios::sim {

using trace::JobRecord;
using trace::Trace;

std::string_view to_string(SchedulerPolicy p) noexcept {
  switch (p) {
    case SchedulerPolicy::kFifo:
      return "FIFO";
    case SchedulerPolicy::kSjf:
      return "SJF";
    case SchedulerPolicy::kSrtf:
      return "SRTF";
    case SchedulerPolicy::kQssf:
      return "QSSF";
  }
  return "?";
}

namespace {

/// Accumulates a piecewise-constant function's time integral into regular
/// buckets; read back as per-bucket means.
class BucketIntegrator {
 public:
  BucketIntegrator(UnixTime begin, UnixTime end, std::int64_t step)
      : begin_(begin), step_(step),
        sums_(static_cast<std::size_t>(
                  std::max<std::int64_t>(1, (end - begin + step - 1) / step)),
              0.0) {}

  void add(UnixTime t0, UnixTime t1, double value) {
    if (value == 0.0 || t1 <= t0) return;
    t0 = std::max(t0, begin_);
    t1 = std::min<UnixTime>(t1, begin_ + static_cast<UnixTime>(sums_.size()) * step_);
    if (t1 <= t0) return;
    auto b = static_cast<std::size_t>((t0 - begin_) / step_);
    const auto b_end = static_cast<std::size_t>((t1 - 1 - begin_) / step_);
    for (; b <= b_end && b < sums_.size(); ++b) {
      const UnixTime lo = begin_ + static_cast<UnixTime>(b) * step_;
      const UnixTime hi = lo + step_;
      sums_[b] += value * static_cast<double>(std::min(t1, hi) - std::max(t0, lo));
    }
  }

  [[nodiscard]] forecast::TimeSeries mean_series() const {
    forecast::TimeSeries s;
    s.begin = begin_;
    s.step = step_;
    s.values.reserve(sums_.size());
    for (double v : sums_) s.values.push_back(v / static_cast<double>(step_));
    return s;
  }

 private:
  UnixTime begin_;
  std::int64_t step_;
  std::vector<double> sums_;
};

struct QueueKey {
  double priority = 0.0;
  UnixTime submit = 0;
  std::size_t index = 0;  // trace job index: final deterministic tie-break

  bool operator<(const QueueKey& o) const noexcept {
    if (priority != o.priority) return priority < o.priority;
    if (submit != o.submit) return submit < o.submit;
    return index < o.index;
  }
};

struct RunningJob {
  std::size_t outcome = 0;  ///< index into outcomes
  Allocation alloc;
  std::int64_t run_start = 0;
  std::int64_t remaining = 0;  ///< at run_start
  std::uint64_t generation = 0;
  int vc = -1;
  bool active = false;
};

struct FinishEvent {
  std::int64_t time = 0;
  std::size_t slot = 0;
  std::uint64_t generation = 0;

  bool operator>(const FinishEvent& o) const noexcept { return time > o.time; }
};

}  // namespace

ClusterSimulator::ClusterSimulator(trace::ClusterSpec spec, SimConfig config)
    : spec_(std::move(spec)), config_(std::move(config)) {}

SimResult ClusterSimulator::run(const Trace& t) const {
  SimResult result;
  ClusterState state(spec_);

  // Map trace VC-interner ids -> cluster-spec VC indices.
  std::vector<int> vc_of_id(t.vcs().size(), -1);
  for (int vi = 0; vi < static_cast<int>(spec_.vcs.size()); ++vi) {
    const auto id = t.vcs().find(spec_.vcs[static_cast<std::size_t>(vi)].name);
    if (id != StringInterner::kNotFound) vc_of_id[id] = vi;
  }

  // Collect GPU jobs (trace is sorted by submit time).
  std::vector<std::size_t> gpu_jobs;
  gpu_jobs.reserve(t.size());
  UnixTime window_begin = 0;
  UnixTime window_end = 1;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const JobRecord& j = t.jobs()[i];
    if (!j.is_gpu_job()) continue;
    if (gpu_jobs.empty()) window_begin = j.submit_time;
    window_end = std::max<UnixTime>(window_end, j.submit_time + j.duration + 1);
    gpu_jobs.push_back(i);
  }
  result.outcomes.reserve(gpu_jobs.size());

  const bool srtf = config_.policy == SchedulerPolicy::kSrtf;
  auto base_priority = [&](const JobRecord& j) -> double {
    switch (config_.policy) {
      case SchedulerPolicy::kFifo:
        return 0.0;  // submit-time tie-break gives FIFO order
      case SchedulerPolicy::kSjf:
      case SchedulerPolicy::kSrtf:
        return static_cast<double>(j.duration);
      case SchedulerPolicy::kQssf:
        return config_.priority_fn ? config_.priority_fn(j)
                                   : static_cast<double>(j.duration) * j.num_gpus;
    }
    return 0.0;
  };

  // Per-VC queues; entries reference outcome indices.
  std::vector<std::set<QueueKey>> queues(spec_.vcs.size());
  std::vector<std::size_t> outcome_of_index(t.size(), SIZE_MAX);

  std::vector<RunningJob> runs;
  std::priority_queue<FinishEvent, std::vector<FinishEvent>, std::greater<>> finishes;
  // outcome index -> current queue key / run slot bookkeeping.
  std::vector<double> job_priority;
  std::vector<std::int64_t> job_remaining;
  std::vector<std::size_t> run_slot;

  BucketIntegrator nodes_acc(window_begin, window_end, config_.series_step);
  BucketIntegrator gpus_acc(window_begin, window_end, config_.series_step);
  std::int64_t last_change = window_begin;

  auto account = [&](std::int64_t now) {
    if (now > last_change) {
      nodes_acc.add(last_change, now, state.busy_nodes());
      gpus_acc.add(last_change, now, state.busy_gpus());
      last_change = now;
    }
  };

  auto start_job = [&](std::size_t oi, int vc, const Allocation& alloc,
                       std::int64_t now) {
    JobOutcome& o = result.outcomes[oi];
    if (o.start == trace::kNeverStarted) o.start = now;
    RunningJob r;
    r.outcome = oi;
    r.alloc = alloc;
    r.run_start = now;
    r.remaining = job_remaining[oi];
    r.vc = vc;
    r.active = true;
    std::size_t slot;
    if (run_slot[oi] != SIZE_MAX && !runs[run_slot[oi]].active) {
      slot = run_slot[oi];
      r.generation = runs[slot].generation + 1;
      runs[slot] = r;
    } else {
      slot = runs.size();
      runs.push_back(r);
    }
    run_slot[oi] = slot;
    finishes.push({now + r.remaining, slot, runs[slot].generation});
  };

  // Schedules VC `vc` at time `now`: strict head-of-line by priority
  // (Algorithm 1: stop at the first job that does not fit; no backfill).
  auto schedule_vc = [&](int vc, std::int64_t now) {
    auto& q = queues[static_cast<std::size_t>(vc)];
    while (!q.empty()) {
      const QueueKey head = *q.begin();
      const std::size_t oi = outcome_of_index[head.index];
      JobOutcome& o = result.outcomes[oi];
      if (!state.can_ever_fit(vc, o.gpus)) {
        o.rejected = true;
        o.start = o.submit;
        o.end = o.submit;
        ++result.rejected_jobs;
        q.erase(q.begin());
        continue;
      }
      auto alloc = state.try_allocate(vc, o.gpus);
      if (!alloc && srtf) {
        // Preempt running jobs with strictly larger remaining time, largest
        // first, until the head fits; roll back if it never does.
        const std::int64_t head_rem = job_remaining[oi];
        std::vector<std::size_t> candidates;
        for (std::size_t s = 0; s < runs.size(); ++s) {
          if (!runs[s].active || runs[s].vc != vc) continue;
          const std::int64_t rem =
              runs[s].remaining - (now - runs[s].run_start);
          if (rem > head_rem) candidates.push_back(s);
        }
        std::sort(candidates.begin(), candidates.end(),
                  [&](std::size_t a, std::size_t b) {
                    const std::int64_t ra = runs[a].remaining - (now - runs[a].run_start);
                    const std::int64_t rb = runs[b].remaining - (now - runs[b].run_start);
                    return ra > rb;
                  });
        std::vector<std::size_t> freed;
        for (std::size_t s : candidates) {
          state.release(runs[s].alloc);
          freed.push_back(s);
          alloc = state.try_allocate(vc, o.gpus);
          if (alloc) break;
        }
        if (alloc) {
          for (std::size_t s : freed) {
            RunningJob& r = runs[s];
            r.active = false;
            ++r.generation;  // invalidates the pending finish event
            const std::size_t poi = r.outcome;
            job_remaining[poi] =
                std::max<std::int64_t>(1, r.remaining - (now - r.run_start));
            job_priority[poi] = static_cast<double>(job_remaining[poi]);
            q.insert({job_priority[poi], result.outcomes[poi].submit,
                      result.outcomes[poi].trace_index});
            ++result.preemptions;
          }
        } else {
          for (auto it = freed.rbegin(); it != freed.rend(); ++it) {
            state.reclaim(runs[*it].alloc);
          }
        }
      }
      if (!alloc) {
        if (config_.backfill) {
          // Greedy backfill: start any later queued job that fits right now.
          std::vector<QueueKey> placed;
          int scanned = 0;
          for (auto it = std::next(q.begin());
               it != q.end() && scanned < config_.backfill_depth;
               ++it, ++scanned) {
            const std::size_t boi = outcome_of_index[it->index];
            JobOutcome& bo = result.outcomes[boi];
            auto balloc = state.try_allocate(vc, bo.gpus);
            if (!balloc) continue;
            start_job(boi, vc, *balloc, now);
            placed.push_back(*it);
          }
          for (const auto& key : placed) q.erase(key);
        }
        break;
      }
      q.erase(q.begin());
      start_job(oi, vc, *alloc, now);
    }
  };

  std::size_t next_arrival = 0;
  while (next_arrival < gpu_jobs.size() || !finishes.empty()) {
    // Next event time: finishes first at equal times (free before place).
    std::int64_t now;
    const bool have_arrival = next_arrival < gpu_jobs.size();
    const std::int64_t arrival_time =
        have_arrival ? t.jobs()[gpu_jobs[next_arrival]].submit_time
                     : std::numeric_limits<std::int64_t>::max();
    // Drain stale finish events.
    while (!finishes.empty()) {
      const FinishEvent& f = finishes.top();
      if (runs[f.slot].active && runs[f.slot].generation == f.generation) break;
      finishes.pop();
    }
    const std::int64_t finish_time =
        finishes.empty() ? std::numeric_limits<std::int64_t>::max()
                         : finishes.top().time;
    now = std::min(arrival_time, finish_time);
    if (now == std::numeric_limits<std::int64_t>::max()) break;
    account(now);

    std::vector<int> dirty;
    // 1) completions at `now`.
    while (!finishes.empty() && finishes.top().time <= now) {
      const FinishEvent f = finishes.top();
      finishes.pop();
      RunningJob& r = runs[f.slot];
      if (!r.active || r.generation != f.generation) continue;
      r.active = false;
      ++r.generation;
      state.release(r.alloc);
      result.outcomes[r.outcome].end = now;
      dirty.push_back(r.vc);
    }
    // 2) arrivals at `now`.
    while (next_arrival < gpu_jobs.size() &&
           t.jobs()[gpu_jobs[next_arrival]].submit_time <= now) {
      const std::size_t idx = gpu_jobs[next_arrival];
      const JobRecord& j = t.jobs()[idx];
      ++next_arrival;
      JobOutcome o;
      o.trace_index = idx;
      o.submit = j.submit_time;
      o.gpus = j.num_gpus;
      o.vc = j.vc < vc_of_id.size() ? vc_of_id[j.vc] : -1;
      const std::size_t oi = result.outcomes.size();
      result.outcomes.push_back(o);
      outcome_of_index[idx] = oi;
      job_priority.push_back(base_priority(j));
      job_remaining.push_back(std::max<std::int32_t>(1, j.duration));
      run_slot.push_back(SIZE_MAX);
      if (o.vc < 0) {
        result.outcomes[oi].rejected = true;
        result.outcomes[oi].start = o.submit;
        result.outcomes[oi].end = o.submit;
        ++result.rejected_jobs;
        continue;
      }
      queues[static_cast<std::size_t>(o.vc)].insert(
          {job_priority[oi], o.submit, idx});
      dirty.push_back(o.vc);
    }
    // 3) scheduling passes.
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    for (int vc : dirty) schedule_vc(vc, now);
  }
  account(window_end);

  // ---- metrics ----------------------------------------------------------
  result.busy_nodes = nodes_acc.mean_series();
  result.busy_gpus = gpus_acc.mean_series();

  stats::RunningStats jct;
  stats::RunningStats delay;
  std::vector<stats::RunningStats> vc_delay(spec_.vcs.size());
  std::vector<stats::RunningStats> vc_jct(spec_.vcs.size());
  for (const auto& o : result.outcomes) {
    if (o.rejected || o.start == trace::kNeverStarted) continue;
    jct.add(static_cast<double>(o.jct()));
    delay.add(static_cast<double>(o.queue_delay()));
    if (o.queue_delay() >= config_.queued_threshold) ++result.queued_jobs;
    if (o.vc >= 0) {
      vc_delay[static_cast<std::size_t>(o.vc)].add(static_cast<double>(o.queue_delay()));
      vc_jct[static_cast<std::size_t>(o.vc)].add(static_cast<double>(o.jct()));
    }
  }
  result.avg_jct = jct.mean();
  result.avg_queue_delay = delay.mean();
  result.vc_stats.reserve(spec_.vcs.size());
  for (std::size_t vi = 0; vi < spec_.vcs.size(); ++vi) {
    VCStat s;
    s.name = spec_.vcs[vi].name;
    s.gpus = spec_.vcs[vi].total_gpus();
    s.jobs = vc_delay[vi].count();
    s.avg_queue_delay = vc_delay[vi].mean();
    s.avg_jct = vc_jct[vi].mean();
    result.vc_stats.push_back(std::move(s));
  }
  return result;
}

std::size_t apply_schedule(Trace& t, const SimResult& result) {
  std::size_t updated = 0;
  for (const auto& o : result.outcomes) {
    if (o.start == trace::kNeverStarted) continue;
    t.jobs()[o.trace_index].start_time = o.start;
    ++updated;
  }
  return updated;
}

SimResult operate_fifo(Trace& t, std::int64_t series_step) {
  SimConfig cfg;
  cfg.policy = SchedulerPolicy::kFifo;
  cfg.series_step = series_step;
  cfg.backfill = true;  // match the production scheduler's behaviour
  ClusterSimulator sim(t.cluster(), cfg);
  SimResult r = sim.run(t);
  apply_schedule(t, r);
  return r;
}

}  // namespace helios::sim
