#include "trace/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/csv.h"

namespace helios::trace {

JobRecord& Trace::add(UnixTime submit, std::int32_t duration, std::int32_t gpus,
                      std::int32_t cpus, std::string_view user,
                      std::string_view vc, std::string_view name,
                      JobState state) {
  JobRecord j;
  j.job_id = jobs_.size();
  j.submit_time = submit;
  j.start_time = submit;
  j.duration = duration;
  j.num_gpus = gpus;
  j.num_cpus = cpus;
  j.user = users_.intern(user);
  j.vc = vcs_.intern(vc);
  j.name = names_.intern(name);
  j.state = state;
  jobs_.push_back(j);
  return jobs_.back();
}

bool Trace::append_csv_row(std::string_view line) {
  if (CsvReader::is_blank_line(line)) return false;
  const auto fields = CsvReader::parse_line(line);
  if (fields.size() != 10) {
    throw std::runtime_error("trace CSV: expected 10 fields, got " +
                             std::to_string(fields.size()));
  }
  auto& j = add(std::stoll(fields[1]),
                static_cast<std::int32_t>(std::stol(fields[3])),
                static_cast<std::int32_t>(std::stol(fields[4])),
                static_cast<std::int32_t>(std::stol(fields[5])), fields[6],
                fields[7], fields[8], job_state_from_string(fields[9]));
  j.job_id = static_cast<std::uint64_t>(std::stoull(fields[0]));
  j.start_time = std::stoll(fields[2]);
  return true;
}

void Trace::append(const Trace& other) {
  const auto user_map = users_.merge_from(other.users_);
  const auto vc_map = vcs_.merge_from(other.vcs_);
  const auto name_map = names_.merge_from(other.names_);
  jobs_.reserve(jobs_.size() + other.jobs_.size());
  for (JobRecord j : other.jobs_) {
    j.user = user_map[j.user];
    j.vc = vc_map[j.vc];
    j.name = name_map[j.name];
    jobs_.push_back(j);
  }
}

bool Trace::contents_equal(const Trace& other) const noexcept {
  return jobs_ == other.jobs_ && users_ == other.users_ &&
         vcs_ == other.vcs_ && names_ == other.names_;
}

void Trace::sort_by_submit_time() {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     return a.submit_time < b.submit_time;
                   });
}

Trace Trace::filter(const std::function<bool(const JobRecord&)>& pred) const {
  Trace out(cluster_);
  out.users_ = users_;
  out.vcs_ = vcs_;
  out.names_ = names_;
  for (const auto& j : jobs_) {
    if (pred(j)) out.jobs_.push_back(j);
  }
  return out;
}

Trace Trace::between(UnixTime begin, UnixTime end) const {
  return filter([begin, end](const JobRecord& j) {
    return j.submit_time >= begin && j.submit_time < end;
  });
}

Trace Trace::gpu_jobs() const {
  return filter([](const JobRecord& j) { return j.is_gpu_job(); });
}

Trace Trace::cpu_jobs() const {
  return filter([](const JobRecord& j) { return j.is_cpu_job(); });
}

void Trace::save_csv(std::ostream& out) const {
  CsvWriter w(out);
  w.write_row({"job_id", "submit_time", "start_time", "duration", "num_gpus",
               "num_cpus", "user", "vc", "name", "state"});
  save_csv_rows(out, 0, jobs_.size());
}

void Trace::save_csv_rows(std::ostream& out, std::size_t first,
                          std::size_t count) const {
  CsvWriter w(out);
  const std::size_t end = std::min(jobs_.size(), first + count);
  for (std::size_t i = first; i < end; ++i) {
    const JobRecord& j = jobs_[i];
    w.write_row({CsvWriter::field(static_cast<std::int64_t>(j.job_id)),
                 CsvWriter::field(j.submit_time), CsvWriter::field(j.start_time),
                 CsvWriter::field(static_cast<std::int64_t>(j.duration)),
                 CsvWriter::field(static_cast<std::int64_t>(j.num_gpus)),
                 CsvWriter::field(static_cast<std::int64_t>(j.num_cpus)),
                 users_.str(j.user), vcs_.str(j.vc), names_.str(j.name),
                 std::string(to_string(j.state))});
  }
}

Trace Trace::load_csv(std::istream& in, ClusterSpec cluster) {
  Trace t(std::move(cluster));
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (CsvReader::is_blank_line(line)) continue;
    if (header) {  // skip schema row
      header = false;
      continue;
    }
    t.append_csv_row(line);
  }
  return t;
}

}  // namespace helios::trace
