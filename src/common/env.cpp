#include "common/env.h"

#include <cstdlib>

namespace helios {

double env_double(const char* name, double fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end == v ? fallback : parsed;
}

std::int64_t env_int(const char* name, std::int64_t fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return end == v ? fallback : static_cast<std::int64_t>(parsed);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace helios
