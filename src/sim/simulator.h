// Trace-driven discrete-event simulator of a multi-VC GPU cluster.
//
// Reproduces the evaluation methodology of §4.2.3: jobs flow through
// arrival -> per-VC queue -> gang placement -> completion, with no backfill
// and no cross-VC sharing. Four policies:
//   * kFifo — submission order (the paper's production baseline),
//   * kSjf  — oracle shortest-job-first, non-preemptive,
//   * kSrtf — oracle shortest-remaining-time-first with free preemption,
//   * kQssf — Quasi-Shortest-Service-First: jobs ordered by *predicted* GPU
//             time supplied by a PriorityFn (see core/qssf_service.h).
// Only GPU jobs are simulated; the paper does the same ("GPU resources are
// the bottleneck in our clusters").
#pragma once

#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "common/exec_mode.h"
#include "forecast/series.h"
#include "sim/cluster_state.h"
#include "sim/fault_plan.h"
#include "trace/trace.h"

namespace helios::sim {

enum class SchedulerPolicy { kFifo, kSjf, kSrtf, kQssf };

[[nodiscard]] std::string_view to_string(SchedulerPolicy p) noexcept;

/// All four policies in declaration order — the policy axis a scenario sweep
/// iterates (sweep/scenario.h).
[[nodiscard]] std::span<const SchedulerPolicy> all_policies() noexcept;

/// Parse "FIFO" / "SJF" / "SRTF" / "QSSF" (case-insensitive). Throws
/// std::invalid_argument on anything else.
[[nodiscard]] SchedulerPolicy policy_from_string(std::string_view name);

/// Priority for kQssf: expected GPU time of the job; lower runs first.
/// Called concurrently from VC shards under common::ExecMode::kParallel, so
/// it must be thread-safe (pure functions and const lookups are).
using PriorityFn = std::function<double(const trace::JobRecord&)>;

struct SimConfig {
  SchedulerPolicy policy = SchedulerPolicy::kFifo;
  PriorityFn priority_fn;  ///< required for kQssf, ignored otherwise
  common::ExecMode execution = common::ExecMode::kParallel;
  /// Queue delay (seconds) above which a job counts as "queued" in the
  /// Table 3 sense.
  std::int64_t queued_threshold = 1;
  /// Resolution of the busy-nodes / busy-GPUs output series.
  std::int64_t series_step = 600;
  /// Greedy backfill: when the queue head does not fit, later queued jobs
  /// that do fit may start (no reservations). The production Slurm that
  /// recorded the trace backfills, so *operating* a trace uses this; the
  /// §4.2.3 scheduler comparison keeps it off, exactly like the paper
  /// ("we do not consider the backfill mechanism").
  bool backfill = false;
  /// Cap on queue entries scanned per backfill pass.
  int backfill_depth = 256;
  /// Optional node-failure/recovery schedule (sim/fault_plan.h). Not owned;
  /// must outlive the run. nullptr = failure-free cluster. An injected
  /// failure kills the jobs running on the node (their gangs release fully,
  /// the jobs requeue with `restart` semantics) and removes the node's
  /// capacity until its recovery event — or forever, when the repair crosses
  /// the plan horizon.
  const FaultPlan* fault_plan = nullptr;
  /// Requeue semantics for jobs killed by a node failure.
  FaultRestart restart = FaultRestart::kRestart;
  /// Per-VC placement preference: node_order[vc][k] is the VC-local node
  /// index ranked k-th for allocation. Nodes within a VC are homogeneous, so
  /// the ranking only re-labels which physical node the consolidating
  /// allocator fills first — failure-aware placement passes risk-ascending
  /// ranks (core/failure_predictor.h) so gangs consolidate on predicted-
  /// healthy nodes and predicted-bad ones idle. Empty (or a size mismatch
  /// with the VC's node count) = node-id order.
  std::vector<std::vector<std::int32_t>> node_order;
};

struct JobOutcome {
  std::size_t trace_index = 0;  ///< index into the input trace's jobs()
  UnixTime submit = 0;
  std::int64_t start = trace::kNeverStarted;  ///< first launch time
  std::int64_t end = trace::kNeverStarted;
  std::int32_t gpus = 0;
  std::int32_t kills = 0;  ///< times a node failure killed a run of this job
  int vc = -1;  ///< cluster-spec VC index
  bool rejected = false;  ///< demanded more GPUs than its VC will ever have

  [[nodiscard]] std::int64_t queue_delay() const noexcept {
    return start - submit;
  }
  [[nodiscard]] std::int64_t jct() const noexcept { return end - submit; }
};

struct VCStat {
  std::string name;
  int gpus = 0;
  std::int64_t jobs = 0;
  double avg_queue_delay = 0.0;
  double avg_jct = 0.0;
};

struct SimResult {
  std::vector<JobOutcome> outcomes;  ///< GPU jobs, in input order
  double avg_jct = 0.0;
  double avg_queue_delay = 0.0;
  std::int64_t queued_jobs = 0;
  std::int64_t preemptions = 0;
  std::int64_t rejected_jobs = 0;
  /// Jobs that never finished inside the simulated horizon — still queued
  /// (start == kNeverStarted) or killed by a failure and never rescheduled.
  /// They count toward queued_jobs but are excluded from the JCT/delay
  /// averages (they have no completion time), so the averages are over
  /// finished jobs while nothing is silently dropped.
  std::int64_t unfinished_jobs = 0;
  std::int64_t job_kills = 0;      ///< job runs killed by node failures
  std::int64_t node_failures = 0;  ///< failure events applied
  std::vector<VCStat> vc_stats;          ///< by cluster-spec VC index
  forecast::TimeSeries busy_nodes;       ///< mean busy nodes per bucket
  forecast::TimeSeries busy_gpus;       ///< mean busy GPUs per bucket
};

/// Trace-driven simulator over all VCs of a cluster. VCs are dedicated and
/// non-shared, so the event loop is sharded per VC (see vc_simulator.h) and
/// shards run concurrently under common::ExecMode::kParallel; outcomes,
/// counters, and busy series merge deterministically, bit-identical to
/// kSerial.
class ClusterSimulator {
 public:
  ClusterSimulator(trace::ClusterSpec spec, SimConfig config);

  /// Simulate all GPU jobs of `t` (must be sorted by submit time). The trace
  /// is not modified; use apply_schedule to write start times back.
  [[nodiscard]] SimResult run(const trace::Trace& t) const;

 private:
  trace::ClusterSpec spec_;
  SimConfig config_;
};

/// Copy simulated start times back into the trace (GPU jobs only; CPU jobs
/// keep start == submit). Returns the number of jobs updated.
std::size_t apply_schedule(trace::Trace& t, const SimResult& result);

/// Convenience: operate a trace under FIFO (how the real trace's timing was
/// produced by Slurm) and write the schedule back.
SimResult operate_fifo(trace::Trace& t, std::int64_t series_step = 600);

}  // namespace helios::sim
