// End-to-end pipeline integration: generator -> FIFO operation ->
// characterization -> framework services, all on one shared fixture — the
// exact composition every bench harness uses.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/cluster_stats.h"
#include "analysis/job_stats.h"
#include "core/ces_service.h"
#include "core/framework.h"
#include "core/qssf_service.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace helios {
namespace {

struct Pipeline {
  trace::Trace t;
  sim::SimResult operated;

  Pipeline() {
    auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"),
                                              71, 0.05);
    t = trace::SyntheticTraceGenerator(cfg).generate();
    operated = sim::operate_fifo(t);
  }
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

TEST(Pipeline, OperatedTraceHasQueuingDelays) {
  const auto& p = pipeline();
  std::int64_t delayed = 0;
  for (const auto& j : p.t.jobs()) {
    ASSERT_GE(j.queue_delay(), 0);
    delayed += j.queue_delay() > 0;
  }
  EXPECT_GT(delayed, 0);
}

TEST(Pipeline, UtilizationWithinPhysicalBounds) {
  const auto& p = pipeline();
  const auto util = analysis::utilization_series(
      p.t, trace::helios_trace_begin(), trace::helios_trace_end(), 3600);
  double mean = 0.0;
  for (double v : util.values) {
    ASSERT_GE(v, -1e-9);
    ASSERT_LE(v, 1.0 + 1e-9);
    mean += v;
  }
  mean /= static_cast<double>(util.size());
  EXPECT_GT(mean, 0.40);  // a loaded production cluster, not an idle one
  EXPECT_LT(mean, 0.98);
}

TEST(Pipeline, BusyNodeSeriesConsistentWithBusyGpus) {
  const auto& p = pipeline();
  const int gpn = p.t.cluster().gpus_per_node;
  ASSERT_EQ(p.operated.busy_nodes.size(), p.operated.busy_gpus.size());
  for (std::size_t i = 0; i < p.operated.busy_nodes.size(); ++i) {
    const double nodes = p.operated.busy_nodes.values[i];
    const double gpus = p.operated.busy_gpus.values[i];
    // A busy node hosts between 1 and gpus_per_node busy GPUs.
    ASSERT_LE(gpus, nodes * gpn + 1e-6);
    ASSERT_GE(gpus, nodes - 1e-6);
  }
}

TEST(Pipeline, FrameworkHostsBothServices) {
  auto& p = pipeline();
  core::PredictionFramework fw("Venus");
  core::QssfConfig qcfg;
  qcfg.gbdt.n_trees = 8;
  auto& qssf = static_cast<core::QssfService&>(
      fw.register_service(std::make_unique<core::QssfService>(qcfg)));
  auto& ces = static_cast<core::CesService&>(fw.register_service(
      std::make_unique<core::CesService>(
          core::CesConfig{},
          std::make_unique<forecast::SeasonalNaiveForecaster>(144))));
  EXPECT_EQ(fw.service_count(), 2u);
  EXPECT_EQ(fw.find("qssf"), &qssf);
  EXPECT_EQ(fw.find("ces"), &ces);

  // Model Update Engine round: both services retrain from fresh data.
  const auto recent = p.t.between(from_civil(2020, 8, 1), from_civil(2020, 9, 1));
  fw.update_all(recent);
  EXPECT_TRUE(qssf.trained());

  // The refreshed QSSF must produce sane priorities for new jobs.
  const auto eval = p.t.between(from_civil(2020, 9, 1), from_civil(2020, 9, 8));
  for (const auto& j : eval.jobs()) {
    if (!j.is_gpu_job()) continue;
    const double prio = qssf.priority(eval, j);
    ASSERT_GT(prio, 0.0);
    ASSERT_LT(prio, 1e12);
  }
}

TEST(Pipeline, CesReplayOnVenusKeepsInvariants) {
  auto& p = pipeline();
  const auto history = p.operated.busy_nodes.between(
      p.operated.busy_nodes.begin, from_civil(2020, 9, 1));
  core::CesConfig cfg;
  cfg.sigma = 1;
  core::CesService svc(cfg,
                       std::make_unique<forecast::SeasonalNaiveForecaster>(144));
  svc.fit(history);
  const auto r = svc.replay(p.t, history, from_civil(2020, 9, 1),
                            from_civil(2020, 9, 15));
  EXPECT_EQ(r.total_nodes, p.t.cluster().nodes);
  EXPECT_GE(r.node_util_ces, r.node_util_original - 0.01);
  EXPECT_LE(r.affected_jobs, r.total_jobs);
  EXPECT_GE(r.saved_kwh, 0.0);
}

TEST(Pipeline, SchedulerOrderingHoldsAcrossSeeds) {
  // The headline ordering FIFO >= QSSF-ish >= SRTF on avg queuing must be
  // robust to the workload realization, not a seed artifact.
  for (std::uint64_t seed : {3ULL, 17ULL}) {
    auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"),
                                              seed, 0.04);
    trace::Trace t = trace::SyntheticTraceGenerator(cfg).generate();
    const auto eval =
        t.between(from_civil(2020, 9, 1), trace::helios_trace_end());
    auto run = [&](sim::SchedulerPolicy policy) {
      sim::SimConfig sc;
      sc.policy = policy;
      return sim::ClusterSimulator(eval.cluster(), sc).run(eval);
    };
    const auto fifo = run(sim::SchedulerPolicy::kFifo);
    const auto sjf = run(sim::SchedulerPolicy::kSjf);
    const auto srtf = run(sim::SchedulerPolicy::kSrtf);
    EXPECT_LT(sjf.avg_queue_delay, fifo.avg_queue_delay) << "seed " << seed;
    EXPECT_LT(srtf.avg_queue_delay, sjf.avg_queue_delay * 1.05) << "seed " << seed;
  }
}

}  // namespace
}  // namespace helios
