#include "core/qssf_service.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/civil_time.h"

namespace helios::core {

using trace::JobRecord;
using trace::Trace;

ml::GBDTConfig QssfConfig::default_gbdt_config() {
  ml::GBDTConfig cfg;
  cfg.n_trees = 60;
  cfg.max_depth = 6;
  cfg.learning_rate = 0.12;
  cfg.min_samples_leaf = 30;
  cfg.subsample = 0.7;
  cfg.max_bins = 64;
  cfg.max_training_rows = 200'000;  // keeps multi-month fits to seconds
  return cfg;
}

QssfService::QssfService(QssfConfig config)
    : config_(config),
      model_(config.gbdt),
      name_buckets_(config.name_match_threshold, /*prefix_len=*/6) {}

void QssfService::encode(const Trace& t, const JobRecord& job,
                         std::vector<double>& out) const {
  out.clear();
  out.reserve(kFeatureCount);
  const CivilTime c = to_civil(job.submit_time);
  out.push_back(static_cast<double>(job.num_gpus));
  out.push_back(static_cast<double>(job.num_cpus));
  out.push_back(static_cast<double>(job.vc));
  out.push_back(static_cast<double>(job.user));
  out.push_back(config_.use_names
                    ? static_cast<double>(name_buckets_.bucket(t.job_name(job)))
                    : 0.0);
  out.push_back(static_cast<double>(c.month));
  out.push_back(static_cast<double>(c.weekday));
  out.push_back(static_cast<double>(c.hour));
  out.push_back(static_cast<double>(c.minute));
}

const QssfService::NameEntry* QssfService::find_name(
    const UserHistory& u, const std::string& name) const {
  const NameEntry* best = nullptr;
  double best_dist = config_.name_match_threshold;
  for (const auto& e : u.names) {
    if (e.name == name) return &e;  // exact hit wins immediately
    const auto limit = static_cast<std::size_t>(std::floor(
        config_.name_match_threshold *
        static_cast<double>(std::max(e.name.size(), name.size()))));
    if (!ml::within_distance(e.name, name, limit)) continue;
    const double d = ml::normalized_levenshtein(e.name, name);
    if (d <= best_dist) {
      best_dist = d;
      best = &e;
    }
  }
  return best;
}

QssfService::NameEntry* QssfService::find_name_mutable(UserHistory& u,
                                                       const std::string& name) {
  return const_cast<NameEntry*>(find_name(u, name));
}

void QssfService::observe(const Trace& t, const JobRecord& job) {
  if (!job.is_gpu_job()) return;
  const double dur = static_cast<double>(job.duration);
  ++observe_counter_;

  auto& g = global_by_gpus_[job.num_gpus];
  g.first += dur;
  ++g.second;
  global_duration_sum_ += dur;
  ++global_jobs_;

  UserHistory& u = users_[t.user_name(job)];
  auto& ug = u.by_gpus[job.num_gpus];
  ug.first += dur;
  ++ug.second;
  u.duration_sum += dur;
  ++u.jobs;

  if (!config_.use_names) return;  // limited-information mode
  const std::string& name = t.job_name(job);
  if (NameEntry* e = find_name_mutable(u, name)) {
    // Exponentially-weighted rolling duration (newest dominates).
    e->ewma_duration = config_.rolling_decay * e->ewma_duration +
                       (1.0 - config_.rolling_decay) * dur;
    e->weight = config_.rolling_decay * e->weight + (1.0 - config_.rolling_decay);
    e->last_seen = observe_counter_;
  } else {
    if (u.names.size() >= config_.max_names_per_user) {
      // Evict the least-recently-seen entry.
      auto oldest = std::min_element(u.names.begin(), u.names.end(),
                                     [](const NameEntry& a, const NameEntry& b) {
                                       return a.last_seen < b.last_seen;
                                     });
      u.names.erase(oldest);
    }
    NameEntry fresh;
    fresh.name = name;
    fresh.ewma_duration = (1.0 - config_.rolling_decay) * dur;
    fresh.weight = 1.0 - config_.rolling_decay;
    fresh.last_seen = observe_counter_;
    u.names.push_back(std::move(fresh));
  }
}

void QssfService::fit(const Trace& history) {
  // Rolling structures.
  for (const auto& job : history.jobs()) observe(history, job);

  // GBDT on log-duration.
  ml::Dataset data(kFeatureCount);
  std::vector<double> row;
  for (const auto& job : history.jobs()) {
    if (!job.is_gpu_job()) continue;
    encode(history, job, row);
    data.add_row(row, std::log1p(static_cast<double>(job.duration)));
  }
  model_.fit(data);
}

void QssfService::update(const Trace& new_data) { fit(new_data); }

double QssfService::rolling_estimate(const Trace& t, const JobRecord& job) const {
  const auto user_it = users_.find(t.user_name(job));
  if (user_it == users_.end()) {
    // New user: cluster-wide mean duration for this GPU demand (line 14).
    const auto it = global_by_gpus_.find(job.num_gpus);
    if (it != global_by_gpus_.end() && it->second.second > 0) {
      return it->second.first / static_cast<double>(it->second.second);
    }
    return global_jobs_ > 0 ? global_duration_sum_ / static_cast<double>(global_jobs_)
                            : 600.0;
  }
  const UserHistory& u = user_it->second;
  if (config_.use_names) {
    if (const NameEntry* e = find_name(u, t.job_name(job));
        e != nullptr && e->weight > 0.0) {
      // Similar name: exponentially-weighted decay of its durations (line 18).
      return e->ewma_duration / e->weight;
    }
  }
  // Known user, new job name: user's mean for this GPU demand (line 16).
  const auto it = u.by_gpus.find(job.num_gpus);
  if (it != u.by_gpus.end() && it->second.second > 0) {
    return it->second.first / static_cast<double>(it->second.second);
  }
  return u.jobs > 0 ? u.duration_sum / static_cast<double>(u.jobs) : 600.0;
}

double QssfService::ml_estimate(const Trace& t, const JobRecord& job) const {
  if (!model_.trained()) return rolling_estimate(t, job);
  std::vector<double> row;
  encode(t, job, row);
  return std::max(1.0, std::expm1(model_.predict(row)));
}

double QssfService::predict_duration(const Trace& t, const JobRecord& job) const {
  const double pr = rolling_estimate(t, job);
  const double pm = ml_estimate(t, job);
  return config_.lambda * pr + (1.0 - config_.lambda) * pm;
}

double QssfService::priority(const Trace& t, const JobRecord& job) const {
  return static_cast<double>(std::max(1, job.num_gpus)) *
         predict_duration(t, job);
}

// ---------------------------------------------------------------------------
// OnlinePriorityEvaluator
// ---------------------------------------------------------------------------

OnlinePriorityEvaluator::OnlinePriorityEvaluator(QssfService& service,
                                                 const Trace& eval) {
  struct Pending {
    std::int64_t finish = 0;
    std::size_t index = 0;
    bool operator>(const Pending& o) const noexcept { return finish > o.finish; }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending;

  priorities_.reserve(eval.size());
  for (std::size_t i = 0; i < eval.size(); ++i) {
    const JobRecord& job = eval.jobs()[i];
    if (!job.is_gpu_job()) continue;
    // Fold in every job that has (approximately) finished by now; queuing
    // delay is unknown at this point, so submit+duration approximates the
    // termination feed of the Model Update Engine.
    while (!pending.empty() && pending.top().finish <= job.submit_time) {
      service.observe(eval, eval.jobs()[pending.top().index]);
      pending.pop();
    }
    const double p = service.priority(eval, job);
    priorities_.emplace(job.job_id, p);
    predicted_.push_back(p);
    actual_.push_back(job.gpu_time());
    pending.push({job.submit_time + job.duration, i});
  }
}

double OnlinePriorityEvaluator::priority_of(const JobRecord& job) const {
  const auto it = priorities_.find(job.job_id);
  return it != priorities_.end()
             ? it->second
             : static_cast<double>(job.num_gpus) * 600.0;
}

sim::PriorityFn OnlinePriorityEvaluator::as_priority_fn() const {
  return [this](const JobRecord& job) { return priority_of(job); };
}

}  // namespace helios::core
