// Table 4: ratio of average queuing delay between FIFO and QSSF for
// short-term (<15 min), middle-term (15 min - 6 h) and long-term (>6 h) jobs.
// Higher ratio = QSSF reduces that group's queuing more.
#include <array>
#include <cstdio>

#include "bench_common.h"
#include "common/text_table.h"

namespace {

std::array<double, 3> group_ratios(const helios::bench::SchedulerStudy& study) {
  // Group by the job's actual duration.
  std::array<double, 3> fifo_sum{};
  std::array<double, 3> qssf_sum{};
  std::array<double, 3> count{};
  const auto& jobs = study.eval.jobs();
  auto group_of = [&](std::size_t trace_index) {
    const auto d = jobs[trace_index].duration;
    return d < 15 * 60 ? 0 : d <= 6 * 3600 ? 1 : 2;
  };
  for (const auto& o : study.fifo.outcomes) {
    if (o.rejected) continue;
    const int g = group_of(o.trace_index);
    fifo_sum[static_cast<std::size_t>(g)] += static_cast<double>(o.queue_delay());
    ++count[static_cast<std::size_t>(g)];
  }
  for (const auto& o : study.qssf.outcomes) {
    if (o.rejected) continue;
    qssf_sum[static_cast<std::size_t>(group_of(o.trace_index))] +=
        static_cast<double>(o.queue_delay());
  }
  std::array<double, 3> ratio{};
  for (int g = 0; g < 3; ++g) {
    const auto gi = static_cast<std::size_t>(g);
    ratio[gi] = qssf_sum[gi] > 0.0 ? fifo_sum[gi] / qssf_sum[gi]
                : fifo_sum[gi] > 0.0 ? 1e9
                                     : 1.0;
  }
  return ratio;
}

}  // namespace

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;

  bench::print_header("Table 4",
                      "FIFO:QSSF queuing-delay ratio per job-duration group",
                      "higher = shorter delay under QSSF");

  TextTable table({"group", "Venus", "Earth", "Saturn", "Uranus", "Philly"});
  std::vector<std::array<double, 3>> all;
  for (const auto& tp : bench::helios_traces()) {
    const helios::trace::Trace& t = *tp;
    all.push_back(group_ratios(bench::run_scheduler_study(
        t, helios::from_civil(2020, 9, 1), helios::trace::helios_trace_end())));
  }
  all.push_back(group_ratios(bench::run_scheduler_study(
      bench::philly_trace(), helios::from_civil(2017, 10, 15),
      helios::from_civil(2017, 12, 1))));

  const char* groups[] = {"short-term (<15 min)", "middle-term (15 min~6 h)",
                          "long-term (>6 h)"};
  for (int g = 0; g < 3; ++g) {
    std::vector<std::string> row = {groups[g]};
    for (const auto& r : all) {
      row.push_back(TextTable::cell(r[static_cast<std::size_t>(g)], 2) + "x");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());

  bench::print_expectation("short-term jobs gain most", ">=9.2x in Helios",
                           "row 1");
  bench::print_expectation("long-term jobs still gain", "2.0~4.8x in Helios",
                           "row 3 (QSSF does not sacrifice long jobs)");
  return 0;
}
