#include <gtest/gtest.h>

#include <sstream>

#include "trace/cluster_config.h"
#include "trace/trace.h"

namespace helios::trace {
namespace {

Trace small_trace() {
  ClusterSpec spec;
  spec.name = "T";
  spec.vcs = {{"vcA", 2, 8}, {"vcB", 1, 8}};
  spec.nodes = 3;
  Trace t(spec);
  t.add(100, 50, 1, 6, "alice", "vcA", "train_a", JobState::kCompleted);
  t.add(50, 10, 0, 4, "bob", "vcB", "extract", JobState::kFailed);
  t.add(200, 900, 8, 48, "alice", "vcA", "train_b", JobState::kCanceled);
  return t;
}

TEST(Trace, AddInternsStrings) {
  const Trace t = small_trace();
  EXPECT_EQ(t.users().size(), 2u);
  EXPECT_EQ(t.vcs().size(), 2u);
  EXPECT_EQ(t.names().size(), 3u);
  EXPECT_EQ(t.user_name(t.jobs()[0]), "alice");
  EXPECT_EQ(t.user_name(t.jobs()[2]), "alice");
  EXPECT_EQ(t.jobs()[0].user, t.jobs()[2].user);  // same id
}

TEST(Trace, SortBySubmitTimeIsStable) {
  Trace t = small_trace();
  t.sort_by_submit_time();
  EXPECT_EQ(t.jobs()[0].submit_time, 50);
  EXPECT_EQ(t.jobs()[1].submit_time, 100);
  EXPECT_EQ(t.jobs()[2].submit_time, 200);
}

TEST(Trace, GpuTimeAndDerivedFields) {
  const Trace t = small_trace();
  const auto& j = t.jobs()[2];
  EXPECT_TRUE(j.is_gpu_job());
  EXPECT_DOUBLE_EQ(j.gpu_time(), 900.0 * 8);
  EXPECT_DOUBLE_EQ(j.cpu_time(), 900.0 * 48);
  EXPECT_EQ(j.end_time(), j.start_time + 900);
  EXPECT_EQ(j.queue_delay(), 0);  // start defaults to submit
  EXPECT_EQ(j.jct(), 900);
}

TEST(Trace, FiltersPreserveInterners) {
  const Trace t = small_trace();
  const Trace gpu = t.gpu_jobs();
  ASSERT_EQ(gpu.size(), 2u);
  EXPECT_EQ(gpu.user_name(gpu.jobs()[0]), "alice");
  const Trace cpu = t.cpu_jobs();
  ASSERT_EQ(cpu.size(), 1u);
  EXPECT_EQ(cpu.job_name(cpu.jobs()[0]), "extract");
  const Trace window = t.between(60, 150);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window.jobs()[0].submit_time, 100);
}

TEST(Trace, CsvRoundTrip) {
  Trace t = small_trace();
  t.jobs()[1].start_time = 75;  // exercise a non-default start
  std::stringstream ss;
  t.save_csv(ss);
  const Trace back = Trace::load_csv(ss, t.cluster());
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.jobs()[i].submit_time, t.jobs()[i].submit_time);
    EXPECT_EQ(back.jobs()[i].start_time, t.jobs()[i].start_time);
    EXPECT_EQ(back.jobs()[i].duration, t.jobs()[i].duration);
    EXPECT_EQ(back.jobs()[i].num_gpus, t.jobs()[i].num_gpus);
    EXPECT_EQ(back.jobs()[i].state, t.jobs()[i].state);
    EXPECT_EQ(back.user_name(back.jobs()[i]), t.user_name(t.jobs()[i]));
    EXPECT_EQ(back.job_name(back.jobs()[i]), t.job_name(t.jobs()[i]));
  }
}

TEST(Trace, CsvRejectsMalformedRows) {
  std::stringstream ss("header\n1,2,3\n");
  EXPECT_THROW(Trace::load_csv(ss, ClusterSpec{}), std::runtime_error);
}

TEST(JobState, StringRoundTrip) {
  for (auto s : {JobState::kCompleted, JobState::kCanceled, JobState::kFailed}) {
    EXPECT_EQ(job_state_from_string(to_string(s)), s);
  }
  EXPECT_EQ(job_state_from_string("node_fail"), JobState::kFailed);  // folded
}

// ---------------------------------------------------------------------------
// Cluster configurations
// ---------------------------------------------------------------------------

TEST(ClusterConfig, HeliosShapesMatchTable1) {
  const auto clusters = helios_clusters();
  ASSERT_EQ(clusters.size(), 4u);
  int nodes = 0;
  int gpus = 0;
  int vcs = 0;
  for (const auto& c : clusters) {
    nodes += c.nodes;
    gpus += c.total_gpus();
    vcs += c.vc_count();
    int vc_nodes = 0;
    for (const auto& vc : c.vcs) vc_nodes += vc.nodes;
    EXPECT_EQ(vc_nodes, c.nodes) << c.name;  // exact partition into VCs
  }
  EXPECT_EQ(nodes, 802);
  EXPECT_EQ(gpus, 6416);
  EXPECT_EQ(vcs, 105);
  EXPECT_EQ(helios_cluster("Earth").nodes, 143);
  EXPECT_THROW(helios_cluster("Pluto"), std::invalid_argument);
}

TEST(ClusterConfig, VcSizesAreSkewed) {
  // Figure 4: Earth has one ~26-node VC, the rest much smaller.
  const auto earth = helios_cluster("Earth");
  int largest = 0;
  for (const auto& vc : earth.vcs) largest = std::max(largest, vc.nodes);
  EXPECT_GE(largest * earth.gpus_per_node, 180);
  EXPECT_LE(largest * earth.gpus_per_node, 260);
}

TEST(ClusterConfig, DeterministicLayout) {
  const auto a = helios_cluster("Saturn");
  const auto b = helios_cluster("Saturn");
  ASSERT_EQ(a.vcs.size(), b.vcs.size());
  for (std::size_t i = 0; i < a.vcs.size(); ++i) {
    EXPECT_EQ(a.vcs[i].name, b.vcs[i].name);
    EXPECT_EQ(a.vcs[i].nodes, b.vcs[i].nodes);
  }
}

TEST(ClusterConfig, PhillyShape) {
  const auto p = philly_cluster();
  EXPECT_EQ(p.vc_count(), 14);
  EXPECT_EQ(p.gpus_per_node, 4);
  EXPECT_GT(p.total_gpus(), 1000);
}

TEST(ClusterConfig, ScaleClusterPreservesStructure) {
  const auto full = helios_cluster("Saturn");
  for (double f : {0.5, 0.25, 0.1}) {
    const auto scaled = scale_cluster(full, f);
    EXPECT_NEAR(scaled.nodes, full.nodes * f, full.nodes * f * 0.25 + 2)
        << "factor " << f;
    int vc_nodes = 0;
    for (const auto& vc : scaled.vcs) {
      EXPECT_GE(vc.nodes, 1);
      vc_nodes += vc.nodes;
    }
    EXPECT_EQ(vc_nodes, scaled.nodes);
    EXPECT_LE(scaled.vc_count(), full.vc_count());
  }
}

TEST(ClusterConfig, ScaleClusterIdentity) {
  const auto full = helios_cluster("Venus");
  const auto same = scale_cluster(full, 1.0);
  EXPECT_EQ(same.nodes, full.nodes);
  EXPECT_EQ(same.vc_count(), full.vc_count());
}

TEST(ClusterConfig, ScaleClusterTiny) {
  const auto scaled = scale_cluster(helios_cluster("Venus"), 0.01);
  EXPECT_GE(scaled.nodes, 1);
  EXPECT_GE(scaled.vc_count(), 1);
}

TEST(ClusterConfig, FindVc) {
  const auto c = helios_cluster("Venus");
  EXPECT_EQ(c.find_vc(c.vcs[3].name), 3);
  EXPECT_EQ(c.find_vc("nope"), -1);
}

TEST(ClusterConfig, TraceWindows) {
  EXPECT_LT(helios_trace_begin(), helios_trace_end());
  EXPECT_EQ(to_civil(helios_trace_begin()).month, 4);
  EXPECT_EQ(to_civil(philly_trace_begin()).year, 2017);
}

}  // namespace
}  // namespace helios::trace
