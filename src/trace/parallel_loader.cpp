#include "trace/parallel_loader.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/csv.h"
#include "common/thread_pool.h"

namespace helios::trace {

namespace {

/// Calls fn(line) for every line of `data`, excluding the '\n' terminator
/// (a final line without one is still delivered).
template <typename Fn>
void for_each_line(std::string_view data, Fn&& fn) {
  std::size_t lo = 0;
  while (lo < data.size()) {
    const auto nl = data.find('\n', lo);
    const auto hi = nl == std::string_view::npos ? data.size() : nl;
    fn(data.substr(lo, hi - lo));
    lo = nl == std::string_view::npos ? data.size() : nl + 1;
  }
}

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> ParallelLoader::split_chunks(
    std::string_view data, std::size_t target_chunks,
    std::size_t min_chunk_bytes) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  if (data.empty()) return chunks;
  target_chunks = std::max<std::size_t>(1, target_chunks);
  min_chunk_bytes = std::max<std::size_t>(1, min_chunk_bytes);
  const std::size_t target = std::max(
      min_chunk_bytes, (data.size() + target_chunks - 1) / target_chunks);
  std::size_t lo = 0;
  while (lo < data.size()) {
    const std::size_t candidate = lo + target;
    std::size_t hi;
    if (candidate >= data.size()) {
      hi = data.size();
    } else {
      // Extend to just past the next newline so no line straddles chunks.
      // find from candidate-1 keeps an already-aligned boundary in place.
      const auto nl = data.find('\n', candidate - 1);
      hi = nl == std::string_view::npos ? data.size() : nl + 1;
    }
    chunks.emplace_back(lo, hi);
    lo = hi;
  }
  return chunks;
}

Trace ParallelLoader::load(std::string_view csv, ClusterSpec cluster) const {
  // Skip leading blank lines, then the header row.
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const auto nl = csv.find('\n', pos);
    const auto end = nl == std::string_view::npos ? csv.size() : nl;
    const std::string_view line = csv.substr(pos, end - pos);
    pos = nl == std::string_view::npos ? csv.size() : nl + 1;
    if (!CsvReader::is_blank_line(line)) break;  // consumed the header
  }
  const std::string_view body = csv.substr(pos);

  Trace out(std::move(cluster));
  const std::size_t threads =
      opts_.threads != 0 ? opts_.threads : global_pool().thread_count();
  const auto chunks = split_chunks(body, threads, opts_.min_chunk_bytes);

  if (threads <= 1 || chunks.size() <= 1) {
    for_each_line(body, [&out](std::string_view line) {
      out.append_csv_row(line);
    });
  } else {
    // Parse each chunk into a shard with its own interners, then merge in
    // input order. Ids come out identical to a serial load (see header).
    std::vector<Trace> shards(chunks.size());
    parallel_run_chunks(chunks, [&shards, body](std::size_t c, std::size_t lo,
                                                std::size_t hi) {
      Trace& shard = shards[c];
      for_each_line(body.substr(lo, hi - lo), [&shard](std::string_view line) {
        shard.append_csv_row(line);
      });
    });
    for (const auto& shard : shards) out.append(shard);
  }

  if (opts_.sort_by_submit_time) out.sort_by_submit_time();
  return out;
}

Trace ParallelLoader::load(std::istream& in, ClusterSpec cluster) const {
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = std::move(buf).str();
  return load(std::string_view(data), std::move(cluster));
}

Trace ParallelLoader::load_file(const std::string& path,
                                ClusterSpec cluster) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ParallelLoader: cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) {  // not seekable (pipe, device): fall back to stream slurp
    in.clear();
    in.seekg(0, std::ios::beg);
    return load(in, std::move(cluster));
  }
  in.seekg(0, std::ios::beg);
  std::string data(static_cast<std::size_t>(size), '\0');
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  if (static_cast<std::size_t>(in.gcount()) != data.size()) {
    throw std::runtime_error("ParallelLoader: short read on " + path);
  }
  return load(std::string_view(data), std::move(cluster));
}

}  // namespace helios::trace
