// google-benchmark microbenchmarks for the trace generator and the
// discrete-event simulator (jobs scheduled per second of wall time).
//
// The BM_Simulate* benches run the VC-sharded simulator (the default
// common::ExecMode::kParallel) over a cached multi-VC Venus trace at scale 0.1;
// BM_SimulateSerial* runs the retained serial reference for comparison.
// main() first asserts sharded-vs-serial SimResult parity for every policy —
// a perf run against a broken simulator must fail loudly, not report a
// meaningless speedup. See BENCH_sim.json for recorded before/after numbers.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace {

using namespace helios;

void BM_TraceGeneration(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 1000.0;
  std::size_t jobs = 0;
  for (auto _ : state) {
    auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 42,
                                              scale);
    const auto t = trace::SyntheticTraceGenerator(cfg).generate();
    jobs = t.size();
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_TraceGeneration)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

const trace::Trace& cached_trace() {
  static const trace::Trace t = [] {
    auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 42,
                                              0.1);
    return trace::SyntheticTraceGenerator(cfg).generate();
  }();
  return t;
}

sim::SimConfig policy_config(sim::SchedulerPolicy policy,
                             helios::common::ExecMode execution) {
  sim::SimConfig cfg;
  cfg.policy = policy;
  cfg.execution = execution;
  if (policy == sim::SchedulerPolicy::kQssf) {
    cfg.priority_fn = [](const trace::JobRecord& j) {
      return static_cast<double>(j.duration) * j.num_gpus;
    };
  }
  return cfg;
}

void run_policy(benchmark::State& state, sim::SchedulerPolicy policy,
                helios::common::ExecMode execution) {
  const auto& t = cached_trace();
  const auto cfg = policy_config(policy, execution);
  std::size_t jobs = 0;
  for (auto _ : state) {
    sim::ClusterSimulator sim(t.cluster(), cfg);
    const auto r = sim.run(t);
    jobs = r.outcomes.size();
    benchmark::DoNotOptimize(r.avg_jct);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}

void BM_SimulateFifo(benchmark::State& state) {
  run_policy(state, sim::SchedulerPolicy::kFifo, helios::common::ExecMode::kParallel);
}
void BM_SimulateSjf(benchmark::State& state) {
  run_policy(state, sim::SchedulerPolicy::kSjf, helios::common::ExecMode::kParallel);
}
void BM_SimulateSrtf(benchmark::State& state) {
  run_policy(state, sim::SchedulerPolicy::kSrtf, helios::common::ExecMode::kParallel);
}
void BM_SimulateQssf(benchmark::State& state) {
  run_policy(state, sim::SchedulerPolicy::kQssf, helios::common::ExecMode::kParallel);
}
BENCHMARK(BM_SimulateFifo)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateSjf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateSrtf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateQssf)->Unit(benchmark::kMillisecond);

void BM_SimulateSerialFifo(benchmark::State& state) {
  run_policy(state, sim::SchedulerPolicy::kFifo, helios::common::ExecMode::kSerial);
}
void BM_SimulateSerialSjf(benchmark::State& state) {
  run_policy(state, sim::SchedulerPolicy::kSjf, helios::common::ExecMode::kSerial);
}
void BM_SimulateSerialSrtf(benchmark::State& state) {
  run_policy(state, sim::SchedulerPolicy::kSrtf, helios::common::ExecMode::kSerial);
}
void BM_SimulateSerialQssf(benchmark::State& state) {
  run_policy(state, sim::SchedulerPolicy::kQssf, helios::common::ExecMode::kSerial);
}
BENCHMARK(BM_SimulateSerialFifo)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateSerialSjf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateSerialSrtf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateSerialQssf)->Unit(benchmark::kMillisecond);

/// Hard parity gate: the sharded simulator must reproduce the serial
/// reference exactly on the benchmark workload before any timing runs.
void verify_sharded_parity() {
  const auto& t = cached_trace();
  for (const auto policy :
       {sim::SchedulerPolicy::kFifo, sim::SchedulerPolicy::kSjf,
        sim::SchedulerPolicy::kSrtf, sim::SchedulerPolicy::kQssf}) {
    const auto serial =
        sim::ClusterSimulator(t.cluster(),
                              policy_config(policy, helios::common::ExecMode::kSerial))
            .run(t);
    const auto sharded =
        sim::ClusterSimulator(
            t.cluster(), policy_config(policy, helios::common::ExecMode::kParallel))
            .run(t);
    bool ok = serial.outcomes.size() == sharded.outcomes.size() &&
              serial.avg_jct == sharded.avg_jct &&
              serial.avg_queue_delay == sharded.avg_queue_delay &&
              serial.preemptions == sharded.preemptions &&
              serial.rejected_jobs == sharded.rejected_jobs &&
              serial.busy_gpus.values == sharded.busy_gpus.values &&
              serial.busy_nodes.values == sharded.busy_nodes.values;
    for (std::size_t i = 0; ok && i < serial.outcomes.size(); ++i) {
      ok = serial.outcomes[i].start == sharded.outcomes[i].start &&
           serial.outcomes[i].end == sharded.outcomes[i].end &&
           serial.outcomes[i].rejected == sharded.outcomes[i].rejected;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "FATAL: sharded simulator diverges from serial reference "
                   "under %.*s\n",
                   static_cast<int>(sim::to_string(policy).size()),
                   sim::to_string(policy).data());
      std::exit(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  verify_sharded_parity();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
