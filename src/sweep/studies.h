// The paper's two evaluation protocols as reusable library studies.
//
// These used to live in bench/bench_common.* where only bench binaries could
// reach them; they are library code now so tests, examples, and services can
// run the same protocols. bench/bench_common.h re-exports them under
// helios::bench for the fig/table harnesses.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ces_service.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace helios::sweep {

/// One scheduler-comparison experiment (§4.2.3 protocol): train QSSF on
/// [trace begin, train_end), evaluate all four policies on GPU jobs
/// submitted in [train_end, eval_end). The four policy runs execute as one
/// ScenarioEngine grid over the shared evaluation slice (the QSSF cell's
/// priority function is the trained evaluator), so the study is itself a
/// four-cell sweep; each cell is bit-identical to a standalone
/// ClusterSimulator::run.
struct SchedulerStudy {
  trace::Trace eval;  ///< evaluation window slice (GPU + CPU jobs)
  sim::SimResult fifo;
  sim::SimResult sjf;
  sim::SimResult srtf;
  sim::SimResult qssf;
  std::vector<double> qssf_predicted_gpu_time;  ///< aligned with actual below
  std::vector<double> qssf_actual_gpu_time;
};

[[nodiscard]] SchedulerStudy run_scheduler_study(const trace::Trace& full,
                                                 UnixTime train_end,
                                                 UnixTime eval_end);

/// One CES experiment (§4.3.3 protocol): fit a GBDT node forecaster on the
/// FIFO-operated running-nodes series before eval_begin, replay
/// [eval_begin, eval_end) under Algorithm 2 (and optionally vanilla DRS).
struct CesStudy {
  core::CesResult ces;
  core::CesResult vanilla;
};

[[nodiscard]] CesStudy run_ces_study(const trace::Trace& operated,
                                     UnixTime eval_begin, UnixTime eval_end,
                                     bool include_vanilla = true);

/// JCT values (seconds) from a sim result, excluding rejected jobs.
[[nodiscard]] std::vector<double> jct_values(const sim::SimResult& r);

/// Queue-delay values (seconds) from a sim result.
[[nodiscard]] std::vector<double> queue_delay_values(const sim::SimResult& r);

}  // namespace helios::sweep
