// Forecast-model comparison for the CES service (§4.3.2): the paper tried
// GBDT against classical models (ARIMA, Prophet) and found GBDT best with
// ~3.6% SMAPE on Earth. Rolling-origin backtest of the running-nodes series:
// 3-hour-ahead prediction, Apr-Aug train, September evaluation.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "common/text_table.h"
#include "forecast/models.h"
#include "stats/metrics.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace forecast = helios::forecast;
  namespace sim = helios::sim;

  bench::print_header("Ablation: forecast models",
                      "3h-ahead node-demand forecasting on Earth",
                      "rolling-origin backtest over September");

  const auto& traces = bench::operated_helios_traces();
  const auto it = std::find_if(traces.begin(), traces.end(), [](const auto& t) {
    return t->cluster().name == "Earth";
  });
  sim::SimConfig cfg;
  cfg.backfill = true;
  const auto run = sim::ClusterSimulator((*it)->cluster(), cfg).run(**it);
  // Clip to the published window: past trace end the cluster drains out
  // (no new arrivals), which is not a regime the service ever forecasts.
  const auto series = run.busy_nodes.between(run.busy_nodes.begin,
                                             helios::trace::helios_trace_end());
  const std::size_t train_n = series.index_of(helios::from_civil(2020, 9, 1));
  const int horizon = 18;  // 3 h at 10-min samples
  const std::size_t stride = 6;  // hourly origins

  std::vector<std::unique_ptr<forecast::Forecaster>> models;
  models.push_back(std::make_unique<forecast::GBDTForecaster>());
  models.push_back(std::make_unique<forecast::ARForecaster>(36, 1));
  models.push_back(std::make_unique<forecast::HoltWintersForecaster>(144));
  models.push_back(std::make_unique<forecast::SeasonalNaiveForecaster>(144));

  // All four models fit concurrently on the shared pool; each backtest then
  // parallelizes over its rolling origins (both bit-identical to serial).
  const auto train = series.slice(0, train_n);
  std::vector<forecast::Forecaster*> model_ptrs;
  for (auto& m : models) model_ptrs.push_back(m.get());
  forecast::fit_forecasters(model_ptrs, train);

  TextTable table({"model", "SMAPE (%)", "MAE (nodes)", "RMSE (nodes)"});
  double best = 1e9;
  std::string best_name;
  for (auto& m : models) {
    const auto bt = forecast::backtest(*m, series, train_n, horizon, stride);
    const double s = helios::stats::smape(bt.actual, bt.predicted);
    table.add_row({m->name(), TextTable::cell(s, 2),
                   TextTable::cell(helios::stats::mae(bt.actual, bt.predicted), 2),
                   TextTable::cell(helios::stats::rmse(bt.actual, bt.predicted), 2)});
    if (s < best) {
      best = s;
      best_name = m->name();
    }
  }
  std::printf("%s\n", table.str().c_str());

  bench::print_expectation("GBDT performs best", "beats ARIMA/Prophet-like",
                           "winner: " + best_name);
  bench::print_expectation("GBDT error level", "~3.6% SMAPE (Earth, paper)",
                           TextTable::cell(best, 2) + "%");
  return 0;
}
