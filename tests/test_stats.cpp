#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "stats/correlation.h"
#include "stats/distribution.h"
#include "stats/ecdf.h"
#include "stats/histogram.h"
#include "stats/metrics.h"
#include "stats/summary.h"

namespace helios::stats {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(3);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 7.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Quantile, InterpolatesLikeNumpy) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
}

TEST(Quantile, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{7.0}, 0.99), 7.0);
}

TEST(BoxStats, MatchesPaperDefinition) {
  // 1..100 plus one far outlier; whiskers clamp at 1.5 IQR.
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  v.push_back(1000.0);
  const BoxStats b = box_stats(v);
  EXPECT_NEAR(b.median, 51.0, 1e-9);
  EXPECT_GT(b.q3, b.q1);
  EXPECT_LT(b.whisker_hi, 1000.0);  // outlier excluded
  EXPECT_DOUBLE_EQ(b.whisker_lo, 1.0);
  EXPECT_EQ(b.count, 101);
}

TEST(Ecdf, EvaluatesFractions) {
  Ecdf e({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(e(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e(3.0), 0.6);
  EXPECT_DOUBLE_EQ(e(5.0), 1.0);
  EXPECT_DOUBLE_EQ(e(100.0), 1.0);
}

TEST(Ecdf, IsMonotone) {
  Rng rng(11);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.lognormal(5.0, 2.0));
  Ecdf e(v);
  double prev = 0.0;
  for (double x : log_space_points(0.1, 1e6, 200)) {
    const double f = e(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Ecdf, InverseRoundTrip) {
  Ecdf e({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(e.inverse(0.25), 10.0);
  EXPECT_DOUBLE_EQ(e.inverse(0.5), 20.0);
  EXPECT_DOUBLE_EQ(e.inverse(1.0), 40.0);
}

TEST(Ecdf, KsStatisticZeroForIdentical) {
  std::vector<double> v = {1.0, 5.0, 9.0, 2.0};
  EXPECT_DOUBLE_EQ(ks_statistic(Ecdf(v), Ecdf(v)), 0.0);
  EXPECT_GT(ks_statistic(Ecdf({1.0, 2.0}), Ecdf({10.0, 20.0})), 0.9);
}

TEST(LogSpacePoints, EndpointsAndMonotone) {
  const auto pts = log_space_points(1.0, 1e6, 7);
  ASSERT_EQ(pts.size(), 7u);
  EXPECT_NEAR(pts.front(), 1.0, 1e-9);
  EXPECT_NEAR(pts.back(), 1e6, 1e-3);
  for (std::size_t i = 1; i < pts.size(); ++i) EXPECT_GT(pts[i], pts[i - 1]);
}

TEST(Histogram, BinningAndFractions) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(5.6);
  h.add(99.0);  // clamped into last bucket
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(5), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(5), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(LogHistogram, CoversDecades) {
  LogHistogram h(1.0, 1e6, 6);
  h.add(3.0);      // decade 0
  h.add(300.0);    // decade 2
  h.add(3e5);      // decade 5
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.count(5), 1.0);
  EXPECT_NEAR(h.bin_lo(1), 10.0, 1e-6);
  EXPECT_NEAR(h.bin_hi(1), 100.0, 1e-4);
}

TEST(Metrics, SmapeBounds) {
  const std::vector<double> a = {100.0, 100.0};
  const std::vector<double> p = {100.0, 0.0};
  EXPECT_DOUBLE_EQ(smape(a, a), 0.0);
  EXPECT_DOUBLE_EQ(smape(a, p), 100.0);  // one exact, one maximally wrong
}

TEST(Metrics, MaeRmseMape) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> p = {2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(mae(a, p), 1.0);
  EXPECT_NEAR(rmse(a, p), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(mape(a, p), (100.0 + 0.0 + 200.0 / 3.0) / 3.0, 1e-9);
}

TEST(Metrics, R2PerfectAndMean) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r2(a, a), 1.0);
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_DOUBLE_EQ(r2(a, mean_pred), 0.0);
}

TEST(Correlation, PearsonKnownValues) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0, 10.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> yneg(y.rbegin(), y.rend());
  EXPECT_NEAR(pearson(x, yneg), -1.0, 1e-12);
}

TEST(Correlation, SpearmanMonotoneNonlinear) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.2 * i));  // monotone but nonlinear
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 0.99);  // pearson penalises nonlinearity
}

TEST(Distribution, NormalCdfQuantileRoundTrip) {
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-6);
  }
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
}

TEST(Distribution, LognormalFitRecoversParams) {
  Rng rng(13);
  std::vector<double> v;
  for (int i = 0; i < 100000; ++i) v.push_back(rng.lognormal(2.0, 0.7));
  const auto fit = fit_lognormal(v);
  EXPECT_NEAR(fit.mu, 2.0, 0.02);
  EXPECT_NEAR(fit.sigma, 0.7, 0.02);
  EXPECT_NEAR(fit.median(), std::exp(2.0), 0.3);
}

TEST(Distribution, FromMedianMean) {
  const auto p = lognormal_from_median_mean(206.0, 6652.0);
  EXPECT_NEAR(p.median(), 206.0, 1e-9);
  EXPECT_NEAR(p.mean(), 6652.0, 1.0);
}

}  // namespace
}  // namespace helios::stats
