// Parallel trace ingestion.
//
// The paper's analyses replay multi-month traces with millions of jobs;
// loading them from CSV dominated end-to-end figure reproduction time. The
// loader splits the input into line-aligned byte chunks, parses each chunk on
// helios::ThreadPool into a shard Trace with its own StringInterners, then
// merges shards in input order, remapping interned ids. Because shards are
// merged in order and new strings are interned in first-occurrence order, the
// result is byte-identical to Trace::load_csv — same job order, same ids.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/trace.h"

namespace helios::trace {

struct LoadOptions {
  /// Upper bound on parse concurrency and the chunk-count target.
  /// 0 means "size to the machine" (the global pool's thread count);
  /// 1 forces the serial path.
  std::size_t threads = 0;
  /// Chunks are never smaller than this, so tiny inputs parse serially
  /// instead of paying fan-out overhead.
  std::size_t min_chunk_bytes = 1 << 20;
  /// Stable-sort the merged trace by submit time (scheduler replay order).
  bool sort_by_submit_time = false;
};

class ParallelLoader {
 public:
  explicit ParallelLoader(LoadOptions opts = {}) : opts_(opts) {}

  /// Load a whole trace CSV (header row + records) held in memory.
  [[nodiscard]] Trace load(std::string_view csv, ClusterSpec cluster) const;

  /// Slurps the stream, then parses in parallel.
  [[nodiscard]] Trace load(std::istream& in, ClusterSpec cluster) const;

  /// Reads the file in one shot, then parses in parallel.
  [[nodiscard]] Trace load_file(const std::string& path,
                                ClusterSpec cluster) const;

  /// Split `data` into up to `target_chunks` line-aligned [begin, end) byte
  /// ranges of at least `min_chunk_bytes` each: every range starts at a line
  /// start and ends just past a '\n' (or at data.size() for a final line
  /// with no trailing newline). Ranges are contiguous and cover all of
  /// `data`. Exposed for the chunk-boundary tests.
  [[nodiscard]] static std::vector<std::pair<std::size_t, std::size_t>>
  split_chunks(std::string_view data, std::size_t target_chunks,
               std::size_t min_chunk_bytes);

 private:
  LoadOptions opts_;
};

}  // namespace helios::trace
