// svc::PredictionServer determinism suite (smoke):
//
//  * incremental feed — the server's priority log over a streamed September,
//    however the rows are batched, must be bit-identical to the batch
//    OnlinePriorityEvaluator over the same jobs;
//  * kill / restore — loading the latest checkpoint into a fresh server and
//    re-feeding the remaining bytes must land on the identical final log and
//    state;
//  * frozen queries — Snapshot::query must reproduce the Trace-based
//    priority path bitwise for jobs the service could price;
//  * concurrent queries — snapshot reads race ingest without synchronization
//    (the ASan job of ci.sh runs this suite);
//  * CsvTailer — header skip, partial-line handling, checkpoint resume.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <unistd.h>
#include <vector>

#include "common/exec_mode.h"
#include "core/qssf_service.h"
#include "forecast/models.h"
#include "serialize/binary.h"
#include "svc/csv_tailer.h"
#include "svc/prediction_server.h"
#include "trace/synthetic.h"

namespace helios::svc {
namespace {

// The ExecMode unification is complete: the per-layer compat aliases are
// gone, and the one enum has exactly the two contractual values.
static_assert(common::ExecMode::kSerial != common::ExecMode::kParallel);

/// Deterministic workload: seed-42 Venus, April-August train / September
/// stream — the same split the batch pipeline evaluates.
struct Fixture {
  trace::Trace train;
  trace::Trace eval;
  core::QssfService fitted;
  std::string rows_csv;  // September as data rows (no header)

  explicit Fixture(double scale = 0.02) {
    auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"),
                                              /*seed=*/42, scale);
    const trace::Trace t = trace::SyntheticTraceGenerator(gen).generate();
    train = t.between(trace::helios_trace_begin(), from_civil(2020, 9, 1));
    eval = t.between(from_civil(2020, 9, 1), trace::helios_trace_end());
    core::QssfConfig cfg;
    cfg.gbdt.n_trees = 10;
    fitted = core::QssfService(cfg);
    fitted.fit(train);
    std::ostringstream rows;
    eval.save_csv_rows(rows, 0, eval.size());
    rows_csv = std::move(rows).str();
  }

  /// The batch reference: serial evaluator priorities in stream order.
  [[nodiscard]] std::vector<PricedJob> batch_log() const {
    core::QssfService svc = fitted;
    core::EvalOptions opts;
    opts.execution = common::ExecMode::kSerial;
    core::OnlinePriorityEvaluator evaluator(svc, eval, opts);
    std::vector<PricedJob> log;
    for (const auto& j : eval.jobs()) {
      if (!j.is_gpu_job()) continue;
      log.push_back({j.job_id, evaluator.priority_of(j)});
    }
    return log;
  }

  /// Split the September rows into irregular line-aligned batches.
  [[nodiscard]] std::vector<std::string> batches(std::size_t base) const {
    std::vector<std::string> out;
    std::size_t lo = 0;
    std::size_t lines_in_batch = 0;
    std::size_t target = 1;
    for (std::size_t pos = 0; pos < rows_csv.size(); ++pos) {
      if (rows_csv[pos] != '\n') continue;
      if (++lines_in_batch < target) continue;
      out.push_back(rows_csv.substr(lo, pos + 1 - lo));
      lo = pos + 1;
      lines_in_batch = 0;
      target = target % (2 * base) + base / 2 + 1;  // vary the batch size
    }
    if (lo < rows_csv.size()) out.push_back(rows_csv.substr(lo));
    return out;
  }
};

TEST(SvcServer, IncrementalFeedMatchesBatchBitwise) {
  const Fixture fx;
  const std::vector<PricedJob> want = fx.batch_log();
  ASSERT_GT(want.size(), 100u);

  PredictionServer server(fx.fitted, fx.train);
  for (const std::string& batch : fx.batches(64)) server.ingest_csv(batch);

  ASSERT_EQ(server.priority_log().size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(server.priority_log()[i], want[i]) << "job #" << i;
  }
  EXPECT_EQ(server.rows_ingested(), fx.eval.size());
  EXPECT_EQ(server.bytes_ingested(), fx.rows_csv.size());
  // The snapshot reflects the fully fed state.
  const auto snap = server.snapshot();
  EXPECT_EQ(snap->gpu_jobs_ingested(), want.size());
}

TEST(SvcServer, LargeSingleBlockShardedParseMatchesBatchBitwise) {
  // One ingest_csv call with the whole month and a tiny parallel_parse_bytes
  // forces the ParallelLoader sharded-parse branch of append_rows whenever
  // the pool is wider than one thread (run with HELIOS_THREADS=8 on 1-core
  // machines); ids — and therefore priorities — must not depend on it.
  const Fixture fx;
  const std::vector<PricedJob> want = fx.batch_log();
  ServerConfig cfg;
  cfg.parallel_parse_bytes = 1024;
  PredictionServer server(fx.fitted, fx.train, cfg);
  server.ingest_csv(fx.rows_csv);
  ASSERT_EQ(server.priority_log().size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(server.priority_log()[i], want[i]) << "job #" << i;
  }
  EXPECT_EQ(server.rows_ingested(), fx.eval.size());
}

TEST(SvcServer, KillAfterCheckpointRestoresAndResumesBitIdentical) {
  const Fixture fx;
  const std::string prefix =
      testing::TempDir() + "helios_svc_ck_" + std::to_string(::getpid());
  ServerConfig cfg;
  cfg.checkpoint_every = 150;
  cfg.checkpoint_prefix = prefix;

  // Uninterrupted run = the reference.
  PredictionServer full(fx.fitted, fx.train, cfg);
  for (const std::string& batch : fx.batches(64)) full.ingest_csv(batch);
  ASSERT_GE(full.checkpoints_written(), 2u);

  // Interrupted run: stop ingesting after the first checkpoint lands.
  ServerConfig cfg2 = cfg;
  cfg2.checkpoint_prefix = prefix + "_b";
  PredictionServer killed(fx.fitted, fx.train, cfg2);
  for (const std::string& batch : fx.batches(64)) {
    killed.ingest_csv(batch);
    if (killed.checkpoints_written() >= 1) break;
  }
  ASSERT_LT(killed.gpu_jobs_ingested(), full.gpu_jobs_ingested());
  const std::string latest =
      cfg2.checkpoint_prefix + "." +
      std::to_string(killed.checkpoints_written() - 1);

  // Restore into a fresh server over the same context and feed the bytes the
  // checkpoint had not seen.
  PredictionServer restored(fx.fitted, fx.train, cfg2);
  serialize::load_file(latest, restored);
  EXPECT_EQ(restored.checkpoints_written(), killed.checkpoints_written());
  const std::size_t resume = static_cast<std::size_t>(restored.bytes_ingested());
  ASSERT_LT(resume, fx.rows_csv.size());
  restored.ingest_csv(std::string_view(fx.rows_csv).substr(resume));

  ASSERT_EQ(restored.priority_log().size(), full.priority_log().size());
  for (std::size_t i = 0; i < full.priority_log().size(); ++i) {
    ASSERT_EQ(restored.priority_log()[i], full.priority_log()[i])
        << "job #" << i;
  }
  EXPECT_EQ(restored.rows_ingested(), full.rows_ingested());
  EXPECT_TRUE(restored.stream().contents_equal(full.stream()));

  // A checkpoint against a different context must be refused.
  PredictionServer other(fx.fitted, fx.eval, cfg2);
  EXPECT_THROW(serialize::load_file(latest, other), serialize::Error);
  // As must loading into a server that already ingested rows.
  EXPECT_THROW(serialize::load_file(latest, restored), serialize::Error);

  for (std::uint64_t i = 0; i < full.checkpoints_written(); ++i) {
    std::remove((prefix + "." + std::to_string(i)).c_str());
  }
  for (std::uint64_t i = 0; i < restored.checkpoints_written(); ++i) {
    std::remove((cfg2.checkpoint_prefix + "." + std::to_string(i)).c_str());
  }
}

TEST(SvcServer, FrozenQueryMatchesTracePathBitwise) {
  const Fixture fx;
  PredictionServer server(fx.fitted, fx.train);
  const auto snap = server.snapshot();
  std::size_t checked = 0;
  for (const auto& j : fx.eval.jobs()) {
    if (!j.is_gpu_job()) continue;
    QueryRequest req;
    req.user = fx.eval.user_name(j);
    req.vc = fx.eval.vc_name(j);
    req.job_name = fx.eval.job_name(j);
    req.num_gpus = j.num_gpus;
    req.num_cpus = j.num_cpus;
    req.submit_time = j.submit_time;
    // Fresh copy per job: the mutating path memoizes name buckets, and the
    // frozen path must equal the first mutating call on identical state.
    core::QssfService mutating = fx.fitted;
    const QueryResult got = snap->query(req);
    ASSERT_EQ(got.priority, mutating.priority(fx.eval, j)) << "job " << j.job_id;
    ASSERT_EQ(got.expected_duration, mutating.predict_duration(fx.eval, j));
    if (++checked >= 200) break;
  }
  ASSERT_EQ(checked, 200u);
}

TEST(SvcServer, ConcurrentQueriesDuringIngest) {
  const Fixture fx;
  ServerConfig cfg;
  cfg.publish_every = 64;
  PredictionServer server(fx.fitted, fx.train, cfg);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&server, &stop, &queries, r] {
      QueryRequest req;
      req.user = "user" + std::to_string(r);
      req.vc = "vc0";
      req.job_name = "train_model_" + std::to_string(r);
      req.num_gpus = 1 + r;
      req.submit_time = from_civil(2020, 9, 10);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = server.snapshot();
        const QueryResult res = snap->query(req);
        ASSERT_GT(res.priority, 0.0);
        ASSERT_GE(res.priority,
                  static_cast<double>(req.num_gpus) * res.expected_duration *
                      0.999);
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (const std::string& batch : fx.batches(32)) server.ingest_csv(batch);
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(server.priority_log().size(), fx.batch_log().size());
}

TEST(CsvTailer, HeaderSkipPartialLinesAndResume) {
  const std::string path = testing::TempDir() + "helios_tailer_" +
                           std::to_string(::getpid()) + ".csv";
  std::remove(path.c_str());

  CsvTailer tailer(path);
  EXPECT_EQ(tailer.poll(), "");  // file does not exist yet

  std::ofstream out(path, std::ios::binary);
  out << "job_id,submit_time\n";
  out.flush();
  EXPECT_EQ(tailer.poll(), "");  // header only: nothing for the caller

  out << "1,100\n2,200\n3,3";  // third row still partial
  out.flush();
  EXPECT_EQ(tailer.poll(), "1,100\n2,200\n");
  EXPECT_EQ(tailer.poll(), "");  // partial line stays unconsumed

  out << "00\n";
  out.flush();
  EXPECT_EQ(tailer.poll(), "3,300\n");
  EXPECT_EQ(tailer.data_bytes(), 18u);

  // Resume as a checkpoint restore would: skip the first row's 6 bytes.
  CsvTailer resumed(path);
  resumed.resume_at_data_bytes(6);
  EXPECT_EQ(resumed.poll(), "2,200\n3,300\n");
  EXPECT_EQ(resumed.data_bytes(), tailer.data_bytes());
  EXPECT_EQ(resumed.offset(), tailer.offset());

  // A resume point past the file is refused.
  CsvTailer bad(path);
  EXPECT_THROW(bad.resume_at_data_bytes(1000), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace helios::svc
