// QSSF ablations (§4.2 design choices):
//   1. merge coefficient λ sweep — rolling-only (λ=1) vs GBDT-only (λ=0) vs
//      merged estimates, measured by prediction quality and end-to-end JCT;
//   2. prediction quality of the deployed configuration (Spearman rank
//      correlation between predicted and actual GPU time — ordering is what
//      the scheduler consumes).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/text_table.h"
#include "core/qssf_service.h"
#include "stats/correlation.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace core = helios::core;
  namespace sim = helios::sim;

  bench::print_header("Ablation: QSSF",
                      "λ merge-coefficient sweep on Venus (September)");

  const auto& traces = bench::helios_traces();
  const auto it = std::find_if(traces.begin(), traces.end(), [](const auto& t) {
    return t->cluster().name == "Venus";
  });
  const auto train = (*it)->between(0, helios::from_civil(2020, 9, 1));
  const auto eval =
      (*it)->between(helios::from_civil(2020, 9, 1), helios::trace::helios_trace_end());

  sim::SimConfig fifo_cfg;
  const auto fifo = sim::ClusterSimulator(eval.cluster(), fifo_cfg).run(eval);

  TextTable table({"lambda", "spearman(pred, actual)", "avg JCT (s)",
                   "avg queuing (s)", "JCT vs FIFO"});
  for (double lambda : {0.0, 0.25, 0.45, 0.75, 1.0}) {
    core::QssfConfig cfg;
    cfg.lambda = lambda;
    core::QssfService svc(cfg);
    svc.fit(train);
    core::OnlinePriorityEvaluator evaluator(svc, eval);
    const double rho = helios::stats::spearman(evaluator.predicted_gpu_time(),
                                               evaluator.actual_gpu_time());
    sim::SimConfig sc;
    sc.policy = sim::SchedulerPolicy::kQssf;
    sc.priority_fn = evaluator.as_priority_fn();
    const auto r = sim::ClusterSimulator(eval.cluster(), sc).run(eval);
    table.add_row({TextTable::cell(lambda, 2), TextTable::cell(rho, 3),
                   TextTable::cell(r.avg_jct, 0),
                   TextTable::cell(r.avg_queue_delay, 0),
                   TextTable::cell(fifo.avg_jct / std::max(1.0, r.avg_jct), 2) + "x"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("FIFO reference: avg JCT %.0f s, avg queuing %.0f s\n\n",
              fifo.avg_jct, fifo.avg_queue_delay);

  // Limited-information variant (paper §6.2 future work): no job names.
  {
    core::QssfConfig cfg;
    cfg.use_names = false;
    core::QssfService svc(cfg);
    svc.fit(train);
    core::OnlinePriorityEvaluator evaluator(svc, eval);
    const double rho = helios::stats::spearman(evaluator.predicted_gpu_time(),
                                               evaluator.actual_gpu_time());
    sim::SimConfig sc;
    sc.policy = sim::SchedulerPolicy::kQssf;
    sc.priority_fn = evaluator.as_priority_fn();
    const auto r = sim::ClusterSimulator(eval.cluster(), sc).run(eval);
    std::printf("no-names QSSF (user/VC/demand/calendar only): "
                "spearman %.3f, avg JCT %.0f s (%.2fx vs FIFO)\n\n",
                rho, r.avg_jct, fifo.avg_jct / std::max(1.0, r.avg_jct));
  }

  bench::print_expectation("merged estimator is competitive",
                           "paper merges both (λ in (0,1))",
                           "compare middle rows against extremes");
  bench::print_expectation("name features help but are not essential",
                           "future-work robustness", "see no-names row");
  return 0;
}
