#include "trace/cluster_config.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/rng.h"

namespace helios::trace {

namespace {

std::uint64_t name_seed(const std::string& name) {
  // FNV-1a so VC layouts are stable across runs and platforms.
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string random_vc_name(Rng& rng) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  std::string s = "vc";
  for (int i = 0; i < 3; ++i) {
    s += kAlphabet[rng.uniform_index(sizeof(kAlphabet) - 1)];
  }
  return s;
}

/// Splits `total_nodes` across `vc_count` VCs with a Zipf-like skew: the
/// largest VC gets ~total/5 of the nodes, most VCs get a handful. This
/// matches Figure 4's description of Earth (one 208-GPU VC, others 32-96).
std::vector<VCSpec> make_vcs(const std::string& cluster, int total_nodes,
                             int vc_count, int gpus_per_node) {
  Rng rng(name_seed(cluster));
  std::vector<double> weights(static_cast<std::size_t>(vc_count));
  for (int i = 0; i < vc_count; ++i) {
    weights[static_cast<std::size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1), 0.8);
  }
  const double wsum = std::accumulate(weights.begin(), weights.end(), 0.0);

  std::vector<VCSpec> vcs(static_cast<std::size_t>(vc_count));
  int assigned = 0;
  for (int i = 0; i < vc_count; ++i) {
    auto& vc = vcs[static_cast<std::size_t>(i)];
    vc.name = random_vc_name(rng);
    vc.gpus_per_node = gpus_per_node;
    vc.nodes = std::max(
        1, static_cast<int>(std::floor(total_nodes * weights[static_cast<std::size_t>(i)] / wsum)));
    assigned += vc.nodes;
  }
  // Distribute the rounding remainder (or reclaim excess) round-robin,
  // keeping every VC at >= 1 node.
  int i = 0;
  while (assigned < total_nodes) {
    ++vcs[static_cast<std::size_t>(i % vc_count)].nodes;
    ++assigned;
    ++i;
  }
  while (assigned > total_nodes) {
    auto& vc = vcs[static_cast<std::size_t>(i % vc_count)];
    if (vc.nodes > 1) {
      --vc.nodes;
      --assigned;
    }
    ++i;
  }
  return vcs;
}

ClusterSpec make_cluster(const std::string& name, int nodes, int vc_count,
                         int gpus_per_node, int cpus_per_node,
                         std::int64_t reference_jobs) {
  ClusterSpec c;
  c.name = name;
  c.nodes = nodes;
  c.gpus_per_node = gpus_per_node;
  c.cpus_per_node = cpus_per_node;
  c.reference_jobs = reference_jobs;
  c.vcs = make_vcs(name, nodes, vc_count, gpus_per_node);
  return c;
}

}  // namespace

int ClusterSpec::find_vc(const std::string& vc_name) const noexcept {
  for (std::size_t i = 0; i < vcs.size(); ++i) {
    if (vcs[i].name == vc_name) return static_cast<int>(i);
  }
  return -1;
}

UnixTime helios_trace_begin() noexcept { return from_civil(2020, 4, 1); }
UnixTime helios_trace_end() noexcept { return from_civil(2020, 9, 28); }

UnixTime philly_trace_begin() noexcept { return from_civil(2017, 10, 1); }
UnixTime philly_trace_end() noexcept { return from_civil(2018, 1, 1); }

std::vector<ClusterSpec> helios_clusters() {
  // Table 1. Venus/Earth: Volta, 48-thread Intel nodes; Saturn mixed
  // Pascal+Volta; Uranus Pascal with 64-thread nodes.
  return {
      make_cluster("Venus", 133, 27, 8, 48, 247'000),
      make_cluster("Earth", 143, 25, 8, 48, 873'000),
      make_cluster("Saturn", 262, 28, 8, 64, 1'753'000),
      make_cluster("Uranus", 264, 25, 8, 64, 490'000),
  };
}

ClusterSpec helios_cluster(const std::string& name) {
  for (auto& c : helios_clusters()) {
    if (c.name == name) return c;
  }
  throw std::invalid_argument("unknown Helios cluster: " + name);
}

ClusterSpec philly_cluster() {
  // 14 VCs (Table 2); the trace's GPU activity spans ~358 multi-GPU nodes.
  // Philly machines predominantly host 4 GPUs each; jobs max out at 128 GPUs.
  return make_cluster("Philly", 358, 14, 4, 24, 103'467);
}

ClusterSpec pai_cluster() {
  // Alibaba-PAI comparison cluster (Wang et al., arXiv:1910.05930): shared
  // production nodes with 2 GPUs and a large CPU complement each — the
  // heavier CPU component of that workload needs the cores. Sized between
  // Venus and Saturn; the per-window job count reflects the characterized
  // high-frequency short-job stream.
  return make_cluster("PAI", 240, 18, 2, 96, 980'000);
}

ClusterSpec scale_cluster(const ClusterSpec& spec, double factor) {
  if (factor == 1.0) return spec;
  ClusterSpec out = spec;
  out.vcs.clear();
  const int target_nodes =
      std::max(1, static_cast<int>(std::lround(spec.nodes * factor)));
  for (const auto& vc : spec.vcs) {
    VCSpec scaled = vc;
    scaled.nodes = static_cast<int>(std::lround(vc.nodes * factor));
    if (scaled.nodes > 0) out.vcs.push_back(scaled);
  }
  if (out.vcs.empty()) {
    VCSpec only = spec.vcs.empty() ? VCSpec{"vc000", 1, spec.gpus_per_node}
                                   : spec.vcs.front();
    only.nodes = target_nodes;
    out.vcs.push_back(only);
  }
  // Adjust the rounding drift on the largest VCs first (they absorb the
  // error with the least relative distortion).
  int assigned = 0;
  for (const auto& vc : out.vcs) assigned += vc.nodes;
  std::size_t i = 0;
  while (assigned < target_nodes) {
    ++out.vcs[i % out.vcs.size()].nodes;
    ++assigned;
    ++i;
  }
  while (assigned > target_nodes) {
    bool shrunk = false;
    for (auto& vc : out.vcs) {
      if (assigned <= target_nodes) break;
      if (vc.nodes > 1) {
        --vc.nodes;
        --assigned;
        shrunk = true;
      }
    }
    if (!shrunk) break;  // every VC is at its 1-node floor
  }
  out.nodes = assigned;
  return out;
}

}  // namespace helios::trace
