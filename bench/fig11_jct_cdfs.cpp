// Figure 11: JCT CDFs under FIFO / SJF / QSSF / SRTF for the September jobs
// of each Helios cluster. QSSF's GBDT is trained on April-August.
#include <cstdio>

#include "bench_common.h"
#include "common/text_table.h"
#include "stats/ecdf.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace stats = helios::stats;

  bench::print_header("Figure 11",
                      "JCT CDFs for FIFO/SJF/QSSF/SRTF, September jobs",
                      "QSSF trained on April-August; SJF/SRTF are oracles");

  const auto train_end = helios::from_civil(2020, 9, 1);
  const auto eval_end = helios::trace::helios_trace_end();

  for (const auto& tp : bench::helios_traces()) {
    const helios::trace::Trace& t = *tp;
    const auto study = bench::run_scheduler_study(t, train_end, eval_end);
    const stats::Ecdf fifo(bench::jct_values(study.fifo));
    const stats::Ecdf sjf(bench::jct_values(study.sjf));
    const stats::Ecdf srtf(bench::jct_values(study.srtf));
    const stats::Ecdf qssf(bench::jct_values(study.qssf));

    TextTable table({"JCT (s)", "FIFO", "QSSF", "SJF", "SRTF"});
    for (double x : stats::log_space_points(1.0, 1e6, 13)) {
      table.add_row({TextTable::cell(x, 0), TextTable::cell_pct(fifo(x)),
                     TextTable::cell_pct(qssf(x)), TextTable::cell_pct(sjf(x)),
                     TextTable::cell_pct(srtf(x))});
    }
    std::printf("%s\n%s", t.cluster().name.c_str(), table.str().c_str());
    bench::print_expectation(
        "QSSF ~ SJF/SRTF, far above FIFO", "QSSF curve tracks the oracles",
        "avg JCT: FIFO " + TextTable::cell(study.fifo.avg_jct, 0) + "s, QSSF " +
            TextTable::cell(study.qssf.avg_jct, 0) + "s, SJF " +
            TextTable::cell(study.sjf.avg_jct, 0) + "s");
    std::printf("\n");
  }
  return 0;
}
