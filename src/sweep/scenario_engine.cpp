#include "sweep/scenario_engine.h"

#include <chrono>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"

namespace helios::sweep {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// [first GPU-job submit, last possible completion) — the window the
/// simulator itself derives, so fault events cover exactly the simulated
/// horizon.
std::pair<UnixTime, UnixTime> sim_window(const trace::Trace& t) {
  UnixTime begin = 0;
  UnixTime end = 1;
  bool first = true;
  for (const auto& j : t.jobs()) {
    if (!j.is_gpu_job()) continue;
    if (first) {
      begin = j.submit_time;
      first = false;
    }
    end = std::max<UnixTime>(end, j.submit_time + j.duration + 1);
  }
  return {begin, end};
}

}  // namespace

PriorityProvider oracle_gpu_time_provider() {
  return [](const ScenarioSpec&, const trace::Trace&) -> sim::PriorityFn {
    return [](const trace::JobRecord& j) {
      return static_cast<double>(j.duration) * j.num_gpus;
    };
  };
}

ScenarioEngine::ScenarioEngine(TraceStore& store, EngineConfig config)
    : store_(store), config_(std::move(config)) {}

sim::FaultPlan ScenarioEngine::make_fault_plan(const FaultSpec& fault,
                                               const trace::Trace& t) {
  if (!fault.enabled()) return {};
  sim::FaultPlanConfig cfg;
  cfg.mtbf_days = fault.mtbf_days;
  cfg.flaky_fraction = fault.flaky_fraction;
  cfg.flaky_multiplier = fault.flaky_multiplier;
  cfg.mean_downtime = fault.mean_downtime;
  cfg.seed = fault.seed;
  const auto [begin, end] = sim_window(t);
  return sim::FaultPlan::generate(t.cluster(), cfg, begin, end);
}

sim::SimConfig ScenarioEngine::cell_config(const ScenarioSpec& spec,
                                           const trace::Trace& t) const {
  sim::SimConfig cfg;
  cfg.policy = spec.policy;
  cfg.backfill = spec.backfill;
  cfg.series_step = config_.series_step;
  cfg.execution = config_.execution;
  cfg.restart = spec.fault.restart;
  cfg.power_profile = spec.power.profile;
  cfg.power_cap_watts = spec.power.cap_watts;
  if (spec.policy == sim::SchedulerPolicy::kQssf ||
      spec.policy == sim::SchedulerPolicy::kEnergyQssf) {
    if (!config_.priority_provider) {
      throw std::invalid_argument(
          "ScenarioEngine: grid contains a kQssf/kEnergyQssf cell but "
          "EngineConfig::priority_provider is unset: " +
          spec.label());
    }
    cfg.priority_fn = config_.priority_provider(spec, t);
  }
  return cfg;
}

SweepResult ScenarioEngine::run(const SweepGrid& grid) const {
  return run(grid.expand());
}

SweepResult ScenarioEngine::run(const std::vector<ScenarioSpec>& cells) const {
  const auto grid_t0 = std::chrono::steady_clock::now();
  const bool parallel = config_.execution == common::ExecMode::kParallel;

  // ---- level 0: materialize each distinct trace exactly once --------------
  // Cells index into `traces` by key; the store deduplicates across engine
  // runs and processes, this map deduplicates within the fan-out so the
  // task graph holds one materialization task per key.
  std::map<TraceKey, TraceStore::TracePtr> traces;
  for (const ScenarioSpec& c : cells) traces.emplace(c.workload.key, nullptr);
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(traces.size());
    for (auto& [key, slot] : traces) {
      tasks.push_back([this, &key = key, &slot = slot] { slot = store_.get(key); });
    }
    if (parallel) {
      parallel_run_tasks(std::move(tasks));
    } else {
      for (auto& task : tasks) task();
    }
  }

  // ---- cell setup (serial, deterministic order) ---------------------------
  // Fault plans and priority functions are built in cell order on the
  // calling thread: providers may fit models or keep state, and plan storage
  // must be stable while cells run.
  SweepResult sweep;
  sweep.cells.resize(cells.size());
  sweep.traces_used = static_cast<std::int64_t>(traces.size());
  std::vector<sim::SimConfig> configs(cells.size());
  std::vector<sim::FaultPlan> plans(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const trace::Trace& t = *traces.at(cells[i].workload.key);
    sweep.cells[i].spec = cells[i];
    configs[i] = cell_config(cells[i], t);
    if (cells[i].fault.enabled()) {
      plans[i] = make_fault_plan(cells[i].fault, t);
      configs[i].fault_plan = &plans[i];
    }
  }

  // ---- level 1: run cells into preassigned slots --------------------------
  std::vector<std::function<void()>> tasks;
  tasks.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    tasks.push_back([&, i] {
      const trace::Trace& t = *traces.at(cells[i].workload.key);
      const auto t0 = std::chrono::steady_clock::now();
      sweep.cells[i].result =
          sim::ClusterSimulator(t.cluster(), configs[i]).run(t);
      sweep.cells[i].wall_ms = elapsed_ms(t0);
    });
  }
  if (parallel) {
    parallel_run_tasks(std::move(tasks));
  } else {
    for (auto& task : tasks) task();
  }

  sweep.wall_ms = elapsed_ms(grid_t0);
  return sweep;
}

}  // namespace helios::sweep
