#!/usr/bin/env bash
# Tier-1 verify in one command: configure, build, run every gtest suite.
#
#   ./ci.sh            full build + docs check + full test sweep
#   ./ci.sh smoke      full build + fast suites only (ctest -L smoke)
#   ./ci.sh bench      full build + microbenchmark smoke run (short
#                      --benchmark_min_time so perf regressions fail loudly
#                      instead of silently; binaries are built -O2 -DNDEBUG);
#                      also runs the serve replay driver (writes
#                      build/BENCH_svc.json), the scenario sweep matrix
#                      (writes build/BENCH_sweep.json), and the energy-vs-JCT
#                      power ablation (writes build/BENCH_power.json)
#   ./ci.sh sweep      full build + parity-gated scenario sweep at small
#                      scale: sweep_matrix runs a 2-cluster x 4-policy x
#                      2-seed grid through sweep::ScenarioEngine twice
#                      (parallel task graph vs serial reference loop) and
#                      exits non-zero unless every cell is bit-identical
#                      and every trace was generated exactly once
#   ./ci.sh serve      full build + streaming-service replay at small scale:
#                      example_serve_replay tails a growing CSV, ingests it
#                      through svc::PredictionServer with a mid-replay
#                      kill/restore, and exits non-zero unless the streamed
#                      priorities are bit-identical to the batch evaluator
#                      and every checkpoint is an exact prefix
#   ./ci.sh docs       no build: verify that docs/ARCHITECTURE.md and
#                      docs/FORMATS.md only reference files and CMake
#                      targets that still exist
#   ./ci.sh asan       separate build-asan tree with AddressSanitizer +
#                      UndefinedBehaviorSanitizer (abort on first report),
#                      running the fast suites (ctest -L smoke) with the SIMD
#                      dispatch forced on (HELIOS_SIMD=1) so the sanitizers
#                      sweep the AVX2 kernels, gather tail pads included
#   ./ci.sh simd       full build + the fast suites twice: once with the
#                      SIMD dispatch forced on, once forced off
#                      (HELIOS_SIMD=1 then HELIOS_SIMD=0) — the parity
#                      suites must pass bit-identically either way
#
# Extra args after the mode are passed through to ctest (full/smoke/asan/
# simd) or to the microbenchmarks (bench).
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-full}"
[ $# -gt 0 ] && shift
case "$mode" in
  full|smoke|bench|serve|sweep|docs|asan|simd) ;;
  *) echo "usage: ./ci.sh [full|smoke|bench|serve|sweep|docs|asan|simd] [args...]" >&2; exit 2 ;;
esac

# Grep-based link/target validator: every backticked repo path, every
# `dir/file.h` header reference, and every `test_*`/`microbench_*`/
# `example_*` target named in the docs must resolve in the tree, so the
# docs cannot silently rot as code moves.
docs_check() {
  local fail=0 doc ref tgt
  for doc in docs/ARCHITECTURE.md docs/FORMATS.md; do
    if [ ! -f "$doc" ]; then
      echo "DOCS FAIL: $doc is missing" >&2
      fail=1
      continue
    fi
    # Repo-rooted paths like `src/serialize` or `docs/FORMATS.md`.
    while IFS= read -r ref; do
      if [ ! -e "$ref" ]; then
        echo "DOCS FAIL: $doc references missing path: $ref" >&2
        fail=1
      fi
    done < <(grep -oE '`(src|tests|bench|examples|docs)/[A-Za-z0-9_./-]*`' "$doc" \
             | tr -d '\`' | sort -u)
    # Module-relative headers like `ml/gbdt.h` (include paths under src/).
    while IFS= read -r ref; do
      if [ ! -e "src/$ref" ]; then
        echo "DOCS FAIL: $doc references missing header: src/$ref" >&2
        fail=1
      fi
    done < <(grep -oE '`[a-z_]+/[A-Za-z0-9_]+\.h`' "$doc" | tr -d '\`' | sort -u)
    # CMake targets: test_* -> tests/, microbench_* -> bench/,
    # example_* -> examples/ (target prefix added by CMakeLists.txt).
    while IFS= read -r tgt; do
      case "$tgt" in
        test_*)       [ -f "tests/$tgt.cpp" ] || { echo "DOCS FAIL: $doc references missing target: $tgt" >&2; fail=1; } ;;
        microbench_*) [ -f "bench/$tgt.cpp" ] || { echo "DOCS FAIL: $doc references missing target: $tgt" >&2; fail=1; } ;;
        example_*)    [ -f "examples/${tgt#example_}.cpp" ] || { echo "DOCS FAIL: $doc references missing target: $tgt" >&2; fail=1; } ;;
      esac
    done < <(grep -oE '`(test|microbench|example)_[A-Za-z0-9_]+`' "$doc" \
             | tr -d '\`' | sort -u)
  done
  if [ "$fail" -ne 0 ]; then
    echo "DOCS FAIL: stale references (see above)" >&2
    return 1
  fi
  echo "docs check OK"
}

if [ "$mode" = docs ]; then
  docs_check
  exit 0
fi
[ "$mode" = full ] && docs_check

if [ "$mode" = asan ]; then
  # Own build tree so the sanitized objects never mix with the Release cache.
  # Debug keeps assertions live; -fno-sanitize-recover turns every ASan/UBSan
  # report into a hard failure instead of a log line. Benches and examples
  # are skipped — the smoke suites exercise the library paths that matter.
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DHELIOS_BUILD_BENCH=OFF -DHELIOS_BUILD_EXAMPLES=OFF \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  cmake --build build-asan -j "$(nproc)"
  cd build-asan
  # Force the SIMD dispatch on: the AVX2 kernels' gathers (including the
  # deliberate in-pad overreads) must run under ASan container annotations.
  # On hardware without AVX2 the runtime support gate still wins and the
  # scalar forms run instead.
  export HELIOS_SIMD=1
  exec ctest -L smoke --output-on-failure -j "$(nproc)" "$@"
fi

# Release is the CMake default here, but pin it so benches are always built
# -O2 -DNDEBUG even if a stale cache says otherwise.
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$(nproc)"

if [ "$mode" = bench ]; then
  # Perf smoke: run each microbenchmark briefly; any crash, assertion (the
  # sim bench verifies sharded-vs-serial parity, the ML bench verifies
  # histogram-vs-reference GBDT and chunked-vs-serial evaluator parity, both
  # at startup), or missing binary fails the script.
  if [ ! -x build/microbench_sim ]; then
    echo "FAIL: microbench_sim not built (install google-benchmark)" >&2
    exit 1
  fi
  build/microbench_sim --benchmark_min_time=0.1 "$@"
  if [ ! -x build/microbench_ml ]; then
    echo "FAIL: microbench_ml not built (install google-benchmark)" >&2
    exit 1
  fi
  # Machine-readable results land next to the curated repo-root BENCH_ml.json
  # (recorded medians); the binary exits non-zero on any parity mismatch.
  build/microbench_ml --benchmark_min_time=0.1 \
    --benchmark_out=build/BENCH_ml.json --benchmark_out_format=json "$@"
  if [ ! -x build/microbench_ingest ]; then
    echo "FAIL: microbench_ingest not built" >&2
    exit 1
  fi
  # Small row count: smoke-check the ingestion pipeline, not a full run.
  HELIOS_INGEST_ROWS="${HELIOS_INGEST_ROWS:-100000}" \
  HELIOS_INGEST_REPS="${HELIOS_INGEST_REPS:-1}" \
    build/microbench_ingest
  # Streaming-service replay: parity-gated, and the source of BENCH_svc.json
  # (snapshot-query p50/p99 latency + ingest throughput).
  HELIOS_SERVE_SCALE="${HELIOS_SERVE_SCALE:-0.05}" \
  HELIOS_SERVE_OUT=build/BENCH_svc.json \
    build/example_serve_replay
  # Scenario sweep matrix: parity-gated grid run, and the source of
  # BENCH_sweep.json (grid wall-clock, per-cell medians, parallel-vs-serial
  # speedup).
  HELIOS_SWEEP_SCALE="${HELIOS_SWEEP_SCALE:-0.05}" \
  HELIOS_SWEEP_OUT=build/BENCH_sweep.json \
    build/sweep_matrix
  # Energy-vs-JCT power ablation: gated (capped admission must cut modeled
  # energy, parallel power grid must match serial bit-for-bit), and the
  # source of BENCH_power.json (the tradeoff table).
  HELIOS_POWER_SCALE="${HELIOS_POWER_SCALE:-0.05}" \
  HELIOS_POWER_OUT=build/BENCH_power.json \
    build/ablation_power
  exit 0
fi

if [ "$mode" = sweep ]; then
  # Sweep parity gate at small scale: every grid cell must be bit-identical
  # between the parallel task graph and the serial reference loop, and every
  # distinct trace key must be materialized exactly once.
  HELIOS_SWEEP_SCALE="${HELIOS_SWEEP_SCALE:-0.05}" \
  HELIOS_SWEEP_CLUSTERS="${HELIOS_SWEEP_CLUSTERS:-Venus,Earth}" \
  HELIOS_SWEEP_SEEDS="${HELIOS_SWEEP_SEEDS:-2}" \
    build/sweep_matrix
  exit 0
fi

if [ "$mode" = serve ]; then
  # Serve-while-learning gate at small scale: any priority that is not
  # bit-identical to the batch pipeline — including across the mid-replay
  # kill/restore — exits non-zero and fails CI.
  HELIOS_SERVE_SCALE="${HELIOS_SERVE_SCALE:-0.02}" \
    build/example_serve_replay
  exit 0
fi

cd build
if [ "$mode" = simd ]; then
  # Same suites, both sides of the dispatch: the SIMD kernels must be
  # bit-identical to the scalar reference wherever the parity tests look.
  echo "=== ctest -L smoke with HELIOS_SIMD=1 (dispatch forced on) ==="
  HELIOS_SIMD=1 ctest -L smoke --output-on-failure -j "$(nproc)" "$@"
  echo "=== ctest -L smoke with HELIOS_SIMD=0 (dispatch forced off) ==="
  HELIOS_SIMD=0 ctest -L smoke --output-on-failure -j "$(nproc)" "$@"
  exit 0
fi
if [ "$mode" = smoke ]; then
  exec ctest -L smoke --output-on-failure -j "$(nproc)" "$@"
fi
exec ctest --output-on-failure -j "$(nproc)" "$@"
