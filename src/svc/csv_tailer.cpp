#include "svc/csv_tailer.h"

#include <fstream>
#include <stdexcept>

#include "common/csv.h"

namespace helios::svc {

namespace {

/// Bytes of `data` making up complete lines: through the last '\n', or 0
/// when none — the suffix past it is a partial line still being written.
std::size_t complete_prefix(const std::string& data) {
  const auto nl = data.rfind('\n');
  return nl == std::string::npos ? 0 : nl + 1;
}

/// Offset just past the header line (the first complete non-blank line,
/// blank lines before it included), or npos when no complete header exists
/// in `data` yet. Matches the header skip of Trace::load_csv and
/// trace::ParallelLoader.
std::size_t header_end(const std::string& data) {
  std::size_t pos = 0;
  while (pos < data.size()) {
    const auto nl = data.find('\n', pos);
    if (nl == std::string::npos) return std::string::npos;
    const std::string_view line(data.data() + pos, nl - pos);
    pos = nl + 1;
    if (!CsvReader::is_blank_line(line)) return pos;  // consumed the header
  }
  return std::string::npos;
}

}  // namespace

std::string CsvTailer::poll() {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return {};  // not created yet (or rotated away mid-poll)
  in.seekg(static_cast<std::streamoff>(offset_));
  if (!in) return {};
  std::string block((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  block.resize(complete_prefix(block));
  if (block.empty()) return {};

  if (skip_header_ && !header_consumed_) {
    const std::size_t data_start = header_end(block);
    if (data_start == std::string::npos) {
      // Only (part of) the header is complete so far; consume nothing and
      // wait for the first data row's newline.
      return {};
    }
    header_consumed_ = true;
    offset_ += data_start;
    block.erase(0, data_start);
  }
  offset_ += block.size();
  data_bytes_ += block.size();
  return block;
}

void CsvTailer::resume_at_data_bytes(std::uint64_t data_bytes) {
  std::uint64_t start = 0;
  if (skip_header_) {
    std::ifstream in(path_, std::ios::binary);
    if (!in) throw std::runtime_error("CsvTailer: cannot open " + path_);
    std::string head((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::size_t data_start = header_end(head);
    if (data_start == std::string::npos ||
        head.size() < data_start + data_bytes) {
      throw std::runtime_error("CsvTailer: " + path_ +
                               " is shorter than the resume point");
    }
    start = data_start;
  }
  header_consumed_ = true;
  offset_ = start + data_bytes;
  data_bytes_ = data_bytes;
}

}  // namespace helios::svc
