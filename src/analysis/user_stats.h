// User-level characterization (paper §3.3, Figures 8 and 9).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace helios::analysis {

/// Per-user aggregates over a trace.
struct UserAggregate {
  std::uint32_t user = 0;
  double gpu_time = 0.0;
  double cpu_time = 0.0;
  double queue_delay = 0.0;  ///< summed GPU-job queuing seconds
  std::int64_t gpu_jobs = 0;
  std::int64_t cpu_jobs = 0;
  std::int64_t gpu_jobs_completed = 0;

  [[nodiscard]] double completion_rate() const noexcept {
    return gpu_jobs > 0 ? static_cast<double>(gpu_jobs_completed) /
                              static_cast<double>(gpu_jobs)
                        : 0.0;
  }
};

[[nodiscard]] std::vector<UserAggregate> user_aggregates(const trace::Trace& t);

/// Lorenz-style concentration curve (Figures 8, 9a): users sorted by `value`
/// descending; point i is (fraction of users <= i, fraction of total value
/// captured by the top-i users). Zero-value users are included.
struct SharePoint {
  double user_fraction = 0.0;
  double value_fraction = 0.0;
};

[[nodiscard]] std::vector<SharePoint> share_curve(std::vector<double> values);

/// Fraction of the total captured by the top `top_fraction` of users
/// (e.g. "top 5% of users occupy over 90% CPU time").
[[nodiscard]] double top_share(const std::vector<double>& values,
                               double top_fraction);

}  // namespace helios::analysis
