#include "analysis/cluster_stats.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/civil_time.h"
#include "common/thread_pool.h"

namespace helios::analysis {

using trace::JobRecord;
using trace::Trace;

namespace {

/// Accumulate busy GPU-seconds for jobs [lo, hi) into `busy`.
void accumulate_busy(const std::vector<JobRecord>& jobs, std::size_t lo,
                     std::size_t hi, UnixTime begin, UnixTime end,
                     std::int64_t step, const JobPredicate& pred,
                     std::vector<double>& busy) {
  const std::size_t n_buckets = busy.size();
  for (std::size_t i = lo; i < hi; ++i) {
    const JobRecord& j = jobs[i];
    if (!j.started() || j.num_gpus <= 0) continue;
    if (pred && !pred(j)) continue;
    const UnixTime s = std::max<std::int64_t>(j.start_time, begin);
    const UnixTime e = std::min<std::int64_t>(j.end_time(), end);
    if (e <= s) continue;
    auto b = static_cast<std::size_t>((s - begin) / step);
    const auto b_end = static_cast<std::size_t>((e - 1 - begin) / step);
    for (; b <= b_end && b < n_buckets; ++b) {
      const UnixTime bucket_lo = begin + static_cast<UnixTime>(b) * step;
      const UnixTime bucket_hi = bucket_lo + step;
      const double overlap = static_cast<double>(std::min(e, bucket_hi) -
                                                 std::max(s, bucket_lo));
      busy[b] += overlap * j.num_gpus;
    }
  }
}

/// Below this job count the fan-out overhead beats the win; it also keeps the
/// small traces used by the unit tests on the exact serial summation order.
constexpr std::size_t kParallelJobThreshold = 1 << 16;

}  // namespace

std::vector<double> busy_gpu_seconds(const Trace& t, UnixTime begin, UnixTime end,
                                     std::int64_t step, const JobPredicate& pred) {
  const auto n_buckets =
      static_cast<std::size_t>(std::max<std::int64_t>(0, (end - begin + step - 1) / step));
  std::vector<double> busy(n_buckets, 0.0);
  if (n_buckets == 0) return busy;
  const auto& jobs = t.jobs();
  if (jobs.size() < kParallelJobThreshold) {
    accumulate_busy(jobs, 0, jobs.size(), begin, end, step, pred, busy);
    return busy;
  }
  // Chunk boundaries derive from fixed constants alone (never the machine's
  // thread count) and partials merge in chunk order, so the floating-point
  // summation order — and therefore every downstream figure — is identical
  // on any machine, including single-core ones; extra chunks beyond the
  // pool size just queue. The chunk cap bounds the transient partial
  // buffers to kMaxChunks x n_buckets doubles.
  constexpr std::size_t kMaxChunks = 64;
  const auto chunks =
      chunk_ranges(0, jobs.size(), kMaxChunks, kParallelJobThreshold);
  std::vector<std::vector<double>> partial(chunks.size(),
                                           std::vector<double>(n_buckets, 0.0));
  parallel_run_chunks(chunks, [&](std::size_t c, std::size_t lo,
                                  std::size_t hi) {
    accumulate_busy(jobs, lo, hi, begin, end, step, pred, partial[c]);
  });
  for (const auto& p : partial) {
    for (std::size_t b = 0; b < n_buckets; ++b) busy[b] += p[b];
  }
  return busy;
}

UtilizationSeries utilization_series(const Trace& t, UnixTime begin, UnixTime end,
                                     std::int64_t step, const JobPredicate& pred) {
  UtilizationSeries s;
  s.begin = begin;
  s.step = step;
  s.values = busy_gpu_seconds(t, begin, end, step, pred);
  const double capacity =
      static_cast<double>(t.cluster().total_gpus()) * static_cast<double>(step);
  if (capacity > 0.0) {
    for (auto& v : s.values) v /= capacity;
  }
  return s;
}

UtilizationSeries vc_utilization_series(const Trace& t, int vc_index,
                                        UnixTime begin, UnixTime end,
                                        std::int64_t step) {
  UtilizationSeries s;
  s.begin = begin;
  s.step = step;
  const auto vc_id = static_cast<std::uint32_t>(vc_index);
  s.values = busy_gpu_seconds(
      t, begin, end, step,
      [vc_id](const JobRecord& j) { return j.vc == vc_id; });
  const auto& vcs = t.cluster().vcs;
  const double gpus = vc_index >= 0 && vc_index < static_cast<int>(vcs.size())
                          ? vcs[static_cast<std::size_t>(vc_index)].total_gpus()
                          : 0.0;
  const double capacity = gpus * static_cast<double>(step);
  if (capacity > 0.0) {
    for (auto& v : s.values) v /= capacity;
  }
  return s;
}

std::array<double, 24> hourly_profile(const UtilizationSeries& s) {
  std::array<double, 24> sum{};
  std::array<double, 24> count{};
  for (std::size_t i = 0; i < s.values.size(); ++i) {
    const UnixTime mid = s.time_at(i) + s.step / 2;
    const int h = hour_of(mid);
    sum[static_cast<std::size_t>(h)] += s.values[i];
    count[static_cast<std::size_t>(h)] += 1.0;
  }
  std::array<double, 24> avg{};
  for (int h = 0; h < 24; ++h) {
    avg[static_cast<std::size_t>(h)] =
        count[static_cast<std::size_t>(h)] > 0.0
            ? sum[static_cast<std::size_t>(h)] / count[static_cast<std::size_t>(h)]
            : 0.0;
  }
  return avg;
}

std::array<double, 24> hourly_submission_rate(const Trace& t, UnixTime begin,
                                              UnixTime end) {
  std::array<double, 24> counts{};
  for (const auto& j : t.jobs()) {
    if (!j.is_gpu_job()) continue;
    if (j.submit_time < begin || j.submit_time >= end) continue;
    ++counts[static_cast<std::size_t>(hour_of(j.submit_time))];
  }
  const double days = static_cast<double>(end - begin) /
                      static_cast<double>(kSecondsPerDay);
  if (days > 0.0) {
    for (auto& c : counts) c /= days;
  }
  return counts;
}

std::vector<MonthlyActivity> monthly_trends(const Trace& t, UnixTime begin,
                                            UnixTime end) {
  // Month keys in chronological order.
  std::map<int, MonthlyActivity> months;  // key = year * 100 + month
  for (const auto& j : t.jobs()) {
    if (!j.is_gpu_job()) continue;
    if (j.submit_time < begin || j.submit_time >= end) continue;
    const CivilTime c = to_civil(j.submit_time);
    auto& m = months[c.year * 100 + c.month];
    m.year = c.year;
    m.month = c.month;
    if (j.num_gpus == 1) {
      ++m.single_gpu_jobs;
    } else {
      ++m.multi_gpu_jobs;
    }
  }
  // Utilization per month: integrate busy GPU-seconds month by month.
  for (auto& [key, m] : months) {
    const UnixTime mb = std::max(begin, from_civil(m.year, m.month, 1));
    const int next_month = m.month == 12 ? 1 : m.month + 1;
    const int next_year = m.month == 12 ? m.year + 1 : m.year;
    const UnixTime me = std::min(end, from_civil(next_year, next_month, 1));
    if (me <= mb) continue;
    const auto whole = busy_gpu_seconds(t, mb, me, me - mb);
    const auto single = busy_gpu_seconds(t, mb, me, me - mb, [](const JobRecord& j) {
      return j.num_gpus == 1;
    });
    const double capacity = static_cast<double>(t.cluster().total_gpus()) *
                            static_cast<double>(me - mb);
    if (capacity > 0.0 && !whole.empty()) {
      m.avg_utilization = whole[0] / capacity;
      m.util_from_single = single[0] / capacity;
      m.util_from_multi = m.avg_utilization - m.util_from_single;
    }
  }
  std::vector<MonthlyActivity> out;
  out.reserve(months.size());
  for (const auto& [key, m] : months) out.push_back(m);
  return out;
}

std::vector<VCBehavior> vc_behaviors(const Trace& t, UnixTime begin, UnixTime end,
                                     std::int64_t minute_step) {
  const auto& vcs = t.cluster().vcs;
  std::vector<VCBehavior> out;
  out.reserve(vcs.size());
  for (int vi = 0; vi < static_cast<int>(vcs.size()); ++vi) {
    VCBehavior b;
    b.vc_index = vi;
    b.name = vcs[static_cast<std::size_t>(vi)].name;
    b.gpus = vcs[static_cast<std::size_t>(vi)].total_gpus();
    const auto series = vc_utilization_series(t, vi, begin, end, minute_step);
    b.utilization = stats::box_stats(series.values);

    stats::RunningStats req;
    stats::RunningStats delay;
    stats::RunningStats dur;
    // The trace's vc ids were interned in spec order by the generator; match
    // by name to stay robust to traces built differently.
    const auto vc_id = t.vcs().find(b.name);
    for (const auto& j : t.jobs()) {
      if (!j.is_gpu_job() || j.vc != vc_id) continue;
      if (j.submit_time < begin || j.submit_time >= end) continue;
      req.add(j.num_gpus);
      delay.add(static_cast<double>(j.queue_delay()));
      dur.add(j.duration);
    }
    b.avg_gpu_request = req.mean();
    b.avg_queue_delay = delay.mean();
    b.avg_duration = dur.mean();
    b.jobs = req.count();
    out.push_back(b);
  }
  std::sort(out.begin(), out.end(),
            [](const VCBehavior& a, const VCBehavior& b) { return a.gpus > b.gpus; });
  return out;
}

}  // namespace helios::analysis
