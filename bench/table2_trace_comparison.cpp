// Table 2: comparisons between the Helios and Philly traces.
#include <cstdio>

#include "analysis/job_stats.h"
#include "bench_common.h"
#include "common/text_table.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace analysis = helios::analysis;

  bench::print_header("Table 2", "Helios vs Philly trace summary");

  analysis::TraceSummary helios_sum;
  std::int64_t helios_vcs = 0;
  double gpu_dur_weighted = 0.0;
  double gpus_weighted = 0.0;
  for (const auto& tp : bench::helios_traces()) {
    const helios::trace::Trace& t = *tp;
    const auto s = analysis::summarize(t);
    helios_sum.total_jobs += s.total_jobs;
    helios_sum.gpu_jobs += s.gpu_jobs;
    helios_sum.cpu_jobs += s.cpu_jobs;
    helios_sum.max_gpus = std::max(helios_sum.max_gpus, s.max_gpus);
    helios_sum.max_duration = std::max(helios_sum.max_duration, s.max_duration);
    gpu_dur_weighted += s.avg_gpu_job_duration * static_cast<double>(s.gpu_jobs);
    gpus_weighted += s.avg_gpus_per_gpu_job * static_cast<double>(s.gpu_jobs);
    helios_vcs += s.vcs;
  }
  const double hd = gpu_dur_weighted / static_cast<double>(helios_sum.gpu_jobs);
  const double hg = gpus_weighted / static_cast<double>(helios_sum.gpu_jobs);

  const auto philly = analysis::summarize(bench::philly_trace());

  TextTable table({"Metric", "Helios (measured)", "Philly (measured)",
                   "Helios (paper)", "Philly (paper)"});
  auto row = [&](const char* metric, const std::string& h, const std::string& p,
                 const char* hp, const char* pp) {
    table.add_row({metric, h, p, hp, pp});
  };
  row("# of clusters", "4", "1", "4", "1");
  row("# of VCs", TextTable::cell(helios_vcs),
      TextTable::cell(philly.vcs), "105", "14");
  row("# of Jobs", TextTable::cell_grouped(helios_sum.total_jobs),
      TextTable::cell_grouped(philly.total_jobs), "3.36M", "103k");
  row("# of GPU Jobs", TextTable::cell_grouped(helios_sum.gpu_jobs),
      TextTable::cell_grouped(philly.gpu_jobs), "1.58M", "103k");
  row("# of CPU Jobs", TextTable::cell_grouped(helios_sum.cpu_jobs),
      TextTable::cell_grouped(philly.cpu_jobs), "1.78M", "0");
  row("Average # of GPUs", TextTable::cell(hg, 2),
      TextTable::cell(philly.avg_gpus_per_gpu_job, 2), "3.72", "1.75");
  row("Average Duration (s)", TextTable::cell(hd, 0),
      TextTable::cell(philly.avg_gpu_job_duration, 0), "6,652", "28,329");
  row("Maximum # of GPUs", TextTable::cell(static_cast<std::int64_t>(helios_sum.max_gpus)),
      TextTable::cell(static_cast<std::int64_t>(philly.max_gpus)), "2,048", "128");
  row("Maximum Duration (days)",
      TextTable::cell(helios_sum.max_duration / 86400.0, 1),
      TextTable::cell(philly.max_duration / 86400.0, 1), "50", "60");
  std::printf("%s\n", table.str().c_str());

  std::printf(
      "note: job counts scale with HELIOS_SCALE; the maximum GPU demand is\n"
      "bounded by the largest (scaled) VC, so the paper's 2,048-GPU job only\n"
      "appears near scale 1.0.\n");
  return 0;
}
