// Pearson and Spearman correlation.
//
// Used by the characterization layer (e.g. Implication #3: VC utilization is
// positively correlated with average GPU demand; queuing delay is roughly
// proportional to job duration) and by property tests that assert the
// generator reproduces those correlations.
#pragma once

#include <span>

namespace helios::stats {

/// Pearson linear correlation coefficient in [-1, 1]; 0 for degenerate input.
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y) noexcept;

/// Spearman rank correlation (Pearson on fractional ranks, ties averaged).
[[nodiscard]] double spearman(std::span<const double> x,
                              std::span<const double> y);

}  // namespace helios::stats
