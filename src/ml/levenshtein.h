// Levenshtein edit distance and name bucketization.
//
// The paper (§4.2.2) clusters the "extremely sparse and high-dimensional"
// job-name feature with Levenshtein distance, bucketizing similar names into
// dense numerical values for the GBDT, and uses the same distance inside the
// rolling estimator to find a user's historical jobs "which have similar
// names or formats as the incoming one".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace helios::serialize {
class Reader;
class Writer;
}  // namespace helios::serialize

namespace helios::ml {

/// Classic dynamic-programming edit distance (insert/delete/substitute = 1).
[[nodiscard]] std::size_t levenshtein(std::string_view a, std::string_view b);

/// Distance normalised by max(len(a), len(b)); 0 for two empty strings.
[[nodiscard]] double normalized_levenshtein(std::string_view a, std::string_view b);

/// Early-exit check: true iff levenshtein(a, b) <= limit. O(limit * min(m,n))
/// via banded DP — the hot path of the rolling estimator.
[[nodiscard]] bool within_distance(std::string_view a, std::string_view b,
                                   std::size_t limit);

/// Greedy single-pass clustering of names into buckets: each name joins the
/// first existing bucket whose representative is within
/// `threshold * max(len)` normalised distance, else founds a new bucket.
/// Deterministic given input order. This converts the sparse name feature
/// into a dense categorical id, as the paper does before GBDT training.
class NameBucketizer {
 public:
  /// `prefix_len > 0` enables a prefix index: only representatives sharing
  /// the first `prefix_len` bytes are considered as merge candidates. Job
  /// names carry the owner/template stem up front ("u0042_train_bert_v1"),
  /// so this turns the O(#buckets) scan into a handful of comparisons with
  /// no practical quality loss; pass 0 for the exhaustive scan.
  explicit NameBucketizer(double threshold = 0.30, std::size_t prefix_len = 0)
      : threshold_(threshold), prefix_len_(prefix_len) {}

  /// Bucket id for `name`, creating a new bucket when nothing is close.
  std::uint32_t bucket(std::string_view name);

  /// Bucket id without creating new buckets; returns the nearest existing
  /// bucket within the threshold, or kNoBucket.
  [[nodiscard]] std::uint32_t lookup(std::string_view name) const;

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return representatives_.size();
  }
  [[nodiscard]] const std::vector<std::string>& representatives() const noexcept {
    return representatives_;
  }

  static constexpr std::uint32_t kNoBucket = 0xffffffffu;

  /// Persist / restore the clustering state ("NBKT" section,
  /// docs/FORMATS.md): threshold, prefix length, representatives, and the
  /// memoized name→bucket map, so a restored bucketizer assigns exactly the
  /// ids the live one would. The prefix index is rebuilt on load. Throws
  /// serialize::Error on malformed input.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

 private:
  [[nodiscard]] std::uint32_t find_nearest(std::string_view name) const;
  [[nodiscard]] std::string prefix_key(std::string_view name) const {
    return std::string(name.substr(0, prefix_len_));
  }

  double threshold_;
  std::size_t prefix_len_;
  std::vector<std::string> representatives_;
  std::unordered_map<std::string, std::uint32_t> exact_;  // memoized names
  /// prefix -> representative indices (only when prefix_len_ > 0).
  std::unordered_map<std::string, std::vector<std::uint32_t>> by_prefix_;
};

}  // namespace helios::ml
