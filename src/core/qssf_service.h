// Quasi-Shortest-Service-First scheduling service (paper §4.2, Algorithm 1).
//
// Assigns every incoming job a priority P = N * (λ * P_R + (1-λ) * P_M):
//   * P_R — rolling estimate from the user's history:
//       - unknown user           -> mean duration of all jobs with the same
//                                   GPU demand,
//       - user known, new name   -> mean duration of this user's jobs with
//                                   the same GPU demand,
//       - similar name found     -> exponentially-weighted mean of the
//                                   durations of name-matched jobs
//                                   (Levenshtein similarity),
//   * P_M — GBDT estimate from encoded job attributes (user, VC, bucketized
//     name, GPU/CPU demand, submission-time calendar features),
//   * N   — requested GPU count, turning the duration estimate into expected
//     GPU time (the paper ranks by GPU time, not duration, so that large
//     short jobs don't starve behind small ones).
// The scheduler then runs jobs in ascending priority (sim::SchedulerPolicy::
// kQssf). Lower P = expected-shorter service = runs first.
//
// Determinism: fit(), observe(), and the evaluator are pure functions of
// their inputs and the service's prior state — no wall clock, no unseeded
// randomness. OnlinePriorityEvaluator's chunked mode is bit-identical to the
// serial loop for any window or thread count (test_prediction_parity), and a
// service restored from save() (docs/FORMATS.md, "QSSF" frame) produces
// bit-identical priorities and estimates (test_serialize) — including the
// dedupe keys, so replaying an already-observed trace into a warm-restarted
// service still cannot double-count.
//
// Thread-safety: QssfService and RollingEstimator are externally
// synchronized — fit()/update()/observe()/load() mutate and must be
// exclusive; the const estimate/predict accessors are safe to share across
// threads between mutations (predict-time name bucketing is memoized behind
// logical constness, so even const use requires external synchronization if
// callers race on previously-unseen job names). OnlinePriorityEvaluator
// parallelizes internally on the shared global_pool() and is safe to read
// from any thread once constructed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/framework.h"
#include "ml/gbdt.h"
#include "ml/levenshtein.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace helios::serialize {
class Reader;
class Writer;
}  // namespace helios::serialize

namespace helios::core {

struct QssfConfig {
  /// Merge coefficient λ between the rolling and the GBDT estimate.
  double lambda = 0.45;
  /// Normalised Levenshtein distance below which two job names "match".
  /// 0.20 keeps "_v2"-style variants together while separating different
  /// templates of the same user ("train_bert" vs "eval_bert").
  double name_match_threshold = 0.20;
  /// Exponential decay applied to older name-matched durations.
  double rolling_decay = 0.75;
  /// Per-user cap on remembered name entries (oldest evicted).
  std::size_t max_names_per_user = 64;
  /// GBDT hyper-parameters; max_training_rows caps fit cost on huge traces.
  ml::GBDTConfig gbdt = default_gbdt_config();
  /// Limited-information mode (paper §6.2 future work: "some attributes in
  /// our services may not be available in other clusters"): when false, job
  /// names are ignored — the rolling estimator skips name matching and the
  /// GBDT drops the name-bucket feature.
  bool use_names = true;

  [[nodiscard]] static ml::GBDTConfig default_gbdt_config();
};

/// The rolling half of Algorithm 1: per-user duration history with
/// Levenshtein name matching, plus cluster-wide fallbacks. Split out of the
/// service as a copyable value so the windowed OnlinePriorityEvaluator can
/// snapshot and replay it deterministically on the thread pool.
///
/// Every finished job is folded in at most once, keyed by a hash of its
/// identity content (job_id, submit time, duration, demand, user), so
/// feeding an overlapping or cumulative trace cannot double-count history —
/// and traces from a different lineage (ids restart at 0) still observe.
class RollingEstimator {
 public:
  RollingEstimator() = default;
  explicit RollingEstimator(const QssfConfig& config)
      : use_names_(config.use_names),
        name_match_threshold_(config.name_match_threshold),
        rolling_decay_(config.rolling_decay),
        max_names_per_user_(config.max_names_per_user) {}

  /// Absorb one finished GPU job (idempotent per job_id).
  void observe(const trace::Trace& t, const trace::JobRecord& job);

  /// Expected duration (seconds) of an incoming job, Algorithm 1 lines 13-18.
  [[nodiscard]] double estimate(const trace::Trace& t,
                                const trace::JobRecord& job) const;

  [[nodiscard]] std::int64_t observed_jobs() const noexcept { return global_jobs_; }

  /// Persist / restore the full rolling state ("ROLL" section,
  /// docs/FORMATS.md): per-user histories (GPU-demand sums, name EWMAs with
  /// their eviction clocks), the cluster-wide fallbacks, and the observed-id
  /// dedupe set — so a restored estimator both estimates bit-identically and
  /// keeps skipping jobs the saved one had already folded in. Throws
  /// serialize::Error on malformed input.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

 private:
  struct NameEntry {
    std::string name;
    double ewma_duration = 0.0;
    double weight = 0.0;
    std::uint64_t last_seen = 0;  // insertion counter, for eviction
  };
  struct UserHistory {
    std::unordered_map<int, std::pair<double, std::int64_t>> by_gpus;  // sum, n
    double duration_sum = 0.0;
    std::int64_t jobs = 0;
    std::vector<NameEntry> names;
  };

  [[nodiscard]] const NameEntry* find_name(const UserHistory& u,
                                           const std::string& name) const;

  bool use_names_ = true;
  double name_match_threshold_ = 0.20;
  double rolling_decay_ = 0.75;
  std::size_t max_names_per_user_ = 64;

  std::unordered_map<std::string, UserHistory> users_;
  std::unordered_map<int, std::pair<double, std::int64_t>> global_by_gpus_;
  double global_duration_sum_ = 0.0;
  std::int64_t global_jobs_ = 0;
  std::uint64_t observe_counter_ = 0;
  std::unordered_set<std::uint64_t> observed_ids_;  // content-hash keys
};

class QssfService final : public Service {
 public:
  explicit QssfService(QssfConfig config = {});

  [[nodiscard]] std::string name() const override { return "qssf"; }

  /// Train the GBDT and seed the rolling estimator from a historical trace
  /// (the paper trains on April-August and evaluates on September).
  void fit(const trace::Trace& history);

  /// Model Update Engine hook: absorb finished jobs into the rolling
  /// estimator (already-seen job ids are skipped, so cumulative feeds are
  /// safe) and refresh the GBDT on the given trace.
  void update(const trace::Trace& new_data) override;

  /// Absorb a single finished job into the rolling estimator (no GBDT refit).
  void observe(const trace::Trace& t, const trace::JobRecord& job);

  /// Expected duration (seconds) of an incoming job.
  [[nodiscard]] double predict_duration(const trace::Trace& t,
                                        const trace::JobRecord& job) const;

  /// Algorithm 1's Priority(): expected GPU time, lower first.
  [[nodiscard]] double priority(const trace::Trace& t,
                                const trace::JobRecord& job) const;

  /// Rolling estimate alone / GBDT estimate alone (for the λ ablation).
  [[nodiscard]] double rolling_estimate(const trace::Trace& t,
                                        const trace::JobRecord& job) const;
  [[nodiscard]] double ml_estimate(const trace::Trace& t,
                                   const trace::JobRecord& job) const;

  /// λ-merge of the two estimates scaled to GPU time — the single definition
  /// of Priority() shared by the serial and the windowed evaluation paths.
  [[nodiscard]] static double combine(const QssfConfig& config, double rolling,
                                      double ml, const trace::JobRecord& job) {
    return static_cast<double>(std::max(1, job.num_gpus)) *
           (config.lambda * rolling + (1.0 - config.lambda) * ml);
  }

  /// Encode the given jobs into a GBDT feature matrix, warming the name
  /// buckets in job order (the same order the serial path would).
  [[nodiscard]] ml::Dataset encode_jobs(
      const trace::Trace& t, std::span<const std::uint32_t> job_indices) const;

  [[nodiscard]] const QssfConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool trained() const noexcept { return model_.trained(); }
  [[nodiscard]] const ml::GBDTRegressor& model() const noexcept { return model_; }
  [[nodiscard]] const RollingEstimator& rolling() const noexcept { return rolling_; }

  /// Persist the whole service ("QSSF" frame, docs/FORMATS.md): config,
  /// GBDT model, name buckets, and rolling state. Wrap with
  /// serialize::write_file to snapshot; load() into a fresh service
  /// warm-restarts it — predictions and priorities are bit-identical to the
  /// saved instance, with no history replay or refit.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

 private:
  friend class OnlinePriorityEvaluator;  // snapshots / adopts rolling_

  static constexpr std::size_t kFeatureCount = 9;
  void encode(const trace::Trace& t, const trace::JobRecord& job,
              std::vector<double>& out) const;

  QssfConfig config_;
  ml::GBDTRegressor model_;
  mutable ml::NameBucketizer name_buckets_;  // grows lazily at predict time
  RollingEstimator rolling_;
};

/// Execution strategy for OnlinePriorityEvaluator (mirrors SimExecution).
enum class EvalExecution {
  /// Deterministic replay windows evaluated concurrently on the shared pool,
  /// with the GBDT estimates batched through predict_many. Bit-identical to
  /// kSerial for any window count or thread count.
  kChunked,
  /// Retained straightforward job-by-job loop (parity baseline).
  kSerial,
};

struct EvalOptions {
  EvalExecution execution = EvalExecution::kChunked;
  /// Smallest window, in GPU jobs.
  std::size_t min_window = 1024;
  /// Cap on the window count; 0 = auto (the pool width). Tests force small
  /// windows to exercise the replay machinery on any machine.
  std::size_t max_windows = 0;
};

/// Evaluates QSSF priorities for a stream of jobs in submission order while
/// honouring causality: a job is folded into the rolling estimator only once
/// its (approximate) finish time submit+duration has passed. This mirrors
/// the deployed Model Update Engine, which fine-tunes from jobs as they
/// terminate. Returns a PriorityFn suitable for sim::SimConfig after
/// precomputing priorities for every GPU job of `eval`.
///
/// The chunked mode splits the stream into contiguous replay windows: a
/// serial pre-pass replays only the (cheap) observe stream, snapshotting the
/// rolling state and pending-finish heap at each window boundary; windows
/// then replay concurrently from their snapshots while the GBDT half of
/// every priority comes from one batched predict_many pass. Because each
/// window replays exactly the observes the serial path would apply, the
/// result — and the service's final rolling state — is bit-identical to
/// kSerial.
class OnlinePriorityEvaluator {
 public:
  OnlinePriorityEvaluator(QssfService& service, const trace::Trace& eval,
                          EvalOptions options = {});

  /// Priority for a trace job (precomputed; keyed by job_id).
  [[nodiscard]] double priority_of(const trace::JobRecord& job) const;

  /// Adapter for the simulator.
  [[nodiscard]] sim::PriorityFn as_priority_fn() const;

  /// Prediction quality over the evaluated jobs: predicted vs actual GPU time.
  [[nodiscard]] const std::vector<double>& predicted_gpu_time() const noexcept {
    return predicted_;
  }
  [[nodiscard]] const std::vector<double>& actual_gpu_time() const noexcept {
    return actual_;
  }

 private:
  /// Pending finish event; min-heap ordered by (finish, index) so the pop
  /// order is a total order, identical however the heap was assembled.
  struct Pending {
    std::int64_t finish = 0;
    std::uint32_t index = 0;
  };
  static bool pending_after(const Pending& a, const Pending& b) noexcept {
    return a.finish != b.finish ? a.finish > b.finish : a.index > b.index;
  }
  /// The one heap-op sequence every replay site shares — the chunked mode's
  /// bit-parity with kSerial depends on all sites executing it identically.
  static void drain_finished(std::vector<Pending>& pending, std::int64_t now,
                             const trace::Trace& eval, RollingEstimator& rolling);
  static void push_pending(std::vector<Pending>& pending,
                           const trace::JobRecord& job, std::uint32_t index);

  void run_serial(QssfService& service, const trace::Trace& eval);
  void run_chunked(QssfService& service, const trace::Trace& eval,
                   const EvalOptions& options);

  std::unordered_map<std::uint64_t, double> priorities_;
  std::vector<double> predicted_;
  std::vector<double> actual_;
};

}  // namespace helios::core
