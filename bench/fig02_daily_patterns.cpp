// Figure 2: daily pattern of cluster usage — (a) hourly average utilization,
// (b) hourly average GPU job submission rate, per cluster.
#include <cstdio>

#include "analysis/cluster_stats.h"
#include "bench_common.h"
#include "common/text_table.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace analysis = helios::analysis;

  bench::print_header("Figure 2",
                      "Hourly average utilization and GPU job submission rate",
                      "trace operated under FIFO to assign start times");

  const auto begin = helios::trace::helios_trace_begin();
  const auto end = helios::trace::helios_trace_end();

  std::vector<std::array<double, 24>> util;
  std::vector<std::array<double, 24>> subs;
  std::vector<std::string> names;
  for (const auto& tp : bench::operated_helios_traces()) {
    const helios::trace::Trace& t = *tp;
    const auto series = analysis::utilization_series(t, begin, end, 3600);
    util.push_back(analysis::hourly_profile(series));
    subs.push_back(analysis::hourly_submission_rate(t, begin, end));
    names.push_back(t.cluster().name);
  }

  TextTable ta({"hour", names[0] + " util", names[1] + " util",
                names[2] + " util", names[3] + " util"});
  TextTable tb({"hour", names[0] + " subs/h", names[1] + " subs/h",
                names[2] + " subs/h", names[3] + " subs/h"});
  for (int h = 0; h < 24; ++h) {
    std::vector<std::string> ra = {TextTable::cell(static_cast<std::int64_t>(h))};
    std::vector<std::string> rb = {TextTable::cell(static_cast<std::int64_t>(h))};
    for (std::size_t c = 0; c < util.size(); ++c) {
      ra.push_back(TextTable::cell_pct(util[c][static_cast<std::size_t>(h)]));
      rb.push_back(TextTable::cell(subs[c][static_cast<std::size_t>(h)], 1));
    }
    ta.add_row(std::move(ra));
    tb.add_row(std::move(rb));
  }
  std::printf("(a) hourly average cluster utilization\n%s\n", ta.str().c_str());
  std::printf("(b) hourly average GPU job submissions\n%s\n", tb.str().c_str());

  // Shape checks from §3.1.1.
  for (std::size_t c = 0; c < util.size(); ++c) {
    double day = 0.0;
    double night = 0.0;
    for (int h = 10; h < 18; ++h) day += util[c][static_cast<std::size_t>(h)] / 8.0;
    for (int h = 0; h < 8; ++h) night += util[c][static_cast<std::size_t>(h)] / 8.0;
    bench::print_expectation(names[c] + " night dip (day - night)", "5~8%",
                             TextTable::cell_pct(day - night));
  }
  return 0;
}
