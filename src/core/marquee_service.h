// Marquee-user fairness service (paper Implication #7).
//
// §3.3 finds that a handful of "marquee users" bear most of the cluster's
// queuing delay (in Uranus, the top 1% of users — three people — bear over
// 70% of the queuing time) without being top resource consumers, and
// recommends that "the scheduler can dynamically adjust temporary priorities
// to users, especially to the marquee ones, based on their current job
// queuing statuses". This service implements that recommendation as a third
// plug-in for the prediction framework: it watches per-user queuing-delay
// and GPU-time shares on the operated history and exposes a priority
// multiplier that boosts (shrinks the QSSF priority value of) marquee users'
// jobs.
#pragma once

#include <string>
#include <unordered_map>

#include "core/framework.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace helios::core {

struct MarqueeConfig {
  /// A user is "marquee" when they bear more than this share of the
  /// cluster's total queuing delay...
  double queue_share_threshold = 0.05;
  /// ...while consuming less than this share of total GPU time (heavy
  /// consumers queuing a lot is expected, not unfair).
  double gpu_share_ceiling = 0.10;
  /// Multiplier applied to a marquee user's job priority values (QSSF runs
  /// the lowest value first, so < 1 boosts them).
  double priority_boost = 0.5;
};

class MarqueeService final : public Service {
 public:
  explicit MarqueeService(MarqueeConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "marquee"; }

  /// Recompute marquee users from an *operated* trace (start times must
  /// reflect a real schedule, e.g. sim::operate_fifo output).
  void update(const trace::Trace& operated) override;

  [[nodiscard]] bool is_marquee(const std::string& user) const;
  [[nodiscard]] std::size_t marquee_count() const noexcept {
    return marquee_.size();
  }

  /// Priority multiplier for one job (priority_boost for marquee users'
  /// jobs, 1.0 otherwise).
  [[nodiscard]] double multiplier(const trace::Trace& t,
                                  const trace::JobRecord& job) const;

  /// Wrap a base priority function (e.g. the QSSF evaluator's) with the
  /// marquee adjustment; `t` must outlive the returned function.
  [[nodiscard]] sim::PriorityFn adjust(sim::PriorityFn base,
                                       const trace::Trace& t) const;

  [[nodiscard]] const MarqueeConfig& config() const noexcept { return config_; }

 private:
  MarqueeConfig config_;
  std::unordered_map<std::string, bool> marquee_;
};

}  // namespace helios::core
