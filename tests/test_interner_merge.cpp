#include <gtest/gtest.h>

#include "common/interner.h"
#include "trace/trace.h"

namespace helios {
namespace {

TEST(InternerMerge, RemapsIntoExistingTable) {
  StringInterner global;
  global.intern("alice");  // 0
  global.intern("bob");    // 1

  StringInterner shard;
  shard.intern("carol");  // shard-local 0
  shard.intern("alice");  // shard-local 1

  const auto remap = global.merge_from(shard);
  ASSERT_EQ(remap.size(), 2u);
  EXPECT_EQ(remap[0], 2u);  // carol is new -> next dense id
  EXPECT_EQ(remap[1], 0u);  // alice keeps its existing id
  EXPECT_EQ(global.size(), 3u);
  EXPECT_EQ(global.str(2), "carol");
}

TEST(InternerMerge, DuplicateStringsAcrossShardsShareOneId) {
  StringInterner shard_a;
  shard_a.intern("vcA");
  shard_a.intern("vcB");

  StringInterner shard_b;
  shard_b.intern("vcB");  // duplicate of shard_a's
  shard_b.intern("vcC");

  StringInterner global;
  const auto map_a = global.merge_from(shard_a);
  const auto map_b = global.merge_from(shard_b);

  EXPECT_EQ(global.size(), 3u);
  EXPECT_EQ(map_a[1], map_b[0]);  // both shards' "vcB" map to the same id
  EXPECT_EQ(global.str(map_b[1]), "vcC");
}

TEST(InternerMerge, EmptyShardIsANoOp) {
  StringInterner global;
  global.intern("x");
  const StringInterner empty;
  const auto remap = global.merge_from(empty);
  EXPECT_TRUE(remap.empty());
  EXPECT_EQ(global.size(), 1u);
}

TEST(InternerMerge, MergeIntoEmptyPreservesIdOrder) {
  StringInterner shard;
  shard.intern("u1");
  shard.intern("u2");
  shard.intern("u3");

  StringInterner global;
  const auto remap = global.merge_from(shard);
  // Merging into an empty interner is an identity mapping.
  for (std::uint32_t i = 0; i < remap.size(); ++i) EXPECT_EQ(remap[i], i);
  EXPECT_EQ(global, shard);
}

TEST(InternerMerge, ShardOrderReproducesSerialFirstOccurrenceOrder) {
  // Serial interning over the concatenated stream...
  StringInterner serial;
  for (const char* s : {"a", "b", "a", "c", "b", "d"}) serial.intern(s);

  // ...must equal shard-wise interning merged in shard order.
  StringInterner shard0;  // covers "a", "b", "a"
  shard0.intern("a");
  shard0.intern("b");
  shard0.intern("a");
  StringInterner shard1;  // covers "c", "b", "d"
  shard1.intern("c");
  shard1.intern("b");
  shard1.intern("d");

  StringInterner merged;
  merged.merge_from(shard0);
  merged.merge_from(shard1);
  EXPECT_EQ(merged, serial);
}

TEST(TraceAppend, RemapsJobStringIds) {
  using namespace trace;
  Trace a;
  a.add(10, 5, 1, 4, "alice", "vcA", "train", JobState::kCompleted);

  Trace b;
  b.add(20, 7, 2, 8, "bob", "vcA", "eval", JobState::kFailed);
  b.add(30, 9, 0, 2, "alice", "vcB", "train", JobState::kCanceled);

  a.append(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.user_name(a.jobs()[1]), "bob");
  EXPECT_EQ(a.user_name(a.jobs()[2]), "alice");
  EXPECT_EQ(a.jobs()[0].user, a.jobs()[2].user);  // shared id after remap
  EXPECT_EQ(a.vc_name(a.jobs()[1]), "vcA");
  EXPECT_EQ(a.vc_name(a.jobs()[2]), "vcB");
  EXPECT_EQ(a.job_name(a.jobs()[2]), "train");
  EXPECT_EQ(a.jobs()[0].name, a.jobs()[2].name);
  // Non-string fields ride through untouched.
  EXPECT_EQ(a.jobs()[1].submit_time, 20);
  EXPECT_EQ(a.jobs()[1].num_gpus, 2);
  EXPECT_EQ(a.jobs()[2].state, JobState::kCanceled);
}

TEST(TraceAppend, AppendingEmptyTraceIsANoOp) {
  using namespace trace;
  Trace a;
  a.add(10, 5, 1, 4, "alice", "vcA", "train", JobState::kCompleted);
  const Trace before = a;
  a.append(Trace());
  EXPECT_TRUE(a.contents_equal(before));
}

}  // namespace
}  // namespace helios
