// Cluster Energy Saving walkthrough: operate a cluster, train the node
// forecaster, replay three weeks under Algorithm 2, and translate the result
// into money (the motivation of §4.3: "electricity dominates the operation
// cost of modern GPU datacenters").
//
// Usage: ./build/examples/example_energy_saving [cluster] [scale] [usd_per_kwh]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/ces_service.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

int main(int argc, char** argv) {
  using namespace helios;
  const std::string cluster = argc > 1 ? argv[1] : "Earth";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.15;
  const double usd_per_kwh = argc > 3 ? std::atof(argv[3]) : 0.10;

  auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster(cluster), 42,
                                            scale);
  trace::Trace t = trace::SyntheticTraceGenerator(cfg).generate();
  const auto operated = sim::operate_fifo(t);

  const auto eval_begin = from_civil(2020, 9, 1);
  const auto eval_end = from_civil(2020, 9, 22);
  const auto history =
      operated.busy_nodes.between(operated.busy_nodes.begin, eval_begin);

  core::CesConfig ces_cfg;  // xi=0.5 trends, 5-min reboot
  // Buffer ~1 node per 30: the paper's sigma is absolute on full clusters.
  ces_cfg.sigma = std::max(1, t.cluster().nodes / 30);
  core::CesService ces(ces_cfg, std::make_unique<forecast::GBDTForecaster>());
  ces.fit(history);
  const auto r = ces.replay(t, history, eval_begin, eval_end);

  std::printf("=== CES on %s (%d nodes, scale %.2f), Sep 1-21 ===\n",
              cluster.c_str(), r.total_nodes, scale);
  std::printf("node utilization:    %.1f%% -> %.1f%%\n",
              100 * r.node_util_original, 100 * r.node_util_ces);
  std::printf("avg sleeping nodes:  %.1f of %d\n", r.avg_drs_nodes, r.total_nodes);
  std::printf("wake-up events:      %.1f per day (%.1f nodes per event)\n",
              r.daily_wakeups, r.avg_woken_per_wakeup);
  std::printf("jobs delayed by boots: %lld of %lld\n",
              static_cast<long long>(r.affected_jobs),
              static_cast<long long>(r.total_jobs));
  std::printf("forecast error:      %.1f%% SMAPE\n", r.forecast_smape);
  std::printf("energy saved:        %.0f kWh over 3 weeks "
              "(server + cooling)\n", r.saved_kwh);
  std::printf("annualized:          %.0f kWh  ~= $%.0f/year at $%.2f/kWh\n",
              r.annualized_kwh, r.annualized_kwh * usd_per_kwh, usd_per_kwh);
  std::printf("\n(The paper reports >1.65M kWh/year across the four full-size "
              "Helios clusters.)\n");
  return 0;
}
