// Small CSV reader/writer (RFC-4180 quoting) used for trace import/export and
// for dumping bench series that downstream plotting scripts can consume.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace helios {

class CsvWriter {
 public:
  /// Writes to an externally owned stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write one row; fields are quoted only when needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: format doubles with enough precision to round-trip.
  static std::string field(double v);
  static std::string field(std::int64_t v);

 private:
  std::ostream* out_;
};

class CsvReader {
 public:
  /// Parse one CSV line into fields (handles quoted fields with embedded
  /// commas/quotes; does not handle embedded newlines, which the trace format
  /// never produces). Quotes open a quoted field only at the field start
  /// (RFC 4180); mid-field quotes are literal text.
  static std::vector<std::string> parse_line(std::string_view line);

  /// Read all rows from a stream; skips blank lines (including '\r'-only
  /// lines from CRLF input).
  static std::vector<std::vector<std::string>> read_all(std::istream& in);

  /// True for lines every reader skips: empty, or the lone '\r' that
  /// std::getline / byte-chunked iteration leave behind on blank lines of
  /// CRLF input. The single definition keeps the serial and parallel trace
  /// loaders agreeing on what a blank line is.
  [[nodiscard]] static bool is_blank_line(std::string_view line) noexcept {
    return line.empty() || (line.size() == 1 && line[0] == '\r');
  }
};

}  // namespace helios
