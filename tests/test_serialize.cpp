// Persistence suite (smoke): round-trip parity + malformed-input handling.
//
//  * For every persisted model type — GBDTRegressor, RidgeRegression,
//    NameBucketizer, RollingEstimator, QssfService, and the four forecast::
//    models — load(save(m)) must predict bit-identically to m, across the
//    same synthetic seeds/configs the PR 3 parity harness uses
//    (test_prediction_parity).
//  * Malformed input — truncation at any byte, bad magic, a future format
//    version, CRC mismatch, wrong section tags, hostile lengths, and
//    invariant-violating payloads — must throw serialize::Error with the
//    right ErrorCode, never crash or invoke UB.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/qssf_service.h"
#include "forecast/models.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "ml/levenshtein.h"
#include "ml/linear.h"
#include "serialize/binary.h"
#include "trace/synthetic.h"

namespace helios {
namespace {

using serialize::Error;
using serialize::ErrorCode;

/// Save via `save`, frame, unframe, and load into `out` — the full in-memory
/// round trip every model goes through on disk.
template <typename SaveFn, typename LoadFn>
void round_trip(SaveFn&& save, LoadFn&& load) {
  serialize::Writer w;
  save(w);
  const std::vector<std::uint8_t> file = serialize::frame(w);
  const std::vector<std::uint8_t> body = serialize::unframe(file);
  serialize::Reader r(body);
  load(r);
  r.close("frame body");
}

ml::Dataset trace_dataset(const trace::Trace& t) {
  ml::Dataset d(7);
  std::vector<double> row(7);
  for (const auto& j : t.jobs()) {
    if (!j.is_gpu_job()) continue;
    const CivilTime c = to_civil(j.submit_time);
    row[0] = static_cast<double>(j.num_gpus);
    row[1] = static_cast<double>(j.num_cpus);
    row[2] = static_cast<double>(j.vc);
    row[3] = static_cast<double>(j.user);
    row[4] = static_cast<double>(c.weekday);
    row[5] = static_cast<double>(c.hour);
    row[6] = static_cast<double>(c.minute);
    d.add_row(row, std::log1p(static_cast<double>(j.duration)));
  }
  return d;
}

trace::Trace venus_trace(std::uint64_t seed) {
  auto gen = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"),
                                            seed, 0.02);
  return trace::SyntheticTraceGenerator(gen).generate();
}

void expect_models_identical(const ml::GBDTRegressor& a,
                             const ml::GBDTRegressor& b) {
  ASSERT_EQ(a.tree_count(), b.tree_count());
  ASSERT_EQ(a.training_rmse(), b.training_rmse());
  ASSERT_EQ(a.feature_importance(), b.feature_importance());
  for (std::size_t t = 0; t < a.tree_count(); ++t) {
    const auto& na = a.trees()[t].nodes();
    const auto& nb = b.trees()[t].nodes();
    ASSERT_EQ(na.size(), nb.size()) << "tree " << t;
    for (std::size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i].feature, nb[i].feature) << "tree " << t << " node " << i;
      ASSERT_EQ(na[i].split_bin, nb[i].split_bin) << "tree " << t << " node " << i;
      ASSERT_EQ(na[i].threshold, nb[i].threshold) << "tree " << t << " node " << i;
      ASSERT_EQ(na[i].left, nb[i].left) << "tree " << t << " node " << i;
      ASSERT_EQ(na[i].right, nb[i].right) << "tree " << t << " node " << i;
      ASSERT_EQ(na[i].value, nb[i].value) << "tree " << t << " node " << i;
      ASSERT_EQ(na[i].gain, nb[i].gain) << "tree " << t << " node " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Round-trip parity
// ---------------------------------------------------------------------------

TEST(SerializeRoundTrip, GbdtBitIdenticalAcrossSeedsAndConfigs) {
  for (const std::uint64_t seed : {11ull, 29ull}) {
    const ml::Dataset data = trace_dataset(venus_trace(seed));
    ASSERT_GT(data.rows(), 1000u);

    ml::GBDTConfig configs[3];
    configs[0].n_trees = 10;
    configs[1].n_trees = 8;
    configs[1].max_depth = 4;
    configs[1].max_bins = 33;
    configs[1].subsample = 1.0;
    configs[2].n_trees = 8;
    configs[2].min_samples_leaf = 5;
    configs[2].max_training_rows = data.rows() / 2;
    configs[2].engine = ml::GBDTEngine::kReference;
    for (ml::GBDTConfig cfg : configs) {
      cfg.seed = seed;
      ml::GBDTRegressor model(cfg);
      model.fit(data);
      ASSERT_TRUE(model.trained());

      ml::GBDTRegressor loaded;
      round_trip([&](serialize::Writer& w) { model.save(w); },
                 [&](serialize::Reader& r) { loaded.load(r); });

      expect_models_identical(model, loaded);
      const auto& c = loaded.config();
      EXPECT_EQ(c.n_trees, cfg.n_trees);
      EXPECT_EQ(c.seed, cfg.seed);
      EXPECT_EQ(c.engine, cfg.engine);
      EXPECT_EQ(c.max_training_rows, cfg.max_training_rows);

      const auto batched = model.predict_many(data);
      const auto loaded_batched = loaded.predict_many(data);
      ASSERT_EQ(batched, loaded_batched);
      for (std::size_t r = 0; r < data.rows(); r += 97) {
        ASSERT_EQ(model.predict(data.row(r)), loaded.predict(data.row(r)))
            << "row " << r;
      }
    }
  }
}

TEST(SerializeRoundTrip, UntrainedGbdt) {
  ml::GBDTRegressor model;
  ml::GBDTRegressor loaded;
  round_trip([&](serialize::Writer& w) { model.save(w); },
             [&](serialize::Reader& r) { loaded.load(r); });
  EXPECT_FALSE(loaded.trained());
  const double probe[3] = {1.0, 2.0, 3.0};
  EXPECT_EQ(model.predict(probe), loaded.predict(probe));
}

TEST(SerializeRoundTrip, RidgeRegression) {
  Rng rng(5);
  ml::Dataset data(4);
  std::vector<double> row(4);
  for (int i = 0; i < 500; ++i) {
    for (auto& v : row) v = rng.uniform(-2.0, 2.0);
    data.add_row(row, 3.0 * row[0] - row[2] + rng.normal(0.0, 0.05));
  }
  ml::RidgeRegression model(1e-2);
  model.fit(data);
  ml::RidgeRegression loaded;
  round_trip([&](serialize::Writer& w) { model.save(w); },
             [&](serialize::Reader& r) { loaded.load(r); });
  ASSERT_EQ(model.weights(), loaded.weights());
  ASSERT_EQ(model.intercept(), loaded.intercept());
  ASSERT_EQ(model.predict_many(data), loaded.predict_many(data));
}

TEST(SerializeRoundTrip, NameBucketizerKeepsAssignments) {
  ml::NameBucketizer buckets(0.2, /*prefix_len=*/6);
  std::vector<std::string> names;
  for (int u = 0; u < 20; ++u) {
    for (int t = 0; t < 5; ++t) {
      names.push_back("u" + std::to_string(1000 + u) + "_train_model" +
                      std::to_string(t) + "_v" + std::to_string(t % 3));
    }
  }
  std::vector<std::uint32_t> ids;
  for (const auto& n : names) ids.push_back(buckets.bucket(n));

  ml::NameBucketizer loaded;
  round_trip([&](serialize::Writer& w) { buckets.save(w); },
             [&](serialize::Reader& r) { loaded.load(r); });
  ASSERT_EQ(buckets.bucket_count(), loaded.bucket_count());
  ASSERT_EQ(buckets.representatives(), loaded.representatives());
  // Replaying the same names — and growing with fresh ones — must agree.
  for (std::size_t i = 0; i < names.size(); ++i) {
    ASSERT_EQ(loaded.bucket(names[i]), ids[i]) << names[i];
  }
  for (int t = 0; t < 5; ++t) {
    const std::string fresh = "u9999_eval_model" + std::to_string(t);
    ASSERT_EQ(buckets.bucket(fresh), loaded.bucket(fresh)) << fresh;
  }
}

TEST(SerializeRoundTrip, RollingEstimatorStateAndDedupe) {
  const trace::Trace t = venus_trace(17);
  core::QssfConfig cfg;
  core::RollingEstimator rolling(cfg);
  for (const auto& job : t.jobs()) rolling.observe(t, job);
  ASSERT_GT(rolling.observed_jobs(), 0);

  core::RollingEstimator loaded;
  round_trip([&](serialize::Writer& w) { rolling.save(w); },
             [&](serialize::Reader& r) { loaded.load(r); });

  ASSERT_EQ(rolling.observed_jobs(), loaded.observed_jobs());
  for (const auto& job : t.jobs()) {
    if (!job.is_gpu_job()) continue;
    ASSERT_EQ(rolling.estimate(t, job), loaded.estimate(t, job))
        << "job " << job.job_id;
  }
  // Dedupe keys survived: re-feeding the very same trace is a no-op.
  const std::int64_t before = loaded.observed_jobs();
  for (const auto& job : t.jobs()) loaded.observe(t, job);
  EXPECT_EQ(loaded.observed_jobs(), before);
  // And both copies keep evolving identically on genuinely new jobs.
  trace::Trace more = t;
  auto& fresh = more.add(trace::helios_trace_end() + 60, 1234, 4, 16, "new_u",
                         "vc42", "train_llm_v9", trace::JobState::kCompleted);
  fresh.job_id = 1u << 30;
  rolling.observe(more, fresh);
  loaded.observe(more, fresh);
  for (const auto& job : more.jobs()) {
    if (!job.is_gpu_job()) continue;
    ASSERT_EQ(rolling.estimate(more, job), loaded.estimate(more, job));
  }
}

TEST(SerializeRoundTrip, QssfServiceWarmRestart) {
  const trace::Trace t = venus_trace(13);
  const auto train =
      t.between(trace::helios_trace_begin(), from_civil(2020, 9, 1));
  const auto eval = t.between(from_civil(2020, 9, 1), trace::helios_trace_end());

  core::QssfConfig cfg;
  cfg.gbdt.n_trees = 10;
  core::QssfService service(cfg);
  service.fit(train);

  core::QssfService loaded;
  round_trip([&](serialize::Writer& w) { service.save(w); },
             [&](serialize::Reader& r) { loaded.load(r); });

  ASSERT_TRUE(loaded.trained());
  EXPECT_EQ(loaded.config().lambda, cfg.lambda);
  EXPECT_EQ(loaded.config().gbdt.n_trees, cfg.gbdt.n_trees);
  for (const auto& job : eval.jobs()) {
    if (!job.is_gpu_job()) continue;
    ASSERT_EQ(service.rolling_estimate(eval, job),
              loaded.rolling_estimate(eval, job))
        << "job " << job.job_id;
    ASSERT_EQ(service.ml_estimate(eval, job), loaded.ml_estimate(eval, job))
        << "job " << job.job_id;
    ASSERT_EQ(service.priority(eval, job), loaded.priority(eval, job))
        << "job " << job.job_id;
  }

  // The full windowed evaluation — including the rolling state both services
  // end up with — must be indistinguishable from the original's.
  core::EvalOptions opts;
  opts.min_window = 1;
  opts.max_windows = 5;
  core::OnlinePriorityEvaluator orig_eval(service, eval, opts);
  core::OnlinePriorityEvaluator loaded_eval(loaded, eval, opts);
  ASSERT_EQ(orig_eval.predicted_gpu_time(), loaded_eval.predicted_gpu_time());
  ASSERT_EQ(orig_eval.actual_gpu_time(), loaded_eval.actual_gpu_time());
  for (const auto& job : eval.jobs()) {
    if (!job.is_gpu_job()) continue;
    ASSERT_EQ(orig_eval.priority_of(job), loaded_eval.priority_of(job));
    ASSERT_EQ(service.rolling_estimate(eval, job),
              loaded.rolling_estimate(eval, job));
  }
}

TEST(SerializeRoundTrip, QssfServiceLimitedInfoMode) {
  const trace::Trace t = venus_trace(23);
  const auto train =
      t.between(trace::helios_trace_begin(), from_civil(2020, 7, 1));
  core::QssfConfig cfg;
  cfg.use_names = false;
  cfg.gbdt.n_trees = 6;
  core::QssfService service(cfg);
  service.fit(train);
  core::QssfService loaded;
  round_trip([&](serialize::Writer& w) { service.save(w); },
             [&](serialize::Reader& r) { loaded.load(r); });
  EXPECT_FALSE(loaded.config().use_names);
  for (const auto& job : t.jobs()) {
    if (!job.is_gpu_job()) continue;
    ASSERT_EQ(service.priority(t, job), loaded.priority(t, job));
  }
}

TEST(SerializeRoundTrip, ForecastersBitIdentical) {
  // A daily-seasonal series with trend + noise, 10-minute samples.
  Rng rng(3);
  forecast::TimeSeries series;
  series.begin = from_civil(2020, 4, 1);
  series.step = 600;
  for (int i = 0; i < 2500; ++i) {
    const double day = 40.0 * std::sin(2.0 * 3.141592653589793 *
                                       static_cast<double>(i % 144) / 144.0);
    series.values.push_back(200.0 + 0.01 * i + day + rng.normal(0.0, 3.0));
  }
  const forecast::TimeSeries prefix = series.slice(0, 2000);

  std::vector<std::unique_ptr<forecast::Forecaster>> models;
  models.push_back(std::make_unique<forecast::SeasonalNaiveForecaster>(144));
  models.push_back(std::make_unique<forecast::HoltWintersForecaster>(144));
  models.push_back(std::make_unique<forecast::ARForecaster>(6, 1));
  {
    auto gbdt_cfg = forecast::GBDTForecaster::default_gbdt_config();
    gbdt_cfg.n_trees = 8;
    models.push_back(std::make_unique<forecast::GBDTForecaster>(
        forecast::LagFeatureConfig{}, gbdt_cfg));
  }

  for (const auto& model : models) {
    model->fit(series);
    std::unique_ptr<forecast::Forecaster> loaded;
    round_trip(
        [&](serialize::Writer& w) { forecast::save_forecaster(w, *model); },
        [&](serialize::Reader& r) { loaded = forecast::load_forecaster(r); });
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(model->name(), loaded->name());
    for (const int horizon : {1, 12, 144}) {
      ASSERT_EQ(model->forecast(prefix, horizon),
                loaded->forecast(prefix, horizon))
          << model->name() << " horizon " << horizon;
    }
  }
}

TEST(SerializeRoundTrip, FileIo) {
  const ml::Dataset data = trace_dataset(venus_trace(11));
  ml::GBDTConfig cfg;
  cfg.n_trees = 6;
  ml::GBDTRegressor model(cfg);
  model.fit(data);

  const std::string path = testing::TempDir() + "helios_model_roundtrip.bin";
  serialize::save_file(path, model);

  // load_file validates the frame, loads, and rejects trailing bytes — and
  // is byte-equivalent to the longhand write_file/read_file pair.
  const auto loaded = serialize::load_file<ml::GBDTRegressor>(path);
  expect_models_identical(model, loaded);

  serialize::Writer w;
  model.save(w);
  EXPECT_EQ(serialize::read_file(path), serialize::unframe(serialize::frame(w)));

  // In-place overload (for non-default-constructible types).
  ml::GBDTRegressor in_place;
  serialize::load_file(path, in_place);
  expect_models_identical(model, in_place);
  std::remove(path.c_str());

  EXPECT_THROW(
      { auto missing = serialize::read_file(path); (void)missing; }, Error);
  EXPECT_THROW(
      { auto missing = serialize::load_file<ml::GBDTRegressor>(path); (void)missing; },
      Error);
}

// ---------------------------------------------------------------------------
// Malformed input
// ---------------------------------------------------------------------------

/// A small but real frame to corrupt: a trained QSSF service.
const std::vector<std::uint8_t>& sample_frame() {
  static const std::vector<std::uint8_t> file = [] {
    trace::ClusterSpec spec;
    spec.name = "s";
    spec.vcs = {{"vc0", 2, 8}};
    spec.nodes = 2;
    trace::Trace t(spec);
    for (int i = 0; i < 50; ++i) {
      t.add(600 * i, 300 + 10 * i, 1 + i % 4, 8, "u" + std::to_string(i % 5),
            "vc0", "train_job_v" + std::to_string(i % 7),
            trace::JobState::kCompleted);
    }
    core::QssfConfig cfg;
    cfg.gbdt.n_trees = 3;
    core::QssfService service(cfg);
    service.fit(t);
    serialize::Writer w;
    service.save(w);
    return serialize::frame(w);
  }();
  return file;
}

void expect_error(const std::vector<std::uint8_t>& file, ErrorCode code) {
  try {
    const auto body = serialize::unframe(file);
    serialize::Reader r(body);
    core::QssfService svc;
    svc.load(r);
    FAIL() << "expected serialize::Error " << serialize::to_string(code);
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), code) << e.what();
  }
}

TEST(SerializeMalformed, BadMagic) {
  auto file = sample_frame();
  file[0] ^= 0x40;
  expect_error(file, ErrorCode::kBadMagic);
}

TEST(SerializeMalformed, FutureFormatVersion) {
  // Craft a structurally valid frame claiming version kFormatVersion + 1
  // (CRC recomputed, so only the version is "wrong").
  serialize::Writer raw;
  raw.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(serialize::kMagic), 8));
  raw.u32(serialize::kFormatVersion + 1);
  raw.u32(0);
  raw.str("payload from the future");
  serialize::Writer file = std::move(raw);
  file.u32(serialize::crc32(file.buffer()));
  expect_error(file.buffer(), ErrorCode::kUnsupportedVersion);
}

TEST(SerializeMalformed, CrcMismatch) {
  auto file = sample_frame();
  file[file.size() / 2] ^= 0x01;  // body bit flip
  expect_error(file, ErrorCode::kCrcMismatch);
}

TEST(SerializeMalformed, TruncationAtEveryByte) {
  const auto& file = sample_frame();
  // Every strict prefix must throw a typed Error — never crash, never
  // produce a usable model. Step 1 keeps the sweep exhaustive.
  for (std::size_t len = 0; len < file.size(); ++len) {
    std::vector<std::uint8_t> prefix(file.begin(),
                                     file.begin() + static_cast<long>(len));
    EXPECT_THROW(
        {
          const auto body = serialize::unframe(prefix);
          serialize::Reader r(body);
          core::QssfService svc;
          svc.load(r);
        },
        Error)
        << "prefix length " << len;
  }
}

TEST(SerializeMalformed, WrongSectionTag) {
  // A GBDT body handed to QssfService::load -> kBadSection, and vice versa.
  ml::GBDTRegressor model;
  serialize::Writer w;
  model.save(w);
  serialize::Reader r(w.buffer());
  core::QssfService svc;
  try {
    svc.load(r);
    FAIL() << "expected kBadSection";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadSection);
  }
}

TEST(SerializeMalformed, HostileLengthRejectedBeforeAllocation) {
  // A declared element count far beyond the payload must be rejected by
  // Reader::length() without attempting the allocation.
  serialize::Writer w;
  w.u64(std::uint64_t{1} << 60);
  serialize::Reader r(w.buffer());
  try {
    const auto v = r.vec_f64();
    FAIL() << "expected kTruncated, got vector of " << v.size();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTruncated);
  }
}

TEST(SerializeMalformed, TreeWithCycleRejected) {
  // An interior node pointing at itself (left = right = 0) would loop
  // forever in predict(); load must reject it as corrupt.
  serialize::Writer w;
  w.begin_section(serialize::fourcc("TREE"));
  w.u32(1);   // section version
  w.u64(1);
  w.i32(0);   // feature 0 -> interior
  w.i32(0);   // split_bin
  w.f64(0.5);
  w.i32(0);   // left: backward edge
  w.i32(0);   // right: backward edge
  w.f64(0.0);
  w.f64(0.0);
  w.end_section();
  serialize::Reader r(w.buffer());
  ml::RegressionTree tree;
  try {
    tree.load(r, /*n_features=*/4);
    FAIL() << "expected kCorrupt";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorrupt);
  }
}

TEST(SerializeMalformed, TreesWithoutMatchingBinnerRejected) {
  // A model claiming trees but shipping an empty binner would make
  // predict_many index a zero-feature BinnedMatrix; load must reject it.
  serialize::Writer w;
  w.begin_section(serialize::fourcc("GBDT"));
  w.u32(1);    // section version
  w.i32(1);    // n_trees
  w.i32(6);    // max_depth
  w.f64(0.1);  // learning_rate
  w.i32(20);   // min_samples_leaf
  w.f64(0.8);  // subsample
  w.i32(64);   // max_bins
  w.f64(1.0);  // lambda
  w.u64(42);   // seed
  w.u64(0);    // max_training_rows
  w.u8(0);     // engine
  w.f64(1.5);  // base prediction
  w.u64(1);    // n_features
  w.u64(0);    // empty rmse vector
  w.begin_section(serialize::fourcc("BINR"));
  w.u32(1);    // version
  w.u64(0);    // zero features despite n_features = 1
  w.end_section();
  w.u64(1);    // one tree
  w.begin_section(serialize::fourcc("TREE"));
  w.u32(1);    // version
  w.u64(1);    // one leaf node
  w.i32(-1);   // feature < 0 -> leaf
  w.i32(-1);
  w.f64(0.0);
  w.i32(-1);
  w.i32(-1);
  w.f64(2.0);
  w.f64(0.0);
  w.end_section();
  w.end_section();
  serialize::Reader r(w.buffer());
  ml::GBDTRegressor loaded;
  try {
    loaded.load(r);
    FAIL() << "expected kCorrupt";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorrupt);
  }
}

/// A small but genuinely trained GBDT with an unusual feature width, for
/// crafting cross-layer width-mismatch payloads.
ml::GBDTRegressor trained_model(std::size_t n_features) {
  Rng rng(9);
  ml::Dataset data(n_features);
  std::vector<double> row(n_features);
  for (int i = 0; i < 800; ++i) {
    double y = 0.0;
    for (std::size_t f = 0; f < n_features; ++f) {
      row[f] = rng.uniform(-1.0, 1.0);
      y += (f % 2 == 0 ? 1.0 : -0.5) * row[f];
    }
    data.add_row(row, y);
  }
  ml::GBDTConfig cfg;
  cfg.n_trees = 2;
  cfg.min_samples_leaf = 10;
  ml::GBDTRegressor model(cfg);
  model.fit(data);
  return model;
}

TEST(SerializeMalformed, EmptyTreeRejected) {
  // leaf_for_binned reads nodes_[0] unconditionally; a zero-node tree must
  // be refused at load time.
  serialize::Writer w;
  w.begin_section(serialize::fourcc("TREE"));
  w.u32(1);  // section version
  w.u64(0);  // zero nodes
  w.end_section();
  serialize::Reader r(w.buffer());
  ml::RegressionTree tree;
  try {
    tree.load(r, /*n_features=*/4);
    FAIL() << "expected kCorrupt";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorrupt);
  }
}

TEST(SerializeMalformed, QssfFeatureWidthMismatchRejected) {
  // A QSSF snapshot embedding an internally-consistent GBDT trained on 16
  // features: every section validates in isolation, but the service always
  // encodes 9-feature rows, so load must reject the pairing.
  const ml::GBDTRegressor wide = trained_model(16);
  ASSERT_TRUE(wide.trained());
  serialize::Writer w;
  w.begin_section(serialize::fourcc("QSSF"));
  w.u32(1);     // section version
  w.f64(0.45);  // lambda
  w.f64(0.20);  // name_match_threshold
  w.f64(0.75);  // rolling_decay
  w.u64(64);    // max_names_per_user
  w.u8(1);      // use_names
  wide.save(w);
  ml::NameBucketizer().save(w);
  core::RollingEstimator().save(w);
  w.end_section();
  serialize::Reader r(w.buffer());
  core::QssfService svc;
  try {
    svc.load(r);
    FAIL() << "expected kCorrupt";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorrupt);
  }
}

TEST(SerializeMalformed, ForecasterFeatureWidthMismatchRejected) {
  // Same class through load_forecaster: a lag config building 1 feature
  // paired with a model trained on 16.
  const ml::GBDTRegressor wide = trained_model(16);
  ASSERT_TRUE(wide.trained());
  serialize::Writer w;
  w.begin_section(serialize::fourcc("FCST"));
  w.u32(1);                             // section version
  w.u32(serialize::fourcc("GBFC"));     // concrete type tag
  const std::int32_t lags[1] = {1};
  w.vec_i32(lags);                      // one lag
  w.vec_i32({});                        // no rolling windows
  w.u8(0);                              // calendar off -> feature_count() == 1
  wide.save(w);
  w.end_section();
  serialize::Reader r(w.buffer());
  try {
    auto loaded = forecast::load_forecaster(r);
    FAIL() << "expected kCorrupt, got " << loaded->name();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorrupt);
  }
}

TEST(SerializeMalformed, TrailingBytesRejected) {
  ml::RidgeRegression model;
  serialize::Writer w;
  model.save(w);
  w.u8(0x5a);  // trailing garbage after the section
  serialize::Reader r(w.buffer());
  ml::RidgeRegression loaded;
  loaded.load(r);  // section itself is fine
  try {
    r.close("test");
    FAIL() << "expected kCorrupt";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorrupt);
  }
}

TEST(SerializeMalformed, BinnerEdgeValidation) {
  // Unsorted edges would break FeatureBinner::bin()'s halving search.
  serialize::Writer w;
  w.begin_section(serialize::fourcc("BINR"));
  w.u32(1);   // version
  w.u64(1);   // one feature
  const double edges[3] = {1.0, 3.0, 2.0};
  w.vec_f64(edges);
  w.end_section();
  serialize::Reader r(w.buffer());
  ml::FeatureBinner binner;
  try {
    binner.load(r);
    FAIL() << "expected kCorrupt";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorrupt);
  }
}

}  // namespace
}  // namespace helios
