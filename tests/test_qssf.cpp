#include <gtest/gtest.h>

#include <cmath>

#include "core/qssf_service.h"
#include "sim/simulator.h"
#include "stats/correlation.h"
#include "trace/synthetic.h"

namespace helios::core {
namespace {

using trace::JobState;
using trace::Trace;

trace::ClusterSpec small_spec() {
  trace::ClusterSpec s;
  s.name = "small";
  s.gpus_per_node = 8;
  s.vcs = {{"vc0", 4, 8}};
  s.nodes = 4;
  return s;
}

/// History with two users: alice runs "train_bert" jobs of ~1000s and
/// "eval_bert" jobs of ~50s; bob runs 4-GPU jobs of ~5000s.
Trace make_history() {
  Trace t(small_spec());
  UnixTime at = from_civil(2020, 4, 1);
  for (int i = 0; i < 40; ++i) {
    t.add(at, 1000 + 10 * (i % 5), 1, 6, "alice", "vc0", "alice_train_bert",
          JobState::kCompleted);
    at += 3000;
    t.add(at, 50 + (i % 3), 1, 6, "alice", "vc0", "alice_eval_bert",
          JobState::kCompleted);
    at += 3000;
    t.add(at, 5000 + 100 * (i % 4), 4, 24, "bob", "vc0", "bob_train_gpt2",
          JobState::kCompleted);
    at += 3000;
  }
  t.sort_by_submit_time();
  return t;
}

QssfConfig fast_config() {
  QssfConfig cfg;
  cfg.gbdt.n_trees = 20;
  cfg.gbdt.min_samples_leaf = 5;
  return cfg;
}

TEST(QssfService, RollingUsesNameMatch) {
  QssfService svc(fast_config());
  const Trace h = make_history();
  svc.fit(h);
  Trace probe(small_spec());
  const auto& j1 = probe.add(from_civil(2020, 9, 1), 0, 1, 6, "alice", "vc0",
                             "alice_train_bert", JobState::kCompleted);
  // Rolling estimate should be near 1000s for the train template.
  EXPECT_NEAR(svc.rolling_estimate(probe, j1), 1020.0, 150.0);
  const auto& j2 = probe.add(from_civil(2020, 9, 1), 0, 1, 6, "alice", "vc0",
                             "alice_eval_bert", JobState::kCompleted);
  EXPECT_NEAR(svc.rolling_estimate(probe, j2), 51.0, 20.0);
}

TEST(QssfService, RollingNameVariantMatches) {
  QssfService svc(fast_config());
  const Trace h = make_history();
  svc.fit(h);
  Trace probe(small_spec());
  // "_v2" suffix is within the Levenshtein threshold of the stored name.
  const auto& j = probe.add(from_civil(2020, 9, 1), 0, 1, 6, "alice", "vc0",
                            "alice_train_bert_v2", JobState::kCompleted);
  EXPECT_NEAR(svc.rolling_estimate(probe, j), 1020.0, 150.0);
}

TEST(QssfService, NewNameFallsBackToUserGpuMean) {
  QssfService svc(fast_config());
  const Trace h = make_history();
  svc.fit(h);
  Trace probe(small_spec());
  const auto& j = probe.add(from_civil(2020, 9, 1), 0, 4, 24, "bob", "vc0",
                            "bob_something_completely_new", JobState::kCompleted);
  // bob's 4-GPU jobs average ~5150s.
  EXPECT_NEAR(svc.rolling_estimate(probe, j), 5150.0, 300.0);
}

TEST(QssfService, NewUserFallsBackToGlobalGpuMean) {
  QssfService svc(fast_config());
  const Trace h = make_history();
  svc.fit(h);
  Trace probe(small_spec());
  const auto& j = probe.add(from_civil(2020, 9, 1), 0, 4, 24, "carol", "vc0",
                            "carol_first_job", JobState::kCompleted);
  // Only bob ran 4-GPU jobs; the global 4-GPU mean is his.
  EXPECT_NEAR(svc.rolling_estimate(probe, j), 5150.0, 300.0);
}

TEST(QssfService, PriorityScalesWithGpuCount) {
  QssfService svc(fast_config());
  const Trace h = make_history();
  svc.fit(h);
  Trace probe(small_spec());
  const auto& j1 = probe.add(from_civil(2020, 9, 1), 0, 1, 6, "alice", "vc0",
                             "alice_train_bert", JobState::kCompleted);
  auto j8 = j1;
  j8.num_gpus = 8;
  EXPECT_GT(svc.priority(probe, j8), 4.0 * svc.priority(probe, j1));
}

TEST(QssfService, LambdaExtremesSelectEstimator) {
  const Trace h = make_history();
  QssfConfig rolling_only = fast_config();
  rolling_only.lambda = 1.0;
  QssfConfig ml_only = fast_config();
  ml_only.lambda = 0.0;
  QssfService a(rolling_only);
  QssfService b(ml_only);
  a.fit(h);
  b.fit(h);
  Trace probe(small_spec());
  const auto& j = probe.add(from_civil(2020, 9, 1), 0, 1, 6, "alice", "vc0",
                            "alice_train_bert", JobState::kCompleted);
  EXPECT_DOUBLE_EQ(a.predict_duration(probe, j), a.rolling_estimate(probe, j));
  EXPECT_DOUBLE_EQ(b.predict_duration(probe, j), b.ml_estimate(probe, j));
}

TEST(QssfService, UpdateWithOverlappingTraceDoesNotDoubleCount) {
  // The Model Update Engine hook may be fed cumulative traces; re-observing
  // a job used to double-count the rolling sums and re-decay the name
  // EWMAs, skewing rolling_estimate.
  QssfService svc(fast_config());
  const Trace h = make_history();
  svc.fit(h);

  Trace probe(small_spec());
  const auto& j = probe.add(from_civil(2020, 9, 1), 0, 1, 6, "alice", "vc0",
                            "alice_train_bert", JobState::kCompleted);
  const double before = svc.rolling_estimate(probe, j);

  // Same trace again (fully overlapping): every estimate must be unchanged.
  svc.update(h);
  EXPECT_DOUBLE_EQ(svc.rolling_estimate(probe, j), before);
  svc.observe(h, h.jobs().front());  // single stray re-observe is a no-op too
  EXPECT_DOUBLE_EQ(svc.rolling_estimate(probe, j), before);

  // A cumulative trace (old + genuinely new jobs) absorbs only the new ones.
  Trace cumulative = h;
  for (int i = 0; i < 20; ++i) {
    cumulative.add(from_civil(2020, 9, 2) + 100 * i, 7000, 2, 12, "dave", "vc0",
                   "dave_train_vit", JobState::kCompleted);
  }
  cumulative.sort_by_submit_time();
  svc.update(cumulative);
  EXPECT_DOUBLE_EQ(svc.rolling_estimate(probe, j), before);
  const auto& nj = probe.add(from_civil(2020, 9, 10), 0, 2, 12, "dave", "vc0",
                             "dave_train_vit", JobState::kCompleted);
  EXPECT_NEAR(svc.rolling_estimate(probe, nj), 7000.0, 100.0);
}

TEST(QssfService, ObservesJobsFromIndependentTraceLineages) {
  // Independently built traces restart job ids at 0; the observe dedupe is
  // keyed on job content, so an id collision across lineages must not drop
  // a genuinely new observation.
  QssfService svc(fast_config());
  Trace a(small_spec());
  const auto& ja = a.add(1000, 500, 1, 6, "erin", "vc0", "erin_job_a",
                         JobState::kCompleted);
  svc.observe(a, ja);
  Trace b(small_spec());  // job_id 0 again, different content
  const auto& jb = b.add(99000, 3500, 1, 6, "erin", "vc0", "erin_job_b",
                         JobState::kCompleted);
  svc.observe(b, jb);
  Trace probe(small_spec());
  const auto& p = probe.add(200000, 0, 1, 6, "erin", "vc0", "something_else",
                            JobState::kCompleted);
  // Both observations counted: erin's 1-GPU mean is (500 + 3500) / 2.
  EXPECT_NEAR(svc.rolling_estimate(probe, p), 2000.0, 1e-9);
}

TEST(QssfService, PredictionsCorrelateWithActualOnSyntheticTrace) {
  auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 11,
                                            0.03);
  const Trace t = trace::SyntheticTraceGenerator(cfg).generate();
  const auto train = t.between(trace::helios_trace_begin(), from_civil(2020, 8, 1));
  const auto test = t.between(from_civil(2020, 8, 1), from_civil(2020, 9, 1));

  QssfService svc(fast_config());
  svc.fit(train);
  std::vector<double> predicted;
  std::vector<double> actual;
  for (const auto& j : test.jobs()) {
    if (!j.is_gpu_job()) continue;
    predicted.push_back(svc.priority(test, j));
    actual.push_back(j.gpu_time());
  }
  ASSERT_GT(predicted.size(), 500u);
  // Priority ordering must correlate strongly with true GPU time; this is
  // exactly what QSSF needs (ordering, not calibration).
  EXPECT_GT(stats::spearman(predicted, actual), 0.55);
}

TEST(OnlinePriorityEvaluator, CausalAndComplete) {
  auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 13,
                                            0.02);
  const Trace t = trace::SyntheticTraceGenerator(cfg).generate();
  const auto train = t.between(trace::helios_trace_begin(), from_civil(2020, 9, 1));
  const auto eval = t.between(from_civil(2020, 9, 1), trace::helios_trace_end());

  QssfService svc(fast_config());
  svc.fit(train);
  OnlinePriorityEvaluator evaluator(svc, eval);
  std::size_t gpu_jobs = 0;
  for (const auto& j : eval.jobs()) {
    if (!j.is_gpu_job()) continue;
    ++gpu_jobs;
    EXPECT_GT(evaluator.priority_of(j), 0.0);
  }
  EXPECT_EQ(evaluator.predicted_gpu_time().size(), gpu_jobs);
  EXPECT_EQ(evaluator.actual_gpu_time().size(), gpu_jobs);
}

TEST(QssfEndToEnd, BeatsFifoAndApproachesSjf) {
  auto gen_cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"),
                                                17, 0.05);
  Trace t = trace::SyntheticTraceGenerator(gen_cfg).generate();
  const auto train = t.between(trace::helios_trace_begin(), from_civil(2020, 9, 1));
  const auto eval = t.between(from_civil(2020, 9, 1), trace::helios_trace_end());

  QssfService svc(fast_config());
  svc.fit(train);
  OnlinePriorityEvaluator evaluator(svc, eval);

  auto run = [&](sim::SchedulerPolicy policy, sim::PriorityFn fn) {
    sim::SimConfig sc;
    sc.policy = policy;
    sc.priority_fn = std::move(fn);
    return sim::ClusterSimulator(eval.cluster(), sc).run(eval);
  };
  const auto fifo = run(sim::SchedulerPolicy::kFifo, nullptr);
  const auto sjf = run(sim::SchedulerPolicy::kSjf, nullptr);
  const auto qssf = run(sim::SchedulerPolicy::kQssf, evaluator.as_priority_fn());

  // The headline result (Table 3): QSSF dramatically beats FIFO and lands in
  // the same league as the oracle SJF.
  EXPECT_LT(qssf.avg_jct, 0.8 * fifo.avg_jct);
  EXPECT_LT(qssf.avg_queue_delay, 0.6 * fifo.avg_queue_delay);
  EXPECT_LT(qssf.avg_jct, 3.0 * sjf.avg_jct);
}

}  // namespace
}  // namespace helios::core
