// Edge-case coverage across modules: degenerate inputs, config variants,
// and fallback paths that the happy-path suites do not reach.
#include <gtest/gtest.h>

#include <memory>

#include "core/ces_service.h"
#include "forecast/models.h"
#include "ml/levenshtein.h"
#include "sim/simulator.h"
#include "stats/ecdf.h"
#include "stats/histogram.h"
#include "trace/synthetic.h"

namespace helios {
namespace {

using trace::JobState;
using trace::Trace;

TEST(EdgeCase, HistogramWeightedAdds) {
  stats::Histogram h(0.0, 10.0, 5);
  h.add(1.0, 2.5);
  h.add(1.5, 0.5);
  EXPECT_DOUBLE_EQ(h.count(0), 3.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 1.0);
}

TEST(EdgeCase, EcdfBatchEvaluate) {
  stats::Ecdf e({1.0, 2.0, 3.0});
  const auto ys = e.evaluate(std::vector<double>{0.0, 2.0, 9.0});
  ASSERT_EQ(ys.size(), 3u);
  EXPECT_DOUBLE_EQ(ys[0], 0.0);
  EXPECT_NEAR(ys[1], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(ys[2], 1.0);
}

TEST(EdgeCase, EmptyEcdf) {
  stats::Ecdf e;
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e(5.0), 0.0);
  EXPECT_DOUBLE_EQ(e.inverse(0.5), 0.0);
}

TEST(EdgeCase, TimeSeriesBetweenOutOfRange) {
  forecast::TimeSeries s;
  s.begin = 1000;
  s.step = 10;
  s.values = {1.0, 2.0, 3.0};
  EXPECT_TRUE(s.between(2000, 3000).empty());
  const auto all = s.between(0, 5000);
  EXPECT_EQ(all.size(), 3u);
}

TEST(EdgeCase, GbdtForecasterShortHistoryFallsBack) {
  forecast::TimeSeries tiny;
  tiny.begin = 0;
  tiny.step = 600;
  tiny.values = {5.0, 6.0, 7.0};  // far below max_lag
  forecast::GBDTForecaster model;
  model.fit(tiny);  // no training rows; model stays untrained
  const auto pred = model.forecast(tiny, 3);
  ASSERT_EQ(pred.size(), 3u);
  for (double p : pred) EXPECT_DOUBLE_EQ(p, 7.0);  // persist last value
}

TEST(EdgeCase, ARForecasterConstantSeries) {
  forecast::TimeSeries s;
  s.begin = 0;
  s.step = 600;
  s.values.assign(500, 42.0);
  forecast::ARForecaster model(4);
  model.fit(s);
  for (double p : model.forecast(s, 10)) EXPECT_NEAR(p, 42.0, 1.0);
}

TEST(EdgeCase, SeasonalNaiveShortPrefix) {
  forecast::TimeSeries s;
  s.begin = 0;
  s.step = 600;
  s.values = {3.0, 4.0};
  forecast::SeasonalNaiveForecaster model(144);
  const auto pred = model.forecast(s, 3);
  ASSERT_EQ(pred.size(), 3u);
  for (double p : pred) {
    EXPECT_GE(p, 3.0);
    EXPECT_LE(p, 4.0);
  }
}

TEST(EdgeCase, NameBucketizerPrefixMatchesExhaustiveOnStructuredNames) {
  ml::NameBucketizer with_prefix(0.2, 6);
  ml::NameBucketizer exhaustive(0.2, 0);
  const char* names[] = {"u0001_train_bert",    "u0001_train_bert_v1",
                         "u0001_eval_gpt2",     "u0002_train_bert",
                         "u0002_train_bert_v3", "u0001_train_bert_v2"};
  for (const char* n : names) {
    // Same grouping decisions when names share the discriminating prefix.
    const auto a = with_prefix.bucket(n);
    const auto b = exhaustive.bucket(n);
    (void)a;
    (void)b;
  }
  EXPECT_EQ(with_prefix.bucket_count(), exhaustive.bucket_count());
}

TEST(EdgeCase, SimulatorQueuedThresholdConfig) {
  trace::ClusterSpec spec;
  spec.name = "one";
  spec.vcs = {{"vc0", 1, 8}};
  spec.nodes = 1;
  Trace t(spec);
  t.add(0, 100, 8, 8, "u", "vc0", "a", JobState::kCompleted);
  t.add(1, 10, 8, 8, "u", "vc0", "b", JobState::kCompleted);  // waits 99 s
  sim::SimConfig strict;
  strict.queued_threshold = 1;
  sim::SimConfig lenient;
  lenient.queued_threshold = 1000;
  EXPECT_EQ(sim::ClusterSimulator(spec, strict).run(t).queued_jobs, 1);
  EXPECT_EQ(sim::ClusterSimulator(spec, lenient).run(t).queued_jobs, 0);
}

TEST(EdgeCase, SimulatorSeriesStepConfig) {
  trace::ClusterSpec spec;
  spec.name = "one";
  spec.vcs = {{"vc0", 1, 8}};
  spec.nodes = 1;
  Trace t(spec);
  t.add(0, 1000, 8, 8, "u", "vc0", "a", JobState::kCompleted);
  sim::SimConfig cfg;
  cfg.series_step = 100;
  const auto r = sim::ClusterSimulator(spec, cfg).run(t);
  EXPECT_EQ(r.busy_gpus.step, 100);
  ASSERT_GE(r.busy_gpus.size(), 10u);
  EXPECT_NEAR(r.busy_gpus.values[5], 8.0, 1e-9);
}

TEST(EdgeCase, SimulatorEmptyTrace) {
  trace::ClusterSpec spec;
  spec.name = "one";
  spec.vcs = {{"vc0", 1, 8}};
  spec.nodes = 1;
  const Trace t(spec);
  const auto r = sim::ClusterSimulator(spec, sim::SimConfig{}).run(t);
  EXPECT_TRUE(r.outcomes.empty());
  EXPECT_EQ(r.queued_jobs, 0);
  EXPECT_DOUBLE_EQ(r.avg_jct, 0.0);
}

TEST(EdgeCase, SimulatorCpuOnlyTrace) {
  trace::ClusterSpec spec;
  spec.name = "one";
  spec.vcs = {{"vc0", 1, 8}};
  spec.nodes = 1;
  Trace t(spec);
  for (int i = 0; i < 10; ++i) {
    t.add(i, 5, 0, 4, "u", "vc0", "cpu", JobState::kCompleted);
  }
  const auto r = sim::ClusterSimulator(spec, sim::SimConfig{}).run(t);
  EXPECT_TRUE(r.outcomes.empty());  // only GPU jobs are simulated
}

TEST(EdgeCase, CesLongerBootDelayDelaysMoreJobs) {
  auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Earth"), 53,
                                            0.1);
  Trace t = trace::SyntheticTraceGenerator(cfg).generate();
  const auto operated = sim::operate_fifo(t);
  const auto begin = from_civil(2020, 9, 1);
  const auto history =
      operated.busy_nodes.between(operated.busy_nodes.begin, begin);
  auto run = [&](std::int64_t boot_delay) {
    core::CesConfig cc;
    cc.sigma = 1;
    cc.boot_delay = boot_delay;
    core::CesService svc(
        cc, std::make_unique<forecast::SeasonalNaiveForecaster>(144));
    svc.fit(history);
    return svc.replay(t, history, begin, from_civil(2020, 9, 15));
  };
  const auto fast = run(60);
  const auto slow = run(1800);
  EXPECT_LE(fast.affected_jobs, slow.affected_jobs + 2);
  EXPECT_GT(slow.avg_drs_nodes, 0.0);
}

TEST(EdgeCase, GeneratorCustomWindow) {
  // A one-week custom window still produces a valid, sorted trace.
  trace::GeneratorConfig cfg;
  cfg.cluster = trace::scale_cluster(trace::helios_cluster("Venus"), 0.1);
  cfg.knobs = trace::helios_knobs("Venus");
  cfg.window_begin = from_civil(2020, 6, 1);
  cfg.begin = cfg.window_begin - 7 * kSecondsPerDay;
  cfg.end = from_civil(2020, 6, 8);
  cfg.seed = 5;
  const Trace t = trace::SyntheticTraceGenerator(cfg).generate();
  EXPECT_GT(t.size(), 50u);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t.jobs()[i - 1].submit_time, t.jobs()[i].submit_time);
  }
}

TEST(EdgeCase, WithinDistanceZeroLimit) {
  EXPECT_TRUE(ml::within_distance("abc", "abc", 0));
  EXPECT_FALSE(ml::within_distance("abc", "abd", 0));
  EXPECT_TRUE(ml::within_distance("", "", 0));
  EXPECT_FALSE(ml::within_distance("", "a", 0));
}

}  // namespace
}  // namespace helios
