// Hand-rolled histogram gradient-boosted decision trees (regression,
// squared loss) — the library's stand-in for LightGBM, which the paper uses
// for both the QSSF duration model and the CES node forecaster.
//
// Training follows the histogram algorithm: features are quantile-binned once
// (<= max_bins buckets); each tree picks splits from per-feature gradient
// histograms by best variance gain; leaves output the shrunk mean residual.
// Row subsampling per tree gives stochastic boosting.
//
// Two engines share the scaffolding (binning, row caps, subsampling,
// residuals — identical RNG streams) and must produce bit-identical models:
//
//  * GBDTEngine::kHistogram (default) keeps persistent per-node row sets,
//    builds only the smaller child's histograms and derives the sibling by
//    subtracting from the parent, accumulates histograms row-parallel into
//    per-chunk buffers merged on the shared ThreadPool, and tracks each
//    sampled row's leaf during construction so the per-tree prediction
//    update is an O(1) lookup per row over the binned matrix.
//  * GBDTEngine::kReference retains the straightforward pre-histogram-engine
//    trainer: every node rebuilds its histograms from scratch and the
//    prediction update re-traverses raw features row by row. It exists as
//    the parity baseline (mirroring common::ExecMode::kSerial).
//
// Bit-for-bit parity across engines and thread counts is possible because
// per-tree gradients are quantized to int64 (QuantizedGradients): integer
// histogram sums are exact under any accumulation order and under sibling
// subtraction, so split decisions and leaf values cannot drift.
//
// Determinism: fit() is a pure function of (dataset, config) — the same
// inputs produce the same trees bit-for-bit on any thread count and either
// engine (test_prediction_parity pins this). predict()/predict_many() are
// pure functions of the fitted model, and a model restored via load() (see
// docs/FORMATS.md, "GBDT" section) predicts bit-identically to the original
// (test_serialize pins this).
//
// Thread-safety: fit() and load() mutate the model and must not race with
// anything; the const members (predict, predict_many, accessors) are safe to
// call concurrently from any number of threads once training/loading has
// completed. fit() and predict_many() internally parallelize on the shared
// global_pool(), so they must not be called from inside a pool task that
// blocks on them (use parallel_run_tasks for such nesting).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace helios::serialize {
class Reader;
class Writer;
}  // namespace helios::serialize

namespace helios::ml {

enum class GBDTEngine {
  kHistogram,  ///< sibling-subtraction histogram engine (default)
  kReference,  ///< retained from-scratch trainer (parity/benchmark baseline)
};

struct GBDTConfig {
  int n_trees = 80;
  int max_depth = 6;
  double learning_rate = 0.10;
  int min_samples_leaf = 20;
  double subsample = 0.8;   ///< row fraction per tree
  int max_bins = 64;        ///< clamped to 256 (bin ids travel as uint8)
  double lambda = 1.0;      ///< L2 regularisation on leaf values
  std::uint64_t seed = 42;
  /// Cap on training rows (uniform subsample above it); 0 = no cap.
  std::size_t max_training_rows = 0;
  GBDTEngine engine = GBDTEngine::kHistogram;
};

/// Per-tree gradients quantized to a fixed-point int64 grid. The scale is a
/// power of two chosen so the sum over every training row cannot overflow;
/// int64 histogram sums are then exact and order-independent, which is what
/// makes engine/thread-count parity bit-for-bit instead of approximate.
struct QuantizedGradients {
  /// Per-row quantized gradient; fits int32 by construction (the scale caps
  /// |q| below 2^30), halving the memory traffic of every histogram pass.
  std::vector<std::int32_t> q;
  double inv_scale = 1.0;  ///< exact power of two; value = q * inv_scale

  /// Requantize in place (reuses the q buffer across boosting iterations).
  void assign(std::span<const double> gradients);
  /// Same, with max|gradient| already known (callers fuse the scan into the
  /// residual pass).
  void assign(std::span<const double> gradients, double max_abs);

  [[nodiscard]] static QuantizedGradients from(std::span<const double> gradients) {
    QuantizedGradients out;
    out.assign(gradients);
    return out;
  }
};

/// One regression tree over binned features (used internally by the GBDT and
/// exposed for unit testing).
class RegressionTree {
 public:
  struct Node {
    // Leaf iff feature < 0.
    std::int32_t feature = -1;
    std::int32_t split_bin = -1;  ///< go left iff bin(value) <= split_bin
    double threshold = 0.0;  ///< raw-unit equivalent: go left iff value <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;  ///< leaf output
    double gain = 0.0;   ///< split gain (for feature importance)
  };

  /// Fit to the quantized gradients of `rows` over the binned matrix
  /// (row-major for kHistogram, column-major for kReference). `rows` is the
  /// persistent row set, partitioned in place per node. `leaf_of` must have
  /// X.rows entries; the leaf node id of every row in `rows` is recorded
  /// there (other entries are left untouched).
  void fit(const BinnedMatrix& x, const FeatureBinner& binner,
           const QuantizedGradients& grad, std::span<std::uint32_t> rows,
           std::span<std::int32_t> leaf_of, const GBDTConfig& cfg);

  [[nodiscard]] double predict(std::span<const double> features) const noexcept;
  /// Leaf node id reached by binned traversal of `row` (exactly the leaf
  /// predict() reaches on the raw values, since bin <= split_bin iff
  /// value <= threshold).
  [[nodiscard]] std::int32_t leaf_for_binned(const BinnedMatrix& x,
                                             std::size_t row) const noexcept;
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

  /// Persist / restore the node array ("TREE" section, docs/FORMATS.md).
  /// load() validates the tree shape (preorder child links, in-range feature
  /// ids against `n_features`) so a corrupt file cannot make predict() read
  /// out of bounds or loop forever; it throws serialize::Error instead.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r, std::size_t n_features);

 private:
  std::vector<Node> nodes_;
};

class GBDTRegressor {
 public:
  explicit GBDTRegressor(GBDTConfig config = {}) : config_(config) {}

  /// Train on the dataset; replaces any previous model.
  void fit(const Dataset& data);

  [[nodiscard]] double predict(std::span<const double> features) const noexcept;
  /// Batched inference: bins `data` once and walks it tree-at-a-time,
  /// row-parallel. Bitwise-identical to calling predict() per row.
  [[nodiscard]] std::vector<double> predict_many(const Dataset& data) const;

  /// Total split gain accumulated per feature.
  [[nodiscard]] std::vector<double> feature_importance() const;

  /// Training RMSE after each boosting iteration (for convergence tests).
  [[nodiscard]] const std::vector<double>& training_rmse() const noexcept {
    return train_rmse_;
  }
  [[nodiscard]] const GBDTConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool trained() const noexcept { return !trees_.empty(); }
  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }
  [[nodiscard]] const std::vector<RegressionTree>& trees() const noexcept {
    return trees_;
  }
  [[nodiscard]] const FeatureBinner& binner() const noexcept { return binner_; }

  /// Persist the fitted model ("GBDT" section, docs/FORMATS.md): config,
  /// base prediction, binner edges, every tree, and the training-RMSE
  /// curve. Wrap with serialize::save_file for the on-disk frame.
  void save(serialize::Writer& w) const;
  /// Replace this model with the persisted one. The loaded model predicts
  /// bit-identically to the saved one (predict and predict_many). Throws
  /// serialize::Error on malformed input, leaving no partially-adopted
  /// state behind.
  void load(serialize::Reader& r);

 private:
  GBDTConfig config_;
  double base_prediction_ = 0.0;
  std::size_t n_features_ = 0;
  FeatureBinner binner_;
  std::vector<RegressionTree> trees_;
  std::vector<double> train_rmse_;
};

}  // namespace helios::ml
