#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>

namespace helios::stats {

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double q) const noexcept {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[std::min(idx > 0 ? idx - 1 : 0, sorted_.size() - 1)];
}

std::vector<double> Ecdf::evaluate(std::span<const double> xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back((*this)(x));
  return out;
}

std::vector<double> log_space_points(double lo, double hi, int n) {
  std::vector<double> pts;
  if (n <= 0 || lo <= 0.0 || hi <= lo) return pts;
  pts.reserve(static_cast<std::size_t>(n));
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (int i = 0; i < n; ++i) {
    const double f = n == 1 ? 0.0 : static_cast<double>(i) / (n - 1);
    pts.push_back(std::exp(llo + f * (lhi - llo)));
  }
  return pts;
}

std::vector<double> lin_space_points(double lo, double hi, int n) {
  std::vector<double> pts;
  if (n <= 0) return pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double f = n == 1 ? 0.0 : static_cast<double>(i) / (n - 1);
    pts.push_back(lo + f * (hi - lo));
  }
  return pts;
}

double ks_statistic(const Ecdf& a, const Ecdf& b) {
  double sup = 0.0;
  for (double x : a.sorted_sample()) sup = std::max(sup, std::abs(a(x) - b(x)));
  for (double x : b.sorted_sample()) sup = std::max(sup, std::abs(a(x) - b(x)));
  return sup;
}

}  // namespace helios::stats
