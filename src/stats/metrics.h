// Forecast / regression error metrics.
//
// SMAPE is the headline metric of the paper's CES evaluation ("around 3.6%
// error rate (measured in Symmetric Mean Absolute Percentage Error)").
#pragma once

#include <span>

namespace helios::stats {

/// Symmetric Mean Absolute Percentage Error, in percent (0..200):
/// mean of 200 * |y - yhat| / (|y| + |yhat|); terms with both values 0
/// contribute 0.
[[nodiscard]] double smape(std::span<const double> actual,
                           std::span<const double> predicted) noexcept;

/// Mean Absolute Error.
[[nodiscard]] double mae(std::span<const double> actual,
                         std::span<const double> predicted) noexcept;

/// Root Mean Squared Error.
[[nodiscard]] double rmse(std::span<const double> actual,
                          std::span<const double> predicted) noexcept;

/// Mean Absolute Percentage Error in percent; terms with actual == 0 are
/// skipped.
[[nodiscard]] double mape(std::span<const double> actual,
                          std::span<const double> predicted) noexcept;

/// Coefficient of determination R^2 (can be negative for bad fits).
[[nodiscard]] double r2(std::span<const double> actual,
                        std::span<const double> predicted) noexcept;

}  // namespace helios::stats
