#!/usr/bin/env bash
# Tier-1 verify in one command: configure, build, run every gtest suite.
#
#   ./ci.sh            full build + full test sweep
#   ./ci.sh smoke      full build + fast suites only (ctest -L smoke)
#
# Extra args after the mode are passed through to ctest.
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-full}"
[ $# -gt 0 ] && shift
case "$mode" in
  full|smoke) ;;
  *) echo "usage: ./ci.sh [full|smoke] [ctest args...]" >&2; exit 2 ;;
esac

cmake -B build -S .
cmake --build build -j "$(nproc)"

cd build
if [ "$mode" = smoke ]; then
  exec ctest -L smoke --output-on-failure -j "$(nproc)" "$@"
fi
exec ctest --output-on-failure -j "$(nproc)" "$@"
