#include "sim/cluster_state.h"

#include <algorithm>
#include <limits>

namespace helios::sim {

ClusterState::ClusterState(const trace::ClusterSpec& spec) {
  vc_nodes_.resize(spec.vcs.size());
  for (std::size_t vi = 0; vi < spec.vcs.size(); ++vi) {
    const auto& vc = spec.vcs[vi];
    for (int n = 0; n < vc.nodes; ++n) {
      Node node;
      node.vc = static_cast<int>(vi);
      node.total_gpus = vc.gpus_per_node;
      node.free_gpus = vc.gpus_per_node;
      vc_nodes_[vi].push_back(static_cast<int>(nodes_.size()));
      nodes_.push_back(node);
    }
  }
}

std::optional<Allocation> ClusterState::try_allocate(int vc, int gpus) {
  if (vc < 0 || vc >= vc_count() || gpus <= 0) return std::nullopt;
  const auto& indices = vc_nodes_[static_cast<std::size_t>(vc)];
  Allocation alloc;

  // Best-fit helper: schedulable node with the fewest free GPUs >= want.
  auto best_fit = [&](int want, bool require_empty) -> int {
    int best = -1;
    int best_free = std::numeric_limits<int>::max();
    for (int ni : indices) {
      const Node& n = nodes_[static_cast<std::size_t>(ni)];
      if (!n.schedulable() || n.free_gpus < want) continue;
      if (require_empty && n.free_gpus != n.total_gpus) continue;
      if (n.free_gpus < best_free) {
        best_free = n.free_gpus;
        best = ni;
      }
    }
    return best;
  };

  const int gpn = indices.empty()
                      ? 0
                      : nodes_[static_cast<std::size_t>(indices[0])].total_gpus;
  if (gpn == 0) return std::nullopt;

  if (gpus <= gpn) {
    const int ni = best_fit(gpus, /*require_empty=*/false);
    if (ni < 0) return std::nullopt;
    alloc.node_gpus.emplace_back(ni, gpus);
  } else {
    // Multi-node gang: full nodes first, remainder best-fit.
    const int full_nodes = gpus / gpn;
    const int rem = gpus % gpn;
    std::vector<int> picked;
    picked.reserve(static_cast<std::size_t>(full_nodes));
    for (int ni : indices) {
      if (static_cast<int>(picked.size()) == full_nodes) break;
      const Node& n = nodes_[static_cast<std::size_t>(ni)];
      if (n.schedulable() && n.free_gpus == n.total_gpus) picked.push_back(ni);
    }
    if (static_cast<int>(picked.size()) < full_nodes) return std::nullopt;
    for (int ni : picked) alloc.node_gpus.emplace_back(ni, gpn);
    if (rem > 0) {
      // The remainder must land on a node not already fully taken.
      int best = -1;
      int best_free = std::numeric_limits<int>::max();
      for (int ni : indices) {
        if (std::find(picked.begin(), picked.end(), ni) != picked.end()) continue;
        const Node& n = nodes_[static_cast<std::size_t>(ni)];
        if (!n.schedulable() || n.free_gpus < rem) continue;
        if (n.free_gpus < best_free) {
          best_free = n.free_gpus;
          best = ni;
        }
      }
      if (best < 0) return std::nullopt;
      alloc.node_gpus.emplace_back(best, rem);
    }
  }

  apply(alloc, /*sign=*/-1);
  return alloc;
}

void ClusterState::apply(const Allocation& a, int sign) {
  for (auto [ni, g] : a.node_gpus) {
    Node& n = nodes_[static_cast<std::size_t>(ni)];
    const bool was_busy = n.busy();
    n.free_gpus += sign * g;
    busy_gpus_ -= sign * g;
    if (was_busy != n.busy()) busy_nodes_ += n.busy() ? 1 : -1;
  }
}

void ClusterState::release(const Allocation& a) { apply(a, /*sign=*/+1); }

void ClusterState::reclaim(const Allocation& a) { apply(a, /*sign=*/-1); }

int ClusterState::free_gpus(int vc) const noexcept {
  int total = 0;
  for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
    const Node& n = nodes_[static_cast<std::size_t>(ni)];
    if (n.schedulable()) total += n.free_gpus;
  }
  return total;
}

int ClusterState::schedulable_gpus(int vc) const noexcept {
  int total = 0;
  for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
    const Node& n = nodes_[static_cast<std::size_t>(ni)];
    if (n.schedulable()) total += n.total_gpus;
  }
  return total;
}

int ClusterState::capacity_gpus(int vc) const noexcept {
  int total = 0;
  for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
    total += nodes_[static_cast<std::size_t>(ni)].total_gpus;
  }
  return total;
}

bool ClusterState::can_ever_fit(int vc, int gpus) const noexcept {
  return vc >= 0 && vc < vc_count() && gpus > 0 && gpus <= capacity_gpus(vc);
}

int ClusterState::busy_nodes() const noexcept { return busy_nodes_; }

int ClusterState::busy_gpus() const noexcept { return busy_gpus_; }

int ClusterState::active_nodes() const noexcept {
  int c = 0;
  for (const auto& n : nodes_) c += n.power != PowerState::kSleeping;
  return c;
}

int ClusterState::sleeping_nodes() const noexcept {
  return node_count() - active_nodes();
}

int ClusterState::sleep_idle_nodes(int count) {
  int slept = 0;
  for (auto& n : nodes_) {
    if (slept == count) break;
    if (n.power == PowerState::kActive && !n.busy()) {
      n.power = PowerState::kSleeping;
      ++slept;
    }
  }
  return slept;
}

int ClusterState::sleep_idle_nodes_in_vc(int vc, int count) {
  int slept = 0;
  for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
    if (slept == count) break;
    Node& n = nodes_[static_cast<std::size_t>(ni)];
    if (n.power == PowerState::kActive && !n.busy()) {
      n.power = PowerState::kSleeping;
      ++slept;
    }
  }
  return slept;
}

int ClusterState::idle_active_nodes_in_vc(int vc) const noexcept {
  int c = 0;
  for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
    const Node& n = nodes_[static_cast<std::size_t>(ni)];
    c += n.power == PowerState::kActive && !n.busy();
  }
  return c;
}

int ClusterState::wake_nodes(int count, std::int64_t now, std::int64_t boot_delay) {
  int woken = 0;
  for (auto& n : nodes_) {
    if (woken == count) break;
    if (n.power == PowerState::kSleeping) {
      n.power = PowerState::kBooting;
      n.boot_ready = now + boot_delay;
      ++woken;
    }
  }
  return woken;
}

int ClusterState::wake_nodes_in_vc(int vc, int count, std::int64_t now,
                                   std::int64_t boot_delay) {
  int woken = 0;
  for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
    if (woken == count) break;
    Node& n = nodes_[static_cast<std::size_t>(ni)];
    if (n.power == PowerState::kSleeping) {
      n.power = PowerState::kBooting;
      n.boot_ready = now + boot_delay;
      ++woken;
    }
  }
  return woken;
}

int ClusterState::booting_nodes_in_vc(int vc) const noexcept {
  int c = 0;
  for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
    c += nodes_[static_cast<std::size_t>(ni)].power == PowerState::kBooting;
  }
  return c;
}

int ClusterState::sleeping_nodes_in_vc(int vc) const noexcept {
  int c = 0;
  for (int ni : vc_nodes_[static_cast<std::size_t>(vc)]) {
    c += nodes_[static_cast<std::size_t>(ni)].power == PowerState::kSleeping;
  }
  return c;
}

void ClusterState::finish_boots(std::int64_t now) {
  for (auto& n : nodes_) {
    if (n.power == PowerState::kBooting && n.boot_ready <= now) {
      n.power = PowerState::kActive;
    }
  }
}

std::optional<std::int64_t> ClusterState::next_boot_ready() const noexcept {
  std::optional<std::int64_t> next;
  for (const auto& n : nodes_) {
    if (n.power == PowerState::kBooting) {
      next = next ? std::min(*next, n.boot_ready) : n.boot_ready;
    }
  }
  return next;
}

}  // namespace helios::sim
