// Table 3: average JCT, average queuing time and number of queued jobs under
// FIFO / SJF / QSSF (plus SRTF) for the four Helios clusters (September) and
// Philly (October-November).
#include <cstdio>

#include "bench_common.h"
#include "common/text_table.h"

namespace {

struct Row {
  std::string cluster;
  helios::bench::SchedulerStudy study;
};

}  // namespace

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;

  bench::print_header("Table 3",
                      "Scheduler performance across the five traces",
                      "Helios eval: September; Philly eval: Oct 15 - Nov 30");

  std::vector<Row> rows;
  for (const auto& tp : bench::helios_traces()) {
    const helios::trace::Trace& t = *tp;
    rows.push_back({t.cluster().name,
                    bench::run_scheduler_study(t, helios::from_civil(2020, 9, 1),
                                               helios::trace::helios_trace_end())});
  }
  rows.push_back({"Philly", bench::run_scheduler_study(
                                bench::philly_trace(),
                                helios::from_civil(2017, 10, 15),
                                helios::from_civil(2017, 12, 1))});

  auto emit = [&](const char* title,
                  const std::function<std::string(const helios::sim::SimResult&)>& f) {
    TextTable table({"", "Venus", "Earth", "Saturn", "Uranus", "Philly"});
    for (const char* policy : {"FIFO", "SJF", "QSSF", "SRTF"}) {
      std::vector<std::string> cells = {policy};
      for (const auto& r : rows) {
        const auto& sr = policy == std::string("FIFO")   ? r.study.fifo
                         : policy == std::string("SJF")  ? r.study.sjf
                         : policy == std::string("QSSF") ? r.study.qssf
                                                         : r.study.srtf;
        cells.push_back(f(sr));
      }
      table.add_row(std::move(cells));
    }
    std::printf("%s\n%s\n", title, table.str().c_str());
  };

  emit("Average JCT (s)", [](const helios::sim::SimResult& r) {
    return TextTable::cell(r.avg_jct, 0);
  });
  emit("Average queuing time (s)", [](const helios::sim::SimResult& r) {
    return TextTable::cell(r.avg_queue_delay, 0);
  });
  emit("# of queued jobs", [](const helios::sim::SimResult& r) {
    return TextTable::cell_grouped(r.queued_jobs);
  });

  TextTable speedup({"", "Venus", "Earth", "Saturn", "Uranus", "Philly"});
  std::vector<std::string> jct_row = {"JCT improvement (FIFO/QSSF)"};
  std::vector<std::string> queue_row = {"queuing improvement (FIFO/QSSF)"};
  for (const auto& r : rows) {
    jct_row.push_back(
        TextTable::cell(r.study.fifo.avg_jct / std::max(1.0, r.study.qssf.avg_jct), 1) + "x");
    queue_row.push_back(
        TextTable::cell(r.study.fifo.avg_queue_delay /
                            std::max(1.0, r.study.qssf.avg_queue_delay), 1) + "x");
  }
  speedup.add_row(std::move(jct_row));
  speedup.add_row(std::move(queue_row));
  std::printf("%s\n", speedup.str().c_str());

  bench::print_expectation("QSSF vs FIFO avg JCT", "1.5~6.5x better",
                           "see improvement row");
  bench::print_expectation("QSSF vs FIFO queuing", "4.8~20.2x (Helios), 7.3x (Philly)",
                           "see improvement row");
  bench::print_expectation("QSSF ~ SJF", "comparable without oracle info",
                           "compare SJF and QSSF rows");
  return 0;
}
