// Sharded-vs-serial determinism of the VC-sharded simulator.
//
// ClusterSimulator runs one VcSimulator per VC, concurrently under
// common::ExecMode::kParallel. This suite asserts the parallel run's SimResult —
// outcomes, counters, per-VC stats, and the busy-nodes/GPUs series — is
// *identical* (exact doubles, not approximately equal) to the retained
// serial reference (common::ExecMode::kSerial) across all four policies,
// backfill on/off, and several synthetic-trace seeds.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace helios::sim {
namespace {

using trace::Trace;

const Trace& venus_trace(std::uint64_t seed) {
  static std::map<std::uint64_t, Trace> cache;
  auto it = cache.find(seed);
  if (it == cache.end()) {
    auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"),
                                              seed, 0.02);
    it = cache.emplace(seed, trace::SyntheticTraceGenerator(cfg).generate())
             .first;
  }
  return it->second;
}

void expect_identical(const SimResult& serial, const SimResult& sharded) {
  ASSERT_EQ(serial.outcomes.size(), sharded.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    const JobOutcome& a = serial.outcomes[i];
    const JobOutcome& b = sharded.outcomes[i];
    ASSERT_EQ(a.trace_index, b.trace_index) << "outcome " << i;
    ASSERT_EQ(a.submit, b.submit) << "outcome " << i;
    ASSERT_EQ(a.start, b.start) << "outcome " << i;
    ASSERT_EQ(a.end, b.end) << "outcome " << i;
    ASSERT_EQ(a.gpus, b.gpus) << "outcome " << i;
    ASSERT_EQ(a.vc, b.vc) << "outcome " << i;
    ASSERT_EQ(a.kills, b.kills) << "outcome " << i;
    ASSERT_EQ(a.rejected, b.rejected) << "outcome " << i;
  }
  // Scalar metrics: exact equality — both paths fold the same integers in
  // the same order.
  EXPECT_EQ(serial.avg_jct, sharded.avg_jct);
  EXPECT_EQ(serial.avg_queue_delay, sharded.avg_queue_delay);
  EXPECT_EQ(serial.queued_jobs, sharded.queued_jobs);
  EXPECT_EQ(serial.preemptions, sharded.preemptions);
  EXPECT_EQ(serial.rejected_jobs, sharded.rejected_jobs);
  EXPECT_EQ(serial.unfinished_jobs, sharded.unfinished_jobs);
  EXPECT_EQ(serial.job_kills, sharded.job_kills);
  EXPECT_EQ(serial.node_failures, sharded.node_failures);
  ASSERT_EQ(serial.vc_stats.size(), sharded.vc_stats.size());
  for (std::size_t v = 0; v < serial.vc_stats.size(); ++v) {
    EXPECT_EQ(serial.vc_stats[v].name, sharded.vc_stats[v].name);
    EXPECT_EQ(serial.vc_stats[v].gpus, sharded.vc_stats[v].gpus);
    EXPECT_EQ(serial.vc_stats[v].jobs, sharded.vc_stats[v].jobs);
    EXPECT_EQ(serial.vc_stats[v].avg_queue_delay,
              sharded.vc_stats[v].avg_queue_delay);
    EXPECT_EQ(serial.vc_stats[v].avg_jct, sharded.vc_stats[v].avg_jct);
  }
  // Busy series: bit-identical buckets (integer-exact integration).
  ASSERT_EQ(serial.busy_nodes.begin, sharded.busy_nodes.begin);
  ASSERT_EQ(serial.busy_nodes.step, sharded.busy_nodes.step);
  ASSERT_EQ(serial.busy_nodes.values.size(), sharded.busy_nodes.values.size());
  for (std::size_t i = 0; i < serial.busy_nodes.values.size(); ++i) {
    ASSERT_EQ(serial.busy_nodes.values[i], sharded.busy_nodes.values[i])
        << "busy_nodes bucket " << i;
  }
  ASSERT_EQ(serial.busy_gpus.values.size(), sharded.busy_gpus.values.size());
  for (std::size_t i = 0; i < serial.busy_gpus.values.size(); ++i) {
    ASSERT_EQ(serial.busy_gpus.values[i], sharded.busy_gpus.values[i])
        << "busy_gpus bucket " << i;
  }
}

struct Case {
  SchedulerPolicy policy;
  bool backfill;
  std::uint64_t seed;
};

class ShardedDeterminismTest : public ::testing::TestWithParam<Case> {};

TEST_P(ShardedDeterminismTest, ShardedMatchesSerialReference) {
  const Case c = GetParam();
  const Trace& t = venus_trace(c.seed);

  SimConfig cfg;
  cfg.policy = c.policy;
  cfg.backfill = c.backfill;
  if (c.policy == SchedulerPolicy::kQssf) {
    cfg.priority_fn = [](const trace::JobRecord& j) {
      return static_cast<double>(j.duration) * j.num_gpus;
    };
  }

  cfg.execution = common::ExecMode::kSerial;
  const SimResult serial = ClusterSimulator(t.cluster(), cfg).run(t);

  cfg.execution = common::ExecMode::kParallel;
  const SimResult sharded = ClusterSimulator(t.cluster(), cfg).run(t);
  expect_identical(serial, sharded);

  // Sharded runs must also be stable across repetitions (no dependence on
  // thread scheduling).
  const SimResult again = ClusterSimulator(t.cluster(), cfg).run(t);
  expect_identical(sharded, again);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto policy :
       {SchedulerPolicy::kFifo, SchedulerPolicy::kSjf, SchedulerPolicy::kSrtf,
        SchedulerPolicy::kQssf}) {
    for (const bool backfill : {false, true}) {
      for (const std::uint64_t seed : {7ull, 19ull}) {
        cases.push_back({policy, backfill, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesBackfillSeeds, ShardedDeterminismTest,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) {
                           return std::string(to_string(info.param.policy)) +
                                  (info.param.backfill ? "Backfill" : "") +
                                  "Seed" + std::to_string(info.param.seed);
                         });

// Fault-injected runs: same sharded-vs-serial bit-identity, now with node
// failures killing jobs, removing capacity, and requeueing work mid-run —
// across policies, backfill, failure rates, restart semantics, and seeds.
struct FaultCase {
  SchedulerPolicy policy;
  bool backfill;
  double mtbf_days;  ///< 0 = no fault plan attached
  FaultRestart restart;
  std::uint64_t seed;
};

class FaultShardedDeterminismTest
    : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultShardedDeterminismTest, ShardedMatchesSerialUnderFaults) {
  const FaultCase c = GetParam();
  const Trace& t = venus_trace(c.seed);

  FaultPlan plan;
  SimConfig cfg;
  cfg.policy = c.policy;
  cfg.backfill = c.backfill;
  cfg.restart = c.restart;
  if (c.policy == SchedulerPolicy::kQssf) {
    cfg.priority_fn = [](const trace::JobRecord& j) {
      return static_cast<double>(j.duration) * j.num_gpus;
    };
  }
  if (c.mtbf_days > 0.0) {
    FaultPlanConfig fp;
    fp.mtbf_days = c.mtbf_days;
    fp.flaky_fraction = 0.25;
    fp.seed = c.seed;
    const auto& jobs = t.jobs();
    const UnixTime begin = jobs.front().submit_time;
    const UnixTime end = jobs.back().submit_time + 14 * 86400;
    plan = FaultPlan::generate(t.cluster(), fp, begin, end);
    cfg.fault_plan = &plan;
  }

  cfg.execution = common::ExecMode::kSerial;
  const SimResult serial = ClusterSimulator(t.cluster(), cfg).run(t);

  cfg.execution = common::ExecMode::kParallel;
  const SimResult sharded = ClusterSimulator(t.cluster(), cfg).run(t);
  expect_identical(serial, sharded);

  const SimResult again = ClusterSimulator(t.cluster(), cfg).run(t);
  expect_identical(sharded, again);

  if (c.mtbf_days > 0.0 && c.mtbf_days <= 30.0) {
    // A churn-level plan over a months-long window must actually exercise
    // the fault path, or this sweep tests nothing.
    EXPECT_GT(serial.node_failures, 0);
    EXPECT_GT(serial.job_kills, 0);
  }
}

std::vector<FaultCase> fault_cases() {
  std::vector<FaultCase> cases;
  for (const auto policy :
       {SchedulerPolicy::kFifo, SchedulerPolicy::kSjf, SchedulerPolicy::kSrtf,
        SchedulerPolicy::kQssf}) {
    for (const bool backfill : {false, true}) {
      for (const double mtbf : {30.0, 7.0}) {
        for (const std::uint64_t seed : {7ull, 19ull}) {
          const auto restart = (seed % 2 == 1) == backfill
                                   ? FaultRestart::kResume
                                   : FaultRestart::kRestart;
          cases.push_back({policy, backfill, mtbf, restart, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesBackfillRatesSeeds, FaultShardedDeterminismTest,
    ::testing::ValuesIn(fault_cases()), [](const auto& info) {
      return std::string(to_string(info.param.policy)) +
             (info.param.backfill ? "Backfill" : "") + "Mtbf" +
             std::to_string(static_cast<int>(info.param.mtbf_days)) +
             (info.param.restart == FaultRestart::kResume ? "Resume"
                                                          : "Restart") +
             "Seed" + std::to_string(info.param.seed);
    });

// Failure-aware placement: a node_order permutation must preserve the
// sharded/serial bit-identity too (fault events are remapped per shard).
TEST(FaultShardedDeterminism, NodeOrderPermutationStaysDeterministic) {
  const Trace& t = venus_trace(7);
  FaultPlanConfig fp;
  fp.mtbf_days = 10.0;
  fp.flaky_fraction = 0.3;
  fp.seed = 99;
  const auto& jobs = t.jobs();
  const FaultPlan plan =
      FaultPlan::generate(t.cluster(), fp, jobs.front().submit_time,
                          jobs.back().submit_time + 14 * 86400);

  SimConfig cfg;
  cfg.policy = SchedulerPolicy::kFifo;
  cfg.backfill = true;
  cfg.fault_plan = &plan;
  // Reverse every VC's placement order — a maximal relabeling.
  for (const auto& vc : t.cluster().vcs) {
    std::vector<std::int32_t> order(static_cast<std::size_t>(vc.nodes));
    for (int i = 0; i < vc.nodes; ++i) {
      order[static_cast<std::size_t>(i)] = vc.nodes - 1 - i;
    }
    cfg.node_order.push_back(std::move(order));
  }

  cfg.execution = common::ExecMode::kSerial;
  const SimResult serial = ClusterSimulator(t.cluster(), cfg).run(t);
  cfg.execution = common::ExecMode::kParallel;
  const SimResult sharded = ClusterSimulator(t.cluster(), cfg).run(t);
  expect_identical(serial, sharded);
}

// A hand-built multi-VC trace with same-timestamp arrivals and finishes in
// different VCs: the classic race surface for a sharded event loop.
TEST(ShardedDeterminism, TinyCrossVcTrace) {
  trace::ClusterSpec s;
  s.name = "two";
  s.gpus_per_node = 8;
  s.vcs = {{"vc0", 2, 8}, {"vc1", 1, 8}};
  s.nodes = 3;
  Trace t(s);
  t.add(0, 100, 8, 8, "u0", "vc0", "a", trace::JobState::kCompleted);
  t.add(0, 100, 8, 8, "u1", "vc1", "b", trace::JobState::kCompleted);
  t.add(100, 50, 16, 16, "u0", "vc0", "c", trace::JobState::kCompleted);
  t.add(100, 50, 8, 8, "u1", "vc1", "d", trace::JobState::kCompleted);
  t.add(100, 5, 2, 2, "u2", "vc0", "e", trace::JobState::kCompleted);
  t.sort_by_submit_time();

  for (const bool backfill : {false, true}) {
    SimConfig cfg;
    cfg.policy = SchedulerPolicy::kFifo;
    cfg.backfill = backfill;
    cfg.execution = common::ExecMode::kSerial;
    const SimResult serial = ClusterSimulator(s, cfg).run(t);
    cfg.execution = common::ExecMode::kParallel;
    const SimResult sharded = ClusterSimulator(s, cfg).run(t);
    expect_identical(serial, sharded);
  }
}

}  // namespace
}  // namespace helios::sim
