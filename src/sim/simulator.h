// Trace-driven discrete-event simulator of a multi-VC GPU cluster.
//
// Reproduces the evaluation methodology of §4.2.3: jobs flow through
// arrival -> per-VC queue -> gang placement -> completion, with no backfill
// and no cross-VC sharing. Six policies:
//   * kFifo — submission order (the paper's production baseline),
//   * kSjf  — oracle shortest-job-first, non-preemptive,
//   * kSrtf — oracle shortest-remaining-time-first with free preemption,
//   * kQssf — Quasi-Shortest-Service-First: jobs ordered by *predicted* GPU
//             time supplied by a PriorityFn (see core/qssf_service.h),
//   * kPowerCap    — FIFO order with budget-constrained admission: the head
//                    waits while its projected power draw would push the VC
//                    over its share of SimConfig::power_cap_watts,
//   * kEnergyQssf  — energy-aware QSSF: jobs ordered by *predicted energy*
//                    (predicted GPU time × the job's per-GPU draw), so
//                    cheap-to-run jobs clear the queue first.
//
// Energy accounting is always on: every run carries a core::PowerProfile
// (idle/boot/sleep/failed node watts + per-GPU draw, overridable per job via
// SimConfig::gpu_watts_fn) and SimResult reports cumulative energy, mean and
// per-bucket-peak power series, and per-VC energy. Setting
// SimConfig::power_cap_watts > 0 additionally turns on budget-constrained
// admission for *every* policy — no placement (head start, SRTF
// preemption-start, or backfill) may exceed the VC's capacity-proportional
// share of the cap; backfill under a cap is power-proportional: candidates
// start only while the projected draw stays under the cap.
//
// Only GPU jobs are simulated; the paper does the same ("GPU resources are
// the bottleneck in our clusters").
#pragma once

#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "common/exec_mode.h"
#include "core/power_model.h"
#include "forecast/series.h"
#include "sim/cluster_state.h"
#include "sim/fault_plan.h"
#include "trace/trace.h"

namespace helios::sim {

enum class SchedulerPolicy {
  kFifo,
  kSjf,
  kSrtf,
  kQssf,
  kPowerCap,    ///< FIFO order + budget-constrained power admission
  kEnergyQssf,  ///< QSSF ordered by predicted energy (GPU time × watts)
};

[[nodiscard]] std::string_view to_string(SchedulerPolicy p) noexcept;

/// All six policies in declaration order — the policy axis a scenario sweep
/// iterates (sweep/scenario.h).
[[nodiscard]] std::span<const SchedulerPolicy> all_policies() noexcept;

/// Parse "FIFO" / "SJF" / "SRTF" / "QSSF" / "POWERCAP" / "EQSSF"
/// (case-insensitive). Throws std::invalid_argument on anything else.
[[nodiscard]] SchedulerPolicy policy_from_string(std::string_view name);

/// Priority for kQssf/kEnergyQssf: expected GPU time of the job; lower runs
/// first (kEnergyQssf multiplies it by the job's per-GPU draw). Called
/// concurrently from VC shards under common::ExecMode::kParallel, so it must
/// be thread-safe (pure functions and const lookups are).
using PriorityFn = std::function<double(const trace::JobRecord&)>;

/// Per-GPU draw (watts) of one job while running; overrides
/// core::PowerProfile::gpu_watts when set. Same thread-safety contract as
/// PriorityFn.
using GpuWattsFn = std::function<double(const trace::JobRecord&)>;

struct SimConfig {
  SchedulerPolicy policy = SchedulerPolicy::kFifo;
  PriorityFn priority_fn;  ///< required for kQssf, ignored otherwise
  common::ExecMode execution = common::ExecMode::kParallel;
  /// Queue delay (seconds) above which a job counts as "queued" in the
  /// Table 3 sense.
  std::int64_t queued_threshold = 1;
  /// Resolution of the busy-nodes / busy-GPUs output series.
  std::int64_t series_step = 600;
  /// Greedy backfill: when the queue head does not fit, later queued jobs
  /// that do fit may start (no reservations). The production Slurm that
  /// recorded the trace backfills, so *operating* a trace uses this; the
  /// §4.2.3 scheduler comparison keeps it off, exactly like the paper
  /// ("we do not consider the backfill mechanism").
  bool backfill = false;
  /// Cap on queue entries scanned per backfill pass.
  int backfill_depth = 256;
  /// Optional node-failure/recovery schedule (sim/fault_plan.h). Not owned;
  /// must outlive the run. nullptr = failure-free cluster. An injected
  /// failure kills the jobs running on the node (their gangs release fully,
  /// the jobs requeue with `restart` semantics) and removes the node's
  /// capacity until its recovery event — or forever, when the repair crosses
  /// the plan horizon.
  const FaultPlan* fault_plan = nullptr;
  /// Requeue semantics for jobs killed by a node failure.
  FaultRestart restart = FaultRestart::kRestart;
  /// Per-VC placement preference: node_order[vc][k] is the VC-local node
  /// index ranked k-th for allocation. Nodes within a VC are homogeneous, so
  /// the ranking only re-labels which physical node the consolidating
  /// allocator fills first — failure-aware placement passes risk-ascending
  /// ranks (core/failure_predictor.h) so gangs consolidate on predicted-
  /// healthy nodes and predicted-bad ones idle. Empty (or a size mismatch
  /// with the VC's node count) = node-id order.
  std::vector<std::vector<std::int32_t>> node_order;
  /// Node/GPU draw for the energy accounting. Integer-valued watts keep the
  /// energy sums exact (order-independent; see bucket_integrator.h).
  core::PowerProfile power_profile;
  /// Per-job per-GPU draw override; unset = power_profile.gpu_watts for
  /// every job.
  GpuWattsFn gpu_watts_fn;
  /// Cluster power cap in watts; <= 0 disables budget-constrained admission.
  /// VCs are simulated independently, so the cap is enforced per VC as a
  /// capacity-proportional share (cap × VC GPUs / cluster GPUs): no VC ever
  /// exceeds its share, hence the cluster never exceeds the cap. With the
  /// cap set, every policy's placements are power-gated and backfill becomes
  /// power-proportional (kPowerCap is FIFO ordering with this gate as its
  /// defining behaviour).
  double power_cap_watts = 0.0;
};

struct JobOutcome {
  std::size_t trace_index = 0;  ///< index into the input trace's jobs()
  UnixTime submit = 0;
  std::int64_t start = trace::kNeverStarted;  ///< first launch time
  std::int64_t end = trace::kNeverStarted;
  std::int32_t gpus = 0;
  std::int32_t kills = 0;  ///< times a node failure killed a run of this job
  int vc = -1;  ///< cluster-spec VC index
  bool rejected = false;  ///< demanded more GPUs than its VC will ever have

  [[nodiscard]] std::int64_t queue_delay() const noexcept {
    return start - submit;
  }
  [[nodiscard]] std::int64_t jct() const noexcept { return end - submit; }
};

struct VCStat {
  std::string name;
  int gpus = 0;
  std::int64_t jobs = 0;
  double avg_queue_delay = 0.0;
  double avg_jct = 0.0;
  /// Energy drawn by this VC's nodes and jobs inside the series window,
  /// in joules. VCs with no GPU jobs still bill their idle baseline, so the
  /// per-VC energies sum exactly to SimResult::energy_joules.
  double energy_joules = 0.0;
};

struct SimResult {
  std::vector<JobOutcome> outcomes;  ///< GPU jobs, in input order
  double avg_jct = 0.0;
  double avg_queue_delay = 0.0;
  std::int64_t queued_jobs = 0;
  std::int64_t preemptions = 0;
  std::int64_t rejected_jobs = 0;
  /// Jobs that never finished inside the simulated horizon — still queued
  /// (start == kNeverStarted) or killed by a failure and never rescheduled.
  /// They count toward queued_jobs but are excluded from the JCT/delay
  /// averages (they have no completion time), so the averages are over
  /// finished jobs while nothing is silently dropped.
  std::int64_t unfinished_jobs = 0;
  std::int64_t job_kills = 0;      ///< job runs killed by node failures
  std::int64_t node_failures = 0;  ///< failure events applied
  std::vector<VCStat> vc_stats;          ///< by cluster-spec VC index
  forecast::TimeSeries busy_nodes;       ///< mean busy nodes per bucket
  forecast::TimeSeries busy_gpus;       ///< mean busy GPUs per bucket
  /// -- energy accounting (SimConfig::power_profile / gpu_watts_fn) --------
  /// Cumulative cluster energy over the series window, joules. Exact sum of
  /// watts × seconds terms in VC order (integer-valued with the default
  /// profile), clamped to [window begin, window end) like the series.
  double energy_joules = 0.0;
  /// Highest instantaneous cluster draw inside the window (== the max of
  /// peak_power_watts' buckets).
  double max_power_watts = 0.0;
  forecast::TimeSeries power_watts;       ///< mean cluster draw per bucket
  forecast::TimeSeries peak_power_watts;  ///< peak cluster draw per bucket
};

/// Trace-driven simulator over all VCs of a cluster. VCs are dedicated and
/// non-shared, so the event loop is sharded per VC (see vc_simulator.h) and
/// shards run concurrently under common::ExecMode::kParallel; outcomes,
/// counters, and busy series merge deterministically, bit-identical to
/// kSerial.
class ClusterSimulator {
 public:
  ClusterSimulator(trace::ClusterSpec spec, SimConfig config);

  /// Simulate all GPU jobs of `t` (must be sorted by submit time). The trace
  /// is not modified; use apply_schedule to write start times back.
  [[nodiscard]] SimResult run(const trace::Trace& t) const;

 private:
  trace::ClusterSpec spec_;
  SimConfig config_;
};

/// Copy simulated start times back into the trace (GPU jobs only; CPU jobs
/// keep start == submit). Returns the number of jobs updated.
std::size_t apply_schedule(trace::Trace& t, const SimResult& result);

/// Convenience: operate a trace under FIFO (how the real trace's timing was
/// produced by Slurm) and write the schedule back.
SimResult operate_fifo(trace::Trace& t, std::int64_t series_step = 600);

}  // namespace helios::sim
