// Regularly sampled time series and basic transforms.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/civil_time.h"

namespace helios::forecast {

/// A regular series: values[i] covers [begin + i*step, begin + (i+1)*step).
struct TimeSeries {
  UnixTime begin = 0;
  std::int64_t step = 600;  ///< seconds per sample (default 10 minutes)
  std::vector<double> values;

  [[nodiscard]] std::size_t size() const noexcept { return values.size(); }
  [[nodiscard]] bool empty() const noexcept { return values.empty(); }
  [[nodiscard]] UnixTime time_at(std::size_t i) const noexcept {
    return begin + static_cast<UnixTime>(i) * step;
  }
  [[nodiscard]] UnixTime end() const noexcept {
    return begin + static_cast<UnixTime>(values.size()) * step;
  }

  /// Sub-series of samples [from, to).
  [[nodiscard]] TimeSeries slice(std::size_t from, std::size_t to) const;

  /// Sub-series covering timestamps [t0, t1) (clamped to the series).
  [[nodiscard]] TimeSeries between(UnixTime t0, UnixTime t1) const;

  /// Index of the sample containing `t`, clamped to [0, size).
  [[nodiscard]] std::size_t index_of(UnixTime t) const noexcept;
};

/// Trailing rolling mean with window w (first w-1 entries use the partial
/// prefix).
[[nodiscard]] std::vector<double> rolling_mean(std::span<const double> v,
                                               std::size_t w);

/// Trailing rolling standard deviation (population), same edge handling.
[[nodiscard]] std::vector<double> rolling_std(std::span<const double> v,
                                              std::size_t w);

/// First difference (size n-1); empty for n < 2.
[[nodiscard]] std::vector<double> diff(std::span<const double> v);

}  // namespace helios::forecast
