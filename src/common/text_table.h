// Aligned plain-text tables for bench / example output.
//
// Every reproduction harness prints its table or figure series through this
// formatter so the output is diff-able and matches the row/column layout of
// the paper's tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace helios {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; shorter rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Numeric convenience cells.
  static std::string cell(double v, int precision = 2);
  static std::string cell(std::int64_t v);
  /// Thousands-separated integer ("1,753,000") matching the paper's style.
  static std::string cell_grouped(std::int64_t v);
  /// Percentage with one decimal ("82.1%").
  static std::string cell_pct(double fraction, int precision = 1);

  /// Render with column alignment and a header rule.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace helios
