#include "stats/metrics.h"

#include <algorithm>
#include <cmath>

namespace helios::stats {

namespace {
std::size_t common_size(std::span<const double> a, std::span<const double> b) noexcept {
  return std::min(a.size(), b.size());
}
}  // namespace

double smape(std::span<const double> actual,
             std::span<const double> predicted) noexcept {
  const std::size_t n = common_size(actual, predicted);
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double denom = std::abs(actual[i]) + std::abs(predicted[i]);
    if (denom > 0.0) acc += 200.0 * std::abs(actual[i] - predicted[i]) / denom;
  }
  return acc / static_cast<double>(n);
}

double mae(std::span<const double> actual,
           std::span<const double> predicted) noexcept {
  const std::size_t n = common_size(actual, predicted);
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += std::abs(actual[i] - predicted[i]);
  return acc / static_cast<double>(n);
}

double rmse(std::span<const double> actual,
            std::span<const double> predicted) noexcept {
  const std::size_t n = common_size(actual, predicted);
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = actual[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

double mape(std::span<const double> actual,
            std::span<const double> predicted) noexcept {
  const std::size_t n = common_size(actual, predicted);
  double acc = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (actual[i] != 0.0) {
      acc += 100.0 * std::abs((actual[i] - predicted[i]) / actual[i]);
      ++used;
    }
  }
  return used > 0 ? acc / static_cast<double>(used) : 0.0;
}

double r2(std::span<const double> actual,
          std::span<const double> predicted) noexcept {
  const std::size_t n = common_size(actual, predicted);
  if (n == 0) return 0.0;
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += actual[i];
  mean /= static_cast<double>(n);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = actual[i] - predicted[i];
    const double t = actual[i] - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace helios::stats
