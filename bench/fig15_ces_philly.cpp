// Figure 15: node states in Philly, December 1-14, under the CES service
// (forecaster trained on the October-November series).
#include <cstdio>

#include "bench_common.h"
#include "common/text_table.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;

  bench::print_header("Figure 15",
                      "Philly node states under CES, Dec 1-14",
                      "GBDT node forecaster trained on Oct-Nov");

  const auto begin = helios::from_civil(2017, 12, 1);
  const auto end = helios::from_civil(2017, 12, 15);
  const auto study = bench::run_ces_study(bench::operated_philly_trace(), begin,
                                          end, /*include_vanilla=*/false);
  const auto& r = study.ces;

  TextTable table({"time", "total", "running", "predicted", "active (CES)"});
  const std::size_t stride = std::max<std::size_t>(
      1, static_cast<std::size_t>(6 * 3600 / r.running_nodes.step));
  for (std::size_t i = 0; i < r.running_nodes.size(); i += stride) {
    table.add_row(
        {helios::format_time(r.running_nodes.time_at(i)),
         TextTable::cell(static_cast<std::int64_t>(r.total_nodes)),
         TextTable::cell(r.running_nodes.values[i], 1),
         i < r.predicted_nodes.size()
             ? TextTable::cell(r.predicted_nodes.values[i], 1)
             : "-",
         TextTable::cell(r.active_nodes.values[i], 1)});
  }
  std::printf("%s\n", table.str().c_str());

  bench::print_expectation("Philly demand changes slowly",
                           "0.5 wakeups/day on average",
                           TextTable::cell(r.daily_wakeups, 1) + "/day");
  bench::print_expectation("many idle nodes powered off", ">100 nodes (paper)",
                           TextTable::cell(r.avg_drs_nodes, 1) +
                               " (scaled cluster)");
  bench::print_expectation("node utilization", "69% -> 90.4%",
                           TextTable::cell_pct(r.node_util_original) + " -> " +
                               TextTable::cell_pct(r.node_util_ces));
  return 0;
}
