// String interning: maps strings <-> dense integer ids.
//
// Job records store user / VC / job-name fields as 32-bit ids into a
// per-trace interner, keeping records POD-sized so multi-million-job traces
// fit comfortably in memory.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace helios {

class StringInterner {
 public:
  /// Id of `s`, inserting it if new. Ids are dense, starting at 0.
  std::uint32_t intern(std::string_view s);

  /// Id of `s` or `kNotFound` if absent.
  [[nodiscard]] std::uint32_t find(std::string_view s) const noexcept;

  /// The string for an id; `id` must be < size().
  [[nodiscard]] const std::string& str(std::uint32_t id) const noexcept {
    return strings_[id];
  }

  [[nodiscard]] std::size_t size() const noexcept { return strings_.size(); }
  [[nodiscard]] bool empty() const noexcept { return strings_.empty(); }

  /// All interned strings in id order.
  [[nodiscard]] const std::vector<std::string>& strings() const noexcept {
    return strings_;
  }

  static constexpr std::uint32_t kNotFound = 0xffffffffu;

 private:
  std::unordered_map<std::string, std::uint32_t> index_;
  std::vector<std::string> strings_;
};

}  // namespace helios
