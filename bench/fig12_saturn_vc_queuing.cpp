// Figure 12: average job queuing delay of the top-10 VCs (by FIFO queuing
// delay) in Saturn, September, under the four schedulers.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "common/text_table.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;

  bench::print_header("Figure 12",
                      "Average queuing delay of the top-10 VCs in Saturn "
                      "(September)");

  const auto& traces = bench::helios_traces();
  const auto it = std::find_if(traces.begin(), traces.end(), [](const auto& t) {
    return t->cluster().name == "Saturn";
  });
  const auto study = bench::run_scheduler_study(
      **it, helios::from_civil(2020, 9, 1), helios::trace::helios_trace_end());

  // Rank VCs by FIFO queuing delay.
  std::vector<std::size_t> order(study.fifo.vc_stats.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return study.fifo.vc_stats[a].avg_queue_delay >
           study.fifo.vc_stats[b].avg_queue_delay;
  });

  TextTable table({"VC", "GPUs", "jobs", "FIFO (s)", "QSSF (s)", "SJF (s)",
                   "SRTF (s)"});
  const std::size_t top = std::min<std::size_t>(10, order.size());
  for (std::size_t i = 0; i < top; ++i) {
    const std::size_t vi = order[i];
    const auto& f = study.fifo.vc_stats[vi];
    table.add_row({f.name, TextTable::cell(static_cast<std::int64_t>(f.gpus)),
                   TextTable::cell(f.jobs), TextTable::cell(f.avg_queue_delay, 0),
                   TextTable::cell(study.qssf.vc_stats[vi].avg_queue_delay, 0),
                   TextTable::cell(study.sjf.vc_stats[vi].avg_queue_delay, 0),
                   TextTable::cell(study.srtf.vc_stats[vi].avg_queue_delay, 0)});
  }
  table.add_row({"all", "-", "-", TextTable::cell(study.fifo.avg_queue_delay, 0),
                 TextTable::cell(study.qssf.avg_queue_delay, 0),
                 TextTable::cell(study.sjf.avg_queue_delay, 0),
                 TextTable::cell(study.srtf.avg_queue_delay, 0)});
  std::printf("%s\n", table.str().c_str());

  bench::print_expectation("QSSF ~ SJF per VC, both far below FIFO",
                           "QSSF almost identical to SJF", "compare columns");
  return 0;
}
