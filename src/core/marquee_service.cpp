#include "core/marquee_service.h"

#include "analysis/user_stats.h"

namespace helios::core {

void MarqueeService::update(const trace::Trace& operated) {
  marquee_.clear();
  const auto users = analysis::user_aggregates(operated);
  double total_delay = 0.0;
  double total_gpu_time = 0.0;
  for (const auto& u : users) {
    total_delay += u.queue_delay;
    total_gpu_time += u.gpu_time;
  }
  if (total_delay <= 0.0) return;
  for (const auto& u : users) {
    const double delay_share = u.queue_delay / total_delay;
    const double gpu_share =
        total_gpu_time > 0.0 ? u.gpu_time / total_gpu_time : 0.0;
    if (delay_share >= config_.queue_share_threshold &&
        gpu_share <= config_.gpu_share_ceiling) {
      marquee_.emplace(operated.users().str(u.user), true);
    }
  }
}

bool MarqueeService::is_marquee(const std::string& user) const {
  return marquee_.find(user) != marquee_.end();
}

double MarqueeService::multiplier(const trace::Trace& t,
                                  const trace::JobRecord& job) const {
  return is_marquee(t.user_name(job)) ? config_.priority_boost : 1.0;
}

sim::PriorityFn MarqueeService::adjust(sim::PriorityFn base,
                                       const trace::Trace& t) const {
  return [this, base = std::move(base), &t](const trace::JobRecord& job) {
    return base(job) * multiplier(t, job);
  };
}

}  // namespace helios::core
