#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/thread_pool.h"

namespace helios::ml {

// ---------------------------------------------------------------------------
// FeatureBinner
// ---------------------------------------------------------------------------

void FeatureBinner::fit(const Dataset& data, int max_bins, Rng& rng) {
  const std::size_t n = data.rows();
  const std::size_t p = data.features();
  edges_.assign(p, {});
  if (n == 0 || max_bins < 2) return;

  // Quantile edges from a sample (binning fidelity does not need all rows).
  constexpr std::size_t kSampleCap = 60'000;
  std::vector<std::size_t> sample_rows;
  if (n <= kSampleCap) {
    sample_rows.resize(n);
    std::iota(sample_rows.begin(), sample_rows.end(), 0);
  } else {
    sample_rows.reserve(kSampleCap);
    for (std::size_t i = 0; i < kSampleCap; ++i) {
      sample_rows.push_back(rng.uniform_index(n));
    }
  }

  for (std::size_t f = 0; f < p; ++f) {
    std::vector<double> values;
    values.reserve(sample_rows.size());
    for (std::size_t r : sample_rows) values.push_back(data.at(r, f));
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    auto& edges = edges_[f];
    if (values.size() <= static_cast<std::size_t>(max_bins)) {
      // Few distinct values: one bin per value (categorical-friendly).
      edges.assign(values.begin(), values.size() > 1 ? values.end() - 1
                                                     : values.begin());
    } else {
      edges.reserve(static_cast<std::size_t>(max_bins) - 1);
      for (int b = 1; b < max_bins; ++b) {
        const std::size_t idx =
            values.size() * static_cast<std::size_t>(b) / static_cast<std::size_t>(max_bins);
        const double e = values[std::min(idx, values.size() - 1)];
        if (edges.empty() || e > edges.back()) edges.push_back(e);
      }
    }
  }
}

std::uint8_t FeatureBinner::bin(std::size_t feature, double value) const noexcept {
  const auto& edges = edges_[feature];
  const auto it = std::lower_bound(edges.begin(), edges.end(), value);
  return static_cast<std::uint8_t>(it - edges.begin());
}

// ---------------------------------------------------------------------------
// RegressionTree
// ---------------------------------------------------------------------------

namespace {

struct SplitDecision {
  double gain = 0.0;
  std::int32_t feature = -1;
  int bin = -1;  // go left iff bin(value) <= bin
};

/// Best split for one feature from its gradient histogram.
SplitDecision best_split_for_feature(std::span<const double> hist_sum,
                                     std::span<const std::int32_t> hist_cnt,
                                     double total_sum, std::int64_t total_cnt,
                                     std::int32_t feature,
                                     const GBDTConfig& cfg) {
  SplitDecision best;
  const double parent_score =
      total_sum * total_sum / (static_cast<double>(total_cnt) + cfg.lambda);
  double left_sum = 0.0;
  std::int64_t left_cnt = 0;
  for (std::size_t b = 0; b + 1 < hist_cnt.size(); ++b) {
    left_sum += hist_sum[b];
    left_cnt += hist_cnt[b];
    const std::int64_t right_cnt = total_cnt - left_cnt;
    if (left_cnt < cfg.min_samples_leaf) continue;
    if (right_cnt < cfg.min_samples_leaf) break;
    const double right_sum = total_sum - left_sum;
    const double score =
        left_sum * left_sum / (static_cast<double>(left_cnt) + cfg.lambda) +
        right_sum * right_sum / (static_cast<double>(right_cnt) + cfg.lambda);
    const double gain = score - parent_score;
    if (gain > best.gain) {
      best.gain = gain;
      best.feature = feature;
      best.bin = static_cast<int>(b);
    }
  }
  return best;
}

}  // namespace

std::int32_t RegressionTree::build(std::span<const std::uint8_t> bins,
                                   std::size_t n_rows, const FeatureBinner& binner,
                                   std::span<const double> residuals,
                                   std::span<std::uint32_t> rows, int depth,
                                   const GBDTConfig& cfg) {
  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();

  double total_sum = 0.0;
  for (std::uint32_t r : rows) total_sum += residuals[r];
  const auto total_cnt = static_cast<std::int64_t>(rows.size());

  auto make_leaf = [&] {
    nodes_[static_cast<std::size_t>(node_id)].value =
        total_sum / (static_cast<double>(total_cnt) + cfg.lambda);
    return node_id;
  };

  if (depth >= cfg.max_depth ||
      total_cnt < 2 * static_cast<std::int64_t>(cfg.min_samples_leaf)) {
    return make_leaf();
  }

  // Per-feature gradient histograms; parallel across features for big nodes.
  const std::size_t p = binner.features();
  std::vector<SplitDecision> decisions(p);
  const auto eval_feature = [&](std::size_t f) {
    const int n_bins = binner.bins(f);
    std::vector<double> hist_sum(static_cast<std::size_t>(n_bins), 0.0);
    std::vector<std::int32_t> hist_cnt(static_cast<std::size_t>(n_bins), 0);
    const std::uint8_t* col = bins.data() + f * n_rows;
    for (std::uint32_t r : rows) {
      const std::uint8_t b = col[r];
      hist_sum[b] += residuals[r];
      ++hist_cnt[b];
    }
    decisions[f] = best_split_for_feature(hist_sum, hist_cnt, total_sum,
                                          total_cnt, static_cast<std::int32_t>(f),
                                          cfg);
  };
  if (rows.size() >= 20'000 && p >= 4) {
    parallel_for(0, p, eval_feature, /*grain=*/1);
  } else {
    for (std::size_t f = 0; f < p; ++f) eval_feature(f);
  }

  SplitDecision best;
  for (const auto& d : decisions) {
    if (d.gain > best.gain) best = d;
  }
  if (best.feature < 0 || best.gain <= 1e-12) return make_leaf();

  const std::uint8_t* col =
      bins.data() + static_cast<std::size_t>(best.feature) * n_rows;
  const auto mid = std::partition(rows.begin(), rows.end(), [&](std::uint32_t r) {
    return col[r] <= best.bin;
  });
  const auto left_rows = rows.subspan(0, static_cast<std::size_t>(mid - rows.begin()));
  const auto right_rows = rows.subspan(static_cast<std::size_t>(mid - rows.begin()));
  if (left_rows.empty() || right_rows.empty()) return make_leaf();

  {
    auto& node = nodes_[static_cast<std::size_t>(node_id)];
    node.feature = best.feature;
    node.threshold = binner.edge(static_cast<std::size_t>(best.feature), best.bin);
    node.gain = best.gain;
  }
  const std::int32_t left =
      build(bins, n_rows, binner, residuals, left_rows, depth + 1, cfg);
  const std::int32_t right =
      build(bins, n_rows, binner, residuals, right_rows, depth + 1, cfg);
  auto& node = nodes_[static_cast<std::size_t>(node_id)];
  node.left = left;
  node.right = right;
  return node_id;
}

void RegressionTree::fit(std::span<const std::uint8_t> bins, std::size_t n_rows,
                         const FeatureBinner& binner,
                         std::span<const double> residuals,
                         std::vector<std::uint32_t> rows, const GBDTConfig& cfg) {
  nodes_.clear();
  if (rows.empty()) return;
  build(bins, n_rows, binner, residuals, rows, 0, cfg);
}

double RegressionTree::predict(std::span<const double> features) const noexcept {
  if (nodes_.empty()) return 0.0;
  std::int32_t i = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    if (n.feature < 0) return n.value;
    i = features[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                     : n.right;
  }
}

// ---------------------------------------------------------------------------
// GBDTRegressor
// ---------------------------------------------------------------------------

void GBDTRegressor::fit(const Dataset& full_data) {
  trees_.clear();
  train_rmse_.clear();
  n_features_ = full_data.features();
  base_prediction_ = 0.0;
  if (full_data.empty()) return;

  Rng rng(config_.seed);

  // Optional row cap: train on a uniform subsample of the data.
  const Dataset* data = &full_data;
  Dataset capped(full_data.features());
  if (config_.max_training_rows > 0 &&
      full_data.rows() > config_.max_training_rows) {
    capped.reserve(config_.max_training_rows);
    const double keep = static_cast<double>(config_.max_training_rows) /
                        static_cast<double>(full_data.rows());
    for (std::size_t r = 0; r < full_data.rows(); ++r) {
      if (rng.bernoulli(keep)) capped.add_row(full_data.row(r), full_data.target(r));
    }
    data = &capped;
  }
  const std::size_t n = data->rows();

  double mean = 0.0;
  for (std::size_t r = 0; r < n; ++r) mean += data->target(r);
  base_prediction_ = mean / static_cast<double>(n);

  FeatureBinner binner;
  binner.fit(*data, config_.max_bins, rng);

  // Column-major binned matrix.
  std::vector<std::uint8_t> bins(n * n_features_);
  parallel_for_chunks(0, n_features_, [&](std::size_t f_lo, std::size_t f_hi) {
    for (std::size_t f = f_lo; f < f_hi; ++f) {
      std::uint8_t* col = bins.data() + f * n;
      for (std::size_t r = 0; r < n; ++r) col[r] = binner.bin(f, data->at(r, f));
    }
  }, /*grain=*/1);

  std::vector<double> prediction(n, base_prediction_);
  std::vector<double> residuals(n, 0.0);

  trees_.reserve(static_cast<std::size_t>(config_.n_trees));
  for (int t = 0; t < config_.n_trees; ++t) {
    double sq = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      residuals[r] = data->target(r) - prediction[r];
      sq += residuals[r] * residuals[r];
    }
    train_rmse_.push_back(std::sqrt(sq / static_cast<double>(n)));

    std::vector<std::uint32_t> rows;
    rows.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
      if (config_.subsample >= 1.0 || rng.bernoulli(config_.subsample)) {
        rows.push_back(static_cast<std::uint32_t>(r));
      }
    }
    if (rows.size() < static_cast<std::size_t>(2 * config_.min_samples_leaf)) break;

    RegressionTree tree;
    tree.fit(bins, n, binner, residuals, std::move(rows), config_);
    if (tree.empty()) break;

    // Update predictions with the shrunk tree output. Walking the binned
    // matrix directly avoids re-binning raw features.
    for (std::size_t r = 0; r < n; ++r) {
      std::int32_t i = 0;
      const auto& nodes = tree.nodes();
      while (nodes[static_cast<std::size_t>(i)].feature >= 0) {
        const auto& node = nodes[static_cast<std::size_t>(i)];
        const double v = data->at(r, static_cast<std::size_t>(node.feature));
        i = v <= node.threshold ? node.left : node.right;
      }
      prediction[r] +=
          config_.learning_rate * nodes[static_cast<std::size_t>(i)].value;
    }
    trees_.push_back(std::move(tree));
  }
}

double GBDTRegressor::predict(std::span<const double> features) const noexcept {
  double out = base_prediction_;
  for (const auto& tree : trees_) {
    out += config_.learning_rate * tree.predict(features);
  }
  return out;
}

std::vector<double> GBDTRegressor::predict_many(const Dataset& data) const {
  std::vector<double> out(data.rows());
  parallel_for_chunks(0, data.rows(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) out[r] = predict(data.row(r));
  }, /*grain=*/4096);
  return out;
}

std::vector<double> GBDTRegressor::feature_importance() const {
  std::vector<double> importance(n_features_, 0.0);
  for (const auto& tree : trees_) {
    for (const auto& node : tree.nodes()) {
      if (node.feature >= 0) {
        importance[static_cast<std::size_t>(node.feature)] += node.gain;
      }
    }
  }
  return importance;
}

}  // namespace helios::ml
