#include "sim/cluster_state.h"

#include <algorithm>

namespace helios::sim {

ClusterState::ClusterState(const trace::ClusterSpec& spec) {
  vc_nodes_.resize(spec.vcs.size());
  index_.resize(spec.vcs.size());
  for (std::size_t vi = 0; vi < spec.vcs.size(); ++vi) {
    const auto& vc = spec.vcs[vi];
    VcIndex& ix = index_[vi];
    ix.gpn = vc.nodes > 0 ? vc.gpus_per_node : 0;
    ix.by_free.resize(static_cast<std::size_t>(ix.gpn) + 1);
    for (int n = 0; n < vc.nodes; ++n) {
      Node node;
      node.vc = static_cast<int>(vi);
      node.total_gpus = vc.gpus_per_node;
      node.free_gpus = vc.gpus_per_node;
      const int ni = static_cast<int>(nodes_.size());
      vc_nodes_[vi].push_back(ni);
      ix.by_free[static_cast<std::size_t>(node.free_gpus)].insert(ni);
      ix.capacity += node.total_gpus;
      ix.sched_total += node.total_gpus;
      ix.sched_free += node.free_gpus;
      nodes_.push_back(node);
    }
  }
}

void ClusterState::bucket_erase(const Node& n, int ni) {
  index_[static_cast<std::size_t>(n.vc)]
      .by_free[static_cast<std::size_t>(n.free_gpus)]
      .erase(ni);
}

void ClusterState::bucket_insert(const Node& n, int ni) {
  index_[static_cast<std::size_t>(n.vc)]
      .by_free[static_cast<std::size_t>(n.free_gpus)]
      .insert(ni);
}

std::optional<Allocation> ClusterState::try_allocate(int vc, int gpus) {
  if (vc < 0 || vc >= vc_count() || gpus <= 0) return std::nullopt;
  VcIndex& ix = index_[static_cast<std::size_t>(vc)];
  const int gpn = ix.gpn;
  if (gpn == 0 || gpus > ix.sched_free) return std::nullopt;

  Allocation alloc;
  // Best-fit: the first non-empty free-count bucket >= want holds the nodes
  // with the fewest free GPUs that still fit; the lowest id among them is
  // what the previous linear scan picked.
  auto best_fit = [&](int want) -> int {
    for (int f = want; f <= gpn; ++f) {
      const auto& bucket = ix.by_free[static_cast<std::size_t>(f)];
      if (!bucket.empty()) return bucket.front();
    }
    return -1;
  };

  if (gpus <= gpn) {
    const int ni = best_fit(gpus);
    if (ni < 0) return std::nullopt;
    alloc.node_gpus.emplace_back(ni, gpus);
  } else {
    // Multi-node gang: full nodes first, remainder best-fit.
    const int full_nodes = gpus / gpn;
    const int rem = gpus % gpn;
    const auto& fully_free = ix.by_free[static_cast<std::size_t>(gpn)];
    if (static_cast<int>(fully_free.size()) < full_nodes) return std::nullopt;
    for (int k = 0; k < full_nodes; ++k) {
      alloc.node_gpus.emplace_back(fully_free.at(static_cast<std::size_t>(k)),
                                   gpn);
    }
    if (rem > 0) {
      // The remainder must land on a node not already fully taken; the first
      // fully-free node past the picked prefix is the fallback.
      int best = -1;
      for (int f = rem; f < gpn; ++f) {
        const auto& bucket = ix.by_free[static_cast<std::size_t>(f)];
        if (!bucket.empty()) {
          best = bucket.front();
          break;
        }
      }
      if (best < 0 &&
          static_cast<int>(fully_free.size()) > full_nodes) {
        best = fully_free.at(static_cast<std::size_t>(full_nodes));
      }
      if (best < 0) return std::nullopt;
      alloc.node_gpus.emplace_back(best, rem);
    }
  }

  apply(alloc, /*sign=*/-1);
  return alloc;
}

void ClusterState::apply(const Allocation& a, int sign) {
  for (auto [ni, g] : a.node_gpus) {
    Node& n = nodes_[static_cast<std::size_t>(ni)];
    const bool was_busy = n.busy();
    // Allocated nodes are always kActive (sleep only takes idle nodes, and
    // booting nodes are not schedulable), so the bucket move is unconditional.
    bucket_erase(n, ni);
    n.free_gpus += sign * g;
    bucket_insert(n, ni);
    index_[static_cast<std::size_t>(n.vc)].sched_free += sign * g;
    busy_gpus_ -= sign * g;
    if (was_busy != n.busy()) busy_nodes_ += n.busy() ? 1 : -1;
  }
}

void ClusterState::release(const Allocation& a) { apply(a, /*sign=*/+1); }

void ClusterState::reclaim(const Allocation& a) { apply(a, /*sign=*/-1); }

void ClusterState::sleep_node(int ni) {
  Node& n = nodes_[static_cast<std::size_t>(ni)];
  VcIndex& ix = index_[static_cast<std::size_t>(n.vc)];
  bucket_erase(n, ni);
  n.power = PowerState::kSleeping;
  ix.sched_total -= n.total_gpus;
  ix.sched_free -= n.free_gpus;
  ix.sleeping.insert(ni);
  ++sleeping_count_;
}

int ClusterState::sleep_idle_nodes(int count) {
  int slept = 0;
  // Idle active nodes are exactly the fully-free buckets; VCs hold
  // contiguous ascending node-id ranges, so per-VC ascending order is global
  // node order.
  for (auto& ix : index_) {
    if (ix.gpn == 0) continue;
    auto& idle = ix.by_free[static_cast<std::size_t>(ix.gpn)];
    while (slept < count && !idle.empty()) {
      sleep_node(idle.front());
      ++slept;
    }
    if (slept == count) break;
  }
  return slept;
}

int ClusterState::sleep_idle_nodes_in_vc(int vc, int count) {
  VcIndex& ix = index_[static_cast<std::size_t>(vc)];
  if (ix.gpn == 0) return 0;
  auto& idle = ix.by_free[static_cast<std::size_t>(ix.gpn)];
  int slept = 0;
  while (slept < count && !idle.empty()) {
    sleep_node(idle.front());
    ++slept;
  }
  return slept;
}

int ClusterState::idle_active_nodes_in_vc(int vc) const noexcept {
  const VcIndex& ix = index_[static_cast<std::size_t>(vc)];
  if (ix.gpn == 0) return 0;
  return static_cast<int>(ix.by_free[static_cast<std::size_t>(ix.gpn)].size());
}

void ClusterState::wake_node(int ni, std::int64_t now, std::int64_t boot_delay) {
  Node& n = nodes_[static_cast<std::size_t>(ni)];
  VcIndex& ix = index_[static_cast<std::size_t>(n.vc)];
  n.power = PowerState::kBooting;
  n.boot_ready = now + boot_delay;
  ix.sleeping.erase(ni);
  ix.booting.insert(ni);
  boot_queue_.emplace(n.boot_ready, ni);
  --sleeping_count_;
}

int ClusterState::wake_nodes(int count, std::int64_t now, std::int64_t boot_delay) {
  int woken = 0;
  for (auto& ix : index_) {
    while (woken < count && !ix.sleeping.empty()) {
      wake_node(ix.sleeping.front(), now, boot_delay);
      ++woken;
    }
    if (woken == count) break;
  }
  return woken;
}

int ClusterState::wake_nodes_in_vc(int vc, int count, std::int64_t now,
                                   std::int64_t boot_delay) {
  VcIndex& ix = index_[static_cast<std::size_t>(vc)];
  int woken = 0;
  while (woken < count && !ix.sleeping.empty()) {
    wake_node(ix.sleeping.front(), now, boot_delay);
    ++woken;
  }
  return woken;
}

int ClusterState::booting_nodes_in_vc(int vc) const noexcept {
  return static_cast<int>(index_[static_cast<std::size_t>(vc)].booting.size());
}

int ClusterState::sleeping_nodes_in_vc(int vc) const noexcept {
  return static_cast<int>(index_[static_cast<std::size_t>(vc)].sleeping.size());
}

void ClusterState::finish_boots(std::int64_t now) {
  while (!boot_queue_.empty() && boot_queue_.begin()->first <= now) {
    const int ni = boot_queue_.begin()->second;
    boot_queue_.erase(boot_queue_.begin());
    Node& n = nodes_[static_cast<std::size_t>(ni)];
    VcIndex& ix = index_[static_cast<std::size_t>(n.vc)];
    n.power = PowerState::kActive;
    ix.booting.erase(ni);
    bucket_insert(n, ni);
    ix.sched_total += n.total_gpus;
    ix.sched_free += n.free_gpus;
  }
}

std::optional<std::int64_t> ClusterState::next_boot_ready() const noexcept {
  if (boot_queue_.empty()) return std::nullopt;
  return boot_queue_.begin()->first;
}

void ClusterState::fail_node(int ni) {
  Node& n = nodes_[static_cast<std::size_t>(ni)];
  VcIndex& ix = index_[static_cast<std::size_t>(n.vc)];
  switch (n.power) {
    case PowerState::kFailed:
      return;
    case PowerState::kActive:
      bucket_erase(n, ni);
      ix.sched_total -= n.total_gpus;
      ix.sched_free -= n.free_gpus;
      break;
    case PowerState::kSleeping:
      ix.sleeping.erase(ni);
      --sleeping_count_;
      break;
    case PowerState::kBooting:
      ix.booting.erase(ni);
      boot_queue_.erase({n.boot_ready, ni});
      break;
  }
  n.power = PowerState::kFailed;
  ix.failed.insert(ni);
  ++failed_count_;
}

void ClusterState::recover_node(int ni) {
  Node& n = nodes_[static_cast<std::size_t>(ni)];
  if (n.power != PowerState::kFailed) return;
  VcIndex& ix = index_[static_cast<std::size_t>(n.vc)];
  ix.failed.erase(ni);
  --failed_count_;
  n.power = PowerState::kActive;
  n.free_gpus = n.total_gpus;  // repair returns the node empty
  bucket_insert(n, ni);
  ix.sched_total += n.total_gpus;
  ix.sched_free += n.free_gpus;
}

int ClusterState::failed_nodes_in_vc(int vc) const noexcept {
  return static_cast<int>(index_[static_cast<std::size_t>(vc)].failed.size());
}

}  // namespace helios::sim
