#include <gtest/gtest.h>

#include "sim/cluster_state.h"

namespace helios::sim {
namespace {

trace::ClusterSpec tiny_spec() {
  trace::ClusterSpec s;
  s.name = "tiny";
  s.gpus_per_node = 8;
  s.vcs = {{"vcA", 2, 8}, {"vcB", 3, 8}};
  s.nodes = 5;
  return s;
}

TEST(ClusterState, CapacityQueries) {
  ClusterState cs(tiny_spec());
  EXPECT_EQ(cs.vc_count(), 2);
  EXPECT_EQ(cs.node_count(), 5);
  EXPECT_EQ(cs.capacity_gpus(0), 16);
  EXPECT_EQ(cs.capacity_gpus(1), 24);
  EXPECT_EQ(cs.free_gpus(0), 16);
  EXPECT_TRUE(cs.can_ever_fit(0, 16));
  EXPECT_FALSE(cs.can_ever_fit(0, 17));
  EXPECT_FALSE(cs.can_ever_fit(-1, 4));
}

TEST(ClusterState, SingleNodeBestFit) {
  ClusterState cs(tiny_spec());
  // Occupy 6 GPUs on the first vcA node; a 2-GPU job should best-fit there.
  auto big = cs.try_allocate(0, 6);
  ASSERT_TRUE(big.has_value());
  auto small = cs.try_allocate(0, 2);
  ASSERT_TRUE(small.has_value());
  ASSERT_EQ(small->node_gpus.size(), 1u);
  EXPECT_EQ(small->node_gpus[0].first, big->node_gpus[0].first);
  // Next job cannot share that node any more.
  auto three = cs.try_allocate(0, 3);
  ASSERT_TRUE(three.has_value());
  EXPECT_NE(three->node_gpus[0].first, big->node_gpus[0].first);
}

TEST(ClusterState, GangNeedsWholeNodes) {
  ClusterState cs(tiny_spec());
  // 16-GPU job in vcA needs two completely free nodes.
  auto one = cs.try_allocate(0, 1);
  ASSERT_TRUE(one.has_value());
  EXPECT_FALSE(cs.try_allocate(0, 16).has_value());  // fragmented
  cs.release(*one);
  auto gang = cs.try_allocate(0, 16);
  ASSERT_TRUE(gang.has_value());
  EXPECT_EQ(gang->node_gpus.size(), 2u);
  EXPECT_EQ(gang->total(), 16);
}

TEST(ClusterState, MultiNodeWithRemainder) {
  ClusterState cs(tiny_spec());
  // 20 GPUs in vcB = 2 full nodes + 4 on a third.
  auto a = cs.try_allocate(1, 20);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node_gpus.size(), 3u);
  EXPECT_EQ(a->total(), 20);
  EXPECT_EQ(cs.free_gpus(1), 4);
  cs.release(*a);
  EXPECT_EQ(cs.free_gpus(1), 24);
}

TEST(ClusterState, AllocationRespectsVcBoundary) {
  ClusterState cs(tiny_spec());
  // Fill vcA completely; vcB must still be fully free.
  ASSERT_TRUE(cs.try_allocate(0, 16).has_value());
  EXPECT_EQ(cs.free_gpus(0), 0);
  EXPECT_EQ(cs.free_gpus(1), 24);
  EXPECT_FALSE(cs.try_allocate(0, 1).has_value());
  EXPECT_TRUE(cs.try_allocate(1, 1).has_value());
}

TEST(ClusterState, BusyCountersTrackAllocations) {
  ClusterState cs(tiny_spec());
  EXPECT_EQ(cs.busy_nodes(), 0);
  EXPECT_EQ(cs.busy_gpus(), 0);
  auto a = cs.try_allocate(1, 20);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(cs.busy_nodes(), 3);
  EXPECT_EQ(cs.busy_gpus(), 20);
  cs.release(*a);
  EXPECT_EQ(cs.busy_nodes(), 0);
  EXPECT_EQ(cs.busy_gpus(), 0);
  cs.reclaim(*a);
  EXPECT_EQ(cs.busy_gpus(), 20);
  cs.release(*a);
}

TEST(ClusterState, SleepingNodesAreUnschedulable) {
  ClusterState cs(tiny_spec());
  EXPECT_EQ(cs.sleep_idle_nodes(2), 2);
  EXPECT_EQ(cs.active_nodes(), 3);
  EXPECT_EQ(cs.sleeping_nodes(), 2);
  // vcA lost both nodes -> allocation fails even though capacity exists.
  const int free_a = cs.free_gpus(0);
  const int sched_a = cs.schedulable_gpus(0);
  EXPECT_EQ(free_a, sched_a);
  EXPECT_LE(sched_a, 16);
}

TEST(ClusterState, SleepSkipsBusyNodes) {
  ClusterState cs(tiny_spec());
  auto a = cs.try_allocate(0, 16);  // both vcA nodes busy
  ASSERT_TRUE(a.has_value());
  auto b = cs.try_allocate(1, 24);  // all vcB nodes busy
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(cs.sleep_idle_nodes(5), 0);  // nothing idle to sleep
  cs.release(*a);
  EXPECT_EQ(cs.sleep_idle_nodes(5), 2);  // only the two vcA nodes
}

TEST(ClusterState, WakeAndBootLifecycle) {
  ClusterState cs(tiny_spec());
  ASSERT_EQ(cs.sleep_idle_nodes(3), 3);
  EXPECT_EQ(cs.wake_nodes(2, /*now=*/1000, /*boot_delay=*/300), 2);
  // Booting nodes count as active (powered) but are not schedulable.
  EXPECT_EQ(cs.active_nodes(), 4);
  EXPECT_EQ(cs.sleeping_nodes(), 1);
  ASSERT_TRUE(cs.next_boot_ready().has_value());
  EXPECT_EQ(*cs.next_boot_ready(), 1300);
  cs.finish_boots(1299);
  EXPECT_TRUE(cs.next_boot_ready().has_value());
  cs.finish_boots(1300);
  EXPECT_FALSE(cs.next_boot_ready().has_value());
}

TEST(ClusterState, WakeNodesInVc) {
  ClusterState cs(tiny_spec());
  ASSERT_EQ(cs.sleep_idle_nodes(5), 5);
  EXPECT_EQ(cs.wake_nodes_in_vc(0, 5, 0, 300), 2);  // vcA only has 2 nodes
  cs.finish_boots(300);
  EXPECT_EQ(cs.schedulable_gpus(0), 16);
  EXPECT_EQ(cs.schedulable_gpus(1), 0);
}

}  // namespace
}  // namespace helios::sim
