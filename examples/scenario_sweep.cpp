// Quickstart for the scenario sweep engine (src/sweep/).
//
// Declares a small grid — two Helios clusters plus the Alibaba-PAI workload
// family, two scheduler policies, one seed — runs it on the shared thread
// pool, and prints the consolidated comparison report. Demonstrates the two
// core properties of the subsystem:
//   * generate-once trace sharing: each (workload, seed, scale) trace is
//     materialized exactly once in the TraceStore and shared immutably by
//     every cell that replays it (generations() == distinct workloads here);
//   * deterministic task-graph execution: rerunning the same grid, serially
//     or in parallel, reproduces every cell bit-for-bit.
//
// Scale with HELIOS_SCALE (default 0.05 here — a few seconds of work).
#include <cstdio>

#include "common/env.h"
#include "sweep/scenario_engine.h"

using namespace helios;

int main() {
  const double scale = env_double("HELIOS_SCALE", 0.05);

  sweep::SweepGrid grid;
  grid.clusters = {"Venus", "Saturn", "PAI"};
  grid.policies = {sim::SchedulerPolicy::kFifo, sim::SchedulerPolicy::kSjf};
  grid.scales = {scale};
  grid.seeds = {42};

  std::printf("scenario sweep: %zu workloads x %zu policies = %zu cells "
              "(scale %.3g)\n",
              grid.clusters.size(), grid.policies.size(), grid.cell_count(),
              scale);

  sweep::TraceStore store;
  const sweep::ScenarioEngine engine(store);
  const sweep::SweepResult result = engine.run(grid);

  std::printf("ran %zu cells in %.0f ms; %llu traces generated once, "
              "%llu shared cache hits\n",
              result.cells.size(), result.wall_ms,
              static_cast<unsigned long long>(store.generations()),
              static_cast<unsigned long long>(store.hits()));
  std::printf("%s", sweep::comparison_report(result).c_str());
  return 0;
}
