// Ridge-regularised linear least squares.
//
// Small dense problems only (p <= a few hundred): the AR(p) forecaster and
// baseline predictors. Solved via normal equations + Cholesky.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.h"

namespace helios::ml {

class RidgeRegression {
 public:
  explicit RidgeRegression(double lambda = 1e-3) : lambda_(lambda) {}

  /// Fit weights (with intercept) minimising ||y - Xw - b||^2 + lambda ||w||^2.
  void fit(const Dataset& data);

  [[nodiscard]] double predict(std::span<const double> features) const noexcept;
  [[nodiscard]] std::vector<double> predict_many(const Dataset& data) const;

  [[nodiscard]] const std::vector<double>& weights() const noexcept { return w_; }
  [[nodiscard]] double intercept() const noexcept { return b_; }
  [[nodiscard]] bool trained() const noexcept { return !w_.empty(); }

  /// Persist / restore the fitted weights ("RIDG" section, docs/FORMATS.md);
  /// a loaded model predicts bit-identically. load() throws
  /// serialize::Error on malformed input.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

 private:
  double lambda_;
  std::vector<double> w_;
  double b_ = 0.0;
};

/// Solves A x = b for symmetric positive-definite A (in-place Cholesky).
/// A is row-major n x n; returns false when A is not SPD.
bool cholesky_solve(std::vector<double>& a, std::vector<double>& b, std::size_t n);

}  // namespace helios::ml
