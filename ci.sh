#!/usr/bin/env bash
# Tier-1 verify in one command: configure, build, run every gtest suite.
#
#   ./ci.sh            full build + full test sweep
#   ./ci.sh smoke      full build + fast suites only (ctest -L smoke)
#   ./ci.sh bench      full build + microbenchmark smoke run (short
#                      --benchmark_min_time so perf regressions fail loudly
#                      instead of silently; binaries are built -O2 -DNDEBUG)
#
# Extra args after the mode are passed through to ctest (full/smoke) or to
# the microbenchmarks (bench).
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-full}"
[ $# -gt 0 ] && shift
case "$mode" in
  full|smoke|bench) ;;
  *) echo "usage: ./ci.sh [full|smoke|bench] [args...]" >&2; exit 2 ;;
esac

# Release is the CMake default here, but pin it so benches are always built
# -O2 -DNDEBUG even if a stale cache says otherwise.
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$(nproc)"

if [ "$mode" = bench ]; then
  # Perf smoke: run each microbenchmark briefly; any crash, assertion (the
  # sim bench verifies sharded-vs-serial parity, the ML bench verifies
  # histogram-vs-reference GBDT and chunked-vs-serial evaluator parity, both
  # at startup), or missing binary fails the script.
  if [ ! -x build/microbench_sim ]; then
    echo "FAIL: microbench_sim not built (install google-benchmark)" >&2
    exit 1
  fi
  build/microbench_sim --benchmark_min_time=0.1 "$@"
  if [ ! -x build/microbench_ml ]; then
    echo "FAIL: microbench_ml not built (install google-benchmark)" >&2
    exit 1
  fi
  # Machine-readable results land next to the curated repo-root BENCH_ml.json
  # (recorded medians); the binary exits non-zero on any parity mismatch.
  build/microbench_ml --benchmark_min_time=0.1 \
    --benchmark_out=build/BENCH_ml.json --benchmark_out_format=json "$@"
  if [ ! -x build/microbench_ingest ]; then
    echo "FAIL: microbench_ingest not built" >&2
    exit 1
  fi
  # Small row count: smoke-check the ingestion pipeline, not a full run.
  HELIOS_INGEST_ROWS="${HELIOS_INGEST_ROWS:-100000}" \
  HELIOS_INGEST_REPS="${HELIOS_INGEST_REPS:-1}" \
    build/microbench_ingest
  exit 0
fi

cd build
if [ "$mode" = smoke ]; then
  exec ctest -L smoke --output-on-failure -j "$(nproc)" "$@"
fi
exec ctest --output-on-failure -j "$(nproc)" "$@"
