// Fault injection end to end: FaultPlan generation/persistence, ClusterState
// fail/recover bookkeeping, kill/requeue semantics in the event loop
// (hand-computed timelines for kRestart vs kResume), the scheduler-stats
// regressions the fault workload exposed (unfinished jobs, apply_schedule on
// rejected jobs), and the failure predictor (dataset -> GBDT -> node ranking
// -> placement win, plus save/load bit-parity).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "core/failure_predictor.h"
#include "ml/failure_dataset.h"
#include "serialize/binary.h"
#include "sim/cluster_state.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace helios::sim {
namespace {

using trace::JobState;
using trace::Trace;

trace::ClusterSpec one_vc_spec(int nodes, int gpn = 8) {
  trace::ClusterSpec s;
  s.name = "one";
  s.gpus_per_node = gpn;
  s.vcs = {{"vc0", nodes, gpn}};
  s.nodes = nodes;
  return s;
}

Trace make_trace(const trace::ClusterSpec& spec,
                 const std::vector<std::tuple<UnixTime, int, int, const char*>>&
                     jobs /* submit, duration, gpus, vc */) {
  Trace t(spec);
  int i = 0;
  for (const auto& [submit, dur, gpus, vc] : jobs) {
    t.add(submit, dur, gpus, gpus, "user" + std::to_string(i % 3), vc,
          "job" + std::to_string(i), JobState::kCompleted);
    ++i;
  }
  t.sort_by_submit_time();
  return t;
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlan, GenerationIsDeterministicAndSorted) {
  const auto spec = trace::helios_cluster("Venus");
  FaultPlanConfig cfg;
  cfg.mtbf_days = 10.0;
  cfg.flaky_fraction = 0.2;
  cfg.seed = 42;
  const UnixTime begin = 1000;
  const UnixTime end = begin + 90 * 86400;

  const FaultPlan a = FaultPlan::generate(spec, cfg, begin, end);
  const FaultPlan b = FaultPlan::generate(spec, cfg, begin, end);
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.failure_count(), 0u);

  for (int vc = 0; vc < a.vc_count(); ++vc) {
    const auto events = a.vc_events(vc);
    const int n_nodes = spec.vcs[static_cast<std::size_t>(vc)].nodes;
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_GE(events[i].time, begin);
      EXPECT_LT(events[i].time, end);
      EXPECT_GE(events[i].node, 0);
      EXPECT_LT(events[i].node, n_nodes);
      if (i > 0) EXPECT_LE(events[i - 1].time, events[i].time);
    }
  }

  // A different seed must produce a different schedule.
  cfg.seed = 43;
  const FaultPlan c = FaultPlan::generate(spec, cfg, begin, end);
  EXPECT_FALSE(a == c);
}

TEST(FaultPlan, FlakyNodesFailMore) {
  const auto spec = one_vc_spec(64);
  FaultPlanConfig cfg;
  cfg.mtbf_days = 30.0;
  cfg.flaky_fraction = 0.25;
  cfg.flaky_multiplier = 10.0;
  cfg.seed = 7;
  const UnixTime end = 180 * 86400;
  const FaultPlan plan = FaultPlan::generate(spec, cfg, 0, end);

  std::vector<int> per_node(64, 0);
  for (const auto& e : plan.vc_events(0)) {
    if (!e.recovery) ++per_node[static_cast<std::size_t>(e.node)];
  }
  std::int64_t flaky_sum = 0;
  std::int64_t healthy_sum = 0;
  int flaky_n = 0;
  int healthy_n = 0;
  for (int node = 0; node < 64; ++node) {
    if (plan.is_flaky(0, node)) {
      flaky_sum += per_node[static_cast<std::size_t>(node)];
      ++flaky_n;
    } else {
      healthy_sum += per_node[static_cast<std::size_t>(node)];
      ++healthy_n;
    }
  }
  ASSERT_GT(flaky_n, 0);
  ASSERT_GT(healthy_n, 0);
  // 10x rate: the per-node mean gap is enormous; 3x is a safe floor.
  EXPECT_GT(static_cast<double>(flaky_sum) / flaky_n,
            3.0 * (static_cast<double>(healthy_sum) / healthy_n + 0.1));
}

TEST(FaultPlan, ClippedKeepsWindowIntersection) {
  const auto spec = one_vc_spec(16);
  FaultPlanConfig cfg;
  cfg.mtbf_days = 5.0;
  cfg.seed = 3;
  const FaultPlan plan = FaultPlan::generate(spec, cfg, 0, 100 * 86400);
  const FaultPlan clip = plan.clipped(10 * 86400, 50 * 86400);
  EXPECT_EQ(clip.window_begin(), 10 * 86400);
  EXPECT_EQ(clip.window_end(), 50 * 86400);
  EXPECT_LT(clip.failure_count(), plan.failure_count());
  EXPECT_GT(clip.failure_count(), 0u);
  for (const auto& e : clip.vc_events(0)) {
    EXPECT_GE(e.time, 10 * 86400);
    EXPECT_LT(e.time, 50 * 86400);
  }
}

TEST(FaultPlan, SaveLoadRoundTripsAndRejectsCorruption) {
  const auto spec = trace::helios_cluster("Venus");
  FaultPlanConfig cfg;
  cfg.mtbf_days = 15.0;
  cfg.flaky_fraction = 0.1;
  cfg.seed = 11;
  const FaultPlan plan = FaultPlan::generate(spec, cfg, 500, 500 + 60 * 86400);

  serialize::Writer w;
  plan.save(w);
  const auto file = serialize::frame(w);
  {
    const auto body = serialize::unframe(file);
    serialize::Reader r(body);
    FaultPlan loaded;
    loaded.load(r);
    r.close("fault plan frame");
    EXPECT_TRUE(plan == loaded);
    EXPECT_EQ(plan.failure_count(), loaded.failure_count());
  }
  {
    // Flip one payload byte: either the CRC frame or the plan validation
    // must reject it — never a silently different plan.
    auto bad = file;
    bad[bad.size() / 2] ^= 0x40;
    EXPECT_THROW(
        {
          const auto body = serialize::unframe(bad);
          serialize::Reader r(body);
          FaultPlan loaded;
          loaded.load(r);
        },
        serialize::Error);
  }
}

// ---------------------------------------------------------------------------
// ClusterState fail/recover
// ---------------------------------------------------------------------------

TEST(ClusterState, FailAndRecoverAdjustCapacityIndexes) {
  const auto spec = one_vc_spec(3);
  ClusterState state(spec);
  EXPECT_EQ(state.schedulable_gpus(0), 24);

  state.fail_node(1);
  EXPECT_EQ(state.failed_nodes(), 1);
  EXPECT_EQ(state.failed_nodes_in_vc(0), 1);
  EXPECT_EQ(state.schedulable_gpus(0), 16);
  EXPECT_EQ(state.free_gpus(0), 16);
  EXPECT_EQ(state.capacity_gpus(0), 24);  // transient: still counts capacity
  EXPECT_TRUE(state.can_ever_fit(0, 24));
  EXPECT_EQ(state.active_nodes(), 2);
  EXPECT_EQ(state.node(1).power, PowerState::kFailed);

  // Idempotent; allocation steers around the dead node.
  state.fail_node(1);
  EXPECT_EQ(state.failed_nodes(), 1);
  auto alloc = state.try_allocate(0, 16);
  ASSERT_TRUE(alloc.has_value());
  for (auto [ni, g] : alloc->node_gpus) EXPECT_NE(ni, 1);

  // 24 GPUs can never be placed while a node is down.
  EXPECT_FALSE(state.try_allocate(0, 24).has_value());

  state.recover_node(1);
  EXPECT_EQ(state.failed_nodes(), 0);
  EXPECT_EQ(state.schedulable_gpus(0), 24);
  // The 16-GPU gang from above is still held; only the repaired node is free.
  EXPECT_EQ(state.free_gpus(0), state.node(1).total_gpus);
  EXPECT_EQ(state.node(1).power, PowerState::kActive);
  state.recover_node(1);  // no-op on an active node
  EXPECT_EQ(state.failed_nodes(), 0);
}

TEST(ClusterState, FailureTakesSleepingAndBootingNodes) {
  const auto spec = one_vc_spec(2);
  ClusterState state(spec);
  ASSERT_EQ(state.sleep_idle_nodes_in_vc(0, 1), 1);  // node 0 sleeps
  state.fail_node(0);
  EXPECT_EQ(state.sleeping_nodes(), 0);
  EXPECT_EQ(state.failed_nodes(), 1);

  ASSERT_EQ(state.sleep_idle_nodes_in_vc(0, 1), 1);  // node 1 sleeps
  ASSERT_EQ(state.wake_nodes_in_vc(0, 1, /*now=*/100, /*boot_delay=*/50), 1);
  state.fail_node(1);  // dies mid-boot: the pending boot must not resurrect it
  EXPECT_EQ(state.failed_nodes(), 2);
  state.finish_boots(1000);
  EXPECT_EQ(state.node(1).power, PowerState::kFailed);
  EXPECT_EQ(state.schedulable_gpus(0), 0);

  state.recover_node(0);
  state.recover_node(1);
  EXPECT_EQ(state.schedulable_gpus(0), 16);
  EXPECT_EQ(state.active_nodes(), 2);
}

// ---------------------------------------------------------------------------
// Simulator kill/requeue semantics
// ---------------------------------------------------------------------------

/// One node, one 8-GPU job of 1000 s starting at t=0; the node fails at
/// t=400 and recovers at t=600.
SimResult run_single_kill(FaultRestart restart, const FaultPlan& plan) {
  const auto spec = one_vc_spec(1);
  const auto t = make_trace(spec, {{0, 1000, 8, "vc0"}});
  SimConfig cfg;
  cfg.fault_plan = &plan;
  cfg.restart = restart;
  return ClusterSimulator(spec, cfg).run(t);
}

TEST(Simulator, FailureKillsAndRestartRunsFullDurationAgain) {
  const auto spec = one_vc_spec(1);
  const FaultPlan plan = FaultPlan::from_events(
      spec, 0, 100000, {{{400, 0, false}, {600, 0, true}}});
  const SimResult r = run_single_kill(FaultRestart::kRestart, plan);
  ASSERT_EQ(r.outcomes.size(), 1u);
  // Killed at 400 (progress lost), node back at 600, full 1000 s again.
  EXPECT_EQ(r.outcomes[0].start, 0);
  EXPECT_EQ(r.outcomes[0].end, 1600);
  EXPECT_EQ(r.outcomes[0].kills, 1);
  EXPECT_EQ(r.job_kills, 1);
  EXPECT_EQ(r.node_failures, 1);
  EXPECT_EQ(r.unfinished_jobs, 0);
  EXPECT_EQ(r.avg_jct, 1600.0);
}

TEST(Simulator, FailureKillsAndResumeRedoesOnlyRemainingWork) {
  const auto spec = one_vc_spec(1);
  const FaultPlan plan = FaultPlan::from_events(
      spec, 0, 100000, {{{400, 0, false}, {600, 0, true}}});
  const SimResult r = run_single_kill(FaultRestart::kResume, plan);
  ASSERT_EQ(r.outcomes.size(), 1u);
  // 400 s done before the kill; 600 s remain after recovery at t=600.
  EXPECT_EQ(r.outcomes[0].end, 1200);
  EXPECT_EQ(r.outcomes[0].kills, 1);
}

TEST(Simulator, EnergyAccountingRoundTripsThroughTheFaultPath) {
  // Kill/requeue/recover must move the power bookkeeping exactly like the
  // GPU bookkeeping: the killed run's draw leaves immediately (no node ever
  // stays "stuck busy"), the failed node bills failed_node_watts (0), and
  // the requeued run's draw returns on restart. One 8-GPU node, a 1000 s job
  // at t=0, node down [400, 600); a late 1-GPU job at t=2000 stretches the
  // series window to [0, 2011) so restart and resume diverge in-window.
  const auto spec = one_vc_spec(1);
  const auto t =
      make_trace(spec, {{0, 1000, 8, "vc0"}, {2000, 10, 1, "vc0"}});
  const FaultPlan plan = FaultPlan::from_events(
      spec, 0, 100000, {{{400, 0, false}, {600, 0, true}}});
  SimConfig cfg;
  cfg.fault_plan = &plan;

  // Restart: full 1000 s again from t=600.
  //   [0,400) 3200 W; [400,600) failed, 0 W; [600,1600) 3200 W;
  //   [1600,2000) idle 800 W; [2000,2010) 1100 W; [2010,2011) 800 W.
  cfg.restart = FaultRestart::kRestart;
  const SimResult restart = ClusterSimulator(spec, cfg).run(t);
  ASSERT_EQ(restart.outcomes[0].end, 1600);
  EXPECT_EQ(restart.energy_joules, 3200.0 * 400 + 3200.0 * 1000 +
                                       800.0 * 400 + 1100.0 * 10 + 800.0);
  EXPECT_EQ(restart.max_power_watts, 3200.0);
  ASSERT_EQ(restart.vc_stats.size(), 1u);
  EXPECT_EQ(restart.vc_stats[0].energy_joules, restart.energy_joules);
  // Bucket [0,600): only the 400 busy seconds draw — the dead node and its
  // killed run contribute nothing, proving the draw was released with the
  // kill and not left running.
  ASSERT_GE(restart.power_watts.values.size(), 1u);
  EXPECT_EQ(restart.power_watts.values[0], 3200.0 * 400 / 600.0);

  // Resume: only the remaining 600 s re-run, so 400 s less at full draw.
  cfg.restart = FaultRestart::kResume;
  const SimResult resume = ClusterSimulator(spec, cfg).run(t);
  ASSERT_EQ(resume.outcomes[0].end, 1200);
  EXPECT_EQ(resume.energy_joules, restart.energy_joules - 2400.0 * 400);
  EXPECT_EQ(resume.max_power_watts, 3200.0);
}

TEST(Simulator, GangDiesWithAnyOfItsNodes) {
  // 16-GPU gang spans both nodes; killing node 1 releases node 0 too, so the
  // queued 8-GPU job starts immediately on the surviving node.
  const auto spec = one_vc_spec(2);
  const auto t = make_trace(spec, {{0, 1000, 16, "vc0"}, {10, 50, 8, "vc0"}});
  const FaultPlan plan =
      FaultPlan::from_events(spec, 0, 100000, {{{100, 1, false}}});
  SimConfig cfg;
  cfg.fault_plan = &plan;
  cfg.backfill = true;  // the dead gang blocks the head; backfill goes around
  const SimResult r = ClusterSimulator(spec, cfg).run(t);
  ASSERT_EQ(r.outcomes.size(), 2u);
  EXPECT_EQ(r.outcomes[0].kills, 1);
  // Node 1 never recovers: the 16-GPU gang can never run again...
  EXPECT_EQ(r.outcomes[0].end, trace::kNeverStarted);
  EXPECT_EQ(r.unfinished_jobs, 1);
  // ...but the small job proceeds on freed node 0 right after the kill.
  EXPECT_EQ(r.outcomes[1].start, 100);
  EXPECT_EQ(r.outcomes[1].end, 150);
}

TEST(Simulator, PermanentFailureLeavesQueuedJobsCounted) {
  // Regression: jobs that never start used to vanish from queued_jobs and
  // the averages entirely. The single node dies before the second job can
  // run and never recovers.
  const auto spec = one_vc_spec(1);
  const auto t = make_trace(spec, {{0, 100, 8, "vc0"}, {10, 100, 8, "vc0"}});
  const FaultPlan plan =
      FaultPlan::from_events(spec, 0, 100000, {{{50, 0, false}}});
  SimConfig cfg;
  cfg.fault_plan = &plan;
  const SimResult r = ClusterSimulator(spec, cfg).run(t);
  ASSERT_EQ(r.outcomes.size(), 2u);
  EXPECT_EQ(r.outcomes[0].kills, 1);
  EXPECT_EQ(r.outcomes[0].end, trace::kNeverStarted);
  EXPECT_EQ(r.outcomes[1].start, trace::kNeverStarted);
  EXPECT_EQ(r.unfinished_jobs, 2);  // the killed job and the never-started one
  EXPECT_EQ(r.queued_jobs, 2);
  // No finished job: the averages must stay clean zeros, not garbage from
  // kNeverStarted sentinels.
  EXPECT_EQ(r.avg_jct, 0.0);
  EXPECT_EQ(r.avg_queue_delay, 0.0);
}

TEST(Simulator, ApplyScheduleSkipsRejectedJobs) {
  // Regression: apply_schedule used to copy the rejected sentinel
  // (start = submit) into the trace and count the job as updated.
  const auto spec = one_vc_spec(1);
  auto t = make_trace(spec, {{0, 100, 8, "vc0"}, {5, 100, 24, "vc0"}});
  const std::int64_t rejected_start_before = t.jobs()[1].start_time;
  const SimResult r = ClusterSimulator(spec, SimConfig{}).run(t);
  ASSERT_EQ(r.outcomes.size(), 2u);
  ASSERT_TRUE(r.outcomes[1].rejected);
  EXPECT_EQ(apply_schedule(t, r), 1u);
  EXPECT_EQ(t.jobs()[0].start_time, 0);
  EXPECT_EQ(t.jobs()[1].start_time, rejected_start_before);
}

TEST(Simulator, NodeOrderSteersPlacementAwayFromRankedLastNode) {
  // Two jobs fit one node each. Identity order fills node 0 first; with
  // node_order [1, 2, 0] the allocator fills nodes 1 and 2 and node 0 idles,
  // so a node-0 failure kills nothing.
  const auto spec = one_vc_spec(3);
  const auto t = make_trace(spec, {{0, 500, 8, "vc0"}, {0, 500, 8, "vc0"}});
  const FaultPlan plan = FaultPlan::from_events(
      spec, 0, 100000, {{{100, 0, false}, {200, 0, true}}});

  SimConfig cfg;
  cfg.fault_plan = &plan;
  const SimResult identity = ClusterSimulator(spec, cfg).run(t);
  EXPECT_EQ(identity.job_kills, 1);

  cfg.node_order = {{1, 2, 0}};
  const SimResult steered = ClusterSimulator(spec, cfg).run(t);
  EXPECT_EQ(steered.job_kills, 0);
  EXPECT_EQ(steered.outcomes[0].end, 500);
  EXPECT_EQ(steered.outcomes[1].end, 500);
  EXPECT_LT(steered.avg_jct, identity.avg_jct);
}

// ---------------------------------------------------------------------------
// Failure dataset + predictor
// ---------------------------------------------------------------------------

TEST(FailureDataset, LabelsAndFeaturesFollowTheHistory) {
  const auto spec = one_vc_spec(2);
  // Node 0 fails daily at noon; node 1 never fails.
  std::vector<NodeFaultEvent> events;
  for (int day = 0; day < 30; ++day) {
    events.push_back({day * 86400 + 43200, 0, false});
    events.push_back({day * 86400 + 43200 + 3600, 0, true});
  }
  const FaultPlan plan =
      FaultPlan::from_events(spec, 0, 30 * 86400, {std::move(events)});

  ml::FailureDatasetConfig cfg;
  cfg.sample_step = 12 * 3600;
  cfg.horizon = 24 * 3600;
  cfg.warmup = 24 * 3600;
  const ml::Dataset data = ml::build_failure_dataset(spec, plan, cfg);
  ASSERT_GT(data.rows(), 0u);
  ASSERT_EQ(data.features(), ml::kFailureFeatureCount);

  // Rows are (vc, node, t)-ordered: first half node 0 (all positive labels —
  // it fails every day), second half node 1 (all negative).
  const std::size_t half = data.rows() / 2;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    EXPECT_EQ(data.target(i), i < half ? 1.0 : 0.0) << "row " << i;
  }
  // Node-0 rows accumulate failure counts; node-1 rows stay at zero.
  EXPECT_GT(data.at(half - 1, 0), 0.0);
  EXPECT_EQ(data.at(data.rows() - 1, 0), 0.0);

  const ml::NodeFailureHistory history(spec, plan);
  EXPECT_EQ(history.failures_in(0, 0, 0, 30 * 86400), 30);
  EXPECT_EQ(history.failures_in(0, 1, 0, 30 * 86400), 0);
  const auto f = history.features(0, 0, 10 * 86400);
  EXPECT_EQ(f[0], 10.0);  // ten failures before day 10
  EXPECT_EQ(f[1], 7.0);   // seven in the last week
  EXPECT_EQ(f[2], 1.0);   // one in the last day
}

core::FailurePredictorConfig small_predictor_config() {
  core::FailurePredictorConfig cfg;
  cfg.dataset.sample_step = 12 * 3600;
  cfg.gbdt.n_trees = 30;
  cfg.gbdt.max_depth = 3;
  return cfg;
}

TEST(FailurePredictor, RanksFlakyNodesLastAndRoundTrips) {
  const auto spec = one_vc_spec(16);
  FaultPlanConfig fp;
  fp.mtbf_days = 200.0;  // healthy nodes almost never fail...
  fp.flaky_fraction = 0.25;
  fp.flaky_multiplier = 40.0;  // ...flaky ones fail every ~5 days
  fp.seed = 5;
  const UnixTime end = 120 * 86400;
  const FaultPlan plan = FaultPlan::generate(spec, fp, 0, end);

  core::FailurePredictor predictor(small_predictor_config());
  predictor.fit(spec, plan);
  ASSERT_TRUE(predictor.trained());

  const auto order = predictor.rank_nodes(spec, plan, end);
  ASSERT_EQ(order.size(), 1u);
  ASSERT_EQ(order[0].size(), 16u);
  {
    auto sorted = order[0];
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 16; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
  // Every flaky node must rank behind every healthy node.
  std::vector<std::size_t> rank_of(16);
  for (std::size_t k = 0; k < order[0].size(); ++k) {
    rank_of[static_cast<std::size_t>(order[0][k])] = k;
  }
  std::size_t max_healthy = 0;
  std::size_t min_flaky = 16;
  int flaky_n = 0;
  for (int node = 0; node < 16; ++node) {
    if (plan.is_flaky(0, node)) {
      min_flaky = std::min(min_flaky, rank_of[static_cast<std::size_t>(node)]);
      ++flaky_n;
    } else {
      max_healthy =
          std::max(max_healthy, rank_of[static_cast<std::size_t>(node)]);
    }
  }
  ASSERT_GT(flaky_n, 0);
  ASSERT_LT(flaky_n, 16);
  EXPECT_LT(max_healthy, min_flaky);

  // Round trip: bit-identical risks and an identical ranking.
  serialize::Writer w;
  predictor.save(w);
  const auto body = serialize::unframe(serialize::frame(w));
  serialize::Reader r(body);
  core::FailurePredictor loaded;
  loaded.load(r);
  r.close("failure predictor frame");
  ASSERT_TRUE(loaded.trained());
  const ml::NodeFailureHistory history(spec, plan);
  for (int node = 0; node < 16; ++node) {
    EXPECT_EQ(predictor.risk(history, 0, node, end),
              loaded.risk(history, 0, node, end))
        << "node " << node;
  }
  EXPECT_EQ(loaded.rank_nodes(spec, plan, end), order);
}

TEST(FailurePredictor, UntrainedRanksIdentity) {
  const auto spec = one_vc_spec(4);
  const FaultPlan empty = FaultPlan::from_events(spec, 0, 86400, {});
  const core::FailurePredictor predictor;
  const auto order = predictor.rank_nodes(spec, empty, 86400);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], (std::vector<std::int32_t>{0, 1, 2, 3}));
}

TEST(FailurePredictor, FailureAwarePlacementBeatsIdentityUnderChurn) {
  // Deployment-shaped check: train on the first 60 days of faults, rank
  // nodes, and replay a steady workload over the full window. Risk-aware
  // placement must cut kills and average JCT vs identity order.
  const auto spec = one_vc_spec(8);
  FaultPlanConfig fp;
  fp.mtbf_days = 400.0;
  fp.flaky_fraction = 0.25;
  fp.flaky_multiplier = 80.0;
  fp.mean_downtime = 12 * 3600;
  fp.seed = 17;
  const UnixTime split = 60 * 86400;
  const UnixTime end = 90 * 86400;
  const FaultPlan plan = FaultPlan::generate(spec, fp, 0, end);
  ASSERT_GT(plan.clipped(split, end).failure_count(), 0u);

  // Steady stream: 4 concurrent 8-GPU jobs' worth of demand on 8 nodes, so
  // half the nodes idle — the slack risk-aware placement can hide faults in.
  std::vector<std::tuple<UnixTime, int, int, const char*>> jobs;
  for (UnixTime t = 0; t + 7200 < end; t += 1800) {
    jobs.push_back({t, 7200, 8, "vc0"});
  }
  const Trace t = make_trace(spec, jobs);

  SimConfig cfg;
  cfg.fault_plan = &plan;
  cfg.restart = FaultRestart::kRestart;
  const SimResult identity = ClusterSimulator(spec, cfg).run(t);

  core::FailurePredictor predictor(small_predictor_config());
  predictor.fit(spec, plan.clipped(0, split));
  ASSERT_TRUE(predictor.trained());
  cfg.node_order = predictor.rank_nodes(spec, plan.clipped(0, split), split);
  const SimResult aware = ClusterSimulator(spec, cfg).run(t);

  EXPECT_GT(identity.node_failures, 0);
  EXPECT_GT(identity.job_kills, 0);
  EXPECT_LT(aware.job_kills, identity.job_kills);
  EXPECT_LT(aware.avg_jct, identity.avg_jct);
}

}  // namespace
}  // namespace helios::sim
