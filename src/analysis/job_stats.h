// Job-level characterization (paper §3.2, Figures 1, 5, 6, 7; Table 2).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "stats/ecdf.h"
#include "trace/trace.h"

namespace helios::analysis {

/// Table-2-style summary of one trace.
struct TraceSummary {
  std::int64_t total_jobs = 0;
  std::int64_t gpu_jobs = 0;
  std::int64_t cpu_jobs = 0;
  double avg_gpus_per_gpu_job = 0.0;
  std::int32_t max_gpus = 0;
  double avg_gpu_job_duration = 0.0;
  double median_gpu_job_duration = 0.0;
  double avg_cpu_job_duration = 0.0;
  std::int32_t max_duration = 0;
  std::int64_t users = 0;
  std::int64_t vcs = 0;
  double duration_days = 0.0;
};

[[nodiscard]] TraceSummary summarize(const trace::Trace& t);

/// ECDF of job durations (seconds); `gpu_jobs` selects GPU vs CPU jobs.
[[nodiscard]] stats::Ecdf duration_cdf(const trace::Trace& t, bool gpu_jobs);

/// Fractions of total GPU time attributed to each final status
/// (Figure 1b / 7a): indexed by JobState (completed, canceled, failed).
[[nodiscard]] std::array<double, 3> gpu_time_by_state(const trace::Trace& t);

/// Fractions of jobs by final status; `gpu_jobs` selects the population
/// (Figure 7a).
[[nodiscard]] std::array<double, 3> job_fraction_by_state(const trace::Trace& t,
                                                          bool gpu_jobs);

/// Distribution over GPU-demand buckets 2^0 .. 2^k (Figure 6): for each
/// power-of-two demand, the fraction of GPU jobs (exact demand match) and
/// the fraction of total GPU time.
struct SizeBucket {
  std::int32_t gpus = 1;
  double job_fraction = 0.0;
  double gpu_time_fraction = 0.0;
  /// Cumulative variants (CDF view used by the paper's plot).
  double job_cdf = 0.0;
  double gpu_time_cdf = 0.0;
};

[[nodiscard]] std::vector<SizeBucket> job_size_distribution(const trace::Trace& t);

/// Final-status fractions per power-of-two GPU demand (Figure 7b).
struct StatusBySize {
  std::int32_t gpus = 1;
  std::int64_t jobs = 0;
  double completed = 0.0;
  double canceled = 0.0;
  double failed = 0.0;
};

[[nodiscard]] std::vector<StatusBySize> status_by_gpu_count(const trace::Trace& t);

}  // namespace helios::analysis
