// google-benchmark microbenchmarks for the trace generator and the
// discrete-event simulator (jobs scheduled per second of wall time).
#include <benchmark/benchmark.h>

#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace {

using namespace helios;

void BM_TraceGeneration(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 1000.0;
  std::size_t jobs = 0;
  for (auto _ : state) {
    auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 42,
                                              scale);
    const auto t = trace::SyntheticTraceGenerator(cfg).generate();
    jobs = t.size();
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_TraceGeneration)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

const trace::Trace& cached_trace() {
  static const trace::Trace t = [] {
    auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Venus"), 42,
                                              0.05);
    return trace::SyntheticTraceGenerator(cfg).generate();
  }();
  return t;
}

void run_policy(benchmark::State& state, sim::SchedulerPolicy policy) {
  const auto& t = cached_trace();
  sim::SimConfig cfg;
  cfg.policy = policy;
  if (policy == sim::SchedulerPolicy::kQssf) {
    cfg.priority_fn = [](const trace::JobRecord& j) {
      return static_cast<double>(j.duration) * j.num_gpus;
    };
  }
  std::size_t jobs = 0;
  for (auto _ : state) {
    sim::ClusterSimulator sim(t.cluster(), cfg);
    const auto r = sim.run(t);
    jobs = r.outcomes.size();
    benchmark::DoNotOptimize(r.avg_jct);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}

void BM_SimulateFifo(benchmark::State& state) {
  run_policy(state, sim::SchedulerPolicy::kFifo);
}
void BM_SimulateSjf(benchmark::State& state) {
  run_policy(state, sim::SchedulerPolicy::kSjf);
}
void BM_SimulateSrtf(benchmark::State& state) {
  run_policy(state, sim::SchedulerPolicy::kSrtf);
}
void BM_SimulateQssf(benchmark::State& state) {
  run_policy(state, sim::SchedulerPolicy::kQssf);
}
BENCHMARK(BM_SimulateFifo)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateSjf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateSrtf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateQssf)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
