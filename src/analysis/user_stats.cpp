#include "analysis/user_stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace helios::analysis {

using trace::JobState;
using trace::Trace;

std::vector<UserAggregate> user_aggregates(const Trace& t) {
  std::unordered_map<std::uint32_t, UserAggregate> agg;
  for (const auto& j : t.jobs()) {
    auto& u = agg[j.user];
    u.user = j.user;
    if (j.is_gpu_job()) {
      u.gpu_time += j.gpu_time();
      u.queue_delay += static_cast<double>(j.queue_delay());
      ++u.gpu_jobs;
      if (j.state == JobState::kCompleted) ++u.gpu_jobs_completed;
    } else {
      u.cpu_time += j.cpu_time();
      ++u.cpu_jobs;
    }
  }
  std::vector<UserAggregate> out;
  out.reserve(agg.size());
  for (auto& [id, u] : agg) out.push_back(u);
  std::sort(out.begin(), out.end(),
            [](const UserAggregate& a, const UserAggregate& b) {
              return a.user < b.user;
            });
  return out;
}

std::vector<SharePoint> share_curve(std::vector<double> values) {
  std::sort(values.begin(), values.end(), std::greater<>());
  double total = 0.0;
  for (double v : values) total += v;
  std::vector<SharePoint> curve;
  curve.reserve(values.size() + 1);
  curve.push_back({0.0, 0.0});
  double acc = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    acc += values[i];
    curve.push_back({static_cast<double>(i + 1) / static_cast<double>(values.size()),
                     total > 0.0 ? acc / total : 0.0});
  }
  return curve;
}

double top_share(const std::vector<double>& values, double top_fraction) {
  if (values.empty()) return 0.0;
  const auto curve = share_curve(values);
  // Find the first curve point at or past the requested user fraction.
  for (const auto& p : curve) {
    if (p.user_fraction >= top_fraction) return p.value_fraction;
  }
  return 1.0;
}

}  // namespace helios::analysis
