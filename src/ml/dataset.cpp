#include "ml/dataset.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/thread_pool.h"
#include "serialize/binary.h"

namespace helios::ml {

void Dataset::add_row(std::span<const double> features, double target) {
  assert(features.size() == n_features_);
  x_.insert(x_.end(), features.begin(), features.end());
  y_.push_back(target);
}

DatasetSplit Dataset::split(double train_fraction, Rng& rng) const {
  DatasetSplit s{Dataset(n_features_), Dataset(n_features_)};
  for (std::size_t r = 0; r < rows(); ++r) {
    (rng.bernoulli(train_fraction) ? s.train : s.test).add_row(row(r), y_[r]);
  }
  return s;
}

// ---------------------------------------------------------------------------
// FeatureBinner
// ---------------------------------------------------------------------------

void FeatureBinner::fit(const Dataset& data, int max_bins, Rng& rng) {
  // Bin ids are std::uint8_t: with more than 256 bins the edge index would
  // wrap modulo 256, scrambling splits. Clamp the budget instead.
  max_bins = std::min(max_bins, 256);

  const std::size_t n = data.rows();
  const std::size_t p = data.features();
  edges_.assign(p, {});
  if (n == 0 || max_bins < 2) return;

  // Quantile edges from a sample (binning fidelity does not need all rows;
  // ~300 samples per candidate edge keep the quantiles stable).
  constexpr std::size_t kSampleCap = 20'000;
  std::vector<std::size_t> sample_rows;
  if (n <= kSampleCap) {
    sample_rows.resize(n);
    std::iota(sample_rows.begin(), sample_rows.end(), 0);
  } else {
    sample_rows.reserve(kSampleCap);
    for (std::size_t i = 0; i < kSampleCap; ++i) {
      sample_rows.push_back(rng.uniform_index(n));
    }
  }

  for (std::size_t f = 0; f < p; ++f) {
    std::vector<double> values;
    values.reserve(sample_rows.size());
    for (std::size_t r : sample_rows) values.push_back(data.at(r, f));
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    auto& edges = edges_[f];
    if (values.size() <= static_cast<std::size_t>(max_bins)) {
      // Few distinct values: one bin per value (categorical-friendly).
      edges.assign(values.begin(), values.size() > 1 ? values.end() - 1
                                                     : values.begin());
    } else {
      edges.reserve(static_cast<std::size_t>(max_bins) - 1);
      for (int b = 1; b < max_bins; ++b) {
        const std::size_t idx =
            values.size() * static_cast<std::size_t>(b) / static_cast<std::size_t>(max_bins);
        const double e = values[std::min(idx, values.size() - 1)];
        if (edges.empty() || e > edges.back()) edges.push_back(e);
      }
    }
  }
}

namespace {
constexpr std::uint32_t kBinnerTag = serialize::fourcc("BINR");
constexpr std::uint32_t kBinnerVersion = 1;
}  // namespace

void FeatureBinner::save(serialize::Writer& w) const {
  w.begin_section(kBinnerTag);
  w.u32(kBinnerVersion);
  w.u64(edges_.size());
  for (const auto& edges : edges_) w.vec_f64(edges);
  w.end_section();
}

void FeatureBinner::load(serialize::Reader& r) {
  serialize::Reader s = r.section(kBinnerTag);
  const std::uint32_t version = s.u32();
  if (version != kBinnerVersion) {
    throw serialize::Error(serialize::ErrorCode::kUnsupportedVersion,
                           "binner section version " + std::to_string(version));
  }
  const std::size_t p = s.length(8);  // each feature holds at least a count
  std::vector<std::vector<double>> edges(p);
  for (std::size_t f = 0; f < p; ++f) {
    edges[f] = s.vec_f64();
    // bins(f) = edges + 1 must fit the uint8 bin ids, and bin() requires
    // strictly ascending edges — reject anything else before adopting it.
    if (edges[f].size() > 255) {
      throw serialize::Error(serialize::ErrorCode::kCorrupt,
                             "feature " + std::to_string(f) + " has " +
                                 std::to_string(edges[f].size()) + " edges");
    }
    for (std::size_t i = 1; i < edges[f].size(); ++i) {
      if (!(edges[f][i - 1] < edges[f][i])) {
        throw serialize::Error(serialize::ErrorCode::kCorrupt,
                               "feature " + std::to_string(f) +
                                   " edges are not strictly ascending");
      }
    }
  }
  s.close("binner");
  edges_ = std::move(edges);
}

BinnedMatrix bin_dataset(const Dataset& data, const FeatureBinner& binner,
                         BinLayout layout) {
  BinnedMatrix x;
  x.rows = data.rows();
  x.features = binner.features();
  x.layout = layout;
  const std::size_t cells = x.rows * x.features;
  // Row-major planes carry a few zero bytes of tail padding: the AVX2
  // predict walk loads each uint8 cell with a 4-byte gather, which reads up
  // to kSimdPad bytes past the last cell. The padding is inside the vector's
  // size() so sanitizer container annotations see the reads as in-bounds.
  const std::size_t pad =
      layout == BinLayout::kRowMajor && cells > 0 ? BinnedMatrix::kSimdPad : 0;
  x.bins.resize(cells + pad);
  x.feature_offset.resize(x.features + 1, 0);
  for (std::size_t f = 0; f < x.features; ++f) {
    x.feature_offset[f + 1] = x.feature_offset[f] + binner.bins(f);
  }
  if (layout == BinLayout::kRowMajor) {
    const bool with_global = x.feature_offset[x.features] <= 0xffff;
    if (with_global) x.global.resize(x.rows * x.features);
    // One sequential pass over the (row-major) dataset, four rows at a time:
    // the per-feature edge arrays all stay resident, and the interleaved
    // searches overlap their dependent-load chains.
    parallel_for_chunks(
        0, x.rows,
        [&](std::size_t lo, std::size_t hi) {
          const std::size_t p = x.features;
          const auto emit = [&](std::size_t r, std::size_t f, std::uint8_t b) {
            x.bins[r * p + f] = b;
            if (with_global) {
              x.global[r * p + f] =
                  static_cast<std::uint16_t>(x.feature_offset[f] + b);
            }
          };
          std::size_t r = lo;
          for (; r + 3 < hi; r += 4) {
            for (std::size_t f = 0; f < p; ++f) {
              const double v[4] = {data.at(r, f), data.at(r + 1, f),
                                   data.at(r + 2, f), data.at(r + 3, f)};
              std::uint8_t b[4];
              binner.bin4(f, v, b);
              for (std::size_t j = 0; j < 4; ++j) emit(r + j, f, b[j]);
            }
          }
          for (; r < hi; ++r) {
            for (std::size_t f = 0; f < p; ++f) {
              emit(r, f, binner.bin(f, data.at(r, f)));
            }
          }
        },
        /*grain=*/8192);
  } else {
    parallel_for_chunks(
        0, x.features,
        [&](std::size_t f_lo, std::size_t f_hi) {
          for (std::size_t f = f_lo; f < f_hi; ++f) {
            std::uint8_t* col = x.bins.data() + f * x.rows;
            for (std::size_t r = 0; r < x.rows; ++r) {
              col[r] = binner.bin(f, data.at(r, f));
            }
          }
        },
        /*grain=*/1);
  }
  return x;
}

}  // namespace helios::ml
