#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "stats/summary.h"

namespace helios {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(7);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(42);
  std::array<int, 7> counts{};
  for (int i = 0; i < 70000; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(99);
  stats::RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(rs.mean(), 5.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(7);
  std::vector<double> xs;
  xs.reserve(100000);
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.lognormal(std::log(206.0), 1.0));
  EXPECT_NEAR(stats::median(xs), 206.0, 10.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  stats::RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.exponential(0.25));
  EXPECT_NEAR(rs.mean(), 4.0, 0.1);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(13);
  stats::RunningStats small;
  stats::RunningStats large;
  for (int i = 0; i < 50000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.0)));
    large.add(static_cast<double>(rng.poisson(120.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.06);
  EXPECT_NEAR(large.mean(), 120.0, 0.5);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(23);
  const std::vector<double> w = {1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 100000; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.2, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.7, 0.01);
}

TEST(CategoricalSampler, MatchesWeightsAndProbability) {
  Rng rng(29);
  const std::vector<double> w = {5.0, 0.0, 3.0, 2.0};
  CategoricalSampler s{std::span<const double>(w)};
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.probability(0), 0.5);
  EXPECT_DOUBLE_EQ(s.probability(1), 0.0);
  std::array<int, 4> counts{};
  for (int i = 0; i < 100000; ++i) ++counts[s.sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 100000.0, 0.5, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.3, 0.01);
  EXPECT_NEAR(counts[3] / 100000.0, 0.2, 0.01);
}

TEST(ZipfSampler, RankOneDominates) {
  Rng rng(31);
  ZipfSampler z(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[9], counts[99]);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace helios
