#include "stats/distribution.h"

#include <algorithm>
#include <cmath>

namespace helios::stats {

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_quantile(double p) noexcept {
  // Peter Acklam's inverse normal CDF approximation.
  p = std::clamp(p, 1e-15, 1.0 - 1e-15);
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  constexpr double phigh = 1.0 - plow;
  double q;
  double r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double LogNormalParams::median() const noexcept { return std::exp(mu); }

double LogNormalParams::mean() const noexcept {
  return std::exp(mu + 0.5 * sigma * sigma);
}

double LogNormalParams::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu) / sigma);
}

double LogNormalParams::quantile(double q) const noexcept {
  return std::exp(mu + sigma * normal_quantile(q));
}

LogNormalParams fit_lognormal(std::span<const double> data) noexcept {
  double sum = 0.0;
  double sum2 = 0.0;
  std::size_t n = 0;
  for (double x : data) {
    if (x > 0.0) {
      const double lx = std::log(x);
      sum += lx;
      sum2 += lx * lx;
      ++n;
    }
  }
  if (n < 2) return {};
  const double mu = sum / static_cast<double>(n);
  const double var =
      std::max(0.0, (sum2 - sum * mu) / static_cast<double>(n - 1));
  return {mu, std::sqrt(var)};
}

LogNormalParams lognormal_from_median_mean(double median, double mean) noexcept {
  LogNormalParams p;
  if (median <= 0.0) return p;
  p.mu = std::log(median);
  p.sigma = mean > median ? std::sqrt(2.0 * std::log(mean / median)) : 0.0;
  return p;
}

}  // namespace helios::stats
