#include <gtest/gtest.h>

#include <memory>

#include "core/ces_service.h"
#include "core/framework.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace helios::core {
namespace {

using trace::Trace;

struct CesFixture {
  Trace t;
  forecast::TimeSeries history;
  UnixTime eval_begin = from_civil(2020, 9, 1);
  UnixTime eval_end = from_civil(2020, 9, 22);

  explicit CesFixture(double scale = 0.15, std::uint64_t seed = 19) {
    auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster("Earth"),
                                              seed, scale);
    t = trace::SyntheticTraceGenerator(cfg).generate();
    // Operate the whole trace under FIFO to obtain the running-nodes series;
    // the part before September is the forecaster's training history.
    const auto r = sim::operate_fifo(t);
    history = r.busy_nodes.between(r.busy_nodes.begin, eval_begin);
  }
};

CesConfig test_config(bool vanilla = false) {
  CesConfig cfg;
  cfg.sigma = 2;
  cfg.vanilla_drs = vanilla;
  return cfg;
}

std::unique_ptr<forecast::Forecaster> naive_model() {
  // Cheap forecaster keeps unit tests fast; GBDT is covered separately.
  return std::make_unique<forecast::SeasonalNaiveForecaster>(144);
}

TEST(CesService, ReplayInvariants) {
  CesFixture f;
  CesService svc(test_config(), naive_model());
  svc.fit(f.history);
  const auto r = svc.replay(f.t, f.history, f.eval_begin, f.eval_end);

  EXPECT_GT(r.total_jobs, 100);
  EXPECT_GE(r.avg_drs_nodes, 0.0);
  EXPECT_LE(r.avg_drs_nodes, r.total_nodes);
  EXPECT_GE(r.wakeup_events, 0);
  EXPECT_GE(r.saved_kwh, 0.0);
  EXPECT_GE(r.annualized_kwh, r.saved_kwh);  // 3 weeks -> year scales up
  ASSERT_EQ(r.running_nodes.size(), r.active_nodes.size());
  for (std::size_t i = 0; i < r.running_nodes.size(); ++i) {
    // Powered nodes always cover the running ones; both within the cluster.
    EXPECT_LE(r.running_nodes.values[i], r.active_nodes.values[i] + 1e-6);
    EXPECT_LE(r.active_nodes.values[i], r.total_nodes + 1e-6);
  }
}

TEST(CesService, ImprovesNodeUtilization) {
  CesFixture f;
  CesService svc(test_config(), naive_model());
  svc.fit(f.history);
  const auto r = svc.replay(f.t, f.history, f.eval_begin, f.eval_end);
  // Powering off idle nodes raises busy/active vs busy/total (Table 5:
  // 82.1% -> 95.1% on Earth).
  EXPECT_GT(r.node_util_ces, r.node_util_original + 0.02);
  EXPECT_GT(r.avg_drs_nodes, 0.5);  // some nodes actually sleep
}

TEST(CesService, AffectedJobsAreSmallFraction) {
  CesFixture f;
  CesService svc(test_config(), naive_model());
  svc.fit(f.history);
  const auto r = svc.replay(f.t, f.history, f.eval_begin, f.eval_end);
  // Paper: 251 of 198k jobs affected on a 143-node cluster. At this test's
  // 21-node scale the sigma buffer is proportionally much thinner, so the
  // bound is loose; table5_ces_perf reports the paper-scale number.
  EXPECT_LT(static_cast<double>(r.affected_jobs),
            0.10 * static_cast<double>(r.total_jobs));
}

TEST(CesService, VanillaDrsWakesMoreOften) {
  CesFixture f;
  CesService smart(test_config(false), naive_model());
  CesService vanilla(test_config(true), naive_model());
  smart.fit(f.history);
  vanilla.fit(f.history);
  const auto rs = smart.replay(f.t, f.history, f.eval_begin, f.eval_end);
  const auto rv = vanilla.replay(f.t, f.history, f.eval_begin, f.eval_end);
  // The trend conditions exist precisely to avoid wake/sleep churn
  // (paper: 1.1-2.6 vs ~34 wakeups/day).
  EXPECT_GT(rv.daily_wakeups, rs.daily_wakeups);
  EXPECT_GT(rv.affected_jobs, rs.affected_jobs / 2);
}

TEST(CesService, JobsAllEventuallyRun) {
  CesFixture f;
  CesService svc(test_config(), naive_model());
  svc.fit(f.history);
  const auto r = svc.replay(f.t, f.history, f.eval_begin, f.eval_end);
  // Conservation: the replay must not strand jobs (affected is a delay
  // count, not a loss count) — checked indirectly: utilization > 0 and the
  // running series integrates to roughly the baseline's GPU work.
  double ces_work = 0.0;
  for (double v : r.running_nodes.values) ces_work += v;
  EXPECT_GT(ces_work, 0.0);
}

TEST(CesService, ForecastTracksActual) {
  CesFixture f;
  CesService svc(test_config(), naive_model());
  svc.fit(f.history);
  const auto r = svc.replay(f.t, f.history, f.eval_begin, f.eval_end);
  // Even the seasonal-naive baseline should stay within ~35% SMAPE on the
  // strongly diurnal node series.
  EXPECT_LT(r.forecast_smape, 35.0);
  // Checks fire at begin + k*interval for k = 1 .. span/interval - 1.
  EXPECT_EQ(r.predicted_nodes.size(),
            static_cast<std::size_t>(
                (f.eval_end - f.eval_begin) / test_config().check_interval) -
                1);
}

TEST(Framework, RegisterFindUpdate) {
  class CountingService final : public Service {
   public:
    [[nodiscard]] std::string name() const override { return "counting"; }
    void update(const Trace&) override { ++updates; }
    int updates = 0;
  };
  PredictionFramework fw("Earth");
  auto& svc = dynamic_cast<CountingService&>(
      fw.register_service(std::make_unique<CountingService>()));
  EXPECT_EQ(fw.service_count(), 1u);
  EXPECT_EQ(fw.find("counting"), &svc);
  EXPECT_EQ(fw.find("missing"), nullptr);
  Trace t;
  fw.update_all(t);
  fw.update_all(t);
  EXPECT_EQ(svc.updates, 2);
  EXPECT_EQ(fw.cluster_name(), "Earth");
}

TEST(PowerModel, Arithmetic) {
  PowerModel p;
  // One node asleep for one hour saves 0.8 kWh * 3 (cooling included).
  EXPECT_NEAR(p.saved_kwh(3600.0), 2.4, 1e-9);
  EXPECT_NEAR(p.annualized_kwh(100.0, 36.5), 1000.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.annualized_kwh(100.0, 0.0), 0.0);
}

}  // namespace
}  // namespace helios::core
