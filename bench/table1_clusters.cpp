// Table 1: configurations of the four Helios clusters.
//
// Regenerates the cluster shapes the rest of the evaluation runs on. At
// scale < 1 the node/GPU counts shrink proportionally (the scale is printed
// in the header); VC counts may shrink too because sub-node VCs are dropped.
#include <cstdio>

#include "bench_common.h"
#include "common/text_table.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;

  bench::print_header("Table 1", "Configurations of four clusters in Helios");

  TextTable table({"Cluster", "# of VCs", "# of Nodes", "# of GPUs",
                   "GPUs/node", "CPUs/node", "# of Jobs (trace)"});
  std::int64_t vcs = 0;
  std::int64_t nodes = 0;
  std::int64_t gpus = 0;
  std::int64_t jobs = 0;
  for (const auto& tp : bench::helios_traces()) {
    const helios::trace::Trace& t = *tp;
    const auto& c = t.cluster();
    table.add_row({c.name, TextTable::cell(static_cast<std::int64_t>(c.vc_count())),
                   TextTable::cell(static_cast<std::int64_t>(c.nodes)),
                   TextTable::cell_grouped(c.total_gpus()),
                   TextTable::cell(static_cast<std::int64_t>(c.gpus_per_node)),
                   TextTable::cell(static_cast<std::int64_t>(c.cpus_per_node)),
                   TextTable::cell_grouped(static_cast<std::int64_t>(t.size()))});
    vcs += c.vc_count();
    nodes += c.nodes;
    gpus += c.total_gpus();
    jobs += static_cast<std::int64_t>(t.size());
  }
  table.add_row({"Total", TextTable::cell(vcs), TextTable::cell_grouped(nodes),
                 TextTable::cell_grouped(gpus), "-", "-",
                 TextTable::cell_grouped(jobs)});
  std::printf("%s\n", table.str().c_str());

  bench::print_expectation("paper totals (scale 1.0)",
                           "105 VCs, 802 nodes, 6,416 GPUs, 3,363k jobs",
                           "see rows above (scaled)");
  return 0;
}
