// Descriptive statistics: streaming moments, quantiles, box-plot stats.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace helios::stats {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::int64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample using linear interpolation between order statistics
/// (type-7, the numpy default). `q` in [0, 1]. Copies + sorts internally.
[[nodiscard]] double quantile(std::span<const double> data, double q);

/// Quantile of data already sorted ascending (no copy).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q) noexcept;

[[nodiscard]] double median(std::span<const double> data);
[[nodiscard]] double mean(std::span<const double> data) noexcept;
[[nodiscard]] double stddev(std::span<const double> data) noexcept;

/// Box-plot statistics exactly as the paper's Figure 4 defines them:
/// box = Q1..Q3, median line, whiskers at 1.5 * IQR clamped to data range.
struct BoxStats {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_lo = 0.0;  ///< smallest datum >= q1 - 1.5 * IQR
  double whisker_hi = 0.0;  ///< largest datum <= q3 + 1.5 * IQR
  double mean = 0.0;
  std::int64_t count = 0;

  [[nodiscard]] double iqr() const noexcept { return q3 - q1; }
};

[[nodiscard]] BoxStats box_stats(std::span<const double> data);

}  // namespace helios::stats
