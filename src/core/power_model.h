// Datacenter power/energy accounting (paper §4.3.3).
//
// Constants follow the paper: an idle DGX-1 class server draws ~800 W (read
// from the BMC PSU inputs), and datacenter cooling consumes about twice the
// server energy, so every server-watt saved is worth ~3 facility-watts.
#pragma once

namespace helios::core {

struct PowerModel {
  double idle_node_watts = 800.0;
  /// Facility multiplier: server + 2x cooling.
  double facility_factor = 3.0;

  /// Energy saved by keeping nodes asleep for the given node-seconds,
  /// in kWh (includes the cooling share).
  [[nodiscard]] double saved_kwh(double sleeping_node_seconds) const noexcept {
    return sleeping_node_seconds / 3600.0 * (idle_node_watts / 1000.0) *
           facility_factor;
  }

  /// Extrapolate a measured saving over `measured_days` to a full year.
  [[nodiscard]] double annualized_kwh(double kwh, double measured_days) const noexcept {
    return measured_days > 0.0 ? kwh * 365.0 / measured_days : 0.0;
  }
};

}  // namespace helios::core
