// Labeled dataset builder for GPU node-failure prediction.
//
// "Prediction of GPU Failures Under Deep Learning Workloads" (Liu et al.,
// on the same Helios-class clusters as the source paper) shows node failures
// are highly skewed — a small set of unhealthy nodes fails over and over —
// and that simple per-node history features (past failure counts, recency,
// downtime) carry most of the predictive signal. This module turns a
// sim::FaultPlan (the simulator's failure/recovery schedule, or the observed
// prefix of one) into supervised rows for the histogram GBDT:
//
//   one row per (VC, node, sample time t on a fixed grid)
//   features = per-node failure history strictly before t + static VC shape
//              + calendar encoding of t           (kFailureFeatureCount)
//   label    = 1.0 iff the node fails within [t, t + horizon)
//
// Only events strictly before t feed the features, so a model fit on these
// rows never sees its own label window — the usual rolling-origin hygiene.
//
// Determinism: NodeFailureHistory and build_failure_dataset are pure
// functions of (spec, plan, config); rows are emitted in (vc, node, t)
// order. core::FailurePredictor uses the same feature encoder at ranking
// time, so train- and inference-time features cannot drift apart.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "sim/fault_plan.h"
#include "trace/cluster_config.h"

namespace helios::ml {

/// Number of features per row (the layout in NodeFailureHistory::features).
inline constexpr std::size_t kFailureFeatureCount = 10;

struct FailureDatasetConfig {
  /// Sample-time grid spacing over the plan window, seconds.
  std::int64_t sample_step = 6 * 3600;
  /// Label window: a row is positive iff its node fails within
  /// [t, t + horizon).
  std::int64_t horizon = 24 * 3600;
  /// Skip sample times before window_begin + warmup, so history features
  /// are computed over a non-trivial observation span.
  std::int64_t warmup = 24 * 3600;
};

/// Per-node failure/downtime index over a FaultPlan, answering history
/// queries ("failures before t", "downtime in the last week") in O(log
/// events-per-node) via binary search over per-node sorted event arrays.
class NodeFailureHistory {
 public:
  NodeFailureHistory(const trace::ClusterSpec& spec, const sim::FaultPlan& plan);

  /// Feature vector for (vc, node) at sample time t. Layout:
  ///   0 failures before t (all history)
  ///   1 failures in (t - 7d, t]
  ///   2 failures in (t - 1d, t]
  ///   3 seconds since the last failure before t (observation span when none)
  ///   4 fraction of the observation span spent down
  ///   5 downtime seconds in (t - 7d, t]
  ///   6 GPUs per node of the VC
  ///   7 node count of the VC
  ///   8 hour of day of t (UTC)
  ///   9 day of week of t (0 = Thursday, Unix epoch anchor)
  /// Only events strictly before t contribute.
  [[nodiscard]] std::array<double, kFailureFeatureCount> features(
      int vc, int node, std::int64_t t) const;

  /// Failures of (vc, node) with time in [t0, t1).
  [[nodiscard]] int failures_in(int vc, int node, std::int64_t t0,
                                std::int64_t t1) const;

  [[nodiscard]] std::int64_t window_begin() const noexcept { return begin_; }
  [[nodiscard]] std::int64_t window_end() const noexcept { return end_; }

 private:
  struct NodeLog {
    std::vector<std::int64_t> failures;  ///< failure times, ascending
    /// Down intervals [fail, recover), recover clamped to window_end when
    /// the repair never completed inside the window. Ascending, disjoint.
    std::vector<std::pair<std::int64_t, std::int64_t>> down;
  };

  [[nodiscard]] const NodeLog& log_of(int vc, int node) const noexcept {
    return logs_[static_cast<std::size_t>(vc_base_[static_cast<std::size_t>(vc)] + node)];
  }
  /// Downtime seconds of `log` overlapping [t0, t1).
  [[nodiscard]] static std::int64_t downtime_in(const NodeLog& log,
                                                std::int64_t t0,
                                                std::int64_t t1);

  std::int64_t begin_ = 0;
  std::int64_t end_ = 0;
  std::vector<int> vc_base_;      ///< flat offset of each VC's first node
  std::vector<double> vc_gpn_;    ///< GPUs per node, by VC
  std::vector<double> vc_nodes_;  ///< node count, by VC
  std::vector<NodeLog> logs_;
};

/// Build the labeled dataset: rows in (vc, node, sample time) order over
/// sample times window_begin + warmup, +step, ... while t + horizon <=
/// window_end (labels never extend past the plan, so a "no failure" label is
/// a real observation, not missing data).
[[nodiscard]] Dataset build_failure_dataset(const trace::ClusterSpec& spec,
                                            const sim::FaultPlan& plan,
                                            const FailureDatasetConfig& config);

}  // namespace helios::ml
