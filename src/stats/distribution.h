// Parametric distributions: densities, CDFs, and moment-based fitting.
#pragma once

#include <span>

namespace helios::stats {

/// Standard normal CDF via erf.
[[nodiscard]] double normal_cdf(double x) noexcept;

/// Inverse standard normal CDF (Acklam's rational approximation, |err|<1e-9).
[[nodiscard]] double normal_quantile(double p) noexcept;

/// Parameters of a log-normal distribution: X = exp(N(mu, sigma)).
struct LogNormalParams {
  double mu = 0.0;
  double sigma = 1.0;

  [[nodiscard]] double median() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Maximum-likelihood fit (mean/std of log values). Non-positive samples are
/// ignored; returns defaults when fewer than two positive samples exist.
[[nodiscard]] LogNormalParams fit_lognormal(std::span<const double> data) noexcept;

/// Solve for LogNormalParams with the requested median and mean
/// (mean > median > 0): mu = ln(median), sigma = sqrt(2 ln(mean/median)).
/// This is how the trace generator converts the paper's published
/// median/mean duration pairs into samplers.
[[nodiscard]] LogNormalParams lognormal_from_median_mean(double median,
                                                         double mean) noexcept;

}  // namespace helios::stats
