#include "sim/fault_plan.h"

#include <algorithm>
#include <limits>
#include <string>

#include "common/rng.h"
#include "serialize/binary.h"

namespace helios::sim {

namespace {

/// SplitMix64-style finalizer decorrelating (seed, vc, node) substreams.
std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Sort key: recoveries before failures at equal times (capacity returns
/// before it is removed), node index as the final tie-break.
bool event_before(const NodeFaultEvent& a, const NodeFaultEvent& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  if (a.recovery != b.recovery) return a.recovery;
  return a.node < b.node;
}

constexpr std::uint32_t kFaultPlanTag = serialize::fourcc("FPLN");
constexpr std::uint32_t kFaultPlanVersion = 1;

}  // namespace

FaultPlan FaultPlan::generate(const trace::ClusterSpec& spec,
                              const FaultPlanConfig& config, UnixTime begin,
                              UnixTime end) {
  FaultPlan plan;
  plan.config_ = config;
  plan.begin_ = begin;
  plan.end_ = end;
  plan.events_.resize(spec.vcs.size());
  plan.flaky_.resize(spec.vcs.size());
  if (end <= begin || config.mtbf_days <= 0.0) {
    for (std::size_t vi = 0; vi < spec.vcs.size(); ++vi) {
      plan.flaky_[vi].assign(
          static_cast<std::size_t>(spec.vcs[vi].nodes), 0);
    }
    return plan;
  }
  const double base_rate = 1.0 / (config.mtbf_days * 86400.0);
  const std::int64_t mean_extra =
      std::max<std::int64_t>(1, config.mean_downtime - config.min_downtime);
  for (std::size_t vi = 0; vi < spec.vcs.size(); ++vi) {
    const int n_nodes = spec.vcs[vi].nodes;
    plan.flaky_[vi].assign(static_cast<std::size_t>(n_nodes), 0);
    auto& events = plan.events_[vi];
    for (int node = 0; node < n_nodes; ++node) {
      Rng rng(mix64(config.seed, (static_cast<std::uint64_t>(vi) << 32) |
                                     static_cast<std::uint64_t>(node)));
      const bool flaky = rng.bernoulli(config.flaky_fraction);
      plan.flaky_[vi][static_cast<std::size_t>(node)] = flaky ? 1 : 0;
      const double rate =
          base_rate * (flaky ? std::max(1.0, config.flaky_multiplier) : 1.0);
      std::int64_t t = begin;
      for (;;) {
        t += std::max<std::int64_t>(
            1, static_cast<std::int64_t>(rng.exponential(rate)));
        if (t >= end) break;
        events.push_back({t, node, /*recovery=*/false});
        ++plan.failure_count_;
        const std::int64_t down =
            config.min_downtime +
            std::max<std::int64_t>(
                0, static_cast<std::int64_t>(
                       rng.exponential(1.0 / static_cast<double>(mean_extra))));
        t += std::max<std::int64_t>(1, down);
        if (t >= end) break;  // repair crosses the horizon: node stays down
        events.push_back({t, node, /*recovery=*/true});
      }
    }
    std::sort(events.begin(), events.end(), event_before);
  }
  return plan;
}

FaultPlan FaultPlan::from_events(
    const trace::ClusterSpec& spec, UnixTime begin, UnixTime end,
    std::vector<std::vector<NodeFaultEvent>> events) {
  FaultPlan plan;
  plan.begin_ = begin;
  plan.end_ = end;
  events.resize(spec.vcs.size());
  plan.events_ = std::move(events);
  plan.flaky_.resize(spec.vcs.size());
  for (std::size_t vi = 0; vi < spec.vcs.size(); ++vi) {
    plan.flaky_[vi].assign(static_cast<std::size_t>(spec.vcs[vi].nodes), 0);
    auto& vc_events = plan.events_[vi];
    std::sort(vc_events.begin(), vc_events.end(), event_before);
    for (const NodeFaultEvent& e : vc_events) {
      if (!e.recovery) ++plan.failure_count_;
    }
  }
  return plan;
}

bool FaultPlan::is_flaky(int vc, int node) const noexcept {
  if (vc < 0 || vc >= vc_count()) return false;
  const auto& f = flaky_[static_cast<std::size_t>(vc)];
  if (node < 0 || node >= static_cast<int>(f.size())) return false;
  return f[static_cast<std::size_t>(node)] != 0;
}

FaultPlan FaultPlan::clipped(UnixTime t0, UnixTime t1) const {
  FaultPlan out;
  out.config_ = config_;
  out.begin_ = std::max(begin_, t0);
  out.end_ = std::min(end_, t1);
  out.flaky_ = flaky_;
  out.events_.resize(events_.size());
  for (std::size_t vi = 0; vi < events_.size(); ++vi) {
    for (const NodeFaultEvent& e : events_[vi]) {
      if (e.time < t0 || e.time >= t1) continue;
      out.events_[vi].push_back(e);
      if (!e.recovery) ++out.failure_count_;
    }
  }
  return out;
}

void FaultPlan::save(serialize::Writer& w) const {
  w.begin_section(kFaultPlanTag);
  w.u32(kFaultPlanVersion);
  w.f64(config_.mtbf_days);
  w.f64(config_.flaky_fraction);
  w.f64(config_.flaky_multiplier);
  w.i64(config_.mean_downtime);
  w.i64(config_.min_downtime);
  w.u64(config_.seed);
  w.i64(begin_);
  w.i64(end_);
  w.u32(static_cast<std::uint32_t>(events_.size()));
  for (std::size_t vi = 0; vi < events_.size(); ++vi) {
    w.u64(flaky_[vi].size());
    for (const char f : flaky_[vi]) w.u8(f != 0 ? 1 : 0);
    w.u64(events_[vi].size());
    for (const NodeFaultEvent& e : events_[vi]) {
      w.i64(e.time);
      w.i32(e.node);
      w.u8(e.recovery ? 1 : 0);
    }
  }
  w.end_section();
}

void FaultPlan::load(serialize::Reader& r) {
  serialize::Reader s = r.section(kFaultPlanTag);
  const std::uint32_t version = s.u32();
  if (version != kFaultPlanVersion) {
    throw serialize::Error(serialize::ErrorCode::kUnsupportedVersion,
                           "fault plan section version " +
                               std::to_string(version));
  }
  // Stage into locals so a throw mid-read cannot leave a half-loaded plan.
  FaultPlanConfig config;
  config.mtbf_days = s.f64();
  config.flaky_fraction = s.f64();
  config.flaky_multiplier = s.f64();
  config.mean_downtime = s.i64();
  config.min_downtime = s.i64();
  config.seed = s.u64();
  const UnixTime begin = s.i64();
  const UnixTime end = s.i64();
  const std::uint32_t n_vcs = s.u32();
  std::vector<std::vector<NodeFaultEvent>> events(n_vcs);
  std::vector<std::vector<char>> flaky(n_vcs);
  std::size_t failures = 0;
  for (std::uint32_t vi = 0; vi < n_vcs; ++vi) {
    const std::size_t n_nodes = s.length(1);
    flaky[vi].resize(n_nodes);
    for (std::size_t ni = 0; ni < n_nodes; ++ni) {
      flaky[vi][ni] = s.u8() != 0 ? 1 : 0;
    }
    const std::size_t n_events = s.length(13);  // i64 + i32 + u8 per event
    events[vi].reserve(n_events);
    std::int64_t prev_time = std::numeric_limits<std::int64_t>::min();
    for (std::size_t ei = 0; ei < n_events; ++ei) {
      NodeFaultEvent e;
      e.time = s.i64();
      e.node = s.i32();
      e.recovery = s.u8() != 0;
      if (e.time < prev_time) {
        throw serialize::Error(serialize::ErrorCode::kCorrupt,
                               "fault plan events out of order in vc " +
                                   std::to_string(vi));
      }
      prev_time = e.time;
      if (e.node < 0 || static_cast<std::size_t>(e.node) >= n_nodes) {
        throw serialize::Error(serialize::ErrorCode::kCorrupt,
                               "fault plan node " + std::to_string(e.node) +
                                   " out of range in vc " + std::to_string(vi));
      }
      if (!e.recovery) ++failures;
      events[vi].push_back(e);
    }
  }
  s.close("fault plan");
  config_ = config;
  begin_ = begin;
  end_ = end;
  events_ = std::move(events);
  flaky_ = std::move(flaky);
  failure_count_ = failures;
}

}  // namespace helios::sim
